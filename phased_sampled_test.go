// Top-level acceptance test for the per-phase sampled-replay contract:
// phased dbindex workloads at sweep-scale trace lengths, replayed exact and
// under the committed phase-report sampling config, must keep every
// statistically significant counter of every phase of every layout within
// 1% of exact replay, and every counter within the sampling-noise envelope
// max(1%, 8/√events) — the docs/timing-model.md headline contract restated
// per regime. Stratified extrapolation (windows never cross a phase
// boundary; each phase restarts the plan) is what makes the bound
// attainable: a phase transition inside a skip stretch is precisely the
// failure mode stationary workloads never exposed.
package mosaic

import (
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/experiment"
	"mosaic/internal/pmu"
	"mosaic/internal/sim"
	"mosaic/internal/workloads"
)

// phasedSweepWorkloads are the phased bundled workloads the per-phase
// acceptance numbers are quoted on: the two ends of the dbindex locality
// spectrum — a cache-friendly pointer-chasing index probe and a streaming
// merge with rare page-crossing events — plus the skewed hash join between
// them.
var phasedSweepWorkloads = []string{
	"dbindex/btree-point-zipf",
	"dbindex/lsm-loadcompact",
	"dbindex/hashjoin-zipf",
}

// phasedSampling mirrors cmd/mosbench's phaseReportSampling — the committed
// config of the per-phase contract. A prime period so the window schedule
// never phase-locks with the kernels' power-of-two geometry, large measure
// windows to amortize the per-window timing cold start, and gap-covering
// warmup so functional state never drifts; see the mosbench definition for
// the full rationale.
var phasedSampling = sim.Sampling{
	Period:      28657,
	MeasureLen:  8192,
	WarmupLen:   20465,
	PrologueLen: 8192,
}

// phasedEventBasis mirrors cmd/mosbench's phaseEventBasis: the effective
// sample size behind a counter is its count of discrete events — walks for
// the cycle aggregate C, accesses for the runtime R — not its magnitude.
func phasedEventBasis(i int, c pmu.Counters) uint64 {
	switch sampledCounterNames[i] {
	case "C":
		return c.M
	case "R":
		return c.TLBLookups
	}
	return sampledCounterValues(c)[i]
}

// TestPhasedSampledAccuracy is the per-phase acceptance bound. It fails if
// any phase of any layout has a significant counter off by more than 1%, a
// counter outside its noise envelope, a phase whose sampling never engaged,
// or a dataset that lost its phase attribution.
func TestPhasedSampledAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("phased sampled-vs-exact sweep comparison is not short")
	}
	dir := t.TempDir()
	var ws []workloads.Workload
	for _, name := range phasedSweepWorkloads {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, workloads.Stretched(w, sampledStretch))
	}
	run := func(s sim.Sampling) []*experiment.Dataset {
		r := experiment.NewRunner()
		r.Proto = experiment.Quick
		r.TraceDir = dir
		r.Sampling = s
		dss, err := r.CollectAll(ws, []arch.Platform{arch.SandyBridge}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return dss
	}
	exact := run(sim.Sampling{})
	sampled := run(phasedSampling)

	var entries, significant int
	var worstSig, worstEnv float64
	var worstSigAt, worstEnvAt string
	for d := range exact {
		key := exact[d].Workload + "@" + exact[d].Platform
		if len(exact[d].Phases) == 0 || len(sampled[d].Phases) == 0 {
			t.Fatalf("%s: dataset lost its phase attribution (exact %d layouts, sampled %d)",
				key, len(exact[d].Phases), len(sampled[d].Phases))
		}
		for layoutName, ephs := range exact[d].Phases {
			sphs := sampled[d].Phases[layoutName]
			if len(sphs) != len(ephs) {
				t.Fatalf("%s layout %s: %d exact phases vs %d sampled", key, layoutName, len(ephs), len(sphs))
			}
			for p, eph := range ephs {
				sph := sphs[p]
				if sph.Name != eph.Name {
					t.Fatalf("%s layout %s phase %d: %q exact vs %q sampled",
						key, layoutName, p, eph.Name, sph.Name)
				}
				if sph.MeasuredAccesses == 0 || sph.MeasuredAccesses >= sph.TotalAccesses {
					t.Fatalf("%s layout %s phase %q: coverage %d/%d, want a strict subset",
						key, layoutName, sph.Name, sph.MeasuredAccesses, sph.TotalAccesses)
				}
				frac := float64(sph.MeasuredAccesses) / float64(sph.TotalAccesses)
				ev, sv := sampledCounterValues(eph.Counters), sampledCounterValues(sph.Counters)
				for i := range ev {
					if ev[i] < minSampledCount {
						continue
					}
					diff := float64(sv[i]) - float64(ev[i])
					if diff < 0 {
						diff = -diff
					}
					rel := diff / float64(ev[i])
					events := float64(phasedEventBasis(i, eph.Counters)) * frac
					if events <= 0 {
						continue
					}
					entries++
					at := key + "/" + layoutName + "/" + eph.Name + "/" + sampledCounterNames[i]
					if events >= sigSampledEvents {
						significant++
						if rel > worstSig {
							worstSig, worstSigAt = rel, at
						}
					}
					if ratio := rel / sampledErrorBound(events); ratio > worstEnv {
						worstEnv, worstEnvAt = ratio, at
					}
				}
			}
		}
	}
	t.Logf("%d per-phase entries, %d significant, worst significant %.4f%% (%s), worst envelope ratio %.2f (%s)",
		entries, significant, 100*worstSig, worstSigAt, worstEnv, worstEnvAt)
	if significant < 100 {
		t.Errorf("only %d significant per-phase counter entries — the sweep is too small to claim anything", significant)
	}
	if worstSig > 0.01 {
		t.Errorf("significant per-phase counter off by %.4f%% at %s, want ≤ 1%%", 100*worstSig, worstSigAt)
	}
	if worstEnv > 1 {
		t.Errorf("per-phase counter outside the sampling-noise envelope at %s (ratio %.2f)", worstEnvAt, worstEnv)
	}
}
