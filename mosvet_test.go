package mosaic

import (
	"testing"

	"mosaic/internal/lint"
)

// TestMosvetClean runs the mosvet analyzer suite in-process over the whole
// module, so `go test ./...` (tier-1) catches invariant regressions —
// wall-clock reads in simulation paths, unsorted map iteration feeding
// results, raw float equality, blocking I/O under serving locks, hot-path
// hygiene — without waiting for the dedicated CI job. This is the same
// load-and-analyze path `go run ./cmd/mosvet ./...` exercises.
func TestMosvetClean(t *testing.T) {
	findings, err := lint.AnalyzeModule(".", lint.DefaultConfig())
	if err != nil {
		t.Fatalf("mosvet load: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("mosvet: %d finding(s) — fix them or add a justified //mosvet:ignore (see docs/static-analysis.md)", len(findings))
	}
}
