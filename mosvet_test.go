package mosaic

import (
	"testing"

	"mosaic/internal/lint"
)

// TestMosvetClean runs the mosvet analyzer suite in-process over the whole
// module, so `go test ./...` (tier-1) catches invariant regressions —
// wall-clock reads in simulation paths, unsorted map iteration feeding
// results, raw float equality, blocking I/O under serving locks, hot-path
// hygiene, checkpoint-contract completeness, codec lockstep, lock ordering,
// and phase ownership — without waiting for the dedicated CI job. This is
// the same load-and-analyze path `go run ./cmd/mosvet ./...` exercises.
func TestMosvetClean(t *testing.T) {
	res, err := lint.AnalyzeModuleFull(".", lint.DefaultConfig())
	if err != nil {
		t.Fatalf("mosvet load: %v", err)
	}
	for _, f := range res.Findings {
		t.Errorf("%s", f)
	}
	if len(res.Findings) > 0 {
		t.Fatalf("mosvet: %d finding(s) — fix them or add a justified //mosvet:ignore (see docs/static-analysis.md)", len(res.Findings))
	}

	// The committed suppression-audit baseline must match the exemption
	// directives actually present in the tree: a suppression added without
	// regenerating the baseline (or a baseline entry whose directive was
	// deleted) is a review-bypass and fails here.
	drift, err := lint.VerifyBaseline("mosvet-baseline.json", res)
	if err != nil {
		t.Fatalf("mosvet baseline: %v", err)
	}
	for _, d := range drift {
		t.Errorf("%s", d)
	}
	if len(drift) > 0 {
		t.Fatalf("mosvet: suppression-audit baseline is stale (%d mismatch(es)) — review the exemptions, then regenerate with `go run ./cmd/mosvet -write-baseline mosvet-baseline.json`", len(drift))
	}
}
