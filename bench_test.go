// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (DESIGN.md's per-experiment index), plus ablation benchmarks
// for the design decisions the timing model rests on, plus micro-benchmarks
// of the simulator's hot paths.
//
// The per-figure benchmarks report the figures' headline numbers via
// b.ReportMetric (max errors as "maxerr_<model>_%"), so
// `go test -bench=. -benchmem` regenerates the paper's rows and series.
// Dataset collection is shared and cached across benchmarks; the first
// benchmark that needs the full sweep pays for it outside its timer.
package mosaic

import (
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/cache"
	"mosaic/internal/cpu"
	"mosaic/internal/experiment"
	"mosaic/internal/libc"
	"mosaic/internal/mem"
	"mosaic/internal/models"
	"mosaic/internal/mosalloc"
	"mosaic/internal/pmu"
	"mosaic/internal/tlb"
	"mosaic/internal/trace"
	"mosaic/internal/walker"
	"mosaic/internal/workloads"
)

// The shared measurement state: one runner, datasets collected on demand.
var (
	benchMu     sync.Mutex
	benchRunner = experiment.NewRunner()
	benchAll    []*experiment.Dataset
)

// allDatasets collects (once) the full 19-workload × 3-platform sweep and
// returns the TLB-sensitive datasets, exactly as the figures use them.
func allDatasets(b *testing.B) []*experiment.Dataset {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchAll != nil {
		return benchAll
	}
	for _, p := range arch.Experimental {
		for _, w := range workloads.All() {
			ds, err := benchRunner.Collect(w, p)
			if err != nil {
				b.Fatal(err)
			}
			if ds.TLBSensitive {
				benchAll = append(benchAll, ds)
			}
		}
	}
	return benchAll
}

// dataset collects one (workload, platform) pair through the shared runner.
func dataset(b *testing.B, workload, platform string) *experiment.Dataset {
	b.Helper()
	w, err := workloads.ByName(workload)
	if err != nil {
		b.Fatal(err)
	}
	p, err := arch.ByName(platform)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := benchRunner.Collect(w, p)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// reportWorst attaches per-model headline metrics to the benchmark.
func reportWorst(b *testing.B, worst map[string]float64, names []string) {
	for _, name := range names {
		if e, ok := worst[name]; ok {
			b.ReportMetric(e*100, "maxerr_"+name+"_%")
		}
	}
}

// BenchmarkFigure2a regenerates Figure 2a: the worst-case error of every
// preexisting model over all workloads and machines (paper: 25%–192%).
func BenchmarkFigure2a(b *testing.B) {
	all := allDatasets(b)
	b.ResetTimer()
	var worst map[string]float64
	for i := 0; i < b.N; i++ {
		var err error
		worst, err = experiment.Figure2(all)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportWorst(b, worst, models.PriorNames)
}

// BenchmarkFigure2b regenerates Figure 2b: the new models' worst-case
// errors (paper: poly1 26.3%, poly2 11.1%, poly3 6.0%, mosmodel 2.9%).
func BenchmarkFigure2b(b *testing.B) {
	all := allDatasets(b)
	b.ResetTimer()
	var worst map[string]float64
	for i := 0; i < b.N; i++ {
		var err error
		worst, err = experiment.Figure2(all)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportWorst(b, worst, models.NewNames)
}

// BenchmarkFigure3 regenerates Figure 3: spec06/mcf on SandyBridge, where
// the linear model misses and Mosmodel stays within 2%.
func BenchmarkFigure3(b *testing.B) {
	ds := dataset(b, "spec06/mcf", "SandyBridge")
	b.ResetTimer()
	var cv *experiment.Curve
	for i := 0; i < b.N; i++ {
		var err error
		cv, err = experiment.CurveFor(ds, []string{"poly1", "mosmodel"})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cv.Errors["poly1"]*100, "maxerr_poly1_%")
	b.ReportMetric(cv.Errors["mosmodel"]*100, "maxerr_mosmodel_%")
}

// BenchmarkFigure5 regenerates Figure 5: per-benchmark maximal errors of
// all nine models on each platform.
func BenchmarkFigure5(b *testing.B) {
	all := allDatasets(b)
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		rows = 0
		for _, p := range arch.Experimental {
			pb, err := experiment.PerBenchmark(p.Name, all)
			if err != nil {
				b.Fatal(err)
			}
			rows += len(pb.Workloads)
		}
	}
	b.ReportMetric(float64(rows), "benchmark_rows")
}

// BenchmarkFigure6 regenerates Figure 6: the geometric-mean errors.
func BenchmarkFigure6(b *testing.B) {
	all := allDatasets(b)
	b.ResetTimer()
	var worstGeo float64
	for i := 0; i < b.N; i++ {
		worstGeo = 0
		for _, p := range arch.Experimental {
			pb, err := experiment.PerBenchmark(p.Name, all)
			if err != nil {
				b.Fatal(err)
			}
			for _, row := range pb.Geo {
				for _, v := range row {
					if v > worstGeo {
						worstGeo = v
					}
				}
			}
		}
	}
	b.ReportMetric(worstGeo*100, "worst_geomean_%")
}

// BenchmarkFigure7 regenerates Figure 7: the Basu model's optimism for
// gapbs/sssp-twitter on SandyBridge (paper: 42% below the true runtime).
func BenchmarkFigure7(b *testing.B) {
	ds := dataset(b, "gapbs/sssp-twitter", "SandyBridge")
	b.ResetTimer()
	var under float64
	for i := 0; i < b.N; i++ {
		var err error
		under, err = experiment.UnderpredictionAtLowC(ds, "basu")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(under*100, "basu_underprediction_%")
}

// BenchmarkFigure8 regenerates Figure 8: linear regression fits
// spec06/omnetpp well.
func BenchmarkFigure8(b *testing.B) {
	ds := dataset(b, "spec06/omnetpp", "SandyBridge")
	b.ResetTimer()
	var cv *experiment.Curve
	for i := 0; i < b.N; i++ {
		var err error
		cv, err = experiment.CurveFor(ds, []string{"poly1"})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cv.Errors["poly1"]*100, "maxerr_poly1_%")
}

// BenchmarkFigure9 regenerates Figure 9: the fitted slope of
// spec17/xalancbmk_s on Broadwell exceeds 1 — each walk cycle costs more
// than one runtime cycle because walker fills pollute the caches.
func BenchmarkFigure9(b *testing.B) {
	ds := dataset(b, "spec17/xalancbmk_s", "Broadwell")
	b.ResetTimer()
	var slope float64
	for i := 0; i < b.N; i++ {
		var err error
		slope, err = experiment.FittedSlope(ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(slope, "alpha_slope")
}

// BenchmarkFigure10 regenerates Figure 10: gups/16GB on SandyBridge needs
// a second-order polynomial (paper: linear errs 13%, poly2 ≤ 2%).
func BenchmarkFigure10(b *testing.B) {
	ds := dataset(b, "gups/16GB", "SandyBridge")
	b.ResetTimer()
	var cv *experiment.Curve
	for i := 0; i < b.N; i++ {
		var err error
		cv, err = experiment.CurveFor(ds, []string{"poly1", "poly2", "poly3"})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cv.Errors["poly1"]*100, "maxerr_poly1_%")
	b.ReportMetric(cv.Errors["poly2"]*100, "maxerr_poly2_%")
}

// BenchmarkFigure11 regenerates Figure 11: predicting the 1GB-pages layout
// of gapbs/pr-twitter on SandyBridge (paper: Yaniv 10% off, Mosmodel 1%).
func BenchmarkFigure11(b *testing.B) {
	ds := dataset(b, "gapbs/pr-twitter", "SandyBridge")
	b.ResetTimer()
	var res map[string]float64
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.CaseStudy1G(ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res["yaniv"]*100, "err1g_yaniv_%")
	b.ReportMetric(res["mosmodel"]*100, "err1g_mosmodel_%")
}

// BenchmarkTable6 regenerates Table 6: K-fold cross-validation maximal
// errors of the new models (paper: poly1 36.4%, poly2 19.1%, poly3 20.0%,
// mosmodel 4.3%).
func BenchmarkTable6(b *testing.B) {
	all := allDatasets(b)
	b.ResetTimer()
	var worst map[string]float64
	for i := 0; i < b.N; i++ {
		var err error
		worst, err = experiment.Table6(all, 6)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportWorst(b, worst, models.NewNames)
}

// BenchmarkTable7 regenerates Table 7: the 4KB-vs-2MB counter comparison
// of spec17/xalancbmk_s on Broadwell, including the program/walker split.
func BenchmarkTable7(b *testing.B) {
	ds := dataset(b, "spec17/xalancbmk_s", "Broadwell")
	b.ResetTimer()
	var rows []experiment.Table7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.Table7(ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Name == "L3 loads" {
			b.ReportMetric(float64(r.Program4K)/float64(r.Program2M), "l3_loads_4k_over_2m")
		}
	}
}

// BenchmarkTable8 regenerates Table 8: R² of single-variable linear
// regressions in C, M, and H per workload per machine.
func BenchmarkTable8(b *testing.B) {
	all := allDatasets(b)
	b.ResetTimer()
	var rows []experiment.Table8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.Table8(all)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "workload_rows")
}

// BenchmarkCaseStudy1GB regenerates the §VII-D validation across the whole
// suite: worst error predicting the held-out 1GB-pages layout.
func BenchmarkCaseStudy1GB(b *testing.B) {
	all := allDatasets(b)
	b.ResetTimer()
	worst := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for k := range worst {
			delete(worst, k)
		}
		for _, ds := range all {
			res, err := experiment.CaseStudy1G(ds)
			if err != nil {
				b.Fatal(err)
			}
			for m, e := range res {
				if e > worst[m] {
					worst[m] = e
				}
			}
		}
	}
	reportWorst(b, worst, []string{"basu", "yaniv", "mosmodel"})
}

// --- Ablation benchmarks (DESIGN.md's key design decisions) ---

// ablationRun replays gups/16GB's trace under a 4KB layout on a machine
// built by configure, returning the counters.
func ablationRun(b *testing.B, plat arch.Platform, configure func(*cpu.Machine)) (uint64, uint64) {
	b.Helper()
	w, err := workloads.ByName("gups/16GB")
	if err != nil {
		b.Fatal(err)
	}
	wd, err := benchRunner.Prepare(w)
	if err != nil {
		b.Fatal(err)
	}
	proc, err := libc.NewProcess(1 << 36)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := mosalloc.Attach(proc, wd.Target.Baseline4K().Cfg); err != nil {
		b.Fatal(err)
	}
	machine, err := cpu.New(plat.Scaled(), proc.Space())
	if err != nil {
		b.Fatal(err)
	}
	if configure != nil {
		configure(machine)
	}
	ctr, err := machine.Run(wd.Trace)
	if err != nil {
		b.Fatal(err)
	}
	return ctr.R, ctr.C
}

// BenchmarkAblationNoPollution gives the walker a private cache so its
// loads no longer share the hierarchy with program data, and reports the
// runtime ratio: pollution is one of the mechanisms behind slopes above 1
// (Figure 9, Table 7).
func BenchmarkAblationNoPollution(b *testing.B) {
	var base, noPol uint64
	for i := 0; i < b.N; i++ {
		base, _ = ablationRun(b, arch.Broadwell, nil)
		noPol, _ = ablationRun(b, arch.Broadwell, func(m *cpu.Machine) {
			if err := m.Hierarchy().SetWalkerPrivate(arch.Broadwell.Scaled()); err != nil {
				b.Fatal(err)
			}
		})
	}
	b.ReportMetric(float64(base)/float64(noPol), "runtime_ratio_pollution")
}

// BenchmarkAblationNoHiding removes latency hiding entirely: every walk
// stalls the pipeline for its full latency. Without hiding, runtime is a
// near-perfect linear function of C and the paper's whole phenomenon
// (Figures 3, 7, 10) disappears.
func BenchmarkAblationNoHiding(b *testing.B) {
	noHide := arch.Broadwell
	noHide.OOO.HideMax = 0
	noHide.OOO.IndepWalkHide = 0
	noHide.OOO.L2TLBHitHide = 0
	var base, stall uint64
	for i := 0; i < b.N; i++ {
		base, _ = ablationRun(b, arch.Broadwell, nil)
		stall, _ = ablationRun(b, noHide, nil)
	}
	b.ReportMetric(float64(stall)/float64(base), "runtime_ratio_no_hiding")
}

// BenchmarkAblationOneWalker removes Broadwell's second page walker and
// reports C/R with one and two walkers: only with two can the walk-cycle
// counter exceed the runtime (§VI-D's negative Basu β).
func BenchmarkAblationOneWalker(b *testing.B) {
	oneWalker := arch.Broadwell
	oneWalker.PageWalkers = 1
	var r2, c2, r1, c1 uint64
	for i := 0; i < b.N; i++ {
		r2, c2 = ablationRun(b, arch.Broadwell, nil)
		r1, c1 = ablationRun(b, oneWalker, nil)
	}
	b.ReportMetric(float64(c2)/float64(r2), "c_over_r_two_walkers")
	b.ReportMetric(float64(c1)/float64(r1), "c_over_r_one_walker")
}

// BenchmarkAblationLassoVsOLS compares Mosmodel's budgeted fit against an
// unrestricted 20-coefficient OLS cubic under cross-validation on samples
// with realistic measurement noise (the paper tolerates up to 5% runtime
// variation, §VI-A): the unrestricted cubic overfits 54 samples — the
// one-in-ten rule of §VI-C.
func BenchmarkAblationLassoVsOLS(b *testing.B) {
	ds := dataset(b, "spec17/xalancbmk_s", "Broadwell")
	noisy := make([]pmu.Sample, len(ds.Samples))
	rng := rand.New(rand.NewSource(7))
	for i, s := range ds.Samples {
		s.R *= 1 + 0.02*rng.NormFloat64()
		noisy[i] = s
	}
	var budgeted, unrestricted float64
	for i := 0; i < b.N; i++ {
		var err error
		budgeted, err = models.CrossValidate(func() models.Model {
			return models.NewMosmodel()
		}, noisy, 6, 1)
		if err != nil {
			b.Fatal(err)
		}
		unrestricted, err = models.CrossValidate(func() models.Model {
			m := models.NewMosmodel()
			m.MaxNonzero = 0 // no coefficient budget
			return m
		}, noisy, 6, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(budgeted*100, "cv_err_budgeted_%")
	b.ReportMetric(unrestricted*100, "cv_err_unrestricted_%")
}

// BenchmarkAblationHeuristics compares the sample diversity of the layout
// heuristics on a hot-region workload (§VI-B: random windows typically
// either back or miss the whole hot region, clustering samples at the
// extremes; the sliding window spreads them). Diversity is measured as the
// fraction of ten equal walk-cycle bins a heuristic's samples occupy.
func BenchmarkAblationHeuristics(b *testing.B) {
	ds := dataset(b, "graph500/2GB", "SandyBridge")
	var lo, hi float64
	for _, s := range ds.Samples {
		if lo == 0 || s.C < lo {
			lo = s.C
		}
		if s.C > hi {
			hi = s.C
		}
	}
	coverage := func(prefix string) float64 {
		bins := map[int]bool{}
		n := 0
		for _, s := range ds.Samples {
			if len(s.Layout) < len(prefix) || s.Layout[:len(prefix)] != prefix {
				continue
			}
			n++
			bin := int((s.C - lo) / (hi - lo + 1) * 10)
			bins[bin] = true
		}
		if n == 0 {
			return 0
		}
		return float64(len(bins)) / 10
	}
	var slide, random float64
	for i := 0; i < b.N; i++ {
		slide = coverage("slide")
		random = coverage("rand")
	}
	b.ReportMetric(slide, "c_bin_coverage_sliding")
	b.ReportMetric(random, "c_bin_coverage_random")
}

// --- Micro-benchmarks of the simulator's hot paths ---

// BenchmarkTLBLookup measures the two-level TLB's lookup path.
func BenchmarkTLBLookup(b *testing.B) {
	t := tlb.New(arch.Broadwell.Scaled().TLB)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]mem.Addr, 4096)
	for i := range addrs {
		addrs[i] = mem.Addr(rng.Uint64() % (64 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := addrs[i%len(addrs)]
		if t.Lookup(va, mem.Page4K) == tlb.Miss {
			t.Insert(va, mem.Page4K)
		}
	}
}

// BenchmarkCacheAccess measures one load through the full hierarchy.
func BenchmarkCacheAccess(b *testing.B) {
	h, err := cache.NewHierarchy(arch.Broadwell.Scaled())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	addrs := make([]mem.Addr, 4096)
	for i := range addrs {
		addrs[i] = mem.Addr(rng.Uint64() % (64 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(addrs[i%len(addrs)], false)
	}
}

// BenchmarkPageWalk measures a full 4-level walk with PWCs.
func BenchmarkPageWalk(b *testing.B) {
	as, err := mem.NewAddressSpace(1 << 36)
	if err != nil {
		b.Fatal(err)
	}
	if err := as.Map(mem.NewRegion(0, 64<<20), mem.Page4K); err != nil {
		b.Fatal(err)
	}
	h, err := cache.NewHierarchy(arch.Broadwell.Scaled())
	if err != nil {
		b.Fatal(err)
	}
	w := walker.New(mem.NewTranslator(as.PageTable()), h, arch.Broadwell.Scaled().PWC)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Walk(mem.Addr(rng.Uint64() % (64 << 20)))
	}
}

// BenchmarkMosallocAlloc measures the allocator's first-fit path.
func BenchmarkMosallocAlloc(b *testing.B) {
	proc, err := libc.NewProcess(1 << 38)
	if err != nil {
		b.Fatal(err)
	}
	cfg := mosalloc.Config{
		HeapPool:      mosalloc.Uniform(mem.Page4K, 64<<20),
		AnonPool:      mosalloc.Uniform(mem.Page2M, 256<<20),
		FilePoolBytes: 1 << 20,
	}
	if _, err := mosalloc.Attach(proc, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := proc.Mmap(64<<10, libc.MapFlags{Kind: libc.MapAnonymous})
		if err != nil {
			b.Fatal(err)
		}
		if err := proc.Munmap(a, 64<<10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures end-to-end simulation throughput in accesses
// per second (the figure that bounds the full sweep's wall time).
func BenchmarkReplay(b *testing.B) {
	w, err := workloads.ByName("gups/8GB")
	if err != nil {
		b.Fatal(err)
	}
	wd, err := benchRunner.Prepare(w)
	if err != nil {
		b.Fatal(err)
	}
	lay := wd.Target.Baseline4K()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner.RunLayout(wd, arch.SandyBridge, lay); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(wd.Trace.Len()), "accesses/replay")
}

// BenchmarkSweepQuick measures an end-to-end Quick-protocol sweep — 2
// workloads × 3 platforms, 60 replays — through the staged pipeline:
// sweep-wide scheduler, pooled engines, address spaces shared across
// platforms. Traces are cached on disk outside the timer so iterations
// measure the planning and replay stages the engine layer accelerates,
// on a fresh Runner each time (no dataset cache hits).
func BenchmarkSweepQuick(b *testing.B) {
	var ws []workloads.Workload
	for _, name := range []string{"gups/8GB", "spec06/mcf"} {
		w, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		ws = append(ws, w)
	}
	plats := []arch.Platform{arch.SandyBridge, arch.Haswell, arch.Broadwell}
	dir := b.TempDir()
	warm := experiment.NewRunner()
	warm.TraceDir = dir
	for _, w := range ws {
		if _, err := warm.Prepare(w); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner()
		r.Proto = experiment.Quick
		r.TraceDir = dir
		dss, err := r.CollectAll(ws, plats, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(dss) != len(ws)*len(plats) {
			b.Fatalf("%d datasets, want %d", len(dss), len(ws)*len(plats))
		}
	}
}

// BenchmarkTraceGeneration measures workload trace generation.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		proc, err := libc.NewProcess(1 << 38)
		if err != nil {
			b.Fatal(err)
		}
		w := workloads.NewGUPS("8GB", 32<<20)
		heap, anon := w.PoolBytes()
		cfg := mosalloc.Config{
			HeapPool:      mosalloc.Uniform(mem.Page4K, heap),
			AnonPool:      mosalloc.Uniform(mem.Page4K, anon),
			FilePoolBytes: 1 << 20,
		}
		if _, err := mosalloc.Attach(proc, cfg); err != nil {
			b.Fatal(err)
		}
		if _, err := w.Generate(workloads.NewAllocator(proc)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceLoad measures loading a cached workload trace from disk in
// the default (MOSTRC02) format — the cost every cached-trace sweep pays
// per workload before any replay starts.
func BenchmarkTraceLoad(b *testing.B) {
	w, err := workloads.ByName("gups/8GB")
	if err != nil {
		b.Fatal(err)
	}
	wd, err := benchRunner.Prepare(w)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "trace.mostrc")
	if err := wd.Trace.Save(path); err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := trace.Load(path)
		if err != nil {
			b.Fatal(err)
		}
		if tr.Len() != wd.Trace.Len() {
			b.Fatalf("loaded %d accesses, want %d", tr.Len(), wd.Trace.Len())
		}
	}
}

// BenchmarkModelFit measures fitting all nine models on one dataset.
func BenchmarkModelFit(b *testing.B) {
	ds := dataset(b, "gups/8GB", "SandyBridge")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.EvaluateModels(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvergence reproduces §VI-C's observation that cross-validation
// needs more than 54 samples to converge: it reports Mosmodel's CV maximal
// error with the 54-layout standard protocol and with the ~102-layout
// extended protocol.
func BenchmarkConvergence(b *testing.B) {
	w, err := workloads.ByName("gups/16GB")
	if err != nil {
		b.Fatal(err)
	}
	std := dataset(b, "gups/16GB", "Haswell")
	ext := experiment.NewRunner()
	ext.Proto = experiment.Extended
	extDS, err := ext.Collect(w, arch.Haswell)
	if err != nil {
		b.Fatal(err)
	}
	factory := func() models.Model { return models.NewMosmodel() }
	var e54, e102 float64
	for i := 0; i < b.N; i++ {
		if e54, err = models.CrossValidate(factory, std.Samples, 6, 1); err != nil {
			b.Fatal(err)
		}
		if e102, err = models.CrossValidate(factory, extDS.Samples, 6, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(e54*100, "cv_err_54_samples_%")
	b.ReportMetric(e102*100, "cv_err_102_samples_%")
}

// --- Parallel windowed replay ---

var (
	benchWindows = flag.Int("bench-windows", 8,
		"window count K for BenchmarkSweepQuickWindowed (1 = unwindowed baseline)")
	benchCkptDir = flag.String("bench-checkpoint-dir", "",
		"persistent MOSCKPT01 checkpoint cache for BenchmarkSweepQuickWindowed (default: a per-run temp dir)")
)

// BenchmarkSweepQuickWindowed is BenchmarkSweepQuick under K-way parallel
// windowed replay. A fused replay chain is inherently serial — no other
// mechanism in the pipeline can spread one trace replay over cores — so the
// benchmark gives the sweep a worker budget of exactly K (Parallelism = K;
// the runner then schedules one replay job at a time × K window workers,
// never oversubscribing) and the -bench-windows 8 vs 1 ratio isolates the
// within-replay parallelism that -windows adds. Speedup is bounded by the
// host's cores.
//
// Trace and checkpoint caches are built by one untimed sweep first, so the
// timed iterations measure the steady state a researcher iterates in: every
// window boundary already checkpointed, replay fully parallel from the
// first access. Point -bench-checkpoint-dir at a persistent directory to
// additionally measure warm starts across process restarts.
func BenchmarkSweepQuickWindowed(b *testing.B) {
	k := max(1, *benchWindows)
	var ws []workloads.Workload
	for _, name := range []string{"gups/8GB", "spec06/mcf"} {
		w, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		ws = append(ws, w)
	}
	plats := []arch.Platform{arch.SandyBridge, arch.Haswell, arch.Broadwell}
	dir := b.TempDir()
	ckptDir := *benchCkptDir
	if ckptDir == "" {
		ckptDir = b.TempDir()
	}
	newRunner := func() *experiment.Runner {
		r := experiment.NewRunner()
		r.Proto = experiment.Quick
		r.TraceDir = dir
		r.Parallelism = k
		r.Windows = k
		r.CheckpointDir = ckptDir
		return r
	}
	if _, err := newRunner().CollectAll(ws, plats, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dss, err := newRunner().CollectAll(ws, plats, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(dss) != len(ws)*len(plats) {
			b.Fatalf("%d datasets, want %d", len(dss), len(ws)*len(plats))
		}
	}
	b.ReportMetric(float64(k), "windows")
	// The K>1 vs K=1 ratio is bounded by available cores; recording the
	// count makes the published numbers comparable across hosts.
	b.ReportMetric(float64(runtime.NumCPU()), "cores")
}
