package mosaic_test

import (
	"fmt"

	"mosaic"
)

// Fitting a preexisting model on the two historical calibration points:
// the Yaniv model is the line through the 4KB and 2MB measurements.
func ExampleNewModel() {
	samples := []mosaic.Sample{
		{Layout: "4KB", H: 100, M: 200, C: 4000, R: 10000},
		{Layout: "2MB", H: 10, M: 20, C: 400, R: 7000},
	}
	m, _ := mosaic.NewModel("yaniv")
	if err := m.Fit(samples); err != nil {
		panic(err)
	}
	fmt.Printf("R̂(C=2200) = %.0f\n", m.Predict(0, 0, 2200))
	// Output:
	// R̂(C=2200) = 8500
}

// Building a Mosalloc configuration from the textual mosaic format.
func ExampleParseLayout() {
	cfg, _ := mosaic.ParseLayout("4KB:8MB,2MB:16MB,4KB:8MB")
	fmt.Println(cfg)
	fmt.Println("total:", cfg.Size()>>20, "MB")
	// Output:
	// 4KB:8MB,2MB:16MB,4KB:8MB
	// total: 32 MB
}

// Backing an application's heap with a mosaic of page sizes: the core
// Mosalloc operation.
func ExampleAttachMosalloc() {
	proc, _ := mosaic.NewProcess(1 << 36)
	heap, _ := mosaic.ParseLayout("4KB:8MB,2MB:16MB")
	msl, _ := mosaic.AttachMosalloc(proc, mosaic.MosallocConfig{
		HeapPool:      heap,
		AnonPool:      mosaic.UniformPool(mosaic.Page2M, 16<<20),
		FilePoolBytes: 1 << 20,
	})
	// malloc lands on the heap pool; the first 8MB are 4KB-backed.
	a, _ := proc.Malloc(1 << 20)
	ps, _ := msl.PageSizeAt(a)
	fmt.Println("first allocation backed by", ps, "pages")
	// Output:
	// first allocation backed by 4KB pages
}

// The error metrics of the paper's Equations 1 and 2.
func ExampleMaxAbsRelErr() {
	measured := []float64{100, 200, 400}
	predicted := []float64{110, 190, 400}
	fmt.Printf("max error %.0f%%\n", 100*mosaic.MaxAbsRelErr(measured, predicted))
	// Output:
	// max error 10%
}
