package stats

import (
	"fmt"
	"strings"
)

// Monomial is one polynomial term: per-variable exponents.
type Monomial []int

// TotalDegree returns the sum of exponents.
func (m Monomial) TotalDegree() int {
	d := 0
	for _, e := range m {
		d += e
	}
	return d
}

// Name renders the term for the given variable names, e.g. "C^2*M".
func (m Monomial) Name(vars []string) string {
	var parts []string
	for i, e := range m {
		switch {
		case e == 1:
			parts = append(parts, vars[i])
		case e > 1:
			parts = append(parts, fmt.Sprintf("%s^%d", vars[i], e))
		}
	}
	if len(parts) == 0 {
		return "1"
	}
	return strings.Join(parts, "*")
}

// Monomials enumerates all terms in nvars variables up to the given total
// degree, ordered by total degree (bias first) then reverse-lexicographic
// within a degree. Three variables at degree three yield the 20 terms of
// Mosmodel (Equation 3).
func Monomials(nvars, degree int) []Monomial {
	var out []Monomial
	for d := 0; d <= degree; d++ {
		var walk func(prefix []int, remaining, left int)
		walk = func(prefix []int, remaining, left int) {
			if remaining == 1 {
				m := make(Monomial, 0, nvars)
				m = append(m, prefix...)
				m = append(m, left)
				out = append(out, m)
				return
			}
			for e := left; e >= 0; e-- {
				walk(append(prefix, e), remaining-1, left-e)
			}
		}
		walk(nil, nvars, d)
	}
	return out
}

// Expand evaluates the monomials for one input row.
func Expand(x []float64, terms []Monomial) []float64 {
	out := make([]float64, len(terms))
	for i, m := range terms {
		v := 1.0
		for j, e := range m {
			for k := 0; k < e; k++ {
				v *= x[j]
			}
		}
		out[i] = v
	}
	return out
}

// PolyFit is a fitted polynomial regression in one or more variables,
// with internal input standardization for conditioning.
type PolyFit struct {
	Terms  []Monomial
	Coefs  []float64
	scaler *Scaler
	// VarNames label the input variables for reporting.
	VarNames []string
}

// FitPoly fits an OLS polynomial of the given total degree to (X, y).
func FitPoly(X [][]float64, y []float64, degree int, varNames []string) (*PolyFit, error) {
	if len(X) == 0 {
		return nil, ErrNoData
	}
	scaler, err := FitScaler(X)
	if err != nil {
		return nil, err
	}
	xs := scaler.Transform(X)
	terms := Monomials(len(X[0]), degree)
	feats := make([][]float64, len(xs))
	for i, row := range xs {
		feats[i] = Expand(row, terms)
	}
	coefs, err := Solve(feats, y)
	if err != nil {
		return nil, err
	}
	return &PolyFit{Terms: terms, Coefs: coefs, scaler: scaler, VarNames: varNames}, nil
}

// FitPolyTerms fits OLS on an explicit subset of monomials (the "relaxed
// Lasso" debiasing step: Lasso selects the terms, OLS refits them without
// shrinkage). The bias monomial is added if missing.
func FitPolyTerms(X [][]float64, y []float64, terms []Monomial, varNames []string) (*PolyFit, error) {
	if len(X) == 0 {
		return nil, ErrNoData
	}
	hasBias := false
	for _, m := range terms {
		if m.TotalDegree() == 0 {
			hasBias = true
		}
	}
	if !hasBias {
		bias := make(Monomial, len(X[0]))
		terms = append([]Monomial{bias}, terms...)
	}
	scaler, err := FitScaler(X)
	if err != nil {
		return nil, err
	}
	xs := scaler.Transform(X)
	feats := make([][]float64, len(xs))
	for i, row := range xs {
		feats[i] = Expand(row, terms)
	}
	coefs, err := Solve(feats, y)
	if err != nil {
		return nil, err
	}
	return &PolyFit{Terms: terms, Coefs: coefs, scaler: scaler, VarNames: varNames}, nil
}

// Predict evaluates the fitted polynomial at x (raw, unscaled input).
func (f *PolyFit) Predict(x []float64) float64 {
	feats := Expand(f.scaler.TransformRow(x), f.Terms)
	var sum float64
	for i, c := range f.Coefs {
		sum += c * feats[i]
	}
	return sum
}

// NonzeroCoefs counts coefficients with magnitude above tol, excluding the
// bias term.
func (f *PolyFit) NonzeroCoefs(tol float64) int {
	n := 0
	for i, c := range f.Coefs {
		if f.Terms[i].TotalDegree() == 0 {
			continue
		}
		if c > tol || c < -tol {
			n++
		}
	}
	return n
}

// String renders the fitted polynomial.
func (f *PolyFit) String() string {
	var parts []string
	for i, c := range f.Coefs {
		//mosvet:ignore floateq exact-zero skip: Lasso zeroes dropped coefficients bit-exactly; rendering elides them
		if c == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%+.4g·%s", c, f.Terms[i].Name(f.VarNames)))
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " ")
}
