package stats

import "math"

// QRLeastSquares solves min ‖Xβ − y‖² by Householder QR factorization —
// numerically more robust than the normal equations when the polynomial
// feature matrix is badly conditioned (squared condition number vs the
// original). LeastSquares (Cholesky) remains the fast path; the model
// fitting falls back to QR when Cholesky reports a singular system.
func QRLeastSquares(X [][]float64, y []float64) ([]float64, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, ErrDimension
	}
	p := len(X[0])
	if p == 0 || n < p {
		return nil, ErrDimension
	}
	// Working copies: R starts as X, rhs as y.
	r := make([][]float64, n)
	for i := range X {
		if len(X[i]) != p {
			return nil, ErrDimension
		}
		r[i] = append([]float64(nil), X[i]...)
	}
	rhs := append([]float64(nil), y...)

	// Householder reflections, column by column.
	for k := 0; k < p; k++ {
		// norm of the k-th column below the diagonal.
		var norm float64
		for i := k; i < n; i++ {
			norm += r[i][k] * r[i][k]
		}
		norm = math.Sqrt(norm)
		//mosvet:ignore floateq singularity sentinel: an exactly-zero column norm means a rank-deficient design
		if norm == 0 {
			return nil, ErrSingular
		}
		if r[k][k] > 0 {
			norm = -norm
		}
		// v = x - norm*e1, normalized implicitly through beta.
		v := make([]float64, n-k)
		v[0] = r[k][k] - norm
		for i := k + 1; i < n; i++ {
			v[i-k] = r[i][k]
		}
		var vtv float64
		for _, vi := range v {
			vtv += vi * vi
		}
		//mosvet:ignore floateq singularity sentinel: vᵀv is 0.0 only when the Householder vector vanishes
		if vtv == 0 {
			return nil, ErrSingular
		}
		// Apply H = I - 2 v vᵀ / (vᵀv) to the remaining columns and rhs.
		for j := k; j < p; j++ {
			var dot float64
			for i := k; i < n; i++ {
				dot += v[i-k] * r[i][j]
			}
			f := 2 * dot / vtv
			for i := k; i < n; i++ {
				r[i][j] -= f * v[i-k]
			}
		}
		var dot float64
		for i := k; i < n; i++ {
			dot += v[i-k] * rhs[i]
		}
		f := 2 * dot / vtv
		for i := k; i < n; i++ {
			rhs[i] -= f * v[i-k]
		}
	}

	// Back-substitute R β = Qᵀy (upper p×p block).
	beta := make([]float64, p)
	for i := p - 1; i >= 0; i-- {
		sum := rhs[i]
		for j := i + 1; j < p; j++ {
			sum -= r[i][j] * beta[j]
		}
		//mosvet:ignore floateq singularity sentinel: an exactly-zero pivot cannot be divided through
		if r[i][i] == 0 {
			return nil, ErrSingular
		}
		beta[i] = sum / r[i][i]
	}
	return beta, nil
}

// Solve is the least-squares entry point the fitters use: Cholesky first
// (one symmetric p×p factorization), QR as the robust fallback.
func Solve(X [][]float64, y []float64) ([]float64, error) {
	beta, err := LeastSquares(X, y)
	if err == nil {
		return beta, nil
	}
	return QRLeastSquares(X, y)
}
