package stats

import (
	"encoding/json"
	"math"
	"testing"
)

// fitInputs builds a small but non-trivial regression problem.
func fitInputs() ([][]float64, []float64) {
	var X [][]float64
	var y []float64
	for i := 0; i < 30; i++ {
		a := float64(i) * 1.7
		b := 1000 + float64(i*i)*0.3
		c := math.Sqrt(float64(i + 1))
		X = append(X, []float64{a, b, c})
		y = append(y, 5+2*a-0.01*b+3*c*c+0.001*a*b)
	}
	return X, y
}

func TestPolyFitJSONRoundTrip(t *testing.T) {
	X, y := fitInputs()
	fit, err := FitPoly(X, y, 2, []string{"H", "M", "C"})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(fit)
	if err != nil {
		t.Fatal(err)
	}
	var back PolyFit
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	for _, x := range X {
		want, got := fit.Predict(x), back.Predict(x)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("prediction at %v changed across JSON: %v -> %v", x, want, got)
		}
	}
	// Off-hull input exercises the restored scaler too.
	probe := []float64{123.4, 5678.9, 0.01}
	if math.Float64bits(fit.Predict(probe)) != math.Float64bits(back.Predict(probe)) {
		t.Fatal("off-training prediction changed across JSON")
	}
}

func TestLassoFitJSONRoundTrip(t *testing.T) {
	X, y := fitInputs()
	fit, err := FitPolyLasso(X, y, 3, 0.5, []string{"H", "M", "C"})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(fit)
	if err != nil {
		t.Fatal(err)
	}
	var back LassoFit
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Lambda != fit.Lambda {
		t.Fatalf("lambda %v -> %v", fit.Lambda, back.Lambda)
	}
	for _, x := range X {
		want, got := fit.Predict(x), back.Predict(x)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("prediction at %v changed across JSON: %v -> %v", x, want, got)
		}
	}
}

func TestFitStateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":         `{}`,
		"coef mismatch": `{"terms":[[0,0]],"coefs":[1,2],"mean":[0,0],"std":[1,1]}`,
		"zero std":      `{"terms":[[0,0]],"coefs":[1],"mean":[0,0],"std":[1,0]}`,
		"term arity":    `{"terms":[[0,0,0]],"coefs":[1],"mean":[0,0],"std":[1,1]}`,
		"negative exp":  `{"terms":[[-1,0]],"coefs":[1],"mean":[0,0],"std":[1,1]}`,
	}
	for name, raw := range cases {
		var p PolyFit
		if err := json.Unmarshal([]byte(raw), &p); err == nil {
			t.Errorf("%s: PolyFit accepted malformed state %s", name, raw)
		}
		var l LassoFit
		if err := json.Unmarshal([]byte(raw), &l); err == nil {
			t.Errorf("%s: LassoFit accepted malformed state %s", name, raw)
		}
	}
}
