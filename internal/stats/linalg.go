// Package stats provides the regression machinery behind the paper's new
// models (§VII): ordinary least squares, polynomial feature expansion,
// Lasso regression via coordinate descent (the paper's tool for selecting
// the relevant inputs of Mosmodel), K-fold cross-validation (Table 6), and
// the error metrics of Equations 1–2 plus the R² of Table 8.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the fitting routines.
var (
	ErrDimension = errors.New("stats: dimension mismatch")
	ErrSingular  = errors.New("stats: singular system")
	ErrNoData    = errors.New("stats: no data")
)

// LeastSquares solves min ‖Xβ − y‖² by the normal equations with a tiny
// ridge jitter for numerical safety. X is row-major (n rows, p columns).
func LeastSquares(X [][]float64, y []float64) ([]float64, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, ErrDimension
	}
	p := len(X[0])
	if p == 0 || n < p {
		return nil, fmt.Errorf("%w: %d rows for %d parameters", ErrDimension, n, p)
	}
	// A = XᵀX (p×p), b = Xᵀy.
	a := make([][]float64, p)
	for i := range a {
		a[i] = make([]float64, p)
	}
	b := make([]float64, p)
	for r := 0; r < n; r++ {
		row := X[r]
		if len(row) != p {
			return nil, ErrDimension
		}
		for i := 0; i < p; i++ {
			b[i] += row[i] * y[r]
			for j := i; j < p; j++ {
				a[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}
	// Ridge jitter proportional to the diagonal scale.
	var diag float64
	for i := 0; i < p; i++ {
		diag += a[i][i]
	}
	jitter := 1e-10 * (diag/float64(p) + 1)
	for i := 0; i < p; i++ {
		a[i][i] += jitter
	}
	return solveCholesky(a, b)
}

// solveCholesky solves A x = b for symmetric positive-definite A, in place.
func solveCholesky(a [][]float64, b []float64) ([]float64, error) {
	p := len(a)
	// Decompose A = L Lᵀ.
	l := make([][]float64, p)
	for i := range l {
		l[i] = make([]float64, p)
	}
	for i := 0; i < p; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrSingular
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	// Forward solve L z = b.
	z := make([]float64, p)
	for i := 0; i < p; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * z[k]
		}
		z[i] = sum / l[i][i]
	}
	// Back solve Lᵀ x = z.
	x := make([]float64, p)
	for i := p - 1; i >= 0; i-- {
		sum := z[i]
		for k := i + 1; k < p; k++ {
			sum -= l[k][i] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x, nil
}

// Scaler standardizes columns to zero mean and unit variance.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler learns per-column statistics. Constant columns get Std 1 so
// they transform to zero rather than NaN.
func FitScaler(X [][]float64) (*Scaler, error) {
	if len(X) == 0 {
		return nil, ErrNoData
	}
	p := len(X[0])
	s := &Scaler{Mean: make([]float64, p), Std: make([]float64, p)}
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s, nil
}

// Transform returns the standardized copy of X.
func (s *Scaler) Transform(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = (v - s.Mean[j]) / s.Std[j]
		}
		out[i] = r
	}
	return out
}

// TransformRow standardizes a single row.
func (s *Scaler) TransformRow(x []float64) []float64 {
	r := make([]float64, len(x))
	for j, v := range x {
		r[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return r
}
