package stats

import (
	"math"
	"math/rand"
)

// MaxAbsRelErr is the paper's Equation 1: the maximal |y−ŷ|/y over the
// samples — the headline metric of every figure.
func MaxAbsRelErr(y, yhat []float64) float64 {
	var worst float64
	for i := range y {
		//mosvet:ignore floateq exact-zero sentinel: relative error is undefined at y=0.0, skip the point
		if y[i] == 0 {
			continue
		}
		e := math.Abs((y[i] - yhat[i]) / y[i])
		if e > worst {
			worst = e
		}
	}
	return worst
}

// GeoMeanAbsRelErr is the paper's Equation 2: the geometric mean of the
// absolute relative errors. Exact zeros (models pass through their anchor
// points) are clamped to a tiny floor so the product stays meaningful.
func GeoMeanAbsRelErr(y, yhat []float64) float64 {
	const floor = 1e-9
	var logSum float64
	n := 0
	for i := range y {
		//mosvet:ignore floateq exact-zero sentinel: relative error is undefined at y=0.0, skip the point
		if y[i] == 0 {
			continue
		}
		e := math.Abs((y[i] - yhat[i]) / y[i])
		if e < floor {
			e = floor
		}
		logSum += math.Log(e)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// R2 is the coefficient of determination of Table 8: 1 − SSres/SStot,
// clamped at 0 (the paper reports 0 when the best regressor is the mean).
func R2(y, yhat []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i := range y {
		ssRes += (y[i] - yhat[i]) * (y[i] - yhat[i])
		ssTot += (y[i] - mean) * (y[i] - mean)
	}
	//mosvet:ignore floateq exact-zero sentinel: ssTot is a sum of squares, 0.0 only for a constant y
	if ssTot == 0 {
		return 0
	}
	r2 := 1 - ssRes/ssTot
	if r2 < 0 {
		return 0
	}
	return r2
}

// KFoldIndices partitions {0…n−1} into k shuffled folds (§VI-C's
// cross-validation protocol for Table 6).
func KFoldIndices(n, k int, seed int64) [][]int {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds
}
