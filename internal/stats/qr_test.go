package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRExactLine(t *testing.T) {
	X := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{2, 5, 8, 11}
	beta, err := QRLeastSquares(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-2) > 1e-9 || math.Abs(beta[1]-3) > 1e-9 {
		t.Errorf("beta = %v, want [2 3]", beta)
	}
}

// Property: QR and Cholesky agree on well-conditioned random problems.
func TestQRMatchesCholesky(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 40, 4
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, p)
			row[0] = 1
			for j := 1; j < p; j++ {
				row[j] = rng.NormFloat64()
			}
			X[i] = row
			y[i] = rng.NormFloat64()
		}
		a, err1 := LeastSquares(X, y)
		b, err2 := QRLeastSquares(X, y)
		if err1 != nil || err2 != nil {
			return false
		}
		for j := range a {
			if math.Abs(a[j]-b[j]) > 1e-6*(math.Abs(a[j])+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// QR survives conditioning that is hard on the normal equations: nearly
// collinear columns.
func TestQRIllConditioned(t *testing.T) {
	n := 50
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n)
		// Second and third columns nearly identical.
		X[i] = []float64{1, x, x * (1 + 1e-9)}
		y[i] = 1 + 2*x
	}
	beta, err := QRLeastSquares(X, y)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions must be right even if individual coefficients split
	// arbitrarily between the collinear columns.
	for i := 0; i < n; i++ {
		pred := beta[0]*X[i][0] + beta[1]*X[i][1] + beta[2]*X[i][2]
		if math.Abs(pred-y[i]) > 1e-4 {
			t.Fatalf("row %d: pred %v want %v", i, pred, y[i])
		}
	}
}

func TestQRErrors(t *testing.T) {
	if _, err := QRLeastSquares(nil, nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := QRLeastSquares([][]float64{{1, 2, 3}}, []float64{1}); err == nil {
		t.Error("underdetermined should fail")
	}
	if _, err := QRLeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should fail")
	}
	// All-zero column is singular.
	X := [][]float64{{1, 0}, {1, 0}, {1, 0}}
	if _, err := QRLeastSquares(X, []float64{1, 2, 3}); err == nil {
		t.Error("zero column should report singular")
	}
}

func TestSolveFallsBackToQR(t *testing.T) {
	// A well-conditioned system must solve either way.
	X := [][]float64{{1, 0}, {1, 1}, {1, 2}}
	y := []float64{1, 2, 3}
	beta, err := Solve(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[1]-1) > 1e-9 {
		t.Errorf("beta = %v", beta)
	}
}
