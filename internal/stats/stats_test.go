package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLeastSquaresExact(t *testing.T) {
	// y = 2 + 3x, exactly.
	X := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{2, 5, 8, 11}
	beta, err := LeastSquares(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-2) > 1e-6 || math.Abs(beta[1]-3) > 1e-6 {
		t.Errorf("beta = %v, want [2 3]", beta)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 100
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 10
		X[i] = []float64{1, x, x * x}
		y[i] = 1 + 2*x - 0.5*x*x + rng.NormFloat64()*0.01
	}
	beta, err := LeastSquares(X, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, -0.5}
	for j := range want {
		if math.Abs(beta[j]-want[j]) > 0.05 {
			t.Errorf("beta[%d] = %v, want %v", j, beta[j], want[j])
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := LeastSquares([][]float64{{1, 2, 3}}, []float64{1}); err == nil {
		t.Error("more params than rows should fail")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should fail")
	}
}

func TestScaler(t *testing.T) {
	X := [][]float64{{1, 100}, {3, 200}, {5, 300}}
	s, err := FitScaler(X)
	if err != nil {
		t.Fatal(err)
	}
	xs := s.Transform(X)
	for j := 0; j < 2; j++ {
		var mean, va float64
		for i := range xs {
			mean += xs[i][j]
		}
		mean /= 3
		for i := range xs {
			va += (xs[i][j] - mean) * (xs[i][j] - mean)
		}
		if math.Abs(mean) > 1e-9 || math.Abs(va/3-1) > 1e-9 {
			t.Errorf("column %d not standardized: mean=%v var=%v", j, mean, va/3)
		}
	}
	// Constant column: no NaN.
	s2, _ := FitScaler([][]float64{{5}, {5}})
	if got := s2.TransformRow([]float64{5})[0]; got != 0 || math.IsNaN(got) {
		t.Errorf("constant column transform = %v", got)
	}
}

func TestMonomialsCount(t *testing.T) {
	// C(n+d, d) terms for n vars, degree d.
	cases := []struct{ nvars, degree, want int }{
		{1, 1, 2},
		{1, 3, 4},
		{3, 1, 4},
		{3, 2, 10},
		{3, 3, 20}, // Mosmodel's 20 terms (Equation 3)
	}
	for _, c := range cases {
		got := Monomials(c.nvars, c.degree)
		if len(got) != c.want {
			t.Errorf("Monomials(%d,%d) = %d terms, want %d", c.nvars, c.degree, len(got), c.want)
		}
		seen := map[string]bool{}
		vars := []string{"a", "b", "c"}[:c.nvars]
		for _, m := range got {
			name := m.Name(vars)
			if seen[name] {
				t.Errorf("duplicate term %s", name)
			}
			seen[name] = true
			if m.TotalDegree() > c.degree {
				t.Errorf("term %s exceeds degree", name)
			}
		}
	}
}

func TestMonomialName(t *testing.T) {
	vars := []string{"H", "M", "C"}
	if got := (Monomial{0, 0, 0}).Name(vars); got != "1" {
		t.Errorf("bias name = %q", got)
	}
	if got := (Monomial{1, 0, 2}).Name(vars); got != "H*C^2" {
		t.Errorf("name = %q", got)
	}
}

func TestFitPolyRecoversCubic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 60
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 1e8 // realistic counter magnitudes
		X[i] = []float64{x}
		xr := x / 1e8
		y[i] = 5e8 + 3e8*xr - 2e8*xr*xr + 1e8*xr*xr*xr
	}
	f, err := FitPoly(X, y, 3, []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	preds := make([]float64, n)
	for i := range X {
		preds[i] = f.Predict(X[i])
	}
	if e := MaxAbsRelErr(y, preds); e > 1e-6 {
		t.Errorf("cubic fit max error = %v", e)
	}
}

func TestFitPolyUnderdetermined(t *testing.T) {
	// 3 samples cannot fit 4 cubic coefficients.
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{1, 2, 3}
	if _, err := FitPoly(X, y, 3, []string{"x"}); err == nil {
		t.Error("underdetermined fit should fail")
	}
}

func TestLassoShrinksToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 80
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		X[i] = []float64{a, b, c}
		// Only the first variable matters.
		y[i] = 10 + 5*a + rng.NormFloat64()*0.001
	}
	f, err := FitPolyLasso(X, y, 1, 0.05, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if nz := f.NonzeroCoefs(1e-6); nz != 1 {
		t.Errorf("Lasso kept %d coefficients, want 1 (only a matters): %v", nz, f.SelectedTerms(1e-6))
	}
	sel := f.SelectedTerms(1e-6)
	if len(sel) != 1 || sel[0] != "a" {
		t.Errorf("selected = %v, want [a]", sel)
	}
}

func TestLassoZeroLambdaMatchesOLS(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 50
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 100
		X[i] = []float64{x}
		y[i] = 3 + 2*x
	}
	f, err := FitPolyLasso(X, y, 1, 0, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	preds := make([]float64, n)
	for i := range X {
		preds[i] = f.Predict(X[i])
	}
	if e := MaxAbsRelErr(y, preds); e > 1e-6 {
		t.Errorf("lambda=0 Lasso max error = %v, want exact fit", e)
	}
}

func TestLassoLargerLambdaSparser(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 54
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		h, m, c := rng.Float64()*1e6, rng.Float64()*1e6, rng.Float64()*1e8
		X[i] = []float64{h, m, c}
		y[i] = 1e9 + 0.7*c + 1e-7*c*c/1e2 + 3*m + rng.NormFloat64()*1e5
	}
	small, _ := FitPolyLasso(X, y, 3, 0.001, []string{"H", "M", "C"})
	large, _ := FitPolyLasso(X, y, 3, 0.2, []string{"H", "M", "C"})
	if large.NonzeroCoefs(1e-9) > small.NonzeroCoefs(1e-9) {
		t.Errorf("larger lambda kept more coefficients: %d > %d",
			large.NonzeroCoefs(1e-9), small.NonzeroCoefs(1e-9))
	}
}

func TestMaxAbsRelErr(t *testing.T) {
	y := []float64{100, 200, 0}
	yhat := []float64{110, 190, 5}
	if got := MaxAbsRelErr(y, yhat); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("max error = %v, want 0.1 (zero-y samples skipped)", got)
	}
	if MaxAbsRelErr(nil, nil) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestGeoMeanAbsRelErr(t *testing.T) {
	y := []float64{100, 100}
	yhat := []float64{110, 101} // errors 0.1 and 0.01
	want := math.Sqrt(0.1 * 0.01)
	if got := GeoMeanAbsRelErr(y, yhat); math.Abs(got-want) > 1e-9 {
		t.Errorf("geomean = %v, want %v", got, want)
	}
	// Exact predictions clamp rather than zeroing the product.
	if got := GeoMeanAbsRelErr([]float64{1, 1}, []float64{1, 2}); got <= 0 {
		t.Errorf("geomean with exact sample = %v, want > 0", got)
	}
}

func TestR2(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if got := R2(y, y); got != 1 {
		t.Errorf("perfect R2 = %v", got)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(y, mean); got != 0 {
		t.Errorf("mean-predictor R2 = %v, want 0", got)
	}
	// Worse than the mean clamps to 0, as in Table 8.
	if got := R2(y, []float64{4, 3, 2, 1}); got != 0 {
		t.Errorf("bad-predictor R2 = %v, want clamp 0", got)
	}
	if R2(nil, nil) != 0 {
		t.Error("empty R2 should be 0")
	}
	if got := R2([]float64{5, 5}, []float64{5, 5}); got != 0 {
		t.Error("constant y should give 0 (no variance to explain)")
	}
}

func TestKFoldIndices(t *testing.T) {
	folds := KFoldIndices(54, 6, 1)
	if len(folds) != 6 {
		t.Fatalf("%d folds", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		if len(f) != 9 {
			t.Errorf("fold size %d, want 9", len(f))
		}
		for _, i := range f {
			if seen[i] {
				t.Fatalf("index %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 54 {
		t.Errorf("covered %d indices", len(seen))
	}
	// k > n clamps; k < 2 clamps.
	if got := KFoldIndices(3, 10, 1); len(got) != 3 {
		t.Errorf("k>n: %d folds", len(got))
	}
	if got := KFoldIndices(10, 1, 1); len(got) != 2 {
		t.Errorf("k<2: %d folds", len(got))
	}
}

// Property: predictions of FitPoly are invariant to input scaling of the
// problem (the internal standardization works).
func TestFitPolyScaleInvariance(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		X := make([][]float64, n)
		Xbig := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x := rng.Float64()
			X[i] = []float64{x}
			Xbig[i] = []float64{x * 1e9}
			y[i] = 2 + x + 0.5*x*x
		}
		f1, err1 := FitPoly(X, y, 2, []string{"x"})
		f2, err2 := FitPoly(Xbig, y, 2, []string{"x"})
		if err1 != nil || err2 != nil {
			return false
		}
		for i := 0; i < n; i++ {
			p1, p2 := f1.Predict(X[i]), f2.Predict(Xbig[i])
			if math.Abs(p1-p2) > 1e-6*(math.Abs(p1)+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
