package stats

import (
	"encoding/json"
	"fmt"
)

// JSON round-trips for fitted regressions. A fit is its term list, its
// coefficients, and the input-standardization statistics baked in at fit
// time; serializing all three reproduces Predict bit for bit, because
// encoding/json renders float64 values in Go's shortest round-trippable
// form. The model registry (internal/serve/registry) persists fitted
// models through these hooks so a daemon restart serves the exact same
// predictions as the training run.

// fitState is the common wire shape of PolyFit and LassoFit.
type fitState struct {
	Terms    []Monomial `json:"terms"`
	Coefs    []float64  `json:"coefs"`
	Mean     []float64  `json:"mean"`
	Std      []float64  `json:"std"`
	VarNames []string   `json:"vars,omitempty"`
	Lambda   float64    `json:"lambda,omitempty"`
}

// validate rejects states that would make Predict misbehave rather than
// letting a malformed registry file surface as NaNs at serving time.
func (s *fitState) validate() error {
	if len(s.Terms) == 0 || len(s.Coefs) != len(s.Terms) {
		return fmt.Errorf("stats: fit state has %d coefficients for %d terms", len(s.Coefs), len(s.Terms))
	}
	nvars := len(s.Mean)
	if nvars == 0 || len(s.Std) != nvars {
		return fmt.Errorf("stats: fit state has %d means and %d stds", len(s.Mean), len(s.Std))
	}
	for _, sd := range s.Std {
		//mosvet:ignore floateq exact-zero sentinel: a decoded 0.0 std would divide by zero in Predict
		if sd == 0 {
			return fmt.Errorf("stats: fit state has a zero standard deviation")
		}
	}
	for _, t := range s.Terms {
		if len(t) != nvars {
			return fmt.Errorf("stats: term %v spans %d variables, scaler has %d", t, len(t), nvars)
		}
		for _, e := range t {
			if e < 0 {
				return fmt.Errorf("stats: term %v has a negative exponent", t)
			}
		}
	}
	return nil
}

// MarshalJSON implements json.Marshaler.
func (f *PolyFit) MarshalJSON() ([]byte, error) {
	return json.Marshal(fitState{
		Terms: f.Terms, Coefs: f.Coefs,
		Mean: f.scaler.Mean, Std: f.scaler.Std,
		VarNames: f.VarNames,
	})
}

// UnmarshalJSON implements json.Unmarshaler, replacing the receiver with
// the serialized fit.
func (f *PolyFit) UnmarshalJSON(data []byte) error {
	var s fitState
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if err := s.validate(); err != nil {
		return err
	}
	f.Terms = s.Terms
	f.Coefs = s.Coefs
	f.VarNames = s.VarNames
	f.scaler = &Scaler{Mean: s.Mean, Std: s.Std}
	return nil
}

// MarshalJSON implements json.Marshaler.
func (f *LassoFit) MarshalJSON() ([]byte, error) {
	return json.Marshal(fitState{
		Terms: f.Terms, Coefs: f.Coefs,
		Mean: f.scaler.Mean, Std: f.scaler.Std,
		VarNames: f.VarNames, Lambda: f.Lambda,
	})
}

// UnmarshalJSON implements json.Unmarshaler, replacing the receiver with
// the serialized fit.
func (f *LassoFit) UnmarshalJSON(data []byte) error {
	var s fitState
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if err := s.validate(); err != nil {
		return err
	}
	f.Terms = s.Terms
	f.Coefs = s.Coefs
	f.VarNames = s.VarNames
	f.Lambda = s.Lambda
	f.scaler = &Scaler{Mean: s.Mean, Std: s.Std}
	return nil
}
