package stats

import (
	"math"
)

// LassoFit is a fitted L1-regularized polynomial regression. The paper
// uses Lasso for Mosmodel both to fight overfitting and to select the
// relevant inputs: with 54 samples and 20 candidate terms, Lasso keeps at
// most a handful of nonzero coefficients (the one-in-ten rule, §VI-C).
type LassoFit struct {
	Terms    []Monomial
	Coefs    []float64 // on standardized features; Coefs[bias] is intercept
	scaler   *Scaler
	Lambda   float64
	VarNames []string
}

// FitPolyLasso fits an L1-penalized polynomial of the given total degree
// by cyclic coordinate descent on standardized features. lambda is the
// penalty in units of the standardized problem; the intercept is never
// penalized.
func FitPolyLasso(X [][]float64, y []float64, degree int, lambda float64, varNames []string) (*LassoFit, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, ErrDimension
	}
	scaler, err := FitScaler(X)
	if err != nil {
		return nil, err
	}
	xs := scaler.Transform(X)
	terms := Monomials(len(X[0]), degree)
	n, p := len(xs), len(terms)

	// Build and standardize the feature matrix (bias column excluded from
	// standardization and penalty).
	feats := make([][]float64, n)
	for i, row := range xs {
		feats[i] = Expand(row, terms)
	}
	fs, err := FitScaler(feats)
	if err != nil {
		return nil, err
	}
	// Column-major standardized features for fast coordinate updates.
	cols := make([][]float64, p)
	for j := 0; j < p; j++ {
		cols[j] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			if terms[j].TotalDegree() == 0 {
				cols[j][i] = 1
			} else {
				cols[j][i] = (feats[i][j] - fs.Mean[j]) / fs.Std[j]
			}
		}
	}
	yMean := 0.0
	for _, v := range y {
		yMean += v
	}
	yMean /= float64(n)

	beta := make([]float64, p)
	resid := make([]float64, n)
	for i := range resid {
		resid[i] = y[i] - yMean
	}
	// Coordinate descent.
	const maxIter = 2000
	const tol = 1e-10
	for iter := 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for j := 0; j < p; j++ {
			if terms[j].TotalDegree() == 0 {
				continue // intercept handled via yMean
			}
			col := cols[j]
			// rho = (1/n) Σ col_i (resid_i + col_i βj); columns have unit
			// variance so the denominator is 1.
			var rho float64
			for i := 0; i < n; i++ {
				rho += col[i] * (resid[i] + col[i]*beta[j])
			}
			rho /= float64(n)
			nb := softThreshold(rho, lambda)
			//mosvet:ignore floateq exact no-op skip: d is 0.0 iff the coordinate update leaves beta bit-identical
			if d := nb - beta[j]; d != 0 {
				for i := 0; i < n; i++ {
					resid[i] -= d * col[i]
				}
				if ad := math.Abs(d); ad > maxDelta {
					maxDelta = ad
				}
				beta[j] = nb
			}
		}
		if maxDelta < tol {
			break
		}
	}

	// Fold the feature standardization back into raw-feature coefficients
	// and intercept (both still over scaler-standardized inputs).
	coefs := make([]float64, p)
	intercept := yMean
	for j := 0; j < p; j++ {
		if terms[j].TotalDegree() == 0 {
			continue
		}
		coefs[j] = beta[j] / fs.Std[j]
		intercept -= beta[j] * fs.Mean[j] / fs.Std[j]
	}
	for j := 0; j < p; j++ {
		if terms[j].TotalDegree() == 0 {
			coefs[j] = intercept
		}
	}
	return &LassoFit{Terms: terms, Coefs: coefs, scaler: scaler, Lambda: lambda, VarNames: varNames}, nil
}

func softThreshold(x, l float64) float64 {
	switch {
	case x > l:
		return x - l
	case x < -l:
		return x + l
	}
	return 0
}

// Predict evaluates the fit at raw input x.
func (f *LassoFit) Predict(x []float64) float64 {
	feats := Expand(f.scaler.TransformRow(x), f.Terms)
	var sum float64
	for i, c := range f.Coefs {
		sum += c * feats[i]
	}
	return sum
}

// Contributions returns each term's additive contribution — coefficient
// times expanded feature — to Predict(x), in Terms order; the slice sums
// to Predict(x). The adaptive sweep planner compares per-term
// contributions across K-fold refits to measure where the fitted surface
// is unstable.
func (f *LassoFit) Contributions(x []float64) []float64 {
	feats := Expand(f.scaler.TransformRow(x), f.Terms)
	out := make([]float64, len(f.Coefs))
	for i, c := range f.Coefs {
		out[i] = c * feats[i]
	}
	return out
}

// NonzeroCoefs counts non-bias coefficients above tol in magnitude.
func (f *LassoFit) NonzeroCoefs(tol float64) int {
	n := 0
	for i, c := range f.Coefs {
		if f.Terms[i].TotalDegree() == 0 {
			continue
		}
		if c > tol || c < -tol {
			n++
		}
	}
	return n
}

// SelectedTerms names the surviving terms (for reporting which inputs
// Lasso selected, §VII-C).
func (f *LassoFit) SelectedTerms(tol float64) []string {
	var out []string
	for i, c := range f.Coefs {
		if f.Terms[i].TotalDegree() == 0 {
			continue
		}
		if c > tol || c < -tol {
			out = append(out, f.Terms[i].Name(f.VarNames))
		}
	}
	return out
}
