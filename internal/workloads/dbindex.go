package workloads

import (
	"fmt"
	"math/rand"

	"mosaic/internal/dbindex"
	"mosaic/internal/trace"
)

// Database-index workloads: multi-phase composites over the synthetic
// kernels of internal/dbindex. Each pairs a store-heavy, mostly sequential
// build/load regime with a random, pointer-chasing probe or merge regime —
// the phase structure that makes per-phase sampled extrapolation earn its
// keep (a sampler that scales build-regime rates over probe accesses is
// wrong in exactly the way headline totals hide).
//
// Footprints target tens of megabytes, matching the suite's ÷256 scaling
// convention: what the models consume is the relationship between access
// structure and (H, M, C), not absolute table sizes.

// dbindexGeometry centralizes the suite's index shapes.
var dbindexGeometry = struct {
	btreeKeys, btreeNode, btreeChase int
	lsmRuns, lsmEntries, lsmEntry    int
	joinBuckets, joinChain           int
}{
	btreeKeys:  1 << 20, // 1M keys, 512B nodes -> ~17MB tree, depth 5
	btreeNode:  512,
	btreeChase: 2,
	lsmRuns:    8, // 8 x 2MB runs + 16MB output
	lsmEntries: 1 << 15,
	lsmEntry:   64,
	joinBuckets: 1 << 18, // 4MB buckets + 32MB chain pool
	joinChain:   4,
}

// DBIndex returns the database-index suite: B+-tree point and range
// composites under three key distributions, the LSM load/compact cycle,
// and hash-join build/probe mixes.
func DBIndex() []Workload {
	return []Workload{
		NewBTreePoint(dbindex.Zipfian),
		NewBTreePoint(dbindex.Uniform),
		NewBTreeRange(dbindex.Sorted),
		NewLSMLoadCompact(),
		NewHashJoin(dbindex.Uniform),
		NewHashJoin(dbindex.Zipfian),
	}
}

// btreeArena lays out a B+-tree in freshly mapped anonymous memory.
func btreeArena(alloc *Allocator) (*dbindex.BTree, error) {
	g := dbindexGeometry
	bt := &dbindex.BTree{Keys: g.btreeKeys, NodeBytes: g.btreeNode, ChaseDepth: g.btreeChase}
	size, err := bt.ArenaBytes()
	if err != nil {
		return nil, err
	}
	base, err := alloc.MmapAnon(size)
	if err != nil {
		return nil, fmt.Errorf("dbindex: mapping btree arena: %w", err)
	}
	bt.Base = base
	return bt, nil
}

// btreeAnonBytes is the pool requirement shared by the B+-tree workloads.
func btreeAnonBytes() uint64 {
	g := dbindexGeometry
	bt := &dbindex.BTree{Keys: g.btreeKeys, NodeBytes: g.btreeNode}
	size, _ := bt.ArenaBytes()
	return size
}

// NewBTreePoint is the build-then-probe composite: phase "build" bulk-loads
// the tree in key order (sequential stores with occasional upper-level
// writes), phase "probe" issues point lookups under the key distribution —
// root-to-leaf pointer chases with intra-node binary search.
func NewBTreePoint(dist dbindex.Dist) Workload {
	name := "dbindex/btree-point-" + dist.String()
	return Phased(name, "dbindex", 1<<20, btreeAnonBytes(),
		func(alloc *Allocator, rng *rand.Rand) ([]Stage, error) {
			bt, err := btreeArena(alloc)
			if err != nil {
				return nil, err
			}
			keys := dist.Generator(rng, bt.Keys)
			return []Stage{
				{Name: "build", Weight: 1, Emit: func(b *trace.Builder, i int) {
					bt.BulkInsert(b, i%bt.Keys)
				}},
				{Name: "probe", Weight: 2, Emit: func(b *trace.Builder, i int) {
					bt.PointLookup(b, keys())
				}},
			}, nil
		})
}

// NewBTreeRange is the build-then-scan composite: after the bulk build,
// phase "scan" descends to a key and walks 64 entries across sibling
// leaves — the OLAP bulk-read mix.
func NewBTreeRange(dist dbindex.Dist) Workload {
	name := "dbindex/btree-range-" + dist.String()
	return Phased(name, "dbindex", 1<<20, btreeAnonBytes(),
		func(alloc *Allocator, rng *rand.Rand) ([]Stage, error) {
			bt, err := btreeArena(alloc)
			if err != nil {
				return nil, err
			}
			keys := dist.Generator(rng, bt.Keys)
			return []Stage{
				{Name: "build", Weight: 1, Emit: func(b *trace.Builder, i int) {
					bt.BulkInsert(b, i%bt.Keys)
				}},
				{Name: "scan", Weight: 2, Emit: func(b *trace.Builder, i int) {
					bt.RangeScan(b, keys(), 64)
				}},
			}, nil
		})
}

// NewLSMLoadCompact is the load-then-compact cycle: phase "load" drains
// memtable flushes into the runs (pure sequential stores), phase "compact"
// runs the K-way merge — one sequential read stream per run plus the
// output write stream.
func NewLSMLoadCompact() Workload {
	g := dbindexGeometry
	l := &dbindex.LSM{Runs: g.lsmRuns, RunEntries: g.lsmEntries, EntryBytes: g.lsmEntry}
	size, _ := l.ArenaBytes()
	return Phased("dbindex/lsm-loadcompact", "dbindex", 1<<20, size,
		func(alloc *Allocator, rng *rand.Rand) ([]Stage, error) {
			lsm := &dbindex.LSM{Runs: g.lsmRuns, RunEntries: g.lsmEntries, EntryBytes: g.lsmEntry}
			arena, err := lsm.ArenaBytes()
			if err != nil {
				return nil, err
			}
			base, err := alloc.MmapAnon(arena)
			if err != nil {
				return nil, fmt.Errorf("dbindex: mapping lsm arena: %w", err)
			}
			lsm.Base = base
			lsm.Reset()
			return []Stage{
				{Name: "load", Weight: 1, Emit: func(b *trace.Builder, i int) {
					lsm.Append(b, i)
				}},
				{Name: "compact", Weight: 1, Emit: func(b *trace.Builder, i int) {
					lsm.CompactStep(b, i)
				}},
			}, nil
		})
}

// NewHashJoin is the build-then-probe hash join: phase "build" inserts
// tuples (random bucket-header and chain-node stores), phase "probe" walks
// bucket chains under the key distribution — dependent loads end to end.
func NewHashJoin(dist dbindex.Dist) Workload {
	g := dbindexGeometry
	h := &dbindex.HashJoin{Buckets: g.joinBuckets, ChainLen: g.joinChain}
	size, _ := h.ArenaBytes()
	keySpace := g.joinBuckets * 2
	return Phased("dbindex/hashjoin-"+dist.String(), "dbindex", 1<<20, size,
		func(alloc *Allocator, rng *rand.Rand) ([]Stage, error) {
			hj := &dbindex.HashJoin{Buckets: g.joinBuckets, ChainLen: g.joinChain}
			arena, err := hj.ArenaBytes()
			if err != nil {
				return nil, err
			}
			base, err := alloc.MmapAnon(arena)
			if err != nil {
				return nil, fmt.Errorf("dbindex: mapping hashjoin arena: %w", err)
			}
			hj.Base = base
			keys := dist.Generator(rng, keySpace)
			return []Stage{
				{Name: "build", Weight: 1, Emit: func(b *trace.Builder, i int) {
					hj.BuildInsert(b, keys())
				}},
				{Name: "probe", Weight: 2, Emit: func(b *trace.Builder, i int) {
					hj.Probe(b, keys())
				}},
			}, nil
		})
}
