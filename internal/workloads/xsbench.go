package workloads

import (
	"fmt"
	"math/rand"

	"mosaic/internal/mem"
	"mosaic/internal/trace"
)

// XSBench models the XSBench Monte Carlo neutron-transport kernel: each
// lookup binary-searches a unionized energy grid, then gathers cross-
// section rows for a handful of nuclides at grid-dependent offsets. The
// binary search is a dependent chain; the gathers are independent — a mix
// between mcf's chasing and gups' scatter.
//
// Scaling: the paper's 4/8/16GB problems become 32/64/128MB (÷128).
type XSBench struct {
	stretchable
	name  string
	bytes uint64
}

// NewXSBench builds an instance; label is the paper's size label.
func NewXSBench(label string, bytes uint64) *XSBench {
	return &XSBench{name: "xsbench/" + label, bytes: bytes}
}

// Name implements Workload.
func (x *XSBench) Name() string { return x.tag(x.name) }

// Suite implements Workload.
func (x *XSBench) Suite() string { return "xsbench" }

// Array split: 1/8 unionized energy grid, 7/8 nuclide cross-section data.
func (x *XSBench) split() (gridBytes, xsBytes uint64) {
	return x.bytes / 8, x.bytes - x.bytes/8
}

// PoolBytes implements Workload: XSBench mallocs its arrays (it is one of
// the multithreaded workloads whose contention arenas libhugetlbfs loses;
// Mosalloc keeps them on the heap pool).
func (x *XSBench) PoolBytes() (heap, anon uint64) {
	return roundPool(x.bytes), roundPool(1 << 20)
}

// Generate implements Workload.
func (x *XSBench) Generate(alloc *Allocator) (*trace.Trace, error) {
	gridBytes, xsBytes := x.split()
	gridVA, err := alloc.Malloc(gridBytes)
	if err != nil {
		return nil, fmt.Errorf("xsbench: grid: %w", err)
	}
	xsVA, err := alloc.Malloc(xsBytes)
	if err != nil {
		return nil, fmt.Errorf("xsbench: cross sections: %w", err)
	}
	rng := rand.New(rand.NewSource(seedFor(x.name)))
	budget := x.budget()
	b := trace.NewBuilder(x.Name(), budget)

	gridEntries := gridBytes / 16 // (energy, index) pairs
	const nuclidesPerLookup = 6
	for b.Len() < budget {
		// Binary search over the energy grid: a dependent chain whose
		// successive probes shrink toward the target (decent locality at
		// the tail, page-crossing at the head).
		lo, hi := uint64(0), gridEntries
		b.Compute(10)
		for hi-lo > 1 && b.Len() < budget {
			mid := (lo + hi) / 2
			b.Compute(3)
			b.LoadDep(gridVA + mem.Addr(mid*16))
			if rng.Intn(2) == 0 {
				hi = mid
			} else {
				lo = mid
			}
		}
		// Gather cross-section rows: independent random reads.
		for n := 0; n < nuclidesPerLookup && b.Len() < budget; n++ {
			off := mem.Addr(rng.Uint64() % (xsBytes / 64) * 64)
			b.Compute(4)
			b.Load(xsVA + off)
		}
		b.Compute(30) // macroscopic XS accumulation
	}
	return b.Trace(), nil
}
