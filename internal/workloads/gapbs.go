package workloads

import (
	"fmt"

	"mosaic/internal/graph"
	"mosaic/internal/trace"
)

// GAPBS models the GAP Benchmark Suite kernels the paper measures:
// betweenness centrality (bc), PageRank (pr), breadth-first search (bfs),
// and single-source shortest paths (sssp), each over one of three input
// graphs shaped like GAPBS's twitter (power-law), road (high-diameter
// grid), and web (hub-dominated crawl).
//
// Scaling: the real twitter graph (61M vertices / 1.5B edges) becomes a
// 2^18-vertex synthetic with matching degree shape; road and web scale
// similarly. gapbs/bfs-road keeps its defining property: enough locality
// that big-TLB machines (Broadwell) see almost no misses, so the harness
// classifies it as TLB-insensitive there, exactly as the paper reports.
type GAPBS struct {
	stretchable
	kernel string
	input  string
}

// NewGAPBS builds a gapbs workload from kernel ∈ {bc,pr,bfs,sssp} and
// input ∈ {twitter,road,web}.
func NewGAPBS(kernel, input string) *GAPBS {
	return &GAPBS{kernel: kernel, input: input}
}

// Name implements Workload.
func (g *GAPBS) Name() string { return g.tag(g.baseName()) }

func (g *GAPBS) baseName() string { return fmt.Sprintf("gapbs/%s-%s", g.kernel, g.input) }

// Suite implements Workload.
func (g *GAPBS) Suite() string { return "gapbs" }

// graphDims returns the generator parameters per input.
func (g *GAPBS) graphDims() (n, edgeFactor int) {
	switch g.input {
	case "twitter":
		return 1 << 20, 8
	case "web":
		return 1 << 20, 8
	case "road":
		// Locality-heavy grid: modest footprint, huge diameter.
		return 0, 0 // handled specially
	}
	return 1 << 16, 8
}

func (g *GAPBS) build() *graph.Graph {
	seed := seedFor(g.baseName())
	switch g.input {
	case "twitter":
		n, ef := g.graphDims()
		return graph.GenerateTwitter(n, ef, seed)
	case "web":
		n, ef := g.graphDims()
		return graph.GenerateWeb(n, ef, seed)
	case "road":
		return graph.GenerateRoad(8192, 16, seed)
	}
	n, ef := g.graphDims()
	return graph.GenerateTwitter(n, ef, seed)
}

// arrayBytes computes the CSR + node array sizes for pool provisioning
// without generating the graph.
func (g *GAPBS) arrayBytes() (offsets, edges, nodes uint64) {
	var n, m uint64
	switch g.input {
	case "road":
		n = 8192 * 16
		// Grid: ≤4 edges per vertex both ways + shortcuts.
		m = n*4 + n/100
	default:
		nn, ef := g.graphDims()
		n, m = uint64(nn), uint64(nn*ef)
	}
	return (n + 1) * 4, m * 4, n * 32
}

// PoolBytes implements Workload: GAPBS loads graphs via mmap.
func (g *GAPBS) PoolBytes() (heap, anon uint64) {
	o, e, nd := g.arrayBytes()
	// offsets + edges + weights + two node arrays.
	return roundPool(1 << 20), roundPool(o + 2*e + 2*nd)
}

// Generate implements Workload.
func (g *GAPBS) Generate(alloc *Allocator) (*trace.Trace, error) {
	gr := g.build()
	o := uint64(len(gr.Offsets)) * 4
	e := uint64(len(gr.Edges)) * 4
	nd := uint64(gr.N) * 32

	offsetsVA, err := alloc.MmapAnon(o)
	if err != nil {
		return nil, fmt.Errorf("gapbs: %w", err)
	}
	edgesVA, err := alloc.MmapAnon(e)
	if err != nil {
		return nil, fmt.Errorf("gapbs: %w", err)
	}
	weightsVA, err := alloc.MmapAnon(e)
	if err != nil {
		return nil, fmt.Errorf("gapbs: %w", err)
	}
	nodeA, err := alloc.MmapAnon(nd)
	if err != nil {
		return nil, fmt.Errorf("gapbs: %w", err)
	}
	nodeB, err := alloc.MmapAnon(nd)
	if err != nil {
		return nil, fmt.Errorf("gapbs: %w", err)
	}
	lay := graph.Layout{
		Offsets: offsetsVA,
		Edges:   edgesVA,
		Weights: weightsVA,
		NodeA:   nodeA,
		NodeB:   nodeB,
	}

	budget := g.budget()
	b := trace.NewBuilder(g.Name(), budget)
	src := gr.LargestComponentSource()
	// Fast-forward into the kernel's steady phase before recording — the
	// blind-sampling practice of §II-C. Road BFS is small enough to record
	// whole traversals from the start.
	skip := 400_000
	if g.input != "road" {
		skip = 3_000_000
	}
	for b.Len() < budget {
		before := b.Len()
		bud := graph.Budget{Skip: skip, Max: budget - b.Len(), Serial: g.input == "road"}
		skip = 0 // only the first kernel invocation fast-forwards
		switch g.kernel {
		case "bfs":
			graph.BFS(gr, src, lay, b, bud)
		case "pr":
			graph.PageRank(gr, lay, b, 8, bud)
		case "sssp":
			graph.SSSP(gr, src, lay, b, bud)
		case "bc":
			graph.BC(gr, src, lay, b, bud)
		default:
			return nil, fmt.Errorf("gapbs: unknown kernel %q", g.kernel)
		}
		if b.Len() == before {
			return nil, fmt.Errorf("gapbs: kernel %s made no progress", g.kernel)
		}
	}
	return b.Trace(), nil
}
