package workloads

import (
	"testing"

	"mosaic/internal/trace"
)

func TestDBIndexSuite(t *testing.T) {
	suite := DBIndex()
	if len(suite) != 6 {
		t.Fatalf("dbindex suite has %d workloads, want 6", len(suite))
	}
	want := []string{
		"dbindex/btree-point-zipf",
		"dbindex/btree-point-uniform",
		"dbindex/btree-range-sorted",
		"dbindex/lsm-loadcompact",
		"dbindex/hashjoin-uniform",
		"dbindex/hashjoin-zipf",
	}
	for i, w := range suite {
		if w.Name() != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, w.Name(), want[i])
		}
		if w.Suite() != "dbindex" {
			t.Errorf("%s: suite = %s, want dbindex", w.Name(), w.Suite())
		}
		got, err := ByName(want[i])
		if err != nil {
			t.Errorf("ByName(%s): %v", want[i], err)
		} else if got.Name() != want[i] {
			t.Errorf("ByName(%s) = %s", want[i], got.Name())
		}
	}
	// All() stays the paper's table.
	if len(All()) != 19 {
		t.Fatalf("All() has %d workloads, want 19", len(All()))
	}
}

func TestDBIndexGenerate(t *testing.T) {
	for _, w := range DBIndex() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			tr := generate(t, w)
			if tr.Len() < accessBudget {
				t.Fatalf("trace has %d accesses, want >= %d", tr.Len(), accessBudget)
			}
			phases := tr.Phases()
			if len(phases) < 2 {
				t.Fatalf("dbindex trace has %d phases, want >= 2", len(phases))
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			// Regimes must actually differ: the build/load phase of every
			// composite is store-heavy, the probe/scan/compact phase
			// load-heavy. Without that contrast the per-phase sampling
			// contract has nothing to measure.
			w0 := writeFrac(tr, phases[0])
			w1 := writeFrac(tr, phases[len(phases)-1])
			if w0 < 0.3 || w1 > w0/2 {
				t.Errorf("phase write fractions %0.2f -> %0.2f do not contrast build vs probe", w0, w1)
			}
		})
	}
}

// writeFrac returns the fraction of a phase's accesses that are stores.
func writeFrac(tr *trace.Trace, ph trace.Phase) float64 {
	writes := 0
	for i := ph.Lo; i < ph.Hi; i++ {
		if tr.At(i).Write {
			writes++
		}
	}
	return float64(writes) / float64(ph.Len())
}

// TestStretchedScalesPhasesProportionally is the Stretched x phase
// regression test: stretching a phased workload must scale every phase by
// the same factor, keeping each boundary at the same fractional position.
// The broken interaction — stretching only the trailing stage — would
// leave the build phase at its base length and shift every boundary
// fraction; with the boundary deliberately mid-window relative to the
// sampling period, the sampled estimator would then blend regimes.
func TestStretchedScalesPhasesProportionally(t *testing.T) {
	const factor = 3
	base := generate(t, NewBTreePoint(0))
	long := generate(t, Stretched(NewBTreePoint(0), factor))
	bp, lp := base.Phases(), long.Phases()
	if len(bp) != len(lp) {
		t.Fatalf("phase count changed under stretch: %d -> %d", len(bp), len(lp))
	}
	if long.Len() < factor*accessBudget {
		t.Fatalf("stretched trace %d accesses < %d x budget %d", long.Len(), factor, accessBudget)
	}
	for i := range bp {
		bf := float64(bp[i].Hi) / float64(base.Len())
		lf := float64(lp[i].Hi) / float64(long.Len())
		// Boundaries land on whole operations, so fractions match to well
		// under one operation's width, not exactly.
		if diff := bf - lf; diff > 0.01 || diff < -0.01 {
			t.Errorf("phase %q boundary drifted under stretch: %0.4f -> %0.4f", bp[i].Name, bf, lf)
		}
	}

	// Force a boundary mid-window: the build/probe boundary of the
	// stretched trace must not be aligned to the default sampling period,
	// and the phased schedule must still split windows there.
	s := trace.SamplePlan{Period: 65536, MeasureLen: 3072, WarmupLen: 8192, PrologueLen: 32768}
	boundary := lp[0].Hi
	if boundary%s.Period == 0 {
		t.Fatalf("test fixture degenerate: boundary %d aligned to period %d", boundary, s.Period)
	}
	for _, w := range s.PhasedWindows(lp, long.Len()) {
		if w.Lo < boundary && boundary < w.Hi {
			t.Fatalf("window [%d, %d) straddles phase boundary %d", w.Lo, w.Hi, boundary)
		}
	}
}
