package workloads

import (
	"fmt"
	"math/rand"

	"mosaic/internal/trace"
)

// Stage is one phase of a composite workload: a named regime that emits
// operation quanta until its share of the access budget is spent.
type Stage struct {
	// Name becomes the trace phase marker (trace.Phase.Name).
	Name string
	// Weight is the stage's share of the workload's access budget,
	// relative to the other stages' weights.
	Weight int
	// Emit appends one operation's accesses to the builder; i is the
	// operation index within the stage (0, 1, 2, ...).
	Emit func(b *trace.Builder, i int)
}

// phasedWorkload composes stages into one multi-phase workload. The
// generated trace carries a phase marker per stage, so the replay layers
// attribute counters per regime and the sampled estimator extrapolates
// within — never across — stage boundaries.
type phasedWorkload struct {
	stretchable
	name, suite string
	heap, anon  uint64
	setup       func(alloc *Allocator, rng *rand.Rand) ([]Stage, error)
}

// Phased builds a multi-phase workload from a setup function that
// allocates the shared data structures and returns the stages. Stage
// budgets are weighted shares of the total access budget, so Stretched
// scales every stage by the same factor and each phase boundary stays at
// the same fractional position of the trace — a stretched phased trace is
// the same regime sequence observed for longer, not a different mix.
// (Scaling only the final stage would drift the boundaries and silently
// change what fraction of a sampling window each regime occupies.)
func Phased(name, suite string, heap, anon uint64,
	setup func(alloc *Allocator, rng *rand.Rand) ([]Stage, error)) Workload {
	return &phasedWorkload{name: name, suite: suite, heap: heap, anon: anon, setup: setup}
}

// Name implements Workload.
func (p *phasedWorkload) Name() string { return p.tag(p.name) }

// Suite implements Workload.
func (p *phasedWorkload) Suite() string { return p.suite }

// PoolBytes implements Workload.
func (p *phasedWorkload) PoolBytes() (heap, anon uint64) {
	return roundPool(p.heap), roundPool(p.anon)
}

// Generate implements Workload: each stage opens a phase and emits until
// the builder reaches the stage's cumulative budget target. Targets are
// computed from the stretched budget, so every phase scales
// proportionally under Stretched.
func (p *phasedWorkload) Generate(alloc *Allocator) (*trace.Trace, error) {
	rng := rand.New(rand.NewSource(seedFor(p.name)))
	stages, err := p.setup(alloc, rng)
	if err != nil {
		return nil, err
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("workloads: phased workload %q has no stages", p.name)
	}
	total := 0
	for _, st := range stages {
		if st.Weight <= 0 {
			return nil, fmt.Errorf("workloads: phased workload %q stage %q has weight %d",
				p.name, st.Name, st.Weight)
		}
		total += st.Weight
	}
	budget := p.budget()
	b := trace.NewBuilder(p.Name(), budget)
	acc := 0
	for _, st := range stages {
		acc += st.Weight
		target := budget * acc / total
		b.BeginPhase(st.Name)
		for i := 0; b.Len() < target; i++ {
			st.Emit(b, i)
		}
	}
	return b.Trace(), nil
}
