package workloads

import (
	"strings"
	"testing"

	"mosaic/internal/libc"
	"mosaic/internal/mem"
	"mosaic/internal/mosalloc"
	"mosaic/internal/trace"
)

// generate runs a workload against a fresh process with Mosalloc attached
// using all-4KB pools sized from the workload's own requirements.
func generate(t *testing.T, w Workload) *trace.Trace {
	t.Helper()
	proc, err := libc.NewProcess(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	heap, anon := w.PoolBytes()
	cfg := mosalloc.Config{
		HeapPool:      mosalloc.Uniform(mem.Page4K, heap),
		AnonPool:      mosalloc.Uniform(mem.Page4K, anon),
		FilePoolBytes: 1 << 20,
	}
	m, err := mosalloc.Attach(proc, cfg)
	if err != nil {
		t.Fatalf("%s: attach: %v", w.Name(), err)
	}
	tr, err := w.Generate(NewAllocator(proc))
	if err != nil {
		t.Fatalf("%s: generate: %v", w.Name(), err)
	}
	// Every access must land inside a Mosalloc pool, or we could not
	// re-layout it.
	hr, ar := m.HeapRegion(), m.AnonRegion()
	for i, a := range tr.Columns().Rows() {
		if !hr.Contains(a.VA) && !ar.Contains(a.VA) {
			t.Fatalf("%s: access %d at %#x escapes the pools", w.Name(), i, uint64(a.VA))
		}
	}
	return tr
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 19 {
		t.Fatalf("registry has %d workloads, want 19 (Table 8)", len(all))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name()] {
			t.Errorf("duplicate workload %s", w.Name())
		}
		seen[w.Name()] = true
	}
	// Spot-check the paper's labels.
	for _, name := range []string{
		"gups/32GB", "gups/16GB", "gups/8GB",
		"spec06/mcf", "spec06/omnetpp", "spec17/omnetpp_s", "spec17/xalancbmk_s",
		"graph500/2GB", "graph500/4GB", "graph500/8GB",
		"xsbench/4GB", "xsbench/8GB", "xsbench/16GB",
		"gapbs/bc-twitter", "gapbs/bfs-road", "gapbs/bfs-twitter",
		"gapbs/pr-twitter", "gapbs/sssp-twitter", "gapbs/sssp-web",
	} {
		if !seen[name] {
			t.Errorf("missing workload %s", name)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("gups/8GB")
	if err != nil || w.Name() != "gups/8GB" {
		t.Errorf("ByName = %v, %v", w, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestSuites(t *testing.T) {
	for _, w := range All() {
		if !strings.HasPrefix(w.Name(), w.Suite()) {
			t.Errorf("%s: suite %q is not a name prefix", w.Name(), w.Suite())
		}
	}
}

// One generation test per suite exercises every workload type without
// blowing up test time; TestAllWorkloadsGenerate covers the rest in -short
// -excluded mode below.
func TestGUPSGenerate(t *testing.T) {
	tr := generate(t, NewGUPS("8GB", 32<<20))
	if tr.Len() < accessBudget {
		t.Errorf("trace too short: %d", tr.Len())
	}
	// GUPS is independent random access: no dependent accesses.
	for _, a := range tr.Columns().Rows()[:100] {
		if a.Dep {
			t.Fatal("gups accesses must be independent")
		}
	}
	// Footprint should approach the table size for this many accesses.
	if tr.Footprint() < 20<<20 {
		t.Errorf("footprint = %d, want most of 32MB", tr.Footprint())
	}
}

func TestMCFGenerate(t *testing.T) {
	tr := generate(t, NewMCF())
	dep := 0
	for _, a := range tr.Columns().Rows() {
		if a.Dep {
			dep++
		}
	}
	// mcf is pointer chasing: dependent accesses dominate.
	if float64(dep)/float64(tr.Len()) < 0.5 {
		t.Errorf("mcf dependent share = %.2f, want > 0.5", float64(dep)/float64(tr.Len()))
	}
}

func TestXSBenchGenerate(t *testing.T) {
	tr := generate(t, NewXSBench("4GB", 32<<20))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	dep, ind := 0, 0
	for _, a := range tr.Columns().Rows() {
		if a.Dep {
			dep++
		} else {
			ind++
		}
	}
	if dep == 0 || ind == 0 {
		t.Errorf("xsbench should mix dependent (%d) and independent (%d) accesses", dep, ind)
	}
}

func TestGraph500Generate(t *testing.T) {
	tr := generate(t, NewGraph500("2GB", 17))
	if tr.Len() < accessBudget/2 {
		t.Errorf("trace too short: %d", tr.Len())
	}
	writes := 0
	for _, a := range tr.Columns().Rows() {
		if a.Write {
			writes++
		}
	}
	if writes == 0 {
		t.Error("graph500 construction should record stores")
	}
}

func TestGAPBSGenerate(t *testing.T) {
	for _, w := range []Workload{
		NewGAPBS("pr", "twitter"),
		NewGAPBS("bfs", "road"),
	} {
		tr := generate(t, w)
		if tr.Len() < accessBudget/2 {
			t.Errorf("%s: trace too short: %d", w.Name(), tr.Len())
		}
	}
}

func TestGAPBSUnknownKernel(t *testing.T) {
	w := NewGAPBS("bogus", "twitter")
	proc, _ := libc.NewProcess(1 << 40)
	heap, anon := w.PoolBytes()
	cfg := mosalloc.Config{
		HeapPool:      mosalloc.Uniform(mem.Page4K, heap),
		AnonPool:      mosalloc.Uniform(mem.Page4K, anon),
		FilePoolBytes: 1 << 20,
	}
	if _, err := mosalloc.Attach(proc, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Generate(NewAllocator(proc)); err == nil {
		t.Error("unknown kernel should fail")
	}
}

func TestOmnetppGenerate(t *testing.T) {
	tr := generate(t, NewOmnetpp("spec06/omnetpp", 24<<20, 14))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestXalancbmkGenerate(t *testing.T) {
	tr := generate(t, NewXalancbmk())
	// Footprint stays near the configured 30MB.
	if fp := tr.Footprint(); fp > 36<<20 {
		t.Errorf("footprint = %dMB, want ≤ 36MB", fp>>20)
	}
}

func TestDeterministicTraces(t *testing.T) {
	a := generate(t, NewGUPS("8GB", 32<<20))
	b := generate(t, NewGUPS("8GB", 32<<20))
	if a.Len() != b.Len() {
		t.Fatal("trace lengths differ")
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("access %d differs between identical runs", i)
		}
	}
}

func TestSeedForStable(t *testing.T) {
	if seedFor("x") != seedFor("x") {
		t.Error("seedFor not stable")
	}
	if seedFor("a") == seedFor("b") {
		t.Error("different names should (almost surely) differ")
	}
	if seedFor("gups/8GB") < 0 {
		t.Error("seed must be non-negative")
	}
}

func TestPoolBytesAligned(t *testing.T) {
	for _, w := range All() {
		heap, anon := w.PoolBytes()
		if heap%uint64(mem.Page2M) != 0 || anon%uint64(mem.Page2M) != 0 {
			t.Errorf("%s: pool bytes %d/%d not 2MB-aligned", w.Name(), heap, anon)
		}
	}
}

// The paper measures Mosalloc's extra memory consumption (from top-only
// reclamation) at under 1% for its workloads (§V); ours behave the same.
func TestMosallocOverheadUnder1Percent(t *testing.T) {
	for _, w := range []Workload{NewGUPS("8GB", 32<<20), NewMCF(), NewXSBench("4GB", 32<<20)} {
		proc, err := libc.NewProcess(1 << 40)
		if err != nil {
			t.Fatal(err)
		}
		heap, anon := w.PoolBytes()
		cfg := mosalloc.Config{
			HeapPool:      mosalloc.Uniform(mem.Page4K, heap),
			AnonPool:      mosalloc.Uniform(mem.Page4K, anon),
			FilePoolBytes: 1 << 20,
		}
		m, err := mosalloc.Attach(proc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Generate(NewAllocator(proc)); err != nil {
			t.Fatal(err)
		}
		for _, u := range m.Usage() {
			if u.HighWater == 0 {
				continue
			}
			frag := float64(u.Fragmentation) / float64(u.HighWater)
			if frag > 0.01 {
				t.Errorf("%s: %s pool fragmentation %.2f%% exceeds 1%%",
					w.Name(), u.Name, 100*frag)
			}
		}
	}
}

// TestStretched pins the trace-length knob: a stretched workload generates
// factor× the accesses with the same footprint and the same opening access
// pattern (same seed, same process), under a distinct name so the
// experiment trace cache never conflates the two.
func TestStretched(t *testing.T) {
	base, err := ByName("gups/8GB")
	if err != nil {
		t.Fatal(err)
	}
	long := Stretched(mustByName(t, "gups/8GB"), 4)
	if long.Name() != "gups/8GB x4" {
		t.Fatalf("stretched name = %q", long.Name())
	}
	if long.Suite() != base.Suite() {
		t.Fatalf("stretched suite = %q, want %q", long.Suite(), base.Suite())
	}
	bh, ba := base.PoolBytes()
	lh, la := long.PoolBytes()
	if bh != lh || ba != la {
		t.Fatalf("stretching changed pools: (%d,%d) vs (%d,%d)", bh, ba, lh, la)
	}
	btr := generate(t, base)
	ltr := generate(t, long)
	if ltr.Len() != 4*btr.Len() {
		t.Fatalf("stretched length %d, want %d", ltr.Len(), 4*btr.Len())
	}
	if ltr.Name != long.Name() {
		t.Fatalf("stretched trace name %q, want %q", ltr.Name, long.Name())
	}
	bc, lc := btr.Columns(), ltr.Columns()
	for i := 0; i < btr.Len(); i++ {
		if bc.VA(i) != lc.VA(i) || bc.Gap(i) != lc.Gap(i) || bc.Dep(i) != lc.Dep(i) {
			t.Fatalf("access %d diverges between base and stretched trace", i)
		}
	}
	// Factor 1 is the identity.
	if w := Stretched(mustByName(t, "gups/8GB"), 1); w.Name() != "gups/8GB" {
		t.Fatalf("factor-1 name = %q", w.Name())
	}
}

func mustByName(t *testing.T, name string) Workload {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
