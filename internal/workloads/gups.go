package workloads

import (
	"fmt"
	"math/rand"

	"mosaic/internal/mem"
	"mosaic/internal/trace"
)

// GUPS is the HPCC RandomAccess benchmark: read-modify-write updates at
// uniformly random positions of one huge table. It is the most TLB-hostile
// pattern possible — every access is a fresh random page — and the pattern
// with the highest memory-level parallelism, since updates are mutually
// independent. On two-walker machines this is the workload whose walk
// cycles exceed its runtime (§VI-D).
//
// Scaling: the paper's 8/16/32GB tables become 32/64/128MB (÷256).
type GUPS struct {
	stretchable
	name  string
	bytes uint64
}

// NewGUPS builds a GUPS instance; label is the paper's size label.
func NewGUPS(label string, tableBytes uint64) *GUPS {
	return &GUPS{name: "gups/" + label, bytes: tableBytes}
}

// Name implements Workload.
func (g *GUPS) Name() string { return g.tag(g.name) }

// Suite implements Workload.
func (g *GUPS) Suite() string { return "gups" }

// PoolBytes implements Workload: the table lives in the anonymous pool.
func (g *GUPS) PoolBytes() (heap, anon uint64) {
	return roundPool(1 << 20), roundPool(g.bytes)
}

// Generate implements Workload.
func (g *GUPS) Generate(alloc *Allocator) (*trace.Trace, error) {
	table, err := alloc.MmapAnon(g.bytes)
	if err != nil {
		return nil, fmt.Errorf("gups: allocating table: %w", err)
	}
	rng := rand.New(rand.NewSource(seedFor(g.name)))
	budget := g.budget()
	b := trace.NewBuilder(g.Name(), budget)

	// The update loop: tiny instruction gaps, independent RMW pairs.
	for b.Len() < budget {
		off := mem.Addr(rng.Uint64()%(g.bytes/8)) * 8
		b.Compute(6)
		b.Load(table + off)
		b.Compute(2)
		b.Store(table + off)
	}
	return b.Trace(), nil
}
