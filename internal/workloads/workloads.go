// Package workloads reimplements the paper's benchmark suite (Table 5) as
// trace-generating kernels: GUPS random access, Graph500 BFS, XSBench Monte
// Carlo lookups, SPEC-like mcf/omnetpp/xalancbmk kernels, and the GAPBS
// kernels (bc, pr, bfs, sssp) on synthetic twitter/road/web graphs.
//
// Workload names keep the paper's labels ("gups/16GB"); footprints are
// scaled down by a constant factor per suite (documented on each workload)
// so the full 19-workload × 3-platform × 54-layout sweep runs in minutes.
// What the runtime models consume is the *relationship* between (H, M, C)
// and R, which depends on access structure, not absolute footprint.
package workloads

import (
	"fmt"

	"mosaic/internal/libc"
	"mosaic/internal/mem"
	"mosaic/internal/trace"
)

// Allocator is the allocation interface workloads use: the glibc wrappers
// of the modelled process (with or without Mosalloc attached).
type Allocator struct {
	proc *libc.Process
}

// NewAllocator wraps a process.
func NewAllocator(p *libc.Process) *Allocator { return &Allocator{proc: p} }

// Malloc allocates heap memory.
func (a *Allocator) Malloc(n uint64) (mem.Addr, error) { return a.proc.Malloc(n) }

// MmapAnon maps anonymous memory (big arrays, as real benchmarks do for
// multi-GB tables).
func (a *Allocator) MmapAnon(n uint64) (mem.Addr, error) {
	return a.proc.Mmap(n, libc.MapFlags{Kind: libc.MapAnonymous})
}

// Workload is one benchmark configuration.
type Workload interface {
	// Name is the paper's label, e.g. "gups/16GB".
	Name() string
	// Suite is the benchmark suite, e.g. "gups", "gapbs".
	Suite() string
	// PoolBytes returns the heap and anonymous pool capacities the
	// workload needs (upper bounds used to size Mosalloc's pools).
	PoolBytes() (heap, anon uint64)
	// Generate allocates the workload's data through alloc and returns
	// the recorded access trace.
	Generate(alloc *Allocator) (*trace.Trace, error)
}

// accessBudget is the default per-workload trace length: long enough to
// exercise the TLB and caches through many reuse distances, short enough
// that the full sweep stays fast. Stretched scales it per workload.
const accessBudget = 120_000

// stretchable is embedded by every workload kernel to carry the
// trace-length stretch factor. Stretching changes only how long the access
// loop runs — footprint, pools, and the RNG seed stay those of the base
// workload, so a stretched trace is the same process observed for longer.
type stretchable struct {
	factor int
}

func (s *stretchable) setStretch(factor int) { s.factor = factor }

// budget returns the workload's access budget under its stretch factor.
func (s *stretchable) budget() int {
	if s.factor > 1 {
		return accessBudget * s.factor
	}
	return accessBudget
}

// tag decorates a workload name with the stretch factor. Stretched
// workloads must not share a name with their base: the experiment layer
// caches generated traces by workload name.
func (s *stretchable) tag(name string) string {
	if s.factor > 1 {
		return fmt.Sprintf("%s x%d", name, s.factor)
	}
	return name
}

// Stretched scales w's trace length by an integer factor, mutating and
// returning w. The footprint and access structure are unchanged — only the
// number of recorded accesses grows — which is what sampled-replay accuracy
// work needs: at the default budget a systematic sampler barely has room
// for a handful of windows, while real deployments replay much longer
// traces. Factor 1 (or less) is the identity.
func Stretched(w Workload, factor int) Workload {
	if factor > 1 {
		w.(interface{ setStretch(int) }).setStretch(factor)
	}
	return w
}

// All returns the 19 workloads of the paper's Table 8, in its row order.
func All() []Workload {
	return []Workload{
		NewGUPS("32GB", 128<<20),
		NewGUPS("16GB", 64<<20),
		NewGUPS("8GB", 32<<20),
		NewMCF(),
		NewOmnetpp("spec06/omnetpp", 24<<20, 14),
		NewOmnetpp("spec17/omnetpp_s", 56<<20, 22),
		NewXalancbmk(),
		NewGraph500("2GB", 18),
		NewGraph500("4GB", 19),
		NewGraph500("8GB", 20),
		NewXSBench("4GB", 32<<20),
		NewXSBench("8GB", 64<<20),
		NewXSBench("16GB", 128<<20),
		NewGAPBS("bc", "twitter"),
		NewGAPBS("bfs", "road"),
		NewGAPBS("bfs", "twitter"),
		NewGAPBS("pr", "twitter"),
		NewGAPBS("sssp", "twitter"),
		NewGAPBS("sssp", "web"),
	}
}

// ByName returns the workload with the given label, searching the paper's
// 19-workload table and the database-index suite (DBIndex). All() stays
// the paper's Table 8 — dbindex workloads join sweeps when named
// explicitly, not by default.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name() == name {
			return w, nil
		}
	}
	for _, w := range DBIndex() {
		if w.Name() == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// seedFor derives a stable per-workload RNG seed from its name.
func seedFor(name string) int64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}

// roundPool rounds a pool requirement up to a 2MB multiple plus slack so
// layout windows always align.
func roundPool(n uint64) uint64 {
	n += n / 8
	return uint64(mem.AlignUp(mem.Addr(n), mem.Page2M))
}
