package workloads

import (
	"fmt"
	"math/rand"

	"mosaic/internal/graph"
	"mosaic/internal/mem"
	"mosaic/internal/trace"
)

// Graph500 is the Graph500 benchmark: generate and compress a Kronecker
// graph, then run BFS over it. The benchmark allocates its structures with
// mmap/brk directly (the reason libhugetlbfs cannot handle it, §V).
//
// Scaling: the paper's 2/4/8GB problems become Kronecker scales 17–19
// (÷64 footprint).
type Graph500 struct {
	stretchable
	name  string
	scale int
}

// NewGraph500 builds an instance; label is the paper's size label.
func NewGraph500(label string, scale int) *Graph500 {
	return &Graph500{name: "graph500/" + label, scale: scale}
}

// Name implements Workload.
func (g *Graph500) Name() string { return g.tag(g.name) }

// Suite implements Workload.
func (g *Graph500) Suite() string { return "graph500" }

const g500EdgeFactor = 8

func (g *Graph500) arraysBytes() (offsets, edges, nodes uint64) {
	n := uint64(1) << g.scale
	m := n * g500EdgeFactor
	return (n + 1) * 4, m * 4, n * 32
}

// PoolBytes implements Workload: graph500 allocates through mmap.
func (g *Graph500) PoolBytes() (heap, anon uint64) {
	o, e, nd := g.arraysBytes()
	return roundPool(1 << 20), roundPool(o + e + 2*nd)
}

// Generate implements Workload.
func (g *Graph500) Generate(alloc *Allocator) (*trace.Trace, error) {
	gr := graph.GenerateKronecker(g.scale, g500EdgeFactor, seedFor(g.name))
	o, e, nd := g.arraysBytes()
	offsetsVA, err := alloc.MmapAnon(o)
	if err != nil {
		return nil, fmt.Errorf("graph500: %w", err)
	}
	edgesVA, err := alloc.MmapAnon(e)
	if err != nil {
		return nil, fmt.Errorf("graph500: %w", err)
	}
	parentVA, err := alloc.MmapAnon(nd)
	if err != nil {
		return nil, fmt.Errorf("graph500: %w", err)
	}
	scratchVA, err := alloc.MmapAnon(nd)
	if err != nil {
		return nil, fmt.Errorf("graph500: %w", err)
	}

	budget := g.budget()
	b := trace.NewBuilder(g.Name(), budget)
	// Phase 1 (kernel 1, "construction"): stream the edge list into the
	// CSR arrays — sequential writes, a small share of the trace.
	constructionBudget := budget / 25
	stride := uint64(gr.M()*4) / uint64(constructionBudget/2+1)
	if stride < 8 {
		stride = 8
	}
	for off := uint64(0); off < e && b.Len() < constructionBudget; off += stride {
		b.Compute(12)
		b.Load(edgesVA + mem.Addr(off))
		b.Store(offsetsVA + mem.Addr(off%o))
	}

	// Phase 2 (kernel 2): BFS from a high-degree root.
	lay := graph.Layout{
		Offsets: offsetsVA,
		Edges:   edgesVA,
		NodeA:   parentVA,
		NodeB:   scratchVA,
	}
	// Graph500 runs 64 BFS iterations from random roots; the trace samples
	// a few, starting with the largest-component source.
	rng := rand.New(rand.NewSource(seedFor(g.name) + 1))
	roots := []uint32{gr.LargestComponentSource()}
	for len(roots) < 4 {
		roots = append(roots, uint32(rng.Intn(gr.N)))
	}
	skip := 1_000_000
	for _, root := range roots {
		if b.Len() >= budget {
			break
		}
		graph.BFS(gr, root, lay, b, graph.Budget{Skip: skip, Max: budget - b.Len()})
		skip = 0
	}
	return b.Trace(), nil
}
