package workloads

import (
	"fmt"
	"math/rand"

	"mosaic/internal/mem"
	"mosaic/internal/trace"
)

// MCF models SPEC CPU2006's 429.mcf: network-simplex optimization whose
// hot loop chases arc and node pointers through a large, poorly-ordered
// graph — long dependent chains over a big heap, the canonical
// latency-bound SPEC workload (Figure 3's subject).
//
// Scaling: mcf's ~1.7GB becomes ~48MB (÷36).
type MCF struct {
	stretchable
	arcBytes  uint64
	nodeBytes uint64
}

// NewMCF builds the spec06/mcf workload.
func NewMCF() *MCF {
	return &MCF{arcBytes: 40 << 20, nodeBytes: 8 << 20}
}

// Name implements Workload.
func (m *MCF) Name() string { return m.tag("spec06/mcf") }

// Suite implements Workload.
func (m *MCF) Suite() string { return "spec06" }

// PoolBytes implements Workload: mcf mallocs its arc and node arrays.
func (m *MCF) PoolBytes() (heap, anon uint64) {
	return roundPool(m.arcBytes + m.nodeBytes), roundPool(1 << 20)
}

// Generate implements Workload.
func (m *MCF) Generate(alloc *Allocator) (*trace.Trace, error) {
	arcs, err := alloc.Malloc(m.arcBytes)
	if err != nil {
		return nil, fmt.Errorf("mcf: arcs: %w", err)
	}
	nodes, err := alloc.Malloc(m.nodeBytes)
	if err != nil {
		return nil, fmt.Errorf("mcf: nodes: %w", err)
	}
	rng := rand.New(rand.NewSource(seedFor("spec06/mcf")))
	budget := m.budget()
	b := trace.NewBuilder(m.Name(), budget)

	const arcStride = 64 // one arc struct per cache line
	numArcs := m.arcBytes / arcStride
	numNodes := m.nodeBytes / arcStride
	// Build a pseudo-random arc permutation to chase (a cyclic tour), the
	// memory behaviour of mcf's price-out loop.
	cursor := rng.Uint64() % numArcs
	for b.Len() < budget {
		// Pricing pass: chase a run of arcs, touching both endpoints'
		// node records (also dependent — the node index lives in the arc).
		runLen := 8 + rng.Intn(24)
		for i := 0; i < runLen && b.Len() < budget; i++ {
			b.Compute(9)
			b.LoadDep(arcs + mem.Addr(cursor*arcStride))
			nodeIdx := (cursor*2654435761 + uint64(i)) % numNodes
			b.LoadDep(nodes + mem.Addr(nodeIdx*arcStride))
			// Occasional potential update.
			if rng.Intn(4) == 0 {
				b.StoreDep(nodes + mem.Addr(nodeIdx*arcStride))
			}
			cursor = (cursor*6364136223846793005 + 1442695040888963407) % numArcs
		}
		// Basket refill: a short sequential scan.
		start := rng.Uint64() % (numArcs - 32)
		for i := uint64(0); i < 32 && b.Len() < budget; i++ {
			b.Compute(4)
			b.Load(arcs + mem.Addr((start+i)*arcStride))
		}
	}
	return b.Trace(), nil
}

// Omnetpp models SPEC's omnetpp: a discrete-event network simulator whose
// hot structure is the future-event set (a binary heap). Heap sift
// operations produce dependent accesses with strided, shrinking locality;
// event payloads add random dependent touches.
type Omnetpp struct {
	stretchable
	name      string
	heapBytes uint64
	// fanout controls how deep sifts run (spec17's larger config sifts
	// deeper through a bigger event set).
	fanout int
}

// NewOmnetpp builds an omnetpp-like workload. Scaling: spec06's ~175MB
// becomes 24MB; spec17_s's ~250MB becomes 56MB.
func NewOmnetpp(name string, heapBytes uint64, fanout int) *Omnetpp {
	return &Omnetpp{name: name, heapBytes: heapBytes, fanout: fanout}
}

// Name implements Workload.
func (o *Omnetpp) Name() string { return o.tag(o.name) }

// Suite implements Workload.
func (o *Omnetpp) Suite() string {
	if len(o.name) >= 6 {
		return o.name[:6]
	}
	return o.name
}

// PoolBytes implements Workload.
func (o *Omnetpp) PoolBytes() (heap, anon uint64) {
	return roundPool(o.heapBytes + o.heapBytes/2), roundPool(1 << 20)
}

// Generate implements Workload.
func (o *Omnetpp) Generate(alloc *Allocator) (*trace.Trace, error) {
	heapVA, err := alloc.Malloc(o.heapBytes)
	if err != nil {
		return nil, fmt.Errorf("omnetpp: event heap: %w", err)
	}
	msgBytes := o.heapBytes / 2
	msgs, err := alloc.Malloc(msgBytes)
	if err != nil {
		return nil, fmt.Errorf("omnetpp: messages: %w", err)
	}
	rng := rand.New(rand.NewSource(seedFor(o.name)))
	budget := o.budget()
	b := trace.NewBuilder(o.Name(), budget)

	const slot = 32 // event record
	slots := o.heapBytes / slot
	for b.Len() < budget {
		// Pop-min: sift down from the root. Index doubling gives strided
		// accesses: hot near the root (cache/TLB friendly), cold at the
		// leaves.
		idx := uint64(1)
		b.Compute(12)
		for idx < slots && b.Len() < budget {
			b.LoadDep(heapVA + mem.Addr(idx*slot))
			b.Compute(5)
			idx = idx*2 + uint64(rng.Intn(2))
			if rng.Intn(o.fanout) == 0 {
				break // event settled early
			}
		}
		// Handle the event: touch its message payload (random dependent).
		msgOff := mem.Addr(rng.Uint64() % (msgBytes / 64) * 64)
		b.LoadDep(msgs + msgOff)
		b.Compute(40)
		if rng.Intn(3) != 0 {
			b.StoreDep(msgs + msgOff)
		}
		// Push: sift up — short dependent chain near a random leaf.
		idx = 1 + rng.Uint64()%(slots-1)
		for idx > 1 && b.Len() < budget {
			b.StoreDep(heapVA + mem.Addr(idx*slot))
			b.Compute(4)
			idx /= 2
			if idx < 8 {
				break
			}
		}
	}
	return b.Trace(), nil
}

// Xalancbmk models SPEC CPU2017's 623.xalancbmk_s: XSLT transformation of
// a large XML DOM. The hot pattern is depth-first tree traversal through
// pointer-linked nodes plus string-table lookups. Its 475MB footprint
// (Table 7) becomes ~30MB (÷16): small enough that 2MB pages eliminate
// all TLB misses on Broadwell, large enough that 4KB pages thrash — the
// Table 7 contrast.
type Xalancbmk struct {
	stretchable
	domBytes     uint64
	stringsBytes uint64
}

// NewXalancbmk builds the spec17/xalancbmk_s workload.
func NewXalancbmk() *Xalancbmk {
	return &Xalancbmk{domBytes: 26 << 20, stringsBytes: 3 << 20}
}

// Name implements Workload.
func (x *Xalancbmk) Name() string { return x.tag("spec17/xalancbmk_s") }

// Suite implements Workload.
func (x *Xalancbmk) Suite() string { return "spec17" }

// PoolBytes implements Workload.
func (x *Xalancbmk) PoolBytes() (heap, anon uint64) {
	return roundPool(x.domBytes + x.stringsBytes), roundPool(1 << 20)
}

// Generate implements Workload.
func (x *Xalancbmk) Generate(alloc *Allocator) (*trace.Trace, error) {
	dom, err := alloc.Malloc(x.domBytes)
	if err != nil {
		return nil, fmt.Errorf("xalancbmk: DOM: %w", err)
	}
	strs, err := alloc.Malloc(x.stringsBytes)
	if err != nil {
		return nil, fmt.Errorf("xalancbmk: strings: %w", err)
	}
	rng := rand.New(rand.NewSource(seedFor("spec17/xalancbmk_s")))
	budget := x.budget()
	b := trace.NewBuilder(x.Name(), budget)

	const nodeSize = 128 // DOM node with attributes
	numNodes := x.domBytes / nodeSize
	// DFS over an implicit tree whose children are scattered by a hash —
	// allocation order vs document order mismatch, as in real DOMs.
	var stack []uint64
	stack = append(stack, 0)
	for b.Len() < budget {
		if len(stack) == 0 {
			stack = append(stack, rng.Uint64()%numNodes)
		}
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b.Compute(8)
		b.LoadDep(dom + mem.Addr(node*nodeSize))
		// Attribute/string lookups: symbol interning concentrates on a
		// small hot subset of the table (Zipf-like), which is the cache-
		// resident structure the page walker's fills evict — Table 7's
		// extra cache loads under 4KB pages.
		hot := x.stringsBytes / 32 // the hot interned symbols
		for k := 0; k < 4 && b.Len() < budget; k++ {
			span := hot
			if k == 3 && node%8 == 0 {
				span = x.stringsBytes // occasional cold string
			}
			soff := mem.Addr((node*2654435761 + uint64(k)*12289) % (span / 64) * 64)
			b.LoadDep(strs + soff)
			b.Compute(6)
		}
		// Push children (hashed positions → random pages).
		kids := rng.Intn(3)
		for k := 0; k <= kids; k++ {
			child := (node*48271 + uint64(k)*2246822519 + 1) % numNodes
			stack = append(stack, child)
		}
		// Output construction: occasional sequential writes.
		if rng.Intn(4) == 0 && b.Len() < budget {
			b.Store(strs + mem.Addr(rng.Uint64()%(x.stringsBytes/64)*64))
		}
	}
	return b.Trace(), nil
}
