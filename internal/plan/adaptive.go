package plan

import (
	"context"
	"fmt"

	"mosaic/internal/arch"
	"mosaic/internal/experiment"
	"mosaic/internal/pmu"
	"mosaic/internal/sim"
	"mosaic/internal/workloads"
)

// Adaptive runs the planner over one (workload, platform) pair of an
// experiment pipeline: prepare the trace, plan the pair's deterministic
// layout protocol, then let Run spend probe and promotion budget over
// it. The returned dataset carries the best-known sample per layout
// (exact where promoted, probe elsewhere) and is shaped exactly like a
// CollectAll dataset, so model training and the registry consume it
// unchanged. MeasuredAccesses/TotalAccesses record the planned sweep's
// cost against the full exact protocol's.
//
// cfg.Seed 0 derives the seed from the pair key — the same convention
// the protocol's randomized layouts use — and nil cfg.Anchors defaults
// to the 4KB/2MB baselines. Determinism: same pair + seed + budget ⇒
// identical promotion sequence and bit-identical samples.
func Adaptive(ctx context.Context, r *experiment.Runner, w workloads.Workload, plat arch.Platform, cfg Config, onStep func(Step), onProgress func(sim.Progress)) (*experiment.Dataset, *Report, error) {
	wd, err := r.Prepare(w)
	if err != nil {
		return nil, nil, err
	}
	lays := r.ProtocolLayouts(wd, plat)
	if cfg.Seed == 0 {
		cfg.Seed = int64(fnv1a(w.Name()+"@"+plat.Name) & 0x7fffffffffffffff)
	}
	if cfg.Anchors == nil {
		cfg.Anchors = []string{"4KB", "2MB"}
	}
	m := &experiment.PairMeasurer{R: r, WD: wd, Plat: plat, OnProgress: onProgress}
	rep, err := Run(ctx, m, lays, cfg, onStep)
	if err != nil {
		return nil, nil, err
	}
	ds, err := assembleDataset(w.Name(), plat.Name, rep)
	if err != nil {
		return nil, nil, err
	}
	return ds, rep, nil
}

// assembleDataset folds a planner report into the pipeline's dataset
// shape, mirroring experiment.CollectAll's assembly: samples in protocol
// order, the 1GB validation point split out, TLB sensitivity from the
// 4KB→1GB runtime drop.
func assembleDataset(workload, platform string, rep *Report) (*experiment.Dataset, error) {
	ds := &experiment.Dataset{
		Workload: workload,
		Platform: platform,
		Counters: make(map[string]pmu.Counters, len(rep.Points)),
		// The planned sweep's access cost stands in for sampled-replay
		// coverage: counters are a fidelity mix, bought for CostAccesses
		// out of the exact protocol's FullCostAccesses.
		MeasuredAccesses: rep.CostAccesses,
		TotalAccesses:    rep.FullCostAccesses,
	}
	for _, pt := range rep.Points {
		ds.Counters[pt.Layout.Name] = pt.Counters
		if pt.Layout.Name == validationLayout {
			ds.Sample1G = pt.Sample
		} else {
			ds.Samples = append(ds.Samples, pt.Sample)
		}
	}
	s4k, ok := ds.Baseline("4KB")
	if !ok {
		return nil, fmt.Errorf("plan: protocol produced no 4KB baseline")
	}
	ds.TLBSensitive = s4k.R > 0 && (s4k.R-ds.Sample1G.R)/s4k.R >= 0.05
	return ds, nil
}

// fnv1a hashes a string with 64-bit FNV-1a (the repo's standard stable
// seed derivation).
func fnv1a(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
