package plan

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"mosaic/internal/layout"
	"mosaic/internal/pmu"
	"mosaic/internal/sim"
	"mosaic/internal/stats"
)

// surfaceMeasurer is a synthetic (H, M, C) → R surface: each named
// layout has a ground-truth sample; probe-fidelity measurements return
// it perturbed by deterministic pseudo-noise derived from the layout
// name, exact measurements return it verbatim.
type surfaceMeasurer struct {
	truth    map[string]pmu.Sample
	noise    float64 // relative probe perturbation amplitude
	traceLen uint64
	measured []string // exact-measurement order, appended per call
}

func (s *surfaceMeasurer) Measure(_ context.Context, lays []layout.Layout, sm sim.Sampling) ([]sim.Result, error) {
	out := make([]sim.Result, len(lays))
	for i, lay := range lays {
		tr, ok := s.truth[lay.Name]
		if !ok {
			panic("unknown layout " + lay.Name)
		}
		if !sm.Enabled() { // exact
			s.measured = append(s.measured, lay.Name)
			out[i] = sim.Result{Counters: toCounters(tr)}
			continue
		}
		// Probe: perturb each component with noise seeded by the layout
		// name, so repeated runs see identical "measurements".
		rng := rand.New(rand.NewSource(int64(hash(lay.Name))))
		perturb := func(v float64) float64 {
			return v * (1 + s.noise*(2*rng.Float64()-1))
		}
		out[i] = sim.Result{
			Counters: toCounters(pmu.Sample{
				Layout: tr.Layout,
				H:      perturb(tr.H), M: perturb(tr.M),
				C: perturb(tr.C), R: perturb(tr.R),
			}),
			MeasuredAccesses: s.traceLen / 10,
			TotalAccesses:    s.traceLen,
		}
	}
	return out, nil
}

func (s *surfaceMeasurer) TraceLen() uint64 { return s.traceLen }

func toCounters(s pmu.Sample) pmu.Counters {
	return pmu.Counters{
		H: uint64(math.Round(s.H)), M: uint64(math.Round(s.M)),
		C: uint64(math.Round(s.C)), R: uint64(math.Round(s.R)),
	}
}

func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// polySurface builds n layouts on a smooth cubic surface R(H, M, C),
// with kinks — layouts whose runtime deviates from the polynomial by
// kinkFrac — at the given indices. Layout names sort in index order.
func polySurface(n int, kinks map[int]float64) *surfaceMeasurer {
	m := &surfaceMeasurer{truth: make(map[string]pmu.Sample), traceLen: 1_000_000}
	for i := 0; i < n; i++ {
		// Low-degree surface with no extreme-leverage corner, so K-fold
		// residuals concentrate at the planted kinks rather than at the
		// training hull's boundary.
		h := float64(1_000_000 + 40_000*i)
		mm := float64(500_000 - 20_000*i)
		c := float64(2_000_000 + 30_000*i)
		r := 3*h + 7*mm + 0.5*c
		if f, ok := kinks[i]; ok {
			r *= 1 + f
		}
		name := layName(i)
		m.truth[name] = pmu.Sample{Layout: name, H: h, M: mm, C: c, R: r}
	}
	return m
}

func layName(i int) string {
	return string([]byte{'L', byte('a' + i/10), byte('0' + i%10)})
}

func (s *surfaceMeasurer) layouts() []layout.Layout {
	var lays []layout.Layout
	for i := 0; i < len(s.truth); i++ {
		lays = append(lays, layout.Layout{Name: layName(i)})
	}
	return lays
}

// TestHotspotPromotion plants two strong deviations in an otherwise
// polynomial surface and checks the planner spends its first promotions
// there: K-fold residuals concentrate exactly where the fitted
// polynomial cannot follow the surface.
func TestHotspotPromotion(t *testing.T) {
	m := polySurface(20, map[int]float64{5: 0.4, 13: -0.35})
	rep, err := Run(context.Background(), m, m.layouts(), Config{
		MaxPromotions: 4, Seed: 7,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stopped != StopBudget {
		t.Fatalf("stopped %q, want budget", rep.Stopped)
	}
	// Both planted kinks must be found within the first three promotions:
	// 2 of 20 layouts carry the surface's error, and the scorer has to
	// spend its budget there (the third slot tolerates the hull-boundary
	// point, whose post-promotion leverage legitimately competes).
	got := map[string]bool{}
	for _, name := range m.measured[:3] {
		got[name] = true
	}
	if !got[layName(5)] || !got[layName(13)] {
		t.Errorf("first three promotions %v must include both planted hotspots %s and %s",
			m.measured[:3], layName(5), layName(13))
	}
}

// TestDeterminism reruns an identical planner configuration over a noisy
// probe surface and requires the bit-identical everything the acceptance
// criteria demand: promotion sequence, error-vs-budget curve, final
// samples, and the coefficients of a Lasso fit on those samples.
func TestDeterminism(t *testing.T) {
	run := func() (*Report, []string) {
		m := polySurface(18, map[int]float64{4: 0.3})
		m.noise = 0.05
		rep, err := Run(context.Background(), m, m.layouts(), Config{
			MaxPromotions: 5, Seed: 42, ErrorTarget: 0.001,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep, m.measured
	}
	a, aOrder := run()
	b, bOrder := run()

	if len(aOrder) != len(bOrder) {
		t.Fatalf("promotion counts differ: %d vs %d", len(aOrder), len(bOrder))
	}
	for i := range aOrder {
		if aOrder[i] != bOrder[i] {
			t.Fatalf("promotion %d differs: %s vs %s", i, aOrder[i], bOrder[i])
		}
	}
	if len(a.Steps) != len(b.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, a.Steps[i], b.Steps[i])
		}
	}
	sa, sb := a.Samples(), b.Samples()
	for i := range sa {
		for _, pair := range [][2]float64{
			{sa[i].H, sb[i].H}, {sa[i].M, sb[i].M},
			{sa[i].C, sb[i].C}, {sa[i].R, sb[i].R},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("sample %s not bit-identical: %x vs %x",
					sa[i].Layout, math.Float64bits(pair[0]), math.Float64bits(pair[1]))
			}
		}
	}
	fit := func(samples []pmu.Sample) []float64 {
		X := make([][]float64, len(samples))
		y := make([]float64, len(samples))
		for i, s := range samples {
			X[i] = []float64{s.H, s.M, s.C}
			y[i] = s.R
		}
		f, err := stats.FitPolyLasso(X, y, 3, 0.01, []string{"H", "M", "C"})
		if err != nil {
			t.Fatal(err)
		}
		return f.Coefs
	}
	ca, cb := fit(sa), fit(sb)
	for i := range ca {
		if math.Float64bits(ca[i]) != math.Float64bits(cb[i]) {
			t.Fatalf("coefficient %d not bit-identical: %x vs %x",
				i, math.Float64bits(ca[i]), math.Float64bits(cb[i]))
		}
	}
}

// TestConstantSurface: a flat runtime surface cross-validates to zero
// error, so with any error target the planner stops before spending a
// single exact measurement.
func TestConstantSurface(t *testing.T) {
	m := &surfaceMeasurer{truth: make(map[string]pmu.Sample), traceLen: 1_000_000}
	for i := 0; i < 12; i++ {
		name := layName(i)
		m.truth[name] = pmu.Sample{
			Layout: name,
			H:      float64(1000 + i), M: float64(500 + i), C: float64(2000 + i),
			R: 5_000_000,
		}
	}
	rep, err := Run(context.Background(), m, m.layouts(), Config{
		ErrorTarget: 0.01, Seed: 3,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stopped != StopTarget {
		t.Fatalf("stopped %q, want target", rep.Stopped)
	}
	if rep.Promotions != 0 {
		t.Errorf("promoted %d layouts on a constant surface, want 0", rep.Promotions)
	}
	if rep.PredictedMaxErr > 0.01 {
		t.Errorf("predicted max error %f on a constant surface", rep.PredictedMaxErr)
	}
}

// TestFewerLayoutsThanFolds: K clamps to the layout count (leave-one-out)
// instead of failing, and the loop still terminates cleanly.
func TestFewerLayoutsThanFolds(t *testing.T) {
	m := polySurface(4, nil)
	rep, err := Run(context.Background(), m, m.layouts(), Config{
		Folds: 10, MaxPromotions: 10, Seed: 1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stopped != StopExhausted && rep.Stopped != StopBudget && rep.Stopped != StopDegenerate {
		t.Fatalf("unexpected stop reason %q", rep.Stopped)
	}
	if rep.Promotions > 4 {
		t.Errorf("promoted %d of 4 layouts", rep.Promotions)
	}
}

// TestDegenerateTinyProtocol: two layouts cannot support cross-validation
// at all — the planner must report a degenerate stop, not error or spin.
func TestDegenerateTinyProtocol(t *testing.T) {
	m := polySurface(2, nil)
	rep, err := Run(context.Background(), m, m.layouts(), Config{Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stopped != StopDegenerate {
		t.Fatalf("stopped %q, want degenerate", rep.Stopped)
	}
	if rep.PredictedMaxErr >= 0 {
		t.Errorf("degenerate run should report predicted error −1, got %f", rep.PredictedMaxErr)
	}
}

// TestCostAccounting checks the ledger identities the serving layer and
// the bake-off harness report: cost = probe + promotions·traceLen, and
// the curve's cost column is nondecreasing.
func TestCostAccounting(t *testing.T) {
	m := polySurface(15, map[int]float64{7: 0.5})
	m.noise = 0.02
	var steps []Step
	rep, err := Run(context.Background(), m, m.layouts(), Config{
		MaxPromotions: 3, Seed: 9,
	}, func(s Step) { steps = append(steps, s) })
	if err != nil {
		t.Fatal(err)
	}
	if want := rep.ProbeAccesses + rep.ExactAccesses; rep.CostAccesses != want {
		t.Errorf("CostAccesses %d, want probe+exact %d", rep.CostAccesses, want)
	}
	if want := uint64(rep.Promotions) * m.TraceLen(); rep.ExactAccesses != want {
		t.Errorf("ExactAccesses %d, want %d promotions × traceLen = %d",
			rep.ExactAccesses, rep.Promotions, want)
	}
	if want := uint64(15) * m.TraceLen(); rep.FullCostAccesses != want {
		t.Errorf("FullCostAccesses %d, want %d", rep.FullCostAccesses, want)
	}
	if len(steps) != len(rep.Steps) {
		t.Fatalf("onStep saw %d steps, report has %d", len(steps), len(rep.Steps))
	}
	for i := 1; i < len(rep.Steps); i++ {
		if rep.Steps[i].CostAccesses < rep.Steps[i-1].CostAccesses {
			t.Errorf("curve cost decreased at step %d: %d → %d",
				i, rep.Steps[i-1].CostAccesses, rep.Steps[i].CostAccesses)
		}
	}
	last := rep.Steps[len(rep.Steps)-1]
	if last.Promoted != "" {
		t.Errorf("final step promoted %q, want none", last.Promoted)
	}
	if last.CostAccesses != rep.CostAccesses {
		t.Errorf("final step cost %d, want report total %d", last.CostAccesses, rep.CostAccesses)
	}
}

// TestCalibration: with correlated probe bias (the positional-schedule
// regime the ratio estimator is built for), unpromoted samples must land
// near truth once a few promotions establish the correction.
func TestCalibration(t *testing.T) {
	m := polySurface(12, nil)
	// Uniform 10% inflation on every probe: perfectly correlated bias.
	biased := &biasedMeasurer{inner: m, bias: 1.10}
	rep, err := Run(context.Background(), biased, m.layouts(), Config{
		MaxPromotions: 2, Seed: 5,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range rep.Points {
		if pt.Exact {
			continue
		}
		truth := m.truth[pt.Layout.Name]
		if e := relErr(pt.Sample.R, truth.R); e > 0.001 {
			t.Errorf("%s: calibrated R off truth by %.4f (probe bias should cancel)", pt.Layout.Name, e)
		}
	}
}

type biasedMeasurer struct {
	inner *surfaceMeasurer
	bias  float64
}

func (b *biasedMeasurer) Measure(ctx context.Context, lays []layout.Layout, sm sim.Sampling) ([]sim.Result, error) {
	res, err := b.inner.Measure(ctx, lays, sm)
	if err != nil || !sm.Enabled() {
		return res, err
	}
	for i := range res {
		c := &res[i].Counters
		c.H = uint64(float64(c.H) * b.bias)
		c.M = uint64(float64(c.M) * b.bias)
		c.C = uint64(float64(c.C) * b.bias)
		c.R = uint64(float64(c.R) * b.bias)
	}
	return res, nil
}

func (b *biasedMeasurer) TraceLen() uint64 { return b.inner.TraceLen() }
