// Package plan implements adaptive sweep planning: an active-learning
// loop that spends exact-measurement budget where model error lives
// instead of uniformly across the layout protocol.
//
// The paper's 54-layout protocol (§VI-B) measures every layout at equal
// fidelity, but Mosmodel's error is concentrated in a few regions of the
// (H, M, C) space. The planner therefore (1) probes every protocol
// layout with sampled replay at an aggressive period — a whole-surface
// sketch for ~a tenth of the access cost — then (2) scores each
// still-cheap layout by how badly K-fold refits predict it (held-out
// residual) and how much the fitted polynomial wobbles there across
// folds (per-term coefficient instability), (3) promotes the
// highest-uncertainty layout to an exact measurement, and (4) stops when
// the cross-validated predicted max error drops under a target or the
// promotion budget runs out. Fidelity where it matters, imitation
// elsewhere.
//
// Everything is deterministic: folds and the layout protocol are seeded,
// ties break on sorted layout names, and replay itself is bit-exact — so
// a planned sweep is reproducible coefficient-for-coefficient.
package plan

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"mosaic/internal/layout"
	"mosaic/internal/models"
	"mosaic/internal/pmu"
	"mosaic/internal/sim"
	"mosaic/internal/stats"
)

// Measurer is the planner's measurement substrate: replay a set of
// layouts at a chosen fidelity and report what one exact replay costs.
// experiment.PairMeasurer implements it over the real pipeline; tests
// substitute synthetic surfaces.
type Measurer interface {
	// Measure replays lays at sampling fidelity s (zero value = exact)
	// and returns one result per layout, in layout order.
	Measure(ctx context.Context, lays []layout.Layout, s sim.Sampling) ([]sim.Result, error)
	// TraceLen is the trace length in accesses — the cost of one exact
	// layout measurement.
	TraceLen() uint64
}

// DefaultProbe is the aggressive sampling plan for the seed pass: ~9% of
// the accesses of an exact replay on the bundled trace lengths, enough
// to sketch the whole (H, M, C) surface before any exact spend.
var DefaultProbe = sim.Sampling{
	Period:      16384,
	MeasureLen:  1024,
	WarmupLen:   2048,
	PrologueLen: 4096,
}

// Config tunes one planner run. The zero value is usable: default probe
// fidelity, 5 folds, a promotion budget of one fifth of the protocol,
// and no error target (budget-driven).
type Config struct {
	// ErrorTarget stops the loop once the cross-validated predicted max
	// relative error falls to or below it (0 = never stop on error).
	ErrorTarget float64
	// MaxPromotions bounds exact measurements, anchors included
	// (0 = len(layouts)/5, min 1).
	MaxPromotions int
	// Folds is the K of the K-fold scoring fits (0 = 5; clamped to the
	// training-point count by stats.KFoldIndices).
	Folds int
	// Seed drives fold assignment. Same seed + budget ⇒ same promotion
	// sequence and bit-identical coefficients.
	Seed int64
	// ProbeSampling is the cheap seed fidelity (zero value = DefaultProbe).
	ProbeSampling sim.Sampling
	// LambdaRel is the scoring fits' Lasso penalty relative to the
	// standard deviation of the runtime samples (0 = 0.01).
	LambdaRel float64
	// Anchors are layout names promoted to exact before any scoring
	// (they count against MaxPromotions). Adaptive defaults them to the
	// 4KB/2MB baselines, which pin the training hull's corners and the
	// prior models' anchor points.
	Anchors []string
}

// Point is one protocol layout's state at the end of a run.
type Point struct {
	Layout layout.Layout
	// Probe is the cheap sampled estimate from the seed pass.
	Probe pmu.Sample
	// Exact reports whether the layout was promoted to exact replay.
	Exact bool
	// Sample and Counters are the best-known measurement: exact when
	// promoted, otherwise the probe estimate with the promoted layouts'
	// calibration applied (Sample only — Counters stay the raw probe).
	Sample   pmu.Sample
	Counters pmu.Counters
	// Score is the layout's last uncertainty score (held-out residual
	// plus coefficient instability); zero once promoted.
	Score float64
}

// Step is one round of the error-vs-budget curve: the predicted max
// error with the measurements bought so far, and the layout the round
// then promoted ("" on the final, stopping round).
type Step struct {
	Round           int     `json:"round"`
	Promoted        string  `json:"promoted,omitempty"`
	PredictedMaxErr float64 `json:"predictedMaxErr"`
	CostAccesses    uint64  `json:"costAccesses"`
	CostRatio       float64 `json:"costRatio"`
}

// Stop reasons.
const (
	StopTarget     = "target"     // predicted max error reached ErrorTarget
	StopBudget     = "budget"     // MaxPromotions exact measurements spent
	StopExhausted  = "exhausted"  // every candidate layout already exact
	StopDegenerate = "degenerate" // scoring fits failed (e.g. too few points)
)

// Report is a finished planner run.
type Report struct {
	// Points holds every protocol layout in protocol order.
	Points []Point
	// Steps is the error-vs-budget curve, one entry per scoring round.
	Steps []Step
	// Promotions counts exact measurements (anchors included).
	Promotions int
	// PredictedMaxErr is the final cross-validated max relative error.
	PredictedMaxErr float64
	// ProbeAccesses and ExactAccesses split the measured-access cost;
	// CostAccesses is their sum. FullCostAccesses is what measuring the
	// whole protocol exactly would have cost.
	ProbeAccesses    uint64
	ExactAccesses    uint64
	CostAccesses     uint64
	FullCostAccesses uint64
	// Stopped names the stop reason (Stop* constants).
	Stopped string
}

// CostRatio is the planned sweep's measured-access cost relative to the
// full exact protocol.
func (r *Report) CostRatio() float64 {
	if r.FullCostAccesses == 0 {
		return 0
	}
	return float64(r.CostAccesses) / float64(r.FullCostAccesses)
}

// Samples returns the best-known training samples — every point except
// the 1GB validation layout — in protocol order.
func (r *Report) Samples() []pmu.Sample {
	out := make([]pmu.Sample, 0, len(r.Points))
	for _, pt := range r.Points {
		if pt.Layout.Name == validationLayout {
			continue
		}
		out = append(out, pt.Sample)
	}
	return out
}

// validationLayout is the 1GB validation point (§VII-D): excluded from
// training and from promotion candidacy, so it stays an independent
// check on the fitted model.
const validationLayout = "1GB"

// ErrNoLayouts reports an empty candidate protocol.
var ErrNoLayouts = errors.New("plan: no layouts to plan over")

// Run executes the active-learning loop over the given protocol layouts.
// onStep, when non-nil, receives each Step as it happens — the serving
// layer streams it as the job's live error-vs-budget curve.
func Run(ctx context.Context, m Measurer, lays []layout.Layout, cfg Config, onStep func(Step)) (*Report, error) {
	if len(lays) == 0 {
		return nil, ErrNoLayouts
	}
	if cfg.Folds <= 0 {
		cfg.Folds = 5
	}
	if cfg.LambdaRel <= 0 {
		cfg.LambdaRel = 0.01
	}
	if cfg.MaxPromotions <= 0 {
		cfg.MaxPromotions = max(1, len(lays)/5)
	}
	probe := cfg.ProbeSampling
	if !probe.Enabled() {
		probe = DefaultProbe
	}

	rep := &Report{
		Points:           make([]Point, len(lays)),
		FullCostAccesses: uint64(len(lays)) * m.TraceLen(),
	}

	// Seed pass: probe every layout in one fused sampled replay.
	res, err := m.Measure(ctx, lays, probe)
	if err != nil {
		return nil, fmt.Errorf("plan: probe pass: %w", err)
	}
	for i, lay := range lays {
		s := pmu.SampleFrom(lay.Name, res[i].Counters)
		rep.Points[i] = Point{Layout: lay, Probe: s, Sample: s, Counters: res[i].Counters}
		rep.ProbeAccesses += res[i].MeasuredAccesses
	}

	// Promote the anchors first: they pin the training hull and the
	// prior models' baseline points, and cost budget like any promotion.
	var anchorIdx []int
	for _, name := range cfg.Anchors {
		for i := range rep.Points {
			if rep.Points[i].Layout.Name == name && !rep.Points[i].Exact &&
				rep.Promotions+len(anchorIdx) < cfg.MaxPromotions {
				anchorIdx = append(anchorIdx, i)
			}
		}
	}
	if err := promote(ctx, m, rep, anchorIdx); err != nil {
		return nil, err
	}

	for round := 0; ; round++ {
		rep.CostAccesses = rep.ProbeAccesses + rep.ExactAccesses
		predErr, cvErr := predictedMaxErr(rep.Points, cfg)
		if cvErr != nil {
			// −1 marks "too degenerate to cross-validate" and keeps the
			// report JSON-safe (no Inf).
			predErr = -1
		}
		rep.PredictedMaxErr = predErr

		step := Step{
			Round:           round,
			PredictedMaxErr: predErr,
			CostAccesses:    rep.CostAccesses,
			CostRatio:       rep.CostRatio(),
		}
		stop := ""
		var cand int
		switch {
		case cvErr != nil:
			stop = StopDegenerate
		case cfg.ErrorTarget > 0 && predErr <= cfg.ErrorTarget:
			stop = StopTarget
		case rep.Promotions >= cfg.MaxPromotions:
			stop = StopBudget
		default:
			scores, ok := kfoldScores(rep.Points, cfg)
			if !ok {
				stop = StopDegenerate
				break
			}
			for i := range rep.Points {
				rep.Points[i].Score = scores[i]
			}
			cand = selectCandidate(rep.Points)
			if cand < 0 {
				stop = StopExhausted
			}
		}
		if stop != "" {
			rep.Steps = append(rep.Steps, step)
			if onStep != nil {
				onStep(step)
			}
			rep.Stopped = stop
			return rep, nil
		}

		step.Promoted = rep.Points[cand].Layout.Name
		rep.Steps = append(rep.Steps, step)
		if onStep != nil {
			onStep(step)
		}
		if err := promote(ctx, m, rep, []int{cand}); err != nil {
			return nil, err
		}
	}
}

// promote measures the indexed points exactly (one fused batch) and
// replaces their probe estimates.
func promote(ctx context.Context, m Measurer, rep *Report, idx []int) error {
	if len(idx) == 0 {
		return nil
	}
	lays := make([]layout.Layout, len(idx))
	for k, i := range idx {
		lays[k] = rep.Points[i].Layout
	}
	res, err := m.Measure(ctx, lays, sim.Sampling{})
	if err != nil {
		return fmt.Errorf("plan: exact measurement of %s: %w", lays[0].Name, err)
	}
	for k, i := range idx {
		pt := &rep.Points[i]
		pt.Exact = true
		pt.Score = 0
		pt.Counters = res[k].Counters
		pt.Sample = pmu.SampleFrom(pt.Layout.Name, res[k].Counters)
		rep.ExactAccesses += m.TraceLen()
		rep.Promotions++
	}
	rep.CostAccesses = rep.ProbeAccesses + rep.ExactAccesses
	recalibrate(rep)
	return nil
}

// recalibrate refreshes the unpromoted points' best-known samples with
// the exact points' probe correction. The probe schedule is positional
// over the pair's shared trace — every layout was sampled through the
// same measurement windows — so the extrapolation error is strongly
// correlated across layouts, and the ratio of exact to probe totals over
// the promoted layouts is an unbiased multiplicative correction for the
// rest (a ratio estimator with the promotions as control variates).
func recalibrate(rep *Report) {
	var exH, exM, exC, exR, prH, prM, prC, prR float64
	for i := range rep.Points {
		pt := &rep.Points[i]
		if !pt.Exact {
			continue
		}
		exH += pt.Sample.H
		exM += pt.Sample.M
		exC += pt.Sample.C
		exR += pt.Sample.R
		prH += pt.Probe.H
		prM += pt.Probe.M
		prC += pt.Probe.C
		prR += pt.Probe.R
	}
	fH, fM, fC, fR := ratio(exH, prH), ratio(exM, prM), ratio(exC, prC), ratio(exR, prR)
	for i := range rep.Points {
		pt := &rep.Points[i]
		if pt.Exact {
			continue
		}
		pt.Sample = pmu.Sample{
			Layout: pt.Probe.Layout,
			H:      fH * pt.Probe.H,
			M:      fM * pt.Probe.M,
			C:      fC * pt.Probe.C,
			R:      fR * pt.Probe.R,
		}
	}
}

// ratio is exact/probe, defaulting to 1 (no correction) when the probe
// total carries no signal.
func ratio(exact, probe float64) float64 {
	if probe > 0 && exact > 0 {
		return exact / probe
	}
	return 1
}

// selectCandidate picks the highest-scoring unpromoted, non-validation
// point. Ties (and the no-score case) break on ascending layout name, so
// selection is deterministic for a given fold seed.
func selectCandidate(pts []Point) int {
	var cands []int
	for i := range pts {
		if !pts[i].Exact && pts[i].Layout.Name != validationLayout {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return -1
	}
	sort.Slice(cands, func(a, b int) bool {
		return pts[cands[a]].Layout.Name < pts[cands[b]].Layout.Name
	})
	sort.SliceStable(cands, func(a, b int) bool {
		return pts[cands[a]].Score > pts[cands[b]].Score
	})
	return cands[0]
}

// predictedMaxErr cross-validates Mosmodel — the model the sweep is
// being planned for — on the current best-known samples; its worst
// held-out relative error is the loop's stopping metric.
func predictedMaxErr(pts []Point, cfg Config) (float64, error) {
	samples := trainSamples(pts)
	if len(samples) < 2 {
		return math.Inf(1), errors.New("plan: too few training points to cross-validate")
	}
	mosmodel := func() models.Model { return models.NewMosmodel() }
	return models.CrossValidate(mosmodel, samples, cfg.Folds, cfg.Seed)
}

// trainSamples collects the best-known samples of every non-validation
// point, in protocol order.
func trainSamples(pts []Point) []pmu.Sample {
	out := make([]pmu.Sample, 0, len(pts))
	for i := range pts {
		if pts[i].Layout.Name == validationLayout {
			continue
		}
		out = append(out, pts[i].Sample)
	}
	return out
}

// kfoldScores computes each point's uncertainty: the relative residual
// when a K-fold Lasso fit that never saw the point predicts it, plus the
// per-term instability of the fitted polynomial there (standard
// deviation of each term's contribution across the K refits, relative to
// the point's runtime). Validation points score zero. ok is false when
// no fold produced a usable fit — the degenerate-surface signal.
func kfoldScores(pts []Point, cfg Config) (scores []float64, ok bool) {
	scores = make([]float64, len(pts))

	// Training view: every non-validation point.
	var idx []int
	for i := range pts {
		if pts[i].Layout.Name != validationLayout {
			idx = append(idx, i)
		}
	}
	n := len(idx)
	if n < 3 {
		return nil, false
	}
	X := make([][]float64, n)
	y := make([]float64, n)
	for k, i := range idx {
		s := pts[i].Sample
		X[k] = []float64{s.H, s.M, s.C}
		y[k] = s.R
	}
	lambda := cfg.LambdaRel * stddev(y)

	folds := stats.KFoldIndices(n, cfg.Folds, cfg.Seed)
	residual := make([]float64, n)
	contribs := make([][][]float64, n) // per point, per successful fold
	fits := 0
	for _, held := range folds {
		inHeld := make(map[int]bool, len(held))
		for _, k := range held {
			inHeld[k] = true
		}
		var trX [][]float64
		var trY []float64
		for k := range X {
			// Baselines anchor every fold's training set, mirroring
			// models.CrossValidate.
			name := pts[idx[k]].Layout.Name
			if inHeld[k] && name != "4KB" && name != "2MB" {
				continue
			}
			trX = append(trX, X[k])
			trY = append(trY, y[k])
		}
		if len(trX) < 3 || len(trX) == n {
			continue
		}
		fit, err := stats.FitPolyLasso(trX, trY, 3, lambda, []string{"H", "M", "C"})
		if err != nil {
			continue
		}
		fits++
		for k := range X {
			contribs[k] = append(contribs[k], fit.Contributions(X[k]))
			if inHeld[k] {
				if r := relErr(fit.Predict(X[k]), y[k]); r > residual[k] {
					residual[k] = r
				}
			}
		}
	}
	if fits == 0 {
		return nil, false
	}
	for k, i := range idx {
		scores[i] = sanitize(residual[k]) + sanitize(instability(contribs[k], y[k]))
	}
	return scores, true
}

// instability sums, over polynomial terms, the standard deviation of the
// term's contribution across fold refits, relative to the point's
// runtime. A region where refits disagree about which terms carry the
// prediction scores high even when the held-out residual happens small.
func instability(perFold [][]float64, y float64) float64 {
	if len(perFold) < 2 {
		return 0
	}
	nTerms := len(perFold[0])
	scale := math.Abs(y)
	if scale < 1 {
		scale = 1
	}
	var total float64
	col := make([]float64, len(perFold))
	for t := 0; t < nTerms; t++ {
		for f := range perFold {
			col[f] = perFold[f][t]
		}
		total += stddev(col)
	}
	return total / scale
}

// relErr is |pred−y|/|y|, degrading to absolute error at y = 0.
func relErr(pred, y float64) float64 {
	d := math.Abs(pred - y)
	if ay := math.Abs(y); ay > 0 {
		return d / ay
	}
	return d
}

// sanitize maps NaN/−Inf scores (degenerate fits) to zero so they never
// outrank a real score and never poison a sum.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// stddev is the population standard deviation.
func stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var mean float64
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	var ss float64
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}
