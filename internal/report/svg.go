package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mosaic/internal/experiment"
)

// SVG rendering of the runtime-vs-walk-cycles charts (Figures 3, 7–11):
// measured samples as dots, model predictions as polylines. Pure stdlib —
// the output opens in any browser.

// svgPalette cycles through colour-blind-safe model colours.
var svgPalette = []string{"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9"}

// SVGChart renders the curve as a self-contained SVG document.
func SVGChart(cv *experiment.Curve, width, height int) string {
	if len(cv.Points) == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg"/>`
	}
	const margin = 56
	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)

	minC, maxC := cv.Points[0].C, cv.Points[0].C
	minR, maxR := cv.Points[0].R, cv.Points[0].R
	consider := func(c, r float64) {
		minC, maxC = math.Min(minC, c), math.Max(maxC, c)
		minR, maxR = math.Min(minR, r), math.Max(maxR, r)
	}
	for i, p := range cv.Points {
		consider(p.C, p.R)
		for _, preds := range cv.Predictions {
			consider(p.C, preds[i])
		}
	}
	//mosvet:ignore floateq degenerate-axis sentinel: min/max are copied sample values, equal only when truly identical
	if maxC == minC {
		maxC = minC + 1
	}
	// Pad the R range 5% so points don't sit on the frame.
	pad := (maxR - minR) * 0.05
	//mosvet:ignore floateq exact-zero sentinel: pad is 0.0 only when the R range is exactly empty
	if pad == 0 {
		pad = 1
	}
	minR -= pad
	maxR += pad

	x := func(c float64) float64 { return margin + (c-minC)/(maxC-minC)*plotW }
	y := func(r float64) float64 { return float64(height) - margin - (r-minR)/(maxR-minR)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s on %s</text>`+"\n",
		margin, xmlEscape(cv.Workload), xmlEscape(cv.Platform))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, height-margin, width-margin, height-margin)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, margin, margin, height-margin)
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		c := minC + (maxC-minC)*float64(i)/4
		r := minR + (maxR-minR)*float64(i)/4
		fmt.Fprintf(&b, `<text x="%.0f" y="%d" text-anchor="middle">%s</text>`+"\n",
			x(c), height-margin+16, siFormat(c))
		fmt.Fprintf(&b, `<text x="%d" y="%.0f" text-anchor="end">%s</text>`+"\n",
			margin-6, y(r)+4, siFormat(r))
		fmt.Fprintf(&b, `<line x1="%.0f" y1="%d" x2="%.0f" y2="%d" stroke="black"/>`+"\n",
			x(c), height-margin, x(c), height-margin+4)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.0f" x2="%d" y2="%.0f" stroke="black"/>`+"\n",
			margin-4, y(r), margin, y(r))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">walk cycles C</text>`+"\n",
		width/2, height-12)
	fmt.Fprintf(&b, `<text x="16" y="%d" transform="rotate(-90 16 %d)" text-anchor="middle">runtime R</text>`+"\n",
		height/2, height/2)

	// Model polylines (sorted model names for stable output).
	names := make([]string, 0, len(cv.Predictions))
	for name := range cv.Predictions {
		names = append(names, name)
	}
	sort.Strings(names)
	for k, name := range names {
		color := svgPalette[k%len(svgPalette)]
		var pts []string
		for i, p := range cv.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(p.C), y(cv.Predictions[name][i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.Join(pts, " "), color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="%s">%s (max err %s)</text>`+"\n",
			width-margin-180, margin+16*(k+1), color, xmlEscape(name), Pct(cv.Errors[name]))
	}

	// Measured points on top.
	for _, p := range cv.Points {
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="black"><title>%s: C=%s R=%s</title></circle>`+"\n",
			x(p.C), y(p.R), xmlEscape(p.Layout), siFormat(p.C), siFormat(p.R))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d">● measured</text>`+"\n", width-margin-180, margin)
	b.WriteString("</svg>\n")
	return b.String()
}

// siFormat renders a count with an SI suffix (1.2M, 340k).
func siFormat(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.2gG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	}
	return fmt.Sprintf("%.3g", v)
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SVGBars renders a labelled bar chart (log-scale friendly inputs are the
// caller's concern) — used for the Figure 2-style model-error summaries.
func SVGBars(title string, labels []string, values []float64, width, height int) string {
	const margin = 56
	n := len(labels)
	if n == 0 || n != len(values) {
		return `<svg xmlns="http://www.w3.org/2000/svg"/>`
	}
	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)
	maxV := values[0]
	for _, v := range values {
		maxV = math.Max(maxV, v)
	}
	if maxV <= 0 {
		maxV = 1
	}
	barW := plotW / float64(n) * 0.7
	gap := plotW / float64(n)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>`+"\n", margin, xmlEscape(title))
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, height-margin, width-margin, height-margin)
	for i, v := range values {
		h := v / maxV * plotH
		x := float64(margin) + gap*float64(i) + (gap-barW)/2
		y := float64(height-margin) - h
		color := svgPalette[i%len(svgPalette)]
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
			x, y, barW, h, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			x+barW/2, y-4, Pct(v))
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			x+barW/2, height-margin+16, xmlEscape(labels[i]))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// TrajectoryPoint is one PR's value of a tracked benchmark metric.
type TrajectoryPoint struct {
	PR    int
	Value float64
}

// TrajectorySeries is one metric's per-PR history from the benchmark
// ledger. Unit annotates the panel label ("ms", "×", "ratio").
type TrajectorySeries struct {
	Name   string
	Unit   string
	Points []TrajectoryPoint
}

// SVGTrajectory renders the repo's performance trajectory — the
// BENCH_history.json ledger — as stacked per-metric panels over a shared
// PR axis. Each panel keeps its own y-scale (milliseconds, speedups, and
// cost ratios are not comparable), so the chart reads as small multiples:
// one glance shows which metrics drift across PRs. Series with no
// measured points are dropped rather than rendered empty.
func SVGTrajectory(title string, series []TrajectorySeries, width int) string {
	var kept []TrajectorySeries
	minPR, maxPR := 0, 0
	for _, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		for _, p := range s.Points {
			if minPR == 0 || p.PR < minPR {
				minPR = p.PR
			}
			if p.PR > maxPR {
				maxPR = p.PR
			}
		}
		kept = append(kept, s)
	}
	if len(kept) == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg"/>`
	}
	if maxPR == minPR {
		maxPR = minPR + 1
	}

	const (
		marginL  = 72
		marginR  = 24
		headerH  = 36
		panelH   = 96
		panelGap = 20
		footerH  = 34
	)
	height := headerH + len(kept)*(panelH+panelGap) + footerH
	plotW := float64(width - marginL - marginR)
	x := func(pr int) float64 {
		return float64(marginL) + float64(pr-minPR)/float64(maxPR-minPR)*plotW
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, xmlEscape(title))

	for k, s := range kept {
		top := headerH + k*(panelH+panelGap)
		bottom := top + panelH
		lo, hi := s.Points[0].Value, s.Points[0].Value
		for _, p := range s.Points {
			lo, hi = math.Min(lo, p.Value), math.Max(hi, p.Value)
		}
		pad := (hi - lo) * 0.15
		//mosvet:ignore floateq exact-zero sentinel: pad is 0.0 only for a perfectly flat series
		if pad == 0 {
			pad = math.Max(math.Abs(hi)*0.15, 0.5)
		}
		lo, hi = lo-pad, hi+pad
		y := func(v float64) float64 {
			return float64(bottom) - (v-lo)/(hi-lo)*float64(panelH)
		}

		color := svgPalette[k%len(svgPalette)]
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%d" fill="none" stroke="#ccc"/>`+"\n",
			marginL, top, plotW, panelH)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-weight="bold">%s</text>`+"\n",
			marginL, top-4, xmlEscape(s.Name))
		fmt.Fprintf(&b, `<text x="%d" y="%.0f" text-anchor="end">%s</text>`+"\n",
			marginL-6, y(hi-pad)+4, siFormat(hi-pad))
		fmt.Fprintf(&b, `<text x="%d" y="%.0f" text-anchor="end">%s</text>`+"\n",
			marginL-6, y(lo+pad)+4, siFormat(lo+pad))

		var pts []string
		for _, p := range s.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(p.PR), y(p.Value)))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for _, p := range s.Points {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"><title>PR %d: %s%s</title></circle>`+"\n",
				x(p.PR), y(p.Value), color, p.PR, siFormat(p.Value), xmlEscape(s.Unit))
		}
		last := s.Points[len(s.Points)-1]
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" fill="%s">%s%s</text>`+"\n",
			x(last.PR)+6, y(last.Value)+4, color, siFormat(last.Value), xmlEscape(s.Unit))
	}

	// Shared PR axis under the last panel.
	axisY := headerH + len(kept)*(panelH+panelGap) - panelGap + 16
	for pr := minPR; pr <= maxPR; pr++ {
		fmt.Fprintf(&b, `<text x="%.0f" y="%d" text-anchor="middle">PR %d</text>`+"\n", x(pr), axisY, pr)
	}
	b.WriteString("</svg>\n")
	return b.String()
}
