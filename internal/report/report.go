// Package report renders experiment results as text: aligned tables for
// the paper's Tables 6–8 and model-error matrices (Figures 2, 5, 6), and
// ASCII scatter charts for the runtime-vs-walk-cycles figures (3, 7–11).
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mosaic/internal/experiment"
)

// Table is a simple aligned-text table builder.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", w, c)
			} else {
				fmt.Fprintf(&b, "  %*s", w, c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string {
	switch {
	case v >= 0.1:
		return fmt.Sprintf("%.0f%%", v*100)
	case v >= 0.01:
		return fmt.Sprintf("%.1f%%", v*100)
	default:
		return fmt.Sprintf("%.2f%%", v*100)
	}
}

// ModelErrorTable renders a map of model→error in a fixed model order.
func ModelErrorTable(title string, errs map[string]float64, order []string) string {
	t := NewTable("model", "max error")
	for _, name := range order {
		if e, ok := errs[name]; ok {
			t.AddRow(name, Pct(e))
		}
	}
	return title + "\n" + t.String()
}

// PerBenchmarkTable renders one platform's Figure 5/6 matrix.
func PerBenchmarkTable(title string, pb *experiment.PerBenchErrors, geo bool) string {
	header := append([]string{"benchmark"}, pb.Models...)
	t := NewTable(header...)
	data := pb.Max
	if geo {
		data = pb.Geo
	}
	for i, w := range pb.Workloads {
		row := []string{w}
		for _, v := range data[i] {
			row = append(row, Pct(v))
		}
		t.AddRow(row...)
	}
	return title + "\n" + t.String()
}

// Chart renders an ASCII scatter of the measured samples ('o') with model
// prediction overlays (one rune per model) on a width×height grid.
func Chart(cv *experiment.Curve, width, height int, modelRunes map[string]rune) string {
	if len(cv.Points) == 0 {
		return "(no data)\n"
	}
	minC, maxC := cv.Points[0].C, cv.Points[0].C
	minR, maxR := cv.Points[0].R, cv.Points[0].R
	consider := func(c, r float64) {
		minC, maxC = math.Min(minC, c), math.Max(maxC, c)
		minR, maxR = math.Min(minR, r), math.Max(maxR, r)
	}
	for i, p := range cv.Points {
		consider(p.C, p.R)
		for _, preds := range cv.Predictions {
			consider(p.C, preds[i])
		}
	}
	//mosvet:ignore floateq degenerate-axis sentinel: min/max are copied sample values, equal only when truly identical
	if maxC == minC {
		maxC = minC + 1
	}
	//mosvet:ignore floateq degenerate-axis sentinel: min/max are copied sample values, equal only when truly identical
	if maxR == minR {
		maxR = minR + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	place := func(c, r float64, ch rune) {
		x := int((c - minC) / (maxC - minC) * float64(width-1))
		y := int((r - minR) / (maxR - minR) * float64(height-1))
		row := height - 1 - y
		if grid[row][x] == ' ' || ch == 'o' {
			grid[row][x] = ch
		}
	}
	// Models first so measured points win collisions.
	names := make([]string, 0, len(cv.Predictions))
	for name := range cv.Predictions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ch, ok := modelRunes[name]
		if !ok {
			ch = '+'
		}
		for i, p := range cv.Points {
			place(p.C, cv.Predictions[name][i], ch)
		}
	}
	for _, p := range cv.Points {
		place(p.C, p.R, 'o')
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s — runtime vs walk cycles\n", cv.Workload, cv.Platform)
	fmt.Fprintf(&b, "R max %.3g\n", maxR)
	for _, row := range grid {
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "R min %.3g; C in [%.3g, %.3g]\n", minR, minC, maxC)
	b.WriteString("legend: o measured")
	for _, name := range names {
		ch, ok := modelRunes[name]
		if !ok {
			ch = '+'
		}
		fmt.Fprintf(&b, ", %c %s (max err %s)", ch, name, Pct(cv.Errors[name]))
	}
	b.WriteByte('\n')
	return b.String()
}

// Table7Text renders the 4KB-vs-2MB counter comparison.
func Table7Text(ds *experiment.Dataset, rows []experiment.Table7Row) string {
	t := NewTable("counter", "program 4KB", "program 2MB", "walker 4KB", "walker 2MB")
	fmtN := func(n uint64) string { return fmt.Sprintf("%d", n) }
	for _, r := range rows {
		if r.WalkerSplit {
			t.AddRow(r.Name, fmtN(r.Program4K), fmtN(r.Program2M), fmtN(r.Walker4K), fmtN(r.Walker2M))
		} else {
			t.AddRow(r.Name, fmtN(r.Program4K), fmtN(r.Program2M), "", "")
		}
	}
	title := fmt.Sprintf("Table 7: %s on %s, 4KB vs 2MB pages", ds.Workload, ds.Platform)
	return title + "\n" + t.String()
}

// Table8Text renders the R² grid.
func Table8Text(rows []experiment.Table8Row, platforms []string) string {
	header := []string{"workload"}
	for _, p := range platforms {
		header = append(header, p+":C", p+":M", p+":H")
	}
	t := NewTable(header...)
	for _, r := range rows {
		row := []string{r.Workload}
		for _, p := range platforms {
			if vals, ok := r.R2[p]; ok {
				for _, v := range vals {
					row = append(row, fmt.Sprintf("%.2f", v))
				}
			} else {
				row = append(row, "-", "-", "-")
			}
		}
		t.AddRow(row...)
	}
	return "Table 8: R² of single-variable linear regression (C, M, H)\n" + t.String()
}
