package report

import (
	"strings"
	"testing"

	"mosaic/internal/experiment"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("long-name", "12345")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines: %q", len(lines), out)
	}
	// All rows end aligned: same width.
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("rows not aligned:\n%s", out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Error("header missing")
	}
	// Short rows are padded without panicking.
	tb.AddRow("only-one")
	_ = tb.String()
}

func TestPct(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1.92, "192%"},
		{0.25, "25%"},
		{0.063, "6.3%"},
		{0.0029, "0.29%"},
	}
	for _, c := range cases {
		if got := Pct(c.in); got != c.want {
			t.Errorf("Pct(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestModelErrorTable(t *testing.T) {
	out := ModelErrorTable("title", map[string]float64{"basu": 1.92, "yaniv": 0.25}, []string{"basu", "yaniv", "missing"})
	if !strings.Contains(out, "title") || !strings.Contains(out, "192%") || !strings.Contains(out, "25%") {
		t.Errorf("output = %q", out)
	}
	if strings.Contains(out, "missing") {
		t.Error("absent models should be skipped")
	}
}

func TestPerBenchmarkTable(t *testing.T) {
	pb := &experiment.PerBenchErrors{
		Platform:  "SandyBridge",
		Workloads: []string{"gups/8GB"},
		Models:    []string{"basu", "mosmodel"},
		Max:       [][]float64{{0.5, 0.01}},
		Geo:       [][]float64{{0.1, 0.001}},
	}
	out := PerBenchmarkTable("t", pb, false)
	if !strings.Contains(out, "gups/8GB") || !strings.Contains(out, "50%") {
		t.Errorf("max table = %q", out)
	}
	out = PerBenchmarkTable("t", pb, true)
	if !strings.Contains(out, "10%") {
		t.Errorf("geo table = %q", out)
	}
}

func TestChart(t *testing.T) {
	cv := &experiment.Curve{
		Workload: "w",
		Platform: "p",
		Points: []experiment.CurvePoint{
			{Layout: "2MB", C: 0, R: 100},
			{Layout: "mid", C: 50, R: 150},
			{Layout: "4KB", C: 100, R: 200},
		},
		Predictions: map[string][]float64{"poly1": {100, 150, 200}},
		Errors:      map[string]float64{"poly1": 0.0},
	}
	out := Chart(cv, 40, 10, map[string]rune{"poly1": '-'})
	if !strings.Contains(out, "w on p") {
		t.Error("missing chart title")
	}
	if !strings.Contains(out, "o measured") || !strings.Contains(out, "- poly1") {
		t.Error("missing legend")
	}
	if strings.Count(out, "o") < 3 {
		t.Errorf("expected at least 3 measured points:\n%s", out)
	}
	// Empty curve doesn't panic.
	if got := Chart(&experiment.Curve{}, 10, 5, nil); !strings.Contains(got, "no data") {
		t.Error("empty curve should say so")
	}
	// Degenerate (single-point) curve doesn't divide by zero.
	one := &experiment.Curve{Points: []experiment.CurvePoint{{C: 5, R: 5}}}
	_ = Chart(one, 10, 5, nil)
}

func TestTable7Text(t *testing.T) {
	ds := &experiment.Dataset{Workload: "w", Platform: "p"}
	rows := []experiment.Table7Row{
		{Name: "runtime cycles", Program4K: 1320, Program2M: 1155},
		{Name: "L3 loads", Program4K: 22, Program2M: 20, Walker4K: 1, Walker2M: 0, WalkerSplit: true},
	}
	out := Table7Text(ds, rows)
	if !strings.Contains(out, "runtime cycles") || !strings.Contains(out, "1320") {
		t.Errorf("out = %q", out)
	}
	if !strings.Contains(out, "walker 4KB") {
		t.Error("missing walker columns")
	}
}

func TestTable8Text(t *testing.T) {
	rows := []experiment.Table8Row{
		{Workload: "gups/8GB", R2: map[string][3]float64{"SandyBridge": {1, 0.99, 0.95}}},
	}
	out := Table8Text(rows, []string{"SandyBridge", "Haswell"})
	if !strings.Contains(out, "gups/8GB") || !strings.Contains(out, "1.00") || !strings.Contains(out, "0.99") {
		t.Errorf("out = %q", out)
	}
	// Missing platform renders placeholders.
	if !strings.Contains(out, "-") {
		t.Error("missing-platform placeholder absent")
	}
}

func TestSVGChart(t *testing.T) {
	cv := &experiment.Curve{
		Workload: "w<&>",
		Platform: "p",
		Points: []experiment.CurvePoint{
			{Layout: "2MB", C: 0, R: 100},
			{Layout: "mid", C: 50, R: 150},
			{Layout: "4KB", C: 100, R: 200},
		},
		Predictions: map[string][]float64{
			"poly1":    {100, 150, 200},
			"mosmodel": {101, 149, 200},
		},
		Errors: map[string]float64{"poly1": 0.0, "mosmodel": 0.01},
	}
	out := SVGChart(cv, 720, 440)
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "circle",
		"poly1", "mosmodel", "walk cycles C", "runtime R",
		"w&lt;&amp;&gt;", // title is escaped
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Contains(out, "w<&>") {
		t.Error("unescaped title leaked into SVG")
	}
	// Three measured circles.
	if got := strings.Count(out, "<circle"); got != 3 {
		t.Errorf("%d circles, want 3", got)
	}
	// Empty chart is still valid SVG.
	if got := SVGChart(&experiment.Curve{}, 10, 10); !strings.Contains(got, "<svg") {
		t.Error("empty chart not an SVG")
	}
}

func TestSIFormat(t *testing.T) {
	cases := map[float64]string{
		1500:          "1.5k",
		2_500_000:     "2.5M",
		3_000_000_000: "3G",
		12:            "12",
	}
	for in, want := range cases {
		if got := siFormat(in); got != want {
			t.Errorf("siFormat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSVGBars(t *testing.T) {
	out := SVGBars("Figure 2a", []string{"basu", "yaniv"}, []float64{1.92, 0.25}, 640, 360)
	for _, want := range []string{"<svg", "</svg>", "basu", "yaniv", "192%", "25%", "<rect"} {
		if !strings.Contains(out, want) {
			t.Errorf("bar SVG missing %q", want)
		}
	}
	// Degenerate inputs stay valid.
	if got := SVGBars("t", nil, nil, 100, 100); !strings.Contains(got, "<svg") {
		t.Error("empty bars not an SVG")
	}
	if got := SVGBars("t", []string{"a"}, []float64{0}, 100, 100); !strings.Contains(got, "<svg") {
		t.Error("zero-value bars not an SVG")
	}
}

func TestSVGTrajectory(t *testing.T) {
	series := []TrajectorySeries{
		{Name: "quick sweep wall time", Unit: "ms", Points: []TrajectoryPoint{
			{PR: 1, Value: 1500}, {PR: 2, Value: 1400}, {PR: 3, Value: 1350},
		}},
		{Name: "adaptive sweep cost ratio", Unit: "", Points: []TrajectoryPoint{
			{PR: 3, Value: 0.29},
		}},
		{Name: "never measured", Unit: "x"},
	}
	out := SVGTrajectory("mosaic performance trajectory", series, 760)
	for _, want := range []string{
		"<svg", "</svg>", "mosaic performance trajectory",
		"quick sweep wall time", "adaptive sweep cost ratio",
		"PR 1", "PR 3", "<polyline", "<circle",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trajectory SVG missing %q", want)
		}
	}
	// Empty series get no panel; a flat or single-point series must not
	// divide by a zero range.
	if strings.Contains(out, "never measured") {
		t.Error("unmeasured series rendered a panel")
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("trajectory SVG holds non-finite coordinates:\n%s", out)
	}
	// Degenerate inputs stay valid documents.
	if got := SVGTrajectory("t", nil, 200); !strings.Contains(got, "<svg") {
		t.Error("empty trajectory not an SVG")
	}
	flat := []TrajectorySeries{{Name: "flat", Points: []TrajectoryPoint{{PR: 1, Value: 2}, {PR: 2, Value: 2}}}}
	if got := SVGTrajectory("t", flat, 200); strings.Contains(got, "NaN") {
		t.Error("flat series produced NaN coordinates")
	}
}
