package cpu

import (
	"fmt"

	"mosaic/internal/ckpt"
	"mosaic/internal/mem"
	"mosaic/internal/pmu"
	"mosaic/internal/trace"
)

// Space returns the address space the machine replays against.
func (m *Machine) Space() *mem.AddressSpace { return m.space }

// Snapshot captures the machine's complete model state — component contents
// and counters plus the walker-availability clocks — as a checkpoint with a
// zero run clock. It is the uniform checkpoint contract's entry point for
// state taken between runs; mid-replay checkpoints (which also carry the
// run clock and sampling accumulators) are produced by RunBatchSegment.
func (m *Machine) Snapshot() *ckpt.MachineState {
	var st runState
	return m.snapshotState(&st, nil)
}

// Restore overwrites the machine's model state with a snapshot taken from a
// machine of identical platform. The translator memo — a pure performance
// cache, invisible to counters — is cleared rather than restored.
func (m *Machine) Restore(s *ckpt.MachineState) error {
	var st runState
	return m.restoreState(s, &st, nil)
}

// snapshotState captures machine + in-flight replay state. The clock and
// accumulator fields are cumulative, so a segment seeded from the snapshot
// harvests whole-prefix counters at its end.
//
//mosvet:ckptexempt Metrics Metrics is the partial simulator's stat block; full machines report through the clock and Sum fields instead
func (m *Machine) snapshotState(st *runState, sums *sampleSums) *ckpt.MachineState {
	s := &ckpt.MachineState{
		HasClock:     true,
		Now:          st.now,
		MissRate:     st.missRate,
		WalkCycles:   st.walkCycles,
		Instructions: st.instructions,
		Breakdown:    [5]float64{st.bd.Base, st.bd.TLBHit, st.bd.WalkStall, st.bd.WalkQueue, st.bd.DataStall},
		WalkerFree:   append([]float64(nil), m.walkerFree...),
		TLB:          m.tlb.Snapshot(),
		Hier:         m.hier.Snapshot(),
		Walk:         m.walk.Snapshot(),
	}
	if sums != nil {
		s.SumTLB = sums.tlb
		s.SumHier = sums.hier
	}
	return s
}

// restoreState seeds machine + in-flight replay state from a snapshot.
//
//mosvet:ckptexempt Metrics Metrics is the partial simulator's stat block; full-machine snapshots never carry it and restoreState rejects partial snapshots outright
func (m *Machine) restoreState(s *ckpt.MachineState, st *runState, sums *sampleSums) error {
	if !s.HasClock {
		return fmt.Errorf("cpu: snapshot has no clock state (partial-simulator checkpoint?) — refusing to seed the replay clock from zeros")
	}
	if len(s.WalkerFree) != len(m.walkerFree) {
		return fmt.Errorf("cpu: restore of %d-walker state into %d walkers (platform mismatch?)",
			len(s.WalkerFree), len(m.walkerFree))
	}
	if err := m.tlb.Restore(s.TLB); err != nil {
		return err
	}
	if err := m.hier.Restore(s.Hier); err != nil {
		return err
	}
	if err := m.walk.Restore(s.Walk); err != nil {
		return err
	}
	m.trans.Reset(m.space.PageTable())
	copy(m.walkerFree, s.WalkerFree)
	st.now = s.Now
	st.missRate = s.MissRate
	st.walkCycles = s.WalkCycles
	st.instructions = s.Instructions
	st.bd = Breakdown{
		Base:      s.Breakdown[0],
		TLBHit:    s.Breakdown[1],
		WalkStall: s.Breakdown[2],
		WalkQueue: s.Breakdown[3],
		DataStall: s.Breakdown[4],
	}
	if sums != nil {
		sums.tlb = s.SumTLB
		sums.hier = s.SumHier
	}
	return nil
}

// RunBatchSegment is RunBatch over one contiguous slice of a replay
// schedule: it replays the given windows (a trace.Chunk's share, or several
// concatenated chunks) through every machine, optionally seeding each
// machine's state from a checkpoint first and snapshotting all machines at
// the requested save positions along the way.
//
// Because checkpoints carry cumulative clock and accumulator state, a
// seeded segment's harvest equals the whole-prefix-plus-segment counters:
// parallel windowed replay runs one segment per boundary and takes the
// *last* segment's harvest as the final answer, bit-identical to a
// sequential replay by construction.
//
// seeds is nil (cold start from reset machines) or one checkpoint per
// machine; sampled selects window-delta stat accounting (pass the plan's
// Enabled() — or true to force per-segment deltas for warmup-reconstructed
// chunks); wantPro asks for the prologue stratum after the first
// measurement window (only meaningful for sampled segment 0). savePos
// lists trace positions, ascending, at which to snapshot every machine;
// each must lie on or inside the windows. The returned saved slice is
// indexed [savePos][machine].
//
// StateCounters harvests a mid-replay checkpoint's cumulative
// sampled-accounting state into the PMU view — the same mapping as
// sampledCounters, but from a snapshot instead of a live machine. Phased
// replay snapshots every machine at each phase boundary and attributes the
// field-wise difference of consecutive snapshots to the phase between
// them; because every field is cumulative, the per-phase deltas telescope
// to the whole-trace counters exactly. Requires a snapshot taken under
// sampled accounting (RunBatchSegment with sampled=true), where the
// SumTLB/SumHier accumulators are populated.
func StateCounters(s *ckpt.MachineState) pmu.Counters {
	return pmu.Counters{
		R:                uint64(s.Now),
		H:                s.SumTLB.L2Hits,
		M:                s.SumTLB.Misses,
		C:                s.WalkCycles,
		Instructions:     s.Instructions,
		L1DLoadsProgram:  s.SumHier.L1Loads.Program,
		L1DLoadsWalker:   s.SumHier.L1Loads.Walker,
		L2LoadsProgram:   s.SumHier.L2Loads.Program,
		L2LoadsWalker:    s.SumHier.L2Loads.Walker,
		L3LoadsProgram:   s.SumHier.L3Loads.Program,
		L3LoadsWalker:    s.SumHier.L3Loads.Walker,
		DRAMLoadsProgram: s.SumHier.DRAMLoads.Program,
		DRAMLoadsWalker:  s.SumHier.DRAMLoads.Walker,
		TLBLookups:       s.SumTLB.Lookups,
	}
}

// seedSegment restores every machine (and its in-flight replay state) from
// its checkpoint before a segment replays.
func seedSegment(ms []*Machine, seeds []*ckpt.MachineState, states []runState, sums []sampleSums) error {
	if len(seeds) != len(ms) {
		return fmt.Errorf("cpu: %d seeds for %d machines", len(seeds), len(ms))
	}
	for k, m := range ms {
		var sm *sampleSums
		if sums != nil {
			sm = &sums[k]
		}
		if err := m.restoreState(seeds[k], &states[k], sm); err != nil {
			return err
		}
	}
	return nil
}

//mosvet:hotpath
func RunBatchSegment(ms []*Machine, tr *trace.Trace, windows []trace.Window, seeds []*ckpt.MachineState, sampled, wantPro bool, savePos []int) (ctrs, prologue []pmu.Counters, saved [][]*ckpt.MachineState, measured uint64, err error) {
	cols := tr.Columns()
	states := make([]runState, len(ms))
	var sums []sampleSums
	var bases []statSnap
	var pro []pmu.Counters
	if sampled {
		sums = make([]sampleSums, len(ms))
		bases = make([]statSnap, len(ms))
	}
	if seeds != nil {
		if err := seedSegment(ms, seeds, states, sums); err != nil {
			return nil, nil, nil, 0, err
		}
	}
	if len(savePos) > 0 {
		saved = make([][]*ckpt.MachineState, len(savePos))
	}
	snapAll := func() []*ckpt.MachineState {
		snaps := make([]*ckpt.MachineState, len(ms))
		for k, m := range ms {
			var sm *sampleSums
			if sampled {
				sm = &sums[k]
			}
			snaps[k] = m.snapshotState(&states[k], sm)
		}
		return snaps
	}
	si := 0
	for _, w := range windows {
		if w.Measure {
			measured += uint64(w.Len())
		}
		lo := w.Lo
		for lo < w.Hi {
			for si < len(savePos) && savePos[si] == lo {
				saved[si] = snapAll()
				si++
			}
			hi := min(lo+FuseBlock, w.Hi)
			if si < len(savePos) && savePos[si] > lo && savePos[si] < hi {
				// Split the block so the next save position lands on a
				// block boundary.
				hi = savePos[si]
			}
			for k, m := range ms {
				if !w.Measure {
					if err := m.warmRange(tr.Name, &states[k], cols, lo, hi); err != nil {
						return nil, nil, nil, 0, err
					}
					continue
				}
				if sampled && lo == w.Lo {
					bases[k] = m.snapStats()
				}
				if err := m.replayRange(tr.Name, &states[k], cols, lo, hi); err != nil {
					return nil, nil, nil, 0, err
				}
				if sampled && hi == w.Hi {
					sums[k].accumulate(bases[k], m.snapStats())
				}
			}
			lo = hi
		}
		// A save position at this window's Hi that is not a later window's
		// Lo (a phase boundary ending in a skip stretch, say) would never
		// match a block start — snapshot it here, after the window's sums
		// have accumulated. State cannot change between a window's Hi and
		// an abutting next window's Lo, so matching here is bit-identical
		// for positions the old lo-match would also have found.
		for si < len(savePos) && savePos[si] == w.Hi {
			saved[si] = snapAll()
			si++
		}
		if sampled && wantPro && w.Measure && pro == nil {
			pro = make([]pmu.Counters, len(ms))
			for k, m := range ms {
				pro[k] = m.sampledCounters(&states[k], &sums[k])
			}
		}
	}
	if si < len(savePos) {
		// A save position at the very end of the segment (or beyond the
		// windows) — snapshot final state for any remaining positions that
		// equal the segment end; leave genuinely out-of-range ones nil.
		end := 0
		if len(windows) > 0 {
			end = windows[len(windows)-1].Hi
		}
		for ; si < len(savePos) && savePos[si] == end; si++ {
			saved[si] = snapAll()
		}
	}
	out := make([]pmu.Counters, len(ms))
	for k, m := range ms {
		if sampled {
			out[k] = m.sampledCounters(&states[k], &sums[k])
		} else {
			out[k] = m.counters(&states[k])
		}
	}
	return out, pro, saved, measured, nil
}
