// Package cpu is the timing model — the modelled "real machine" whose
// runtime R the paper's models try to predict. It replays a memory access
// trace through the virtual-memory subsystem (TLB → page walker → caches)
// and produces the performance counters of the paper's Table 2.
//
// The model deliberately captures the three mechanisms that make runtime a
// non-linear function of walk cycles, which is the paper's central
// empirical finding:
//
//  1. Latency hiding. A dependent (pointer-chase) access exposes most of
//     its walk latency; an independent access exposes little, because the
//     out-of-order engine overlaps it with other work. Hiding grows with
//     the instruction gap since the previous miss, so as miss frequency
//     approaches zero the CPU becomes *increasingly* effective at
//     alleviating misses — the bend of Figure 3.
//  2. Walker throughput. Page walks occupy one of a small number of
//     hardware walkers; when misses arrive faster than walks retire, the
//     program stalls on walker availability — the super-linear regime.
//     The walk-cycle counter C sums busy cycles per walker, so two
//     concurrently busy walkers count twice and C can exceed R (the
//     Broadwell gups effect of §VI-D).
//  3. Cache pollution. Walker loads fill the same caches as program data,
//     evicting warm lines; heavy walking slows the program by more than
//     the walk cycles themselves, producing model slopes above 1
//     (Figure 9, Table 7).
package cpu

import (
	"fmt"

	"mosaic/internal/arch"
	"mosaic/internal/cache"
	"mosaic/internal/mem"
	"mosaic/internal/pmu"
	"mosaic/internal/tlb"
	"mosaic/internal/trace"
	"mosaic/internal/walker"
)

// Machine is one modelled core attached to an address space.
type Machine struct {
	plat  arch.Platform
	space *mem.AddressSpace
	// trans memoizes VA→(phys, pagesize) above the page-table radix walk;
	// sound because translation state is immutable during replay.
	trans *mem.Translator
	tlb   *tlb.TLB
	hier  *cache.Hierarchy
	walk  *walker.Walker
	// walkerFree holds, per hardware walker, the cycle at which it next
	// becomes available.
	walkerFree []float64
}

// New builds a machine of the given platform over the given address space.
func New(plat arch.Platform, space *mem.AddressSpace) (*Machine, error) {
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(plat)
	if err != nil {
		return nil, err
	}
	trans := mem.NewTranslator(space.PageTable())
	return &Machine{
		plat:       plat,
		space:      space,
		trans:      trans,
		tlb:        tlb.New(plat.TLB),
		hier:       hier,
		walk:       walker.New(trans, hier, plat.PWC),
		walkerFree: make([]float64, plat.PageWalkers),
	}, nil
}

// Platform returns the machine's platform definition.
func (m *Machine) Platform() arch.Platform { return m.plat }

// Reset re-targets the machine at a platform and address space, restoring
// just-built state so a Reset machine replays any trace bit-identically to
// a freshly constructed one. When the platform is unchanged the allocated
// TLB, cache, and walker structures are retained and merely cleared, which
// is what lets the simulation engine pool (internal/sim) avoid rebuilding
// the set-associative arrays for each of a sweep's thousands of replays.
func (m *Machine) Reset(plat arch.Platform, space *mem.AddressSpace) error {
	if plat != m.plat {
		rebuilt, err := New(plat, space)
		if err != nil {
			return err
		}
		*m = *rebuilt
		return nil
	}
	m.space = space
	m.trans.Reset(space.PageTable())
	m.tlb.Reset()
	m.hier.Reset()
	m.walk.Reset(m.trans)
	for i := range m.walkerFree {
		m.walkerFree[i] = 0
	}
	return nil
}

// TLB exposes the TLB (for profiling tools and tests).
func (m *Machine) TLB() *tlb.TLB { return m.tlb }

// Hierarchy exposes the cache hierarchy (for tests).
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Walker exposes the page-table walker (for tests).
func (m *Machine) Walker() *walker.Walker { return m.walk }

// Breakdown decomposes the runtime into its model components — a
// diagnostic view no real PMU offers, useful for understanding where a
// layout's cycles go. The components sum to R (up to rounding).
type Breakdown struct {
	// Base is the instruction-stream cost (instructions × BaseCPI).
	Base float64
	// TLBHit is the visible cost of L2 TLB hits (the H events).
	TLBHit float64
	// WalkStall is the visible (unhidden) part of page-walk latency.
	WalkStall float64
	// WalkQueue is time spent waiting for a free hardware walker.
	WalkQueue float64
	// DataStall is the visible beyond-L1 data access latency.
	DataStall float64
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.Base + b.TLBHit + b.WalkStall + b.WalkQueue + b.DataStall
}

// runState is one replay's in-flight model state, kept separate from the
// Machine so the fused batch kernel (RunBatch) can advance many machines
// through the same trace block by block.
type runState struct {
	now          float64 // runtime clock, cycles
	walkCycles   uint64  // the C counter: busy cycles summed per walker
	instructions uint64
	// missRate is an exponentially weighted moving average of L2 TLB
	// misses per instruction. The out-of-order engine's ability to
	// hide a dependent miss improves as the recent miss frequency
	// drops — the paper's observation that CPUs become increasingly
	// effective at alleviating TLB misses as their frequency
	// approaches zero (§I, Figure 3).
	missRate float64
	bd       Breakdown
}

const rateTau = 30000.0 // EWMA horizon, instructions

// invRateTau trades the replay loop's per-access divide for a multiply.
const invRateTau = 1 / rateTau

// Run replays the trace and returns the resulting performance counters.
// It errors if any access touches unmapped memory.
func (m *Machine) Run(tr *trace.Trace) (pmu.Counters, error) {
	ctr, _, err := m.runTrace(tr)
	return ctr, err
}

// RunDetailed is Run plus the runtime breakdown.
func (m *Machine) RunDetailed(tr *trace.Trace) (pmu.Counters, Breakdown, error) {
	return m.runTrace(tr)
}

func (m *Machine) runTrace(tr *trace.Trace) (pmu.Counters, Breakdown, error) {
	var st runState
	cols := tr.Columns()
	if err := m.replayRange(tr.Name, &st, cols, 0, cols.Len()); err != nil {
		return pmu.Counters{}, Breakdown{}, err
	}
	return m.counters(&st), st.bd, nil
}

// FaultError reports an access or page-walk fault during replay: the trace
// touched memory the layout never mapped. It is built with plain field
// stores on the (run-aborting) fault path and formats itself lazily,
// keeping fmt's variadic boxing out of the replay kernels.
type FaultError struct {
	Trace string
	Index int    // access index within the trace (access faults only)
	VA    uint64 // faulting virtual address
	Walk  bool   // true when the page walk faulted, false for the access itself
}

func (e *FaultError) Error() string {
	if e.Walk {
		return fmt.Sprintf("cpu: %s: walk faults at %#x", e.Trace, e.VA)
	}
	return fmt.Sprintf("cpu: %s: access %d faults at %#x", e.Trace, e.Index, e.VA)
}

// FuseBlock is the number of accesses a fused batch replays per machine
// before advancing to the next machine: large enough to amortize the
// per-machine switch, small enough that the block's trace columns (~50KB)
// stay cache-resident while every machine in the batch streams them.
const FuseBlock = 262144

// statSnap captures the cumulative component counters a replay cannot
// accumulate in its own loop (the walker's cache loads happen inside
// walker.Walk). A sampled replay snapshots them at every measurement-window
// boundary and attributes the difference to the window.
type statSnap struct {
	tlb  tlb.Counts
	hier cache.Stats
}

func (m *Machine) snapStats() statSnap {
	return statSnap{tlb: m.tlb.Counts(), hier: m.hier.Stats()}
}

// sampleSums accumulates the component-stat deltas of a sampled replay's
// measurement windows: warmup and skipped accesses contribute nothing here,
// which is exactly what makes windowed counters extrapolatable.
type sampleSums struct {
	tlb  tlb.Counts
	hier cache.Stats
}

func (s *sampleSums) accumulate(from, to statSnap) {
	s.tlb = s.tlb.Add(to.tlb.Sub(from.tlb))
	s.hier = s.hier.Add(to.hier.Sub(from.hier))
}

// RunSampled replays the trace under a systematic-sampling plan: accesses
// in measurement windows replay through the full timing model, warmup
// windows advance model state functionally (warmRange), and everything else
// is skipped. The returned counters cover only the measured windows —
// extrapolating them to whole-trace estimates is the caller's job (see
// internal/sim) — along with the first window's share of those counters
// (the prologue stratum) and the number of measured accesses.
//
// A disabled plan, or one whose windows cover the whole trace, produces
// counters bit-identical to Run.
func (m *Machine) RunSampled(tr *trace.Trace, plan trace.SamplePlan) (ctrs, prologue pmu.Counters, measured uint64, err error) {
	cs, pros, measured, err := RunBatch([]*Machine{m}, tr, plan)
	if err != nil {
		return pmu.Counters{}, pmu.Counters{}, 0, err
	}
	if pros != nil {
		prologue = pros[0]
	}
	return cs[0], prologue, measured, nil
}

// RunBatch replays one trace through several machines — one per layout of
// a sweep's protocol — in a single fused pass over the trace: each block of
// accesses is decoded once and replayed through every machine before the
// next block is touched, so the trace's memory bandwidth and decode cost
// are amortized across the whole batch. All machines must share a platform
// family but may (and normally do) sit on different address spaces.
//
// The plan selects the fidelity schedule: a disabled plan replays every
// access (exact mode); an enabled one replays only its windows, so every
// machine of the batch measures the same accesses and fusion composes with
// sampling. The returned measured count is the number of accesses replayed
// inside measurement windows (the trace length in exact mode), and prologue
// holds each machine's counters as of the end of the first measurement
// window — the exactly-measured prologue stratum the caller's stratified
// extrapolation subtracts out (nil in exact mode).
//
// Counters are bit-identical to running each machine over the whole trace
// alone under the same plan: machines share no mutable state, and fusion
// only re-orders which machine touches which trace block first.
//
//mosvet:hotpath
func RunBatch(ms []*Machine, tr *trace.Trace, plan trace.SamplePlan) (ctrs, prologue []pmu.Counters, measured uint64, err error) {
	cols := tr.Columns()
	states := make([]runState, len(ms))
	sampled := plan.Enabled()
	var sums []sampleSums
	var bases []statSnap
	var pro []pmu.Counters
	if sampled {
		sums = make([]sampleSums, len(ms))
		bases = make([]statSnap, len(ms))
	}
	for _, w := range cols.Windows(plan) {
		if w.Measure {
			measured += uint64(w.Len())
		}
		for lo := w.Lo; lo < w.Hi; lo += FuseBlock {
			hi := min(lo+FuseBlock, w.Hi)
			for k, m := range ms {
				if !w.Measure {
					if err := m.warmRange(tr.Name, &states[k], cols, lo, hi); err != nil {
						return nil, nil, 0, err
					}
					continue
				}
				if sampled && lo == w.Lo {
					bases[k] = m.snapStats()
				}
				if err := m.replayRange(tr.Name, &states[k], cols, lo, hi); err != nil {
					return nil, nil, 0, err
				}
				if sampled && hi == w.Hi {
					sums[k].accumulate(bases[k], m.snapStats())
				}
			}
		}
		if sampled && w.Measure && pro == nil {
			// First measurement window just finished: snapshot the prologue
			// stratum before any periodic window contributes.
			pro = make([]pmu.Counters, len(ms))
			for k, m := range ms {
				pro[k] = m.sampledCounters(&states[k], &sums[k])
			}
		}
	}
	out := make([]pmu.Counters, len(ms))
	for k, m := range ms {
		if sampled {
			out[k] = m.sampledCounters(&states[k], &sums[k])
		} else {
			out[k] = m.counters(&states[k])
		}
	}
	return out, pro, measured, nil
}

// replayRange advances one replay's state through accesses [lo, hi).
//
//mosvet:hotpath
func (m *Machine) replayRange(name string, st *runState, cols *trace.Columns, lo, hi int) error {
	ooo := m.plat.OOO
	l1Lat := float64(m.plat.L1D.LatencyCycle)
	l2tlbLat := float64(m.plat.TLB.L2LatencyCycles)
	baseCPI := m.plat.BaseCPI

	for i := lo; i < hi; i++ {
		va := cols.VA(i)
		gap := cols.Gap(i)
		dep := cols.Dep(i)
		work := float64(gap) + 1
		st.instructions += uint64(gap) + 1
		st.now += work * baseCPI
		st.bd.Base += work * baseCPI
		if decay := 1 - work*invRateTau; decay > 0 {
			st.missRate *= decay
		} else {
			st.missRate = 0
		}

		phys, ps, ok := m.trans.Translate(va)
		if !ok {
			return &FaultError{Trace: name, Index: i, VA: uint64(va)}
		}

		switch m.tlb.Lookup(va, ps) {
		case tlb.L1Hit:
			// Translation is free.
		case tlb.L2Hit:
			hide := ooo.L2TLBHitHide
			if !dep {
				hide = ooo.IndepWalkHide
			}
			st.now += l2tlbLat * (1 - hide)
			st.bd.TLBHit += l2tlbLat * (1 - hide)
		case tlb.Miss:
			// Claim the earliest-available hardware walker.
			idx := 0
			for j := 1; j < len(m.walkerFree); j++ {
				if m.walkerFree[j] < m.walkerFree[idx] {
					idx = j
				}
			}
			start := st.now
			if m.walkerFree[idx] > start {
				start = m.walkerFree[idx]
			}
			res := m.walk.Walk(va)
			if res.Fault {
				return &FaultError{Trace: name, Index: i, VA: uint64(va), Walk: true}
			}
			lat := float64(res.Latency)
			m.walkerFree[idx] = start + lat
			st.walkCycles += uint64(res.Latency)

			queueWait := start - st.now
			var hide float64
			if dep {
				// Dependent chains expose the walk; hiding improves as the
				// recent miss frequency drops (hide = HideMax at zero
				// frequency, vanishing when every access misses).
				hide = ooo.HideMax / (1 + ooo.HideGap*st.missRate)
			} else {
				// Independent misses overlap well, bounded by walker
				// throughput (queueWait) below; isolated misses vanish
				// almost entirely into the out-of-order window.
				hide = ooo.IndepWalkHide +
					(0.97-ooo.IndepWalkHide)/(1+ooo.HideGap*st.missRate)
			}
			st.now += queueWait + lat*(1-hide)
			st.bd.WalkQueue += queueWait
			st.bd.WalkStall += lat * (1 - hide)
			st.missRate += 1 / rateTau
			m.tlb.Insert(va, ps)
		}

		// The data reference itself. Stores are charged like loads: a
		// store that misses the L1 issues a read-for-ownership with the
		// same latency exposure, so the store buffer does not make missing
		// stores free.
		lvl, dlat := m.hier.Access(phys, false)
		if lvl != cache.LevelL1 {
			hide := ooo.DataHide
			if !dep {
				hide = ooo.IndepDataHide
			}
			st.now += (float64(dlat) - l1Lat) * (1 - hide)
			st.bd.DataStall += (float64(dlat) - l1Lat) * (1 - hide)
		}
	}
	return nil
}

// warmRange is the functional-warmup path of a sampled replay: it advances
// the model state — translator memo, TLB contents, PWCs, cache hierarchy —
// through accesses [lo, hi) with state transitions identical to
// replayRange's, but skips all cycle accounting: no clock, no walker-queue
// bookkeeping, no runtime counters. The miss-rate EWMA is still maintained
// (it is model state) so the latency-hiding model enters each measurement
// window with a warm estimate of the recent miss frequency.
//
//mosvet:hotpath
func (m *Machine) warmRange(name string, st *runState, cols *trace.Columns, lo, hi int) error {
	for i := lo; i < hi; i++ {
		va := cols.VA(i)
		work := float64(cols.Gap(i)) + 1
		if decay := 1 - work*invRateTau; decay > 0 {
			st.missRate *= decay
		} else {
			st.missRate = 0
		}
		phys, ps, ok := m.trans.Translate(va)
		if !ok {
			return &FaultError{Trace: name, Index: i, VA: uint64(va)}
		}
		if m.tlb.Lookup(va, ps) == tlb.Miss {
			res := m.walk.Walk(va)
			if res.Fault {
				return &FaultError{Trace: name, Index: i, VA: uint64(va), Walk: true}
			}
			st.missRate += 1 / rateTau
			m.tlb.Insert(va, ps)
		}
		m.hier.Access(phys, false)
	}
	return nil
}

// counters harvests the machine's component statistics into the PMU view.
func (m *Machine) counters(st *runState) pmu.Counters {
	ts := m.tlb.Stats()
	cs := m.hier.Stats()
	return pmu.Counters{
		R:                uint64(st.now),
		H:                ts.L2Hits,
		M:                ts.Misses,
		C:                st.walkCycles,
		Instructions:     st.instructions,
		L1DLoadsProgram:  cs.L1Loads.Program,
		L1DLoadsWalker:   cs.L1Loads.Walker,
		L2LoadsProgram:   cs.L2Loads.Program,
		L2LoadsWalker:    cs.L2Loads.Walker,
		L3LoadsProgram:   cs.L3Loads.Program,
		L3LoadsWalker:    cs.L3Loads.Walker,
		DRAMLoadsProgram: cs.DRAMLoads.Program,
		DRAMLoadsWalker:  cs.DRAMLoads.Walker,
		TLBLookups:       ts.Lookups,
	}
}

// sampledCounters is counters for a sampled replay: component statistics
// come from the accumulated measurement-window deltas instead of the live
// (warmup-contaminated) component counters. The run-state counters need no
// differencing — they only ever advance inside measurement windows.
func (m *Machine) sampledCounters(st *runState, sums *sampleSums) pmu.Counters {
	return pmu.Counters{
		R:                uint64(st.now),
		H:                sums.tlb.L2Hits,
		M:                sums.tlb.Misses,
		C:                st.walkCycles,
		Instructions:     st.instructions,
		L1DLoadsProgram:  sums.hier.L1Loads.Program,
		L1DLoadsWalker:   sums.hier.L1Loads.Walker,
		L2LoadsProgram:   sums.hier.L2Loads.Program,
		L2LoadsWalker:    sums.hier.L2Loads.Walker,
		L3LoadsProgram:   sums.hier.L3Loads.Program,
		L3LoadsWalker:    sums.hier.L3Loads.Walker,
		DRAMLoadsProgram: sums.hier.DRAMLoads.Program,
		DRAMLoadsWalker:  sums.hier.DRAMLoads.Walker,
		TLBLookups:       sums.tlb.Lookups,
	}
}
