package cpu

import (
	"errors"
	"math/rand"
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/mem"
	"mosaic/internal/trace"
)

// buildSpace maps size bytes at base with the given page size.
func buildSpace(t *testing.T, base mem.Addr, size uint64, ps mem.PageSize) *mem.AddressSpace {
	t.Helper()
	as, err := mem.NewAddressSpace(1 << 38)
	if err != nil {
		t.Fatal(err)
	}
	size = uint64(mem.AlignUp(mem.Addr(size), ps))
	if err := as.Map(mem.NewRegion(base, size), ps); err != nil {
		t.Fatal(err)
	}
	return as
}

// randomTrace touches `accesses` random 4KB-aligned addresses in
// [base, base+size) with the given gap and dependence.
func randomTrace(seed int64, base mem.Addr, size uint64, accesses int, gap uint64, dep bool) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder("random", accesses)
	for i := 0; i < accesses; i++ {
		b.Compute(gap)
		va := base + mem.Addr(rng.Uint64()%size)
		if dep {
			b.LoadDep(va)
		} else {
			b.Load(va)
		}
	}
	return b.Trace()
}

const testRegion = mem.Addr(0x2000_0000_0000)

func TestHugepagesReduceRuntime(t *testing.T) {
	size := uint64(64 << 20)
	tr := randomTrace(1, testRegion, size, 30000, 20, true)

	run := func(ps mem.PageSize) (r, m, c uint64) {
		as := buildSpace(t, testRegion, size, ps)
		machine, err := New(arch.SandyBridge, as)
		if err != nil {
			t.Fatal(err)
		}
		ctr, err := machine.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return ctr.R, ctr.M, ctr.C
	}

	r4k, m4k, c4k := run(mem.Page4K)
	r2m, m2m, c2m := run(mem.Page2M)
	r1g, m1g, _ := run(mem.Page1G)

	if m4k == 0 || c4k == 0 {
		t.Fatal("4KB run should have TLB misses and walk cycles")
	}
	if m2m >= m4k/10 {
		t.Errorf("2MB misses %d not far below 4KB misses %d", m2m, m4k)
	}
	if m1g > m2m {
		t.Errorf("1GB misses %d exceed 2MB misses %d", m1g, m2m)
	}
	if r2m >= r4k {
		t.Errorf("2MB runtime %d not below 4KB runtime %d", r2m, r4k)
	}
	if r1g > r2m+r2m/50 {
		t.Errorf("1GB runtime %d well above 2MB runtime %d", r1g, r2m)
	}
	// TLB sensitivity in the paper's sense: ≥5% improvement with 1GB pages.
	if float64(r4k-r1g)/float64(r4k) < 0.05 {
		t.Errorf("workload not TLB-sensitive: 4KB=%d 1GB=%d", r4k, r1g)
	}
	if c2m >= c4k {
		t.Errorf("2MB walk cycles %d not below 4KB %d", c2m, c4k)
	}
}

func TestCountersConsistent(t *testing.T) {
	size := uint64(16 << 20)
	tr := randomTrace(2, testRegion, size, 10000, 10, false)
	as := buildSpace(t, testRegion, size, mem.Page4K)
	machine, _ := New(arch.Haswell, as)
	ctr, err := machine.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ctr.TLBLookups != 10000 {
		t.Errorf("lookups = %d, want 10000", ctr.TLBLookups)
	}
	if ctr.H+ctr.M > ctr.TLBLookups {
		t.Errorf("H+M = %d exceeds lookups", ctr.H+ctr.M)
	}
	if ctr.M == 0 {
		t.Error("expected TLB misses")
	}
	if ctr.C == 0 {
		t.Error("expected walk cycles")
	}
	if ctr.Instructions != tr.Instructions() {
		t.Errorf("instructions = %d, want %d", ctr.Instructions, tr.Instructions())
	}
	if ctr.R == 0 {
		t.Error("zero runtime")
	}
	// Program loads equal the trace length; walker loads strictly positive.
	if ctr.L1DLoadsProgram != 10000 {
		t.Errorf("program L1d loads = %d", ctr.L1DLoadsProgram)
	}
	if ctr.L1DLoadsWalker == 0 {
		t.Error("no walker loads recorded")
	}
}

// Two-walker Broadwell with dense independent misses: walk cycles exceed
// runtime — the mechanism that makes Basu's β negative (§VI-D).
func TestWalkCyclesCanExceedRuntimeOnBroadwell(t *testing.T) {
	size := uint64(256 << 20)
	tr := randomTrace(3, testRegion, size, 40000, 2, false)

	as := buildSpace(t, testRegion, size, mem.Page4K)
	bdw, _ := New(arch.Broadwell, as)
	ctr, err := bdw.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ctr.C <= ctr.R {
		t.Errorf("Broadwell gups-like: C=%d should exceed R=%d", ctr.C, ctr.R)
	}

	// One-walker SandyBridge cannot exceed R on the same pattern.
	as2 := buildSpace(t, testRegion, size, mem.Page4K)
	snb, _ := New(arch.SandyBridge, as2)
	ctr2, err := snb.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ctr2.C > ctr2.R {
		t.Errorf("SandyBridge: C=%d must not exceed R=%d with one walker", ctr2.C, ctr2.R)
	}
}

// Dependent misses hurt more than independent ones: latency hiding works.
func TestDependenceExposesLatency(t *testing.T) {
	size := uint64(64 << 20)
	dep := randomTrace(4, testRegion, size, 20000, 20, true)
	ind := randomTrace(4, testRegion, size, 20000, 20, false)

	run := func(tr *trace.Trace) uint64 {
		as := buildSpace(t, testRegion, size, mem.Page4K)
		m, _ := New(arch.Haswell, as)
		ctr, err := m.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return ctr.R
	}
	rDep, rInd := run(dep), run(ind)
	if rDep <= rInd {
		t.Errorf("dependent runtime %d should exceed independent %d", rDep, rInd)
	}
}

// Sparse misses are cheaper per miss than dense ones: the hiding mechanism
// behind Figure 3's bend.
func TestPerMissCostDropsWhenSparse(t *testing.T) {
	size := uint64(64 << 20)
	run := func(gap uint64) (perMiss float64) {
		tr := randomTrace(5, testRegion, size, 10000, gap, true)
		as := buildSpace(t, testRegion, size, mem.Page4K)
		m, _ := New(arch.SandyBridge, as)
		ctr, err := m.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		base := float64(ctr.Instructions) * arch.SandyBridge.BaseCPI
		if ctr.M == 0 {
			t.Fatal("no misses")
		}
		return (float64(ctr.R) - base) / float64(ctr.M)
	}
	dense := run(5)
	sparse := run(2000)
	if sparse >= dense {
		t.Errorf("per-miss overhead sparse=%.1f should be below dense=%.1f", sparse, dense)
	}
}

func TestUnmappedAccessErrors(t *testing.T) {
	as := buildSpace(t, testRegion, 1<<20, mem.Page4K)
	m, _ := New(arch.SandyBridge, as)
	b := trace.NewBuilder("bad", 1)
	b.Load(0xdeadbeef000)
	if _, err := m.Run(b.Trace()); err == nil {
		t.Error("access to unmapped memory should error")
	}
}

// TestFaultErrorTyped pins the fault path's contract after the hot-path
// hygiene pass replaced fmt.Errorf in the replay kernels with lazily
// formatted typed errors: callers get a *FaultError with the faulting
// position, and the rendered message keeps its historical shape.
func TestFaultErrorTyped(t *testing.T) {
	as := buildSpace(t, testRegion, 1<<20, mem.Page4K)
	m, _ := New(arch.SandyBridge, as)
	b := trace.NewBuilder("bad", 1)
	b.Load(0xdeadbeef000)
	_, err := m.Run(b.Trace())
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("fault error type = %T, want *FaultError", err)
	}
	if fe.Trace != "bad" || fe.Index != 0 || fe.VA != 0xdeadbeef000 || fe.Walk {
		t.Errorf("fault fields = %+v", fe)
	}
	if want := "cpu: bad: access 0 faults at 0xdeadbeef000"; err.Error() != want {
		t.Errorf("fault message = %q, want %q", err.Error(), want)
	}
}

func TestDeterminism(t *testing.T) {
	size := uint64(32 << 20)
	tr := randomTrace(6, testRegion, size, 5000, 15, false)
	run := func() uint64 {
		as := buildSpace(t, testRegion, size, mem.Page4K)
		m, _ := New(arch.Broadwell, as)
		ctr, err := m.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return ctr.R
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic runtime: %d vs %d", a, b)
	}
}

func TestInvalidPlatformRejected(t *testing.T) {
	as := buildSpace(t, testRegion, 1<<20, mem.Page4K)
	bad := arch.SandyBridge
	bad.PageWalkers = 0
	if _, err := New(bad, as); err == nil {
		t.Error("invalid platform should be rejected")
	}
}

// Mixed layouts must land runtime between the all-4KB and all-2MB extremes
// for a uniformly random access pattern.
func TestMixedLayoutInterpolates(t *testing.T) {
	size := uint64(64 << 20)
	tr := randomTrace(7, testRegion, size, 30000, 20, true)
	run := func(build func(as *mem.AddressSpace) error) uint64 {
		as, err := mem.NewAddressSpace(1 << 38)
		if err != nil {
			t.Fatal(err)
		}
		if err := build(as); err != nil {
			t.Fatal(err)
		}
		m, _ := New(arch.SandyBridge, as)
		ctr, err := m.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return ctr.R
	}
	r4k := run(func(as *mem.AddressSpace) error {
		return as.Map(mem.NewRegion(testRegion, size), mem.Page4K)
	})
	r2m := run(func(as *mem.AddressSpace) error {
		return as.Map(mem.NewRegion(testRegion, size), mem.Page2M)
	})
	rMix := run(func(as *mem.AddressSpace) error {
		half := size / 2
		if err := as.Map(mem.NewRegion(testRegion, half), mem.Page2M); err != nil {
			return err
		}
		return as.Map(mem.NewRegion(testRegion+mem.Addr(half), half), mem.Page4K)
	})
	if !(r2m < rMix && rMix < r4k) {
		t.Errorf("expected r2m < rMix < r4k, got %d / %d / %d", r2m, rMix, r4k)
	}
}

// Hyper-threading halves the TLBs (§VI-A): the same trace on an HT logical
// core misses more and runs slower — why the paper's machines disable HT.
func TestHyperThreadingHurtsTLB(t *testing.T) {
	size := uint64(64 << 20)
	tr := randomTrace(8, testRegion, size, 20000, 20, true)
	run := func(plat arch.Platform) (uint64, uint64) {
		as := buildSpace(t, testRegion, size, mem.Page4K)
		m, err := New(plat, as)
		if err != nil {
			t.Fatal(err)
		}
		ctr, err := m.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return ctr.R, ctr.M
	}
	rOff, mOff := run(arch.Haswell.Scaled())
	rOn, mOn := run(arch.Haswell.Scaled().WithHyperThreading())
	if mOn <= mOff {
		t.Errorf("HT misses %d not above full-TLB misses %d", mOn, mOff)
	}
	if rOn <= rOff {
		t.Errorf("HT runtime %d not above full-TLB runtime %d", rOn, rOff)
	}
}

// The breakdown components must sum to the reported runtime.
func TestBreakdownSumsToRuntime(t *testing.T) {
	size := uint64(32 << 20)
	tr := randomTrace(9, testRegion, size, 15000, 15, true)
	as := buildSpace(t, testRegion, size, mem.Page4K)
	m, err := New(arch.Broadwell.Scaled(), as)
	if err != nil {
		t.Fatal(err)
	}
	ctr, bd, err := m.RunDetailed(tr)
	if err != nil {
		t.Fatal(err)
	}
	total := bd.Total()
	if d := total - float64(ctr.R); d > 1.5 || d < -1.5 {
		t.Errorf("breakdown total %.1f vs R %d", total, ctr.R)
	}
	if bd.Base <= 0 || bd.WalkStall <= 0 || bd.DataStall <= 0 {
		t.Errorf("missing components: %+v", bd)
	}
	// 4KB random access on a TLB-thrashing footprint: translation overhead
	// (stall + queue + hits) must be a visible share of the runtime.
	overhead := bd.WalkStall + bd.WalkQueue + bd.TLBHit
	if overhead/total < 0.05 {
		t.Errorf("translation overhead %.1f%% implausibly small", 100*overhead/total)
	}
}
