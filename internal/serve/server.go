// Package serve implements mosd, the prediction-serving daemon: a
// long-running HTTP/JSON API over the repo's measurement pipeline and
// model registry. /v1/predict evaluates fitted runtime models in
// microseconds — the paper's end state, where a trained Mosmodel replaces
// simulation — and /v1/jobs runs the sweeps that produce those models as
// bounded, observable background work.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"mosaic/internal/cluster"
	"mosaic/internal/serve/registry"
)

// ServerConfig wires a server.
type ServerConfig struct {
	// Registry serves predictions; required.
	Registry *registry.Registry
	// Executor runs jobs; nil disables /v1/jobs submission with 503.
	Executor JobExecutor
	// JobWorkers / JobQueueDepth size the job manager (defaults 2 / 16).
	JobWorkers    int
	JobQueueDepth int
	// PredictTimeout bounds one predict call (default 5s).
	PredictTimeout time.Duration
	// RetryAfter is the 429 hint before any job has completed; once the
	// saturation window has observations the hint is derived from backlog
	// × mean job wall time ÷ capacity instead (default 10s).
	RetryAfter time.Duration
	// Batch configures the predict batcher.
	Batch BatcherConfig
	// PoolIdle, when set, backs the sim-pool occupancy gauge (wire it to
	// SweepExecutor.PoolIdle).
	PoolIdle func() int
	// Cluster, when set, mounts the distributed sweep fabric: the
	// coordinator's /cluster/v1/* worker protocol, fleet gauges on
	// /metrics, and fleet capacity in the admission model. Wire the same
	// coordinator into SweepExecutor.Fabric so sweep jobs shard across
	// registered workers.
	Cluster *cluster.Coordinator
}

// Server is the daemon's HTTP surface plus its moving parts.
type Server struct {
	cfg      ServerConfig
	reg      *registry.Registry
	jobs     *JobManager
	batcher  *Batcher
	metrics  *Metrics
	mux      *http.ServeMux
	ready    atomic.Bool
	inflight atomic.Int64

	reqTotal   *CounterVec // label: route
	reqErrors  *CounterVec // label: code
	predictSec *Histogram
	httpSec    *Histogram
}

// NewServer builds the full stack: metrics, batcher, job manager, routes.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Registry == nil {
		panic("serve: ServerConfig.Registry is required")
	}
	if cfg.JobWorkers < 1 {
		cfg.JobWorkers = 2
	}
	if cfg.JobQueueDepth < 1 {
		cfg.JobQueueDepth = 16
	}
	if cfg.PredictTimeout <= 0 {
		cfg.PredictTimeout = 5 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 10 * time.Second
	}
	s := &Server{cfg: cfg, reg: cfg.Registry, metrics: NewMetrics()}

	s.reqTotal = s.metrics.NewCounterVec("mosd_http_requests_total", "HTTP requests by route.", "route")
	s.reqErrors = s.metrics.NewCounterVec("mosd_http_errors_total", "HTTP error responses by status code.", "code")
	s.predictSec = s.metrics.NewHistogram("mosd_predict_duration_seconds", "Latency of /v1/predict evaluations.", DefaultLatencyBuckets)
	s.httpSec = s.metrics.NewHistogram("mosd_http_request_duration_seconds", "Latency of all HTTP requests.", DefaultLatencyBuckets)
	s.metrics.NewGaugeFunc("mosd_http_inflight_requests", "Requests currently being served.", func() float64 {
		return float64(s.inflight.Load())
	})
	s.metrics.NewGaugeFunc("mosd_registry_pairs", "Trained (workload, platform) pairs loaded.", func() float64 {
		return float64(s.reg.Len())
	})
	if cfg.PoolIdle != nil {
		s.metrics.NewGaugeFunc("mosd_sim_pool_idle_engines", "Idle pooled simulation engines across live job pipelines.", func() float64 {
			return float64(cfg.PoolIdle())
		})
	}

	cfg.Batch.Metrics = s.metrics
	s.batcher = NewBatcher(cfg.Registry, cfg.Batch)

	if cfg.Executor != nil {
		jmCfg := JobManagerConfig{
			Workers:    cfg.JobWorkers,
			QueueDepth: cfg.JobQueueDepth,
			Run:        cfg.Executor,
			Metrics:    s.metrics,
		}
		if cfg.Cluster != nil {
			jmCfg.FleetCapacity = cfg.Cluster.Capacity
		}
		s.jobs = NewJobManager(jmCfg)
	}

	if cfg.Cluster != nil {
		co := cfg.Cluster
		s.metrics.NewGaugeFunc("mosd_cluster_workers", "Live registered sweep workers.", func() float64 {
			return float64(co.LiveWorkers())
		})
		s.metrics.NewGaugeFunc("mosd_cluster_shards_pending", "Shards queued for lease.", func() float64 {
			return float64(co.ShardsPending())
		})
		s.metrics.NewGaugeFunc("mosd_cluster_shards_leased", "Shards currently executing on workers.", func() float64 {
			return float64(co.ShardsLeased())
		})
		s.metrics.NewCounterFunc("mosd_cluster_shards_retried_total", "Shards requeued after lease expiry or worker failure.", func() float64 {
			return float64(co.ShardsRetried())
		})
		s.metrics.NewCounterFunc("mosd_cluster_merges_total", "Completed shard merges.", func() float64 {
			merges, _ := co.MergeStats()
			return float64(merges)
		})
		s.metrics.NewCounterFunc("mosd_cluster_merge_seconds_total", "Cumulative wall time spent merging shards.", func() float64 {
			_, secs := co.MergeStats()
			return secs
		})
	}

	s.mux = http.NewServeMux()
	s.routes()
	s.ready.Store(true)
	return s
}

// RunFunc adapts a SweepExecutor (or test stub) to the JobExecutor type.
// Kept as a helper so call sites read NewServer(cfg) cleanly.
func RunFunc(e *SweepExecutor) JobExecutor { return e.Run }

// Metrics exposes the registry for callers adding their own gauges.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Jobs exposes the manager (nil when no executor was configured).
func (s *Server) Jobs() *JobManager { return s.jobs }

// ServeHTTP implements http.Handler with the common middleware: inflight
// tracking, latency observation, panic recovery.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	start := time.Now()
	defer func() {
		s.inflight.Add(-1)
		s.httpSec.Observe(time.Since(start))
		if rec := recover(); rec != nil {
			// A handler bug must not kill the daemon; surface a 500.
			s.reqErrors.Inc("500")
			http.Error(w, `{"error":"internal error"}`, http.StatusInternalServerError)
			_ = debug.Stack() // keep the import; stack logging is the caller's hook
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the job manager (graceful stop) and the batcher.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	var err error
	if s.jobs != nil {
		err = s.jobs.Drain(ctx)
	}
	s.batcher.Close()
	return err
}

// routes registers every endpoint (Go 1.22 method+pattern routing).
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/predict", s.count("predict", s.handlePredict))
	s.mux.HandleFunc("GET /v1/models", s.count("models", s.handleModels))
	s.mux.HandleFunc("POST /v1/jobs", s.count("jobs.submit", s.handleJobSubmit))
	s.mux.HandleFunc("GET /v1/jobs", s.count("jobs.list", s.handleJobList))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.count("jobs.get", s.handleJobGet))
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.count("jobs.result", s.handleJobResult))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.count("jobs.cancel", s.handleJobCancel))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.Cluster != nil {
		s.mux.Handle("/cluster/v1/", s.cfg.Cluster.Handler())
	}
}

// count wraps a handler with its per-route request counter.
func (s *Server) count(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reqTotal.Inc(route)
		h(w, r)
	}
}

// writeJSON writes one JSON response.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// fail writes the error envelope and counts it.
func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.reqErrors.Inc(strconv.Itoa(code))
	s.writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// handlePredict evaluates one model through the batcher.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var body predictRequest
	if err := decodeStrict(r.Body, &body); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	req, err := body.validate()
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.PredictTimeout)
	defer cancel()
	start := time.Now()
	pred, err := s.batcher.Predict(ctx, req)
	s.predictSec.Observe(time.Since(start))
	switch {
	case err == nil:
		s.writeJSON(w, http.StatusOK, pred)
	case errors.Is(err, registry.ErrUnknownPair),
		errors.Is(err, registry.ErrUnknownModel),
		errors.Is(err, registry.ErrUnknownLayout):
		s.fail(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		s.fail(w, http.StatusGatewayTimeout, "prediction timed out")
	default:
		s.fail(w, http.StatusInternalServerError, "%v", err)
	}
}

// handleModels lists trained pairs and their models.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"pairs": s.reg.Pairs()})
}

// handleJobSubmit enqueues one sweep job; 429 + Retry-After on overflow.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		s.fail(w, http.StatusServiceUnavailable, "job execution is not configured")
		return
	}
	var body jobRequest
	if err := decodeStrict(r.Body, &body); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec, err := body.validate()
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, err := s.jobs.Submit(spec)
	if errors.Is(err, ErrQueueFull) {
		hint := s.jobs.RetryAfter(s.cfg.RetryAfter)
		w.Header().Set("Retry-After", strconv.Itoa(int(hint.Seconds())))
		s.fail(w, http.StatusTooManyRequests, "job queue is full; retry later")
		return
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusAccepted
	if job.State == JobDone { // cache hit
		code = http.StatusOK
	}
	s.writeJSON(w, code, job)
}

// handleJobList lists all jobs.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		s.fail(w, http.StatusServiceUnavailable, "job execution is not configured")
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.List()})
}

// handleJobGet reports one job's state and progress.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		s.fail(w, http.StatusServiceUnavailable, "job execution is not configured")
		return
	}
	job, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, job)
}

// handleJobResult returns a finished job's dataset; 409 while unfinished.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		s.fail(w, http.StatusServiceUnavailable, "job execution is not configured")
		return
	}
	res, job, err := s.jobs.Result(r.PathValue("id"))
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	if res == nil {
		s.fail(w, http.StatusConflict, "job %s is %s; no result yet", job.ID, job.State)
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}

// handleJobCancel cancels a job.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		s.fail(w, http.StatusServiceUnavailable, "job execution is not configured")
		return
	}
	job, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, job)
}

// handleHealthz: liveness — the process serves requests.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz: readiness — flips to 503 once shutdown starts so load
// balancers drain before the listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		s.fail(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	body := map[string]any{
		"status":       "ok",
		"trainedPairs": s.reg.Len(),
		"queuedJobs":   s.queueDepth(),
		"runningJobs":  s.runningJobs(),
	}
	if s.cfg.Cluster != nil {
		body["fleetWorkers"] = s.cfg.Cluster.LiveWorkers()
	}
	s.writeJSON(w, http.StatusOK, body)
}

func (s *Server) queueDepth() int {
	if s.jobs == nil {
		return 0
	}
	return s.jobs.QueueDepth()
}

func (s *Server) runningJobs() int {
	if s.jobs == nil {
		return 0
	}
	return s.jobs.Running()
}

// handleMetrics renders the Prometheus exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
}
