package serve

import (
	"context"
	"fmt"
	"sync"

	"mosaic/internal/arch"
	"mosaic/internal/cluster"
	"mosaic/internal/experiment"
	"mosaic/internal/plan"
	"mosaic/internal/serve/registry"
	"mosaic/internal/sim"
	"mosaic/internal/workloads"
)

// SweepExecutor is the production JobExecutor: each job gets a fresh
// experiment pipeline (dataset caches are keyed only by workload@platform,
// so sharing a pipeline across jobs with different protocols or sampling
// configs would alias results), while the on-disk trace cache is shared so
// workload generation happens once across the daemon's lifetime.
type SweepExecutor struct {
	// TraceDir, when set, caches generated traces across jobs and restarts.
	TraceDir string
	// Parallelism bounds each job's internal worker pool (0 = GOMAXPROCS).
	Parallelism int
	// Registry, when set, receives trained models from Train jobs.
	Registry *registry.Registry
	// Fabric, when set, shards sweep-mode jobs across the coordinator's
	// registered workers; with no live workers (or for adaptive jobs,
	// whose planner is inherently iterative) execution stays local, so a
	// fleetless deployment behaves exactly as before.
	Fabric *cluster.Coordinator

	mu     sync.Mutex
	active map[*experiment.Runner]struct{}
}

// Run implements JobExecutor.
func (e *SweepExecutor) Run(ctx context.Context, spec JobSpec, onProgress func(sim.Progress), onCurve func(plan.Step)) (*JobResult, []StageTimeView, error) {
	w, err := workloads.ByName(spec.Workload)
	if err != nil {
		return nil, nil, err
	}
	plat, err := arch.ByName(spec.Platform)
	if err != nil {
		return nil, nil, err
	}
	proto, err := spec.proto()
	if err != nil {
		return nil, nil, err
	}
	mode, err := spec.mode()
	if err != nil {
		return nil, nil, err
	}
	r := experiment.NewRunner()
	r.Proto = proto
	r.Sampling = spec.Sampling.toSim()
	r.TraceDir = e.TraceDir
	if e.Parallelism > 0 {
		r.Parallelism = e.Parallelism
	}
	e.track(r, true)
	defer e.track(r, false)

	var ds *experiment.Dataset
	var adaptive *AdaptiveResult
	switch {
	case mode == "adaptive":
		ds, adaptive, err = e.runAdaptive(ctx, r, w, plat, spec, onCurve)
	case e.Fabric != nil && e.Fabric.LiveWorkers() > 0:
		ds, err = e.runDistributed(ctx, r, w, plat, spec, onProgress)
	default:
		var dss []*experiment.Dataset
		dss, err = r.CollectAllCtx(ctx, []workloads.Workload{w}, []arch.Platform{plat}, onProgress)
		if err == nil {
			if len(dss) != 1 {
				err = fmt.Errorf("serve: sweep produced %d datasets, want 1", len(dss))
			} else {
				ds = dss[0]
			}
		}
	}
	stages := stageViews(r.StageTimes())
	if err != nil {
		return nil, stages, err
	}
	if spec.Train && e.Registry != nil {
		if err := e.Registry.Train(ds, nil); err != nil {
			return nil, stages, fmt.Errorf("serve: training models: %w", err)
		}
	}
	res := resultFromDataset(ds)
	res.Adaptive = adaptive
	return res, stages, nil
}

// runDistributed executes a sweep through the cluster fabric: plan the
// protocol locally (cheap and deterministic — workers re-derive the same
// layouts from the pair key), submit the layout span to the coordinator,
// and assemble the merged per-layout results through the exact code path
// single-node sweeps use (experiment.Assemble), so a distributed dataset
// is bit-identical to a local one. The local runner still owns trace
// preparation, which warms the shared TraceDir for co-located workers.
func (e *SweepExecutor) runDistributed(ctx context.Context, r *experiment.Runner, w workloads.Workload, plat arch.Platform, spec JobSpec, onProgress func(sim.Progress)) (*experiment.Dataset, error) {
	wd, err := r.Prepare(w)
	if err != nil {
		return nil, err
	}
	lays := r.ProtocolLayouts(wd, plat)
	var progress func(done, total int)
	if onProgress != nil {
		fleet := e.Fabric.LiveWorkers()
		progress = func(done, total int) {
			onProgress(sim.Progress{
				Stage:   sim.StageReplay.String(),
				Done:    done,
				Total:   total,
				Workers: fleet,
			})
		}
	}
	sweep, err := e.Fabric.Submit(cluster.SweepSpec{
		Job:      spec.Hash(),
		Workload: spec.Workload,
		Platform: spec.Platform,
		Proto:    spec.Proto,
		Sampling: spec.Sampling.toSim(),
		Layouts:  len(lays),
	}, progress)
	if err != nil {
		return nil, err
	}
	merged, err := sweep.Wait(ctx)
	if err != nil {
		return nil, err
	}
	results := make([]sim.Result, len(lays))
	for i, lr := range merged {
		if lr.Layout != lays[i].Name {
			return nil, fmt.Errorf("serve: distributed merge order broken at %d: worker measured %q, protocol plans %q",
				i, lr.Layout, lays[i].Name)
		}
		results[i] = lr.Result
	}
	return experiment.Assemble(spec.Workload, spec.Platform, lays, results)
}

// runAdaptive executes an active-learning planned sweep (internal/plan):
// probe every protocol layout at the planner's cheap fidelity, promote
// the highest-uncertainty layouts to exact measurement until the error
// target or budget stops it. The per-round error-vs-cost curve streams
// through onCurve into the job's live progress.
func (e *SweepExecutor) runAdaptive(ctx context.Context, r *experiment.Runner, w workloads.Workload, plat arch.Platform, spec JobSpec, onCurve func(plan.Step)) (*experiment.Dataset, *AdaptiveResult, error) {
	a := spec.Adaptive
	if a == nil {
		a = &AdaptiveSpec{}
	}
	cfg := plan.Config{
		ErrorTarget:   a.ErrorTarget,
		MaxPromotions: a.Budget,
		Seed:          a.Seed,
		// An explicit job sampling spec overrides the planner's probe
		// fidelity; the zero spec keeps the aggressive default probe.
		ProbeSampling: spec.Sampling.toSim(),
	}
	ds, rep, err := plan.Adaptive(ctx, r, w, plat, cfg, onCurve, nil)
	if err != nil {
		return nil, nil, err
	}
	return ds, &AdaptiveResult{
		Promotions:       rep.Promotions,
		PredictedMaxErr:  rep.PredictedMaxErr,
		ProbeAccesses:    rep.ProbeAccesses,
		ExactAccesses:    rep.ExactAccesses,
		CostAccesses:     rep.CostAccesses,
		FullCostAccesses: rep.FullCostAccesses,
		CostRatio:        rep.CostRatio(),
		Stopped:          rep.Stopped,
		Curve:            rep.Steps,
	}, nil
}

// track registers or unregisters a live pipeline for the occupancy gauge.
func (e *SweepExecutor) track(r *experiment.Runner, on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.active == nil {
		e.active = make(map[*experiment.Runner]struct{})
	}
	if on {
		e.active[r] = struct{}{}
	} else {
		delete(e.active, r)
	}
}

// PoolIdle sums the idle pooled engines across every live job pipeline —
// the sim-pool occupancy gauge on /metrics.
func (e *SweepExecutor) PoolIdle() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for r := range e.active {
		n += r.PoolIdle()
	}
	return n
}

// ActivePipelines reports live job pipelines.
func (e *SweepExecutor) ActivePipelines() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.active)
}
