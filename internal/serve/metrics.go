package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Hand-rolled Prometheus-text-format metrics: the daemon exposes request
// counts, latency histograms, queue depth, pool occupancy, and cache hit
// rates without pulling in a client library (the repo is dependency-free
// by design). Only the small corner of the exposition format we emit is
// implemented: counter, gauge, and histogram families with fixed label
// sets.

// metricFamily is anything that can render itself in exposition format.
type metricFamily interface {
	familyName() string
	write(w io.Writer)
}

// Metrics is a registry of metric families with a stable exposition order.
type Metrics struct {
	mu       sync.Mutex
	families []metricFamily
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return &Metrics{} }

func (m *Metrics) register(f metricFamily) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.families = append(m.families, f)
}

// WritePrometheus renders every family in registration order.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	fams := append([]metricFamily{}, m.families...)
	m.mu.Unlock()
	for _, f := range fams {
		f.write(w)
	}
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// Counter is a monotonically increasing counter.
type Counter struct {
	name, help string
	n          atomic.Uint64
}

// NewCounter registers a counter family with one unlabeled series.
func (m *Metrics) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	m.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

func (c *Counter) familyName() string { return c.name }

func (c *Counter) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.n.Load())
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct {
	name, help, label string
	mu                sync.Mutex
	series            map[string]*atomic.Uint64
}

// NewCounterVec registers a counter family with one label dimension.
func (m *Metrics) NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{name: name, help: help, label: label, series: make(map[string]*atomic.Uint64)}
	m.register(v)
	return v
}

// With returns the series for one label value, creating it on first use.
func (v *CounterVec) With(value string) *atomic.Uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	s, ok := v.series[value]
	if !ok {
		s = new(atomic.Uint64)
		v.series[value] = s
	}
	return s
}

// Inc adds one to the series for value.
func (v *CounterVec) Inc(value string) { v.With(value).Add(1) }

// Value reads one series (0 if never touched).
func (v *CounterVec) Value(value string) uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if s, ok := v.series[value]; ok {
		return s.Load()
	}
	return 0
}

func (v *CounterVec) familyName() string { return v.name }

func (v *CounterVec) write(w io.Writer) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.series))
	for k := range v.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]uint64, len(keys))
	for i, k := range keys {
		vals[i] = v.series[k].Load()
	}
	v.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", v.name, v.help, v.name)
	for i, k := range keys {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", v.name, v.label, k, vals[i])
	}
}

// CounterFunc samples a monotonically increasing value at scrape time —
// for totals owned by another subsystem (the cluster coordinator's retry
// and merge counts) that the registry reads rather than increments. It
// renders with TYPE counter so rate() and linters treat the _total
// series correctly.
type CounterFunc struct {
	name, help string
	fn         func() float64
}

// NewCounterFunc registers a counter whose value is read at scrape time.
// fn must be monotonic — counter semantics are the caller's contract.
func (m *Metrics) NewCounterFunc(name, help string, fn func() float64) *CounterFunc {
	c := &CounterFunc{name: name, help: help, fn: fn}
	m.register(c)
	return c
}

func (c *CounterFunc) familyName() string { return c.name }

func (c *CounterFunc) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", c.name, c.help, c.name, c.name, formatFloat(c.fn()))
}

// GaugeFunc samples a value at scrape time — queue depth, pool occupancy.
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// NewGaugeFunc registers a gauge whose value is read at scrape time.
func (m *Metrics) NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{name: name, help: help, fn: fn}
	m.register(g)
	return g
}

func (g *GaugeFunc) familyName() string { return g.name }

func (g *GaugeFunc) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", g.name, g.help, g.name, g.name, formatFloat(g.fn()))
}

// Histogram is a fixed-bucket latency histogram with cumulative counts,
// matching Prometheus histogram semantics (each bucket counts observations
// ≤ its upper bound; +Inf is implicit via _count).
type Histogram struct {
	name, help string
	bounds     []float64 // upper bounds, ascending, seconds
	counts     []atomic.Uint64
	count      atomic.Uint64
	sumMicros  atomic.Uint64 // sum in microseconds to stay integral
}

// DefaultLatencyBuckets spans sub-millisecond predict calls through
// multi-minute sweep jobs.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// NewHistogram registers a histogram with the given upper bounds (seconds).
func (m *Metrics) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64{}, bounds...),
		counts: make([]atomic.Uint64, len(bounds)),
	}
	m.register(h)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	for i, b := range h.bounds {
		if sec <= b {
			h.counts[i].Add(1)
		}
	}
	h.count.Add(1)
	h.sumMicros.Add(uint64(d.Microseconds()))
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the q-quantile (0..1) from the bucket counts: the
// upper bound of the first bucket whose cumulative count reaches q·total.
// It is the server-side view a scraper would compute with histogram_quantile.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	for i := range h.bounds {
		if h.counts[i].Load() >= rank {
			return h.bounds[i]
		}
	}
	return math.Inf(1)
}

func (h *Histogram) familyName() string { return h.name }

func (h *Histogram) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(b), h.counts[i].Load())
	}
	total := h.count.Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, total)
	fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(float64(h.sumMicros.Load())/1e6))
	fmt.Fprintf(w, "%s_count %d\n", h.name, total)
}

// RatioFunc renders a gauge computed from two counters — cache hit rate.
func RatioFunc(hits, total *Counter) func() float64 {
	return func() float64 {
		t := total.Value()
		if t == 0 {
			return 0
		}
		return float64(hits.Value()) / float64(t)
	}
}

// sanity check at init: bounds must ascend or cumulative counts lie.
func init() {
	for i := 1; i < len(DefaultLatencyBuckets); i++ {
		if DefaultLatencyBuckets[i] <= DefaultLatencyBuckets[i-1] {
			panic("serve: DefaultLatencyBuckets must ascend")
		}
	}
}
