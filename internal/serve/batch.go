package serve

import (
	"context"
	"time"

	"mosaic/internal/serve/registry"
)

// Request batching for the predict hot path: handlers hand their requests
// to a single collector goroutine which coalesces whatever arrived within
// a short window (or up to a size cap) into one registry.PredictBatch
// call, so N concurrent predictions cost one read-lock acquisition instead
// of N. Under light load the window never fills and the only cost is one
// channel hop; under heavy load the batch amortizes lock and cache-line
// traffic across the whole wave.

// batchItem is one in-flight prediction with its reply channel.
type batchItem struct {
	req   registry.Request
	reply chan registry.Outcome
}

// Batcher coalesces predict requests into registry batch evaluations.
type Batcher struct {
	reg   *registry.Registry
	in    chan batchItem
	stop  context.CancelFunc
	done  chan struct{}
	size  int
	delay time.Duration

	batches *Counter
	items   *Counter
}

// BatcherConfig sizes the batcher.
type BatcherConfig struct {
	// MaxBatch caps how many requests one registry call evaluates (min 1,
	// default 64).
	MaxBatch int
	// MaxDelay caps how long the collector waits for the batch to fill
	// after the first request arrives (default 200µs — well under the
	// predict latency budget, long enough to catch a concurrent wave).
	MaxDelay time.Duration
	// Metrics, when set, receives batch counters.
	Metrics *Metrics
}

// NewBatcher starts the collector goroutine.
func NewBatcher(reg *registry.Registry, cfg BatcherConfig) *Batcher {
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 200 * time.Microsecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	b := &Batcher{
		reg:   reg,
		in:    make(chan batchItem, cfg.MaxBatch),
		stop:  cancel,
		done:  make(chan struct{}),
		size:  cfg.MaxBatch,
		delay: cfg.MaxDelay,
	}
	mx := cfg.Metrics
	if mx == nil {
		mx = NewMetrics()
	}
	b.batches = mx.NewCounter("mosd_predict_batches_total", "Registry batch evaluations on the predict path.")
	b.items = mx.NewCounter("mosd_predict_batched_requests_total", "Predict requests evaluated through batches.")
	go b.loop(ctx)
	return b
}

// Predict submits one request and waits for its outcome (or ctx expiry).
func (b *Batcher) Predict(ctx context.Context, req registry.Request) (registry.Prediction, error) {
	item := batchItem{req: req, reply: make(chan registry.Outcome, 1)}
	select {
	case b.in <- item:
	case <-ctx.Done():
		return registry.Prediction{}, ctx.Err()
	}
	select {
	case out := <-item.reply:
		if out.Err != nil {
			return registry.Prediction{}, out.Err
		}
		return out.Prediction, nil
	case <-ctx.Done():
		// The collector still evaluates and replies into the buffered
		// channel; nobody listens. Cheap — a prediction is microseconds.
		return registry.Prediction{}, ctx.Err()
	}
}

// loop collects waves of requests and evaluates each as one batch.
func (b *Batcher) loop(ctx context.Context) {
	defer close(b.done)
	items := make([]batchItem, 0, b.size)
	reqs := make([]registry.Request, 0, b.size)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		// Block for the wave's first request.
		select {
		case <-ctx.Done():
			return
		case item := <-b.in:
			items = append(items, item)
		}
		// Collect the rest of the wave until the window closes or the
		// batch fills.
		timer.Reset(b.delay)
	collect:
		for len(items) < b.size {
			select {
			case item := <-b.in:
				items = append(items, item)
			case <-timer.C:
				break collect
			case <-ctx.Done():
				timer.Stop()
				break collect
			}
		}
		if len(items) == b.size {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		reqs = reqs[:0]
		for _, it := range items {
			reqs = append(reqs, it.req)
		}
		outs, err := b.reg.PredictBatch(reqs)
		b.batches.Inc()
		b.items.Add(uint64(len(items)))
		for i, it := range items {
			if err != nil {
				it.reply <- registry.Outcome{Err: err}
			} else {
				it.reply <- outs[i]
			}
		}
		items = items[:0]
		if ctx.Err() != nil {
			return
		}
	}
}

// Close stops the collector. In-flight waves finish; later Predicts block
// until their context expires, so Close only after the listener stops.
func (b *Batcher) Close() {
	b.stop()
	<-b.done
}
