package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Fuzzing the decode path of both POST endpoints: whatever bytes arrive,
// the server must answer an HTTP status — 400 for malformed input, never a
// panic (the recovery middleware turning a panic into a 500 would still
// fail the test via the status check below, since these handlers must not
// panic at all).

// fuzzServer is shared across fuzz iterations; handlers are stateless on
// the decode path.
func fuzzServer(f *testing.F) *httptest.Server {
	f.Helper()
	reg := trainedRegistry(f)
	s := NewServer(ServerConfig{Registry: reg, Executor: stubExecutor(0), JobQueueDepth: 1 << 16})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				// Bypass the server's own recovery: a decode-path panic is
				// exactly what the fuzzer hunts.
				panic(rec)
			}
		}()
		s.mux.ServeHTTP(w, r)
	}))
	f.Cleanup(ts.Close)
	return ts
}

func FuzzPredictDecode(f *testing.F) {
	ts := fuzzServer(f)
	f.Add(`{"workload":"gups/8GB","platform":"SandyBridge","h":1,"m":2,"c":3}`)
	f.Add(`{"workload":"gups/8GB","platform":"SandyBridge","layout":"4KB"}`)
	f.Add(`{"h":null}`)
	f.Add(`{"h":1e999,"m":-0,"c":3}`)
	f.Add(`[[[[`)
	f.Add(`{"workload":" ","platform":""}`)
	f.Add(``)
	f.Add(`{"workload":"w","platform":"p","h":1,"m":2,"c":3}{"again":true}`)
	f.Fuzz(func(t *testing.T, body string) {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("transport error (did the handler panic?): %v", err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case 200, 400, 404:
		default:
			t.Fatalf("predict(%q) = %d, want 200/400/404", body, resp.StatusCode)
		}
	})
}

func FuzzJobDecode(f *testing.F) {
	ts := fuzzServer(f)
	f.Add(`{"workload":"gups/8GB","platform":"SandyBridge","proto":"quick"}`)
	f.Add(`{"workload":"w","platform":"p","sampling":{"default":true}}`)
	f.Add(`{"workload":"w","platform":"p","sampling":{"period":-5}}`)
	f.Add(`{"workload":"w","platform":"p","proto":"turbo"}`)
	f.Add(`{"train":"yes"}`)
	f.Add(`nul`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, body string) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("transport error (did the handler panic?): %v", err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case 200, 202, 400, 429:
		default:
			t.Fatalf("jobs(%q) = %d, want 200/202/400/429", body, resp.StatusCode)
		}
	})
}
