package registry

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mosaic/internal/experiment"
	"mosaic/internal/pmu"
)

// syntheticDataset builds a dataset every model accepts: 4KB/2MB baselines
// plus a smooth grow curve, mirroring the protocol's shape.
func syntheticDataset(workload, platform string) *experiment.Dataset {
	samples := []pmu.Sample{
		{Layout: "4KB", H: 9e5, M: 4e5, C: 2.4e7, R: 9.1e7},
		{Layout: "2MB", H: 1e5, M: 2e4, C: 1.1e6, R: 6.6e7},
	}
	for i := 0; i < 16; i++ {
		f := float64(i) / 15
		samples = append(samples, pmu.Sample{
			Layout: "grow-" + string(rune('a'+i)),
			H:      1e5 + f*8e5,
			M:      2e4 + f*3.8e5,
			C:      1.1e6 + f*2.29e7 + f*f*1e6,
			R:      6.6e7 + f*2.4e7 + f*f*1.1e6,
		})
	}
	return &experiment.Dataset{
		Workload:     workload,
		Platform:     platform,
		Samples:      samples,
		Sample1G:     pmu.Sample{Layout: "1GB", H: 1e4, M: 5e3, C: 3e5, R: 6.5e7},
		TLBSensitive: true,
	}
}

func TestTrainPredictInMemory(t *testing.T) {
	r, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	ds := syntheticDataset("gups", "skylake")
	if err := r.Train(ds, nil); err != nil {
		t.Fatal(err)
	}
	// Default model, explicit inputs.
	s := ds.Samples[5]
	p, err := r.Predict(Request{Workload: "gups", Platform: "skylake", H: s.H, M: s.M, C: s.C})
	if err != nil {
		t.Fatal(err)
	}
	if p.Model != DefaultModel {
		t.Errorf("default model = %s, want %s", p.Model, DefaultModel)
	}
	if p.Runtime <= 0 || math.IsNaN(p.Runtime) {
		t.Errorf("runtime = %v", p.Runtime)
	}
	if !(p.Lo <= p.Runtime && p.Runtime <= p.Hi) {
		t.Errorf("bounds [%v, %v] do not bracket %v", p.Lo, p.Hi, p.Runtime)
	}
	// Layout-name resolution, including the 1GB validation point.
	for _, layout := range []string{"4KB", "2MB", "grow-c", "1GB"} {
		p, err := r.Predict(Request{Workload: "gups", Platform: "skylake", Model: "poly1", Layout: layout})
		if err != nil {
			t.Fatalf("layout %s: %v", layout, err)
		}
		if p.Layout != layout || p.Runtime <= 0 {
			t.Errorf("layout %s: %+v", layout, p)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	r, _ := Open("")
	ds := syntheticDataset("gups", "skylake")
	if err := r.Train(ds, []string{"mosmodel"}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		req  Request
		want error
	}{
		{Request{Workload: "nope", Platform: "skylake"}, ErrUnknownPair},
		{Request{Workload: "gups", Platform: "nope"}, ErrUnknownPair},
		{Request{Workload: "gups", Platform: "skylake", Model: "poly3"}, ErrUnknownModel},
		{Request{Workload: "gups", Platform: "skylake", Layout: "512KB"}, ErrUnknownLayout},
	}
	for _, c := range cases {
		if _, err := r.Predict(c.req); !errors.Is(err, c.want) {
			t.Errorf("Predict(%+v) = %v, want %v", c.req, err, c.want)
		}
	}
}

// TestPersistenceBitIdentical is the serving contract: a registry reopened
// from disk predicts bit-identically to the one that trained.
func TestPersistenceBitIdentical(t *testing.T) {
	dir := t.TempDir()
	r1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds := syntheticDataset("gups", "skylake")
	if err := r1.Train(ds, nil); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 1 {
		t.Fatalf("reopened registry holds %d pairs, want 1", r2.Len())
	}
	probes := append([]pmu.Sample{}, ds.Samples...)
	probes = append(probes, pmu.Sample{H: 5e6, M: 5e6, C: 9e8}) // off-hull
	for _, info := range r2.Pairs() {
		for name := range info.Models {
			for _, s := range probes {
				req := Request{Workload: "gups", Platform: "skylake", Model: name, H: s.H, M: s.M, C: s.C}
				p1, err1 := r1.Predict(req)
				p2, err2 := r2.Predict(req)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s: %v / %v", name, err1, err2)
				}
				if math.Float64bits(p1.Runtime) != math.Float64bits(p2.Runtime) {
					t.Fatalf("%s at (%g,%g,%g): %v -> %v across disk",
						name, s.H, s.M, s.C, p1.Runtime, p2.Runtime)
				}
			}
		}
	}
}

// TestTrainMergesModels: training one model then another for the same pair
// serves both.
func TestTrainMergesModels(t *testing.T) {
	r, _ := Open("")
	ds := syntheticDataset("gups", "skylake")
	if err := r.Train(ds, []string{"poly1"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Train(ds, []string{"mosmodel"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"poly1", "mosmodel"} {
		if _, err := r.Predict(Request{Workload: "gups", Platform: "skylake", Model: name, Layout: "4KB"}); err != nil {
			t.Errorf("model %s lost after second Train: %v", name, err)
		}
	}
}

// TestReload: an externally written pair file goes live on Reload; a
// removed file drops its pair; a corrupt file keeps the old state serving.
func TestReload(t *testing.T) {
	dir := t.TempDir()
	// Writer registry trains two pairs into dir.
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Train(syntheticDataset("gups", "skylake"), []string{"mosmodel"}); err != nil {
		t.Fatal(err)
	}

	// Reader registry opened over the same dir sees pair one.
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("opened with %d pairs, want 1", r.Len())
	}

	// A new pair appears after the writer trains it and the reader reloads.
	if err := w.Train(syntheticDataset("bt", "broadwell"), []string{"poly2"}); err != nil {
		t.Fatal(err)
	}
	if n, err := r.Reload(); err != nil || n != 1 {
		t.Fatalf("Reload = (%d, %v), want (1, nil)", n, err)
	}
	if _, err := r.Predict(Request{Workload: "bt", Platform: "broadwell", Model: "poly2", Layout: "4KB"}); err != nil {
		t.Fatalf("new pair not served after reload: %v", err)
	}

	// Corrupting a file keeps the previous state serving and reports the error.
	path := w.pairPath("bt", "broadwell")
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Reload(); err == nil {
		t.Fatal("Reload over corrupt file reported no error")
	}
	if _, err := r.Predict(Request{Workload: "bt", Platform: "broadwell", Model: "poly2", Layout: "4KB"}); err != nil {
		t.Fatalf("corrupt file evicted the serving pair: %v", err)
	}

	// Deleting the file drops the pair.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if n, err := r.Reload(); err != nil || n != 1 {
		t.Fatalf("Reload after delete = (%d, %v), want (1, nil)", n, err)
	}
	if _, err := r.Predict(Request{Workload: "bt", Platform: "broadwell", Model: "poly2", Layout: "4KB"}); !errors.Is(err, ErrUnknownPair) {
		t.Fatalf("deleted pair still served: %v", err)
	}
}

// TestReloadMtimeCollision is the racy-stamp regression test: a pair file
// rewritten with different content but identical size and mtime — the
// same-second rewrite a (size, mtime) stamp cannot distinguish — must
// still be picked up by Reload, because a stamp taken within filesystem
// timestamp granularity of the mtime is inconclusive and falls back to
// the content hash.
func TestReloadMtimeCollision(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds := syntheticDataset("gups", "skylake")
	if err := w.Train(ds, []string{"poly1"}); err != nil {
		t.Fatal(err)
	}
	path := w.pairPath("gups", "skylake")
	stateA, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Train merges models, so after this the file serves poly1 AND poly2.
	if err := w.Train(ds, []string{"poly2"}); err != nil {
		t.Fatal(err)
	}
	stateB, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Pad both serializations to the same length with trailing whitespace
	// (valid JSON) so the rewrite below cannot be detected by size.
	for len(stateA) < len(stateB) {
		stateA = append(stateA, '\n')
	}
	for len(stateB) < len(stateA) {
		stateB = append(stateB, '\n')
	}

	if err := os.WriteFile(path, stateA, 0o644); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	// The reader stamps state A the instant it is written — a racy stamp.
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Predict(Request{Workload: "gups", Platform: "skylake", Model: "poly2", Layout: "4KB"}); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("state A should not serve poly2, got %v", err)
	}

	// Rewrite with state B and force the stat back to a byte-identical
	// (size, mtime) pair.
	if err := os.WriteFile(path, stateB, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, before.ModTime(), before.ModTime()); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() || !after.ModTime().Equal(before.ModTime()) {
		t.Fatalf("collision not forced: stat went (%d, %v) -> (%d, %v)",
			before.Size(), before.ModTime(), after.Size(), after.ModTime())
	}

	n, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Reload over a same-size same-mtime rewrite = %d changes, want 1", n)
	}
	if _, err := r.Predict(Request{Workload: "gups", Platform: "skylake", Model: "poly2", Layout: "4KB"}); err != nil {
		t.Fatalf("state B not served after reload: %v", err)
	}
}

// TestReloadConcurrentWithPredict guards the two-phase Reload (stage loads
// off-lock, apply under the write lock): predict traffic and overlapping
// reloads run concurrently against a directory being retrained, and the
// registry must neither race (-race is the real assertion here) nor lose
// the final state. Before the split, every predict stalled behind the
// write lock for the full stat+parse+restore of the directory.
func TestReloadConcurrentWithPredict(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Train(syntheticDataset("gups", "skylake"), []string{"mosmodel"}); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := r.Reload(); err != nil {
					t.Errorf("Reload: %v", err)
					return
				}
			}
		}()
	}
	req := Request{Workload: "gups", Platform: "skylake", Layout: "4KB"}
	for i := 0; i < 200; i++ {
		if _, err := r.Predict(req); err != nil {
			t.Fatalf("Predict during reloads: %v", err)
		}
		if i == 100 {
			// Retrain mid-flight so some reload observes a changed stamp.
			if err := w.Train(syntheticDataset("gups", "skylake"), []string{"mosmodel", "poly2"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if _, err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Predict(Request{Workload: "gups", Platform: "skylake", Model: "poly2", Layout: "4KB"}); err != nil {
		t.Fatalf("retrained model not served after the dust settled: %v", err)
	}
}

// TestWatch: the polling loop picks up an external retrain without a
// restart.
func TestWatch(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Watch(ctx, time.Millisecond)
	}()
	if err := w.Train(syntheticDataset("gups", "skylake"), []string{"mosmodel"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("Watch never picked up the new pair file")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
}

func TestPairsListing(t *testing.T) {
	r, _ := Open("")
	if err := r.Train(syntheticDataset("gups", "skylake"), []string{"mosmodel", "poly1"}); err != nil {
		t.Fatal(err)
	}
	infos := r.Pairs()
	if len(infos) != 1 {
		t.Fatalf("%d pairs listed", len(infos))
	}
	info := infos[0]
	if info.Workload != "gups" || info.Platform != "skylake" || !info.TLBSensitive {
		t.Errorf("info = %+v", info)
	}
	if info.Samples != 18 || len(info.Layouts) != 19 { // 18 protocol + 1GB
		t.Errorf("samples %d, layouts %d", info.Samples, len(info.Layouts))
	}
	if len(info.Models) != 2 {
		t.Errorf("models %v", info.Models)
	}
}

// TestPairFileNames: distinct pairs land in distinct files, with path-safe
// names.
func TestPairFileNames(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Train(syntheticDataset("suite/gups", "sky lake"), []string{"poly1"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Train(syntheticDataset("suite_gups", "sky_lake"), []string{"poly1"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := []string{}
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("collision: dir holds %v", names)
	}
	for _, e := range entries {
		if filepath.Base(e.Name()) != e.Name() || e.Name() == "" {
			t.Errorf("unsafe file name %q", e.Name())
		}
	}
}
