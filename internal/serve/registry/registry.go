// Package registry keeps trained runtime models ready to serve. It is the
// bridge between the measurement pipeline and the prediction API: a sweep
// produces an experiment.Dataset, Train fits the requested models on it
// and persists their coefficients as JSON, and Predict evaluates a stored
// model in microseconds — the paper's point that a fitted Mosmodel
// replaces hours of simulation with a cheap, bounded-error function
// (§VII-C, ≤3% max error).
//
// Persistence is one JSON file per (workload, platform) pair holding the
// training samples (so layout names remain predictable inputs) and every
// fitted model's serialized state. Files are written atomically and
// hot-reloaded: a daemon notices externally retrained files by a (size,
// mtime) stamp backed by a content hash for the racy same-second cases,
// without a restart.
package registry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mosaic/internal/experiment"
	"mosaic/internal/models"
	"mosaic/internal/pmu"
)

// Lookup errors, distinguished so the HTTP layer can map them to 404s.
var (
	ErrUnknownPair   = errors.New("registry: no trained models for workload@platform")
	ErrUnknownModel  = errors.New("registry: model not trained for this pair")
	ErrUnknownLayout = errors.New("registry: layout not in the pair's training protocol")
)

// fileVersion tags the on-disk schema.
const fileVersion = 1

// modelRecord is one fitted model's on-disk form.
type modelRecord struct {
	MaxTrainErr float64         `json:"maxTrainErr"`
	GeoTrainErr float64         `json:"geoTrainErr"`
	State       json.RawMessage `json:"state"`
}

// pairFile is the on-disk form of one (workload, platform) pair.
type pairFile struct {
	Version      int                    `json:"version"`
	Workload     string                 `json:"workload"`
	Platform     string                 `json:"platform"`
	TLBSensitive bool                   `json:"tlbSensitive"`
	Samples      []pmu.Sample           `json:"samples"`
	Sample1G     pmu.Sample             `json:"sample1G"`
	Models       map[string]modelRecord `json:"models"`
}

// Pair is the in-memory form: the pair's training samples plus its fitted
// models.
type Pair struct {
	Workload, Platform string
	TLBSensitive       bool
	Samples            []pmu.Sample
	Sample1G           pmu.Sample
	Models             map[string]*experiment.TrainedModel
}

// key names a pair the way the API addresses it.
func key(workload, platform string) string { return workload + "@" + platform }

// fileStamp detects externally changed files. (size, mtime) is the cheap
// stat-only check, but it is racy: a rewrite in the same second that lands
// on the same byte count — exactly what a coordinator pushing a retrained
// model with identical shape can produce — leaves both unchanged. So the
// stamp also records a content hash plus when the stamp was taken: when
// the mtime is too close to the stamp time to be conclusive (the git
// "racy stamp" condition), Reload re-reads the file and trusts the hash
// instead.
type fileStamp struct {
	size  int64
	mtime time.Time
	hash  uint64    // FNV-1a of the file bytes
	at    time.Time // when the stamp was recorded
}

// racy reports whether (size, mtime) equality is inconclusive: the file's
// mtime is within filesystem timestamp granularity of the stamp time, so
// a later same-second rewrite would be invisible to stat.
func (s fileStamp) racy() bool {
	return s.at.Sub(s.mtime) < time.Second
}

// sameContent reports whether two stamps certify identical file content.
func sameContent(a, b fileStamp) bool {
	return a.size == b.size && a.hash == b.hash
}

// Registry is the thread-safe store. Predictions take a read lock;
// training and reloading take the write lock.
type Registry struct {
	dir string // "" means in-memory only (no persistence, no reload)

	mu      sync.RWMutex
	pairs   map[string]*Pair     // key() → pair
	stamps  map[string]fileStamp // file path → last loaded stamp
	files   map[string]string    // key() → file path
	reloads uint64               // completed Reload passes that changed state
}

// Open builds a registry over dir, loading every pair file already there.
// An empty dir gives an in-memory registry (nothing persists). The
// directory is created if missing.
func Open(dir string) (*Registry, error) {
	r := &Registry{
		dir:    dir,
		pairs:  make(map[string]*Pair),
		stamps: make(map[string]fileStamp),
		files:  make(map[string]string),
	}
	if dir == "" {
		return r, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := r.Reload(); err != nil {
		return nil, err
	}
	return r, nil
}

// Dir returns the persistence directory ("" for in-memory).
func (r *Registry) Dir() string { return r.dir }

// pairPath names the pair's file: sanitized for the filesystem and
// disambiguated with an FNV hash, mirroring the trace cache's convention.
func (r *Registry) pairPath(workload, platform string) string {
	k := key(workload, platform)
	safe := strings.NewReplacer("/", "_", " ", "_", "@", "_").Replace(k)
	return filepath.Join(r.dir, fmt.Sprintf("%s-%08x.json", safe, uint32(fnv1a(k))))
}

// Train fits the named models (nil/empty = every registry model) on the
// dataset's samples, installs them for serving, and — when the registry is
// disk-backed — persists the pair atomically. Models that cannot be fitted
// on this dataset (e.g. prior models lacking baseline anchors on a partial
// dataset) are skipped; Train fails only when no model trains at all.
func (r *Registry) Train(ds *experiment.Dataset, names []string) error {
	trained, _, err := ds.TrainModels(names)
	if err != nil {
		return err
	}
	pair := &Pair{
		Workload:     ds.Workload,
		Platform:     ds.Platform,
		TLBSensitive: ds.TLBSensitive,
		Samples:      append([]pmu.Sample{}, ds.Samples...),
		Sample1G:     ds.Sample1G,
		Models:       trained,
	}

	// Phase 1 (locked): merge with previously trained models for the same
	// pair — so training "mosmodel" after "poly1" serves both — and install.
	// An installed Pair is never mutated again (later Trains build a fresh
	// one and merge into it), so it is safe to serialize without the lock.
	r.mu.Lock()
	if prev, ok := r.pairs[key(pair.Workload, pair.Platform)]; ok {
		for name, tm := range prev.Models {
			if _, ok := pair.Models[name]; !ok {
				pair.Models[name] = tm
			}
		}
	}
	r.pairs[key(pair.Workload, pair.Platform)] = pair
	dir := r.dir
	r.mu.Unlock()
	if dir == "" {
		return nil
	}

	// Phase 2 (unlocked): marshal and write the pair file. Serving requests
	// proceed against the already-installed pair while the disk write runs.
	path, raw, err := r.persist(pair)
	if err != nil {
		return err
	}

	fi, statErr := os.Stat(path)

	// Phase 3 (locked): record the freshly written file's stamp so Reload
	// recognizes it as our own write rather than an external edit.
	r.mu.Lock()
	defer r.mu.Unlock()
	if statErr == nil {
		r.stamps[path] = fileStamp{
			size:  fi.Size(),
			mtime: fi.ModTime(),
			hash:  fnv1aBytes(raw),
			at:    time.Now(),
		}
		r.files[key(pair.Workload, pair.Platform)] = path
	}
	return nil
}

// persist writes one pair's file atomically and returns its path and raw
// bytes for stamping. It must be called without the registry lock held —
// it performs file I/O.
func (r *Registry) persist(pair *Pair) (string, []byte, error) {
	pf := pairFile{
		Version:      fileVersion,
		Workload:     pair.Workload,
		Platform:     pair.Platform,
		TLBSensitive: pair.TLBSensitive,
		Samples:      pair.Samples,
		Sample1G:     pair.Sample1G,
		Models:       make(map[string]modelRecord, len(pair.Models)),
	}
	for name, tm := range pair.Models {
		state, err := json.Marshal(tm.Model)
		if err != nil {
			return "", nil, fmt.Errorf("registry: serializing %s for %s: %w", name, key(pair.Workload, pair.Platform), err)
		}
		pf.Models[name] = modelRecord{
			MaxTrainErr: tm.MaxTrainErr,
			GeoTrainErr: tm.GeoTrainErr,
			State:       state,
		}
	}
	raw, err := json.MarshalIndent(&pf, "", "  ")
	if err != nil {
		return "", nil, err
	}
	path := r.pairPath(pair.Workload, pair.Platform)
	if err := writeFileAtomic(path, raw, 0o644); err != nil {
		return "", nil, err
	}
	return path, raw, nil
}

// parsePair parses one pair file's bytes into its in-memory form.
func parsePair(path string, raw []byte) (*Pair, error) {
	var pf pairFile
	if err := json.Unmarshal(raw, &pf); err != nil {
		return nil, fmt.Errorf("registry: %s: %w", path, err)
	}
	if pf.Version != fileVersion {
		return nil, fmt.Errorf("registry: %s: unsupported version %d", path, pf.Version)
	}
	if pf.Workload == "" || pf.Platform == "" {
		return nil, fmt.Errorf("registry: %s: missing workload/platform", path)
	}
	pair := &Pair{
		Workload:     pf.Workload,
		Platform:     pf.Platform,
		TLBSensitive: pf.TLBSensitive,
		Samples:      pf.Samples,
		Sample1G:     pf.Sample1G,
		Models:       make(map[string]*experiment.TrainedModel, len(pf.Models)),
	}
	for name, rec := range pf.Models {
		m, err := models.Restore(name, rec.State)
		if err != nil {
			return nil, fmt.Errorf("registry: %s: %w", path, err)
		}
		pair.Models[name] = &experiment.TrainedModel{
			Model:       m,
			MaxTrainErr: rec.MaxTrainErr,
			GeoTrainErr: rec.GeoTrainErr,
		}
	}
	return pair, nil
}

// Reload re-scans the directory, loading new or changed pair files and
// dropping pairs whose files vanished. It returns the number of pairs
// whose state changed. A file that fails to parse is skipped (the previous
// in-memory state, if any, keeps serving) and reported.
func (r *Registry) Reload() (int, error) {
	if r.dir == "" {
		return 0, nil
	}
	paths, err := filepath.Glob(filepath.Join(r.dir, "*.json"))
	if err != nil {
		return 0, err
	}
	// Phase 1 — read the disk with no lock held. Stat/parse/restore of a
	// large pair file must not stall predict traffic behind the registry
	// write lock, so loads are staged against a snapshot of the stamps and
	// applied in phase 2.
	r.mu.RLock()
	prevStamps := make(map[string]fileStamp, len(r.stamps))
	for p, s := range r.stamps {
		prevStamps[p] = s
	}
	r.mu.RUnlock()

	type staged struct {
		path  string
		stamp fileStamp
		pair  *Pair // nil: stamp refresh only, content verified unchanged
	}
	var loads []staged
	var firstErr error
	seen := make(map[string]bool, len(paths))
	for _, path := range paths {
		seen[path] = true
		fi, err := os.Stat(path)
		if err != nil {
			continue
		}
		stamp := fileStamp{size: fi.Size(), mtime: fi.ModTime()}
		prev, known := prevStamps[path]
		if known && prev.size == stamp.size && prev.mtime.Equal(stamp.mtime) && !prev.racy() {
			continue // stat-only fast path: the stamp is conclusive
		}
		// New file, changed stat, or a racy stamp — read and let the
		// content hash decide.
		raw, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		stamp.hash = fnv1aBytes(raw)
		stamp.at = time.Now()
		if known && sameContent(prev, stamp) {
			// Identical bytes: refresh the stamp (so a now-settled mtime
			// takes the fast path next pass) without reparsing.
			loads = append(loads, staged{path: path, stamp: stamp})
			continue
		}
		pair, err := parsePair(path, raw)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		loads = append(loads, staged{path: path, stamp: stamp, pair: pair})
	}

	// Phase 2 — apply under the write lock: pure map updates, no I/O. A
	// concurrent Reload may have applied the same file meanwhile; the
	// hash re-check keeps the changed count honest.
	r.mu.Lock()
	defer r.mu.Unlock()
	changed := 0
	for _, s := range loads {
		if s.pair == nil {
			if _, ok := r.stamps[s.path]; ok {
				r.stamps[s.path] = s.stamp
			}
			continue
		}
		if prev, ok := r.stamps[s.path]; ok && sameContent(prev, s.stamp) {
			continue
		}
		r.pairs[key(s.pair.Workload, s.pair.Platform)] = s.pair
		r.stamps[s.path] = s.stamp
		r.files[key(s.pair.Workload, s.pair.Platform)] = s.path
		changed++
	}
	for k, path := range r.files {
		if !seen[path] {
			delete(r.pairs, k)
			delete(r.stamps, path)
			delete(r.files, k)
			changed++
		}
	}
	if changed > 0 {
		r.reloads++
	}
	return changed, firstErr
}

// Watch polls Reload every interval until ctx is done — the hot-reload
// loop a daemon runs so retrained files go live without a restart.
func (r *Registry) Watch(ctx context.Context, interval time.Duration) {
	if r.dir == "" || interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.Reload() // a failed reload keeps serving the previous state
		}
	}
}

// Generations reports how many Reload passes changed state (for tests and
// metrics).
func (r *Registry) Generations() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.reloads
}

// Prediction is one served prediction with its error bounds: the training
// maximal relative error brackets the runtime estimate, mirroring how the
// paper reports model quality.
type Prediction struct {
	Workload string  `json:"workload"`
	Platform string  `json:"platform"`
	Model    string  `json:"model"`
	Layout   string  `json:"layout,omitempty"`
	H        float64 `json:"h"`
	M        float64 `json:"m"`
	C        float64 `json:"c"`
	Runtime  float64 `json:"runtime"`
	// Lo/Hi bracket Runtime by the training maximal relative error.
	Lo          float64 `json:"lo"`
	Hi          float64 `json:"hi"`
	MaxTrainErr float64 `json:"maxTrainErr"`
	GeoTrainErr float64 `json:"geoTrainErr"`
}

// Request addresses one prediction: a pair, a model (empty = mosmodel),
// and either explicit (H, M, C) inputs or a training-layout name.
type Request struct {
	Workload, Platform, Model string
	// Layout, when non-empty, resolves (H, M, C) from the pair's stored
	// training sample of that name (including "1GB").
	Layout  string
	H, M, C float64
}

// DefaultModel is served when a request names none.
const DefaultModel = "mosmodel"

// Predict evaluates one request under a read lock.
func (r *Registry) Predict(req Request) (Prediction, error) {
	out, err := r.PredictBatch([]Request{req})
	if err != nil {
		return Prediction{}, err
	}
	if out[0].Err != nil {
		return Prediction{}, out[0].Err
	}
	return out[0].Prediction, nil
}

// Outcome pairs one batched request's prediction with its error.
type Outcome struct {
	Prediction Prediction
	Err        error
}

// PredictBatch evaluates many requests under a single read-lock
// acquisition — the serving layer's request batcher feeds it whole batches
// so the prediction hot path touches the lock once per batch, not once per
// request. Per-request failures land in the matching Outcome; the error
// return is reserved for registry-wide failures.
func (r *Registry) PredictBatch(reqs []Request) ([]Outcome, error) {
	out := make([]Outcome, len(reqs))
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i, req := range reqs {
		out[i] = r.predictLocked(req)
	}
	return out, nil
}

// predictLocked evaluates one request; callers hold (at least) the read
// lock.
func (r *Registry) predictLocked(req Request) Outcome {
	pair, ok := r.pairs[key(req.Workload, req.Platform)]
	if !ok {
		return Outcome{Err: fmt.Errorf("%w: %s", ErrUnknownPair, key(req.Workload, req.Platform))}
	}
	name := req.Model
	if name == "" {
		name = DefaultModel
	}
	tm, ok := pair.Models[name]
	if !ok {
		return Outcome{Err: fmt.Errorf("%w: %s for %s", ErrUnknownModel, name, key(req.Workload, req.Platform))}
	}
	h, m, c := req.H, req.M, req.C
	if req.Layout != "" {
		s, ok := pair.sample(req.Layout)
		if !ok {
			return Outcome{Err: fmt.Errorf("%w: %q for %s", ErrUnknownLayout, req.Layout, key(req.Workload, req.Platform))}
		}
		h, m, c = s.H, s.M, s.C
	}
	rt := tm.Model.Predict(h, m, c)
	return Outcome{Prediction: Prediction{
		Workload: pair.Workload, Platform: pair.Platform, Model: name,
		Layout: req.Layout, H: h, M: m, C: c,
		Runtime:     rt,
		Lo:          rt * (1 - tm.MaxTrainErr),
		Hi:          rt * (1 + tm.MaxTrainErr),
		MaxTrainErr: tm.MaxTrainErr,
		GeoTrainErr: tm.GeoTrainErr,
	}}
}

// sample resolves a layout name to its training sample.
func (p *Pair) sample(layout string) (pmu.Sample, bool) {
	for _, s := range p.Samples {
		if s.Layout == layout {
			return s, true
		}
	}
	if p.Sample1G.Layout == layout {
		return p.Sample1G, true
	}
	return pmu.Sample{}, false
}

// PairInfo summarizes one stored pair for the listing endpoint.
type PairInfo struct {
	Workload     string             `json:"workload"`
	Platform     string             `json:"platform"`
	TLBSensitive bool               `json:"tlbSensitive"`
	Samples      int                `json:"samples"`
	Layouts      []string           `json:"layouts"`
	Models       map[string]float64 `json:"models"` // name → max training error
}

// Pairs lists every stored pair, sorted by key, for /v1/models.
func (r *Registry) Pairs() []PairInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]PairInfo, 0, len(r.pairs))
	for _, p := range r.pairs {
		info := PairInfo{
			Workload:     p.Workload,
			Platform:     p.Platform,
			TLBSensitive: p.TLBSensitive,
			Samples:      len(p.Samples),
			Models:       make(map[string]float64, len(p.Models)),
		}
		for _, s := range p.Samples {
			info.Layouts = append(info.Layouts, s.Layout)
		}
		if p.Sample1G.Layout != "" {
			info.Layouts = append(info.Layouts, p.Sample1G.Layout)
		}
		for name, tm := range p.Models {
			info.Models[name] = tm.MaxTrainErr
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		return key(out[i].Workload, out[i].Platform) < key(out[j].Workload, out[j].Platform)
	})
	return out
}

// Len reports the stored pair count (a metrics gauge).
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.pairs)
}

// writeFileAtomic writes via a same-directory temp file + rename so a
// crashed daemon never leaves a truncated registry file.
func writeFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, perm); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// fnv1aBytes hashes file content with 64-bit FNV-1a.
func fnv1aBytes(b []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// fnv1a hashes a string with 64-bit FNV-1a.
func fnv1a(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
