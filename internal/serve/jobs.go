package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mosaic/internal/cluster"
	"mosaic/internal/experiment"
	"mosaic/internal/plan"
	"mosaic/internal/pmu"
	"mosaic/internal/sim"
)

// Async sweep jobs: a measurement sweep takes seconds to hours, so the API
// accepts it as a job, runs it on a bounded worker pool reusing the
// simulation-engine layer, and lets clients poll for progress and results.
// Identical specs share results through a content-addressed cache — the
// replay pipeline is deterministic, so a (workload, platform, protocol,
// sampling) tuple fully determines its counters.

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// SamplingSpec selects sampled replay for a job. The zero value means
// exact replay; Default true applies sim.DefaultSampling.
type SamplingSpec struct {
	Default     bool `json:"default,omitempty"`
	Period      int  `json:"period,omitempty"`
	MeasureLen  int  `json:"measureLen,omitempty"`
	WarmupLen   int  `json:"warmupLen,omitempty"`
	PrologueLen int  `json:"prologueLen,omitempty"`
}

func (s SamplingSpec) toSim() sim.Sampling {
	if s.Default {
		return sim.DefaultSampling
	}
	return sim.Sampling{
		Period:      s.Period,
		MeasureLen:  s.MeasureLen,
		WarmupLen:   s.WarmupLen,
		PrologueLen: s.PrologueLen,
	}
}

// AdaptiveSpec tunes mode "adaptive": the active-learning planner that
// probes the whole protocol cheaply and spends exact-measurement budget
// where model uncertainty concentrates (internal/plan).
type AdaptiveSpec struct {
	// ErrorTarget stops the planner once the cross-validated predicted
	// max relative error reaches it (0 = budget-driven).
	ErrorTarget float64 `json:"errorTarget,omitempty"`
	// Budget bounds exact layout measurements (0 = planner default,
	// one fifth of the protocol).
	Budget int `json:"budget,omitempty"`
	// Seed overrides the pair-derived deterministic selection seed.
	Seed int64 `json:"seed,omitempty"`
}

// JobSpec describes one sweep: measure a workload on a platform under a
// layout protocol, optionally with sampled replay, optionally training
// models into the registry afterwards.
type JobSpec struct {
	Workload string       `json:"workload"`
	Platform string       `json:"platform"`
	Proto    string       `json:"proto,omitempty"` // "quick" | "standard" | "extended" (default standard)
	Sampling SamplingSpec `json:"sampling,omitempty"`
	// Mode selects the sweep strategy: "" or "sweep" measures the full
	// protocol at one fidelity; "adaptive" runs the active-learning
	// planner. In adaptive mode Sampling configures the probe fidelity
	// (default: the planner's aggressive probe plan).
	Mode string `json:"mode,omitempty"`
	// Adaptive tunes mode "adaptive"; ignored otherwise.
	Adaptive *AdaptiveSpec `json:"adaptive,omitempty"`
	// Train, when true, fits the registry models on the collected dataset
	// and installs them for /v1/predict.
	Train bool `json:"train,omitempty"`
}

// mode canonicalizes the wire mode name.
func (s JobSpec) mode() (string, error) {
	switch s.Mode {
	case "", "sweep":
		return "sweep", nil
	case "adaptive":
		return "adaptive", nil
	}
	return "", fmt.Errorf("unknown mode %q (want sweep or adaptive)", s.Mode)
}

// proto maps the wire name to the protocol enum.
func (s JobSpec) proto() (experiment.Protocol, error) {
	switch s.Proto {
	case "", "standard":
		return experiment.Standard, nil
	case "quick":
		return experiment.Quick, nil
	case "extended":
		return experiment.Extended, nil
	}
	return 0, fmt.Errorf("unknown proto %q (want quick, standard, or extended)", s.Proto)
}

// Hash content-addresses the spec for the result cache. Train is excluded:
// it is a side effect, not part of the measured result.
func (s JobSpec) Hash() string {
	canon := s
	canon.Train = false
	if canon.Proto == "" {
		canon.Proto = "standard"
	}
	// Mode "sweep" canonicalizes to "" so pre-mode specs keep their
	// hashes; adaptive specs normalize a nil tuning block to its zero
	// value (same planner defaults ⇒ same deterministic result).
	if canon.Mode == "sweep" {
		canon.Mode = ""
	}
	if canon.Mode == "" {
		canon.Adaptive = nil
	} else if canon.Adaptive == nil {
		canon.Adaptive = &AdaptiveSpec{}
	}
	if canon.Sampling.Default {
		d := sim.DefaultSampling
		canon.Sampling = SamplingSpec{
			Period: d.Period, MeasureLen: d.MeasureLen,
			WarmupLen: d.WarmupLen, PrologueLen: d.PrologueLen,
		}
	}
	raw, _ := json.Marshal(canon) // struct of strings/ints/bools cannot fail
	var h uint64 = 14695981039346656037
	for _, b := range raw {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x", h)
}

// AdaptiveResult summarizes a planned sweep: how the budget was spent
// and what predicted accuracy it bought. Curve is the full
// error-vs-budget trajectory, one step per planner round.
type AdaptiveResult struct {
	Promotions       int         `json:"promotions"`
	PredictedMaxErr  float64     `json:"predictedMaxErr"`
	ProbeAccesses    uint64      `json:"probeAccesses"`
	ExactAccesses    uint64      `json:"exactAccesses"`
	CostAccesses     uint64      `json:"costAccesses"`
	FullCostAccesses uint64      `json:"fullCostAccesses"`
	CostRatio        float64     `json:"costRatio"`
	Stopped          string      `json:"stopped"`
	Curve            []plan.Step `json:"curve"`
}

// JobResult is a finished sweep's dataset in API form.
type JobResult struct {
	Workload         string       `json:"workload"`
	Platform         string       `json:"platform"`
	TLBSensitive     bool         `json:"tlbSensitive"`
	Samples          []pmu.Sample `json:"samples"`
	Sample1G         pmu.Sample   `json:"sample1G"`
	MeasuredAccesses uint64       `json:"measuredAccesses,omitempty"`
	TotalAccesses    uint64       `json:"totalAccesses,omitempty"`
	// Adaptive is set for mode "adaptive" jobs.
	Adaptive *AdaptiveResult `json:"adaptive,omitempty"`
}

// resultFromDataset converts the pipeline's dataset.
func resultFromDataset(ds *experiment.Dataset) *JobResult {
	return &JobResult{
		Workload:         ds.Workload,
		Platform:         ds.Platform,
		TLBSensitive:     ds.TLBSensitive,
		Samples:          ds.Samples,
		Sample1G:         ds.Sample1G,
		MeasuredAccesses: ds.MeasuredAccesses,
		TotalAccesses:    ds.TotalAccesses,
	}
}

// JobProgress is the live view of a running job. For adaptive jobs,
// Curve streams the planner's error-vs-budget trajectory as rounds
// complete, so pollers watch predicted error fall against spend.
type JobProgress struct {
	Stage   string      `json:"stage,omitempty"`
	Done    int         `json:"done"`
	Total   int         `json:"total"`
	ETA     string      `json:"eta,omitempty"`
	Percent float64     `json:"percent"`
	Curve   []plan.Step `json:"curve,omitempty"`
}

// StageTimeView is one pipeline stage's aggregate wall time for the job.
type StageTimeView struct {
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
}

// Job is one tracked sweep.
type Job struct {
	ID      string   `json:"id"`
	Spec    JobSpec  `json:"spec"`
	State   JobState `json:"state"`
	Created string   `json:"created"`

	Progress   JobProgress     `json:"progress"`
	StageTimes []StageTimeView `json:"stageTimes,omitempty"`
	Error      string          `json:"error,omitempty"`
	CacheHit   bool            `json:"cacheHit,omitempty"`

	result *JobResult
	cancel context.CancelFunc
	ctx    context.Context
}

// ErrQueueFull reports a full job queue; the HTTP layer maps it to 429.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrUnknownJob reports an unknown job ID; mapped to 404.
var ErrUnknownJob = errors.New("serve: unknown job")

// JobExecutor runs one job's sweep. The production executor builds an
// experiment pipeline; tests inject stubs. onCurve, non-nil, receives
// adaptive planner steps as they happen (sweep-mode executions never
// call it).
type JobExecutor func(ctx context.Context, spec JobSpec, onProgress func(sim.Progress), onCurve func(plan.Step)) (*JobResult, []StageTimeView, error)

// JobManager owns the queue, worker pool, job table, and result cache.
type JobManager struct {
	run      JobExecutor
	queue    chan *Job
	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // creation order, for listing
	cache    map[string]*JobResult
	seq      uint64
	running  int
	baseCtx  context.Context
	stopBase context.CancelFunc
	wg       sync.WaitGroup
	clock    func() time.Time

	// saturation windows observed per-job wall times; RetryAfter derives
	// overflow hints from it instead of a constant.
	saturation cluster.Saturation
	workers    int
	// fleetCapacity, when set, reports the cluster's live shard capacity
	// so a fleet-backed deployment advertises shorter retry hints.
	fleetCapacity func() int

	// Metrics, all optional (nil-safe via setup in NewJobManager).
	jobsTotal   *CounterVec // label: terminal state
	cacheHits   *Counter
	cacheLookup *Counter
	jobSeconds  *Histogram
}

// JobManagerConfig sizes the manager.
type JobManagerConfig struct {
	// Workers bounds concurrently running jobs (min 1).
	Workers int
	// QueueDepth bounds jobs waiting to run; a full queue rejects with
	// ErrQueueFull (min 1).
	QueueDepth int
	// Run executes one job.
	Run JobExecutor
	// Metrics, when set, receives job counters and latency histograms.
	Metrics *Metrics
	// FleetCapacity, when set, reports the distributed fabric's live
	// shard capacity for RetryAfter's drain-rate estimate.
	FleetCapacity func() int
}

// NewJobManager starts the worker pool.
func NewJobManager(cfg JobManagerConfig) *JobManager {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &JobManager{
		run:           cfg.Run,
		queue:         make(chan *Job, cfg.QueueDepth),
		jobs:          make(map[string]*Job),
		cache:         make(map[string]*JobResult),
		baseCtx:       ctx,
		stopBase:      cancel,
		clock:         time.Now,
		workers:       cfg.Workers,
		fleetCapacity: cfg.FleetCapacity,
	}
	mx := cfg.Metrics
	if mx == nil {
		mx = NewMetrics() // throwaway: keeps the hot path nil-free
	}
	m.jobsTotal = mx.NewCounterVec("mosd_jobs_total", "Jobs by terminal state.", "state")
	m.cacheHits = mx.NewCounter("mosd_job_cache_hits_total", "Job submissions served from the result cache.")
	m.cacheLookup = mx.NewCounter("mosd_job_cache_lookups_total", "Job submissions checked against the result cache.")
	m.jobSeconds = mx.NewHistogram("mosd_job_duration_seconds", "Wall time of executed (non-cached) jobs.", DefaultLatencyBuckets)
	if cfg.Metrics != nil {
		cfg.Metrics.NewGaugeFunc("mosd_job_queue_depth", "Jobs waiting for a worker.", func() float64 {
			return float64(len(m.queue))
		})
		cfg.Metrics.NewGaugeFunc("mosd_jobs_running", "Jobs currently executing.", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.running)
		})
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// QueueDepth reports jobs waiting for a worker.
func (m *JobManager) QueueDepth() int { return len(m.queue) }

// RetryAfter derives the 429 hint from the current backlog and the
// windowed mean job wall time (see cluster.Saturation): the expected time
// for the backlog — queued plus running jobs — to drain one slot at the
// deployment's capacity. Capacity is the local worker pool, or the
// fabric's live shard capacity when that is larger. fallback answers
// before the first job completes.
func (m *JobManager) RetryAfter(fallback time.Duration) time.Duration {
	capacity := m.workers
	if m.fleetCapacity != nil {
		if c := m.fleetCapacity(); c > capacity {
			capacity = c
		}
	}
	backlog := m.QueueDepth() + m.Running()
	return m.saturation.RetryAfter(backlog, capacity, fallback)
}

// Submit validates the spec, consults the result cache, and enqueues. A
// cached spec completes instantly. Returns the job (done or queued) — or
// ErrQueueFull when the queue cannot take it.
func (m *JobManager) Submit(spec JobSpec) (*Job, error) {
	if _, err := spec.proto(); err != nil {
		return nil, err
	}
	if _, err := spec.mode(); err != nil {
		return nil, err
	}
	hash := spec.Hash()

	m.mu.Lock()
	m.seq++
	job := &Job{
		ID:      fmt.Sprintf("job-%06d", m.seq),
		Spec:    spec,
		Created: m.clock().UTC().Format(time.RFC3339Nano),
	}
	m.cacheLookup.Inc()
	if res, ok := m.cache[hash]; ok && !spec.Train {
		// Training is a side effect on the registry, so Train jobs always
		// execute; pure measurement jobs ride the cache.
		m.cacheHits.Inc()
		job.State = JobDone
		job.CacheHit = true
		job.result = res
		job.Progress = JobProgress{Done: 1, Total: 1, Percent: 100}
		m.jobs[job.ID] = job
		m.order = append(m.order, job.ID)
		m.mu.Unlock()
		m.jobsTotal.Inc(string(JobDone))
		return job.snapshot(), nil
	}
	job.State = JobQueued
	ctx, cancel := context.WithCancel(m.baseCtx)
	job.cancel = cancel
	job.ctx = ctx
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	// Snapshot before the enqueue: the moment the job hits the queue a
	// worker may start mutating it, so reading it afterwards would race.
	snap := job.snapshot()
	m.mu.Unlock()

	select {
	case m.queue <- job:
		return snap, nil
	default:
		m.mu.Lock()
		delete(m.jobs, job.ID)
		m.order = m.order[:len(m.order)-1]
		m.mu.Unlock()
		cancel()
		return nil, ErrQueueFull
	}
}

// worker drains the queue until the manager stops.
func (m *JobManager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.execute(job)
	}
}

// execute runs one job to a terminal state.
func (m *JobManager) execute(job *Job) {
	ctx := job.ctx
	m.mu.Lock()
	if job.State != JobQueued { // canceled while queued
		m.mu.Unlock()
		return
	}
	job.State = JobRunning
	m.running++
	m.mu.Unlock()

	start := m.clock()
	onProgress := func(p sim.Progress) {
		m.mu.Lock()
		job.Progress = JobProgress{
			Stage: p.Stage,
			Done:  p.Done,
			Total: p.Total,
		}
		if p.Total > 0 {
			job.Progress.Percent = 100 * float64(p.Done) / float64(p.Total)
		}
		if p.ETA > 0 {
			job.Progress.ETA = p.ETA.Round(time.Second).String()
		}
		m.mu.Unlock()
	}
	onCurve := func(s plan.Step) {
		m.mu.Lock()
		job.Progress.Curve = append(job.Progress.Curve, s)
		m.mu.Unlock()
	}
	res, stages, err := m.run(ctx, job.Spec, onProgress, onCurve)
	elapsed := m.clock().Sub(start)
	m.jobSeconds.Observe(elapsed)
	m.saturation.Observe(elapsed)

	m.mu.Lock()
	m.running--
	job.StageTimes = stages
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || ctx.Err() != nil):
		job.State = JobCanceled
		job.Error = "canceled"
	case err != nil:
		job.State = JobFailed
		job.Error = err.Error()
	default:
		job.State = JobDone
		job.result = res
		job.Progress.Percent = 100
		job.Progress.ETA = ""
		m.cache[job.Spec.Hash()] = res
	}
	state := job.State
	m.mu.Unlock()
	m.jobsTotal.Inc(string(state))
}

// Get returns a snapshot of one job.
func (m *JobManager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return job.snapshot(), nil
}

// Result returns a finished job's result, or (nil, nil) when the job
// exists but has not finished.
func (m *JobManager) Result(id string) (*JobResult, *Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return job.result, job.snapshot(), nil
}

// Cancel cancels a queued or running job. Queued jobs flip to canceled
// immediately; running jobs stop claiming pipeline work (in-flight replays
// finish) and reach canceled when their executor returns.
func (m *JobManager) Cancel(id string) (*Job, error) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if job.State == JobQueued {
		job.State = JobCanceled
		job.Error = "canceled"
		m.jobsTotal.Inc(string(JobCanceled))
	}
	cancel := job.cancel
	snap := job.snapshot()
	m.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return snap, nil
}

// List returns snapshots of every job, oldest first.
func (m *JobManager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		if job, ok := m.jobs[id]; ok {
			out = append(out, job.snapshot())
		}
	}
	return out
}

// Running reports currently executing jobs.
func (m *JobManager) Running() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.running
}

// Drain stops accepting queue work and waits — up to the context's
// deadline — for running jobs to finish. Queued-but-unstarted jobs are
// marked canceled. It is the graceful-shutdown path: SIGTERM drains, then
// the process exits 0.
func (m *JobManager) Drain(ctx context.Context) error {
	close(m.queue) // workers exit once the backlog drains
	// Flip queued jobs to canceled so pollers see a terminal state; the
	// workers skip them (execute checks the state before running).
	m.mu.Lock()
	for _, id := range m.order {
		job := m.jobs[id]
		if job.State == JobQueued {
			job.State = JobCanceled
			job.Error = "canceled: server shutting down"
			m.jobsTotal.Inc(string(JobCanceled))
		}
	}
	m.mu.Unlock()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.stopBase() // deadline passed: cancel in-flight jobs too
		<-done
		return ctx.Err()
	}
}

// snapshot deep-copies the JSON-visible fields under the caller's lock.
func (j *Job) snapshot() *Job {
	c := *j
	c.cancel = nil
	c.ctx = nil
	if j.StageTimes != nil {
		c.StageTimes = append([]StageTimeView{}, j.StageTimes...)
	}
	if j.Progress.Curve != nil {
		c.Progress.Curve = append([]plan.Step{}, j.Progress.Curve...)
	}
	return &c
}

// stageViews converts pipeline timing to the API form, dropping untouched
// stages.
func stageViews(times []sim.StageTime) []StageTimeView {
	out := make([]StageTimeView, 0, len(times))
	for _, st := range times {
		if st.Count == 0 {
			continue
		}
		out = append(out, StageTimeView{
			Stage:   st.Stage.String(),
			Seconds: st.Total.Seconds(),
			Count:   st.Count,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}
