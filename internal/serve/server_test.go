package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mosaic/internal/arch"
	"mosaic/internal/cluster"
	"mosaic/internal/experiment"
	"mosaic/internal/plan"
	"mosaic/internal/pmu"
	"mosaic/internal/serve/registry"
	"mosaic/internal/sim"
	"mosaic/internal/workloads"
)

// trainedRegistry builds an in-memory registry with one synthetic pair.
func trainedRegistry(t testing.TB) *registry.Registry {
	t.Helper()
	reg, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	samples := []pmu.Sample{
		{Layout: "4KB", H: 9e5, M: 4e5, C: 2.4e7, R: 9.1e7},
		{Layout: "2MB", H: 1e5, M: 2e4, C: 1.1e6, R: 6.6e7},
	}
	for i := 0; i < 16; i++ {
		f := float64(i) / 15
		samples = append(samples, pmu.Sample{
			Layout: fmt.Sprintf("grow-%d", i),
			H:      1e5 + f*8e5,
			M:      2e4 + f*3.8e5,
			C:      1.1e6 + f*2.29e7 + f*f*1e6,
			R:      6.6e7 + f*2.4e7 + f*f*1.1e6,
		})
	}
	ds := &experiment.Dataset{
		Workload: "gups/8GB", Platform: "SandyBridge",
		Samples:  samples,
		Sample1G: pmu.Sample{Layout: "1GB", H: 1e4, M: 5e3, C: 3e5, R: 6.5e7},
	}
	if err := reg.Train(ds, nil); err != nil {
		t.Fatal(err)
	}
	return reg
}

// stubExecutor returns canned results after an optional delay, honoring
// cancellation.
func stubExecutor(delay time.Duration) JobExecutor {
	return func(ctx context.Context, spec JobSpec, onProgress func(sim.Progress), _ func(plan.Step)) (*JobResult, []StageTimeView, error) {
		if onProgress != nil {
			onProgress(sim.Progress{Stage: "replay", Done: 1, Total: 2})
		}
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
		}
		if onProgress != nil {
			onProgress(sim.Progress{Stage: "replay", Done: 2, Total: 2})
		}
		return &JobResult{
			Workload: spec.Workload, Platform: spec.Platform,
			Samples: []pmu.Sample{{Layout: "4KB", H: 1, M: 2, C: 3, R: 4}},
		}, []StageTimeView{{Stage: "replay", Seconds: delay.Seconds(), Count: 2}}, nil
	}
}

func newTestServer(t testing.TB, cfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = trainedRegistry(t)
	}
	s := NewServer(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t testing.TB, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t testing.TB, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

// TestPredictEndpoint: the happy path plus the error-mapping table.
func TestPredictEndpoint(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})

	resp, body := postJSON(t, ts.URL+"/v1/predict",
		`{"workload":"gups/8GB","platform":"SandyBridge","h":9e5,"m":4e5,"c":2.4e7}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", resp.StatusCode, body)
	}
	var pred registry.Prediction
	if err := json.Unmarshal(body, &pred); err != nil {
		t.Fatal(err)
	}
	if pred.Model != "mosmodel" || pred.Runtime <= 0 || !(pred.Lo <= pred.Runtime && pred.Runtime <= pred.Hi) {
		t.Errorf("prediction %+v", pred)
	}

	// Layout-name input.
	resp, body = postJSON(t, ts.URL+"/v1/predict",
		`{"workload":"gups/8GB","platform":"SandyBridge","model":"poly1","layout":"2MB"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("layout predict: %d %s", resp.StatusCode, body)
	}

	cases := []struct {
		body string
		want int
	}{
		{`{"workload":"nope","platform":"SandyBridge","layout":"4KB"}`, 404},
		{`{"workload":"gups/8GB","platform":"SandyBridge","model":"nonesuch","layout":"4KB"}`, 404},
		{`{"workload":"gups/8GB","platform":"SandyBridge","layout":"512KB"}`, 404},
		{`{"workload":"gups/8GB","platform":"SandyBridge"}`, 400},                                  // no inputs
		{`{"workload":"gups/8GB","platform":"SandyBridge","h":1}`, 400},                            // partial inputs
		{`{"workload":"gups/8GB","platform":"SandyBridge","h":1,"m":2,"c":3,"layout":"4KB"}`, 400}, // both
		{`{"platform":"SandyBridge","layout":"4KB"}`, 400},                                         // no workload
		{`{"workload":"gups/8GB","platform":"SandyBridge","h":-1,"m":2,"c":3}`, 400},               // negative
		{`{"workload":"gups/8GB","platform":"SandyBridge","h":1e999,"m":2,"c":3}`, 400},            // overflows to Inf
		{`{"workload":"gups/8GB","platform":"SandyBridge","bogus":true,"layout":"4KB"}`, 400},      // unknown field
		{`not json`, 400},
		{`{"workload":"gups/8GB","platform":"SandyBridge","layout":"4KB"} extra`, 400}, // trailing data
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/predict", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("predict %s: got %d (%s), want %d", c.body, resp.StatusCode, body, c.want)
		}
	}
}

// TestJobLifecycleE2E: submit → poll → result over real HTTP.
func TestJobLifecycleE2E(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{Executor: stubExecutor(20 * time.Millisecond), JobWorkers: 1, JobQueueDepth: 4})

	resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"workload":"gups/8GB","platform":"SandyBridge","proto":"quick"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || (job.State != JobQueued && job.State != JobRunning) {
		t.Fatalf("submitted job %+v", job)
	}

	// Poll to done.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var polled Job
		if resp := getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &polled); resp.StatusCode != 200 {
			t.Fatalf("poll: %d", resp.StatusCode)
		}
		if polled.State == JobDone {
			if polled.Progress.Percent != 100 {
				t.Errorf("done job progress %+v", polled.Progress)
			}
			if len(polled.StageTimes) == 0 {
				t.Error("done job carries no stage times")
			}
			break
		}
		if polled.State == JobFailed || polled.State == JobCanceled {
			t.Fatalf("job reached %s: %s", polled.State, polled.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", polled.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	var res JobResult
	if resp := getJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/result", &res); resp.StatusCode != 200 {
		t.Fatalf("result: %d", resp.StatusCode)
	}
	if res.Workload != "gups/8GB" || len(res.Samples) != 1 {
		t.Errorf("result %+v", res)
	}

	// Identical spec → cache hit, completes instantly with 200.
	resp, body = postJSON(t, ts.URL+"/v1/jobs", `{"workload":"gups/8GB","platform":"SandyBridge","proto":"quick"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached submit: %d %s", resp.StatusCode, body)
	}
	var cached Job
	if err := json.Unmarshal(body, &cached); err != nil {
		t.Fatal(err)
	}
	if !cached.CacheHit || cached.State != JobDone {
		t.Errorf("second submit not a cache hit: %+v", cached)
	}

	// Unknown job → 404; unfinished result → covered by conflict test below.
	if resp := getJSON(t, ts.URL+"/v1/jobs/job-999999", nil); resp.StatusCode != 404 {
		t.Errorf("unknown job: %d", resp.StatusCode)
	}
}

// TestJobResultConflict: polling the result of an unfinished job is 409.
func TestJobResultConflict(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{Executor: stubExecutor(2 * time.Second), JobWorkers: 1, JobQueueDepth: 4})
	resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"workload":"w","platform":"p"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if resp := getJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/result", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("unfinished result: %d, want 409", resp.StatusCode)
	}
	// Cancel so cleanup doesn't wait out the delay.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != 200 {
		t.Fatalf("cancel: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}
}

// TestQueueOverflow: a full queue answers 429 with Retry-After; capacity
// opening up lets later submissions through.
func TestQueueOverflow(t *testing.T) {
	block := make(chan struct{})
	var exec JobExecutor = func(ctx context.Context, spec JobSpec, _ func(sim.Progress), _ func(plan.Step)) (*JobResult, []StageTimeView, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &JobResult{Workload: spec.Workload, Platform: spec.Platform}, nil, nil
	}
	_, ts := newTestServer(t, ServerConfig{Executor: exec, JobWorkers: 1, JobQueueDepth: 2, RetryAfter: 7 * time.Second})

	// Distinct specs defeat the result cache. 1 running + 2 queued fit.
	okCount, fullCount := 0, 0
	var retryAfter string
	for i := 0; i < 8; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/jobs", fmt.Sprintf(`{"workload":"w%d","platform":"p"}`, i))
		switch resp.StatusCode {
		case http.StatusAccepted:
			okCount++
		case http.StatusTooManyRequests:
			fullCount++
			retryAfter = resp.Header.Get("Retry-After")
		default:
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
	}
	if fullCount == 0 {
		t.Fatal("queue never overflowed")
	}
	if okCount < 3 {
		t.Errorf("only %d submissions accepted before overflow, want ≥3", okCount)
	}
	if retryAfter != "7" {
		t.Errorf("Retry-After = %q, want \"7\"", retryAfter)
	}
	close(block) // release the worker; cleanup drains the rest
}

// TestDrain: shutdown finishes running jobs, cancels queued ones, and
// Drain returns nil within the deadline.
func TestDrain(t *testing.T) {
	started := make(chan struct{}, 8)
	var finished atomic.Int64
	var exec JobExecutor = func(ctx context.Context, spec JobSpec, _ func(sim.Progress), _ func(plan.Step)) (*JobResult, []StageTimeView, error) {
		started <- struct{}{}
		time.Sleep(50 * time.Millisecond)
		finished.Add(1)
		return &JobResult{Workload: spec.Workload, Platform: spec.Platform}, nil, nil
	}
	reg := trainedRegistry(t)
	s := NewServer(ServerConfig{Registry: reg, Executor: exec, JobWorkers: 1, JobQueueDepth: 8})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// One job starts running; two more sit in the queue.
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", fmt.Sprintf(`{"workload":"w%d","platform":"p"}`, i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if finished.Load() < 1 {
		t.Error("running job was not allowed to finish")
	}
	// Readiness flipped before the drain.
	if resp := getJSON(t, ts.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after shutdown: %d, want 503", resp.StatusCode)
	}
	// Queued jobs reached a terminal canceled state.
	canceled := 0
	for _, j := range s.Jobs().List() {
		if j.State == JobCanceled {
			canceled++
		}
	}
	if canceled == 0 {
		t.Error("no queued job was marked canceled by the drain")
	}
}

// TestCancelRunningJob: DELETE on a running job propagates context
// cancellation into the executor and the job reaches canceled.
func TestCancelRunningJob(t *testing.T) {
	entered := make(chan struct{})
	var exec JobExecutor = func(ctx context.Context, spec JobSpec, _ func(sim.Progress), _ func(plan.Step)) (*JobResult, []StageTimeView, error) {
		close(entered)
		<-ctx.Done()
		return nil, nil, ctx.Err()
	}
	s, ts := newTestServer(t, ServerConfig{Executor: exec, JobWorkers: 1, JobQueueDepth: 4})
	resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"workload":"w","platform":"p"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	<-entered
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
	cresp, err := http.DefaultClient.Do(req)
	if err != nil || cresp.StatusCode != 200 {
		t.Fatalf("cancel: %v %v", err, cresp.StatusCode)
	}
	cresp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := s.Jobs().Get(job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == JobCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", got.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHealthMetricsEndpoints: /healthz, /readyz, and the /metrics catalog.
func TestHealthMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{
		Executor: stubExecutor(0),
		PoolIdle: func() int { return 3 },
	})
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != 200 {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
	var ready map[string]any
	if resp := getJSON(t, ts.URL+"/readyz", &ready); resp.StatusCode != 200 {
		t.Errorf("readyz: %d", resp.StatusCode)
	}
	// Generate some traffic so counters are nonzero.
	postJSON(t, ts.URL+"/v1/predict", `{"workload":"gups/8GB","platform":"SandyBridge","layout":"4KB"}`)
	postJSON(t, ts.URL+"/v1/jobs", `{"workload":"w","platform":"p"}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		"mosd_http_requests_total",
		"mosd_http_request_duration_seconds_bucket",
		"mosd_predict_duration_seconds_bucket",
		"mosd_job_queue_depth",
		"mosd_jobs_running",
		"mosd_job_cache_hits_total",
		"mosd_job_cache_lookups_total",
		"mosd_sim_pool_idle_engines 3",
		"mosd_registry_pairs 1",
		"mosd_predict_batches_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestPredictLoad is the acceptance load test: 64 concurrent clients
// hammering /v1/predict must see zero drops and a p99 under 50ms.
func TestPredictLoad(t *testing.T) {
	s, ts := newTestServer(t, ServerConfig{})
	const clients = 64
	const perClient = 50
	body := `{"workload":"gups/8GB","platform":"SandyBridge","h":9e5,"m":4e5,"c":2.4e7}`

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	var wg sync.WaitGroup
	var drops, non200 atomic.Int64
	latencies := make([][]time.Duration, clients)
	for i := 0; i < clients; i++ {
		latencies[i] = make([]time.Duration, 0, perClient)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				start := time.Now()
				resp, err := client.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
				if err != nil {
					drops.Add(1)
					continue
				}
				var pred registry.Prediction
				if resp.StatusCode != 200 {
					non200.Add(1)
				} else if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil || pred.Runtime <= 0 {
					non200.Add(1)
				}
				resp.Body.Close()
				latencies[i] = append(latencies[i], time.Since(start))
			}
		}(i)
	}
	wg.Wait()
	if drops.Load() != 0 || non200.Load() != 0 {
		t.Fatalf("%d drops, %d non-200s under load", drops.Load(), non200.Load())
	}
	all := make([]time.Duration, 0, clients*perClient)
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p99 := all[len(all)*99/100-1]
	t.Logf("load: %d requests, p50=%v p99=%v max=%v", len(all), all[len(all)/2], p99, all[len(all)-1])
	if p99 >= 50*time.Millisecond {
		t.Errorf("p99 latency %v, want < 50ms", p99)
	}
	// The batcher actually coalesced: fewer registry batches than requests.
	batches := s.batcher.batches.Value()
	items := s.batcher.items.Value()
	if items != uint64(clients*perClient) {
		t.Errorf("batched items %d, want %d", items, clients*perClient)
	}
	if batches >= items {
		t.Errorf("batcher never coalesced: %d batches for %d items", batches, items)
	}
}

// TestGoldenJobVsCollectAll: a real sweep job through the executor must
// produce samples bit-identical to a direct Runner.CollectAll — the serving
// layer adds transport, not noise.
func TestGoldenJobVsCollectAll(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline sweep")
	}
	w, err := workloads.ByName("gups/8GB")
	if err != nil {
		t.Fatal(err)
	}
	direct := experiment.NewRunner()
	direct.Proto = experiment.Quick
	dss, err := direct.CollectAll([]workloads.Workload{w}, []arch.Platform{arch.SandyBridge}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := dss[0]

	exec := &SweepExecutor{}
	res, stages, err := exec.Run(context.Background(), JobSpec{
		Workload: "gups/8GB", Platform: "SandyBridge", Proto: "quick",
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) == 0 {
		t.Error("executor reported no stage times")
	}
	if len(res.Samples) != len(want.Samples) {
		t.Fatalf("job produced %d samples, direct %d", len(res.Samples), len(want.Samples))
	}
	for i, s := range res.Samples {
		sw := want.Samples[i]
		if s.Layout != sw.Layout ||
			math.Float64bits(s.H) != math.Float64bits(sw.H) ||
			math.Float64bits(s.M) != math.Float64bits(sw.M) ||
			math.Float64bits(s.C) != math.Float64bits(sw.C) ||
			math.Float64bits(s.R) != math.Float64bits(sw.R) {
			t.Fatalf("sample %d differs: job %+v direct %+v", i, s, sw)
		}
	}
	if math.Float64bits(res.Sample1G.R) != math.Float64bits(want.Sample1G.R) {
		t.Errorf("1GB sample differs: %v vs %v", res.Sample1G.R, want.Sample1G.R)
	}
	if res.TLBSensitive != want.TLBSensitive {
		t.Errorf("TLBSensitive %v vs %v", res.TLBSensitive, want.TLBSensitive)
	}
}

// TestDistributedJobVsLocal: a sweep job routed through the cluster
// fabric (coordinator + one HTTP worker) produces samples bit-identical
// to the same job run locally — the serve-layer wiring of the fabric
// adds transport, not noise.
func TestDistributedJobVsLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline sweep")
	}
	traceDir := t.TempDir()
	spec := JobSpec{Workload: "gups/8GB", Platform: "SandyBridge", Proto: "quick"}

	local := &SweepExecutor{TraceDir: traceDir}
	want, _, err := local.Run(context.Background(), spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	co := cluster.NewCoordinator(cluster.CoordinatorConfig{LeaseTTL: 5 * time.Second, ShardLayouts: 3})
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		(&cluster.Worker{
			Name:     "w1",
			Client:   cluster.NewClient(ts.URL, ""),
			Exec:     &cluster.ExperimentExecutor{TraceDir: traceDir, Parallelism: 1},
			IdlePoll: 20 * time.Millisecond,
			Logf:     t.Logf,
		}).Run(ctx)
	}()
	defer func() {
		cancel()
		<-workerDone
	}()
	deadline := time.Now().Add(5 * time.Second)
	for co.LiveWorkers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(time.Millisecond)
	}

	var progressed atomic.Int64
	dist := &SweepExecutor{TraceDir: traceDir, Fabric: co}
	got, _, err := dist.Run(context.Background(), spec, func(p sim.Progress) {
		progressed.Add(1)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if progressed.Load() == 0 {
		t.Error("distributed run reported no progress")
	}
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("distributed job produced %d samples, local %d", len(got.Samples), len(want.Samples))
	}
	for i, s := range got.Samples {
		sw := want.Samples[i]
		if s.Layout != sw.Layout ||
			math.Float64bits(s.H) != math.Float64bits(sw.H) ||
			math.Float64bits(s.M) != math.Float64bits(sw.M) ||
			math.Float64bits(s.C) != math.Float64bits(sw.C) ||
			math.Float64bits(s.R) != math.Float64bits(sw.R) {
			t.Fatalf("sample %d differs: distributed %+v local %+v", i, s, sw)
		}
	}
	if math.Float64bits(got.Sample1G.R) != math.Float64bits(want.Sample1G.R) {
		t.Errorf("1GB sample differs: %v vs %v", got.Sample1G.R, want.Sample1G.R)
	}
	if got.TLBSensitive != want.TLBSensitive {
		t.Errorf("TLBSensitive %v vs %v", got.TLBSensitive, want.TLBSensitive)
	}
}

// TestSweepExecutorTrainServesPredict: a Train job installs models that
// /v1/predict then serves — the full train-then-serve loop on the real
// pipeline.
func TestSweepExecutorTrainServesPredict(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline sweep")
	}
	reg, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	exec := &SweepExecutor{Registry: reg}
	_, ts := newTestServer(t, ServerConfig{
		Registry: reg,
		Executor: exec.Run,
		PoolIdle: exec.PoolIdle,
	})
	resp, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"workload":"gups/8GB","platform":"SandyBridge","proto":"quick","train":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		var polled Job
		getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &polled)
		if polled.State == JobDone {
			break
		}
		if polled.State == JobFailed {
			t.Fatalf("job failed: %s", polled.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep job never finished")
		}
		time.Sleep(50 * time.Millisecond)
	}
	resp, body = postJSON(t, ts.URL+"/v1/predict",
		`{"workload":"gups/8GB","platform":"SandyBridge","layout":"4KB"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after training: %d %s", resp.StatusCode, body)
	}
	var pred registry.Prediction
	if err := json.Unmarshal(body, &pred); err != nil {
		t.Fatal(err)
	}
	if pred.Runtime <= 0 {
		t.Errorf("prediction %+v", pred)
	}
}

// TestJobSpecHash: the cache key canonicalizes equivalent specs and
// separates different ones.
func TestJobSpecHash(t *testing.T) {
	base := JobSpec{Workload: "w", Platform: "p"}
	if base.Hash() != (JobSpec{Workload: "w", Platform: "p", Proto: "standard"}).Hash() {
		t.Error("default proto and explicit standard hash differently")
	}
	d := sim.DefaultSampling
	if (JobSpec{Workload: "w", Platform: "p", Sampling: SamplingSpec{Default: true}}).Hash() !=
		(JobSpec{Workload: "w", Platform: "p", Sampling: SamplingSpec{
			Period: d.Period, MeasureLen: d.MeasureLen, WarmupLen: d.WarmupLen, PrologueLen: d.PrologueLen,
		}}).Hash() {
		t.Error("default sampling and its explicit expansion hash differently")
	}
	if base.Hash() != (JobSpec{Workload: "w", Platform: "p", Train: true}).Hash() {
		t.Error("Train changes the result-cache key")
	}
	distinct := []JobSpec{
		base,
		{Workload: "w2", Platform: "p"},
		{Workload: "w", Platform: "p2"},
		{Workload: "w", Platform: "p", Proto: "quick"},
		{Workload: "w", Platform: "p", Sampling: SamplingSpec{Period: 100, MeasureLen: 10}},
	}
	seen := map[string]int{}
	for i, s := range distinct {
		h := s.Hash()
		if j, dup := seen[h]; dup {
			t.Errorf("specs %d and %d collide: %+v vs %+v", i, j, distinct[i], distinct[j])
		}
		seen[h] = i
	}
}

// TestJobManagerGoldenCachedResultIsSameObject: cache hits return the
// original result, not a recomputation — a canary against drifting specs.
func TestJobManagerGoldenCachedResultIsSameObject(t *testing.T) {
	var runs atomic.Int64
	m := NewJobManager(JobManagerConfig{
		Workers: 1, QueueDepth: 4,
		Run: func(ctx context.Context, spec JobSpec, _ func(sim.Progress), _ func(plan.Step)) (*JobResult, []StageTimeView, error) {
			runs.Add(1)
			return &JobResult{Workload: spec.Workload}, nil, nil
		},
	})
	defer m.Drain(context.Background())
	j1, err := m.Submit(JobSpec{Workload: "w", Platform: "p"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, _ := m.Get(j1.ID)
		if got.State == JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never finished")
		}
		time.Sleep(time.Millisecond)
	}
	r1, _, _ := m.Result(j1.ID)
	j2, err := m.Submit(JobSpec{Workload: "w", Platform: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit {
		t.Fatal("identical spec missed the cache")
	}
	r2, _, _ := m.Result(j2.ID)
	if r1 != r2 {
		t.Error("cache hit returned a different result object")
	}
	if runs.Load() != 1 {
		t.Errorf("executor ran %d times, want 1", runs.Load())
	}
}

// TestRetryAfterDerivedFromSaturation: the 429 hint is queue depth times
// the observed per-job wall time divided by drain capacity — not a
// constant. Before any observation the configured fallback answers.
func TestRetryAfterDerivedFromSaturation(t *testing.T) {
	block := make(chan struct{})
	m := NewJobManager(JobManagerConfig{
		Workers: 1, QueueDepth: 4,
		Run: func(ctx context.Context, spec JobSpec, _ func(sim.Progress), _ func(plan.Step)) (*JobResult, []StageTimeView, error) {
			<-block
			return &JobResult{Workload: spec.Workload}, nil, nil
		},
	})
	defer func() {
		close(block)
		m.Drain(context.Background())
	}()

	// No completed job yet: the fallback is all we can say.
	if got := m.RetryAfter(10 * time.Second); got != 10*time.Second {
		t.Fatalf("RetryAfter before observations = %v, want the 10s fallback", got)
	}

	// Build a backlog of 3: one running, two queued.
	for i := 0; i < 3; i++ {
		if _, err := m.Submit(JobSpec{Workload: fmt.Sprintf("w%d", i), Platform: "p"}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Running() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("no job started running")
		}
		time.Sleep(time.Millisecond)
	}
	if got := m.QueueDepth(); got != 2 {
		t.Fatalf("queue depth = %d, want 2", got)
	}

	// Observed mean of 6s per job, one local worker: 3 × 6s ÷ 1 = 18s.
	for i := 0; i < 4; i++ {
		m.saturation.Observe(6 * time.Second)
	}
	if got := m.RetryAfter(10 * time.Second); got != 18*time.Second {
		t.Fatalf("RetryAfter = %v, want 18s (backlog 3 × 6s mean ÷ 1 worker)", got)
	}

	// A live fleet drains faster: capacity max(1, 3) → 3 × 6s ÷ 3 = 6s.
	m.fleetCapacity = func() int { return 3 }
	if got := m.RetryAfter(10 * time.Second); got != 6*time.Second {
		t.Fatalf("RetryAfter with fleet capacity 3 = %v, want 6s", got)
	}
}

// TestPanicRecovery: a panicking handler answers 500, and the daemon keeps
// serving.
func TestPanicRecovery(t *testing.T) {
	s, ts := newTestServer(t, ServerConfig{})
	s.mux.HandleFunc("GET /boom", func(w http.ResponseWriter, r *http.Request) { panic("boom") })
	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("panicking handler: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != 200 {
		t.Errorf("daemon dead after panic: %d", resp.StatusCode)
	}
}

// TestRegistryReloadServesNewPair: hot reload exposed through the API — a
// pair trained into the shared directory by another registry appears after
// Reload without restarting the server.
func TestRegistryReloadServesNewPair(t *testing.T) {
	dir := t.TempDir()
	servingReg, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ServerConfig{Registry: servingReg})
	body := `{"workload":"bt","platform":"Skylake","layout":"4KB"}`
	if resp, _ := postJSON(t, ts.URL+"/v1/predict", body); resp.StatusCode != 404 {
		t.Fatalf("pair served before training: %d", resp.StatusCode)
	}
	trainer, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	samples := []pmu.Sample{
		{Layout: "4KB", H: 9e5, M: 4e5, C: 2.4e7, R: 9.1e7},
		{Layout: "2MB", H: 1e5, M: 2e4, C: 1.1e6, R: 6.6e7},
	}
	for i := 0; i < 12; i++ {
		f := float64(i) / 11
		samples = append(samples, pmu.Sample{
			Layout: fmt.Sprintf("g%d", i),
			H:      1e5 + f*8e5, M: 2e4 + f*3.8e5, C: 1.1e6 + f*2.3e7, R: 6.6e7 + f*2.5e7,
		})
	}
	ds := &experiment.Dataset{Workload: "bt", Platform: "Skylake", Samples: samples,
		Sample1G: pmu.Sample{Layout: "1GB", H: 1e4, M: 5e3, C: 3e5, R: 6.5e7}}
	if err := trainer.Train(ds, []string{"mosmodel"}); err != nil {
		t.Fatal(err)
	}
	if n, err := servingReg.Reload(); err != nil || n != 1 {
		t.Fatalf("Reload = (%d, %v)", n, err)
	}
	if resp, b := postJSON(t, ts.URL+"/v1/predict", body); resp.StatusCode != 200 {
		t.Fatalf("pair not served after reload: %d %s", resp.StatusCode, b)
	}
}

// TestAdaptiveJobE2E: a mode-"adaptive" job through the real executor —
// the planner's error-vs-budget curve must stream into job progress,
// land in the result, and the content-addressed cache must serve an
// identical resubmission instantly.
func TestAdaptiveJobE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline sweep")
	}
	exec := &SweepExecutor{TraceDir: t.TempDir()}
	_, ts := newTestServer(t, ServerConfig{Executor: exec.Run, PoolIdle: exec.PoolIdle})

	spec := `{"workload":"gups/8GB","platform":"SandyBridge","proto":"quick","mode":"adaptive","adaptive":{"budget":2}}`
	resp, body := postJSON(t, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	var done Job
	for {
		getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &done)
		if done.State == JobDone {
			break
		}
		if done.State == JobFailed || done.State == JobCanceled {
			t.Fatalf("job reached %s: %s", done.State, done.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("adaptive job never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(done.Progress.Curve) == 0 {
		t.Error("finished adaptive job exposes no planner curve in progress")
	}

	var res JobResult
	if resp := getJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/result", &res); resp.StatusCode != 200 {
		t.Fatalf("result: %d", resp.StatusCode)
	}
	ad := res.Adaptive
	if ad == nil {
		t.Fatal("adaptive job result has no adaptive summary")
	}
	if len(ad.Curve) == 0 || len(ad.Curve) != len(done.Progress.Curve) {
		t.Errorf("result curve has %d steps, progress streamed %d", len(ad.Curve), len(done.Progress.Curve))
	}
	if ad.Promotions == 0 || ad.Promotions > 2+2 { // budget 2 + the 4KB/2MB anchors
		t.Errorf("promotions %d outside (0, budget+anchors]", ad.Promotions)
	}
	if ad.CostAccesses == 0 || ad.FullCostAccesses == 0 || ad.CostAccesses >= ad.FullCostAccesses {
		t.Errorf("cost accounting broken: spent %d of %d", ad.CostAccesses, ad.FullCostAccesses)
	}
	if ad.Stopped == "" {
		t.Error("no stop reason recorded")
	}
	if len(res.Samples) == 0 || res.MeasuredAccesses != ad.CostAccesses {
		t.Errorf("dataset: %d samples, measured %d want %d", len(res.Samples), res.MeasuredAccesses, ad.CostAccesses)
	}

	// Identical spec → result cache hit, completes instantly with 200.
	resp, body = postJSON(t, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d %s", resp.StatusCode, body)
	}
	var again Job
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.State != JobDone {
		t.Errorf("resubmitted adaptive spec missed the cache: hit=%v state=%s", again.CacheHit, again.State)
	}

	// Adaptive jobs and plain sweeps of the same pair hash apart.
	if (JobSpec{Workload: "gups/8GB", Platform: "SandyBridge", Proto: "quick"}).Hash() ==
		(JobSpec{Workload: "gups/8GB", Platform: "SandyBridge", Proto: "quick", Mode: "adaptive"}).Hash() {
		t.Error("adaptive and sweep specs share a hash")
	}
}

// TestAdaptiveJobCancel: canceling a running adaptive job reaches the
// canceled state — the planner honors context cancellation between
// measurement batches.
func TestAdaptiveJobCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline sweep")
	}
	exec := &SweepExecutor{TraceDir: t.TempDir(), Parallelism: 1}
	_, ts := newTestServer(t, ServerConfig{Executor: exec.Run})

	resp, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"workload":"spec06/mcf","platform":"Broadwell","mode":"adaptive"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != 200 {
		t.Fatalf("cancel: %v %d", err, resp.StatusCode)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var polled Job
		getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &polled)
		if polled.State == JobCanceled {
			break
		}
		if polled.State == JobDone || polled.State == JobFailed {
			t.Fatalf("canceled job reached %s", polled.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("cancellation never landed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
