package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"mosaic/internal/serve/registry"
)

// Wire types and strict decoding for the JSON API. Every request body is
// decoded with DisallowUnknownFields and explicitly validated: floats must
// be finite (encoding/json already rejects literal NaN/Inf tokens, but
// strings like "1e999" overflow and validation catches the rest), pointer
// fields distinguish absent from zero, and a body after the JSON value is
// an error. Malformed input is a 400, never a panic.

// maxBodyBytes bounds request bodies; specs and predict requests are tiny.
const maxBodyBytes = 1 << 20

// apiError is the uniform error envelope.
type apiError struct {
	Error string `json:"error"`
}

// decodeStrict decodes exactly one JSON value from r into v.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	// Trailing content after the value is malformed input, not a second
	// message.
	if dec.More() {
		return errors.New("invalid JSON: trailing data after request body")
	}
	return nil
}

// predictRequest is the /v1/predict body. H, M, C are pointers so "h": 0
// and a missing h are distinguishable — a layout name supplies the inputs
// when they are absent.
type predictRequest struct {
	Workload string   `json:"workload"`
	Platform string   `json:"platform"`
	Model    string   `json:"model,omitempty"`
	Layout   string   `json:"layout,omitempty"`
	H        *float64 `json:"h,omitempty"`
	M        *float64 `json:"m,omitempty"`
	C        *float64 `json:"c,omitempty"`
}

// validate maps the wire form to a registry request.
func (p *predictRequest) validate() (registry.Request, error) {
	var req registry.Request
	if p.Workload == "" {
		return req, errors.New("workload is required")
	}
	if p.Platform == "" {
		return req, errors.New("platform is required")
	}
	req.Workload, req.Platform, req.Model = p.Workload, p.Platform, p.Model
	explicit := p.H != nil || p.M != nil || p.C != nil
	switch {
	case p.Layout != "" && explicit:
		return req, errors.New("give either a layout name or explicit h/m/c inputs, not both")
	case p.Layout != "":
		req.Layout = p.Layout
		return req, nil
	case !explicit:
		return req, errors.New("either a layout name or h, m, and c inputs are required")
	}
	if p.H == nil || p.M == nil || p.C == nil {
		return req, errors.New("h, m, and c must all be given")
	}
	for name, v := range map[string]float64{"h": *p.H, "m": *p.M, "c": *p.C} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return req, fmt.Errorf("%s must be finite", name)
		}
		if v < 0 {
			return req, fmt.Errorf("%s must be non-negative", name)
		}
	}
	req.H, req.M, req.C = *p.H, *p.M, *p.C
	return req, nil
}

// jobRequest is the /v1/jobs body — the spec plus nothing else.
type jobRequest struct {
	Workload string        `json:"workload"`
	Platform string        `json:"platform"`
	Proto    string        `json:"proto,omitempty"`
	Sampling *SamplingSpec `json:"sampling,omitempty"`
	Mode     string        `json:"mode,omitempty"`
	Adaptive *AdaptiveSpec `json:"adaptive,omitempty"`
	Train    bool          `json:"train,omitempty"`
}

// validate maps the wire form to a job spec.
func (j *jobRequest) validate() (JobSpec, error) {
	var spec JobSpec
	if j.Workload == "" {
		return spec, errors.New("workload is required")
	}
	if j.Platform == "" {
		return spec, errors.New("platform is required")
	}
	spec.Workload, spec.Platform, spec.Proto, spec.Train = j.Workload, j.Platform, j.Proto, j.Train
	if _, err := spec.proto(); err != nil {
		return spec, err
	}
	spec.Mode = j.Mode
	mode, err := spec.mode()
	if err != nil {
		return spec, err
	}
	if j.Adaptive != nil {
		if mode != "adaptive" {
			return spec, errors.New("adaptive block requires mode adaptive")
		}
		a := *j.Adaptive
		if math.IsNaN(a.ErrorTarget) || math.IsInf(a.ErrorTarget, 0) {
			return spec, errors.New("adaptive.errorTarget must be finite")
		}
		if a.ErrorTarget < 0 || a.ErrorTarget >= 1 {
			return spec, errors.New("adaptive.errorTarget must be in [0, 1)")
		}
		if a.Budget < 0 {
			return spec, errors.New("adaptive.budget must be non-negative")
		}
		spec.Adaptive = &a
	}
	if j.Sampling != nil {
		s := *j.Sampling
		if s.Period < 0 || s.MeasureLen < 0 || s.WarmupLen < 0 || s.PrologueLen < 0 {
			return spec, errors.New("sampling parameters must be non-negative")
		}
		if s.Period > 0 && s.MeasureLen <= 0 {
			return spec, errors.New("sampling with a period needs a positive measureLen")
		}
		if s.Period > 0 && s.MeasureLen+s.WarmupLen > s.Period {
			return spec, errors.New("sampling measureLen+warmupLen must fit in the period")
		}
		if s.Default && (s.Period != 0 || s.MeasureLen != 0 || s.WarmupLen != 0 || s.PrologueLen != 0) {
			return spec, errors.New("sampling.default excludes explicit parameters")
		}
		spec.Sampling = s
	}
	return spec, nil
}
