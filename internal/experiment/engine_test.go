package experiment

import (
	"path/filepath"
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/cpu"
	"mosaic/internal/sim"
	"mosaic/internal/workloads"
)

// TestCollectCountersBitIdenticalAcrossParallelism is the engine layer's
// determinism contract at the dataset level: the full counter sets — not
// just the derived samples — must match bit for bit between a serial and a
// wide-parallel collection, because every replay runs on private (Reset)
// engine state over immutable shared translation state.
func TestCollectCountersBitIdenticalAcrossParallelism(t *testing.T) {
	w, err := workloads.ByName("gups/8GB")
	if err != nil {
		t.Fatal(err)
	}
	collect := func(par int) *Dataset {
		r := quickRunner()
		r.Parallelism = par
		ds, err := r.Collect(w, arch.SandyBridge)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	a := collect(1)
	b := collect(8)
	if len(a.Counters) != len(b.Counters) || len(a.Counters) == 0 {
		t.Fatalf("counter sets sized %d and %d", len(a.Counters), len(b.Counters))
	}
	for name, ca := range a.Counters {
		cb, ok := b.Counters[name]
		if !ok {
			t.Fatalf("layout %s missing from parallel run", name)
		}
		if ca != cb {
			t.Fatalf("layout %s counters differ:\nserial   %+v\nparallel %+v", name, ca, cb)
		}
	}
}

// TestCollectAllMatchesIsolatedCollects: a multi-pair sweep (where pairs
// share the scheduler, engine pool, and space cache) must reproduce each
// pair's counters exactly as an isolated single-pair collection does.
func TestCollectAllMatchesIsolatedCollects(t *testing.T) {
	gups, err := workloads.ByName("gups/8GB")
	if err != nil {
		t.Fatal(err)
	}
	mcf, err := workloads.ByName("spec06/mcf")
	if err != nil {
		t.Fatal(err)
	}
	ws := []workloads.Workload{gups, mcf}
	plats := []arch.Platform{arch.SandyBridge, arch.Haswell}

	sweep := quickRunner()
	sweep.Parallelism = 8
	dss, err := sweep.CollectAll(ws, plats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dss) != 4 {
		t.Fatalf("%d datasets, want 4", len(dss))
	}

	for _, ds := range dss {
		w, err := workloads.ByName(ds.Workload)
		if err != nil {
			t.Fatal(err)
		}
		plat, err := arch.ByName(ds.Platform)
		if err != nil {
			t.Fatal(err)
		}
		iso := quickRunner()
		iso.Parallelism = 1
		want, err := iso.Collect(w, plat)
		if err != nil {
			t.Fatal(err)
		}
		for name, wc := range want.Counters {
			if gc := ds.Counters[name]; gc != wc {
				t.Fatalf("%s: layout %s differs between sweep and isolated run:\nsweep    %+v\nisolated %+v",
					ds.Workload+"@"+ds.Platform, name, gc, wc)
			}
		}
	}
}

// TestCollectMatchesFreshBuildReference is the golden check for the whole
// staged pipeline: replaying each protocol layout with a from-scratch
// machine over a privately built address space — no pooling, no space
// sharing, no scheduler — must reproduce the sweep's counters bit for bit.
func TestCollectMatchesFreshBuildReference(t *testing.T) {
	w, err := workloads.ByName("gups/8GB")
	if err != nil {
		t.Fatal(err)
	}
	r := quickRunner()
	r.Parallelism = 8
	ds, err := r.Collect(w, arch.Haswell)
	if err != nil {
		t.Fatal(err)
	}

	wd, err := r.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, lay := range r.planLayouts(wd, arch.Haswell, w.Name()+"@"+arch.Haswell.Name) {
		space, err := sim.BuildSpace(physMem, lay.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := cpu.New(arch.Haswell.Scaled(), space)
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.Run(wd.Trace)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := ds.Counters[lay.Name]
		if !ok {
			t.Fatalf("layout %s missing from dataset", lay.Name)
		}
		if got != want {
			t.Fatalf("layout %s: pipeline diverged from fresh-build reference:\npipeline %+v\nfresh    %+v",
				lay.Name, got, want)
		}
	}
}

// TestCollectWindowedBitIdentical is the sweep-level golden check for
// parallel windowed replay: a K-windowed collection — cold (building its
// checkpoint cache) and warm (replaying in parallel from it) — must
// reproduce the unwindowed sweep's counters bit for bit. The warm pass also
// proves the cache actually hits: it must not add checkpoint files.
func TestCollectWindowedBitIdentical(t *testing.T) {
	w, err := workloads.ByName("gups/8GB")
	if err != nil {
		t.Fatal(err)
	}
	ref := quickRunner()
	ref.Parallelism = 4
	want, err := ref.Collect(w, arch.SandyBridge)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	collect := func() *Dataset {
		r := quickRunner()
		r.Parallelism = 4
		r.Windows = 4
		r.CheckpointDir = dir
		ds, err := r.Collect(w, arch.SandyBridge)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	check := func(label string, ds *Dataset) {
		t.Helper()
		if len(ds.Counters) != len(want.Counters) || len(want.Counters) == 0 {
			t.Fatalf("%s: counter sets sized %d and %d", label, len(ds.Counters), len(want.Counters))
		}
		for name, wc := range want.Counters {
			if gc := ds.Counters[name]; gc != wc {
				t.Fatalf("%s: layout %s differs from unwindowed sweep:\nwindowed   %+v\nunwindowed %+v",
					label, name, gc, wc)
			}
		}
	}
	check("cold", collect())
	files, err := filepath.Glob(filepath.Join(dir, "*.mosckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("cold windowed sweep saved no checkpoints")
	}
	check("warm", collect())
	after, err := filepath.Glob(filepath.Join(dir, "*.mosckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(files) {
		t.Fatalf("warm sweep changed the checkpoint cache: %d files, was %d", len(after), len(files))
	}
}
