package experiment

import (
	"os"
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/workloads"
)

func archSandyBridge() arch.Platform { return arch.SandyBridge }

func TestTraceCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := workloads.ByName("gups/8GB")
	if err != nil {
		t.Fatal(err)
	}

	r1 := NewRunner()
	r1.TraceDir = dir
	wd1, err := r1.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	traceFile, targetFile := r1.cachePaths(w.Name())
	for _, f := range []string{traceFile, targetFile} {
		if _, err := os.Stat(f); err != nil {
			t.Fatalf("cache file %s missing: %v", f, err)
		}
	}

	// A fresh runner must reload the identical trace and target.
	r2 := NewRunner()
	r2.TraceDir = dir
	wd2, err := r2.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	if wd2.Trace.Len() != wd1.Trace.Len() {
		t.Fatalf("cached trace length %d, want %d", wd2.Trace.Len(), wd1.Trace.Len())
	}
	for i := 0; i < wd1.Trace.Len(); i++ {
		if wd1.Trace.At(i) != wd2.Trace.At(i) {
			t.Fatal("cached trace differs from generated trace")
		}
	}
	if wd2.Target != wd1.Target {
		t.Fatalf("cached target %+v, want %+v", wd2.Target, wd1.Target)
	}
}

func TestTraceCacheCorruptionRegenerates(t *testing.T) {
	dir := t.TempDir()
	w, err := workloads.ByName("gups/8GB")
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner()
	r1.TraceDir = dir
	if _, err := r1.Prepare(w); err != nil {
		t.Fatal(err)
	}
	traceFile, _ := r1.cachePaths(w.Name())
	if err := os.WriteFile(traceFile, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner()
	r2.TraceDir = dir
	wd, err := r2.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	if wd.Trace.Len() == 0 {
		t.Fatal("regeneration after corruption failed")
	}
}

func TestNoTraceDirNoFiles(t *testing.T) {
	r := NewRunner()
	w, _ := workloads.ByName("gups/8GB")
	if _, err := r.Prepare(w); err != nil {
		t.Fatal(err)
	}
	// Nothing to assert on disk — just ensure cachePaths is inert.
	a, b := r.cachePaths(w.Name())
	if _, err := os.Stat(a); err == nil {
		t.Errorf("unexpected cache file %s", a)
	}
	_ = b
}

// Parallel replays must not perturb results: a serial and a parallel
// Collect of the same dataset are identical.
func TestParallelCollectMatchesSerial(t *testing.T) {
	w, err := workloads.ByName("gups/8GB")
	if err != nil {
		t.Fatal(err)
	}
	serial := NewRunner()
	serial.Proto = Quick
	serial.Parallelism = 1
	parallel := NewRunner()
	parallel.Proto = Quick
	parallel.Parallelism = 8

	a, err := serial.Collect(w, archSandyBridge())
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.Collect(w, archSandyBridge())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("sample counts differ")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a.Samples[i], b.Samples[i])
		}
	}
}

// TestTraceCachePartialFileRegenerates: a truncated MOSTRC02 cache file —
// the signature a pre-atomic-Save crash would have left — must be rejected
// at load and transparently regenerated, reproducing the original trace.
func TestTraceCachePartialFileRegenerates(t *testing.T) {
	dir := t.TempDir()
	w, err := workloads.ByName("gups/8GB")
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner()
	r1.TraceDir = dir
	wd1, err := r1.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	traceFile, _ := r1.cachePaths(w.Name())
	full, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the valid magic and header; cut the block stream mid-payload.
	if err := os.WriteFile(traceFile, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := NewRunner()
	r2.TraceDir = dir
	wd2, err := r2.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	if wd2.Trace.Len() != wd1.Trace.Len() {
		t.Fatalf("regenerated trace has %d accesses, want %d", wd2.Trace.Len(), wd1.Trace.Len())
	}
	// The regenerated file must have replaced the poisoned one on disk.
	healed, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(healed) == len(full)/2 {
		t.Fatal("truncated cache file was left in place")
	}
}
