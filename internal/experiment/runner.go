// Package experiment orchestrates the paper's measurement pipeline
// (§VI): generate each workload's trace once through the allocation stack,
// build the 54-layout protocol from a simulated-PEBS miss profile, replay
// the trace on each platform under each layout, and evaluate all nine
// runtime models on the resulting samples.
//
// Measurement runs as a staged pipeline on the simulation-engine layer
// (internal/sim): prepare (trace generation, once per workload) → plan
// (miss profile + layout protocol, once per workload-platform pair) →
// space (address-space construction, once per distinct layout
// configuration, shared read-only across platforms) → replay (pooled
// engines over a sweep-wide worker pool).
package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"mosaic/internal/arch"
	"mosaic/internal/ckpt"
	"mosaic/internal/layout"
	"mosaic/internal/libc"
	"mosaic/internal/mem"
	"mosaic/internal/mosalloc"
	"mosaic/internal/partialsim"
	"mosaic/internal/pmu"
	"mosaic/internal/sim"
	"mosaic/internal/trace"
	"mosaic/internal/workloads"
)

// physMem is the simulated physical memory per replay process: generous,
// since 1GB-page layouts round pools up to 1GB each.
const physMem = 1 << 36

// Protocol selects how many layouts Collect measures.
type Protocol int

// Protocols.
const (
	// Standard is the paper's 54-layout protocol (§VI-B).
	Standard Protocol = iota
	// Quick uses only the 9 growing-window layouts — for tests and smoke
	// runs.
	Quick
	// Extended uses ~102 layouts, the larger sample sets the paper needed
	// for cross-validation to converge (§VI-C).
	Extended
)

// WorkloadData caches one workload's generated trace and pool usage.
type WorkloadData struct {
	Workload workloads.Workload
	Trace    *trace.Trace
	Target   layout.Target
}

// Runner coordinates the pipeline, caching traces, datasets, and engines.
type Runner struct {
	mu       sync.Mutex
	prepared map[string]*WorkloadData
	datasets map[string]*Dataset
	// engines pools full machines and partial simulators per platform so
	// replays reuse TLB/cache/walker allocations instead of rebuilding them.
	engines sim.Pool
	// timing accumulates per-stage wall time across the runner's lifetime.
	timing sim.Timing
	// measuredAccesses/totalAccesses accumulate sampled-replay coverage
	// across every replay of the runner's lifetime (zero under exact
	// replay); SampledProgress reads them for live progress reporting.
	measuredAccesses atomic.Uint64
	totalAccesses    atomic.Uint64
	// Parallelism bounds concurrent pipeline jobs (default: GOMAXPROCS).
	Parallelism int
	// Sampling, when enabled, replays every measurement under systematic
	// interval sampling with functional warmup (see sim.Sampling); counters
	// in the resulting datasets are extrapolated whole-trace estimates. The
	// zero value is exact replay.
	Sampling sim.Sampling
	// Proto selects the layout protocol.
	Proto Protocol
	// Windows, when > 1, splits every replay's schedule into that many
	// contiguous chunks replayed in parallel (sim.Windowed). Exact mode
	// (the default) is bit-identical to unwindowed replay; window workers
	// share the sweep's Parallelism budget rather than multiplying it.
	Windows int
	// WindowWarm selects warmup-reconstructed windowed replay: approximate
	// (sampling's noise-envelope contract) but checkpoint-free, with no
	// sequential cold run.
	WindowWarm bool
	// CheckpointDir, when set, caches MOSCKPT01 boundary checkpoints for
	// exact windowed replay, so repeated sweeps of the same configuration
	// replay in parallel from the first re-run — across process restarts.
	CheckpointDir string
	// TraceDir, when set, caches generated traces (and their layout
	// targets) on disk so repeated sessions skip workload generation.
	TraceDir string
}

// NewRunner builds a runner with the standard protocol.
func NewRunner() *Runner {
	return &Runner{
		prepared:    make(map[string]*WorkloadData),
		datasets:    make(map[string]*Dataset),
		Parallelism: runtime.GOMAXPROCS(0),
		Proto:       Standard,
	}
}

// StageTimes returns the per-stage pipeline timing accumulated so far
// (prepare / plan / space / replay).
func (r *Runner) StageTimes() []sim.StageTime { return r.timing.Snapshot() }

// SampledProgress returns the accesses measured at full fidelity and the
// accesses skipped (warmed or jumped over) across every replay so far.
// Both are zero under exact replay, where coverage isn't tracked.
func (r *Runner) SampledProgress() (measured, skipped uint64) {
	measured = r.measuredAccesses.Load()
	total := r.totalAccesses.Load()
	return measured, total - measured
}

// PoolIdle reports the engines currently sitting idle in the runner's
// engine pool — the serving layer's pool-occupancy gauge reads it.
func (r *Runner) PoolIdle() int { return r.engines.Idle() }

// Prepare generates (once) the workload's trace under an all-4KB Mosalloc
// configuration and derives the layout target from the pool high-water
// marks. With TraceDir set, traces are persisted and reloaded across
// sessions.
func (r *Runner) Prepare(w workloads.Workload) (*WorkloadData, error) {
	r.mu.Lock()
	if wd, ok := r.prepared[w.Name()]; ok {
		r.mu.Unlock()
		return wd, nil
	}
	r.mu.Unlock()

	if wd, err := r.loadCached(w); err == nil && wd != nil {
		r.mu.Lock()
		r.prepared[w.Name()] = wd
		r.mu.Unlock()
		return wd, nil
	}

	var wd *WorkloadData
	err := r.timing.Time(sim.StagePrepare, func() error {
		var err error
		wd, err = r.generate(w)
		return err
	})
	if err != nil {
		return nil, err
	}
	if err := r.saveCached(wd); err != nil {
		return nil, err
	}
	r.mu.Lock()
	// Another goroutine may have prepared the workload concurrently; keep
	// the first stored value so callers share one WorkloadData.
	if prev, ok := r.prepared[w.Name()]; ok {
		wd = prev
	} else {
		r.prepared[w.Name()] = wd
	}
	r.mu.Unlock()
	return wd, nil
}

// generate runs the prepare stage: one traced execution of the workload
// against the allocation stack under an all-4KB configuration.
func (r *Runner) generate(w workloads.Workload) (*WorkloadData, error) {
	proc, err := libc.NewProcess(physMem)
	if err != nil {
		return nil, err
	}
	heapCap, anonCap := w.PoolBytes()
	cfg := mosalloc.Config{
		HeapPool:      mosalloc.Uniform(mem.Page4K, heapCap),
		AnonPool:      mosalloc.Uniform(mem.Page4K, anonCap),
		FilePoolBytes: 1 << 20,
	}
	msl, err := mosalloc.Attach(proc, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s: %w", w.Name(), err)
	}
	tr, err := w.Generate(workloads.NewAllocator(proc))
	if err != nil {
		return nil, fmt.Errorf("experiment: %s: %w", w.Name(), err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}

	var heapUsed, anonUsed uint64
	for _, u := range msl.Usage() {
		// Round usage up to 2MB so window arithmetic stays aligned.
		hw := uint64(mem.AlignUp(mem.Addr(u.HighWater), mem.Page2M))
		switch u.Name {
		case "heap":
			heapUsed = hw
		case "anon":
			anonUsed = hw
		}
	}
	wd := &WorkloadData{
		Workload: w,
		Trace:    tr,
		Target: layout.Target{
			HeapUsed: heapUsed,
			AnonUsed: anonUsed,
			HeapCap:  heapCap,
			AnonCap:  anonCap,
		},
	}
	if err := wd.Target.Validate(); err != nil {
		return nil, fmt.Errorf("experiment: %s: %w", w.Name(), err)
	}
	return wd, nil
}

// cachePaths returns the trace and sidecar file names for a workload. The
// sanitized name alone is ambiguous ("a/b" and "a_b" collide), so an
// FNV-1a hash of the full name disambiguates the file stem.
func (r *Runner) cachePaths(name string) (traceFile, targetFile string) {
	safe := strings.NewReplacer("/", "_", " ", "_").Replace(name)
	stem := fmt.Sprintf("%s-%08x", safe, uint32(fnv1a(name)))
	return filepath.Join(r.TraceDir, stem+".mostrace"),
		filepath.Join(r.TraceDir, stem+".target.json")
}

// loadCached restores a workload's trace and target from TraceDir.
// A nil, nil return means no usable cache entry exists.
func (r *Runner) loadCached(w workloads.Workload) (*WorkloadData, error) {
	if r.TraceDir == "" {
		return nil, nil
	}
	traceFile, targetFile := r.cachePaths(w.Name())
	tr, err := trace.Load(traceFile)
	if err != nil {
		return nil, nil // absent or corrupt: regenerate
	}
	if tr.Name != w.Name() {
		return nil, nil // foreign trace under a colliding file name
	}
	raw, err := os.ReadFile(targetFile)
	if err != nil {
		return nil, nil
	}
	var target layout.Target
	if err := json.Unmarshal(raw, &target); err != nil {
		return nil, nil
	}
	if err := target.Validate(); err != nil {
		return nil, nil
	}
	return &WorkloadData{Workload: w, Trace: tr, Target: target}, nil
}

// saveCached persists a freshly generated trace and target to TraceDir.
func (r *Runner) saveCached(wd *WorkloadData) error {
	if r.TraceDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.TraceDir, 0o755); err != nil {
		return err
	}
	traceFile, targetFile := r.cachePaths(wd.Workload.Name())
	if err := wd.Trace.Save(traceFile); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(wd.Target, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(targetFile, raw, 0o644)
}

// writeFileAtomic writes data via a same-directory temp file + rename, so
// an interrupted run never leaves a truncated cache sidecar for a later
// session to trip over (Trace.Save gives the trace file the same
// guarantee).
func writeFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, perm); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// buildSpace runs the address-space stage for one layout: a modelled
// process with Mosalloc attached under the layout's pool configuration.
func (r *Runner) buildSpace(lay layout.Layout) (*mem.AddressSpace, error) {
	var space *mem.AddressSpace
	err := r.timing.Time(sim.StageSpace, func() error {
		var err error
		space, err = sim.BuildSpace(physMem, lay.Cfg)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: layout %s: %w", lay.Name, err)
	}
	return space, nil
}

// replay runs the replay stage: one pooled full machine over the trace.
// plat must already be Scaled.
func (r *Runner) replay(wd *WorkloadData, plat arch.Platform, lay layout.Layout, space *mem.AddressSpace) (pmu.Counters, error) {
	results, err := r.replayBatch(wd, plat, []layout.Layout{lay}, []*mem.AddressSpace{space}, r.Sampling)
	if err != nil {
		return pmu.Counters{}, err
	}
	return results[0].Counters, nil
}

// replayBatch runs the replay stage for a span of one pair's layouts: N
// pooled full machines — one per layout — advance through the trace in a
// single fused pass (sim.RunBatch) under the given sampling config, so
// the trace columns are streamed from memory once per block instead of
// once per layout. Counters are bit-identical to replaying each layout
// alone. plat must already be Scaled.
func (r *Runner) replayBatch(wd *WorkloadData, plat arch.Platform, lays []layout.Layout, spaces []*mem.AddressSpace, s sim.Sampling) ([]sim.Result, error) {
	engines := make([]sim.Engine, len(lays))
	for i, space := range spaces {
		eng, err := r.engines.Full(plat, space)
		if err != nil {
			return nil, err
		}
		engines[i] = eng
	}
	var results []sim.Result
	err := r.timing.Time(sim.StageReplay, func() error {
		var err error
		if r.Windows > 1 {
			results, err = sim.RunBatchWindowed(engines, wd.Trace, s,
				r.windowed(r.checkpointKeys(wd, plat, lays, "full", s)))
		} else {
			results, err = sim.RunBatch(engines, wd.Trace, s)
		}
		return err
	})
	if err != nil {
		// Faulted engines are dropped rather than pooled.
		return nil, fmt.Errorf("experiment: %s on %s under %s..%s: %w",
			wd.Workload.Name(), plat.Name, lays[0].Name, lays[len(lays)-1].Name, err)
	}
	for _, eng := range engines {
		r.engines.Put(eng)
	}
	for _, res := range results {
		r.measuredAccesses.Add(res.MeasuredAccesses)
		r.totalAccesses.Add(res.TotalAccesses)
	}
	return results, nil
}

// checkpointKeys derives one checkpoint-stream key per engine of a replay
// batch. A key encodes everything the cumulative machine state depends on —
// trace identity, platform, layout configuration, engine kind and fidelity,
// and the sampling plan — and deliberately excludes the window count and
// position, so checkpoints are shared across -windows values.
func (r *Runner) checkpointKeys(wd *WorkloadData, plat arch.Platform, lays []layout.Layout, kind string, s sim.Sampling) []string {
	plan := s.Key()
	keys := make([]string, len(lays))
	for i, lay := range lays {
		keys[i] = fmt.Sprintf("%s|%d|%s|%s|%s|%s",
			wd.Trace.Name, wd.Trace.Len(), plat.Name, sim.SpaceKey(lay.Cfg), kind, plan)
	}
	return keys
}

// windowed assembles the sim.Windowed config for one replay batch. The
// checkpoint store is only wired for exact mode — warmup-reconstructed
// replay is checkpoint-free by design.
func (r *Runner) windowed(keys []string) sim.Windowed {
	w := sim.Windowed{
		K:       r.Windows,
		Warm:    r.WindowWarm,
		Pool:    &r.engines,
		Workers: r.Windows,
	}
	if !r.WindowWarm && r.CheckpointDir != "" {
		w.Store = &ckpt.Store{Dir: r.CheckpointDir}
		w.Keys = keys
	}
	return w
}

// RunLayout replays the workload's trace on the platform under one layout
// and returns the counters — one experimental sample.
// Platforms are applied in their Scaled() form (see arch.Platform.Scaled)
// so hardware reach matches the scaled workload footprints.
func (r *Runner) RunLayout(wd *WorkloadData, plat arch.Platform, lay layout.Layout) (pmu.Counters, error) {
	plat = plat.Scaled()
	space, err := r.buildSpace(lay)
	if err != nil {
		return pmu.Counters{}, err
	}
	return r.replay(wd, plat, lay, space)
}

// PartialSimulate replays the workload's trace through the partial
// simulator (TLB + walker + PWCs only, no timing) on the platform under
// one layout — the paper's Figure 1 left box. With highFidelity the
// program's data accesses also stream through the cache model, making the
// walk-cycle count match the full machine exactly (§VII-D's "perfectly
// accurate partial simulator").
func (r *Runner) PartialSimulate(wd *WorkloadData, plat arch.Platform, lay layout.Layout, highFidelity bool) (partialsim.Metrics, error) {
	plat = plat.Scaled()
	space, err := r.buildSpace(lay)
	if err != nil {
		return partialsim.Metrics{}, err
	}
	eng, err := r.engines.Partial(plat, space)
	if err != nil {
		return partialsim.Metrics{}, err
	}
	eng.HighFidelity = highFidelity
	var res sim.Result
	err = r.timing.Time(sim.StageReplay, func() error {
		var err error
		if r.Windows > 1 {
			kind := "partial"
			if highFidelity {
				kind = "partial-hifi"
			}
			var rs []sim.Result
			rs, err = sim.RunBatchWindowed([]sim.Engine{eng}, wd.Trace, r.Sampling,
				r.windowed(r.checkpointKeys(wd, plat, []layout.Layout{lay}, kind, r.Sampling)))
			if err == nil {
				res = rs[0]
			}
		} else {
			res, err = eng.RunSampled(wd.Trace, r.Sampling)
		}
		return err
	})
	if err != nil {
		return partialsim.Metrics{}, err
	}
	r.engines.Put(eng)
	r.measuredAccesses.Add(res.MeasuredAccesses)
	r.totalAccesses.Add(res.TotalAccesses)
	return partialsim.Metrics{
		H:        res.Counters.H,
		M:        res.Counters.M,
		C:        res.Counters.C,
		Lookups:  res.Counters.TLBLookups,
		WalkRefs: res.WalkRefs,
	}, nil
}

// Dataset holds every measurement for one (workload, platform) pair.
type Dataset struct {
	Workload string
	Platform string
	// Samples are the protocol layouts' measurements, in layout order;
	// the 4KB and 2MB baselines carry those layout names.
	Samples []pmu.Sample
	// Counters maps layout name to the full counter set.
	Counters map[string]pmu.Counters
	// Sample1G is the 1GB-pages validation point (§VII-D).
	Sample1G pmu.Sample
	// TLBSensitive is the paper's inclusion criterion: runtime improves
	// by ≥5% when backed with 1GB pages.
	TLBSensitive bool
	// MeasuredAccesses and TotalAccesses record the sampled-replay coverage
	// behind each layout's counters (identical across the pair's layouts —
	// the schedule is positional over the shared trace). Both are zero under
	// exact replay; when MeasuredAccesses < TotalAccesses the counters are
	// extrapolated estimates.
	MeasuredAccesses uint64
	TotalAccesses    uint64
	// Phases maps layout name to per-phase counter attribution when the
	// pair's trace carried phase markers (multi-phase workloads); nil
	// otherwise. Rows are in trace order, mirroring sim.Result.Phases.
	Phases map[string][]sim.PhaseResult
}

// Baseline returns the sample with the given layout name.
func (d *Dataset) Baseline(name string) (pmu.Sample, bool) {
	for _, s := range d.Samples {
		if s.Layout == name {
			return s, true
		}
	}
	return pmu.Sample{}, false
}

// Collect measures the full protocol for one workload on one platform,
// caching the result. It is CollectAll over a single pair: layout replays
// share the sweep-wide worker pool, engine pool, and space cache.
func (r *Runner) Collect(w workloads.Workload, plat arch.Platform) (*Dataset, error) {
	dss, err := r.CollectAll([]workloads.Workload{w}, []arch.Platform{plat}, nil)
	if err != nil {
		return nil, err
	}
	return dss[0], nil
}

// pairPlan tracks one (workload, platform) dataset through the sweep.
type pairPlan struct {
	w    workloads.Workload
	plat arch.Platform // unscaled; Scaled() at use sites
	key  string
	wd   *WorkloadData
	lays []layout.Layout
	res  []sim.Result
}

// CollectAll measures every (workload, platform) dataset through one
// sweep-wide scheduler and returns them in (platform-major, workload-minor)
// order. The pipeline runs in stages: prepare traces (parallel across
// workloads), plan protocols (parallel across pairs), then flatten every
// (workload, platform, layout) replay into one bounded worker pool.
// Address spaces are built once per distinct layout configuration and
// shared read-only across the platforms that replay it; engines are pooled
// and Reset between replays. onProgress, when non-nil, receives progress
// reports (with ETA) after each completed job of each stage.
//
// Results are bit-identical to collecting each pair in isolation at any
// parallelism: every replay runs on private (Reset) engine state over
// immutable shared translation state.
func (r *Runner) CollectAll(ws []workloads.Workload, plats []arch.Platform, onProgress func(sim.Progress)) ([]*Dataset, error) {
	return r.CollectAllCtx(context.Background(), ws, plats, onProgress)
}

// CollectAllCtx is CollectAll under a context: when ctx is canceled the
// sweep stops claiming new pipeline jobs (in-flight replays finish, so
// pooled engines and shared spaces are released consistently), no partial
// datasets are cached, and ctx's error is returned. The serving layer uses
// this for job cancellation and graceful shutdown.
func (r *Runner) CollectAllCtx(ctx context.Context, ws []workloads.Workload, plats []arch.Platform, onProgress func(sim.Progress)) ([]*Dataset, error) {
	workers := max(1, r.Parallelism)

	// Figure out which pairs still need measuring. Job order groups pairs
	// by workload so the layouts a workload shares across platforms stay
	// live in the space cache only while that workload's replays drain.
	var pending []*pairPlan
	seen := make(map[string]bool)
	for _, w := range ws {
		for _, p := range plats {
			key := w.Name() + "@" + p.Name
			if seen[key] {
				continue
			}
			seen[key] = true
			r.mu.Lock()
			_, have := r.datasets[key]
			r.mu.Unlock()
			if !have {
				pending = append(pending, &pairPlan{w: w, plat: p, key: key})
			}
		}
	}

	// Stage 1: prepare — trace generation, once per distinct workload.
	var uws []workloads.Workload
	uniq := make(map[string]bool)
	for _, pair := range pending {
		if !uniq[pair.w.Name()] {
			uniq[pair.w.Name()] = true
			uws = append(uws, pair.w)
		}
	}
	sched := sim.Scheduler{Workers: workers, Stage: sim.StagePrepare.String(), OnProgress: onProgress, Ctx: ctx}
	err := sched.Run(len(uws),
		func(i int) string { return uws[i].Name() },
		func(i int) error { _, err := r.Prepare(uws[i]); return err })
	if err != nil {
		return nil, err
	}

	// Stage 2: plan — miss profile and layout protocol per pair.
	sched = sim.Scheduler{Workers: workers, Stage: sim.StagePlan.String(), OnProgress: onProgress, Ctx: ctx}
	err = sched.Run(len(pending),
		func(i int) string { return pending[i].key },
		func(i int) error {
			pair := pending[i]
			wd, err := r.Prepare(pair.w)
			if err != nil {
				return err
			}
			pair.wd = wd
			return r.timing.Time(sim.StagePlan, func() error {
				pair.lays = r.planLayouts(pair.wd, pair.plat, pair.key)
				pair.res = make([]sim.Result, len(pair.lays))
				return nil
			})
		})
	if err != nil {
		return nil, err
	}

	// Stage 3: replay — every (workload, platform) pair's layouts, chunked
	// into fused batches sized to keep the worker pool saturated, in one
	// flat worker pool with shared spaces and pooled engines. A job replays
	// its span of same-pair layouts in a single pass over the trace
	// (Runner.replayBatch).
	spaces := sim.NewSpaceCache(physMem)
	spaces.Timing = &r.timing
	type job struct {
		pair      *pairPlan
		lo, hi    int      // layout index span [lo, hi)
		spaceKeys []string // one per layout in the span
	}
	totalLayouts := 0
	for _, pair := range pending {
		totalLayouts += len(pair.lays)
	}
	// Window workers share the sweep's worker budget: with K-way windowed
	// replay each replay job fans out into up to K concurrent segment
	// workers (sim.Windowed.Workers), so the stage claims proportionally
	// fewer jobs at once instead of oversubscribing the machine.
	replayWorkers := workers
	if r.Windows > 1 {
		replayWorkers = max(1, workers/r.Windows)
	}
	span := sim.BatchSpan(totalLayouts, replayWorkers)
	var jobs []job
	for _, pair := range pending {
		for lo := 0; lo < len(pair.lays); lo += span {
			hi := min(lo+span, len(pair.lays))
			keys := make([]string, 0, hi-lo)
			for _, lay := range pair.lays[lo:hi] {
				keys = append(keys, spaces.Register(lay.Cfg))
			}
			jobs = append(jobs, job{pair: pair, lo: lo, hi: hi, spaceKeys: keys})
		}
	}
	sched = sim.Scheduler{Workers: replayWorkers, Stage: sim.StageReplay.String(), OnProgress: onProgress, Ctx: ctx}
	err = sched.Run(len(jobs),
		func(i int) string {
			j := jobs[i]
			lays := j.pair.lays[j.lo:j.hi]
			if len(lays) == 1 {
				return j.pair.key + "/" + lays[0].Name
			}
			return j.pair.key + "/" + lays[0].Name + ".." + lays[len(lays)-1].Name
		},
		func(i int) error {
			j := jobs[i]
			defer func() {
				for _, k := range j.spaceKeys {
					spaces.Release(k)
				}
			}()
			lays := j.pair.lays[j.lo:j.hi]
			batch := make([]*mem.AddressSpace, len(lays))
			for k, lay := range lays {
				space, err := spaces.Get(j.spaceKeys[k], lay.Cfg)
				if err != nil {
					return fmt.Errorf("experiment: layout %s: %w", lay.Name, err)
				}
				batch[k] = space
			}
			results, err := r.replayBatch(j.pair.wd, j.pair.plat.Scaled(), lays, batch, r.Sampling)
			if err != nil {
				return err
			}
			copy(j.pair.res[j.lo:j.hi], results)
			return nil
		})
	if err != nil {
		return nil, err
	}

	// Assemble and cache the datasets.
	for _, pair := range pending {
		ds, err := assemble(pair)
		if err != nil {
			return nil, err
		}
		r.mu.Lock()
		// Keep a dataset another caller may have stored concurrently.
		if prev, ok := r.datasets[pair.key]; ok {
			ds = prev
		} else {
			r.datasets[pair.key] = ds
		}
		r.mu.Unlock()
	}

	out := make([]*Dataset, 0, len(ws)*len(plats))
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range plats {
		for _, w := range ws {
			ds, ok := r.datasets[w.Name()+"@"+p.Name]
			if !ok {
				return nil, fmt.Errorf("experiment: dataset %s@%s missing after sweep", w.Name(), p.Name)
			}
			out = append(out, ds)
		}
	}
	return out, nil
}

// planLayouts generates the pair's protocol layouts plus the 1GB
// validation point. key seeds the protocol's randomized layouts.
func (r *Runner) planLayouts(wd *WorkloadData, plat arch.Platform, key string) []layout.Layout {
	profile := layout.ProfileMisses(wd.Trace, plat.Scaled().TLB, wd.Target)
	var lays []layout.Layout
	switch r.Proto {
	case Quick:
		lays = wd.Target.GrowingWindows(8)
	case Extended:
		lays = wd.Target.Extended(profile, seedFor(key))
	default:
		lays = wd.Target.Standard(profile, seedFor(key))
	}
	return append(lays, wd.Target.Baseline1G())
}

// ProtocolLayouts plans the pair's full layout protocol — the same
// deterministic sequence CollectAll would measure, ending with the 1GB
// validation point — without replaying anything. The adaptive planner
// uses it as the candidate pool.
func (r *Runner) ProtocolLayouts(wd *WorkloadData, plat arch.Platform) []layout.Layout {
	var lays []layout.Layout
	// Planning cost is charged to the plan stage like CollectAll's stage 2.
	_ = r.timing.Time(sim.StagePlan, func() error {
		lays = r.planLayouts(wd, plat, wd.Workload.Name()+"@"+plat.Name)
		return nil
	})
	return lays
}

// assemble folds a pair's counters into a Dataset.
func assemble(pair *pairPlan) (*Dataset, error) {
	return Assemble(pair.w.Name(), pair.plat.Name, pair.lays, pair.res)
}

// Assemble folds per-layout replay results into a Dataset — CollectAll's
// final stage, exported so callers that obtain results elsewhere (the
// distributed sweep fabric merges them from worker shards) produce
// datasets through the identical code path. lays and res correspond by
// index and must cover the full protocol including the 1GB validation
// point.
func Assemble(workload, platform string, lays []layout.Layout, res []sim.Result) (*Dataset, error) {
	if len(lays) != len(res) {
		return nil, fmt.Errorf("experiment: assemble %s@%s: %d layouts but %d results",
			workload, platform, len(lays), len(res))
	}
	ds := &Dataset{
		Workload: workload,
		Platform: platform,
		Counters: make(map[string]pmu.Counters, len(lays)),
	}
	for i, lay := range lays {
		ds.Counters[lay.Name] = res[i].Counters
		sample := pmu.SampleFrom(lay.Name, res[i].Counters)
		if lay.Name == "1GB" {
			ds.Sample1G = sample
		} else {
			ds.Samples = append(ds.Samples, sample)
		}
		if res[i].Phases != nil {
			if ds.Phases == nil {
				ds.Phases = make(map[string][]sim.PhaseResult, len(lays))
			}
			ds.Phases[lay.Name] = res[i].Phases
		}
	}
	if len(res) > 0 {
		// Coverage is layout-independent (the window schedule is positional
		// over the pair's shared trace), so any layout's record stands for
		// the dataset.
		ds.MeasuredAccesses = res[0].MeasuredAccesses
		ds.TotalAccesses = res[0].TotalAccesses
	}
	s4k, ok := ds.Baseline("4KB")
	if !ok {
		return nil, fmt.Errorf("experiment: protocol produced no 4KB baseline")
	}
	ds.TLBSensitive = s4k.R > 0 && (s4k.R-ds.Sample1G.R)/s4k.R >= 0.05
	return ds, nil
}

// MeasureLayouts replays an arbitrary set of a pair's layouts at an
// explicit sampling fidelity (zero value = exact), independent of the
// runner's Sampling field, and returns the results in layout order. It is
// CollectAll's replay stage over a caller-chosen layout set: fused batches
// sized to the worker pool, shared address spaces, pooled engines — the
// adaptive planner uses it to mix cheap probe replays and exact
// promotions within one sweep. onProgress, when non-nil, receives replay
// progress reports.
func (r *Runner) MeasureLayouts(ctx context.Context, wd *WorkloadData, plat arch.Platform, lays []layout.Layout, s sim.Sampling, onProgress func(sim.Progress)) ([]sim.Result, error) {
	if len(lays) == 0 {
		return nil, nil
	}
	workers := max(1, r.Parallelism)
	replayWorkers := workers
	if r.Windows > 1 {
		replayWorkers = max(1, workers/r.Windows)
	}
	scaled := plat.Scaled()
	spaces := sim.NewSpaceCache(physMem)
	spaces.Timing = &r.timing
	type job struct {
		lo, hi    int      // layout index span [lo, hi)
		spaceKeys []string // one per layout in the span
	}
	span := sim.BatchSpan(len(lays), replayWorkers)
	var jobs []job
	for lo := 0; lo < len(lays); lo += span {
		hi := min(lo+span, len(lays))
		keys := make([]string, 0, hi-lo)
		for _, lay := range lays[lo:hi] {
			keys = append(keys, spaces.Register(lay.Cfg))
		}
		jobs = append(jobs, job{lo: lo, hi: hi, spaceKeys: keys})
	}
	out := make([]sim.Result, len(lays))
	sched := sim.Scheduler{Workers: replayWorkers, Stage: sim.StageReplay.String(), OnProgress: onProgress, Ctx: ctx}
	err := sched.Run(len(jobs),
		func(i int) string {
			j := jobs[i]
			span := lays[j.lo:j.hi]
			if len(span) == 1 {
				return wd.Workload.Name() + "@" + plat.Name + "/" + span[0].Name
			}
			return wd.Workload.Name() + "@" + plat.Name + "/" + span[0].Name + ".." + span[len(span)-1].Name
		},
		func(i int) error {
			j := jobs[i]
			defer func() {
				for _, k := range j.spaceKeys {
					spaces.Release(k)
				}
			}()
			span := lays[j.lo:j.hi]
			batch := make([]*mem.AddressSpace, len(span))
			for k, lay := range span {
				space, err := spaces.Get(j.spaceKeys[k], lay.Cfg)
				if err != nil {
					return fmt.Errorf("experiment: layout %s: %w", lay.Name, err)
				}
				batch[k] = space
			}
			results, err := r.replayBatch(wd, scaled, span, batch, s)
			if err != nil {
				return err
			}
			copy(out[j.lo:j.hi], results)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PairMeasurer binds one (workload, platform) pair of a Runner into a
// layout-at-a-time measurement surface: Measure replays layouts at an
// explicit fidelity, TraceLen reports what one exact replay costs in
// accesses. internal/plan consumes it (structurally) as the substrate its
// active-learning loop spends budget against.
type PairMeasurer struct {
	R    *Runner
	WD   *WorkloadData
	Plat arch.Platform
	// OnProgress, when non-nil, receives replay progress from every
	// Measure call.
	OnProgress func(sim.Progress)
}

// Measure replays lays at sampling fidelity s and returns the results in
// layout order.
func (p *PairMeasurer) Measure(ctx context.Context, lays []layout.Layout, s sim.Sampling) ([]sim.Result, error) {
	return p.R.MeasureLayouts(ctx, p.WD, p.Plat, lays, s, p.OnProgress)
}

// TraceLen is the pair's trace length in accesses — the cost of one exact
// layout replay.
func (p *PairMeasurer) TraceLen() uint64 { return uint64(p.WD.Trace.Len()) }

// fnv1a hashes a string with 64-bit FNV-1a.
func fnv1a(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// seedFor derives a stable seed from a dataset key.
func seedFor(key string) int64 {
	return int64(fnv1a(key) & 0x7fffffffffffffff)
}
