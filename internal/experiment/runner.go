// Package experiment orchestrates the paper's measurement pipeline
// (§VI): generate each workload's trace once through the allocation stack,
// build the 54-layout protocol from a simulated-PEBS miss profile, replay
// the trace on each platform under each layout, and evaluate all nine
// runtime models on the resulting samples.
package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"mosaic/internal/arch"
	"mosaic/internal/cpu"
	"mosaic/internal/layout"
	"mosaic/internal/libc"
	"mosaic/internal/mem"
	"mosaic/internal/mosalloc"
	"mosaic/internal/partialsim"
	"mosaic/internal/pmu"
	"mosaic/internal/trace"
	"mosaic/internal/workloads"
)

// physMem is the simulated physical memory per replay process: generous,
// since 1GB-page layouts round pools up to 1GB each.
const physMem = 1 << 36

// Protocol selects how many layouts Collect measures.
type Protocol int

// Protocols.
const (
	// Standard is the paper's 54-layout protocol (§VI-B).
	Standard Protocol = iota
	// Quick uses only the 9 growing-window layouts — for tests and smoke
	// runs.
	Quick
	// Extended uses ~102 layouts, the larger sample sets the paper needed
	// for cross-validation to converge (§VI-C).
	Extended
)

// WorkloadData caches one workload's generated trace and pool usage.
type WorkloadData struct {
	Workload workloads.Workload
	Trace    *trace.Trace
	Target   layout.Target
}

// Runner coordinates the pipeline, caching traces and datasets.
type Runner struct {
	mu       sync.Mutex
	prepared map[string]*WorkloadData
	datasets map[string]*Dataset
	// Parallelism bounds concurrent replays (default: GOMAXPROCS).
	Parallelism int
	// Proto selects the layout protocol.
	Proto Protocol
	// TraceDir, when set, caches generated traces (and their layout
	// targets) on disk so repeated sessions skip workload generation.
	TraceDir string
}

// NewRunner builds a runner with the standard protocol.
func NewRunner() *Runner {
	return &Runner{
		prepared:    make(map[string]*WorkloadData),
		datasets:    make(map[string]*Dataset),
		Parallelism: runtime.GOMAXPROCS(0),
		Proto:       Standard,
	}
}

// Prepare generates (once) the workload's trace under an all-4KB Mosalloc
// configuration and derives the layout target from the pool high-water
// marks. With TraceDir set, traces are persisted and reloaded across
// sessions.
func (r *Runner) Prepare(w workloads.Workload) (*WorkloadData, error) {
	r.mu.Lock()
	if wd, ok := r.prepared[w.Name()]; ok {
		r.mu.Unlock()
		return wd, nil
	}
	r.mu.Unlock()

	if wd, err := r.loadCached(w); err == nil && wd != nil {
		r.mu.Lock()
		r.prepared[w.Name()] = wd
		r.mu.Unlock()
		return wd, nil
	}

	proc, err := libc.NewProcess(physMem)
	if err != nil {
		return nil, err
	}
	heapCap, anonCap := w.PoolBytes()
	cfg := mosalloc.Config{
		HeapPool:      mosalloc.Uniform(mem.Page4K, heapCap),
		AnonPool:      mosalloc.Uniform(mem.Page4K, anonCap),
		FilePoolBytes: 1 << 20,
	}
	msl, err := mosalloc.Attach(proc, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s: %w", w.Name(), err)
	}
	tr, err := w.Generate(workloads.NewAllocator(proc))
	if err != nil {
		return nil, fmt.Errorf("experiment: %s: %w", w.Name(), err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}

	var heapUsed, anonUsed uint64
	for _, u := range msl.Usage() {
		// Round usage up to 2MB so window arithmetic stays aligned.
		hw := uint64(mem.AlignUp(mem.Addr(u.HighWater), mem.Page2M))
		switch u.Name {
		case "heap":
			heapUsed = hw
		case "anon":
			anonUsed = hw
		}
	}
	wd := &WorkloadData{
		Workload: w,
		Trace:    tr,
		Target: layout.Target{
			HeapUsed: heapUsed,
			AnonUsed: anonUsed,
			HeapCap:  heapCap,
			AnonCap:  anonCap,
		},
	}
	if err := wd.Target.Validate(); err != nil {
		return nil, fmt.Errorf("experiment: %s: %w", w.Name(), err)
	}
	if err := r.saveCached(wd); err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.prepared[w.Name()] = wd
	r.mu.Unlock()
	return wd, nil
}

// cachePaths returns the trace and sidecar file names for a workload.
func (r *Runner) cachePaths(name string) (traceFile, targetFile string) {
	safe := strings.NewReplacer("/", "_", " ", "_").Replace(name)
	return filepath.Join(r.TraceDir, safe+".mostrace"),
		filepath.Join(r.TraceDir, safe+".target.json")
}

// loadCached restores a workload's trace and target from TraceDir.
// A nil, nil return means no usable cache entry exists.
func (r *Runner) loadCached(w workloads.Workload) (*WorkloadData, error) {
	if r.TraceDir == "" {
		return nil, nil
	}
	traceFile, targetFile := r.cachePaths(w.Name())
	tr, err := trace.Load(traceFile)
	if err != nil {
		return nil, nil // absent or corrupt: regenerate
	}
	raw, err := os.ReadFile(targetFile)
	if err != nil {
		return nil, nil
	}
	var target layout.Target
	if err := json.Unmarshal(raw, &target); err != nil {
		return nil, nil
	}
	if err := target.Validate(); err != nil {
		return nil, nil
	}
	return &WorkloadData{Workload: w, Trace: tr, Target: target}, nil
}

// saveCached persists a freshly generated trace and target to TraceDir.
func (r *Runner) saveCached(wd *WorkloadData) error {
	if r.TraceDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.TraceDir, 0o755); err != nil {
		return err
	}
	traceFile, targetFile := r.cachePaths(wd.Workload.Name())
	if err := wd.Trace.Save(traceFile); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(wd.Target, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(targetFile, raw, 0o644)
}

// RunLayout replays the workload's trace on the platform under one layout
// and returns the counters — one experimental sample.
// Platforms are applied in their Scaled() form (see arch.Platform.Scaled)
// so hardware reach matches the scaled workload footprints.
func (r *Runner) RunLayout(wd *WorkloadData, plat arch.Platform, lay layout.Layout) (pmu.Counters, error) {
	plat = plat.Scaled()
	proc, err := libc.NewProcess(physMem)
	if err != nil {
		return pmu.Counters{}, err
	}
	if _, err := mosalloc.Attach(proc, lay.Cfg); err != nil {
		return pmu.Counters{}, fmt.Errorf("experiment: layout %s: %w", lay.Name, err)
	}
	machine, err := cpu.New(plat, proc.Space())
	if err != nil {
		return pmu.Counters{}, err
	}
	ctr, err := machine.Run(wd.Trace)
	if err != nil {
		return pmu.Counters{}, fmt.Errorf("experiment: %s on %s under %s: %w",
			wd.Workload.Name(), plat.Name, lay.Name, err)
	}
	return ctr, nil
}

// PartialSimulate replays the workload's trace through the partial
// simulator (TLB + walker + PWCs only, no timing) on the platform under
// one layout — the paper's Figure 1 left box. With highFidelity the
// program's data accesses also stream through the cache model, making the
// walk-cycle count match the full machine exactly (§VII-D's "perfectly
// accurate partial simulator").
func (r *Runner) PartialSimulate(wd *WorkloadData, plat arch.Platform, lay layout.Layout, highFidelity bool) (partialsim.Metrics, error) {
	plat = plat.Scaled()
	proc, err := libc.NewProcess(physMem)
	if err != nil {
		return partialsim.Metrics{}, err
	}
	if _, err := mosalloc.Attach(proc, lay.Cfg); err != nil {
		return partialsim.Metrics{}, fmt.Errorf("experiment: layout %s: %w", lay.Name, err)
	}
	sim, err := partialsim.New(plat, proc.Space())
	if err != nil {
		return partialsim.Metrics{}, err
	}
	sim.SimulateProgramCache = highFidelity
	return sim.Run(wd.Trace)
}

// Dataset holds every measurement for one (workload, platform) pair.
type Dataset struct {
	Workload string
	Platform string
	// Samples are the protocol layouts' measurements, in layout order;
	// the 4KB and 2MB baselines carry those layout names.
	Samples []pmu.Sample
	// Counters maps layout name to the full counter set.
	Counters map[string]pmu.Counters
	// Sample1G is the 1GB-pages validation point (§VII-D).
	Sample1G pmu.Sample
	// TLBSensitive is the paper's inclusion criterion: runtime improves
	// by ≥5% when backed with 1GB pages.
	TLBSensitive bool
}

// Baseline returns the sample with the given layout name.
func (d *Dataset) Baseline(name string) (pmu.Sample, bool) {
	for _, s := range d.Samples {
		if s.Layout == name {
			return s, true
		}
	}
	return pmu.Sample{}, false
}

// Collect measures the full protocol for one workload on one platform,
// caching the result. Layout replays run in parallel.
func (r *Runner) Collect(w workloads.Workload, plat arch.Platform) (*Dataset, error) {
	key := w.Name() + "@" + plat.Name
	r.mu.Lock()
	if ds, ok := r.datasets[key]; ok {
		r.mu.Unlock()
		return ds, nil
	}
	r.mu.Unlock()

	wd, err := r.Prepare(w)
	if err != nil {
		return nil, err
	}
	profile := layout.ProfileMisses(wd.Trace, plat.Scaled().TLB, wd.Target)
	var lays []layout.Layout
	switch r.Proto {
	case Quick:
		lays = wd.Target.GrowingWindows(8)
	case Extended:
		lays = wd.Target.Extended(profile, seedFor(key))
	default:
		lays = wd.Target.Standard(profile, seedFor(key))
	}
	lays = append(lays, wd.Target.Baseline1G())

	counters := make([]pmu.Counters, len(lays))
	errs := make([]error, len(lays))
	sem := make(chan struct{}, max(1, r.Parallelism))
	var wg sync.WaitGroup
	for i := range lays {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			counters[i], errs[i] = r.RunLayout(wd, plat, lays[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	ds := &Dataset{
		Workload: w.Name(),
		Platform: plat.Name,
		Counters: make(map[string]pmu.Counters, len(lays)),
	}
	for i, lay := range lays {
		ds.Counters[lay.Name] = counters[i]
		sample := pmu.SampleFrom(lay.Name, counters[i])
		if lay.Name == "1GB" {
			ds.Sample1G = sample
		} else {
			ds.Samples = append(ds.Samples, sample)
		}
	}
	s4k, ok := ds.Baseline("4KB")
	if !ok {
		return nil, fmt.Errorf("experiment: protocol produced no 4KB baseline")
	}
	ds.TLBSensitive = s4k.R > 0 && (s4k.R-ds.Sample1G.R)/s4k.R >= 0.05
	r.mu.Lock()
	r.datasets[key] = ds
	r.mu.Unlock()
	return ds, nil
}

// seedFor derives a stable seed from a dataset key.
func seedFor(key string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}
