package experiment

import (
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/workloads"
)

// quickRunner uses the 9-layout protocol to keep test time bounded.
func quickRunner() *Runner {
	r := NewRunner()
	r.Proto = Quick
	return r
}

func collectQuick(t *testing.T, workload string, plat arch.Platform) *Dataset {
	t.Helper()
	r := quickRunner()
	w, err := workloads.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := r.Collect(w, plat)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPrepareCachesTrace(t *testing.T) {
	r := quickRunner()
	w, _ := workloads.ByName("gups/8GB")
	a, err := r.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Prepare should return the cached WorkloadData")
	}
	if a.Trace.Len() == 0 {
		t.Fatal("empty trace")
	}
	if err := a.Target.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectQuickDataset(t *testing.T) {
	ds := collectQuick(t, "gups/8GB", arch.SandyBridge)
	// Quick protocol: 9 growing windows (extremes named 4KB/2MB) + 1GB.
	if len(ds.Samples) != 9 {
		t.Fatalf("samples = %d, want 9", len(ds.Samples))
	}
	if _, ok := ds.Baseline("4KB"); !ok {
		t.Error("missing 4KB baseline")
	}
	if _, ok := ds.Baseline("2MB"); !ok {
		t.Error("missing 2MB baseline")
	}
	if ds.Sample1G.R == 0 {
		t.Error("missing 1GB sample")
	}
	if !ds.TLBSensitive {
		t.Error("gups must be TLB-sensitive")
	}
	// Runtime decreases monotonically-ish from 4KB to 2MB: at least the
	// extremes must be ordered.
	s4, _ := ds.Baseline("4KB")
	s2, _ := ds.Baseline("2MB")
	if s4.R <= s2.R {
		t.Errorf("R4K=%v should exceed R2M=%v", s4.R, s2.R)
	}
	if s4.C <= s2.C {
		t.Errorf("C4K=%v should exceed C2M=%v", s4.C, s2.C)
	}
}

func TestCollectCachesDataset(t *testing.T) {
	r := quickRunner()
	w, _ := workloads.ByName("gups/8GB")
	a, err := r.Collect(w, arch.SandyBridge)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Collect(w, arch.SandyBridge)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Collect should cache datasets")
	}
}

func TestCollectDeterministic(t *testing.T) {
	a := collectQuick(t, "spec06/mcf", arch.Haswell)
	b := collectQuick(t, "spec06/mcf", arch.Haswell)
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("sample counts differ")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs between identical runs:\n%+v\n%+v",
				i, a.Samples[i], b.Samples[i])
		}
	}
}

func TestEvaluateModelsOrdering(t *testing.T) {
	ds := collectQuick(t, "gups/8GB", arch.Broadwell)
	errs, err := EvaluateModels(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 9 {
		t.Fatalf("%d model evaluations", len(errs))
	}
	byName := map[string]ModelError{}
	for _, e := range errs {
		byName[e.Model] = e
	}
	// The paper's central finding, in miniature: the two-point linear
	// models err far more than the fitted ones on gups, and mosmodel meets
	// its 3% bound.
	if byName["basu"].MaxErr < 0.10 {
		t.Errorf("basu error %.3f suspiciously low for gups", byName["basu"].MaxErr)
	}
	if byName["mosmodel"].MaxErr > 0.03 {
		t.Errorf("mosmodel error %.3f exceeds the 3%% bound", byName["mosmodel"].MaxErr)
	}
	if byName["mosmodel"].MaxErr > byName["basu"].MaxErr {
		t.Error("mosmodel should beat basu")
	}
}

func TestFigure2Aggregates(t *testing.T) {
	r := quickRunner()
	var all []*Dataset
	for _, name := range []string{"gups/8GB", "spec06/mcf"} {
		w, _ := workloads.ByName(name)
		ds, err := r.Collect(w, arch.SandyBridge)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, ds)
	}
	worst, err := Figure2(all)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"pham", "alam", "gandhi", "basu", "yaniv", "poly1", "poly2", "poly3", "mosmodel"} {
		if _, ok := worst[m]; !ok {
			t.Errorf("Figure2 missing model %s", m)
		}
	}
	if worst["basu"] < worst["mosmodel"] {
		t.Error("aggregate basu error should exceed mosmodel")
	}
}

func TestPerBenchmarkFiltersInsensitive(t *testing.T) {
	ds := collectQuick(t, "gups/8GB", arch.SandyBridge)
	insens := &Dataset{Workload: "fake", Platform: "SandyBridge", Samples: ds.Samples}
	pb, err := PerBenchmark("SandyBridge", []*Dataset{ds, insens})
	if err != nil {
		t.Fatal(err)
	}
	if len(pb.Workloads) != 1 || pb.Workloads[0] != "gups/8GB" {
		t.Errorf("PerBenchmark workloads = %v, want the sensitive one only", pb.Workloads)
	}
	if len(pb.Max) != 1 || len(pb.Max[0]) != 9 {
		t.Errorf("matrix shape wrong: %dx%d", len(pb.Max), len(pb.Max[0]))
	}
}

func TestCurveFor(t *testing.T) {
	ds := collectQuick(t, "gups/8GB", arch.SandyBridge)
	cv, err := CurveFor(ds, []string{"poly1", "mosmodel"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.Points) != len(ds.Samples) {
		t.Fatalf("curve has %d points", len(cv.Points))
	}
	for i := 1; i < len(cv.Points); i++ {
		if cv.Points[i].C < cv.Points[i-1].C {
			t.Fatal("curve points not sorted by C")
		}
	}
	if len(cv.Predictions["poly1"]) != len(cv.Points) {
		t.Error("missing poly1 predictions")
	}
	if _, ok := cv.Errors["mosmodel"]; !ok {
		t.Error("missing mosmodel error")
	}
	if _, err := CurveFor(ds, []string{"nope"}); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestUnderpredictionAtLowC(t *testing.T) {
	ds := collectQuick(t, "gups/8GB", arch.Broadwell)
	under, err := UnderpredictionAtLowC(ds, "basu")
	if err != nil {
		t.Fatal(err)
	}
	// Basu must be optimistic at the near-zero-overhead point for gups
	// (the Figure 7 phenomenon).
	if under <= 0 {
		t.Errorf("basu underprediction = %v, want positive (optimistic)", under)
	}
}

func TestTable6CrossValidation(t *testing.T) {
	ds := collectQuick(t, "gups/8GB", arch.SandyBridge)
	cv, err := Table6([]*Dataset{ds}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"poly1", "poly2", "poly3", "mosmodel"} {
		if _, ok := cv[m]; !ok {
			t.Errorf("Table6 missing %s", m)
		}
	}
}

func TestTable7Shape(t *testing.T) {
	ds := collectQuick(t, "spec17/xalancbmk_s", arch.Broadwell)
	rows, err := Table7(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	byName := map[string]Table7Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Table 7's qualitative content: 4KB runs slower, walks more, and
	// issues more L3 loads than 2MB.
	if byName["runtime cycles"].Program4K <= byName["runtime cycles"].Program2M {
		t.Error("4KB runtime should exceed 2MB runtime")
	}
	if byName["walk cycles"].Program4K <= byName["walk cycles"].Program2M {
		t.Error("4KB walk cycles should exceed 2MB")
	}
	if byName["TLB misses"].Program4K <= byName["TLB misses"].Program2M {
		t.Error("4KB misses should exceed 2MB")
	}
	l3 := byName["L3 loads"]
	if !l3.WalkerSplit {
		t.Error("L3 loads row should have the walker split")
	}
	if l3.Walker4K <= l3.Walker2M {
		t.Error("walker L3 loads under 4KB should exceed 2MB")
	}
}

func TestTable8Shape(t *testing.T) {
	a := collectQuick(t, "gups/8GB", arch.SandyBridge)
	b := collectQuick(t, "gups/8GB", arch.Haswell)
	rows, err := Table8([]*Dataset{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	row := rows[0]
	if len(row.R2) != 2 {
		t.Fatalf("platforms = %d", len(row.R2))
	}
	for plat, vals := range row.R2 {
		// For gups, C and M are near-perfect linear predictors (Table 8's
		// first rows: R² ≈ 1).
		if vals[0] < 0.9 || vals[1] < 0.9 {
			t.Errorf("%s: R²(C)=%v R²(M)=%v, want ≈1 for gups", plat, vals[0], vals[1])
		}
	}
}

func TestCaseStudy1G(t *testing.T) {
	ds := collectQuick(t, "gups/8GB", arch.SandyBridge)
	res, err := CaseStudy1G(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 9 {
		t.Fatalf("%d models in case study", len(res))
	}
	// Mosmodel predicts the 1GB layout within a few percent.
	if res["mosmodel"] > 0.05 {
		t.Errorf("mosmodel 1GB prediction error = %v", res["mosmodel"])
	}
}

func TestRunLayoutErrors(t *testing.T) {
	r := quickRunner()
	w, _ := workloads.ByName("gups/8GB")
	wd, err := r.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	bad := wd.Target.Baseline4K()
	bad.Cfg.HeapPool.Intervals = nil
	if _, err := r.RunLayout(wd, arch.SandyBridge, bad); err == nil {
		t.Error("invalid layout should fail")
	}
}
