package experiment

import (
	"fmt"
	"sort"

	"mosaic/internal/models"
)

// Training bridge: the serving layer's model registry consumes sweeps as
// fitted predictors, not raw counters. Train turns one dataset — the
// protocol's (H, M, C, R) samples for a (workload, platform) pair — into a
// fitted model annotated with its training errors, which double as the
// error bounds the prediction API reports (the paper's headline metric is
// the training-set maximal relative error, §VI-C).

// TrainedModel is a fitted model plus the training-set error metrics the
// serving layer attaches to every prediction from it.
type TrainedModel struct {
	Model models.Model
	// MaxTrainErr and GeoTrainErr are the maximal and geomean absolute
	// relative errors over the training samples.
	MaxTrainErr, GeoTrainErr float64
}

// Key names the dataset in the registry's "workload@platform" form.
func (d *Dataset) Key() string { return d.Workload + "@" + d.Platform }

// Train fits a fresh model of the given registry name on the dataset's
// protocol samples and measures its training errors.
func (d *Dataset) Train(name string) (*TrainedModel, error) {
	m, err := models.ByName(name)
	if err != nil {
		return nil, err
	}
	if len(d.Samples) == 0 {
		return nil, fmt.Errorf("experiment: %s: no samples to train %s on", d.Key(), name)
	}
	maxErr, geoErr, err := models.Evaluate(m, d.Samples)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s: training %s: %w", d.Key(), name, err)
	}
	return &TrainedModel{Model: m, MaxTrainErr: maxErr, GeoTrainErr: geoErr}, nil
}

// TrainModels fits every named model (nil or empty means the full
// registry) and returns them keyed by model name. A model that cannot be
// fitted on this dataset — e.g. a prior model missing its 4KB/2MB
// baseline anchors on a partial (adaptively planned) dataset — lands in
// the failed map instead of sinking the whole batch; the error return is
// non-nil only when not a single model trained.
func (d *Dataset) TrainModels(names []string) (trained map[string]*TrainedModel, failed map[string]error, err error) {
	if len(names) == 0 {
		names = append(append([]string{}, models.PriorNames...), models.NewNames...)
	}
	trained = make(map[string]*TrainedModel, len(names))
	failed = make(map[string]error)
	for _, name := range names {
		tm, err := d.Train(name)
		if err != nil {
			failed[name] = err
			continue
		}
		trained[name] = tm
	}
	if len(trained) == 0 {
		// Surface the first failure deterministically (names sorted).
		keys := make([]string, 0, len(failed))
		for name := range failed {
			keys = append(keys, name)
		}
		sort.Strings(keys)
		return nil, failed, fmt.Errorf("experiment: %s: no model trained: %w", d.Key(), failed[keys[0]])
	}
	if len(failed) == 0 {
		failed = nil
	}
	return trained, failed, nil
}
