package experiment

import (
	"fmt"

	"mosaic/internal/models"
)

// Training bridge: the serving layer's model registry consumes sweeps as
// fitted predictors, not raw counters. Train turns one dataset — the
// protocol's (H, M, C, R) samples for a (workload, platform) pair — into a
// fitted model annotated with its training errors, which double as the
// error bounds the prediction API reports (the paper's headline metric is
// the training-set maximal relative error, §VI-C).

// TrainedModel is a fitted model plus the training-set error metrics the
// serving layer attaches to every prediction from it.
type TrainedModel struct {
	Model models.Model
	// MaxTrainErr and GeoTrainErr are the maximal and geomean absolute
	// relative errors over the training samples.
	MaxTrainErr, GeoTrainErr float64
}

// Key names the dataset in the registry's "workload@platform" form.
func (d *Dataset) Key() string { return d.Workload + "@" + d.Platform }

// Train fits a fresh model of the given registry name on the dataset's
// protocol samples and measures its training errors.
func (d *Dataset) Train(name string) (*TrainedModel, error) {
	m, err := models.ByName(name)
	if err != nil {
		return nil, err
	}
	if len(d.Samples) == 0 {
		return nil, fmt.Errorf("experiment: %s: no samples to train %s on", d.Key(), name)
	}
	maxErr, geoErr, err := models.Evaluate(m, d.Samples)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s: training %s: %w", d.Key(), name, err)
	}
	return &TrainedModel{Model: m, MaxTrainErr: maxErr, GeoTrainErr: geoErr}, nil
}

// TrainModels fits every named model (nil or empty means the full
// registry) and returns them keyed by model name.
func (d *Dataset) TrainModels(names []string) (map[string]*TrainedModel, error) {
	if len(names) == 0 {
		names = append(append([]string{}, models.PriorNames...), models.NewNames...)
	}
	out := make(map[string]*TrainedModel, len(names))
	for _, name := range names {
		tm, err := d.Train(name)
		if err != nil {
			return nil, err
		}
		out[name] = tm
	}
	return out, nil
}
