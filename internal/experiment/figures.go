package experiment

import (
	"fmt"
	"math"
	"sort"

	"mosaic/internal/models"
	"mosaic/internal/pmu"
	"mosaic/internal/stats"
)

// ModelError is one model's error on one dataset.
type ModelError struct {
	Model  string
	MaxErr float64
	GeoErr float64
}

// EvaluateModels fits and evaluates all nine registry models on the
// dataset's samples (the paper's fit-all protocol, §VI-C).
func EvaluateModels(ds *Dataset) ([]ModelError, error) {
	out := make([]ModelError, 0, len(models.Registry()))
	for _, f := range models.Registry() {
		m := f()
		maxErr, geoErr, err := models.Evaluate(m, ds.Samples)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s on %s/%s: %w", m.Name(), ds.Workload, ds.Platform, err)
		}
		out = append(out, ModelError{Model: m.Name(), MaxErr: maxErr, GeoErr: geoErr})
	}
	return out, nil
}

// Figure2 aggregates the worst-case error per model over all datasets —
// the numbers behind Figure 2a (prior models) and 2b (new models).
func Figure2(all []*Dataset) (map[string]float64, error) {
	worst := make(map[string]float64)
	for _, ds := range all {
		errs, err := EvaluateModels(ds)
		if err != nil {
			return nil, err
		}
		for _, e := range errs {
			if e.MaxErr > worst[e.Model] {
				worst[e.Model] = e.MaxErr
			}
		}
	}
	return worst, nil
}

// PerBenchErrors is the data behind one platform chart of Figures 5/6:
// error per workload per model.
type PerBenchErrors struct {
	Platform  string
	Workloads []string
	Models    []string
	// Max[i][j] is workload i's maximal error under model j; Geo is the
	// geometric mean.
	Max [][]float64
	Geo [][]float64
}

// PerBenchmark computes Figure 5/6 data for one platform from its
// datasets (excluding TLB-insensitive workloads, as the paper does for
// gapbs/bfs-road on Broadwell).
func PerBenchmark(platform string, all []*Dataset) (*PerBenchErrors, error) {
	var names []string
	for _, f := range models.Registry() {
		names = append(names, f().Name())
	}
	out := &PerBenchErrors{Platform: platform, Models: names}
	for _, ds := range all {
		if ds.Platform != platform {
			continue
		}
		if !ds.TLBSensitive {
			continue
		}
		errs, err := EvaluateModels(ds)
		if err != nil {
			return nil, err
		}
		maxRow := make([]float64, len(errs))
		geoRow := make([]float64, len(errs))
		for j, e := range errs {
			maxRow[j] = e.MaxErr
			geoRow[j] = e.GeoErr
		}
		out.Workloads = append(out.Workloads, ds.Workload)
		out.Max = append(out.Max, maxRow)
		out.Geo = append(out.Geo, geoRow)
	}
	return out, nil
}

// CurvePoint is one sample on a runtime-vs-walk-cycles chart.
type CurvePoint struct {
	Layout string
	C      float64
	R      float64
}

// Curve is the data behind the per-workload charts (Figures 3, 7, 8, 10,
// 11): measured samples sorted by walk cycles, plus each requested model's
// prediction at those samples.
type Curve struct {
	Workload    string
	Platform    string
	Points      []CurvePoint
	Predictions map[string][]float64
	Errors      map[string]float64 // per-model max relative error
}

// CurveFor builds the chart data, fitting each named model on the
// dataset's samples.
func CurveFor(ds *Dataset, modelNames []string) (*Curve, error) {
	idx := make([]int, len(ds.Samples))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ds.Samples[idx[a]].C < ds.Samples[idx[b]].C })
	cv := &Curve{
		Workload:    ds.Workload,
		Platform:    ds.Platform,
		Predictions: make(map[string][]float64, len(modelNames)),
		Errors:      make(map[string]float64, len(modelNames)),
	}
	ordered := make([]pmu.Sample, len(idx))
	for i, k := range idx {
		s := ds.Samples[k]
		ordered[i] = s
		cv.Points = append(cv.Points, CurvePoint{Layout: s.Layout, C: s.C, R: s.R})
	}
	for _, name := range modelNames {
		m, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		if err := m.Fit(ds.Samples); err != nil {
			return nil, fmt.Errorf("experiment: fitting %s: %w", name, err)
		}
		preds := make([]float64, len(ordered))
		y := make([]float64, len(ordered))
		for i, s := range ordered {
			preds[i] = m.Predict(s.H, s.M, s.C)
			y[i] = s.R
		}
		cv.Predictions[name] = preds
		cv.Errors[name] = stats.MaxAbsRelErr(y, preds)
	}
	return cv, nil
}

// UnderpredictionAtLowC measures how optimistic a model is at the lowest-
// walk-cycle sample (Figure 7's 42% observation for Basu on
// gapbs/sssp-twitter): positive values mean the model predicts a runtime
// below the measured one.
func UnderpredictionAtLowC(ds *Dataset, modelName string) (float64, error) {
	m, err := models.ByName(modelName)
	if err != nil {
		return 0, err
	}
	if err := m.Fit(ds.Samples); err != nil {
		return 0, err
	}
	best := ds.Samples[0]
	for _, s := range ds.Samples {
		if s.C < best.C {
			best = s
		}
	}
	pred := m.Predict(best.H, best.M, best.C)
	return (best.R - pred) / best.R, nil
}

// FittedSlope returns the poly1 regression slope dR/dC for the dataset —
// the α of Figures 8/9. Values above 1 mean each walk cycle costs more
// than one runtime cycle (cache pollution).
func FittedSlope(ds *Dataset) (float64, error) {
	p := models.NewPoly(1)
	if err := p.Fit(ds.Samples); err != nil {
		return 0, err
	}
	return p.Slope(meanC(ds.Samples)), nil
}

func meanC(samples []pmu.Sample) float64 {
	var sum float64
	for _, s := range samples {
		sum += s.C
	}
	return sum / float64(len(samples))
}

// Table6 computes the K-fold cross-validation maximal errors of the new
// models across all datasets (the paper's Table 6, K matching its 54/9
// fold shape by default).
func Table6(all []*Dataset, k int) (map[string]float64, error) {
	worst := make(map[string]float64)
	factories := map[string]models.Factory{
		"poly1":    func() models.Model { return models.NewPoly(1) },
		"poly2":    func() models.Model { return models.NewPoly(2) },
		"poly3":    func() models.Model { return models.NewPoly(3) },
		"mosmodel": func() models.Model { return models.NewMosmodel() },
	}
	for _, ds := range all {
		for name, f := range factories {
			e, err := models.CrossValidate(f, ds.Samples, k, seedFor(ds.Workload+ds.Platform))
			if err != nil {
				return nil, fmt.Errorf("experiment: CV %s on %s/%s: %w", name, ds.Workload, ds.Platform, err)
			}
			if e > worst[name] {
				worst[name] = e
			}
		}
	}
	return worst, nil
}

// Table7Row is one counter row of the paper's Table 7, in billions-free
// raw units, split program/walker.
type Table7Row struct {
	Name        string
	Program4K   uint64
	Program2M   uint64
	Walker4K    uint64
	Walker2M    uint64
	WalkerSplit bool // whether the walker columns are meaningful
}

// Table7 compares the 4KB and 2MB baseline counters of a dataset —
// the paper runs it for spec17/xalancbmk_s on Broadwell.
func Table7(ds *Dataset) ([]Table7Row, error) {
	c4, ok4 := ds.Counters["4KB"]
	c2, ok2 := ds.Counters["2MB"]
	if !ok4 || !ok2 {
		return nil, fmt.Errorf("experiment: dataset lacks 4KB/2MB baselines")
	}
	return []Table7Row{
		{Name: "runtime cycles", Program4K: c4.R, Program2M: c2.R},
		{Name: "walk cycles", Program4K: c4.C, Program2M: c2.C},
		{Name: "TLB misses", Program4K: c4.M, Program2M: c2.M},
		{Name: "L1d loads", Program4K: c4.L1DLoadsProgram, Program2M: c2.L1DLoadsProgram,
			Walker4K: c4.L1DLoadsWalker, Walker2M: c2.L1DLoadsWalker, WalkerSplit: true},
		{Name: "L2 loads", Program4K: c4.L2LoadsProgram, Program2M: c2.L2LoadsProgram,
			Walker4K: c4.L2LoadsWalker, Walker2M: c2.L2LoadsWalker, WalkerSplit: true},
		{Name: "L3 loads", Program4K: c4.L3LoadsProgram, Program2M: c2.L3LoadsProgram,
			Walker4K: c4.L3LoadsWalker, Walker2M: c2.L3LoadsWalker, WalkerSplit: true},
	}, nil
}

// Table8Row is one workload row of Table 8: R² per input per platform.
type Table8Row struct {
	Workload string
	// R2 maps platform → [C, M, H] coefficients of determination.
	R2 map[string][3]float64
}

// Table8 computes the R² of single-variable linear regressions in C, M,
// and H for every dataset, grouped by workload.
func Table8(all []*Dataset) ([]Table8Row, error) {
	byWorkload := make(map[string]*Table8Row)
	var order []string
	for _, ds := range all {
		row, ok := byWorkload[ds.Workload]
		if !ok {
			row = &Table8Row{Workload: ds.Workload, R2: make(map[string][3]float64)}
			byWorkload[ds.Workload] = row
			order = append(order, ds.Workload)
		}
		var vals [3]float64
		for i, which := range []string{"C", "M", "H"} {
			r2, err := models.SingleVarR2(ds.Samples, which)
			if err != nil {
				return nil, err
			}
			vals[i] = r2
		}
		row.R2[ds.Platform] = vals
	}
	out := make([]Table8Row, 0, len(order))
	for _, w := range order {
		out = append(out, *byWorkload[w])
	}
	return out, nil
}

// CaseStudy1G is the §VII-D validation: fit every model on the 4KB/2MB
// mosaic samples and predict the 1GB-pages layout, returning each model's
// relative error on that held-out point.
func CaseStudy1G(ds *Dataset) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, f := range models.Registry() {
		m := f()
		if err := m.Fit(ds.Samples); err != nil {
			return nil, fmt.Errorf("experiment: case study %s: %w", m.Name(), err)
		}
		s := ds.Sample1G
		pred := m.Predict(s.H, s.M, s.C)
		out[m.Name()] = math.Abs(s.R-pred) / s.R
	}
	return out, nil
}
