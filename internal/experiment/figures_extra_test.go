package experiment

import (
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/pmu"
	"mosaic/internal/workloads"
)

func TestPerBenchmarkEmptyPlatform(t *testing.T) {
	pb, err := PerBenchmark("Nonexistent", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pb.Workloads) != 0 {
		t.Errorf("unexpected workloads: %v", pb.Workloads)
	}
	if len(pb.Models) != 9 {
		t.Errorf("models header = %d", len(pb.Models))
	}
}

func TestTable7MissingBaselines(t *testing.T) {
	ds := &Dataset{Workload: "w", Platform: "p", Counters: map[string]pmu.Counters{}}
	if _, err := Table7(ds); err == nil {
		t.Error("missing baselines should fail")
	}
}

func TestUnderpredictionUnknownModel(t *testing.T) {
	ds := collectQuick(t, "gups/8GB", arch.SandyBridge)
	if _, err := UnderpredictionAtLowC(ds, "nope"); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestTable8EmptyInput(t *testing.T) {
	rows, err := Table8(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("rows = %v", rows)
	}
}

func TestPartialSimulateAgainstRunLayout(t *testing.T) {
	r := quickRunner()
	wd, err := r.Prepare(mustWorkload(t, "gups/8GB"))
	if err != nil {
		t.Fatal(err)
	}
	lay := wd.Target.Baseline4K()
	pm, err := r.PartialSimulate(wd, arch.Haswell, lay, true)
	if err != nil {
		t.Fatal(err)
	}
	full, err := r.RunLayout(wd, arch.Haswell, lay)
	if err != nil {
		t.Fatal(err)
	}
	if pm.H != full.H || pm.M != full.M || pm.C != full.C {
		t.Errorf("partial (H=%d M=%d C=%d) != full (H=%d M=%d C=%d)",
			pm.H, pm.M, pm.C, full.H, full.M, full.C)
	}
	// Low-fidelity partial simulation still matches H and M exactly.
	cheap, err := r.PartialSimulate(wd, arch.Haswell, lay, false)
	if err != nil {
		t.Fatal(err)
	}
	if cheap.H != full.H || cheap.M != full.M {
		t.Errorf("cheap partial H/M = %d/%d, full = %d/%d", cheap.H, cheap.M, full.H, full.M)
	}
}

func mustWorkload(t *testing.T, name string) workloads.Workload {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
