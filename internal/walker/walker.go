// Package walker models the hardware page-table walker: the unit that
// services L2 TLB misses by reading up to four page-table entries through
// the cache hierarchy. Page-walk caches (PWCs) let the walker skip upper
// levels; hugepages shorten the walk structurally (a 2MB page needs three
// loads, a 1GB page two). Walker loads are tagged so the cache hierarchy
// counts them separately — the program/walker split of the paper's Table 7.
package walker

import (
	"mosaic/internal/arch"
	"mosaic/internal/cache"
	"mosaic/internal/mem"
)

// pwc is one fully associative page-walk cache with LRU replacement.
// Recency is an exact linked list of entry indices (the scheme cache.Cache
// uses), so refreshing an already-MRU key — the common case, since a walk
// re-inserts the keys its own PWC lookup just hit — is a single compare,
// and eviction reads the victim off the list tail.
type pwc struct {
	keys       []uint64
	prev, next []uint16
	head, tail uint16
	n          int // filled entries; keys[:n] are live
}

func newPWC(entries int) *pwc {
	if entries <= 0 {
		return nil
	}
	return &pwc{
		keys: make([]uint64, entries),
		prev: make([]uint16, entries),
		next: make([]uint16, entries),
	}
}

// touch moves live entry i to the MRU head.
func (p *pwc) touch(i int) {
	h := int(p.head)
	if h == i {
		return
	}
	pr := p.prev[i]
	if int(p.tail) == i {
		p.tail = pr
	} else {
		n := p.next[i]
		p.prev[n] = pr
		p.next[pr] = n
	}
	p.prev[h] = uint16(i)
	p.next[i] = uint16(h)
	p.head = uint16(i)
}

func (p *pwc) lookup(key uint64) bool {
	if p == nil {
		return false
	}
	for i, k := range p.keys[:p.n] {
		if k == key {
			p.touch(i)
			return true
		}
	}
	return false
}

func (p *pwc) insert(key uint64) {
	if p == nil {
		return
	}
	if p.n > 0 && p.keys[p.head] == key {
		return // already MRU — the usual case right after a hit
	}
	for i, k := range p.keys[:p.n] {
		if k == key {
			p.touch(i)
			return
		}
	}
	if p.n < len(p.keys) {
		i := p.n
		p.keys[i] = key
		if i == 0 {
			p.head, p.tail = 0, 0
		} else {
			p.prev[p.head] = uint16(i)
			p.next[i] = p.head
			p.head = uint16(i)
		}
		p.n++
		return
	}
	victim := int(p.tail)
	p.keys[victim] = key
	p.touch(victim)
}

// reset empties the PWC, restoring just-built behavior.
func (p *pwc) reset() {
	if p == nil {
		return
	}
	p.n = 0
	p.head, p.tail = 0, 0
}

// Result describes one serviced walk.
type Result struct {
	// Latency is the walk's duration in cycles: the sum of the memory
	// latencies of the entry loads (they are dependent, hence serial).
	Latency int
	// Refs is the number of page-table entry loads issued.
	Refs int
	// Skipped is the number of upper levels resolved by PWC hits.
	Skipped int
	// Phys and Size are the translation's result.
	Phys mem.Addr
	Size mem.PageSize
	// Fault reports a missing translation (never happens in the
	// experiments: pools are fully pre-mapped).
	Fault bool
}

// Stats aggregates walker activity.
type Stats struct {
	Walks      uint64
	WalkCycles uint64
	EntryLoads uint64
	PWCHitPML4 uint64
	PWCHitPDPT uint64
	PWCHitPD   uint64
	Faults     uint64
}

// Walker services page walks against one page table through one cache
// hierarchy.
type Walker struct {
	trans   *mem.Translator
	hier    *cache.Hierarchy
	pwcPML4 *pwc // caches PML4 entries, keyed by VA bits 47:39
	pwcPDPT *pwc // caches PDPT entries, keyed by VA bits 47:30
	pwcPD   *pwc // caches PD entries, keyed by VA bits 47:21
	stats   Stats
	// scratch is the reused walk-result buffer; refs are consumed before
	// the next walk overwrites it.
	scratch mem.Translation
}

// New builds a walker with the platform's PWC sizes. Walks resolve through
// trans — typically the same memo the owning machine translates with, so a
// TLB miss's walk refs come from a region entry the preceding translation
// just touched.
func New(trans *mem.Translator, hier *cache.Hierarchy, cfg arch.PWCConfig) *Walker {
	return &Walker{
		trans:   trans,
		hier:    hier,
		pwcPML4: newPWC(cfg.PML4Entries),
		pwcPDPT: newPWC(cfg.PDPTEntries),
		pwcPD:   newPWC(cfg.PDEntries),
	}
}

// Walk services one L2 TLB miss for virtual address v. The walker first
// consults its PWCs, deepest level first, then issues the remaining
// dependent entry loads through the cache hierarchy and sums their
// latencies — the four (or fewer) non-overlapping reads the paper
// describes in §II-B.
func (w *Walker) Walk(v mem.Addr) Result {
	w.stats.Walks++

	skip := 0
	switch {
	case w.pwcPD.lookup(uint64(v) >> 21):
		skip = 3
		w.stats.PWCHitPD++
	case w.pwcPDPT.lookup(uint64(v) >> 30):
		skip = 2
		w.stats.PWCHitPDPT++
	case w.pwcPML4.lookup(uint64(v) >> 39):
		skip = 1
		w.stats.PWCHitPML4++
	}

	tr := &w.scratch
	ok := w.trans.WalkFrom(v, skip, tr)
	res := Result{Skipped: skip}
	if !ok {
		w.stats.Faults++
		res.Fault = true
		return res
	}
	for i := 0; i < tr.NumRefs; i++ {
		_, lat := w.hier.Access(tr.Refs[i].EntryPhys, true)
		res.Latency += lat
		res.Refs++
	}
	w.stats.EntryLoads += uint64(res.Refs)
	w.stats.WalkCycles += uint64(res.Latency)
	res.Phys = tr.Phys
	res.Size = tr.Size

	// Install the non-terminal entries this walk traversed into the PWCs.
	// The terminal entry goes to the TLB (the caller's job), not the PWC.
	leafLevel := tr.Size.Level()
	if leafLevel < 4 {
		w.pwcPML4.insert(uint64(v) >> 39)
	}
	if leafLevel < 3 {
		w.pwcPDPT.insert(uint64(v) >> 30)
	}
	if leafLevel < 2 {
		w.pwcPD.insert(uint64(v) >> 21)
	}
	return res
}

// Stats returns a copy of the counters.
func (w *Walker) Stats() Stats { return w.stats }

// Reset re-targets the walker at a (possibly different) translator and
// clears the PWCs and counters. A Reset walker walks bit-identically to a
// freshly built one while keeping its PWC storage allocated. The caller is
// responsible for resetting trans itself (the owning machine shares it).
func (w *Walker) Reset(trans *mem.Translator) {
	w.trans = trans
	w.pwcPML4.reset()
	w.pwcPDPT.reset()
	w.pwcPD.reset()
	w.stats = Stats{}
}
