// Package walker models the hardware page-table walker: the unit that
// services L2 TLB misses by reading up to four page-table entries through
// the cache hierarchy. Page-walk caches (PWCs) let the walker skip upper
// levels; hugepages shorten the walk structurally (a 2MB page needs three
// loads, a 1GB page two). Walker loads are tagged so the cache hierarchy
// counts them separately — the program/walker split of the paper's Table 7.
package walker

import (
	"mosaic/internal/arch"
	"mosaic/internal/cache"
	"mosaic/internal/mem"
)

// pwc is one fully associative page-walk cache with LRU replacement.
type pwc struct {
	keys []uint64
	lru  []uint64
	tick uint64
}

func newPWC(entries int) *pwc {
	if entries <= 0 {
		return nil
	}
	return &pwc{keys: make([]uint64, 0, entries), lru: make([]uint64, 0, entries)}
}

func (p *pwc) lookup(key uint64) bool {
	if p == nil {
		return false
	}
	p.tick++
	for i, k := range p.keys {
		if k == key {
			p.lru[i] = p.tick
			return true
		}
	}
	return false
}

func (p *pwc) insert(key uint64) {
	if p == nil {
		return
	}
	p.tick++
	for i, k := range p.keys {
		if k == key {
			p.lru[i] = p.tick
			return
		}
	}
	if len(p.keys) < cap(p.keys) {
		p.keys = append(p.keys, key)
		p.lru = append(p.lru, p.tick)
		return
	}
	victim := 0
	for i := 1; i < len(p.lru); i++ {
		if p.lru[i] < p.lru[victim] {
			victim = i
		}
	}
	p.keys[victim] = key
	p.lru[victim] = p.tick
}

// reset empties the PWC and rewinds its recency clock, restoring
// just-built behavior.
func (p *pwc) reset() {
	if p == nil {
		return
	}
	p.keys = p.keys[:0]
	p.lru = p.lru[:0]
	p.tick = 0
}

// Result describes one serviced walk.
type Result struct {
	// Latency is the walk's duration in cycles: the sum of the memory
	// latencies of the entry loads (they are dependent, hence serial).
	Latency int
	// Refs is the number of page-table entry loads issued.
	Refs int
	// Skipped is the number of upper levels resolved by PWC hits.
	Skipped int
	// Phys and Size are the translation's result.
	Phys mem.Addr
	Size mem.PageSize
	// Fault reports a missing translation (never happens in the
	// experiments: pools are fully pre-mapped).
	Fault bool
}

// Stats aggregates walker activity.
type Stats struct {
	Walks      uint64
	WalkCycles uint64
	EntryLoads uint64
	PWCHitPML4 uint64
	PWCHitPDPT uint64
	PWCHitPD   uint64
	Faults     uint64
}

// Walker services page walks against one page table through one cache
// hierarchy.
type Walker struct {
	pt      *mem.PageTable
	hier    *cache.Hierarchy
	pwcPML4 *pwc // caches PML4 entries, keyed by VA bits 47:39
	pwcPDPT *pwc // caches PDPT entries, keyed by VA bits 47:30
	pwcPD   *pwc // caches PD entries, keyed by VA bits 47:21
	stats   Stats
}

// New builds a walker with the platform's PWC sizes.
func New(pt *mem.PageTable, hier *cache.Hierarchy, cfg arch.PWCConfig) *Walker {
	return &Walker{
		pt:      pt,
		hier:    hier,
		pwcPML4: newPWC(cfg.PML4Entries),
		pwcPDPT: newPWC(cfg.PDPTEntries),
		pwcPD:   newPWC(cfg.PDEntries),
	}
}

// Walk services one L2 TLB miss for virtual address v. The walker first
// consults its PWCs, deepest level first, then issues the remaining
// dependent entry loads through the cache hierarchy and sums their
// latencies — the four (or fewer) non-overlapping reads the paper
// describes in §II-B.
func (w *Walker) Walk(v mem.Addr) Result {
	w.stats.Walks++

	skip := 0
	switch {
	case w.pwcPD.lookup(uint64(v) >> 21):
		skip = 3
		w.stats.PWCHitPD++
	case w.pwcPDPT.lookup(uint64(v) >> 30):
		skip = 2
		w.stats.PWCHitPDPT++
	case w.pwcPML4.lookup(uint64(v) >> 39):
		skip = 1
		w.stats.PWCHitPML4++
	}

	tr, ok := w.pt.WalkFrom(v, skip)
	res := Result{Skipped: skip}
	if !ok {
		w.stats.Faults++
		res.Fault = true
		return res
	}
	for i := 0; i < tr.NumRefs; i++ {
		_, lat := w.hier.Access(tr.Refs[i].EntryPhys, true)
		res.Latency += lat
		res.Refs++
	}
	w.stats.EntryLoads += uint64(res.Refs)
	w.stats.WalkCycles += uint64(res.Latency)
	res.Phys = tr.Phys
	res.Size = tr.Size

	// Install the non-terminal entries this walk traversed into the PWCs.
	// The terminal entry goes to the TLB (the caller's job), not the PWC.
	leafLevel := tr.Size.Level()
	if leafLevel < 4 {
		w.pwcPML4.insert(uint64(v) >> 39)
	}
	if leafLevel < 3 {
		w.pwcPDPT.insert(uint64(v) >> 30)
	}
	if leafLevel < 2 {
		w.pwcPD.insert(uint64(v) >> 21)
	}
	return res
}

// Stats returns a copy of the counters.
func (w *Walker) Stats() Stats { return w.stats }

// Reset re-targets the walker at a (possibly different) page table and
// clears the PWCs and counters. A Reset walker walks bit-identically to a
// freshly built one while keeping its PWC storage allocated.
func (w *Walker) Reset(pt *mem.PageTable) {
	w.pt = pt
	w.pwcPML4.reset()
	w.pwcPDPT.reset()
	w.pwcPD.reset()
	w.stats = Stats{}
}
