package walker

import "fmt"

// Checkpointable state: a PWC's behavior is determined by its live keys,
// the recency linked list over them, and the fill count; the walker adds
// only its cumulative counters on top. The translator it resolves through
// is restored by the owning machine (the memo is a pure performance cache,
// invisible to counters), so walker state carries no translator content.

// PWCState is the checkpointed content of one page-walk cache. Keys, Prev,
// and Next hold only the live entries (keys[:n] of the ring storage);
// Entries records the configured capacity so a restore into a
// differently-sized PWC fails loudly.
type PWCState struct {
	Entries    int
	Keys       []uint64
	Prev, Next []uint16
	Head, Tail uint16
}

func (p *pwc) snapshot() PWCState {
	if p == nil {
		return PWCState{}
	}
	return PWCState{
		Entries: len(p.keys),
		Keys:    append([]uint64(nil), p.keys[:p.n]...),
		Prev:    append([]uint16(nil), p.prev[:p.n]...),
		Next:    append([]uint16(nil), p.next[:p.n]...),
		Head:    p.head,
		Tail:    p.tail,
	}
}

func (p *pwc) restore(name string, s PWCState) error {
	if p == nil {
		if s.Entries != 0 {
			return fmt.Errorf("walker: restore of %s state into a walker without that PWC (platform mismatch?)", name)
		}
		return nil
	}
	if s.Entries != len(p.keys) {
		return fmt.Errorf("walker: %s: restore of %d-entry state into %d entries (platform mismatch?)", name, s.Entries, len(p.keys))
	}
	n := len(s.Keys)
	if n > len(p.keys) || len(s.Prev) != n || len(s.Next) != n {
		return fmt.Errorf("walker: %s: inconsistent PWC state (%d keys, %d prev, %d next, %d entries)",
			name, n, len(s.Prev), len(s.Next), s.Entries)
	}
	if n > 0 && (int(s.Head) >= n || int(s.Tail) >= n) {
		return fmt.Errorf("walker: %s: PWC list head/tail %d/%d out of range for %d live entries", name, s.Head, s.Tail, n)
	}
	copy(p.keys, s.Keys)
	copy(p.prev, s.Prev)
	copy(p.next, s.Next)
	p.head, p.tail = s.Head, s.Tail
	p.n = n
	return nil
}

// State is the checkpointed content of a walker: all three PWCs plus the
// cumulative counters.
type State struct {
	PML4, PDPT, PD PWCState
	Stats          Stats
}

// Snapshot captures the walker's PWC contents and counters.
//
//mosvet:ckptexempt trans,hier,scratch trans and hier are wiring to sibling components snapshotted through their own contracts; scratch is a per-walk buffer that is dead between walks
func (w *Walker) Snapshot() State {
	return State{
		PML4:  w.pwcPML4.snapshot(),
		PDPT:  w.pwcPDPT.snapshot(),
		PD:    w.pwcPD.snapshot(),
		Stats: w.stats,
	}
}

// Restore overwrites the walker's PWCs and counters with a snapshot taken
// from a walker of identical configuration. The translator binding is
// untouched — the owning machine manages it, exactly as with Reset.
func (w *Walker) Restore(s State) error {
	if err := w.pwcPML4.restore("PWC-PML4", s.PML4); err != nil {
		return err
	}
	if err := w.pwcPDPT.restore("PWC-PDPT", s.PDPT); err != nil {
		return err
	}
	if err := w.pwcPD.restore("PWC-PD", s.PD); err != nil {
		return err
	}
	w.stats = s.Stats
	return nil
}
