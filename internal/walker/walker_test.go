package walker

import (
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/cache"
	"mosaic/internal/mem"
)

func setup(t *testing.T) (*mem.AddressSpace, *cache.Hierarchy) {
	t.Helper()
	as, err := mem.NewAddressSpace(1 << 36)
	if err != nil {
		t.Fatal(err)
	}
	h, err := cache.NewHierarchy(arch.SandyBridge)
	if err != nil {
		t.Fatal(err)
	}
	return as, h
}

func TestWalkRefCounts(t *testing.T) {
	cases := []struct {
		size mem.PageSize
		refs int
	}{
		{mem.Page4K, 4},
		{mem.Page2M, 3},
		{mem.Page1G, 2},
	}
	for _, c := range cases {
		as, h := setup(t)
		base := mem.Addr(c.size) * 4
		if err := as.Map(mem.NewRegion(base, uint64(c.size)), c.size); err != nil {
			t.Fatal(err)
		}
		// No PWC: all levels load from memory.
		w := New(mem.NewTranslator(as.PageTable()), h, arch.PWCConfig{})
		res := w.Walk(base + 5)
		if res.Fault {
			t.Fatalf("%s: fault", c.size)
		}
		if res.Refs != c.refs {
			t.Errorf("%s: refs = %d, want %d", c.size, res.Refs, c.refs)
		}
		if res.Size != c.size {
			t.Errorf("%s: size = %v", c.size, res.Size)
		}
		if res.Latency < c.refs*4 {
			t.Errorf("%s: latency %d suspiciously low for %d dependent loads", c.size, res.Latency, res.Refs)
		}
	}
}

func TestPWCSkipsLevels(t *testing.T) {
	as, h := setup(t)
	if err := as.Map(mem.NewRegion(0, 64<<20), mem.Page4K); err != nil {
		t.Fatal(err)
	}
	w := New(mem.NewTranslator(as.PageTable()), h, arch.SandyBridge.PWC)
	// First walk: cold PWC, 4 refs.
	r1 := w.Walk(0x1000)
	if r1.Refs != 4 || r1.Skipped != 0 {
		t.Fatalf("cold walk: refs=%d skipped=%d", r1.Refs, r1.Skipped)
	}
	// Second walk within the same 2MB region: the PDE PWC entry lets the
	// walker go straight to the PTE.
	r2 := w.Walk(0x2000)
	if r2.Skipped != 3 || r2.Refs != 1 {
		t.Fatalf("PWC walk: refs=%d skipped=%d, want 1/3", r2.Refs, r2.Skipped)
	}
	st := w.Stats()
	if st.PWCHitPD != 1 {
		t.Errorf("PWC PD hits = %d, want 1", st.PWCHitPD)
	}
	// Walks in a different 2MB region but same 1GB region: PDPT hit.
	r3 := w.Walk(mem.Addr(40 << 20))
	if r3.Skipped != 2 || r3.Refs != 2 {
		t.Fatalf("PDPT-hit walk: refs=%d skipped=%d, want 2/2", r3.Refs, r3.Skipped)
	}
}

func TestTerminalEntriesNotInPWC(t *testing.T) {
	as, h := setup(t)
	// A 2MB page's PDE is terminal; it must not enter the PD PWC.
	if err := as.Map(mem.NewRegion(0, 4<<20), mem.Page2M); err != nil {
		t.Fatal(err)
	}
	w := New(mem.NewTranslator(as.PageTable()), h, arch.SandyBridge.PWC)
	w.Walk(0x1000)
	r := w.Walk(0x2000) // same 2MB page region; PDPT PWC should hit, PD not
	if r.Skipped != 2 {
		t.Errorf("2MB re-walk skipped = %d, want 2 (PDPT hit, no PD entry)", r.Skipped)
	}
}

func TestWalkFault(t *testing.T) {
	as, h := setup(t)
	w := New(mem.NewTranslator(as.PageTable()), h, arch.SandyBridge.PWC)
	res := w.Walk(0xdead000)
	if !res.Fault {
		t.Error("walk of unmapped address should fault")
	}
	if w.Stats().Faults != 1 {
		t.Error("fault not counted")
	}
}

func TestWalkerLoadsCountedAsWalker(t *testing.T) {
	as, h := setup(t)
	if err := as.Map(mem.NewRegion(0, 2<<20), mem.Page4K); err != nil {
		t.Fatal(err)
	}
	w := New(mem.NewTranslator(as.PageTable()), h, arch.PWCConfig{})
	w.Walk(0x1000)
	st := h.Stats()
	if st.L1Loads.Walker != 4 || st.L1Loads.Program != 0 {
		t.Errorf("cache loads = %+v, want 4 walker / 0 program", st.L1Loads)
	}
}

func TestWarmWalksGetFaster(t *testing.T) {
	as, h := setup(t)
	if err := as.Map(mem.NewRegion(0, 2<<20), mem.Page4K); err != nil {
		t.Fatal(err)
	}
	w := New(mem.NewTranslator(as.PageTable()), h, arch.PWCConfig{}) // isolate cache warming
	cold := w.Walk(0x1000).Latency
	warm := w.Walk(0x1000).Latency
	if warm >= cold {
		t.Errorf("warm walk (%d) not faster than cold (%d)", warm, cold)
	}
}

func TestPWCLRUReplacement(t *testing.T) {
	p := newPWC(2)
	p.insert(1)
	p.insert(2)
	p.lookup(1) // refresh 1
	p.insert(3) // evicts 2
	if !p.lookup(1) || p.lookup(2) || !p.lookup(3) {
		t.Error("PWC LRU replacement wrong")
	}
	// Re-inserting an existing key must not duplicate it.
	p.insert(3)
	if len(p.keys) != 2 {
		t.Errorf("PWC grew to %d entries", len(p.keys))
	}
	var nilp *pwc
	if nilp.lookup(1) {
		t.Error("nil PWC should miss")
	}
	nilp.insert(1) // must not panic
}

func TestWalkCycleAccounting(t *testing.T) {
	as, h := setup(t)
	if err := as.Map(mem.NewRegion(0, 2<<20), mem.Page4K); err != nil {
		t.Fatal(err)
	}
	w := New(mem.NewTranslator(as.PageTable()), h, arch.PWCConfig{})
	total := 0
	for i := 0; i < 10; i++ {
		total += w.Walk(mem.Addr(i) << 12).Latency
	}
	if w.Stats().WalkCycles != uint64(total) {
		t.Errorf("WalkCycles = %d, want %d", w.Stats().WalkCycles, total)
	}
	if w.Stats().Walks != 10 {
		t.Errorf("Walks = %d", w.Stats().Walks)
	}
}
