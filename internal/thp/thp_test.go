package thp

import (
	"testing"

	"mosaic/internal/mem"
)

func space(t *testing.T) *mem.AddressSpace {
	t.Helper()
	as, err := mem.NewAddressSpace(1 << 36)
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func TestScanPromotesAlignedChunks(t *testing.T) {
	as := space(t)
	// 8MB of 4KB pages at a 2MB-aligned base: 4 promotable chunks.
	r := mem.NewRegion(mem.Addr(mem.Page1G), 8<<20)
	if err := as.Map(r, mem.Page4K); err != nil {
		t.Fatal(err)
	}
	st, err := New(DefaultConfig()).Scan(as)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 4 || st.Promoted != 4 {
		t.Errorf("scanned/promoted = %d/%d, want 4/4", st.Scanned, st.Promoted)
	}
	if got := as.PagesBySize()[mem.Page2M]; got != 4 {
		t.Errorf("2MB pages = %d, want 4", got)
	}
	if got := as.PagesBySize()[mem.Page4K]; got != 0 {
		t.Errorf("4KB pages = %d, want 0", got)
	}
	// Translations still resolve everywhere with the new size.
	for v := r.Start; v < r.End; v += 0x1000 {
		if _, size, ok := as.Translate(v); !ok || size != mem.Page2M {
			t.Fatalf("%#x: ok=%v size=%v", uint64(v), ok, size)
		}
	}
}

func TestScanLeavesMisalignedTails(t *testing.T) {
	as := space(t)
	// Start 4KB past a 2MB boundary: the head (2MB-4KB) and any tail stay 4KB.
	start := mem.Addr(mem.Page1G) + 0x1000
	if err := as.Map(mem.NewRegion(start, 4<<20), mem.Page4K); err != nil {
		t.Fatal(err)
	}
	st, err := New(DefaultConfig()).Scan(as)
	if err != nil {
		t.Fatal(err)
	}
	if st.Promoted != 1 {
		t.Errorf("promoted = %d, want 1 (only the single aligned chunk)", st.Promoted)
	}
	if st.Misaligned == 0 {
		t.Error("misaligned bytes not reported")
	}
	// The head page is still 4KB-backed.
	if _, size, _ := as.Translate(start); size != mem.Page4K {
		t.Errorf("head backed by %v, want 4KB", size)
	}
}

func TestScanDisabled(t *testing.T) {
	as := space(t)
	if err := as.Map(mem.NewRegion(mem.Addr(mem.Page1G), 4<<20), mem.Page4K); err != nil {
		t.Fatal(err)
	}
	st, err := New(Config{Enabled: false}).Scan(as)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 0 || st.Promoted != 0 {
		t.Errorf("disabled daemon did work: %+v", st)
	}
	if got := as.PagesBySize()[mem.Page2M]; got != 0 {
		t.Errorf("2MB pages = %d, want 0", got)
	}
}

func TestFragmentationLimitsPromotion(t *testing.T) {
	as := space(t)
	if err := as.Map(mem.NewRegion(mem.Addr(mem.Page1G), 32<<20), mem.Page4K); err != nil {
		t.Fatal(err)
	}
	st, err := New(Config{Enabled: true, SuccessRate: 0.5, Seed: 1}).Scan(as)
	if err != nil {
		t.Fatal(err)
	}
	if st.Promoted == 0 || st.FailedAlloc == 0 {
		t.Errorf("50%% success rate should promote some and fail some: %+v", st)
	}
	if st.Promoted+st.FailedAlloc != st.Scanned {
		t.Errorf("accounting broken: %+v", st)
	}
	// Deterministic under the same seed.
	as2 := space(t)
	if err := as2.Map(mem.NewRegion(mem.Addr(mem.Page1G), 32<<20), mem.Page4K); err != nil {
		t.Fatal(err)
	}
	st2, err := New(Config{Enabled: true, SuccessRate: 0.5, Seed: 1}).Scan(as2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Promoted != st.Promoted {
		t.Errorf("same seed, different promotions: %d vs %d", st2.Promoted, st.Promoted)
	}
}

func TestScanIgnoresHugeMappings(t *testing.T) {
	as := space(t)
	if err := as.Map(mem.NewRegion(mem.Addr(mem.Page1G), 4<<20), mem.Page2M); err != nil {
		t.Fatal(err)
	}
	st, err := New(DefaultConfig()).Scan(as)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 0 {
		t.Errorf("2MB mappings must not be rescanned: %+v", st)
	}
}

func TestSecondScanIdempotent(t *testing.T) {
	as := space(t)
	if err := as.Map(mem.NewRegion(mem.Addr(mem.Page1G), 8<<20), mem.Page4K); err != nil {
		t.Fatal(err)
	}
	d := New(DefaultConfig())
	if _, err := d.Scan(as); err != nil {
		t.Fatal(err)
	}
	st, err := d.Scan(as)
	if err != nil {
		t.Fatal(err)
	}
	if st.Promoted != 0 {
		t.Errorf("second scan promoted %d chunks", st.Promoted)
	}
}
