// Package thp models Linux Transparent Huge Pages (§V-A): khugepaged-style
// background promotion of 2MB-aligned, fully-populated 4KB ranges to 2MB
// pages. Unlike Mosalloc, THP gives the user no control over *which*
// regions get hugepages, supports only 2MB (not 1GB) pages, and its
// promotions depend on physical-memory fragmentation — the three
// limitations the paper lists as motivation for Mosalloc.
package thp

import (
	"math/rand"

	"mosaic/internal/mem"
)

// Config tunes the modelled THP policy.
type Config struct {
	// Enabled corresponds to /sys/.../transparent_hugepage/enabled=always.
	// When false, Scan does nothing (the "never" mode).
	Enabled bool
	// SuccessRate is the probability that a promotion attempt finds a free
	// 2MB-contiguous physical region. Real THP degrades as physical memory
	// fragments; 1.0 models a freshly booted machine.
	SuccessRate float64
	// Seed makes fragmentation-induced promotion failures deterministic.
	Seed int64
}

// DefaultConfig is THP "always" on an unfragmented machine.
func DefaultConfig() Config {
	return Config{Enabled: true, SuccessRate: 1.0}
}

// Stats reports what a scan did.
type Stats struct {
	// Scanned is the number of 2MB-aligned candidate chunks examined.
	Scanned int
	// Promoted is the number of chunks re-backed with a 2MB page.
	Promoted int
	// FailedAlloc counts promotions skipped by fragmentation.
	FailedAlloc int
	// Misaligned counts bytes that can never be promoted because they sit
	// in mappings too small or misaligned to contain a 2MB chunk.
	Misaligned uint64
}

// Daemon is the modelled khugepaged: it scans an address space and
// promotes eligible ranges.
type Daemon struct {
	cfg Config
	rng *rand.Rand
}

// New builds a daemon.
func New(cfg Config) *Daemon {
	return &Daemon{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Scan walks every 4KB mapping of the space and promotes each 2MB-aligned,
// 2MB-sized chunk to a hugepage, subject to the configured success rate.
// It models one full khugepaged pass over a fully-populated address space
// (the simulated mappings are always resident, so "fully populated" is
// every chunk).
func (d *Daemon) Scan(space *mem.AddressSpace) (Stats, error) {
	var st Stats
	if !d.cfg.Enabled {
		return st, nil
	}
	// Snapshot: Replace mutates the mapping list.
	for _, m := range space.Mappings() {
		if m.Size != mem.Page4K {
			continue
		}
		start := mem.AlignUp(m.Region.Start, mem.Page2M)
		end := mem.AlignDown(m.Region.End, mem.Page2M)
		if end <= start {
			st.Misaligned += m.Region.Len()
			continue
		}
		st.Misaligned += uint64(start-m.Region.Start) + uint64(m.Region.End-end)
		for v := start; v < end; v += mem.Addr(mem.Page2M) {
			st.Scanned++
			if d.cfg.SuccessRate < 1 && d.rng.Float64() >= d.cfg.SuccessRate {
				st.FailedAlloc++
				continue
			}
			if err := space.Replace(mem.NewRegion(v, uint64(mem.Page2M)), mem.Page2M); err != nil {
				return st, err
			}
			st.Promoted++
		}
	}
	return st, nil
}
