package mem

import (
	"testing"
	"testing/quick"
)

func TestPageSizeString(t *testing.T) {
	cases := []struct {
		s    PageSize
		want string
	}{
		{Page4K, "4KB"},
		{Page2M, "2MB"},
		{Page1G, "1GB"},
		{PageSize(123), "PageSize(123)"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("PageSize(%d).String() = %q, want %q", uint64(c.s), got, c.want)
		}
	}
}

func TestPageSizeValid(t *testing.T) {
	for _, s := range PageSizes {
		if !s.Valid() {
			t.Errorf("%s should be valid", s)
		}
	}
	for _, s := range []PageSize{0, 1, 8 << 10, 4 << 20} {
		if s.Valid() {
			t.Errorf("PageSize(%d) should be invalid", uint64(s))
		}
	}
}

func TestPageSizeLevel(t *testing.T) {
	if Page4K.Level() != 1 || Page2M.Level() != 2 || Page1G.Level() != 3 {
		t.Errorf("levels = %d,%d,%d; want 1,2,3", Page4K.Level(), Page2M.Level(), Page1G.Level())
	}
	if PageSize(7).Level() != 0 {
		t.Errorf("invalid size should have level 0")
	}
}

func TestAlignment(t *testing.T) {
	cases := []struct {
		a           Addr
		s           PageSize
		down, up    Addr
		wantAligned bool
	}{
		{0, Page4K, 0, 0, true},
		{1, Page4K, 0, 4096, false},
		{4096, Page4K, 4096, 4096, true},
		{4097, Page4K, 4096, 8192, false},
		{Addr(Page2M) + 5, Page2M, Addr(Page2M), 2 * Addr(Page2M), false},
		{3 * Addr(Page1G), Page1G, 3 * Addr(Page1G), 3 * Addr(Page1G), true},
	}
	for _, c := range cases {
		if got := AlignDown(c.a, c.s); got != c.down {
			t.Errorf("AlignDown(%#x, %s) = %#x, want %#x", uint64(c.a), c.s, uint64(got), uint64(c.down))
		}
		if got := AlignUp(c.a, c.s); got != c.up {
			t.Errorf("AlignUp(%#x, %s) = %#x, want %#x", uint64(c.a), c.s, uint64(got), uint64(c.up))
		}
		if got := IsAligned(c.a, c.s); got != c.wantAligned {
			t.Errorf("IsAligned(%#x, %s) = %v, want %v", uint64(c.a), c.s, got, c.wantAligned)
		}
	}
}

// Property: for any address and page size, AlignDown <= a <= AlignUp, both
// results are aligned, and they differ by at most one page.
func TestAlignmentProperties(t *testing.T) {
	prop := func(raw uint64, pick uint8) bool {
		a := Addr(raw % (1 << 48))
		s := PageSizes[int(pick)%len(PageSizes)]
		d, u := AlignDown(a, s), AlignUp(a, s)
		if d > a || (u < a) {
			return false
		}
		if !IsAligned(d, s) || !IsAligned(u, s) {
			return false
		}
		if u-d != 0 && u-d != Addr(s) {
			return false
		}
		return IsAligned(a, s) == (d == u)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegionBasics(t *testing.T) {
	r := NewRegion(0x1000, 0x2000)
	if r.Start != 0x1000 || r.End != 0x3000 {
		t.Fatalf("NewRegion = %v", r)
	}
	if r.Len() != 0x2000 {
		t.Errorf("Len = %#x", r.Len())
	}
	if r.Empty() {
		t.Error("region should not be empty")
	}
	if !r.Contains(0x1000) || !r.Contains(0x2fff) || r.Contains(0x3000) || r.Contains(0xfff) {
		t.Error("Contains boundary checks failed")
	}
	if (Region{Start: 5, End: 5}).Empty() != true {
		t.Error("zero-length region should be empty")
	}
}

func TestRegionOverlapIntersect(t *testing.T) {
	a := Region{Start: 0x1000, End: 0x3000}
	cases := []struct {
		b       Region
		overlap bool
		inter   Region
	}{
		{Region{0x0, 0x1000}, false, Region{0x1000, 0x1000}},
		{Region{0x3000, 0x4000}, false, Region{0x3000, 0x3000}},
		{Region{0x0, 0x1001}, true, Region{0x1000, 0x1001}},
		{Region{0x2000, 0x8000}, true, Region{0x2000, 0x3000}},
		{Region{0x1800, 0x2000}, true, Region{0x1800, 0x2000}},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.overlap {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, c.b, got, c.overlap)
		}
		got := a.Intersect(c.b)
		if got.Empty() != c.inter.Empty() || (!got.Empty() && got != c.inter) {
			t.Errorf("%v.Intersect(%v) = %v, want %v", a, c.b, got, c.inter)
		}
	}
}

// Property: Overlaps is symmetric and consistent with Intersect emptiness.
func TestRegionOverlapProperty(t *testing.T) {
	prop := func(s1, l1, s2, l2 uint32) bool {
		a := NewRegion(Addr(s1), uint64(l1%1<<20)+1)
		b := NewRegion(Addr(s2), uint64(l2%1<<20)+1)
		if a.Overlaps(b) != b.Overlaps(a) {
			return false
		}
		return a.Overlaps(b) == !a.Intersect(b).Empty()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPageNumber(t *testing.T) {
	if PageNumber(0x3456, Page4K) != 3 {
		t.Errorf("PageNumber(0x3456, 4KB) = %d, want 3", PageNumber(0x3456, Page4K))
	}
	if PageNumber(Addr(Page2M)*7+123, Page2M) != 7 {
		t.Error("PageNumber 2MB failed")
	}
}
