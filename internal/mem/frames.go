package mem

import (
	"errors"
	"fmt"
)

// ErrOutOfMemory is returned when the simulated physical memory is exhausted.
var ErrOutOfMemory = errors.New("mem: out of physical memory")

// FrameAllocator hands out physical frames from a modelled physical address
// space. Allocation is a deterministic bump pointer with per-size free lists,
// so identical call sequences yield identical physical layouts — a property
// the experiments rely on for reproducibility (cache and page-walk behaviour
// depend on physical placement).
type FrameAllocator struct {
	next  Addr
	limit Addr
	free  map[PageSize][]Addr
	used  uint64
}

// NewFrameAllocator models a physical memory of the given size in bytes.
func NewFrameAllocator(size uint64) *FrameAllocator {
	return &FrameAllocator{
		// Frame 0 is reserved so that a zero Addr never aliases a real frame.
		next:  Addr(Page4K),
		limit: Addr(size),
		free:  make(map[PageSize][]Addr),
	}
}

// Alloc returns the base physical address of a newly allocated frame of the
// given page size. Freed frames of the same size are reused first (LIFO).
func (f *FrameAllocator) Alloc(size PageSize) (Addr, error) {
	if !size.Valid() {
		return 0, fmt.Errorf("mem: invalid page size %d", uint64(size))
	}
	if list := f.free[size]; len(list) > 0 {
		frame := list[len(list)-1]
		f.free[size] = list[:len(list)-1]
		f.used += uint64(size)
		return frame, nil
	}
	base := AlignUp(f.next, size)
	end := base + Addr(size)
	if end > f.limit {
		return 0, fmt.Errorf("%w: need %s at %#x, limit %#x",
			ErrOutOfMemory, size, uint64(base), uint64(f.limit))
	}
	f.next = end
	f.used += uint64(size)
	return base, nil
}

// Free returns a frame to the allocator for reuse by later Alloc calls of
// the same size.
func (f *FrameAllocator) Free(frame Addr, size PageSize) {
	f.free[size] = append(f.free[size], frame)
	if f.used >= uint64(size) {
		f.used -= uint64(size)
	}
}

// Used returns the number of bytes currently allocated.
func (f *FrameAllocator) Used() uint64 { return f.used }

// HighWater returns the highest physical address ever handed out.
func (f *FrameAllocator) HighWater() Addr { return f.next }

// Limit returns the size of the modelled physical memory.
func (f *FrameAllocator) Limit() Addr { return f.limit }
