package mem

import (
	"math/rand"
	"testing"
)

// TestTranslatorMatchesPageTable checks the memoized fast path against the
// plain radix walk over a mosaic of all three page sizes, mapped and
// unmapped holes included, with repeated probes to exercise memo hits.
func TestTranslatorMatchesPageTable(t *testing.T) {
	as, err := NewAddressSpace(1 << 34)
	if err != nil {
		t.Fatal(err)
	}
	base := Addr(0x4000000000) // 256GB, 1GB-aligned
	if err := as.Map(NewRegion(base, uint64(Page1G)), Page1G); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(NewRegion(base+Addr(Page1G), 4*uint64(Page2M)), Page2M); err != nil {
		t.Fatal(err)
	}
	// A 4KB area with a hole: map two 2MB-aligned stretches of 4KB pages,
	// leaving the 2MB region between them partially unmapped.
	small := base + 2*Addr(Page1G)
	if err := as.Map(NewRegion(small, uint64(Page2M)), Page4K); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(NewRegion(small+Addr(Page2M)+64<<10, 128<<10), Page4K); err != nil {
		t.Fatal(err)
	}

	tr := NewTranslator(as.PageTable())
	probe := func(v Addr) {
		t.Helper()
		p1, s1, ok1 := tr.Translate(v)
		p2, s2, ok2 := as.PageTable().Translate(v)
		if p1 != p2 || s1 != s2 || ok1 != ok2 {
			t.Fatalf("va %#x: translator (%#x,%v,%v) vs page table (%#x,%v,%v)",
				uint64(v), uint64(p1), s1, ok1, uint64(p2), s2, ok2)
		}
	}

	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		// Spread probes across the whole mosaic plus unmapped surroundings.
		v := base + Addr(rng.Uint64()%(3*uint64(Page1G)))
		probe(v)
	}
	// Edges: region boundaries, page boundaries, the partial region's hole.
	for _, v := range []Addr{
		base, base + Addr(Page1G) - 1, base + Addr(Page1G), base + Addr(Page1G) + Addr(Page2M),
		small, small + 4095, small + 4096, small + Addr(Page2M) - 1,
		small + Addr(Page2M), small + Addr(Page2M) + 64<<10, small + Addr(Page2M) + 64<<10 + 128<<10,
		0, 1 << 46,
	} {
		probe(v)
	}

	// Reset must survive re-targeting at a different table.
	as2, err := NewAddressSpace(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := as2.Map(NewRegion(base, uint64(Page2M)), Page4K); err != nil {
		t.Fatal(err)
	}
	tr.Reset(as2.PageTable())
	p, s, ok := tr.Translate(base + 123)
	p2, s2, ok2 := as2.PageTable().Translate(base + 123)
	if p != p2 || s != s2 || ok != ok2 {
		t.Fatalf("after Reset: (%#x,%v,%v) vs (%#x,%v,%v)", uint64(p), s, ok, uint64(p2), s2, ok2)
	}
}

// TestTranslatorWalkFromMatchesPageTable checks the memoized walk-ref path
// against PageTable.WalkFrom over the same mosaic of page sizes, for every
// PWC skip depth, including faulting addresses (unmapped holes and regions
// with no upper-level path).
func TestTranslatorWalkFromMatchesPageTable(t *testing.T) {
	as, err := NewAddressSpace(1 << 34)
	if err != nil {
		t.Fatal(err)
	}
	base := Addr(0x4000000000)
	if err := as.Map(NewRegion(base, uint64(Page1G)), Page1G); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(NewRegion(base+Addr(Page1G), 4*uint64(Page2M)), Page2M); err != nil {
		t.Fatal(err)
	}
	small := base + 2*Addr(Page1G)
	if err := as.Map(NewRegion(small, uint64(Page2M)), Page4K); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(NewRegion(small+Addr(Page2M)+64<<10, 128<<10), Page4K); err != nil {
		t.Fatal(err)
	}

	tr := NewTranslator(as.PageTable())
	probe := func(v Addr, skip int) {
		t.Helper()
		var got Translation
		ok1 := tr.WalkFrom(v, skip, &got)
		want, ok2 := as.PageTable().WalkFrom(v, skip)
		if ok1 != ok2 || got.NumRefs != want.NumRefs || got.Phys != want.Phys || got.Size != want.Size {
			t.Fatalf("va %#x skip %d: translator (refs=%d phys=%#x size=%v ok=%v) vs page table (refs=%d phys=%#x size=%v ok=%v)",
				uint64(v), skip, got.NumRefs, uint64(got.Phys), got.Size, ok1,
				want.NumRefs, uint64(want.Phys), want.Size, ok2)
		}
		for i := 0; i < got.NumRefs; i++ {
			if got.Refs[i] != want.Refs[i] {
				t.Fatalf("va %#x skip %d ref %d: %+v vs %+v", uint64(v), skip, i, got.Refs[i], want.Refs[i])
			}
		}
	}

	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50000; i++ {
		v := base + Addr(rng.Uint64()%(3*uint64(Page1G)))
		probe(v, rng.Intn(4))
	}
	for _, v := range []Addr{
		base, base + Addr(Page1G) - 1, base + Addr(Page1G),
		small, small + Addr(Page2M) - 1, small + Addr(Page2M), // hole: L1 table absent
		small + Addr(Page2M) + 64<<10,
		0, 1 << 46, // no upper-level path at all
	} {
		for skip := 0; skip <= 4; skip++ {
			probe(v, skip)
		}
	}
}

// TestTranslatorConflictEviction forces two regions onto the same memo slot
// and checks both keep translating correctly as they evict each other.
func TestTranslatorConflictEviction(t *testing.T) {
	as, err := NewAddressSpace(1 << 32)
	if err != nil {
		t.Fatal(err)
	}
	// Two 2MB regions whose (va>>21) differ by exactly translatorEntries
	// collide in the direct-mapped memo.
	a := Addr(uint64(translatorEntries) << regionShift)
	b := a + Addr(uint64(translatorEntries)<<regionShift)
	if err := as.Map(NewRegion(a, uint64(Page2M)), Page4K); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(NewRegion(b, uint64(Page2M)), Page2M); err != nil {
		t.Fatal(err)
	}
	tr := NewTranslator(as.PageTable())
	for i := 0; i < 100; i++ {
		v := a + Addr(i*4096+i)
		p1, s1, ok1 := tr.Translate(v)
		p2, s2, ok2 := as.PageTable().Translate(v)
		if p1 != p2 || s1 != s2 || ok1 != ok2 {
			t.Fatalf("region A va %#x diverged", uint64(v))
		}
		w := b + Addr(i*7919)
		p1, s1, ok1 = tr.Translate(w)
		p2, s2, ok2 = as.PageTable().Translate(w)
		if p1 != p2 || s1 != s2 || ok1 != ok2 {
			t.Fatalf("region B va %#x diverged", uint64(w))
		}
	}
}

func BenchmarkTranslatorVsPageTable(b *testing.B) {
	as, err := NewAddressSpace(1 << 34)
	if err != nil {
		b.Fatal(err)
	}
	base := Addr(0x4000000000)
	if err := as.Map(NewRegion(base, 1<<30), Page4K); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	addrs := make([]Addr, 8192)
	for i := range addrs {
		addrs[i] = base + Addr(rng.Uint64()%(1<<30))
	}
	b.Run("pagetable", func(b *testing.B) {
		pt := as.PageTable()
		for i := 0; i < b.N; i++ {
			pt.Translate(addrs[i%len(addrs)])
		}
	})
	b.Run("translator", func(b *testing.B) {
		tr := NewTranslator(as.PageTable())
		for i := 0; i < b.N; i++ {
			tr.Translate(addrs[i%len(addrs)])
		}
	})
}
