package mem

import (
	"fmt"
	"sort"
)

// Mapping is one contiguous virtual range backed by pages of a single size.
type Mapping struct {
	Region Region
	Size   PageSize
}

// AddressSpace models one process's virtual address space: a sorted list of
// mappings plus the page table and frame allocator that back them. Mosalloc
// builds its pools on top of this type, mosaicking mappings of different
// page sizes into contiguous pools.
type AddressSpace struct {
	pt       *PageTable
	frames   *FrameAllocator
	mappings []Mapping // sorted by Region.Start, non-overlapping
}

// NewAddressSpace creates an empty address space backed by physMem bytes of
// simulated physical memory.
func NewAddressSpace(physMem uint64) (*AddressSpace, error) {
	frames := NewFrameAllocator(physMem)
	pt, err := NewPageTable(frames)
	if err != nil {
		return nil, err
	}
	return &AddressSpace{pt: pt, frames: frames}, nil
}

// PageTable exposes the space's page table for the walker simulator.
func (as *AddressSpace) PageTable() *PageTable { return as.pt }

// Frames exposes the physical frame allocator.
func (as *AddressSpace) Frames() *FrameAllocator { return as.frames }

// Map backs the virtual region r with pages of the given size. The region
// must be size-aligned at both ends and must not overlap an existing
// mapping. Frames are allocated eagerly (Mosalloc reserves its pools up
// front, matching MAP_HUGETLB semantics where hugepages come from a
// pre-reserved pool).
func (as *AddressSpace) Map(r Region, size PageSize) error {
	if r.Empty() {
		return fmt.Errorf("mem: mapping empty region %v", r)
	}
	if !IsAligned(r.Start, size) || !IsAligned(r.End, size) {
		return fmt.Errorf("%w: region %v for %s pages", ErrMisaligned, r, size)
	}
	for _, m := range as.mappings {
		if m.Region.Overlaps(r) {
			return fmt.Errorf("%w: %v overlaps %v", ErrAlreadyMapped, r, m.Region)
		}
	}
	var mapped []Addr
	for v := r.Start; v < r.End; v += Addr(size) {
		frame, err := as.frames.Alloc(size)
		if err == nil {
			err = as.pt.Map(v, frame, size)
			if err != nil {
				as.frames.Free(frame, size)
			}
		}
		if err != nil {
			// Roll back partial progress so failed maps leave no trace.
			for _, mv := range mapped {
				if f, uerr := as.pt.Unmap(mv, size); uerr == nil {
					as.frames.Free(f, size)
				}
			}
			return err
		}
		mapped = append(mapped, v)
	}
	as.insertMapping(Mapping{Region: r, Size: size})
	return nil
}

// Unmap removes the mapping that exactly covers r (it may span several
// Mapping records of different page sizes, but r's bounds must coincide
// with mapping bounds). Frames and table pages are released.
func (as *AddressSpace) Unmap(r Region) error {
	var keep []Mapping
	var drop []Mapping
	for _, m := range as.mappings {
		switch {
		case r.ContainsRegion(m.Region):
			drop = append(drop, m)
		case m.Region.Overlaps(r):
			return fmt.Errorf("mem: unmap %v splits mapping %v (%s)", r, m.Region, m.Size)
		default:
			keep = append(keep, m)
		}
	}
	if len(drop) == 0 {
		return fmt.Errorf("%w: %v", ErrNotMapped, r)
	}
	covered := uint64(0)
	for _, m := range drop {
		covered += m.Region.Len()
	}
	if covered != r.Len() {
		return fmt.Errorf("mem: unmap %v covers only %d of %d bytes", r, covered, r.Len())
	}
	for _, m := range drop {
		for v := m.Region.Start; v < m.Region.End; v += Addr(m.Size) {
			frame, err := as.pt.Unmap(v, m.Size)
			if err != nil {
				return err
			}
			as.frames.Free(frame, m.Size)
		}
	}
	as.mappings = keep
	return nil
}

func (as *AddressSpace) insertMapping(m Mapping) {
	i := sort.Search(len(as.mappings), func(i int) bool {
		return as.mappings[i].Region.Start >= m.Region.Start
	})
	as.mappings = append(as.mappings, Mapping{})
	copy(as.mappings[i+1:], as.mappings[i:])
	as.mappings[i] = m
}

// Translate resolves a virtual address to its physical address and the page
// size backing it.
func (as *AddressSpace) Translate(v Addr) (Addr, PageSize, bool) {
	return as.pt.Translate(v)
}

// MappingAt returns the mapping containing v, if any.
func (as *AddressSpace) MappingAt(v Addr) (Mapping, bool) {
	i := sort.Search(len(as.mappings), func(i int) bool {
		return as.mappings[i].Region.End > v
	})
	if i < len(as.mappings) && as.mappings[i].Region.Contains(v) {
		return as.mappings[i], true
	}
	return Mapping{}, false
}

// Mappings returns a copy of the current mapping list, sorted by address.
func (as *AddressSpace) Mappings() []Mapping {
	out := make([]Mapping, len(as.mappings))
	copy(out, as.mappings)
	return out
}

// MappedBytes returns the total number of virtual bytes currently mapped.
func (as *AddressSpace) MappedBytes() uint64 {
	var n uint64
	for _, m := range as.mappings {
		n += m.Region.Len()
	}
	return n
}

// Replace re-backs the sub-region r of an existing mapping with pages of
// the given size — the operation behind transparent-hugepage promotion
// (4KB→2MB) and demotion (2MB→4KB). r must lie inside a single mapping and
// be aligned to both the old and the new page size. The surrounding parts
// of the original mapping survive as split mappings.
func (as *AddressSpace) Replace(r Region, size PageSize) error {
	if !size.Valid() {
		return fmt.Errorf("mem: invalid page size %d", uint64(size))
	}
	idx := -1
	for i, m := range as.mappings {
		if m.Region.ContainsRegion(r) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: %v not inside a single mapping", ErrNotMapped, r)
	}
	old := as.mappings[idx]
	if old.Size == size {
		return nil // already backed as requested
	}
	if !IsAligned(r.Start, old.Size) || !IsAligned(r.End, old.Size) {
		return fmt.Errorf("%w: %v not aligned to existing %s pages", ErrMisaligned, r, old.Size)
	}
	if !IsAligned(r.Start, size) || !IsAligned(r.End, size) {
		return fmt.Errorf("%w: %v not aligned to new %s pages", ErrMisaligned, r, size)
	}
	// Tear down the old translations of r.
	for v := r.Start; v < r.End; v += Addr(old.Size) {
		frame, err := as.pt.Unmap(v, old.Size)
		if err != nil {
			return err
		}
		as.frames.Free(frame, old.Size)
	}
	// Install the new ones. On failure the region is left unmapped, which
	// the caller can observe; partial-failure recovery is not needed for
	// the simulated frame allocator (it only fails on exhaustion).
	for v := r.Start; v < r.End; v += Addr(size) {
		frame, err := as.frames.Alloc(size)
		if err != nil {
			return err
		}
		if err := as.pt.Map(v, frame, size); err != nil {
			return err
		}
	}
	// Split the mapping records: [old.Start, r.Start) old, r new,
	// [r.End, old.End) old.
	var repl []Mapping
	if r.Start > old.Region.Start {
		repl = append(repl, Mapping{Region: Region{Start: old.Region.Start, End: r.Start}, Size: old.Size})
	}
	repl = append(repl, Mapping{Region: r, Size: size})
	if r.End < old.Region.End {
		repl = append(repl, Mapping{Region: Region{Start: r.End, End: old.Region.End}, Size: old.Size})
	}
	as.mappings = append(as.mappings[:idx], append(repl, as.mappings[idx+1:]...)...)
	return nil
}

// PagesBySize counts live terminal mappings per page size.
func (as *AddressSpace) PagesBySize() map[PageSize]int {
	out := make(map[PageSize]int, 3)
	for _, s := range PageSizes {
		out[s] = as.pt.Leaves(s)
	}
	return out
}
