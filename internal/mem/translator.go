package mem

// Translator is the replay engines' translation fast path: a direct-mapped
// memo over PageTable.Translate, keyed by 2MB-aligned virtual region. Every
// simulated access resolves VA→(phys, pagesize) before the TLB model runs,
// and the radix walk — up to four dependent pointer loads — dominated the
// replay profile. The memo collapses it to one array probe plus at most one
// leaf-entry read:
//
//   - a region backed by 4KB pages memoizes its level-1 table node, so a
//     hit costs one probe plus one PTE read;
//   - a region inside a 2MB or 1GB page memoizes the region's physical
//     base directly, so a hit is probe + add.
//
// The memo is only sound while the page table is immutable, which is
// exactly the replay contract (internal/sim shares spaces read-only across
// engines). Reset clears it, so a pooled engine re-targeted at a new space
// never sees stale translations.
type Translator struct {
	pt *PageTable
	// tags[i] holds regionTag+1 (0 = empty). The arrays are parallel:
	// node[i] is the level-1 table for 4KB-backed regions (nil otherwise),
	// and base[i]/size[i] describe the leaf for hugepage-backed regions.
	tags []uint64
	node []*tableNode
	base []Addr
	size []PageSize
	// upper[3i..3i+3) are the upper-level entry loads (PML4, PDPT, PD —
	// constant across a 2MB region) a walk of region i performs, letting
	// WalkFrom serve walker refs without re-walking the radix tree. For a
	// hugepage region the terminal entry occupies the last used slot.
	upper []Addr
}

// translatorEntries sizes the direct-mapped memo: 8192 2MB regions cover a
// 16GB working set — the largest bundled workload footprint — with zero
// conflicts for a contiguous pool.
const translatorEntries = 8192

// regionShift aligns memo regions to 2MB: the finest granularity at which
// x86-64 translations are homogeneous (a 2MB region is either part of one
// hugepage or mapped by exactly one level-1 table).
const regionShift = 21

// NewTranslator builds a memoized fast path over pt.
func NewTranslator(pt *PageTable) *Translator {
	return &Translator{
		pt:    pt,
		tags:  make([]uint64, translatorEntries),
		node:  make([]*tableNode, translatorEntries),
		base:  make([]Addr, translatorEntries),
		size:  make([]PageSize, translatorEntries),
		upper: make([]Addr, 3*translatorEntries),
	}
}

// Reset clears the memo and re-targets it at pt. It must be called whenever
// the engine holding the Translator is re-targeted, and whenever the page
// table may have changed.
func (t *Translator) Reset(pt *PageTable) {
	t.pt = pt
	clear(t.tags)
	clear(t.node)
}

// Translate resolves v to its physical address and backing page size,
// exactly as PageTable.Translate does.
//
//mosvet:hotpath
func (t *Translator) Translate(v Addr) (Addr, PageSize, bool) {
	tag := uint64(v>>regionShift) + 1
	idx := (tag - 1) & (translatorEntries - 1)
	if t.tags[idx] != tag {
		if !t.fill(idx, tag, v) {
			return 0, 0, false
		}
	}
	if n := t.node[idx]; n != nil {
		e := &n.entries[indexAt(v, 1)]
		if !e.present {
			return 0, 0, false
		}
		return e.phys + (v & Addr(Page4K-1)), Page4K, true
	}
	return t.base[idx] + (v & (Addr(1)<<regionShift - 1)), t.size[idx], true
}

// WalkFrom fills tr with the result PageTable.WalkFrom(v, skip) would
// return, reporting the same ok. The upper-level refs come from the memo
// (they are constant across a 2MB region); only a 4KB region's level-1 ref
// depends on the individual address. Entries of tr.Refs beyond tr.NumRefs
// are left unspecified — tr is a scratch buffer, not a value to compare.
// Regions whose upper levels fault are not memoizable and fall back to the
// radix walk, which records the exact partial ref sequence.
func (t *Translator) WalkFrom(v Addr, skip int, tr *Translation) bool {
	tag := uint64(v>>regionShift) + 1
	idx := (tag - 1) & (translatorEntries - 1)
	if t.tags[idx] != tag {
		if !t.fill(idx, tag, v) {
			return t.pt.walkFromInto(v, skip, tr)
		}
	}
	n := t.node[idx]
	nrefs := 4
	if n == nil {
		nrefs = 5 - t.size[idx].Level() // 1GB page → 2 refs, 2MB → 3
	}
	if skip < 0 {
		skip = 0
	}
	if skip >= nrefs {
		skip = nrefs - 1
	}
	base := idx * 3
	k := 0
	for r := skip; r < nrefs; r++ {
		if r < 3 {
			tr.Refs[k] = WalkRef{Level: TopLevel - r, EntryPhys: t.upper[base+uint64(r)]}
		} else {
			tr.Refs[k] = WalkRef{Level: 1, EntryPhys: n.phys + Addr(indexAt(v, 1)*EntryBytes)}
		}
		k++
	}
	tr.NumRefs = k
	if n != nil {
		e := &n.entries[indexAt(v, 1)]
		if !e.present {
			tr.Phys, tr.Size = 0, 0
			return false
		}
		tr.Phys, tr.Size = e.phys+(v&Addr(Page4K-1)), Page4K
		return true
	}
	tr.Phys, tr.Size = t.base[idx]+(v&(Addr(1)<<regionShift-1)), t.size[idx]
	return true
}

// fill classifies v's 2MB region by walking the upper levels once and
// installs the memo entry. It reports false when no upper-level path exists
// (every address in the region faults); such regions are not cached, which
// is fine — replays treat a fault as a fatal error.
func (t *Translator) fill(idx, tag uint64, v Addr) bool {
	node := t.pt.root
	for level := TopLevel; level >= 2; level-- {
		i := indexAt(v, level)
		e := &node.entries[i]
		t.upper[idx*3+uint64(TopLevel-level)] = node.phys + Addr(i*EntryBytes)
		if !e.present {
			return false
		}
		if e.leaf {
			// A 1GB (level 3) or 2MB (level 2) page covers this region;
			// memoize the region's physical base within it.
			size := sizeAtLevel(level)
			t.tags[idx] = tag
			t.node[idx] = nil
			t.base[idx] = e.phys + ((v &^ (Addr(1)<<regionShift - 1)) & size.Mask())
			t.size[idx] = size
			return true
		}
		node = e.next
	}
	// node is now the level-1 table mapping this region's 4KB pages.
	t.tags[idx] = tag
	t.node[idx] = node
	return true
}
