// Package mem provides the simulated virtual-memory substrate: virtual and
// physical addresses, page sizes, address-space regions, a 4-level x86-64
// page table, and a physical frame allocator.
//
// Everything in this package is a model. No real memory is mapped; the
// package exists so that higher layers (the Mosalloc allocator, the TLB and
// page-walk simulators) can operate on a faithful reproduction of the Linux
// x86-64 virtual-memory structures the paper's experiments depend on.
package mem

import (
	"fmt"
	"math/bits"
)

// Addr is a 64-bit virtual or physical address. The two spaces are kept
// distinct by convention: functions document which one they expect.
type Addr uint64

// PageSize is one of the three x86-64 translation granularities.
type PageSize uint64

// The three page sizes supported by x86-64 processors and by Mosalloc.
const (
	Page4K PageSize = 4 << 10
	Page2M PageSize = 2 << 20
	Page1G PageSize = 1 << 30
)

// PageSizes lists the supported sizes from smallest to largest.
var PageSizes = []PageSize{Page4K, Page2M, Page1G}

// String returns the conventional short name of the page size.
func (s PageSize) String() string {
	switch s {
	case Page4K:
		return "4KB"
	case Page2M:
		return "2MB"
	case Page1G:
		return "1GB"
	}
	return fmt.Sprintf("PageSize(%d)", uint64(s))
}

// Valid reports whether s is one of the three architectural page sizes.
func (s PageSize) Valid() bool {
	return s == Page4K || s == Page2M || s == Page1G
}

// Level returns the page-table level at which a page of this size is mapped:
// 1 for 4KB (PTE), 2 for 2MB (PDE), 3 for 1GB (PDPTE).
func (s PageSize) Level() int {
	switch s {
	case Page4K:
		return 1
	case Page2M:
		return 2
	case Page1G:
		return 3
	}
	return 0
}

// Mask returns the bitmask selecting the page-offset bits of an address.
func (s PageSize) Mask() Addr { return Addr(s) - 1 }

// AlignDown rounds a down to a multiple of s.
func AlignDown(a Addr, s PageSize) Addr { return a &^ s.Mask() }

// AlignUp rounds a up to a multiple of s.
func AlignUp(a Addr, s PageSize) Addr { return (a + s.Mask()) &^ s.Mask() }

// IsAligned reports whether a is a multiple of s.
func IsAligned(a Addr, s PageSize) bool { return a&s.Mask() == 0 }

// PageNumber returns the virtual (or physical) page number of a for size s.
// Page sizes are powers of two, so the division is a shift — this runs on
// every simulated TLB lookup, where a hardware divide would be felt.
func PageNumber(a Addr, s PageSize) uint64 {
	return uint64(a) >> uint(bits.TrailingZeros64(uint64(s)))
}

// Region is a half-open interval [Start, End) of addresses.
type Region struct {
	Start Addr
	End   Addr
}

// NewRegion builds a region from a start address and a length in bytes.
func NewRegion(start Addr, length uint64) Region {
	return Region{Start: start, End: start + Addr(length)}
}

// Len returns the region's length in bytes.
func (r Region) Len() uint64 { return uint64(r.End - r.Start) }

// Empty reports whether the region contains no addresses.
func (r Region) Empty() bool { return r.End <= r.Start }

// Contains reports whether a lies inside the region.
func (r Region) Contains(a Addr) bool { return a >= r.Start && a < r.End }

// ContainsRegion reports whether o lies entirely inside r.
func (r Region) ContainsRegion(o Region) bool {
	return o.Start >= r.Start && o.End <= r.End
}

// Overlaps reports whether the two regions share at least one address.
func (r Region) Overlaps(o Region) bool {
	return r.Start < o.End && o.Start < r.End
}

// Intersect returns the overlap of the two regions (possibly empty).
func (r Region) Intersect(o Region) Region {
	s := max(r.Start, o.Start)
	e := min(r.End, o.End)
	if e < s {
		e = s
	}
	return Region{Start: s, End: e}
}

// String formats the region as [start, end) in hex.
func (r Region) String() string {
	return fmt.Sprintf("[%#x, %#x)", uint64(r.Start), uint64(r.End))
}
