package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestTable(t *testing.T) (*PageTable, *FrameAllocator) {
	t.Helper()
	frames := NewFrameAllocator(1 << 36)
	pt, err := NewPageTable(frames)
	if err != nil {
		t.Fatal(err)
	}
	return pt, frames
}

func TestMapTranslate4K(t *testing.T) {
	pt, frames := newTestTable(t)
	frame, err := frames.Alloc(Page4K)
	if err != nil {
		t.Fatal(err)
	}
	v := Addr(0x7f0000001000)
	if err := pt.Map(v, frame, Page4K); err != nil {
		t.Fatal(err)
	}
	phys, size, ok := pt.Translate(v + 0x123)
	if !ok {
		t.Fatal("translation missing")
	}
	if size != Page4K {
		t.Errorf("size = %s, want 4KB", size)
	}
	if phys != frame+0x123 {
		t.Errorf("phys = %#x, want %#x", uint64(phys), uint64(frame+0x123))
	}
}

func TestWalkRefCountPerPageSize(t *testing.T) {
	cases := []struct {
		size PageSize
		refs int
	}{
		{Page4K, 4},
		{Page2M, 3},
		{Page1G, 2},
	}
	for _, c := range cases {
		pt, frames := newTestTable(t)
		frame, _ := frames.Alloc(c.size)
		v := Addr(uint64(c.size) * 5)
		if err := pt.Map(v, frame, c.size); err != nil {
			t.Fatalf("%s: %v", c.size, err)
		}
		tr, ok := pt.Walk(v)
		if !ok {
			t.Fatalf("%s: walk failed", c.size)
		}
		if tr.NumRefs != c.refs {
			t.Errorf("%s: walk issued %d refs, want %d", c.size, tr.NumRefs, c.refs)
		}
		if tr.Refs[0].Level != TopLevel {
			t.Errorf("%s: first ref at level %d, want %d", c.size, tr.Refs[0].Level, TopLevel)
		}
		if tr.Refs[tr.NumRefs-1].Level != c.size.Level() {
			t.Errorf("%s: last ref at level %d, want %d", c.size, tr.Refs[tr.NumRefs-1].Level, c.size.Level())
		}
	}
}

func TestWalkLevelsDescend(t *testing.T) {
	pt, frames := newTestTable(t)
	frame, _ := frames.Alloc(Page4K)
	if err := pt.Map(0x1000, frame, Page4K); err != nil {
		t.Fatal(err)
	}
	tr, ok := pt.Walk(0x1000)
	if !ok {
		t.Fatal("walk failed")
	}
	for i := 1; i < tr.NumRefs; i++ {
		if tr.Refs[i].Level != tr.Refs[i-1].Level-1 {
			t.Fatalf("walk levels not strictly descending: %+v", tr.Refs[:tr.NumRefs])
		}
	}
}

func TestWalkFrom(t *testing.T) {
	pt, frames := newTestTable(t)
	frame, _ := frames.Alloc(Page4K)
	if err := pt.Map(0x200000, frame, Page4K); err != nil {
		t.Fatal(err)
	}
	full, ok := pt.Walk(0x200000)
	if !ok || full.NumRefs != 4 {
		t.Fatalf("full walk: ok=%v refs=%d", ok, full.NumRefs)
	}
	for skip := 0; skip <= 3; skip++ {
		tr, ok := pt.WalkFrom(0x200000, skip)
		if !ok {
			t.Fatalf("skip=%d: walk failed", skip)
		}
		if tr.NumRefs != 4-skip {
			t.Errorf("skip=%d: refs=%d, want %d", skip, tr.NumRefs, 4-skip)
		}
		if tr.Phys != full.Phys {
			t.Errorf("skip=%d: phys mismatch", skip)
		}
	}
	// Skipping more than available still issues the terminal load.
	tr, ok := pt.WalkFrom(0x200000, 10)
	if !ok || tr.NumRefs != 1 {
		t.Errorf("skip=10: ok=%v refs=%d, want 1 ref", ok, tr.NumRefs)
	}
}

func TestMapErrors(t *testing.T) {
	pt, frames := newTestTable(t)
	frame, _ := frames.Alloc(Page4K)
	if err := pt.Map(0x1001, frame, Page4K); err == nil {
		t.Error("misaligned map should fail")
	}
	if err := pt.Map(0x1000, frame+1, Page4K); err == nil {
		t.Error("misaligned frame should fail")
	}
	if err := pt.Map(0x1000, frame, PageSize(12345)); err == nil {
		t.Error("invalid page size should fail")
	}
	if err := pt.Map(0x1000, frame, Page4K); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0x1000, frame, Page4K); err == nil {
		t.Error("double map should fail")
	}
}

func TestHugepageConflicts(t *testing.T) {
	pt, frames := newTestTable(t)
	f2m, _ := frames.Alloc(Page2M)
	if err := pt.Map(0, f2m, Page2M); err != nil {
		t.Fatal(err)
	}
	f4k, _ := frames.Alloc(Page4K)
	// A 4KB page inside an existing 2MB mapping must be rejected.
	if err := pt.Map(0x1000, f4k, Page4K); err == nil {
		t.Error("4KB map under existing 2MB page should fail")
	}
	// And a 2MB page over an existing 4KB mapping must be rejected too.
	if err := pt.Map(Addr(Page2M), f4k, Page4K); err != nil {
		t.Fatal(err)
	}
	f2m2, _ := frames.Alloc(Page2M)
	if err := pt.Map(Addr(Page2M), f2m2, Page2M); err == nil {
		t.Error("2MB map over existing 4KB page should fail")
	}
}

func TestUnmapReleasesTables(t *testing.T) {
	pt, frames := newTestTable(t)
	before := pt.Tables()
	if before != 1 {
		t.Fatalf("fresh table has %d nodes, want 1 (root)", before)
	}
	frame, _ := frames.Alloc(Page4K)
	v := Addr(0x7f0000000000)
	if err := pt.Map(v, frame, Page4K); err != nil {
		t.Fatal(err)
	}
	if pt.Tables() != 4 {
		t.Fatalf("after one 4KB map: %d tables, want 4 (root+PDPT+PD+PT)", pt.Tables())
	}
	got, err := pt.Unmap(v, Page4K)
	if err != nil {
		t.Fatal(err)
	}
	if got != frame {
		t.Errorf("unmap returned frame %#x, want %#x", uint64(got), uint64(frame))
	}
	if pt.Tables() != 1 {
		t.Errorf("after unmap: %d tables, want 1", pt.Tables())
	}
	if _, _, ok := pt.Translate(v); ok {
		t.Error("translation survived unmap")
	}
}

func TestUnmapErrors(t *testing.T) {
	pt, _ := newTestTable(t)
	if _, err := pt.Unmap(0x1000, Page4K); err == nil {
		t.Error("unmap of unmapped page should fail")
	}
	if _, err := pt.Unmap(0x1001, Page4K); err == nil {
		t.Error("misaligned unmap should fail")
	}
}

func TestLeafCounts(t *testing.T) {
	pt, frames := newTestTable(t)
	for i := 0; i < 10; i++ {
		f, _ := frames.Alloc(Page4K)
		if err := pt.Map(Addr(i)*Addr(Page4K), f, Page4K); err != nil {
			t.Fatal(err)
		}
	}
	f, _ := frames.Alloc(Page2M)
	if err := pt.Map(Addr(Page1G), f, Page2M); err != nil {
		t.Fatal(err)
	}
	if pt.Leaves(Page4K) != 10 || pt.Leaves(Page2M) != 1 || pt.Leaves(Page1G) != 0 {
		t.Errorf("leaves = %d/%d/%d, want 10/1/0",
			pt.Leaves(Page4K), pt.Leaves(Page2M), pt.Leaves(Page1G))
	}
}

// Property: map a random set of distinct 4KB pages, then every mapped page
// translates to its own frame and every unmapped probe misses.
func TestMapTranslateProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		frames := NewFrameAllocator(1 << 36)
		pt, err := NewPageTable(frames)
		if err != nil {
			return false
		}
		want := make(map[Addr]Addr)
		for i := 0; i < 64; i++ {
			v := AlignDown(Addr(rng.Uint64()%(1<<40)), Page4K)
			if _, dup := want[v]; dup {
				continue
			}
			f, err := frames.Alloc(Page4K)
			if err != nil {
				return false
			}
			if err := pt.Map(v, f, Page4K); err != nil {
				return false
			}
			want[v] = f
		}
		for v, f := range want {
			phys, size, ok := pt.Translate(v)
			if !ok || phys != f || size != Page4K {
				return false
			}
		}
		// Unmap everything; table must shrink back to just the root.
		for v := range want {
			if _, err := pt.Unmap(v, Page4K); err != nil {
				return false
			}
		}
		return pt.Tables() == 1 && pt.Leaves(Page4K) == 0
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIndexAt(t *testing.T) {
	// 0x0000_ffff_ffff_f000 has all-ones indices at every level (bit 47 set).
	v := Addr(0x0000fffffffff000)
	for level := 1; level <= 4; level++ {
		if idx := indexAt(v, level); idx != 511 {
			t.Errorf("indexAt(level %d) = %d, want 511", level, idx)
		}
	}
	if idx := indexAt(0, 4); idx != 0 {
		t.Errorf("indexAt(0, 4) = %d, want 0", idx)
	}
}
