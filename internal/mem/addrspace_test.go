package mem

import (
	"testing"
)

func newTestSpace(t *testing.T) *AddressSpace {
	t.Helper()
	as, err := NewAddressSpace(1 << 36)
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func TestAddressSpaceMapTranslate(t *testing.T) {
	as := newTestSpace(t)
	r := NewRegion(Addr(Page2M), uint64(Page2M)*2)
	if err := as.Map(r, Page4K); err != nil {
		t.Fatal(err)
	}
	for _, v := range []Addr{r.Start, r.Start + 0x1234, r.End - 1} {
		if _, size, ok := as.Translate(v); !ok || size != Page4K {
			t.Errorf("Translate(%#x): ok=%v size=%v", uint64(v), ok, size)
		}
	}
	if _, _, ok := as.Translate(r.End); ok {
		t.Error("address past mapping should not translate")
	}
	if as.MappedBytes() != r.Len() {
		t.Errorf("MappedBytes = %d, want %d", as.MappedBytes(), r.Len())
	}
}

func TestAddressSpaceMosaic(t *testing.T) {
	// Build a contiguous pool: 2MB of 4KB pages, then 4MB of 2MB pages,
	// then 2MB of 4KB pages — the shape Mosalloc creates.
	as := newTestSpace(t)
	base := Addr(Page1G)
	parts := []struct {
		len  uint64
		size PageSize
	}{
		{uint64(Page2M), Page4K},
		{2 * uint64(Page2M), Page2M},
		{uint64(Page2M), Page4K},
	}
	cursor := base
	for _, p := range parts {
		if err := as.Map(NewRegion(cursor, p.len), p.size); err != nil {
			t.Fatal(err)
		}
		cursor += Addr(p.len)
	}
	counts := as.PagesBySize()
	if counts[Page4K] != 1024 {
		t.Errorf("4KB pages = %d, want 1024", counts[Page4K])
	}
	if counts[Page2M] != 2 {
		t.Errorf("2MB pages = %d, want 2", counts[Page2M])
	}
	// Every address translates with the page size of its segment.
	if _, size, _ := as.Translate(base + 0x1000); size != Page4K {
		t.Errorf("first segment size = %s", size)
	}
	if _, size, _ := as.Translate(base + Addr(Page2M) + 0x1000); size != Page2M {
		t.Errorf("middle segment size = %s", size)
	}
}

func TestAddressSpaceOverlapRejected(t *testing.T) {
	as := newTestSpace(t)
	if err := as.Map(NewRegion(0x100000, uint64(Page4K)*16), Page4K); err != nil {
		t.Fatal(err)
	}
	err := as.Map(NewRegion(0x100000+Addr(Page4K)*8, uint64(Page4K)*16), Page4K)
	if err == nil {
		t.Error("overlapping map should fail")
	}
}

func TestAddressSpaceMisalignedRejected(t *testing.T) {
	as := newTestSpace(t)
	if err := as.Map(NewRegion(0x1000, uint64(Page2M)), Page2M); err == nil {
		t.Error("2MB mapping at 4KB-aligned-only start should fail")
	}
	if err := as.Map(NewRegion(0, 123), Page4K); err == nil {
		t.Error("unaligned length should fail")
	}
	if err := as.Map(Region{}, Page4K); err == nil {
		t.Error("empty region should fail")
	}
}

func TestAddressSpaceUnmap(t *testing.T) {
	as := newTestSpace(t)
	r := NewRegion(Addr(Page2M), uint64(Page2M))
	if err := as.Map(r, Page4K); err != nil {
		t.Fatal(err)
	}
	usedBefore := as.Frames().Used()
	if err := as.Unmap(r); err != nil {
		t.Fatal(err)
	}
	if as.MappedBytes() != 0 {
		t.Errorf("MappedBytes after unmap = %d", as.MappedBytes())
	}
	if _, _, ok := as.Translate(r.Start); ok {
		t.Error("translation survived unmap")
	}
	if as.Frames().Used() >= usedBefore {
		t.Errorf("frames not released: %d >= %d", as.Frames().Used(), usedBefore)
	}
	// Remapping the same region succeeds.
	if err := as.Map(r, Page2M); err != nil {
		t.Fatalf("remap failed: %v", err)
	}
}

func TestAddressSpaceUnmapSpanningMappings(t *testing.T) {
	as := newTestSpace(t)
	base := Addr(Page1G)
	if err := as.Map(NewRegion(base, uint64(Page2M)), Page4K); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(NewRegion(base+Addr(Page2M), uint64(Page2M)), Page2M); err != nil {
		t.Fatal(err)
	}
	// Unmap spanning both mappings at once.
	if err := as.Unmap(NewRegion(base, 2*uint64(Page2M))); err != nil {
		t.Fatal(err)
	}
	if as.MappedBytes() != 0 {
		t.Error("mappings remain after spanning unmap")
	}
}

func TestAddressSpaceUnmapErrors(t *testing.T) {
	as := newTestSpace(t)
	if err := as.Unmap(NewRegion(0x1000, 0x1000)); err == nil {
		t.Error("unmap of nothing should fail")
	}
	if err := as.Map(NewRegion(0, uint64(Page2M)), Page4K); err != nil {
		t.Fatal(err)
	}
	// Partial unmap that splits a mapping is not supported.
	if err := as.Unmap(NewRegion(0, uint64(Page4K))); err == nil {
		t.Error("splitting unmap should fail")
	}
}

func TestMappingAt(t *testing.T) {
	as := newTestSpace(t)
	r1 := NewRegion(0, uint64(Page2M))
	r2 := NewRegion(Addr(Page1G), uint64(Page2M))
	if err := as.Map(r1, Page4K); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(r2, Page2M); err != nil {
		t.Fatal(err)
	}
	m, ok := as.MappingAt(r2.Start + 5)
	if !ok || m.Size != Page2M || m.Region != r2 {
		t.Errorf("MappingAt = %+v ok=%v", m, ok)
	}
	if _, ok := as.MappingAt(r1.End); ok {
		t.Error("gap address should have no mapping")
	}
	ms := as.Mappings()
	if len(ms) != 2 || ms[0].Region != r1 || ms[1].Region != r2 {
		t.Errorf("Mappings() = %+v", ms)
	}
}
