package mem

import (
	"errors"
	"testing"
)

func TestFrameAllocAlignment(t *testing.T) {
	f := NewFrameAllocator(1 << 34)
	for _, s := range PageSizes {
		a, err := f.Alloc(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !IsAligned(a, s) {
			t.Errorf("%s frame %#x not aligned", s, uint64(a))
		}
	}
}

func TestFrameAllocDistinct(t *testing.T) {
	f := NewFrameAllocator(1 << 30)
	seen := make(map[Addr]bool)
	for i := 0; i < 1000; i++ {
		a, err := f.Alloc(Page4K)
		if err != nil {
			t.Fatal(err)
		}
		if seen[a] {
			t.Fatalf("frame %#x allocated twice", uint64(a))
		}
		seen[a] = true
	}
}

func TestFrameReuseAfterFree(t *testing.T) {
	f := NewFrameAllocator(1 << 30)
	a, _ := f.Alloc(Page2M)
	f.Free(a, Page2M)
	b, _ := f.Alloc(Page2M)
	if a != b {
		t.Errorf("freed frame not reused: got %#x, want %#x", uint64(b), uint64(a))
	}
}

func TestFrameExhaustion(t *testing.T) {
	f := NewFrameAllocator(uint64(Page2M)) // room for zero 2MB frames after reserved page
	_, err := f.Alloc(Page2M)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	// 4KB allocations still fit below the limit.
	if _, err := f.Alloc(Page4K); err != nil {
		t.Fatalf("4KB alloc should succeed: %v", err)
	}
}

func TestFrameInvalidSize(t *testing.T) {
	f := NewFrameAllocator(1 << 30)
	if _, err := f.Alloc(PageSize(999)); err == nil {
		t.Error("invalid size should fail")
	}
}

func TestFrameUsedAccounting(t *testing.T) {
	f := NewFrameAllocator(1 << 30)
	if f.Used() != 0 {
		t.Fatalf("fresh allocator used = %d", f.Used())
	}
	a, _ := f.Alloc(Page4K)
	b, _ := f.Alloc(Page2M)
	want := uint64(Page4K) + uint64(Page2M)
	if f.Used() != want {
		t.Errorf("used = %d, want %d", f.Used(), want)
	}
	f.Free(a, Page4K)
	f.Free(b, Page2M)
	if f.Used() != 0 {
		t.Errorf("used after frees = %d, want 0", f.Used())
	}
}

func TestFrameZeroNeverAllocated(t *testing.T) {
	f := NewFrameAllocator(1 << 30)
	for i := 0; i < 100; i++ {
		a, err := f.Alloc(Page4K)
		if err != nil {
			t.Fatal(err)
		}
		if a == 0 {
			t.Fatal("frame 0 must stay reserved")
		}
	}
}
