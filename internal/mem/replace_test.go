package mem

import "testing"

func TestReplacePromotesWholeMapping(t *testing.T) {
	as := newTestSpace(t)
	r := NewRegion(Addr(Page1G), 4<<20)
	if err := as.Map(r, Page4K); err != nil {
		t.Fatal(err)
	}
	if err := as.Replace(r, Page2M); err != nil {
		t.Fatal(err)
	}
	if _, size, ok := as.Translate(r.Start + 12345); !ok || size != Page2M {
		t.Errorf("translation after promotion: ok=%v size=%v", ok, size)
	}
	if got := len(as.Mappings()); got != 1 {
		t.Errorf("mappings = %d, want 1", got)
	}
	if as.PagesBySize()[Page4K] != 0 || as.PagesBySize()[Page2M] != 2 {
		t.Errorf("pages = %+v", as.PagesBySize())
	}
}

func TestReplaceSplitsMapping(t *testing.T) {
	as := newTestSpace(t)
	base := Addr(Page1G)
	if err := as.Map(NewRegion(base, 8<<20), Page4K); err != nil {
		t.Fatal(err)
	}
	// Promote only the middle 2MB chunk.
	mid := NewRegion(base+Addr(2<<20), 2<<20)
	if err := as.Replace(mid, Page2M); err != nil {
		t.Fatal(err)
	}
	ms := as.Mappings()
	if len(ms) != 3 {
		t.Fatalf("mappings = %d, want 3 (head, promoted, tail): %+v", len(ms), ms)
	}
	if ms[0].Size != Page4K || ms[1].Size != Page2M || ms[2].Size != Page4K {
		t.Errorf("split sizes wrong: %+v", ms)
	}
	if ms[1].Region != mid {
		t.Errorf("promoted region = %v, want %v", ms[1].Region, mid)
	}
	// Head and tail still translate as 4KB; middle as 2MB.
	if _, size, _ := as.Translate(base); size != Page4K {
		t.Error("head size wrong")
	}
	if _, size, _ := as.Translate(mid.Start + 1); size != Page2M {
		t.Error("middle size wrong")
	}
	if _, size, _ := as.Translate(mid.End + 1); size != Page4K {
		t.Error("tail size wrong")
	}
	// Total mapped bytes unchanged.
	if as.MappedBytes() != 8<<20 {
		t.Errorf("mapped bytes = %d", as.MappedBytes())
	}
}

func TestReplaceDemotes(t *testing.T) {
	as := newTestSpace(t)
	r := NewRegion(Addr(Page1G), 4<<20)
	if err := as.Map(r, Page2M); err != nil {
		t.Fatal(err)
	}
	if err := as.Replace(NewRegion(r.Start, 2<<20), Page4K); err != nil {
		t.Fatal(err)
	}
	if _, size, _ := as.Translate(r.Start); size != Page4K {
		t.Error("demotion failed")
	}
	if as.PagesBySize()[Page4K] != 512 {
		t.Errorf("4KB pages = %d, want 512", as.PagesBySize()[Page4K])
	}
}

func TestReplaceNoOpSameSize(t *testing.T) {
	as := newTestSpace(t)
	r := NewRegion(Addr(Page1G), 2<<20)
	if err := as.Map(r, Page2M); err != nil {
		t.Fatal(err)
	}
	if err := as.Replace(r, Page2M); err != nil {
		t.Fatal(err)
	}
	if len(as.Mappings()) != 1 {
		t.Error("no-op replace should not split")
	}
}

func TestReplaceErrors(t *testing.T) {
	as := newTestSpace(t)
	if err := as.Map(NewRegion(Addr(Page1G), 4<<20), Page4K); err != nil {
		t.Fatal(err)
	}
	// Not inside a mapping.
	if err := as.Replace(NewRegion(0, 2<<20), Page2M); err == nil {
		t.Error("replace outside mappings should fail")
	}
	// Misaligned to the new size.
	if err := as.Replace(NewRegion(Addr(Page1G)+0x1000, 2<<20), Page2M); err == nil {
		t.Error("misaligned replace should fail")
	}
	// Invalid size.
	if err := as.Replace(NewRegion(Addr(Page1G), 2<<20), PageSize(999)); err == nil {
		t.Error("invalid page size should fail")
	}
	// Spanning two mappings.
	if err := as.Map(NewRegion(Addr(Page1G)+4<<20, 4<<20), Page4K); err != nil {
		t.Fatal(err)
	}
	if err := as.Replace(NewRegion(Addr(Page1G)+2<<20, 4<<20), Page2M); err == nil {
		t.Error("replace spanning mappings should fail")
	}
}

func TestReplaceFramesRecycled(t *testing.T) {
	as := newTestSpace(t)
	r := NewRegion(Addr(Page1G), 4<<20)
	if err := as.Map(r, Page4K); err != nil {
		t.Fatal(err)
	}
	used := as.Frames().Used()
	if err := as.Replace(r, Page2M); err != nil {
		t.Fatal(err)
	}
	// Same bytes mapped: the 4KB frames were freed, 2MB frames allocated,
	// and usage accounting must balance (page-table nodes aside).
	after := as.Frames().Used()
	if after > used+uint64(Page2M) || after < used-uint64(Page2M) {
		t.Errorf("frame usage drifted: %d → %d", used, after)
	}
}
