package mem

import (
	"errors"
	"fmt"
)

// The x86-64 4-level radix page table. Levels are numbered as in the Intel
// SDM: 4 = PML4, 3 = PDPT, 2 = PD, 1 = PT. A translation for a 4KB page
// reads one entry at each of the four levels; 2MB pages terminate at the PD
// (level 2) and 1GB pages at the PDPT (level 3) — the "four consecutive
// reads" the paper describes, shortened by hugepages.

// Page-table geometry constants.
const (
	// EntriesPerTable is the number of 8-byte entries in one table page.
	EntriesPerTable = 512
	// EntryBytes is the size of one page-table entry.
	EntryBytes = 8
	// TopLevel is the root level (PML4).
	TopLevel = 4
)

// Errors returned by page-table operations.
var (
	ErrAlreadyMapped = errors.New("mem: virtual page already mapped")
	ErrNotMapped     = errors.New("mem: virtual page not mapped")
	ErrMisaligned    = errors.New("mem: address not aligned to page size")
)

// indexAt extracts the 9-bit table index for the given level from a virtual
// address (level 1 = bits 20:12 ... level 4 = bits 47:39).
func indexAt(v Addr, level int) int {
	shift := uint(12 + 9*(level-1))
	return int(v>>shift) & (EntriesPerTable - 1)
}

// pte is a single page-table entry in the model.
type pte struct {
	present bool
	// leaf marks a terminal mapping: a 4KB PTE, a 2MB PDE, or a 1GB PDPTE.
	leaf bool
	// phys is the mapped frame base (leaf) or the next table's page (non-leaf).
	phys Addr
	next *tableNode
}

// tableNode is one 4KB page of 512 entries, placed at a concrete physical
// address so the walker's loads exercise the cache model realistically.
type tableNode struct {
	phys    Addr
	entries [EntriesPerTable]pte
	live    int // number of present entries; 0 means the table can be freed
}

// WalkRef is one page-table load a hardware walk performs: the level it
// reads and the physical address of the 8-byte entry.
type WalkRef struct {
	Level     int
	EntryPhys Addr
}

// Translation is the outcome of a successful page walk.
type Translation struct {
	// Refs are the entry loads the walk performed, from PML4 down to the
	// terminal level (length 2 for 1GB pages, 3 for 2MB, 4 for 4KB).
	Refs [4]WalkRef
	// NumRefs is the number of valid entries in Refs.
	NumRefs int
	// Phys is the translated physical address (frame base + page offset).
	Phys Addr
	// Size is the page size of the terminal mapping.
	Size PageSize
}

// PageTable models one process's x86-64 page table. Intermediate table pages
// are allocated from the same frame allocator as data pages, so the table's
// physical footprint is part of the modelled memory.
type PageTable struct {
	root   *tableNode
	frames *FrameAllocator
	tables int
	leaves map[PageSize]int
}

// NewPageTable creates an empty table whose node pages come from frames.
func NewPageTable(frames *FrameAllocator) (*PageTable, error) {
	pt := &PageTable{frames: frames, leaves: make(map[PageSize]int)}
	root, err := pt.newNode()
	if err != nil {
		return nil, err
	}
	pt.root = root
	return pt, nil
}

func (pt *PageTable) newNode() (*tableNode, error) {
	phys, err := pt.frames.Alloc(Page4K)
	if err != nil {
		return nil, fmt.Errorf("allocating page-table node: %w", err)
	}
	pt.tables++
	return &tableNode{phys: phys}, nil
}

// Map installs a translation of the given page size from virtual page v to
// physical frame p. Both must be size-aligned.
func (pt *PageTable) Map(v, p Addr, size PageSize) error {
	if !size.Valid() {
		return fmt.Errorf("mem: invalid page size %d", uint64(size))
	}
	if !IsAligned(v, size) || !IsAligned(p, size) {
		return fmt.Errorf("%w: v=%#x p=%#x size=%s", ErrMisaligned, uint64(v), uint64(p), size)
	}
	leafLevel := size.Level()
	node := pt.root
	for level := TopLevel; level > leafLevel; level-- {
		e := &node.entries[indexAt(v, level)]
		if e.present && e.leaf {
			return fmt.Errorf("%w: hugepage occupies level %d for %#x", ErrAlreadyMapped, level, uint64(v))
		}
		if !e.present {
			child, err := pt.newNode()
			if err != nil {
				return err
			}
			e.present = true
			e.leaf = false
			e.next = child
			e.phys = child.phys
			node.live++
		}
		node = e.next
	}
	e := &node.entries[indexAt(v, leafLevel)]
	if e.present {
		return fmt.Errorf("%w: %#x (%s)", ErrAlreadyMapped, uint64(v), size)
	}
	e.present = true
	e.leaf = true
	e.phys = p
	node.live++
	pt.leaves[size]++
	return nil
}

// Unmap removes the translation for the size-aligned virtual page v and
// returns the physical frame that was mapped there. Empty intermediate
// tables are pruned and their node pages returned to the frame allocator.
func (pt *PageTable) Unmap(v Addr, size PageSize) (Addr, error) {
	if !IsAligned(v, size) {
		return 0, fmt.Errorf("%w: v=%#x size=%s", ErrMisaligned, uint64(v), size)
	}
	leafLevel := size.Level()
	var path [TopLevel]*tableNode
	node := pt.root
	for level := TopLevel; level > leafLevel; level-- {
		path[level-1] = node
		e := &node.entries[indexAt(v, level)]
		if !e.present || e.leaf {
			return 0, fmt.Errorf("%w: %#x (%s)", ErrNotMapped, uint64(v), size)
		}
		node = e.next
	}
	e := &node.entries[indexAt(v, leafLevel)]
	if !e.present || !e.leaf {
		return 0, fmt.Errorf("%w: %#x (%s)", ErrNotMapped, uint64(v), size)
	}
	frame := e.phys
	*e = pte{}
	node.live--
	pt.leaves[size]--
	// Prune now-empty tables bottom-up (never the root).
	child := node
	for level := leafLevel + 1; level <= TopLevel && child.live == 0 && child != pt.root; level++ {
		parent := path[level-1]
		pe := &parent.entries[indexAt(v, level)]
		*pe = pte{}
		parent.live--
		pt.frames.Free(child.phys, Page4K)
		pt.tables--
		child = parent
	}
	return frame, nil
}

// Walk performs a full page walk for virtual address v, recording the entry
// loads a hardware walker would issue. It reports ok=false on a fault
// (no translation installed).
func (pt *PageTable) Walk(v Addr) (Translation, bool) {
	var tr Translation
	ok := pt.walkInto(v, &tr)
	return tr, ok
}

// walkInto is Walk writing into a caller-provided Translation, so hot paths
// (the Translator's fallback) can reuse one scratch buffer instead of
// copying the 88-byte struct per walk.
func (pt *PageTable) walkInto(v Addr, tr *Translation) bool {
	tr.NumRefs = 0
	tr.Phys, tr.Size = 0, 0
	node := pt.root
	for level := TopLevel; level >= 1; level-- {
		idx := indexAt(v, level)
		e := &node.entries[idx]
		tr.Refs[tr.NumRefs] = WalkRef{
			Level:     level,
			EntryPhys: node.phys + Addr(idx*EntryBytes),
		}
		tr.NumRefs++
		if !e.present {
			return false
		}
		if e.leaf {
			size := sizeAtLevel(level)
			tr.Size = size
			tr.Phys = e.phys + (v & size.Mask())
			return true
		}
		node = e.next
	}
	return false
}

// WalkFrom performs a partial walk that starts below skipLevels already-
// resolved upper levels — modelling a page-walk-cache hit. skip=0 is a full
// walk from the PML4; skip=2 starts at the PD. The returned refs contain
// only the loads actually issued.
func (pt *PageTable) WalkFrom(v Addr, skip int) (Translation, bool) {
	var tr Translation
	ok := pt.walkFromInto(v, skip, &tr)
	return tr, ok
}

// walkFromInto is WalkFrom writing into a caller-provided Translation.
// Entries of tr.Refs beyond tr.NumRefs are left unspecified.
func (pt *PageTable) walkFromInto(v Addr, skip int, tr *Translation) bool {
	ok := pt.walkInto(v, tr)
	if skip <= 0 {
		return ok
	}
	if skip >= tr.NumRefs {
		skip = tr.NumRefs - 1
	}
	copy(tr.Refs[:], tr.Refs[skip:tr.NumRefs])
	tr.NumRefs -= skip
	return ok
}

// Translate resolves v without recording walk references. It runs on every
// simulated access, so it walks the radix tree directly instead of paying
// Walk's Translation bookkeeping.
//
//mosvet:hotpath
func (pt *PageTable) Translate(v Addr) (phys Addr, size PageSize, ok bool) {
	node := pt.root
	for level := TopLevel; level >= 1; level-- {
		e := &node.entries[indexAt(v, level)]
		if !e.present {
			return 0, 0, false
		}
		if e.leaf {
			size = sizeAtLevel(level)
			return e.phys + (v & size.Mask()), size, true
		}
		node = e.next
	}
	return 0, 0, false
}

// Tables returns the number of live table node pages (including the root).
func (pt *PageTable) Tables() int { return pt.tables }

// Leaves returns the number of live terminal mappings of the given size.
func (pt *PageTable) Leaves(size PageSize) int { return pt.leaves[size] }

// RootPhys returns the physical address of the PML4 page (the CR3 value).
func (pt *PageTable) RootPhys() Addr { return pt.root.phys }

func sizeAtLevel(level int) PageSize {
	switch level {
	case 1:
		return Page4K
	case 2:
		return Page2M
	case 3:
		return Page1G
	}
	return 0
}
