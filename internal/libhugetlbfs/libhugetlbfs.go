// Package libhugetlbfs models the libhugetlbfs library (§V-A): the
// pre-Mosalloc way to back a process's heap with hugepages. Like Mosalloc
// it loads via LD_PRELOAD without code changes; unlike Mosalloc it
//
//   - backs memory uniformly with a single hugepage size (no mosaics),
//   - hooks only the glibc morecore path, so workloads that allocate via
//     direct mmap or brk (e.g. graph500) get no hugepages at all, and
//   - forgets to cap glibc's contention arenas (it sets M_MMAP_MAX=0 but
//     not M_ARENA_MAX=1), so multithreaded allocation leaks to 4KB kernel
//     mappings — the bug the paper reports and Mosalloc fixes (§V-C).
//
// The package exists so the repository can demonstrate those limitations
// against the same workloads Mosalloc handles.
package libhugetlbfs

import (
	"fmt"

	"mosaic/internal/libc"
	"mosaic/internal/mem"
)

// PoolBase places the morecore heap replacement away from the kernel areas
// (1GB-aligned so any hugepage size fits).
const PoolBase mem.Addr = 0x0000_3000_0000_0000

// Lib is libhugetlbfs attached to one process.
type Lib struct {
	proc     *libc.Process
	pageSize mem.PageSize
	base     mem.Addr
	brk      mem.Addr
	mapped   mem.Addr // hugepage-backed frontier
	capacity uint64
	stats    Stats
}

// Stats counts what the library served vs what escaped it.
type Stats struct {
	// MorecoreCalls served from the hugepage heap.
	MorecoreCalls int
	// ForwardedMmaps are application mmap/munmap calls passed straight to
	// the kernel — libhugetlbfs does not intercept them.
	ForwardedMmaps int
}

// Attach interposes the library: morecore-driven heap growth lands on a
// hugepage-backed pool of the given page size and capacity; everything
// else still reaches the kernel. Mirroring the real library, it sets
// M_MMAP_MAX=0 (forcing malloc through morecore) but NOT M_ARENA_MAX —
// the §V-C bug.
func Attach(proc *libc.Process, pageSize mem.PageSize, capacity uint64) (*Lib, error) {
	if !pageSize.Valid() || pageSize == mem.Page4K {
		return nil, fmt.Errorf("libhugetlbfs: HUGETLB_MORECORE must be 2MB or 1GB, got %v", pageSize)
	}
	capacity = uint64(mem.AlignUp(mem.Addr(capacity), pageSize))
	l := &Lib{
		proc:     proc,
		pageSize: pageSize,
		base:     PoolBase,
		brk:      PoolBase,
		mapped:   PoolBase,
		capacity: capacity,
	}
	if err := proc.MallocState().Mallopt(libc.MMmapMax, 0); err != nil {
		return nil, err
	}
	proc.SetHooks(l)
	return l, nil
}

// Sbrk implements libc.Backend: the morecore hook. Growth is backed with
// hugepages mapped on demand.
func (l *Lib) Sbrk(incr int64) (mem.Addr, error) {
	old := l.brk
	if incr == 0 {
		return old, nil
	}
	next := mem.Addr(int64(l.brk) + incr)
	if next < l.base {
		return 0, fmt.Errorf("libhugetlbfs: break below base")
	}
	if uint64(next-l.base) > l.capacity {
		return 0, fmt.Errorf("libhugetlbfs: hugepage pool exhausted (%d of %d bytes)",
			uint64(next-l.base), l.capacity)
	}
	l.stats.MorecoreCalls++
	frontier := mem.AlignUp(next, l.pageSize)
	if frontier > l.mapped {
		if err := l.proc.Kernel().MmapFixed(l.mapped, uint64(frontier-l.mapped), l.pageSize); err != nil {
			return 0, err
		}
		l.mapped = frontier
	}
	l.brk = next
	return old, nil
}

// Mmap implements libc.Backend: forwarded untouched — the library does not
// intercept mmap, which is why mmap-based workloads get no hugepages.
func (l *Lib) Mmap(length uint64, flags libc.MapFlags) (mem.Addr, error) {
	l.stats.ForwardedMmaps++
	return l.proc.Kernel().Mmap(length, flags)
}

// Munmap implements libc.Backend, likewise forwarded.
func (l *Lib) Munmap(addr mem.Addr, length uint64) error {
	l.stats.ForwardedMmaps++
	return l.proc.Kernel().Munmap(addr, length)
}

// Stats returns the interception counters.
func (l *Lib) Stats() Stats { return l.stats }

// HeapRegion returns the hugepage-backed heap range mapped so far.
func (l *Lib) HeapRegion() mem.Region {
	return mem.Region{Start: l.base, End: l.mapped}
}
