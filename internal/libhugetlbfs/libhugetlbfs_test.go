package libhugetlbfs

import (
	"testing"

	"mosaic/internal/libc"
	"mosaic/internal/mem"
)

func attach(t *testing.T, ps mem.PageSize) (*libc.Process, *Lib) {
	t.Helper()
	proc, err := libc.NewProcess(1 << 38)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Attach(proc, ps, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	return proc, l
}

func TestMallocGetsHugepages(t *testing.T) {
	proc, l := attach(t, mem.Page2M)
	a, err := proc.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !l.HeapRegion().Contains(a) {
		t.Fatalf("malloc result %#x outside hugepage heap %v", uint64(a), l.HeapRegion())
	}
	if _, size, _ := proc.Space().Translate(a); size != mem.Page2M {
		t.Errorf("heap backed by %v, want 2MB", size)
	}
	// Large mallocs also stay on the heap (M_MMAP_MAX=0 is set).
	b, err := proc.Malloc(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !l.HeapRegion().Contains(b) {
		t.Error("large malloc escaped the hugepage heap")
	}
}

func Test1GBMorecore(t *testing.T) {
	proc, _ := attach(t, mem.Page1G)
	a, err := proc.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, size, _ := proc.Space().Translate(a); size != mem.Page1G {
		t.Errorf("heap backed by %v, want 1GB", size)
	}
}

func TestInvalidPageSize(t *testing.T) {
	proc, err := libc.NewProcess(1 << 36)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(proc, mem.Page4K, 1<<20); err == nil {
		t.Error("4KB HUGETLB_MORECORE should be rejected")
	}
	if _, err := Attach(proc, mem.PageSize(123), 1<<20); err == nil {
		t.Error("bogus page size should be rejected")
	}
}

// The library's first documented limitation: direct mmap allocations are
// not intercepted, so mmap-based workloads get 4KB pages.
func TestMmapNotIntercepted(t *testing.T) {
	proc, l := attach(t, mem.Page2M)
	a, err := proc.Mmap(8<<20, libc.MapFlags{Kind: libc.MapAnonymous})
	if err != nil {
		t.Fatal(err)
	}
	if l.HeapRegion().Contains(a) {
		t.Error("mmap should not land on the hugepage heap")
	}
	if _, size, _ := proc.Space().Translate(a); size != mem.Page4K {
		t.Errorf("mmap backed by %v — libhugetlbfs must not upgrade it", size)
	}
	if l.Stats().ForwardedMmaps == 0 {
		t.Error("forwarded mmaps not counted")
	}
	if err := proc.Munmap(a, 8<<20); err != nil {
		t.Fatal(err)
	}
}

// The §V-C bug: contention arenas are allocated with raw mmap because the
// library does not set M_ARENA_MAX, so some malloc memory silently ends up
// on 4KB pages. Mosalloc's test suite shows the same scenario staying
// entirely in its pools.
func TestArenaBugLeaks4KPages(t *testing.T) {
	proc, l := attach(t, mem.Page2M)
	proc.MallocState().SetContention(2)
	leaked := 0
	for i := 0; i < 50; i++ {
		a, err := proc.Malloc(512)
		if err != nil {
			t.Fatal(err)
		}
		if !l.HeapRegion().Contains(a) {
			leaked++
			if _, size, _ := proc.Space().Translate(a); size != mem.Page4K {
				t.Errorf("leaked allocation backed by %v, want 4KB", size)
			}
		}
	}
	if leaked == 0 {
		t.Error("contention should leak allocations off the hugepage heap (the libhugetlbfs bug)")
	}
	if st := proc.MallocState().Stats(); st.ArenaSpawns == 0 {
		t.Error("arena path not exercised")
	}
}

func TestPoolExhaustion(t *testing.T) {
	proc, err := libc.NewProcess(1 << 38)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(proc, mem.Page2M, 4<<20); err != nil {
		t.Fatal(err)
	}
	var last error
	for i := 0; i < 16; i++ {
		if _, last = proc.Malloc(1 << 20); last != nil {
			break
		}
	}
	if last == nil {
		t.Error("exhausting the hugepage pool should fail")
	}
}

func TestSbrkSemantics(t *testing.T) {
	proc, l := attach(t, mem.Page2M)
	base, err := proc.Sbrk(0)
	if err != nil {
		t.Fatal(err)
	}
	if base != PoolBase {
		t.Errorf("initial break = %#x, want pool base", uint64(base))
	}
	if _, err := proc.Sbrk(-1); err == nil {
		t.Error("shrinking below base should fail")
	}
	_ = l
}
