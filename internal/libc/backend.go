// Package libc models the user-space allocation stack that Mosalloc
// interposes on: a glibc-like malloc (morecore/sbrk growth, direct-mmap
// above MMAP_THRESHOLD, arena spawning under contention, mallopt tuning)
// and the three primary Linux memory system calls (brk, mmap, munmap).
//
// The split between hooked and raw call paths reproduces the central
// implementation challenge of the paper (§V-C): an LD_PRELOAD library can
// override the glibc wrapper functions, but calls that glibc makes
// internally to mmap are statically bound and cannot be intercepted.
// Mosalloc therefore disables those paths via mallopt (M_MMAP_MAX=0,
// M_ARENA_MAX=1); libhugetlbfs does not, which is the bug the paper fixes.
package libc

import (
	"errors"

	"mosaic/internal/mem"
)

// MapKind classifies an mmap request the way Mosalloc routes it (§V,
// Figure 4): anonymous maps go to the anonymous pool, file-backed maps to
// the 4KB-only file pool.
type MapKind int

// The two mmap request classes.
const (
	MapAnonymous MapKind = iota
	MapFileBacked
)

// String names the map kind.
func (k MapKind) String() string {
	if k == MapFileBacked {
		return "file"
	}
	return "anonymous"
}

// MapFlags carries the mmap arguments the model cares about.
type MapFlags struct {
	Kind MapKind
	// HugeTLB requests explicit hugepages (MAP_HUGETLB); HugeSize selects
	// MAP_HUGE_2MB or MAP_HUGE_1GB. Ignored unless HugeTLB is set.
	HugeTLB  bool
	HugeSize mem.PageSize
}

// Backend is the kernel-facing interface for memory requests. The real
// kernel implements it (Kernel); Mosalloc implements it too and is swapped
// in via Process.SetHooks, modelling LD_PRELOAD interposition.
type Backend interface {
	// Sbrk adjusts the program break by incr bytes and returns the break's
	// previous location (the base of newly usable memory when growing).
	// Sbrk(0) returns the current break.
	Sbrk(incr int64) (mem.Addr, error)
	// Mmap maps length bytes and returns the base address.
	Mmap(length uint64, flags MapFlags) (mem.Addr, error)
	// Munmap unmaps a previously mapped range.
	Munmap(addr mem.Addr, length uint64) error
}

// Errors returned by the libc model.
var (
	ErrNoMemory     = errors.New("libc: cannot allocate memory")
	ErrBadFree      = errors.New("libc: free of unallocated address")
	ErrBadMallopt   = errors.New("libc: invalid mallopt parameter")
	ErrUnmapUnknown = errors.New("libc: munmap of unknown mapping")
)
