package libc

import (
	"fmt"
	"sort"

	"mosaic/internal/mem"
)

// MalloptParam selects a tunable, mirroring glibc's mallopt(3).
type MalloptParam int

// The mallopt parameters the model supports — the two Mosalloc needs plus
// the mmap threshold.
const (
	MMmapMax MalloptParam = iota
	MArenaMax
	MMmapThreshold
)

// Default malloc tunables (glibc defaults, scaled where noted).
const (
	// DefaultMmapThreshold is glibc's M_MMAP_THRESHOLD default: requests of
	// at least this size go straight to mmap, bypassing morecore.
	DefaultMmapThreshold = 128 << 10
	// DefaultMmapMax is glibc's default cap on live direct mmaps.
	DefaultMmapMax = 65536
	// DefaultArenaMax caps the number of arenas spawned under contention.
	DefaultArenaMax = 8
	// morecoreChunk is the minimum sbrk growth per morecore call, like
	// glibc's top-chunk padding.
	morecoreChunk = 128 << 10
	// headerBytes models the per-block malloc header.
	headerBytes = 16
	// arenaBytes is the size of a contention-spawned arena (glibc uses
	// 64MB per arena on 64-bit; scaled down to keep footprints small).
	arenaBytes = 4 << 20
)

// block is one chunk in the heap free-list.
type block struct {
	addr mem.Addr // address of the header
	size uint64   // total size including header
	free bool
}

// MallocStats counts the allocation paths taken, so tests and experiments
// can verify which requests Mosalloc was able to intercept.
type MallocStats struct {
	MorecoreCalls int // heap extensions through the hookable morecore path
	DirectMmaps   int // unhookable direct mmap allocations
	ArenaSpawns   int // unhookable contention arenas created
	Allocs        int
	Frees         int
}

// Malloc is a simplified glibc allocator. Small requests are served from a
// first-fit free list over a heap grown via morecore (which calls the
// hooked Sbrk); large requests go directly to the raw, unhookable mmap;
// contention spawns arenas, also via raw mmap. Mosalloc neutralizes the two
// raw paths with mallopt, exactly as §V-C describes.
type Malloc struct {
	proc *Process

	mmapThreshold uint64
	mmapMax       int
	arenaMax      int

	blocks   []block // sorted by addr
	heapTop  mem.Addr
	heapBase mem.Addr

	directMaps map[mem.Addr]uint64 // raw-mmapped blocks: base -> length
	liveMmaps  int

	arenas      []arenaState
	arenaAllocs map[mem.Addr]uint64 // addr -> size, for free()

	// contentionEvery simulates multi-threaded allocation contention: every
	// n-th allocation triggers the arena path (0 disables).
	contentionEvery int

	stats MallocStats
}

type arenaState struct {
	base mem.Addr
	next mem.Addr
	end  mem.Addr
}

// newMalloc wires a Malloc to its owning process.
func newMalloc(p *Process) *Malloc {
	return &Malloc{
		proc:          p,
		mmapThreshold: DefaultMmapThreshold,
		mmapMax:       DefaultMmapMax,
		arenaMax:      DefaultArenaMax,
		directMaps:    make(map[mem.Addr]uint64),
		arenaAllocs:   make(map[mem.Addr]uint64),
	}
}

// Mallopt adjusts a tunable, mirroring mallopt(3). Mosalloc calls
// Mallopt(MMmapMax, 0) and Mallopt(MArenaMax, 1).
func (m *Malloc) Mallopt(param MalloptParam, value int) error {
	switch param {
	case MMmapMax:
		if value < 0 {
			return fmt.Errorf("%w: M_MMAP_MAX=%d", ErrBadMallopt, value)
		}
		m.mmapMax = value
	case MArenaMax:
		if value < 1 {
			return fmt.Errorf("%w: M_ARENA_MAX=%d", ErrBadMallopt, value)
		}
		m.arenaMax = value
	case MMmapThreshold:
		if value < 0 {
			return fmt.Errorf("%w: M_MMAP_THRESHOLD=%d", ErrBadMallopt, value)
		}
		m.mmapThreshold = uint64(value)
	default:
		return fmt.Errorf("%w: %d", ErrBadMallopt, int(param))
	}
	return nil
}

// SetContention makes every n-th allocation behave as if it detected lock
// contention, triggering glibc's arena path (0 disables). This models the
// multi-threaded workloads (xsbench, gapbs) whose allocations libhugetlbfs
// fails to intercept.
func (m *Malloc) SetContention(n int) { m.contentionEvery = n }

// Stats returns a copy of the path counters.
func (m *Malloc) Stats() MallocStats { return m.stats }

// Alloc services a malloc(size) call and returns the payload address.
func (m *Malloc) Alloc(size uint64) (mem.Addr, error) {
	if size == 0 {
		size = 1
	}
	m.stats.Allocs++
	need := align16(size + headerBytes)

	// Path 1: direct mmap for large requests — statically bound inside
	// glibc, invisible to LD_PRELOAD hooks.
	if need >= m.mmapThreshold && m.liveMmaps < m.mmapMax {
		length := uint64(mem.AlignUp(mem.Addr(need), mem.Page4K))
		base, err := m.proc.rawMmap(length, MapFlags{Kind: MapAnonymous})
		if err != nil {
			return 0, err
		}
		m.directMaps[base] = length
		m.liveMmaps++
		m.stats.DirectMmaps++
		return base + headerBytes, nil
	}

	// Path 2: contention arenas — also raw mmap.
	if m.contentionEvery > 0 && m.stats.Allocs%m.contentionEvery == 0 &&
		(len(m.arenas)+1) < m.arenaMax {
		if a, err := m.arenaAlloc(need); err == nil {
			return a, nil
		}
		// Arena exhausted or unavailable: fall through to the main heap.
	}

	// Path 3: the main heap, grown through the hookable morecore.
	if addr, ok := m.fitExisting(need); ok {
		return addr + headerBytes, nil
	}
	if err := m.morecore(need); err != nil {
		return 0, err
	}
	addr, ok := m.fitExisting(need)
	if !ok {
		return 0, fmt.Errorf("%w: heap extension did not satisfy %d bytes", ErrNoMemory, need)
	}
	return addr + headerBytes, nil
}

// Free releases a pointer previously returned by Alloc.
func (m *Malloc) Free(addr mem.Addr) error {
	if addr == 0 {
		return nil // free(NULL) is a no-op
	}
	m.stats.Frees++
	base := addr - headerBytes
	if length, ok := m.directMaps[base]; ok {
		delete(m.directMaps, base)
		m.liveMmaps--
		return m.proc.rawMunmap(base, length)
	}
	if _, ok := m.arenaAllocs[addr]; ok {
		// Arena blocks are bump-allocated; glibc frees them into per-arena
		// bins. The model simply marks them released.
		delete(m.arenaAllocs, addr)
		return nil
	}
	i := sort.Search(len(m.blocks), func(i int) bool { return m.blocks[i].addr >= base })
	if i >= len(m.blocks) || m.blocks[i].addr != base || m.blocks[i].free {
		return fmt.Errorf("%w: %#x", ErrBadFree, uint64(addr))
	}
	m.blocks[i].free = true
	m.coalesce(i)
	return nil
}

// HeapUsed returns the number of payload bytes currently allocated on the
// main heap (excluding direct mmaps and arenas).
func (m *Malloc) HeapUsed() uint64 {
	var n uint64
	for _, b := range m.blocks {
		if !b.free {
			n += b.size - headerBytes
		}
	}
	return n
}

func (m *Malloc) fitExisting(need uint64) (mem.Addr, bool) {
	for i := range m.blocks {
		b := &m.blocks[i]
		if !b.free || b.size < need {
			continue
		}
		if b.size >= need+headerBytes+16 {
			// Split: keep the tail free.
			rest := block{addr: b.addr + mem.Addr(need), size: b.size - need, free: true}
			b.size = need
			b.free = false
			m.blocks = append(m.blocks, block{})
			copy(m.blocks[i+2:], m.blocks[i+1:])
			m.blocks[i+1] = rest
		} else {
			b.free = false
		}
		return b.addr, true
	}
	return 0, false
}

func (m *Malloc) morecore(need uint64) error {
	grow := need
	if grow < morecoreChunk {
		grow = morecoreChunk
	}
	if m.heapBase == 0 {
		// First extension: learn the heap base, like glibc's initial
		// sbrk(0) probe at load time.
		base, err := m.proc.hooked().Sbrk(0)
		if err != nil {
			return err
		}
		m.heapBase = base
		m.heapTop = base
	}
	old, err := m.proc.hooked().Sbrk(int64(grow))
	if err != nil {
		return err
	}
	m.stats.MorecoreCalls++
	m.heapTop = old + mem.Addr(grow)
	// Extend the last free block if it abuts the old top, else add one.
	if n := len(m.blocks); n > 0 && m.blocks[n-1].free &&
		m.blocks[n-1].addr+mem.Addr(m.blocks[n-1].size) == old {
		m.blocks[n-1].size += grow
	} else {
		m.blocks = append(m.blocks, block{addr: old, size: grow, free: true})
	}
	return nil
}

func (m *Malloc) coalesce(i int) {
	// Merge with next, then with previous.
	if i+1 < len(m.blocks) && m.blocks[i+1].free &&
		m.blocks[i].addr+mem.Addr(m.blocks[i].size) == m.blocks[i+1].addr {
		m.blocks[i].size += m.blocks[i+1].size
		m.blocks = append(m.blocks[:i+1], m.blocks[i+2:]...)
	}
	if i > 0 && m.blocks[i-1].free &&
		m.blocks[i-1].addr+mem.Addr(m.blocks[i-1].size) == m.blocks[i].addr {
		m.blocks[i-1].size += m.blocks[i].size
		m.blocks = append(m.blocks[:i], m.blocks[i+1:]...)
	}
}

func (m *Malloc) arenaAlloc(need uint64) (mem.Addr, error) {
	for i := range m.arenas {
		a := &m.arenas[i]
		if uint64(a.end-a.next) >= need {
			addr := a.next + headerBytes
			a.next += mem.Addr(need)
			m.arenaAllocs[addr] = need
			return addr, nil
		}
	}
	if len(m.arenas)+1 >= m.arenaMax {
		return 0, ErrNoMemory
	}
	base, err := m.proc.rawMmap(arenaBytes, MapFlags{Kind: MapAnonymous})
	if err != nil {
		return 0, err
	}
	m.stats.ArenaSpawns++
	m.arenas = append(m.arenas, arenaState{base: base, next: base, end: base + arenaBytes})
	return m.arenaAlloc(need)
}

func align16(n uint64) uint64 { return (n + 15) &^ 15 }
