package libc

import (
	"fmt"

	"mosaic/internal/mem"
)

// Virtual-address layout constants for the modelled process, mirroring the
// canonical Linux x86-64 layout: the heap sits low, the mmap area high.
const (
	// DefaultHeapBase is where the program break starts.
	DefaultHeapBase mem.Addr = 0x0000_1000_0000_0000
	// DefaultMmapBase is where kernel-chosen mmap placements start.
	DefaultMmapBase mem.Addr = 0x0000_7f00_0000_0000
)

// Kernel is the default Backend: it backs brk growth and plain mmap calls
// with 4KB pages, and explicit MAP_HUGETLB requests with the requested
// hugepage size, exactly as Linux does without any allocator interposed.
type Kernel struct {
	space    *mem.AddressSpace
	heapBase mem.Addr
	brk      mem.Addr
	// brkMapped is the page-aligned frontier up to which the heap has
	// actually been mapped; Linux maps heap pages lazily, we map them when
	// the break crosses a page boundary.
	brkMapped mem.Addr
	mmapNext  mem.Addr
	mappings  map[mem.Addr]uint64 // base -> length, for munmap validation
}

// NewKernel creates the default backend over the given address space.
func NewKernel(space *mem.AddressSpace) *Kernel {
	return &Kernel{
		space:     space,
		heapBase:  DefaultHeapBase,
		brk:       DefaultHeapBase,
		brkMapped: DefaultHeapBase,
		mmapNext:  DefaultMmapBase,
		mappings:  make(map[mem.Addr]uint64),
	}
}

// Sbrk implements Backend by moving the program break, mapping 4KB pages
// as the break crosses page boundaries. Shrinking unmaps whole pages that
// fall above the new break.
func (k *Kernel) Sbrk(incr int64) (mem.Addr, error) {
	old := k.brk
	if incr == 0 {
		return old, nil
	}
	newBrk := mem.Addr(int64(k.brk) + incr)
	if newBrk < k.heapBase {
		return 0, fmt.Errorf("%w: break below heap base", ErrNoMemory)
	}
	if incr > 0 {
		frontier := mem.AlignUp(newBrk, mem.Page4K)
		if frontier > k.brkMapped {
			r := mem.Region{Start: k.brkMapped, End: frontier}
			if err := k.space.Map(r, mem.Page4K); err != nil {
				return 0, fmt.Errorf("%w: %v", ErrNoMemory, err)
			}
			k.brkMapped = frontier
		}
	} else {
		frontier := mem.AlignUp(newBrk, mem.Page4K)
		if frontier < k.brkMapped {
			r := mem.Region{Start: frontier, End: k.brkMapped}
			if err := k.space.Unmap(r); err != nil {
				return 0, err
			}
			k.brkMapped = frontier
		}
	}
	k.brk = newBrk
	return old, nil
}

// Brk returns the current program break.
func (k *Kernel) Brk() mem.Addr { return k.brk }

// Mmap implements Backend with a bump-allocated placement in the mmap area.
func (k *Kernel) Mmap(length uint64, flags MapFlags) (mem.Addr, error) {
	if length == 0 {
		return 0, fmt.Errorf("%w: zero-length mmap", ErrNoMemory)
	}
	ps := mem.Page4K
	if flags.HugeTLB {
		if flags.Kind == MapFileBacked {
			// Linux serves file-backed maps from the page cache, which is
			// managed with 4KB pages only (§V).
			return 0, fmt.Errorf("%w: MAP_HUGETLB with file backing", ErrNoMemory)
		}
		if !flags.HugeSize.Valid() {
			return 0, fmt.Errorf("libc: invalid hugepage size %d", uint64(flags.HugeSize))
		}
		ps = flags.HugeSize
	}
	base := mem.AlignUp(k.mmapNext, ps)
	size := uint64(mem.AlignUp(mem.Addr(length), ps))
	r := mem.NewRegion(base, size)
	if err := k.space.Map(r, ps); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrNoMemory, err)
	}
	k.mmapNext = r.End
	k.mappings[base] = size
	return base, nil
}

// MmapFixed maps length bytes at exactly addr (MAP_FIXED) with the given
// backing page size. Mosalloc uses it to build contiguous pools that mosaic
// several page sizes: each interval is mapped at a fixed offset so the pool
// stays one unbroken virtual range.
func (k *Kernel) MmapFixed(addr mem.Addr, length uint64, ps mem.PageSize) error {
	if length == 0 {
		return fmt.Errorf("%w: zero-length fixed mmap", ErrNoMemory)
	}
	r := mem.NewRegion(addr, length)
	if err := k.space.Map(r, ps); err != nil {
		return fmt.Errorf("%w: %v", ErrNoMemory, err)
	}
	k.mappings[addr] = length
	return nil
}

// Munmap implements Backend; it accepts exactly the ranges Mmap returned.
func (k *Kernel) Munmap(addr mem.Addr, length uint64) error {
	size, ok := k.mappings[addr]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrUnmapUnknown, uint64(addr))
	}
	aligned := uint64(mem.AlignUp(mem.Addr(length), mem.Page4K))
	if aligned != size {
		// The model supports whole-mapping munmap only, which is all the
		// workloads and Mosalloc need.
		return fmt.Errorf("%w: partial munmap of %#x (%d of %d)", ErrUnmapUnknown,
			uint64(addr), length, size)
	}
	if err := k.space.Unmap(mem.NewRegion(addr, size)); err != nil {
		return err
	}
	delete(k.mappings, addr)
	return nil
}
