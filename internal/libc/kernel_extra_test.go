package libc

import (
	"testing"

	"mosaic/internal/mem"
)

func TestMmapFixedPlacesExactly(t *testing.T) {
	p := newTestProcess(t)
	k := p.Kernel()
	base := mem.Addr(0x0000_5000_0000_0000)
	if err := k.MmapFixed(base, uint64(mem.Page2M), mem.Page2M); err != nil {
		t.Fatal(err)
	}
	if _, size, ok := p.Space().Translate(base); !ok || size != mem.Page2M {
		t.Errorf("fixed mapping: ok=%v size=%v", ok, size)
	}
	// The fixed mapping is munmap-able like any other.
	if err := k.Munmap(base, uint64(mem.Page2M)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := p.Space().Translate(base); ok {
		t.Error("translation survived munmap of fixed mapping")
	}
}

func TestMmapFixedErrors(t *testing.T) {
	p := newTestProcess(t)
	k := p.Kernel()
	if err := k.MmapFixed(0x1000, 0, mem.Page4K); err == nil {
		t.Error("zero-length fixed map should fail")
	}
	base := mem.Addr(0x0000_5000_0000_0000)
	if err := k.MmapFixed(base, uint64(mem.Page4K), mem.Page4K); err != nil {
		t.Fatal(err)
	}
	// Overlapping fixed map fails (the model has no MAP_FIXED clobbering).
	if err := k.MmapFixed(base, uint64(mem.Page4K), mem.Page4K); err == nil {
		t.Error("overlapping fixed map should fail")
	}
	// Misaligned placement for the page size fails.
	if err := k.MmapFixed(base+0x1000, uint64(mem.Page2M), mem.Page2M); err == nil {
		t.Error("misaligned fixed map should fail")
	}
}

func TestSbrkZeroAfterGrowth(t *testing.T) {
	p := newTestProcess(t)
	k := p.Kernel()
	if _, err := k.Sbrk(12345); err != nil {
		t.Fatal(err)
	}
	brk, err := k.Sbrk(0)
	if err != nil {
		t.Fatal(err)
	}
	if brk != DefaultHeapBase+12345 {
		t.Errorf("break = %#x, want base+12345", uint64(brk))
	}
	if k.Brk() != brk {
		t.Errorf("Brk() = %#x disagrees with Sbrk(0) = %#x", uint64(k.Brk()), uint64(brk))
	}
}

// Heap growth maps pages lazily at page granularity: growing by one byte
// within an already-mapped page maps nothing new.
func TestSbrkPageGranularity(t *testing.T) {
	p := newTestProcess(t)
	k := p.Kernel()
	if _, err := k.Sbrk(1); err != nil {
		t.Fatal(err)
	}
	mappedAfterOne := p.Space().MappedBytes()
	if mappedAfterOne != uint64(mem.Page4K) {
		t.Fatalf("1-byte growth mapped %d bytes, want one page", mappedAfterOne)
	}
	if _, err := k.Sbrk(100); err != nil {
		t.Fatal(err)
	}
	if got := p.Space().MappedBytes(); got != mappedAfterOne {
		t.Errorf("growth within the page mapped %d more bytes", got-mappedAfterOne)
	}
}
