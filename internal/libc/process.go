package libc

import (
	"mosaic/internal/mem"
)

// Process bundles one modelled process: its address space, the kernel
// backend, the glibc-like malloc, and the currently installed hooks.
//
// Application code calls the Process methods (Malloc, Free, Brk, Sbrk,
// Mmap, Munmap) — the glibc wrapper functions. An interposing library
// (Mosalloc) installs itself with SetHooks, after which the wrapper calls
// route to it, while glibc-internal raw paths still reach the kernel
// directly unless neutralized via Mallopt.
type Process struct {
	space  *mem.AddressSpace
	kernel *Kernel
	malloc *Malloc
	hooks  Backend
}

// NewProcess creates a process with physMem bytes of simulated physical
// memory and no hooks installed.
func NewProcess(physMem uint64) (*Process, error) {
	space, err := mem.NewAddressSpace(physMem)
	if err != nil {
		return nil, err
	}
	p := &Process{space: space}
	p.kernel = NewKernel(space)
	p.malloc = newMalloc(p)
	return p, nil
}

// Space returns the process's address space.
func (p *Process) Space() *mem.AddressSpace { return p.space }

// Kernel returns the raw kernel backend (what syscalls bind to).
func (p *Process) Kernel() *Kernel { return p.kernel }

// MallocState exposes the allocator for tuning (Mallopt, SetContention)
// and inspection (Stats).
func (p *Process) MallocState() *Malloc { return p.malloc }

// SetHooks interposes b on the hookable call paths, modelling LD_PRELOAD.
// Passing nil removes the hooks.
func (p *Process) SetHooks(b Backend) { p.hooks = b }

// hooked returns the backend the glibc wrappers currently resolve to.
func (p *Process) hooked() Backend {
	if p.hooks != nil {
		return p.hooks
	}
	return p.kernel
}

// rawMmap is the unhookable mmap path used inside glibc (direct mmap and
// arena spawning): it always reaches the kernel.
func (p *Process) rawMmap(length uint64, flags MapFlags) (mem.Addr, error) {
	return p.kernel.Mmap(length, flags)
}

// rawMunmap is the unhookable munmap counterpart.
func (p *Process) rawMunmap(addr mem.Addr, length uint64) error {
	return p.kernel.Munmap(addr, length)
}

// Malloc services malloc(size).
func (p *Process) Malloc(size uint64) (mem.Addr, error) { return p.malloc.Alloc(size) }

// Free services free(addr).
func (p *Process) Free(addr mem.Addr) error { return p.malloc.Free(addr) }

// Sbrk services a direct sbrk call from the application (hookable).
func (p *Process) Sbrk(incr int64) (mem.Addr, error) { return p.hooked().Sbrk(incr) }

// Mmap services a direct mmap call from the application (hookable).
func (p *Process) Mmap(length uint64, flags MapFlags) (mem.Addr, error) {
	return p.hooked().Mmap(length, flags)
}

// Munmap services a direct munmap call from the application (hookable).
func (p *Process) Munmap(addr mem.Addr, length uint64) error {
	return p.hooked().Munmap(addr, length)
}
