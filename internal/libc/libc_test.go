package libc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"mosaic/internal/mem"
)

func newTestProcess(t *testing.T) *Process {
	t.Helper()
	p, err := NewProcess(1 << 36)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSbrkGrowShrink(t *testing.T) {
	p := newTestProcess(t)
	k := p.Kernel()
	base, err := k.Sbrk(0)
	if err != nil {
		t.Fatal(err)
	}
	if base != DefaultHeapBase {
		t.Fatalf("initial break = %#x, want %#x", uint64(base), uint64(DefaultHeapBase))
	}
	old, err := k.Sbrk(10000)
	if err != nil {
		t.Fatal(err)
	}
	if old != base {
		t.Errorf("sbrk returned %#x, want old break %#x", uint64(old), uint64(base))
	}
	// The grown heap must be mapped and translate with 4KB pages.
	if _, size, ok := p.Space().Translate(base + 9999); !ok || size != mem.Page4K {
		t.Errorf("heap page not mapped: ok=%v size=%v", ok, size)
	}
	// Shrink back.
	if _, err := k.Sbrk(-10000); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := p.Space().Translate(base + 4096); ok {
		t.Error("heap page survived shrink")
	}
	if _, err := k.Sbrk(-1); err == nil {
		t.Error("shrinking below heap base should fail")
	}
}

func TestKernelMmapMunmap(t *testing.T) {
	p := newTestProcess(t)
	k := p.Kernel()
	addr, err := k.Mmap(100000, MapFlags{Kind: MapAnonymous})
	if err != nil {
		t.Fatal(err)
	}
	if !mem.IsAligned(addr, mem.Page4K) {
		t.Errorf("mmap result %#x not page aligned", uint64(addr))
	}
	if _, _, ok := p.Space().Translate(addr + 99999); !ok {
		t.Error("mapped range does not translate")
	}
	if err := k.Munmap(addr, 100000); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := p.Space().Translate(addr); ok {
		t.Error("translation survived munmap")
	}
	if err := k.Munmap(addr, 100000); !errors.Is(err, ErrUnmapUnknown) {
		t.Errorf("double munmap: err = %v", err)
	}
}

func TestKernelMmapHugeTLB(t *testing.T) {
	p := newTestProcess(t)
	k := p.Kernel()
	addr, err := k.Mmap(uint64(mem.Page2M), MapFlags{Kind: MapAnonymous, HugeTLB: true, HugeSize: mem.Page2M})
	if err != nil {
		t.Fatal(err)
	}
	if _, size, _ := p.Space().Translate(addr); size != mem.Page2M {
		t.Errorf("hugetlb mapping backed by %s, want 2MB", size)
	}
	// File-backed hugepages are rejected, as in Linux (§V).
	_, err = k.Mmap(uint64(mem.Page2M), MapFlags{Kind: MapFileBacked, HugeTLB: true, HugeSize: mem.Page2M})
	if err == nil {
		t.Error("file-backed MAP_HUGETLB should fail")
	}
	// Invalid hugepage size.
	_, err = k.Mmap(4096, MapFlags{Kind: MapAnonymous, HugeTLB: true, HugeSize: 12345})
	if err == nil {
		t.Error("invalid hugepage size should fail")
	}
	if _, err := k.Mmap(0, MapFlags{}); err == nil {
		t.Error("zero-length mmap should fail")
	}
}

func TestMallocSmallUsesMorecore(t *testing.T) {
	p := newTestProcess(t)
	a, err := p.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("two allocations share an address")
	}
	st := p.MallocState().Stats()
	if st.MorecoreCalls == 0 {
		t.Error("small allocations should go through morecore")
	}
	if st.DirectMmaps != 0 {
		t.Error("small allocations must not use direct mmap")
	}
	// Payloads land on the heap, which is 4KB-mapped.
	if _, size, ok := p.Space().Translate(a); !ok || size != mem.Page4K {
		t.Errorf("payload not on mapped heap: ok=%v size=%v", ok, size)
	}
}

func TestMallocLargeUsesDirectMmap(t *testing.T) {
	p := newTestProcess(t)
	a, err := p.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	st := p.MallocState().Stats()
	if st.DirectMmaps != 1 {
		t.Errorf("DirectMmaps = %d, want 1", st.DirectMmaps)
	}
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := p.Space().Translate(a); ok {
		t.Error("direct-mmap block survived free")
	}
}

func TestMalloptDisablesDirectMmap(t *testing.T) {
	p := newTestProcess(t)
	if err := p.MallocState().Mallopt(MMmapMax, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Malloc(1 << 20); err != nil {
		t.Fatal(err)
	}
	if st := p.MallocState().Stats(); st.DirectMmaps != 0 {
		t.Errorf("DirectMmaps = %d after M_MMAP_MAX=0", st.DirectMmaps)
	}
}

func TestContentionSpawnsArenas(t *testing.T) {
	p := newTestProcess(t)
	p.MallocState().SetContention(2)
	for i := 0; i < 10; i++ {
		if _, err := p.Malloc(256); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.MallocState().Stats(); st.ArenaSpawns == 0 {
		t.Error("contention should spawn an arena")
	}
}

func TestMalloptDisablesArenas(t *testing.T) {
	p := newTestProcess(t)
	p.MallocState().SetContention(2)
	if err := p.MallocState().Mallopt(MArenaMax, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := p.Malloc(256); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.MallocState().Stats(); st.ArenaSpawns != 0 {
		t.Errorf("ArenaSpawns = %d after M_ARENA_MAX=1", st.ArenaSpawns)
	}
}

func TestMalloptValidation(t *testing.T) {
	p := newTestProcess(t)
	m := p.MallocState()
	if err := m.Mallopt(MMmapMax, -1); err == nil {
		t.Error("negative M_MMAP_MAX should fail")
	}
	if err := m.Mallopt(MArenaMax, 0); err == nil {
		t.Error("M_ARENA_MAX=0 should fail")
	}
	if err := m.Mallopt(MalloptParam(99), 1); err == nil {
		t.Error("unknown mallopt param should fail")
	}
	if err := m.Mallopt(MMmapThreshold, 1<<20); err != nil {
		t.Error(err)
	}
}

func TestFreeErrors(t *testing.T) {
	p := newTestProcess(t)
	if err := p.Free(0); err != nil {
		t.Errorf("free(NULL) should be a no-op: %v", err)
	}
	if err := p.Free(0x1234); !errors.Is(err, ErrBadFree) {
		t.Errorf("bad free: err = %v", err)
	}
	a, _ := p.Malloc(64)
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(a); !errors.Is(err, ErrBadFree) {
		t.Errorf("double free: err = %v", err)
	}
}

func TestFreeCoalescingReusesSpace(t *testing.T) {
	p := newTestProcess(t)
	m := p.MallocState()
	var addrs []mem.Addr
	for i := 0; i < 8; i++ {
		a, err := p.Malloc(1000)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	callsBefore := m.Stats().MorecoreCalls
	for _, a := range addrs {
		if err := p.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	if m.HeapUsed() != 0 {
		t.Errorf("HeapUsed = %d after freeing everything", m.HeapUsed())
	}
	// A large-ish allocation should now fit without another morecore.
	if _, err := p.Malloc(7000); err != nil {
		t.Fatal(err)
	}
	if m.Stats().MorecoreCalls != callsBefore {
		t.Error("coalesced free space not reused")
	}
}

func TestMallocZeroSize(t *testing.T) {
	p := newTestProcess(t)
	a, err := p.Malloc(0)
	if err != nil || a == 0 {
		t.Fatalf("malloc(0) = %#x, %v", uint64(a), err)
	}
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
}

// recordingBackend verifies which calls reach an interposed library.
type recordingBackend struct {
	inner  Backend
	sbrks  int
	mmaps  int
	munmap int
}

func (r *recordingBackend) Sbrk(incr int64) (mem.Addr, error) {
	r.sbrks++
	return r.inner.Sbrk(incr)
}
func (r *recordingBackend) Mmap(length uint64, flags MapFlags) (mem.Addr, error) {
	r.mmaps++
	return r.inner.Mmap(length, flags)
}
func (r *recordingBackend) Munmap(addr mem.Addr, length uint64) error {
	r.munmap++
	return r.inner.Munmap(addr, length)
}

func TestHooksInterceptWrapperCalls(t *testing.T) {
	p := newTestProcess(t)
	rec := &recordingBackend{inner: p.Kernel()}
	p.SetHooks(rec)
	if _, err := p.Sbrk(4096); err != nil {
		t.Fatal(err)
	}
	addr, err := p.Mmap(8192, MapFlags{Kind: MapAnonymous})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Munmap(addr, 8192); err != nil {
		t.Fatal(err)
	}
	if rec.sbrks != 1 || rec.mmaps != 1 || rec.munmap != 1 {
		t.Errorf("hook counts = %d/%d/%d, want 1/1/1", rec.sbrks, rec.mmaps, rec.munmap)
	}
}

// The libhugetlbfs bug (§V-C): without mallopt neutralization, a large
// malloc bypasses the hooks entirely via the raw mmap path.
func TestRawPathsBypassHooks(t *testing.T) {
	p := newTestProcess(t)
	rec := &recordingBackend{inner: p.Kernel()}
	p.SetHooks(rec)
	if _, err := p.Malloc(1 << 20); err != nil {
		t.Fatal(err)
	}
	if rec.mmaps != 0 {
		t.Errorf("direct mmap reached the hooks (%d calls) — raw path must bypass them", rec.mmaps)
	}
	if st := p.MallocState().Stats(); st.DirectMmaps != 1 {
		t.Errorf("DirectMmaps = %d, want 1", st.DirectMmaps)
	}
}

// Property: a random malloc/free workload never corrupts the free list —
// all live payloads stay disjoint and heap accounting stays consistent.
func TestMallocFreeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, err := NewProcess(1 << 36)
		if err != nil {
			return false
		}
		live := make(map[mem.Addr]uint64)
		for i := 0; i < 200; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				for a := range live {
					if err := p.Free(a); err != nil {
						return false
					}
					delete(live, a)
					break
				}
				continue
			}
			size := uint64(rng.Intn(4000) + 1)
			a, err := p.Malloc(size)
			if err != nil {
				return false
			}
			// Check disjointness against all live blocks.
			for b, bs := range live {
				if a < b+mem.Addr(bs) && b < a+mem.Addr(size) {
					return false
				}
			}
			live[a] = size
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
