package mosalloc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"mosaic/internal/libc"
	"mosaic/internal/mem"
)

func testConfig() Config {
	return Config{
		HeapPool: PoolConfig{Intervals: []Interval{
			{Size: mem.Page4K, Length: 8 << 20},
			{Size: mem.Page2M, Length: 16 << 20},
			{Size: mem.Page4K, Length: 8 << 20},
		}},
		AnonPool: PoolConfig{Intervals: []Interval{
			{Size: mem.Page2M, Length: 16 << 20},
			{Size: mem.Page4K, Length: 16 << 20},
		}},
		FilePoolBytes: 8 << 20,
	}
}

func attachTest(t *testing.T) (*libc.Process, *Mosalloc) {
	t.Helper()
	proc, err := libc.NewProcess(1 << 38)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Attach(proc, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return proc, m
}

func TestAttachReservesMosaic(t *testing.T) {
	proc, m := attachTest(t)
	// The heap pool is one contiguous range with the configured mosaic.
	hr := m.HeapRegion()
	if hr.Len() != 32<<20 {
		t.Fatalf("heap region = %v", hr)
	}
	checks := []struct {
		off  uint64
		want mem.PageSize
	}{
		{0, mem.Page4K},
		{8<<20 - 4096, mem.Page4K},
		{8 << 20, mem.Page2M},
		{24<<20 - 1, mem.Page2M},
		{24 << 20, mem.Page4K},
		{32<<20 - 1, mem.Page4K},
	}
	for _, c := range checks {
		_, size, ok := proc.Space().Translate(hr.Start + mem.Addr(c.off))
		if !ok || size != c.want {
			t.Errorf("heap offset %#x: size=%v ok=%v, want %s", c.off, size, ok, c.want)
		}
	}
	// Every pool address must already be mapped (pools are reserved up front).
	for _, r := range []mem.Region{m.HeapRegion(), m.AnonRegion(), m.FileRegion()} {
		for v := r.Start; v < r.End; v += mem.Addr(4 << 20) {
			if _, _, ok := proc.Space().Translate(v); !ok {
				t.Fatalf("pool address %#x not mapped", uint64(v))
			}
		}
	}
}

func TestAttachRejectsBadConfig(t *testing.T) {
	proc, err := libc.NewProcess(1 << 36)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(proc, Config{}); err == nil {
		t.Error("empty config should fail")
	}
}

func TestMallocServedFromHeapPool(t *testing.T) {
	proc, m := attachTest(t)
	a, err := proc.Malloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !m.HeapRegion().Contains(a) {
		t.Errorf("malloc result %#x outside heap pool %v", uint64(a), m.HeapRegion())
	}
	// Large mallocs stay on the heap too: the mallopt neutralization kills
	// the direct-mmap path (the libhugetlbfs bug, fixed).
	b, err := proc.Malloc(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !m.HeapRegion().Contains(b) {
		t.Errorf("large malloc %#x escaped the heap pool", uint64(b))
	}
	if st := proc.MallocState().Stats(); st.DirectMmaps != 0 || st.ArenaSpawns != 0 {
		t.Errorf("raw paths used: %+v", st)
	}
}

func TestContentionStaysInPool(t *testing.T) {
	proc, m := attachTest(t)
	proc.MallocState().SetContention(2)
	for i := 0; i < 50; i++ {
		a, err := proc.Malloc(512)
		if err != nil {
			t.Fatal(err)
		}
		if !m.HeapRegion().Contains(a) {
			t.Fatalf("allocation %d at %#x escaped the heap pool", i, uint64(a))
		}
	}
	if st := proc.MallocState().Stats(); st.ArenaSpawns != 0 {
		t.Errorf("arenas spawned despite M_ARENA_MAX=1: %+v", st)
	}
}

func TestAnonMmapUsesMosaic(t *testing.T) {
	proc, m := attachTest(t)
	// First allocation lands at the pool base, which testConfig backs
	// with 2MB pages.
	a, err := proc.Mmap(4<<20, libc.MapFlags{Kind: libc.MapAnonymous})
	if err != nil {
		t.Fatal(err)
	}
	if a != m.AnonRegion().Start {
		t.Errorf("first anon map at %#x, want pool base %#x", uint64(a), uint64(m.AnonRegion().Start))
	}
	if size, _ := m.PageSizeAt(a); size != mem.Page2M {
		t.Errorf("anon map backed by %s, want 2MB", size)
	}
	// An allocation past the 2MB window is 4KB-backed.
	b, err := proc.Mmap(14<<20, libc.MapFlags{Kind: libc.MapAnonymous})
	if err != nil {
		t.Fatal(err)
	}
	if size, _ := m.PageSizeAt(b + mem.Addr(13<<20)); size != mem.Page4K {
		t.Errorf("tail of second map backed by %v, want 4KB", size)
	}
}

func TestFileMmapAlways4K(t *testing.T) {
	proc, m := attachTest(t)
	a, err := proc.Mmap(1<<20, libc.MapFlags{Kind: libc.MapFileBacked})
	if err != nil {
		t.Fatal(err)
	}
	if !m.FileRegion().Contains(a) {
		t.Errorf("file map %#x outside file pool", uint64(a))
	}
	if size, _ := m.PageSizeAt(a); size != mem.Page4K {
		t.Errorf("file map backed by %s, want 4KB", size)
	}
}

func TestFirstFitReuse(t *testing.T) {
	proc, _ := attachTest(t)
	a, err := proc.Mmap(1<<20, libc.MapFlags{Kind: libc.MapAnonymous})
	if err != nil {
		t.Fatal(err)
	}
	b, err := proc.Mmap(1<<20, libc.MapFlags{Kind: libc.MapAnonymous})
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Munmap(a, 1<<20); err != nil {
		t.Fatal(err)
	}
	c, err := proc.Mmap(1<<20, libc.MapFlags{Kind: libc.MapAnonymous})
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Errorf("first fit should reuse freed range: got %#x, want %#x", uint64(c), uint64(a))
	}
	_ = b
}

func TestHeapPoolExhaustion(t *testing.T) {
	proc, _ := attachTest(t)
	// The heap pool holds 32MB; allocating far beyond must fail cleanly.
	var err error
	for i := 0; i < 64; i++ {
		if _, err = proc.Malloc(1 << 20); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err = %v, want ErrPoolExhausted", err)
	}
}

func TestAnonPoolExhaustion(t *testing.T) {
	proc, _ := attachTest(t)
	_, err := proc.Mmap(33<<20, libc.MapFlags{Kind: libc.MapAnonymous})
	if !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err = %v, want ErrPoolExhausted", err)
	}
}

func TestMunmapErrors(t *testing.T) {
	proc, m := attachTest(t)
	// Unmapping a never-mapped pool address fails.
	if err := proc.Munmap(m.AnonRegion().Start, 4096); err == nil {
		t.Error("munmap of unallocated pool range should fail")
	}
	// Munmap inside the heap pool is invalid.
	if err := proc.Munmap(m.HeapRegion().Start, 4096); err == nil {
		t.Error("munmap inside heap pool should fail")
	}
	// Wrong length fails.
	a, _ := proc.Mmap(8192, libc.MapFlags{Kind: libc.MapAnonymous})
	if err := proc.Munmap(a, 4096); err == nil {
		t.Error("munmap with wrong length should fail")
	}
}

func TestMunmapOutsidePoolsForwards(t *testing.T) {
	proc, err := libc.NewProcess(1 << 36)
	if err != nil {
		t.Fatal(err)
	}
	// Map before attach, unmap after: the request must reach the kernel.
	pre, err := proc.Mmap(4096, libc.MapFlags{Kind: libc.MapAnonymous})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Attach(proc, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Munmap(pre, 4096); err != nil {
		t.Fatal(err)
	}
	if m.Stats().ForwardedOps != 1 {
		t.Errorf("ForwardedOps = %d, want 1", m.Stats().ForwardedOps)
	}
}

func TestSbrkDirect(t *testing.T) {
	proc, m := attachTest(t)
	base, err := proc.Sbrk(0)
	if err != nil {
		t.Fatal(err)
	}
	if base != m.HeapRegion().Start {
		t.Errorf("sbrk(0) = %#x, want heap pool base %#x", uint64(base), uint64(m.HeapRegion().Start))
	}
	if _, err := proc.Sbrk(1 << 20); err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Sbrk(-(2 << 20)); err == nil {
		t.Error("shrinking below pool base should fail")
	}
}

func TestDetachRestores(t *testing.T) {
	proc, m := attachTest(t)
	m.Detach()
	m.Detach() // idempotent
	// New large malloc goes back to the kernel's direct-mmap path.
	a, err := proc.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if m.HeapRegion().Contains(a) || m.AnonRegion().Contains(a) {
		t.Errorf("post-detach malloc %#x still in a pool", uint64(a))
	}
	if st := proc.MallocState().Stats(); st.DirectMmaps != 1 {
		t.Errorf("DirectMmaps = %d, want 1 after detach", st.DirectMmaps)
	}
}

func TestUsageAndFragmentation(t *testing.T) {
	proc, m := attachTest(t)
	a, _ := proc.Mmap(2<<20, libc.MapFlags{Kind: libc.MapAnonymous})
	b, _ := proc.Mmap(2<<20, libc.MapFlags{Kind: libc.MapAnonymous})
	_ = b
	if err := proc.Munmap(a, 2<<20); err != nil {
		t.Fatal(err)
	}
	var anon PoolUsage
	for _, u := range m.Usage() {
		if u.Name == "anon" {
			anon = u
		}
	}
	if anon.Capacity != 32<<20 {
		t.Errorf("anon capacity = %d", anon.Capacity)
	}
	if anon.Used != 2<<20 {
		t.Errorf("anon used = %d, want %d", anon.Used, 2<<20)
	}
	if anon.HighWater != 4<<20 {
		t.Errorf("anon high water = %d, want %d", anon.HighWater, 4<<20)
	}
	if anon.Fragmentation != 2<<20 {
		t.Errorf("anon fragmentation = %d, want %d", anon.Fragmentation, 2<<20)
	}
}

func TestStatsCounters(t *testing.T) {
	proc, m := attachTest(t)
	_, _ = proc.Malloc(100)
	_, _ = proc.Mmap(4096, libc.MapFlags{Kind: libc.MapAnonymous})
	_, _ = proc.Mmap(4096, libc.MapFlags{Kind: libc.MapFileBacked})
	st := m.Stats()
	if st.SbrkCalls == 0 || st.AnonMaps != 1 || st.FileMaps != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// Property: any interleaving of anon mmap/munmap keeps live blocks disjoint,
// inside the pool, and always 4KB-aligned.
func TestAnonPoolProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		proc, err := libc.NewProcess(1 << 38)
		if err != nil {
			return false
		}
		m, err := Attach(proc, testConfig())
		if err != nil {
			return false
		}
		live := make(map[mem.Addr]uint64)
		for i := 0; i < 150; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				for a, l := range live {
					if err := proc.Munmap(a, l); err != nil {
						return false
					}
					delete(live, a)
					break
				}
				continue
			}
			length := uint64(rng.Intn(1<<20) + 1)
			a, err := proc.Mmap(length, libc.MapFlags{Kind: libc.MapAnonymous})
			if err != nil {
				if errors.Is(err, ErrPoolExhausted) {
					continue
				}
				return false
			}
			rounded := uint64(mem.AlignUp(mem.Addr(length), mem.Page4K))
			if !mem.IsAligned(a, mem.Page4K) || !m.AnonRegion().ContainsRegion(mem.NewRegion(a, rounded)) {
				return false
			}
			for b, bl := range live {
				rb := uint64(mem.AlignUp(mem.Addr(bl), mem.Page4K))
				if a < b+mem.Addr(rb) && b < a+mem.Addr(rounded) {
					return false
				}
			}
			live[a] = length
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
