package mosalloc

import (
	"fmt"
	"sort"

	"mosaic/internal/mem"
)

// Policy selects the free-space search strategy of the mmap pools. The
// paper chose first fit for its runtime/utilization balance (§V) and left
// "better, more efficient memory management algorithms" as future work;
// the alternatives are provided for exactly that exploration.
type Policy int

// Allocation policies.
const (
	// FirstFit takes the lowest-addressed gap that fits (the paper's
	// choice).
	FirstFit Policy = iota
	// BestFit takes the smallest gap that fits, minimizing leftover
	// fragments at the cost of a full scan.
	BestFit
	// NextFit resumes scanning from the previous allocation, trading
	// utilization for constant-ish scan cost.
	NextFit
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case NextFit:
		return "next-fit"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// poolBlock is one live allocation inside an mmap-style pool.
type poolBlock struct {
	region mem.Region
}

// pool tracks one of Mosalloc's three memory pools: a pre-mapped contiguous
// virtual range whose page-size mosaic is fixed at attach time. The heap
// pool uses the brk cursor; the mmap pools use first-fit over live blocks.
type pool struct {
	name   string
	base   mem.Addr
	size   uint64
	cfg    PoolConfig
	policy Policy
	// nextCursor is NextFit's resume point (an absolute address).
	nextCursor mem.Addr

	// brk is the heap-pool program break (unused by mmap pools).
	brk mem.Addr
	// blocks are live mmap allocations, sorted by start address.
	blocks []poolBlock
	// highWater is the highest offset ever used, for utilization stats.
	highWater uint64
}

func newPool(name string, base mem.Addr, cfg PoolConfig) *pool {
	return &pool{name: name, base: base, size: cfg.Size(), cfg: cfg, brk: base}
}

func (p *pool) region() mem.Region { return mem.NewRegion(p.base, p.size) }

func (p *pool) contains(a mem.Addr) bool { return p.region().Contains(a) }

// sbrk moves the heap-pool break, mirroring the kernel's brk semantics but
// bounded by the pool capacity. Pages are pre-mapped, so no mapping happens.
func (p *pool) sbrk(incr int64) (mem.Addr, error) {
	old := p.brk
	if incr == 0 {
		return old, nil
	}
	next := mem.Addr(int64(p.brk) + incr)
	if next < p.base {
		return 0, fmt.Errorf("mosalloc: %s pool break below base", p.name)
	}
	if uint64(next-p.base) > p.size {
		return 0, fmt.Errorf("%w: %s pool needs %d bytes, capacity %d",
			ErrPoolExhausted, p.name, uint64(next-p.base), p.size)
	}
	p.brk = next
	p.noteHighWater(uint64(next - p.base))
	return old, nil
}

// alloc finds a gap of the given length (rounded up to 4KB) among the live
// blocks according to the pool's policy — first fit by default, per the
// paper's choice for the anonymous pool (§V). It returns the block's base
// address.
func (p *pool) alloc(length uint64) (mem.Addr, error) {
	length = uint64(mem.AlignUp(mem.Addr(length), mem.Page4K))
	if length == 0 {
		return 0, fmt.Errorf("mosalloc: zero-length allocation in %s pool", p.name)
	}
	type gap struct {
		idx  int // insertion index into p.blocks
		base mem.Addr
		len  uint64
	}
	var gaps []gap
	cursor := p.base
	for i, b := range p.blocks {
		if g := uint64(b.region.Start - cursor); g >= length {
			gaps = append(gaps, gap{idx: i, base: cursor, len: g})
		}
		cursor = b.region.End
	}
	if g := uint64(p.base + mem.Addr(p.size) - cursor); g >= length {
		gaps = append(gaps, gap{idx: len(p.blocks), base: cursor, len: g})
	}
	if len(gaps) == 0 {
		return 0, fmt.Errorf("%w: %s pool cannot fit %d bytes", ErrPoolExhausted, p.name, length)
	}
	chosen := gaps[0]
	switch p.policy {
	case BestFit:
		for _, g := range gaps[1:] {
			if g.len < chosen.len {
				chosen = g
			}
		}
	case NextFit:
		for _, g := range gaps {
			if g.base+mem.Addr(g.len) > p.nextCursor {
				// First gap at or past the resume point; allocate at the
				// cursor if it falls inside this gap.
				if p.nextCursor > g.base && uint64(g.base+mem.Addr(g.len)-p.nextCursor) >= length {
					chosen = gap{idx: g.idx, base: p.nextCursor, len: g.len}
				} else {
					chosen = g
				}
				break
			}
		}
	}
	addr := p.insertAt(chosen.idx, chosen.base, length)
	p.nextCursor = addr + mem.Addr(length)
	return addr, nil
}

func (p *pool) insertAt(i int, base mem.Addr, length uint64) mem.Addr {
	blk := poolBlock{region: mem.NewRegion(base, length)}
	p.blocks = append(p.blocks, poolBlock{})
	copy(p.blocks[i+1:], p.blocks[i:])
	p.blocks[i] = blk
	p.noteHighWater(uint64(blk.region.End - p.base))
	return base
}

// free releases the block starting at addr. The pool's pages stay mapped —
// Mosalloc reserves its pools up front — but the range becomes reusable by
// later first-fit allocations.
func (p *pool) free(addr mem.Addr, length uint64) error {
	length = uint64(mem.AlignUp(mem.Addr(length), mem.Page4K))
	i := sort.Search(len(p.blocks), func(i int) bool { return p.blocks[i].region.Start >= addr })
	if i >= len(p.blocks) || p.blocks[i].region.Start != addr {
		return fmt.Errorf("mosalloc: %s pool: no block at %#x", p.name, uint64(addr))
	}
	if p.blocks[i].region.Len() != length {
		return fmt.Errorf("mosalloc: %s pool: block at %#x is %d bytes, munmap of %d",
			p.name, uint64(addr), p.blocks[i].region.Len(), length)
	}
	p.blocks = append(p.blocks[:i], p.blocks[i+1:]...)
	return nil
}

func (p *pool) noteHighWater(off uint64) {
	if off > p.highWater {
		p.highWater = off
	}
}

// used returns the number of bytes currently allocated from the pool.
func (p *pool) used() uint64 {
	if p.name == "heap" {
		return uint64(p.brk - p.base)
	}
	var n uint64
	for _, b := range p.blocks {
		n += b.region.Len()
	}
	return n
}

// fragmentation returns bytes below the high-water mark not currently in
// use — the cost of the simple top-only reclamation policy the paper
// measures at <1% for its workloads.
func (p *pool) fragmentation() uint64 {
	u := p.used()
	if p.highWater < u {
		return 0
	}
	return p.highWater - u
}
