// Package mosalloc implements the Mosaic Memory Allocator from the paper's
// Section V: a user-space allocator that backs an application's address
// space with an arbitrary, user-specified combination of 4KB, 2MB, and 1GB
// pages — a "mosaic" of pages over one contiguous virtual range per pool.
//
// Mosalloc manages three pools that cover the three classes of Linux memory
// requests (Figure 4 of the paper):
//
//   - the heap pool serves brk/sbrk and glibc morecore calls;
//   - the anonymous pool serves MAP_ANONYMOUS mmap calls (first-fit);
//   - the file pool serves file-backed mmap calls and is always 4KB-backed,
//     because Linux's page cache only manages 4KB pages.
//
// Attach interposes Mosalloc on a modelled process the way LD_PRELOAD does
// on a real one, and neutralizes glibc's unhookable internal mmap paths via
// mallopt (M_MMAP_MAX=0, M_ARENA_MAX=1), fixing the libhugetlbfs bug the
// paper describes in §V-C.
package mosalloc

import (
	"errors"
	"fmt"
	"strings"

	"mosaic/internal/mem"
)

// Interval is one run of same-size pages inside a pool mosaic.
type Interval struct {
	// Size is the backing page size of this interval.
	Size mem.PageSize
	// Length is the interval's extent in bytes; it must be a multiple of
	// Size, and the interval's start offset within the pool must be
	// Size-aligned too.
	Length uint64
}

// PoolConfig is an ordered list of intervals that tile a pool from offset 0
// upward: a complete description of the pool's page mosaic.
type PoolConfig struct {
	Intervals []Interval
}

// Errors returned by configuration validation.
var (
	ErrEmptyPool     = errors.New("mosalloc: pool has no intervals")
	ErrBadInterval   = errors.New("mosalloc: invalid interval")
	ErrPoolExhausted = errors.New("mosalloc: pool exhausted")
)

// Uniform builds a pool of a single page size covering at least `bytes`
// (rounded up to the page size).
func Uniform(size mem.PageSize, bytes uint64) PoolConfig {
	length := uint64(mem.AlignUp(mem.Addr(bytes), size))
	return PoolConfig{Intervals: []Interval{{Size: size, Length: length}}}
}

// Window builds a pool of `bytes` total where [start, end) is backed with
// `inner` pages and the rest with 4KB pages — the shape the paper's layout
// heuristics generate. start and end are rounded outward to inner-page
// alignment and clamped to the pool; the total is rounded up to 4KB.
func Window(bytes uint64, start, end uint64, inner mem.PageSize) PoolConfig {
	total := uint64(mem.AlignUp(mem.Addr(bytes), inner))
	s := uint64(mem.AlignDown(mem.Addr(min(start, total)), inner))
	e := uint64(mem.AlignUp(mem.Addr(min(end, total)), inner))
	if e <= s {
		return PoolConfig{Intervals: []Interval{{Size: mem.Page4K, Length: total}}}
	}
	var iv []Interval
	if s > 0 {
		iv = append(iv, Interval{Size: mem.Page4K, Length: s})
	}
	iv = append(iv, Interval{Size: inner, Length: e - s})
	if e < total {
		iv = append(iv, Interval{Size: mem.Page4K, Length: total - e})
	}
	return PoolConfig{Intervals: iv}
}

// Validate checks interval alignment and coverage.
func (c PoolConfig) Validate() error {
	if len(c.Intervals) == 0 {
		return ErrEmptyPool
	}
	var offset uint64
	for i, iv := range c.Intervals {
		if !iv.Size.Valid() {
			return fmt.Errorf("%w %d: page size %d", ErrBadInterval, i, uint64(iv.Size))
		}
		if iv.Length == 0 || iv.Length%uint64(iv.Size) != 0 {
			return fmt.Errorf("%w %d: length %d not a positive multiple of %s",
				ErrBadInterval, i, iv.Length, iv.Size)
		}
		if offset%uint64(iv.Size) != 0 {
			return fmt.Errorf("%w %d: start offset %#x not aligned to %s",
				ErrBadInterval, i, offset, iv.Size)
		}
		offset += iv.Length
	}
	return nil
}

// Size returns the pool's total capacity in bytes.
func (c PoolConfig) Size() uint64 {
	var n uint64
	for _, iv := range c.Intervals {
		n += iv.Length
	}
	return n
}

// BytesBySize returns the number of bytes backed by each page size.
func (c PoolConfig) BytesBySize() map[mem.PageSize]uint64 {
	out := make(map[mem.PageSize]uint64, 3)
	for _, iv := range c.Intervals {
		out[iv.Size] += iv.Length
	}
	return out
}

// PageSizeAt returns the page size backing the given pool offset.
func (c PoolConfig) PageSizeAt(offset uint64) (mem.PageSize, bool) {
	var cursor uint64
	for _, iv := range c.Intervals {
		if offset < cursor+iv.Length {
			return iv.Size, true
		}
		cursor += iv.Length
	}
	return 0, false
}

// String renders the mosaic in the compact textual form ParseLayout accepts.
func (c PoolConfig) String() string {
	parts := make([]string, len(c.Intervals))
	for i, iv := range c.Intervals {
		parts[i] = fmt.Sprintf("%s:%s", iv.Size, formatBytes(iv.Length))
	}
	return strings.Join(parts, ",")
}

// ParseLayout parses the textual mosaic format: comma-separated
// "PAGESIZE:LENGTH" intervals, e.g. "4KB:8MB,2MB:16MB,4KB:8MB".
// Page sizes are 4KB, 2MB, or 1GB; lengths accept the suffixes KB, MB, GB.
func ParseLayout(s string) (PoolConfig, error) {
	var cfg PoolConfig
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		size, rest, ok := strings.Cut(part, ":")
		if !ok {
			return PoolConfig{}, fmt.Errorf("mosalloc: interval %q is not SIZE:LENGTH", part)
		}
		ps, err := parsePageSize(strings.TrimSpace(size))
		if err != nil {
			return PoolConfig{}, err
		}
		length, err := parseBytes(strings.TrimSpace(rest))
		if err != nil {
			return PoolConfig{}, fmt.Errorf("mosalloc: interval %q: %v", part, err)
		}
		cfg.Intervals = append(cfg.Intervals, Interval{Size: ps, Length: length})
	}
	if err := cfg.Validate(); err != nil {
		return PoolConfig{}, err
	}
	return cfg, nil
}

func parsePageSize(s string) (mem.PageSize, error) {
	switch strings.ToUpper(s) {
	case "4KB", "4K":
		return mem.Page4K, nil
	case "2MB", "2M":
		return mem.Page2M, nil
	case "1GB", "1G":
		return mem.Page1G, nil
	}
	return 0, fmt.Errorf("mosalloc: unknown page size %q", s)
}

func parseBytes(s string) (uint64, error) {
	mult := uint64(1)
	upper := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(upper, "KB"):
		mult, upper = 1<<10, strings.TrimSuffix(upper, "KB")
	case strings.HasSuffix(upper, "MB"):
		mult, upper = 1<<20, strings.TrimSuffix(upper, "MB")
	case strings.HasSuffix(upper, "GB"):
		mult, upper = 1<<30, strings.TrimSuffix(upper, "GB")
	case strings.HasSuffix(upper, "B"):
		upper = strings.TrimSuffix(upper, "B")
	}
	var n uint64
	if upper == "" {
		return 0, fmt.Errorf("empty length")
	}
	for _, r := range upper {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("bad length %q", s)
		}
		n = n*10 + uint64(r-'0')
	}
	return n * mult, nil
}

func formatBytes(n uint64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

// Config describes a full Mosalloc setup: the heap and anonymous pool
// mosaics (the two pools the user controls) and the 4KB-only file pool
// capacity.
type Config struct {
	HeapPool PoolConfig
	AnonPool PoolConfig
	// FilePoolBytes is the file-backed pool capacity (always 4KB pages).
	FilePoolBytes uint64
	// AnonPolicy selects the anonymous pool's free-space search strategy
	// (FirstFit, the paper's choice, by default).
	AnonPolicy Policy
}

// Validate checks all pool configurations.
func (c Config) Validate() error {
	if err := c.HeapPool.Validate(); err != nil {
		return fmt.Errorf("heap pool: %w", err)
	}
	if err := c.AnonPool.Validate(); err != nil {
		return fmt.Errorf("anonymous pool: %w", err)
	}
	if c.FilePoolBytes%uint64(mem.Page4K) != 0 {
		return fmt.Errorf("file pool: %w: %d bytes not 4KB-aligned", ErrBadInterval, c.FilePoolBytes)
	}
	return nil
}

// ParseEnv builds a Config from the environment-variable convention the
// library documents: MOSALLOC_HEAP_LAYOUT and MOSALLOC_ANON_LAYOUT hold
// mosaic strings, MOSALLOC_FILE_SIZE holds the file pool capacity.
func ParseEnv(env map[string]string) (Config, error) {
	var cfg Config
	var err error
	heap, ok := env["MOSALLOC_HEAP_LAYOUT"]
	if !ok {
		return Config{}, errors.New("mosalloc: MOSALLOC_HEAP_LAYOUT not set")
	}
	if cfg.HeapPool, err = ParseLayout(heap); err != nil {
		return Config{}, fmt.Errorf("MOSALLOC_HEAP_LAYOUT: %w", err)
	}
	anon, ok := env["MOSALLOC_ANON_LAYOUT"]
	if !ok {
		return Config{}, errors.New("mosalloc: MOSALLOC_ANON_LAYOUT not set")
	}
	if cfg.AnonPool, err = ParseLayout(anon); err != nil {
		return Config{}, fmt.Errorf("MOSALLOC_ANON_LAYOUT: %w", err)
	}
	if s, ok := env["MOSALLOC_FILE_SIZE"]; ok {
		if cfg.FilePoolBytes, err = parseBytes(s); err != nil {
			return Config{}, fmt.Errorf("MOSALLOC_FILE_SIZE: %w", err)
		}
	} else {
		cfg.FilePoolBytes = 64 << 20
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
