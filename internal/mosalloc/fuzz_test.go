package mosalloc

import "testing"

// FuzzParseLayout checks the mosaic parser never panics and that anything
// it accepts round-trips through String back to an equivalent config.
func FuzzParseLayout(f *testing.F) {
	for _, seed := range []string{
		"4KB:8MB,2MB:16MB,4KB:8MB",
		"4K:4KB",
		"1G:1GB",
		"2m:2mb, 2M:2MB",
		"",
		"x",
		":::",
		"4KB:999999999999999999999999GB",
		"4KB:-1",
		"2MB:3MB",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		cfg, err := ParseLayout(s)
		if err != nil {
			return
		}
		// Accepted layouts must be valid and round-trip.
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ParseLayout(%q) accepted an invalid config: %v", s, err)
		}
		again, err := ParseLayout(cfg.String())
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", cfg.String(), err)
		}
		if again.Size() != cfg.Size() || len(again.Intervals) != len(cfg.Intervals) {
			t.Fatalf("round trip changed the config: %q vs %q", cfg.String(), again.String())
		}
	})
}

// FuzzParseEnv exercises the environment-variable entry point.
func FuzzParseEnv(f *testing.F) {
	f.Add("4KB:8MB", "2MB:2MB", "1MB")
	f.Add("", "", "")
	f.Add("junk", "2MB:2MB", "4KB")
	f.Fuzz(func(t *testing.T, heap, anon, file string) {
		env := map[string]string{
			"MOSALLOC_HEAP_LAYOUT": heap,
			"MOSALLOC_ANON_LAYOUT": anon,
			"MOSALLOC_FILE_SIZE":   file,
		}
		cfg, err := ParseEnv(env)
		if err != nil {
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ParseEnv accepted an invalid config: %v", err)
		}
	})
}
