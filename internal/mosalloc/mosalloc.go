package mosalloc

import (
	"fmt"

	"mosaic/internal/libc"
	"mosaic/internal/mem"
)

// Pool base addresses. Each base is 1GB-aligned so that interval offsets
// validated by PoolConfig.Validate are absolutely aligned as well, and each
// pool sits far from the kernel's own heap and mmap areas.
const (
	HeapPoolBase mem.Addr = 0x0000_2000_0000_0000
	AnonPoolBase mem.Addr = 0x0000_4000_0000_0000
	FilePoolBase mem.Addr = 0x0000_6000_0000_0000
)

// Stats counts the requests Mosalloc served, proving hook coverage.
type Stats struct {
	SbrkCalls    int
	AnonMaps     int
	FileMaps     int
	Unmaps       int
	ForwardedOps int // requests outside the pools, forwarded to the kernel
}

// Mosalloc is the mosaic memory allocator attached to one process. It
// implements libc.Backend so that every hookable memory request — morecore
// and direct brk/sbrk, anonymous mmap, file-backed mmap, munmap — is served
// from its pre-mapped pools.
type Mosalloc struct {
	proc  *libc.Process
	cfg   Config
	heap  *pool
	anon  *pool
	file  *pool
	stats Stats

	attached bool
}

// Attach reserves the configured pools in the process's address space,
// installs Mosalloc on the hookable call paths (the LD_PRELOAD step), and
// neutralizes glibc's unhookable internal mmap paths via mallopt, exactly
// as §V-C prescribes (M_MMAP_MAX=0, M_ARENA_MAX=1).
func Attach(proc *libc.Process, cfg Config) (*Mosalloc, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Mosalloc{proc: proc, cfg: cfg}
	m.heap = newPool("heap", HeapPoolBase, cfg.HeapPool)
	m.anon = newPool("anon", AnonPoolBase, cfg.AnonPool)
	m.anon.policy = cfg.AnonPolicy
	m.file = newPool("file", FilePoolBase, Uniform(mem.Page4K, cfg.FilePoolBytes))

	for _, p := range []*pool{m.heap, m.anon, m.file} {
		if err := m.reservePool(p); err != nil {
			return nil, fmt.Errorf("mosalloc: reserving %s pool: %w", p.name, err)
		}
	}

	mall := proc.MallocState()
	if err := mall.Mallopt(libc.MMmapMax, 0); err != nil {
		return nil, err
	}
	if err := mall.Mallopt(libc.MArenaMax, 1); err != nil {
		return nil, err
	}
	proc.SetHooks(m)
	m.attached = true
	return m, nil
}

// reservePool maps every interval of the pool's mosaic at its fixed offset.
func (m *Mosalloc) reservePool(p *pool) error {
	cursor := p.base
	for _, iv := range p.cfg.Intervals {
		if err := m.proc.Kernel().MmapFixed(cursor, iv.Length, iv.Size); err != nil {
			return err
		}
		cursor += mem.Addr(iv.Length)
	}
	return nil
}

// Detach removes the hooks and restores glibc's default tunables. The
// pools stay mapped: live allocations remain valid, as with a real
// LD_PRELOAD library that cannot be unloaded mid-run.
func (m *Mosalloc) Detach() {
	if !m.attached {
		return
	}
	m.proc.SetHooks(nil)
	mall := m.proc.MallocState()
	_ = mall.Mallopt(libc.MMmapMax, libc.DefaultMmapMax)
	_ = mall.Mallopt(libc.MArenaMax, libc.DefaultArenaMax)
	m.attached = false
}

// Sbrk implements libc.Backend: brk/sbrk and morecore requests are served
// from the heap pool. The first sbrk(0) probe returns the pool base, which
// re-homes glibc's heap onto the mosaic.
func (m *Mosalloc) Sbrk(incr int64) (mem.Addr, error) {
	m.stats.SbrkCalls++
	return m.heap.sbrk(incr)
}

// Mmap implements libc.Backend: anonymous requests go to the anonymous
// pool (first fit), file-backed requests to the 4KB file pool. Explicit
// MAP_HUGETLB flags are accepted but the pool mosaic decides the actual
// backing — that is the entire point of Mosalloc.
func (m *Mosalloc) Mmap(length uint64, flags libc.MapFlags) (mem.Addr, error) {
	if flags.Kind == MapKindFile {
		m.stats.FileMaps++
		return m.file.alloc(length)
	}
	m.stats.AnonMaps++
	return m.anon.alloc(length)
}

// MapKindFile aliases libc.MapFileBacked for readability inside Mmap.
const MapKindFile = libc.MapFileBacked

// Munmap implements libc.Backend. Ranges inside the anonymous or file pool
// are released for reuse (the backing pages stay mapped, per the paper's
// top-only reclamation design). Ranges outside the pools — mapped before
// Mosalloc attached — are forwarded to the kernel.
func (m *Mosalloc) Munmap(addr mem.Addr, length uint64) error {
	m.stats.Unmaps++
	switch {
	case m.anon.contains(addr):
		return m.anon.free(addr, length)
	case m.file.contains(addr):
		return m.file.free(addr, length)
	case m.heap.contains(addr):
		return fmt.Errorf("mosalloc: munmap inside heap pool at %#x", uint64(addr))
	default:
		m.stats.ForwardedOps++
		return m.proc.Kernel().Munmap(addr, length)
	}
}

// Stats returns a copy of the request counters.
func (m *Mosalloc) Stats() Stats { return m.stats }

// Config returns the attached configuration.
func (m *Mosalloc) Config() Config { return m.cfg }

// HeapRegion returns the heap pool's reserved virtual range.
func (m *Mosalloc) HeapRegion() mem.Region { return m.heap.region() }

// AnonRegion returns the anonymous pool's reserved virtual range.
func (m *Mosalloc) AnonRegion() mem.Region { return m.anon.region() }

// FileRegion returns the file pool's reserved virtual range.
func (m *Mosalloc) FileRegion() mem.Region { return m.file.region() }

// PageSizeAt reports the page size backing a pool address.
func (m *Mosalloc) PageSizeAt(a mem.Addr) (mem.PageSize, bool) {
	_, size, ok := m.proc.Space().Translate(a)
	return size, ok
}

// PoolUsage describes one pool's occupancy.
type PoolUsage struct {
	Name          string
	Capacity      uint64
	Used          uint64
	HighWater     uint64
	Fragmentation uint64
}

// Usage reports occupancy for all three pools, in heap/anon/file order.
func (m *Mosalloc) Usage() []PoolUsage {
	out := make([]PoolUsage, 0, 3)
	for _, p := range []*pool{m.heap, m.anon, m.file} {
		out = append(out, PoolUsage{
			Name:          p.name,
			Capacity:      p.size,
			Used:          p.used(),
			HighWater:     p.highWater,
			Fragmentation: p.fragmentation(),
		})
	}
	return out
}
