package mosalloc

import (
	"testing"
	"testing/quick"

	"mosaic/internal/mem"
)

func TestUniform(t *testing.T) {
	c := Uniform(mem.Page2M, 5<<20)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 6<<20 {
		t.Errorf("size = %d, want %d (rounded to 2MB)", c.Size(), 6<<20)
	}
	if len(c.Intervals) != 1 || c.Intervals[0].Size != mem.Page2M {
		t.Errorf("intervals = %+v", c.Intervals)
	}
}

func TestWindow(t *testing.T) {
	total := uint64(64 << 20)
	c := Window(total, 8<<20, 24<<20, mem.Page2M)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Size() != total {
		t.Errorf("size = %d, want %d", c.Size(), total)
	}
	by := c.BytesBySize()
	if by[mem.Page2M] != 16<<20 {
		t.Errorf("2MB bytes = %d, want %d", by[mem.Page2M], 16<<20)
	}
	if by[mem.Page4K] != 48<<20 {
		t.Errorf("4KB bytes = %d, want %d", by[mem.Page4K], 48<<20)
	}
	// Page size queries at characteristic offsets.
	if s, _ := c.PageSizeAt(0); s != mem.Page4K {
		t.Errorf("offset 0 backed by %s", s)
	}
	if s, _ := c.PageSizeAt(8 << 20); s != mem.Page2M {
		t.Errorf("window start backed by %s", s)
	}
	if s, _ := c.PageSizeAt(24<<20 - 1); s != mem.Page2M {
		t.Errorf("window end-1 backed by %s", s)
	}
	if s, _ := c.PageSizeAt(24 << 20); s != mem.Page4K {
		t.Errorf("past window backed by %s", s)
	}
	if _, ok := c.PageSizeAt(total); ok {
		t.Error("offset past pool should not resolve")
	}
}

func TestWindowDegenerate(t *testing.T) {
	// Empty window collapses to an all-4KB pool.
	c := Window(16<<20, 8<<20, 8<<20, mem.Page2M)
	if len(c.Intervals) != 1 || c.Intervals[0].Size != mem.Page4K {
		t.Errorf("empty window: %+v", c.Intervals)
	}
	// Full-pool window is all hugepages.
	c = Window(16<<20, 0, 16<<20, mem.Page2M)
	if len(c.Intervals) != 1 || c.Intervals[0].Size != mem.Page2M {
		t.Errorf("full window: %+v", c.Intervals)
	}
	// Window past the end is clamped.
	c = Window(16<<20, 12<<20, 99<<20, mem.Page2M)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 16<<20 {
		t.Errorf("clamped size = %d", c.Size())
	}
}

// Property: any Window invocation produces a valid config whose total
// matches the (inner-aligned) requested size.
func TestWindowProperty(t *testing.T) {
	prop := func(total32, s32, e32 uint32, pick uint8) bool {
		total := uint64(total32%256+1) << 20
		s := uint64(s32) % (total + 1<<20)
		e := uint64(e32) % (total + 1<<20)
		inner := mem.Page2M
		if pick%2 == 1 {
			inner = mem.Page1G
		}
		c := Window(total, s, e, inner)
		if err := c.Validate(); err != nil {
			return false
		}
		want := uint64(mem.AlignUp(mem.Addr(total), inner))
		// A degenerate window keeps the 4KB total un-rounded.
		return c.Size() == want || c.Size() == total
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []PoolConfig{
		{},
		{Intervals: []Interval{{Size: 0, Length: 4096}}},
		{Intervals: []Interval{{Size: mem.Page4K, Length: 0}}},
		{Intervals: []Interval{{Size: mem.Page4K, Length: 4095}}},
		{Intervals: []Interval{{Size: mem.Page2M, Length: 1 << 20}}},
		// Misaligned start: a 4KB run that ends off 2MB alignment, then 2MB.
		{Intervals: []Interval{
			{Size: mem.Page4K, Length: 4096},
			{Size: mem.Page2M, Length: 2 << 20},
		}},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail validation: %+v", i, c)
		}
	}
}

func TestParseLayoutRoundTrip(t *testing.T) {
	in := "4KB:8MB,2MB:16MB,4KB:8MB"
	c, err := ParseLayout(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.String(); got != in {
		t.Errorf("round trip = %q, want %q", got, in)
	}
	if c.Size() != 32<<20 {
		t.Errorf("size = %d", c.Size())
	}
}

func TestParseLayoutErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"4KB",
		"3KB:4MB",
		"4KB:abc",
		"4KB:-5",
		"2MB:1MB", // misaligned length
	} {
		if _, err := ParseLayout(s); err == nil {
			t.Errorf("ParseLayout(%q) should fail", s)
		}
	}
}

func TestParseLayoutSuffixes(t *testing.T) {
	c, err := ParseLayout("4K:524288KB, 2M:512MB ,1G:1GB")
	if err != nil {
		t.Fatal(err)
	}
	want := []Interval{
		{mem.Page4K, 512 << 20},
		{mem.Page2M, 512 << 20},
		{mem.Page1G, 1 << 30},
	}
	if len(c.Intervals) != len(want) {
		t.Fatalf("intervals = %+v", c.Intervals)
	}
	for i := range want {
		if c.Intervals[i] != want[i] {
			t.Errorf("interval %d = %+v, want %+v", i, c.Intervals[i], want[i])
		}
	}
}

func TestParseEnv(t *testing.T) {
	env := map[string]string{
		"MOSALLOC_HEAP_LAYOUT": "2MB:32MB",
		"MOSALLOC_ANON_LAYOUT": "4KB:16MB",
		"MOSALLOC_FILE_SIZE":   "8MB",
	}
	cfg, err := ParseEnv(env)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.HeapPool.Size() != 32<<20 || cfg.AnonPool.Size() != 16<<20 || cfg.FilePoolBytes != 8<<20 {
		t.Errorf("cfg = %+v", cfg)
	}
	delete(env, "MOSALLOC_FILE_SIZE")
	cfg, err = ParseEnv(env)
	if err != nil || cfg.FilePoolBytes == 0 {
		t.Errorf("default file size: cfg=%+v err=%v", cfg, err)
	}
	if _, err := ParseEnv(map[string]string{"MOSALLOC_ANON_LAYOUT": "4KB:16MB"}); err == nil {
		t.Error("missing heap layout should fail")
	}
	if _, err := ParseEnv(map[string]string{"MOSALLOC_HEAP_LAYOUT": "4KB:16MB"}); err == nil {
		t.Error("missing anon layout should fail")
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{
		HeapPool:      Uniform(mem.Page4K, 1<<20),
		AnonPool:      Uniform(mem.Page2M, 4<<20),
		FilePoolBytes: 1 << 20,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.FilePoolBytes = 1000
	if err := bad.Validate(); err == nil {
		t.Error("unaligned file pool should fail")
	}
	bad = good
	bad.HeapPool = PoolConfig{}
	if err := bad.Validate(); err == nil {
		t.Error("empty heap pool should fail")
	}
}
