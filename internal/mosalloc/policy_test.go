package mosalloc

import (
	"testing"

	"mosaic/internal/libc"
	"mosaic/internal/mem"
)

func attachWithPolicy(t *testing.T, pol Policy) *libc.Process {
	t.Helper()
	proc, err := libc.NewProcess(1 << 38)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.AnonPolicy = pol
	if _, err := Attach(proc, cfg); err != nil {
		t.Fatal(err)
	}
	return proc
}

// carve makes a fragmented pool: |1MB free|used|3MB free|used|rest free|.
func carve(t *testing.T, proc *libc.Process) (hold1, hold2 mem.Addr) {
	t.Helper()
	mmap := func(n uint64) mem.Addr {
		a, err := proc.Mmap(n, libc.MapFlags{Kind: libc.MapAnonymous})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	free := func(a mem.Addr, n uint64) {
		if err := proc.Munmap(a, n); err != nil {
			t.Fatal(err)
		}
	}
	a := mmap(1 << 20) // will become the 1MB gap
	b := mmap(64 << 10)
	c := mmap(3 << 20) // will become the 3MB gap
	d := mmap(64 << 10)
	free(a, 1<<20)
	free(c, 3<<20)
	return b, d
}

func TestPolicyString(t *testing.T) {
	if FirstFit.String() != "first-fit" || BestFit.String() != "best-fit" || NextFit.String() != "next-fit" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy formatting")
	}
}

func TestFirstFitTakesLowestGap(t *testing.T) {
	proc := attachWithPolicy(t, FirstFit)
	carve(t, proc)
	// A 512KB request fits the 1MB gap; first fit takes it.
	a, err := proc.Mmap(512<<10, libc.MapFlags{Kind: libc.MapAnonymous})
	if err != nil {
		t.Fatal(err)
	}
	if a != AnonPoolBase {
		t.Errorf("first fit allocated at %#x, want pool base", uint64(a))
	}
}

func TestBestFitTakesTightestGap(t *testing.T) {
	proc := attachWithPolicy(t, BestFit)
	carve(t, proc)
	// Gaps: 1MB, 3MB, huge tail. A 768KB request best-fits the 1MB gap.
	a, err := proc.Mmap(768<<10, libc.MapFlags{Kind: libc.MapAnonymous})
	if err != nil {
		t.Fatal(err)
	}
	if a != AnonPoolBase {
		t.Errorf("best fit allocated at %#x, want the 1MB gap at pool base", uint64(a))
	}
	// A 2MB request cannot use the 1MB gap; best fit picks the 3MB gap,
	// not the tail.
	b, err := proc.Mmap(2<<20, libc.MapFlags{Kind: libc.MapAnonymous})
	if err != nil {
		t.Fatal(err)
	}
	if b != AnonPoolBase+mem.Addr(1<<20)+mem.Addr(64<<10) {
		t.Errorf("best fit allocated at %#x, want the 3MB gap", uint64(b))
	}
}

func TestNextFitAdvances(t *testing.T) {
	proc := attachWithPolicy(t, NextFit)
	a, err := proc.Mmap(64<<10, libc.MapFlags{Kind: libc.MapAnonymous})
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Munmap(a, 64<<10); err != nil {
		t.Fatal(err)
	}
	// First fit would reuse the freed gap at the base; next fit has moved on.
	b, err := proc.Mmap(64<<10, libc.MapFlags{Kind: libc.MapAnonymous})
	if err != nil {
		t.Fatal(err)
	}
	if b == a {
		t.Errorf("next fit reused the just-freed gap at %#x", uint64(a))
	}
	if b < a {
		t.Errorf("next fit went backwards: %#x after %#x", uint64(b), uint64(a))
	}
}

// Best fit fragments less than first fit under a mixed-size churn: the
// exploration the paper leaves as future work.
func TestBestFitFragmentsLess(t *testing.T) {
	frag := func(pol Policy) uint64 {
		proc, err := libc.NewProcess(1 << 38)
		if err != nil {
			t.Fatal(err)
		}
		cfg := testConfig()
		cfg.AnonPolicy = pol
		m, err := Attach(proc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Churn: allocate mixed sizes, free the odd ones, allocate again.
		var addrs []mem.Addr
		var sizes []uint64
		for i := 0; i < 24; i++ {
			n := uint64(64<<10) << (i % 3) // 64K/128K/256K
			a, err := proc.Mmap(n, libc.MapFlags{Kind: libc.MapAnonymous})
			if err != nil {
				t.Fatal(err)
			}
			addrs = append(addrs, a)
			sizes = append(sizes, n)
		}
		for i := 0; i < len(addrs); i += 2 {
			if err := proc.Munmap(addrs[i], sizes[i]); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 12; i++ {
			n := uint64(48 << 10)
			if _, err := proc.Mmap(n, libc.MapFlags{Kind: libc.MapAnonymous}); err != nil {
				t.Fatal(err)
			}
		}
		for _, u := range m.Usage() {
			if u.Name == "anon" {
				return u.HighWater - u.Used
			}
		}
		return 0
	}
	ff, bf := frag(FirstFit), frag(BestFit)
	if bf > ff {
		t.Errorf("best fit fragmentation %d exceeds first fit %d", bf, ff)
	}
}
