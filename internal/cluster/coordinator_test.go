package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic lease tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func testCoordinator(clk *fakeClock, shardLayouts int) *Coordinator {
	return NewCoordinator(CoordinatorConfig{
		LeaseTTL:     10 * time.Second,
		MaxRetries:   3,
		ShardLayouts: shardLayouts,
		Clock:        clk.Now,
	})
}

// resultFor fabricates a deterministic shard result for a spec: counters
// are a function of the layout index, so merge-order mistakes surface as
// value mismatches.
func resultFor(spec ShardSpec) *ShardResult {
	res := &ShardResult{Key: spec.Key, Job: spec.Job, Lo: spec.Lo, Hi: spec.Hi}
	for i := spec.Lo; i < spec.Hi; i++ {
		lr := LayoutResult{Layout: fmt.Sprintf("L%03d", i)}
		for j, w := range counterWords(&lr.Result) {
			*w = uint64(100000*i + j)
		}
		res.Results = append(res.Results, lr)
	}
	return res
}

func TestSubmitShardsAndMergesInOrder(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(clk, 4)
	reg := c.Register("w1", 1)

	sweep, err := c.Submit(SweepSpec{Job: "j", Workload: "w", Platform: "p", Layouts: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ShardsPending(); got != 3 { // ceil(10/4)
		t.Fatalf("pending shards = %d, want 3", got)
	}

	// Drain the queue, completing shards in reverse lease order to prove
	// the merge sorts by shard key rather than completion order.
	var specs []ShardSpec
	for {
		spec, ok := c.Lease(reg.WorkerID)
		if !ok {
			break
		}
		specs = append(specs, spec)
	}
	if len(specs) != 3 {
		t.Fatalf("leased %d shards, want 3", len(specs))
	}
	for i := len(specs) - 1; i >= 0; i-- {
		if err := c.Complete(reg.WorkerID, resultFor(specs[i])); err != nil {
			t.Fatal(err)
		}
	}

	merged, err := sweep.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 10 {
		t.Fatalf("merged %d layouts, want 10", len(merged))
	}
	for i, lr := range merged {
		if want := fmt.Sprintf("L%03d", i); lr.Layout != want {
			t.Fatalf("merged[%d].Layout = %q, want %q", i, lr.Layout, want)
		}
		words := counterWords(&merged[i].Result)
		if *words[0] != uint64(100000*i) {
			t.Fatalf("merged[%d] counters out of order: R = %d", i, *words[0])
		}
	}
	if merges, _ := c.MergeStats(); merges != 1 {
		t.Fatalf("merges = %d, want 1", merges)
	}
}

func TestLeaseExpiryRequeuesShard(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(clk, 100)
	dead := c.Register("dead", 1)
	live := c.Register("live", 1)

	sweep, err := c.Submit(SweepSpec{Job: "j", Layouts: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := c.Lease(dead.WorkerID)
	if !ok {
		t.Fatal("no shard leased")
	}
	// The dead worker goes silent; the live worker keeps heartbeating.
	clk.Advance(6 * time.Second)
	c.Heartbeat(live.WorkerID, "", 0)
	if _, ok := c.Lease(live.WorkerID); ok {
		t.Fatal("shard re-leased before the TTL expired")
	}
	clk.Advance(6 * time.Second) // 12s total > 10s TTL
	spec2, ok := c.Lease(live.WorkerID)
	if !ok {
		t.Fatal("expired shard was not requeued")
	}
	if spec2.Key != spec.Key {
		t.Fatalf("requeued shard %q, want %q", spec2.Key, spec.Key)
	}
	if got := c.ShardsRetried(); got != 1 {
		t.Fatalf("ShardsRetried = %d, want 1", got)
	}

	// The original worker completing late is a harmless duplicate after
	// the live worker finishes.
	if err := c.Complete(live.WorkerID, resultFor(spec2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(dead.WorkerID, resultFor(spec)); err != nil {
		t.Fatalf("late duplicate completion errored: %v", err)
	}
	if merged, err := sweep.Wait(context.Background()); err != nil || len(merged) != 5 {
		t.Fatalf("Wait = (%d results, %v), want 5, nil", len(merged), err)
	}
}

func TestRetryBudgetFailsJob(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(clk, 100)
	reg := c.Register("flaky", 1)

	sweep, err := c.Submit(SweepSpec{Job: "j", Layouts: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ { // MaxRetries=3: the 4th requeue kills the job
		spec, ok := c.Lease(reg.WorkerID)
		if !ok {
			t.Fatalf("round %d: nothing to lease", i)
		}
		c.Fail(reg.WorkerID, spec.Key, "simulated crash")
	}
	_, err = sweep.Wait(context.Background())
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("Wait error = %v, want retry-budget failure", err)
	}
	if got := c.ShardsPending() + c.ShardsLeased(); got != 0 {
		t.Fatalf("failed job left %d shards behind", got)
	}
}

// TestMultiShardExpiryAfterBudgetExhausted regresses a panic-deadlock:
// when a multi-shard job's leases expire together and the first requeue
// (in sorted key order) exhausts the retry budget, finishLocked deletes
// ALL of the job's shards mid-loop — the remaining expired keys must be
// skipped, not dereferenced, and the coordinator must stay responsive.
func TestMultiShardExpiryAfterBudgetExhausted(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(clk, 2)
	reg := c.Register("crashy", 2)

	sweep, err := c.Submit(SweepSpec{Job: "j", Layouts: 4}, nil) // 2 shards
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ { // MaxRetries=3: round 4 kills the job
		if _, ok := c.Lease(reg.WorkerID); !ok {
			t.Fatalf("round %d: first shard not leasable", round)
		}
		if _, ok := c.Lease(reg.WorkerID); !ok {
			t.Fatalf("round %d: second shard not leasable", round)
		}
		clk.Advance(11 * time.Second) // both leases past the 10s TTL
		// Any mutating call runs expireLocked; this is where the old code
		// panicked on the second expired key with c.mu held.
		c.Heartbeat(reg.WorkerID, "", 0)
	}
	_, err = sweep.Wait(context.Background())
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("Wait error = %v, want retry-budget failure", err)
	}
	if got := c.ShardsPending() + c.ShardsLeased(); got != 0 {
		t.Fatalf("failed job left %d shards behind", got)
	}
	// The mutex must not be stranded: a panic under c.mu would hang here.
	c.Heartbeat(reg.WorkerID, "", 0)
}

// TestCompleteRejectsJobMismatch holds the job-identity check: a result
// whose Job field names a different job than the shard spec must be
// rejected, never decrement another job's remaining count.
func TestCompleteRejectsJobMismatch(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(clk, 100)
	reg := c.Register("w", 1)

	sweep, err := c.Submit(SweepSpec{Job: "j", Layouts: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := c.Lease(reg.WorkerID)
	if !ok {
		t.Fatal("no shard leased")
	}
	forged := resultFor(spec)
	forged.Job = "someone-else-000042"
	if err := c.Complete(reg.WorkerID, forged); err == nil || !strings.Contains(err.Error(), "claims job") {
		t.Fatalf("Complete with forged job = %v, want job-mismatch rejection", err)
	}
	// The shard is still leased and an honest completion still lands.
	if got := c.ShardsLeased(); got != 1 {
		t.Fatalf("ShardsLeased after rejection = %d, want 1", got)
	}
	if err := c.Complete(reg.WorkerID, resultFor(spec)); err != nil {
		t.Fatal(err)
	}
	if merged, err := sweep.Wait(context.Background()); err != nil || len(merged) != 3 {
		t.Fatalf("Wait = (%d results, %v), want 3, nil", len(merged), err)
	}
}

func TestHeartbeatAbandonsCanceledShard(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(clk, 100)
	reg := c.Register("w", 1)
	sweep, err := c.Submit(SweepSpec{Job: "j", Layouts: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := c.Lease(reg.WorkerID)
	if !ok {
		t.Fatal("no shard leased")
	}
	sweep.Cancel()
	if reply := c.Heartbeat(reg.WorkerID, spec.Key, 1); !reply.Abandon {
		t.Fatal("heartbeat on a canceled job did not signal abandon")
	}
	if _, err := sweep.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait after cancel = %v, want context.Canceled", err)
	}
}

func TestWaitHonorsContext(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(clk, 100)
	sweep, err := c.Submit(SweepSpec{Job: "j", Layouts: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sweep.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
}

func TestProgressAggregatesAcrossShards(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(clk, 3)
	reg := c.Register("w", 2)

	var mu sync.Mutex
	var last [2]int
	sweep, err := c.Submit(SweepSpec{Job: "j", Layouts: 6}, func(done, total int) {
		mu.Lock()
		last = [2]int{done, total}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.Lease(reg.WorkerID)
	b, _ := c.Lease(reg.WorkerID)
	c.Heartbeat(reg.WorkerID, a.Key, 2)
	c.Heartbeat(reg.WorkerID, b.Key, 1)
	mu.Lock()
	got := last
	mu.Unlock()
	if got != [2]int{3, 6} {
		t.Fatalf("progress after heartbeats = %v, want {3 6}", got)
	}
	if err := c.Complete(reg.WorkerID, resultFor(a)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got = last
	mu.Unlock()
	if got != [2]int{4, 6} { // shard a fully done (3) + shard b progress (1)
		t.Fatalf("progress after completion = %v, want {4 6}", got)
	}
	if err := c.Complete(reg.WorkerID, resultFor(b)); err != nil {
		t.Fatal(err)
	}
	if _, err := sweep.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerPruning(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(clk, 100)
	c.Register("w1", 1)
	if got := c.LiveWorkers(); got != 1 {
		t.Fatalf("LiveWorkers = %d, want 1", got)
	}
	clk.Advance(21 * time.Second) // > 2×TTL: no longer live
	if got := c.LiveWorkers(); got != 0 {
		t.Fatalf("LiveWorkers after silence = %d, want 0", got)
	}
	// Auto shard sizing with no live capacity still shards sanely.
	sweep, err := c.Submit(SweepSpec{Job: "j", Layouts: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sweep.Cancel()
}

func TestAutoShardSizing(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(clk, 0) // automatic spans
	c.Register("w1", 1)
	c.Register("w2", 1)
	sweep, err := c.Submit(SweepSpec{Job: "j", Layouts: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sweep.Cancel()
	// 2 workers × capacity 1 × factor 2 = 4 slots → span ceil(10/4)=3 →
	// 4 shards keep both workers busy with a queue behind them.
	if got := c.ShardsPending(); got != 4 {
		t.Fatalf("auto-sized shards = %d, want 4", got)
	}
}
