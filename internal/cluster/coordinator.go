package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"mosaic/internal/sim"
)

// Coordinator owns the fleet: registered workers, the shard queue, and the
// per-sweep merge state. One coordinator instance lives inside the serving
// daemon; workers talk to it over the /cluster HTTP surface (http.go), and
// the serving layer's job executor submits sweeps and waits on their
// handles.
//
// Every mutating entry point first expires stale leases, so worker death
// is detected lazily — on the next lease, heartbeat, or completion from
// any live worker — without a background janitor goroutine. Determinism
// makes the retry policy simple: a shard may run twice (its original
// worker may finish after its lease expired), and whichever complete
// lands first wins, because both carry identical bytes.
type Coordinator struct {
	cfg CoordinatorConfig

	mu      sync.Mutex
	workers map[string]*workerState
	jobs    map[string]*sweepJob
	shards  map[string]*shard // shard key → shard, across all live jobs
	queue   []string          // pending shard keys, FIFO
	seq     uint64            // job and worker id sequencing

	retried   uint64 // shards requeued after lease expiry or failure
	merges    uint64
	mergeNano int64
}

// CoordinatorConfig tunes the fleet protocol.
type CoordinatorConfig struct {
	// LeaseTTL is how long a leased shard may go without a heartbeat
	// before it returns to the queue (default 15s).
	LeaseTTL time.Duration
	// MaxRetries bounds how many times one shard may be requeued before
	// its job fails (default 3).
	MaxRetries int
	// ShardLayouts is the layout-batch size per shard; 0 sizes shards
	// automatically from the fleet capacity at submit time.
	ShardLayouts int
	// Token, when non-empty, is the shared secret every /cluster/v1/*
	// request must present (Authorization: Bearer <token>). Workers are
	// trusted to fabricate counters once admitted, so an empty token is
	// only safe when the listener is network-isolated — see
	// docs/cluster.md.
	Token string
	// Clock overrides the wall clock (tests); nil uses time.Now.
	Clock func() time.Time
}

// workerState tracks one registered worker.
type workerState struct {
	id       string
	name     string
	capacity int
	lastSeen time.Time
}

// shardStatus is a shard's lifecycle phase.
type shardStatus int

const (
	shardPending shardStatus = iota
	shardLeased
	shardDone
)

// shard is one leased unit of a sweep.
type shard struct {
	spec    ShardSpec
	status  shardStatus
	worker  string
	expiry  time.Time
	retries int
	// doneLayouts is the live in-shard progress a worker heartbeats.
	doneLayouts int
	result      *ShardResult
}

// sweepJob tracks one submitted sweep until its merge completes.
type sweepJob struct {
	id     string
	spec   SweepSpec
	shards []*shard // in ascending layout order (== sorted shard-key order)

	remaining  int
	canceled   bool
	err        error
	results    []LayoutResult // merged, set before done closes
	done       chan struct{}
	onProgress func(done, total int)
}

// SweepSpec describes one sweep to decompose: the pair, its protocol name,
// the resolved sampling fidelity, and the total number of protocol layouts
// (including the 1GB validation point) the coordinator shards over.
type SweepSpec struct {
	// Job is a caller-chosen identity (the serving layer uses the job
	// spec's content hash); the coordinator suffixes it with a sequence
	// number so resubmissions never alias.
	Job      string
	Workload string
	Platform string
	Proto    string
	Sampling sim.Sampling
	// Layouts is the total protocol layout count to decompose.
	Layouts int
}

// NewCoordinator builds a coordinator.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	if cfg.Clock == nil {
		cfg.Clock = wallClock
	}
	return &Coordinator{
		cfg:     cfg,
		workers: make(map[string]*workerState),
		jobs:    make(map[string]*sweepJob),
		shards:  make(map[string]*shard),
	}
}

// wallClock is the default clock.
//
//mosvet:timing lease-expiry and liveness bookkeeping; never feeds counters
func wallClock() time.Time { return time.Now() }

// LeaseTTL reports the configured lease duration (workers derive their
// heartbeat interval from it).
func (c *Coordinator) LeaseTTL() time.Duration { return c.cfg.LeaseTTL }

// RegisterReply answers a worker registration.
type RegisterReply struct {
	WorkerID    string `json:"workerId"`
	LeaseTTLMs  int64  `json:"leaseTtlMs"`
	HeartbeatMs int64  `json:"heartbeatMs"`
}

// Register adds a worker to the fleet and returns its identity plus the
// protocol timings it must honor.
func (c *Coordinator) Register(name string, capacity int) RegisterReply {
	if capacity < 1 {
		capacity = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	c.seq++
	w := &workerState{
		id:       fmt.Sprintf("w-%06d", c.seq),
		name:     name,
		capacity: capacity,
		lastSeen: c.cfg.Clock(),
	}
	c.workers[w.id] = w
	return RegisterReply{
		WorkerID:    w.id,
		LeaseTTLMs:  c.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMs: (c.cfg.LeaseTTL / 3).Milliseconds(),
	}
}

// HeartbeatReply answers a worker heartbeat.
type HeartbeatReply struct {
	// Abandon tells the worker to stop executing the heartbeated shard:
	// its job was canceled, or its lease expired and moved elsewhere.
	Abandon bool `json:"abandon,omitempty"`
}

// Heartbeat marks a worker live, renews its lease on the given shard (if
// it still holds it), and records the shard's in-flight layout progress.
// An empty shard key is a pure liveness ping.
func (c *Coordinator) Heartbeat(workerID, shardKey string, doneLayouts int) HeartbeatReply {
	reply, notify := c.heartbeat(workerID, shardKey, doneLayouts)
	if notify != nil {
		notify() // after the lock drops, so callbacks can take their own locks
	}
	return reply
}

func (c *Coordinator) heartbeat(workerID, shardKey string, doneLayouts int) (reply HeartbeatReply, notify func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	now := c.cfg.Clock()
	if w, ok := c.workers[workerID]; ok {
		w.lastSeen = now
	}
	if shardKey != "" {
		sh, ok := c.shards[shardKey]
		switch {
		case !ok:
			reply.Abandon = true // job canceled or long gone
		case sh.status == shardLeased && sh.worker == workerID:
			sh.expiry = now.Add(c.cfg.LeaseTTL)
			if doneLayouts > sh.doneLayouts {
				sh.doneLayouts = doneLayouts
				notify = c.progressLocked(sh.spec.Job)
			}
		case sh.status == shardDone:
			// Completed by someone (possibly a retry); nothing to abandon —
			// the worker is about to complete and the duplicate is dropped.
		default:
			reply.Abandon = sh.worker != workerID
		}
	}
	return reply, notify
}

// Lease hands the next pending shard to a worker. ok is false when the
// queue is empty.
func (c *Coordinator) Lease(workerID string) (spec ShardSpec, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	now := c.cfg.Clock()
	if w, found := c.workers[workerID]; found {
		w.lastSeen = now
	}
	for len(c.queue) > 0 {
		key := c.queue[0]
		c.queue = c.queue[1:]
		sh, found := c.shards[key]
		if !found || sh.status != shardPending {
			continue // canceled job or re-leased already
		}
		sh.status = shardLeased
		sh.worker = workerID
		sh.expiry = now.Add(c.cfg.LeaseTTL)
		return sh.spec, true
	}
	return ShardSpec{}, false
}

// Complete records a finished shard. Duplicates (a retried shard's
// original worker finishing late) are dropped silently — determinism makes
// them byte-identical, so first-wins is safe. The final shard of a job
// triggers the merge.
func (c *Coordinator) Complete(workerID string, res *ShardResult) error {
	err, notify := c.complete(workerID, res)
	if notify != nil {
		notify() // after the lock drops, so callbacks can take their own locks
	}
	return err
}

func (c *Coordinator) complete(workerID string, res *ShardResult) (err error, notify func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	if w, ok := c.workers[workerID]; ok {
		w.lastSeen = c.cfg.Clock()
	}
	sh, ok := c.shards[res.Key]
	if !ok {
		return nil, nil // canceled job; drop
	}
	if sh.status == shardDone {
		return nil, nil // duplicate completion; first wins
	}
	if res.Job != sh.spec.Job {
		// A payload claiming another job's identity must not decrement that
		// job's remaining count against this shard's bytes.
		return fmt.Errorf("cluster: shard %s result claims job %s, want %s",
			res.Key, res.Job, sh.spec.Job), nil
	}
	if res.Lo != sh.spec.Lo || res.Hi != sh.spec.Hi || len(res.Results) != sh.spec.Hi-sh.spec.Lo {
		return fmt.Errorf("cluster: shard %s result spans [%d, %d) with %d entries, want [%d, %d)",
			res.Key, res.Lo, res.Hi, len(res.Results), sh.spec.Lo, sh.spec.Hi), nil
	}
	sh.status = shardDone
	sh.result = res
	sh.doneLayouts = sh.spec.Hi - sh.spec.Lo
	job := c.jobs[res.Job]
	if job != nil {
		job.remaining--
		if job.remaining == 0 {
			c.mergeLocked(job)
		} else {
			notify = c.progressLocked(res.Job)
		}
	}
	return nil, notify
}

// Fail reports a shard execution error from a worker. The shard is
// requeued (another worker may succeed — e.g. the failure was a local
// resource problem) until MaxRetries, when the whole job fails.
func (c *Coordinator) Fail(workerID, shardKey, msg string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	sh, ok := c.shards[shardKey]
	if !ok || sh.status != shardLeased || sh.worker != workerID {
		return // stale report
	}
	c.requeueLocked(sh, fmt.Errorf("cluster: shard %s failed on %s: %s", shardKey, workerID, msg))
}

// expireLocked returns timed-out leases to the queue and prunes workers
// that have not been seen for several lease lifetimes. Callers hold c.mu.
//
//mosvet:timing lease-expiry scan; scheduling only, results are unaffected
func (c *Coordinator) expireLocked() {
	now := c.cfg.Clock()
	var expired []string
	for key, sh := range c.shards {
		if sh.status == shardLeased && now.After(sh.expiry) {
			expired = append(expired, key)
		}
	}
	// Deterministic requeue order (maporder: map iteration must never
	// decide output ordering — here it would decide retry order).
	sort.Strings(expired)
	for _, key := range expired {
		// Re-fetch: an earlier requeue in this loop may have exhausted a
		// sibling shard's retry budget and failed the whole job, deleting
		// every one of its shards — including this key.
		sh, ok := c.shards[key]
		if !ok || sh.status != shardLeased {
			continue
		}
		c.requeueLocked(sh, fmt.Errorf("cluster: shard %s lease expired on %s after %d retries",
			key, sh.worker, sh.retries))
	}
	cutoff := now.Add(-4 * c.cfg.LeaseTTL)
	for id, w := range c.workers {
		if w.lastSeen.Before(cutoff) {
			delete(c.workers, id)
		}
	}
}

// requeueLocked puts a leased shard back on the queue, or fails its job
// once the retry budget is spent. Callers hold c.mu.
func (c *Coordinator) requeueLocked(sh *shard, cause error) {
	sh.retries++
	c.retried++
	if sh.retries > c.cfg.MaxRetries {
		if job := c.jobs[sh.spec.Job]; job != nil {
			c.finishLocked(job, nil, fmt.Errorf("cluster: job %s: shard retry budget exhausted: %w", job.id, cause))
		}
		return
	}
	sh.status = shardPending
	sh.worker = ""
	sh.doneLayouts = 0
	c.queue = append(c.queue, sh.spec.Key)
}

// progressLocked builds the job's progress notification (run after the
// lock drops, so callbacks can take their own locks). Callers hold c.mu.
func (c *Coordinator) progressLocked(jobID string) func() {
	job := c.jobs[jobID]
	if job == nil || job.onProgress == nil {
		return nil
	}
	done := 0
	for _, sh := range job.shards {
		done += sh.doneLayouts
	}
	total := job.spec.Layouts
	cb := job.onProgress
	return func() { cb(done, total) }
}

// mergeLocked assembles a completed job's per-layout results in sorted
// shard-key order — never map iteration — and wakes its waiter. Callers
// hold c.mu.
//
//mosvet:timing merge latency is an observability metric; the merged bytes
// are position-determined and clock-free
func (c *Coordinator) mergeLocked(job *sweepJob) {
	start := c.cfg.Clock()
	ordered := make([]*shard, len(job.shards))
	copy(ordered, job.shards)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].spec.Key < ordered[j].spec.Key })
	merged := make([]LayoutResult, job.spec.Layouts)
	for _, sh := range ordered {
		if sh.result == nil {
			// Impossible by construction (remaining reaches 0 only via
			// Complete, which sets result), but a nil here must fail the
			// job, not panic while c.mu is held.
			c.finishLocked(job, nil, fmt.Errorf("cluster: job %s: shard %s counted done without a result", job.id, sh.spec.Key))
			return
		}
		copy(merged[sh.spec.Lo:sh.spec.Hi], sh.result.Results)
	}
	c.merges++
	c.mergeNano += c.cfg.Clock().Sub(start).Nanoseconds()
	c.finishLocked(job, merged, nil)
}

// finishLocked moves a job to its terminal state and forgets its shards.
// Callers hold c.mu.
func (c *Coordinator) finishLocked(job *sweepJob, results []LayoutResult, err error) {
	if job.results != nil || job.err != nil || job.canceled {
		return // already terminal
	}
	job.results = results
	job.err = err
	if err != nil {
		job.canceled = true
	}
	for _, sh := range job.shards {
		delete(c.shards, sh.spec.Key)
	}
	delete(c.jobs, job.id)
	close(job.done)
}

// Sweep is the waitable handle Submit returns.
type Sweep struct {
	c   *Coordinator
	job *sweepJob
	// ID is the coordinator's job identity (shard keys embed it).
	ID string
}

// Submit decomposes a sweep into layout-batch shards and queues them. The
// shard size is ShardLayouts, or — when 0 — the span that splits the
// protocol evenly over roughly 2× the fleet's live capacity, so the queue
// stays deep enough to keep every worker busy while shards remain coarse
// enough to amortize per-shard setup. onProgress, when non-nil, receives
// (completed layouts, total layouts) as heartbeats and completions land.
func (c *Coordinator) Submit(spec SweepSpec, onProgress func(done, total int)) (*Sweep, error) {
	if spec.Layouts <= 0 {
		return nil, fmt.Errorf("cluster: sweep %q has no layouts to shard", spec.Job)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	c.seq++
	id := fmt.Sprintf("%s-%06d", spec.Job, c.seq)
	span := c.cfg.ShardLayouts
	if span <= 0 {
		slots := 2 * c.capacityLocked()
		if slots < 1 {
			slots = 1
		}
		span = (spec.Layouts + slots - 1) / slots
	}
	job := &sweepJob{
		id:         id,
		spec:       spec,
		remaining:  0,
		done:       make(chan struct{}),
		onProgress: onProgress,
	}
	for lo := 0; lo < spec.Layouts; lo += span {
		hi := min(lo+span, spec.Layouts)
		sh := &shard{
			spec: ShardSpec{
				Key:      fmt.Sprintf("%s/%05d-%05d", id, lo, hi),
				Job:      id,
				Workload: spec.Workload,
				Platform: spec.Platform,
				Proto:    spec.Proto,
				Sampling: spec.Sampling,
				Lo:       lo,
				Hi:       hi,
			},
			status: shardPending,
		}
		job.shards = append(job.shards, sh)
		c.shards[sh.spec.Key] = sh
		c.queue = append(c.queue, sh.spec.Key)
		job.remaining++
	}
	c.jobs[id] = job
	return &Sweep{c: c, job: job, ID: id}, nil
}

// Wait blocks until the sweep merges, fails, or ctx is done. A done ctx
// cancels the sweep: pending shards are dropped, and late completions from
// workers are discarded.
func (s *Sweep) Wait(ctx context.Context) ([]LayoutResult, error) {
	select {
	case <-s.job.done:
	case <-ctx.Done():
		s.Cancel()
		return nil, ctx.Err()
	}
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	if s.job.err != nil {
		return nil, s.job.err
	}
	return s.job.results, nil
}

// Cancel drops the sweep: its pending shards leave the queue and in-flight
// workers are told to abandon on their next heartbeat.
func (s *Sweep) Cancel() {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	s.c.finishLocked(s.job, nil, context.Canceled)
}

// capacityLocked sums live workers' shard capacity. Callers hold c.mu.
func (c *Coordinator) capacityLocked() int {
	now := c.cfg.Clock()
	cutoff := now.Add(-2 * c.cfg.LeaseTTL)
	n := 0
	for _, w := range c.workers {
		if !w.lastSeen.Before(cutoff) {
			n += w.capacity
		}
	}
	return n
}

// LiveWorkers counts workers seen within two lease lifetimes — the fleet
// gauge, and the signal the serving layer uses to route sweeps through the
// fabric instead of executing locally.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	cutoff := now.Add(-2 * c.cfg.LeaseTTL)
	n := 0
	for _, w := range c.workers {
		if !w.lastSeen.Before(cutoff) {
			n++
		}
	}
	return n
}

// Capacity sums live workers' concurrent-shard capacity — the saturation
// model's fleet-capacity input.
func (c *Coordinator) Capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacityLocked()
}

// ShardsPending reports queued shards (a fleet gauge).
func (c *Coordinator) ShardsPending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, sh := range c.shards {
		if sh.status == shardPending {
			n++
		}
	}
	return n
}

// ShardsLeased reports shards currently executing (a fleet gauge).
func (c *Coordinator) ShardsLeased() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, sh := range c.shards {
		if sh.status == shardLeased {
			n++
		}
	}
	return n
}

// ShardsRetried reports total shard requeues (lease expiry + failures) —
// a monotonic fleet counter.
func (c *Coordinator) ShardsRetried() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retried
}

// MergeStats reports completed merges and their cumulative wall time, for
// the merge-latency metrics pair (total seconds / count = mean latency).
func (c *Coordinator) MergeStats() (merges uint64, totalSeconds float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.merges, float64(c.mergeNano) / 1e9
}
