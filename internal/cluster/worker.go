package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ShardExecutor runs one shard's layout span and returns per-layout
// results in span order. onLayout, when non-nil, is called with the count
// of completed layouts as each one finishes (the worker forwards it in
// heartbeats). Implementations must be deterministic: the coordinator
// relies on a retried shard producing byte-identical results on any
// worker.
type ShardExecutor interface {
	ExecuteShard(ctx context.Context, spec *ShardSpec, onLayout func(done int)) ([]LayoutResult, error)
}

// Worker leases shards from a coordinator and executes them. Run blocks
// until ctx is done; cancelation is indistinguishable from death to the
// coordinator (heartbeats stop, leases expire, shards retry elsewhere),
// which is exactly the failure model the fabric is built around — there
// is deliberately no graceful-shutdown handshake to get wrong.
type Worker struct {
	// Name labels the worker in coordinator logs ("host:pid" by
	// convention).
	Name string
	// Capacity is the number of shards executed concurrently (≥ 1).
	// Shards already parallelize layouts across the scheduler's worker
	// budget internally, so 1 is right on dedicated hosts.
	Capacity int
	// Client targets the coordinator.
	Client *Client
	// Exec runs leased shards.
	Exec ShardExecutor
	// IdlePoll is the lease retry interval when the queue is empty
	// (default 250ms).
	IdlePoll time.Duration
	// Logf, when non-nil, receives worker lifecycle lines.
	Logf func(format string, args ...any)
}

// Run registers with the coordinator and works the queue until ctx is
// done. A coordinator that is unreachable at registration is an error;
// transient errors after that are retried at the idle-poll cadence.
func (w *Worker) Run(ctx context.Context) error {
	if w.Client == nil || w.Exec == nil {
		return errors.New("cluster: worker needs a Client and an Exec")
	}
	capacity := w.Capacity
	if capacity < 1 {
		capacity = 1
	}
	idle := w.IdlePoll
	if idle <= 0 {
		idle = 250 * time.Millisecond
	}
	reply, err := w.Client.Register(w.Name, capacity)
	if err != nil {
		return fmt.Errorf("cluster: register with coordinator: %w", err)
	}
	heartbeat := time.Duration(reply.HeartbeatMs) * time.Millisecond
	if heartbeat <= 0 {
		heartbeat = 5 * time.Second
	}
	w.logf("worker %s registered as %s (capacity %d, heartbeat %s)", w.Name, reply.WorkerID, capacity, heartbeat)

	var wg sync.WaitGroup
	for i := 0; i < capacity; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.leaseLoop(ctx, reply.WorkerID, heartbeat, idle)
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// leaseLoop is one shard slot: lease, execute, report, repeat.
func (w *Worker) leaseLoop(ctx context.Context, workerID string, heartbeat, idle time.Duration) {
	ticker := time.NewTicker(idle)
	defer ticker.Stop()
	for {
		if ctx.Err() != nil {
			return
		}
		spec, ok, err := w.Client.Lease(workerID)
		if err != nil {
			w.logf("worker %s: lease: %v", workerID, err)
			ok = false
		}
		if !ok {
			// Idle: the lease call itself refreshed liveness, but on a
			// long-empty queue keep a heartbeat cadence under the poll so
			// the coordinator never prunes an idle worker.
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			if idle > heartbeat {
				w.Client.Heartbeat(workerID, "", 0)
			}
			continue
		}
		w.runShard(ctx, workerID, spec, heartbeat)
	}
}

// runShard executes one leased shard, heartbeating its progress, and
// reports the outcome. Abandon signals from the coordinator (lease moved,
// job canceled) cancel the execution.
func (w *Worker) runShard(ctx context.Context, workerID string, spec *ShardSpec, heartbeat time.Duration) {
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var done atomic.Int64
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		ticker := time.NewTicker(heartbeat)
		defer ticker.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-ticker.C:
			}
			reply, err := w.Client.Heartbeat(workerID, spec.Key, int(done.Load()))
			if err == nil && reply.Abandon {
				w.logf("worker %s: shard %s abandoned by coordinator", workerID, spec.Key)
				cancel()
				return
			}
		}
	}()

	results, err := w.Exec.ExecuteShard(shardCtx, spec, func(n int) { done.Store(int64(n)) })
	cancel()
	hb.Wait()

	switch {
	case err == nil:
		res := &ShardResult{Key: spec.Key, Job: spec.Job, Lo: spec.Lo, Hi: spec.Hi, Results: results}
		if err := w.Client.Complete(workerID, res); err != nil {
			// The upload failed (coordinator restart, network): the lease
			// will expire and the shard re-runs deterministically.
			w.logf("worker %s: complete %s: %v", workerID, spec.Key, err)
		}
	case ctx.Err() != nil || shardCtx.Err() != nil && errors.Is(err, context.Canceled):
		// Shutdown or abandon — say nothing; lease expiry handles it.
	default:
		w.logf("worker %s: shard %s failed: %v", workerID, spec.Key, err)
		w.Client.Fail(workerID, spec.Key, err.Error())
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}
