// Package cluster shards the measurement sweep across processes: a
// coordinator decomposes a sweep into (workload, platform, layout-batch)
// shards, a fleet of worker processes lease and execute them through the
// existing replay pipeline, and the coordinator merges completed shards —
// in deterministic shard-key order — into exactly the per-layout results a
// single-node sweep would produce. The economy is the paper's own: replay
// results are pure functions of (trace, platform, layout, sampling plan),
// so shard execution is *verifiably* correct — a merged distributed run
// must equal a single-node run bit for bit, and the golden tests hold it
// to that.
//
// Worker health is lease-based: a worker registers, heartbeats, and leases
// one shard at a time; a worker that dies mid-shard stops heartbeating,
// its lease expires, and the shard is retried on the next live worker.
// Retries cannot change the answer — determinism again — so the failure
// model is simply "a shard is re-run until some worker finishes it".
package cluster

import (
	"encoding/binary"
	"fmt"
	"math"

	"mosaic/internal/sim"
)

// The MOSSHRD wire format carries shard specs (coordinator → worker) and
// shard results (worker → coordinator) as HTTP bodies. It follows the
// repo's hand-rolled codec discipline (MOSTRC02, MOSCKPT01): fixed magic,
// version byte, bounded length fields validated before allocation,
// little-endian fixed-width integers, and a trailing FNV-1a checksum over
// everything before it, so a truncated or corrupted payload is rejected
// rather than half-decoded into a sweep.
//
// Layout (all integers little-endian):
//
//	magic    [8]byte  "MOSSHRD0"
//	version  byte     '2' (bytes 0..9 spell "MOSSHRD02")
//	kind     byte     'S' = shard spec, 'R' = shard result
//	spec:    key, job, workload, platform, proto (u16-len strings),
//	         sampling 4×u32, lo u32, hi u32
//	result:  key, job (u16-len strings), lo u32, hi u32,
//	         (hi-lo) × { layout (u16-len string), 14×u64 counters,
//	                     walkRefs u64, measured u64, total u64,
//	                     phases u16, phases × { name (u16-len string),
//	                       14×u64 counters, walkRefs u64, measured u64,
//	                       total u64 } }
//	checksum u64      FNV-1a of all preceding bytes
//
// Version 2 added the per-layout phase section (phased traces attribute
// counters per regime; the fleet merge must preserve that attribution
// bit-identically). Version skew is a hard error in both directions: a
// v1 result silently stripped of phases would break the solo-vs-fleet
// bit-identity contract, so mixed-version fleets are rejected at decode.
var magic = [8]byte{'M', 'O', 'S', 'S', 'H', 'R', 'D', '0'}

// wireVersion is the format version byte following the magic.
const wireVersion = '2'

// Payload kind bytes.
const (
	kindSpec   = 'S'
	kindResult = 'R'
)

const (
	// maxStrLen bounds every string field (keys, names).
	maxStrLen = 1 << 12
	// maxSpanLayouts bounds a shard's layout span; the largest real
	// protocol is ~103 layouts.
	maxSpanLayouts = 1 << 16
	// maxWirePhases bounds a layout result's phase rows, mirroring the
	// trace layer's phase-count sanity bound.
	maxWirePhases = 1 << 12
)

// ShardSpec is one unit of distributed work: replay the layout span
// [Lo, Hi) of the pair's deterministic protocol order at the given
// fidelity. The worker re-derives the layouts from (workload, platform,
// proto) — protocol planning is seeded by the pair key, so every process
// plans the identical layout sequence and the spec only needs indices.
type ShardSpec struct {
	// Key is the coordinator-assigned shard identity ("job/lo-hi").
	Key string
	// Job is the coordinator's sweep-job identity the shard belongs to.
	Job string
	// Workload, Platform, Proto name the pair and its layout protocol
	// ("quick", "standard", or "extended").
	Workload string
	Platform string
	Proto    string
	// Sampling is the resolved replay fidelity (zero value = exact).
	Sampling sim.Sampling
	// Lo, Hi bound the layout span [Lo, Hi) in protocol order.
	Lo, Hi int
}

// LayoutResult pairs one layout's name with its replay result — the unit
// the coordinator merges, in layout order, into a dataset.
type LayoutResult struct {
	Layout string
	Result sim.Result
}

// ShardResult carries a completed shard's per-layout results back to the
// coordinator. Layout names travel with the counters so the merge can
// cross-check them against the coordinator's own protocol plan.
type ShardResult struct {
	Key string
	Job string
	Lo  int
	Hi  int
	// Results holds one entry per layout of the span, in span order.
	Results []LayoutResult
}

// fnv1a hashes bytes with 64-bit FNV-1a (the repo's standard content hash).
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// counterWords lists a result's counter fields in fixed wire order. The
// codec round-trip test compares decoded results with ==, so a new
// pmu.Counters field that is not added here fails the test instead of
// silently dropping off the wire.
func counterWords(r *sim.Result) [17]*uint64 {
	c := &r.Counters
	return [17]*uint64{
		&c.R, &c.H, &c.M, &c.C, &c.Instructions,
		&c.L1DLoadsProgram, &c.L1DLoadsWalker,
		&c.L2LoadsProgram, &c.L2LoadsWalker,
		&c.L3LoadsProgram, &c.L3LoadsWalker,
		&c.DRAMLoadsProgram, &c.DRAMLoadsWalker,
		&c.TLBLookups,
		&r.WalkRefs, &r.MeasuredAccesses, &r.TotalAccesses,
	}
}

// phaseWords lists one phase row's fields in fixed wire order, mirroring
// counterWords for sim.PhaseResult.
func phaseWords(p *sim.PhaseResult) [17]*uint64 {
	c := &p.Counters
	return [17]*uint64{
		&c.R, &c.H, &c.M, &c.C, &c.Instructions,
		&c.L1DLoadsProgram, &c.L1DLoadsWalker,
		&c.L2LoadsProgram, &c.L2LoadsWalker,
		&c.L3LoadsProgram, &c.L3LoadsWalker,
		&c.DRAMLoadsProgram, &c.DRAMLoadsWalker,
		&c.TLBLookups,
		&p.WalkRefs, &p.MeasuredAccesses, &p.TotalAccesses,
	}
}

// header starts a payload of the given kind.
func header(kind byte) []byte {
	b := make([]byte, 0, 256)
	b = append(b, magic[:]...)
	b = append(b, wireVersion, kind)
	return b
}

// seal appends the checksum trailer.
//
//mosvet:codecskip the trailer is written last on encode but verified first by open, so its u64 is positionally asymmetric by design
func seal(b []byte) []byte { return appendU64(b, fnv1a(b)) }

// validSpan checks a shard's layout span.
func validSpan(lo, hi int) error {
	if lo < 0 || hi <= lo || hi-lo > maxSpanLayouts {
		return fmt.Errorf("cluster: invalid layout span [%d, %d)", lo, hi)
	}
	return nil
}

// Encode serializes the spec as a MOSSHRD01 payload.
func (s *ShardSpec) Encode() ([]byte, error) {
	for _, str := range []string{s.Key, s.Job, s.Workload, s.Platform, s.Proto} {
		if len(str) > maxStrLen {
			return nil, fmt.Errorf("cluster: string field of %d bytes exceeds the %d-byte wire bound", len(str), maxStrLen)
		}
	}
	if err := validSpan(s.Lo, s.Hi); err != nil {
		return nil, err
	}
	for _, v := range []int{s.Sampling.Period, s.Sampling.MeasureLen, s.Sampling.WarmupLen, s.Sampling.PrologueLen} {
		if v < 0 || v > math.MaxUint32 {
			return nil, fmt.Errorf("cluster: sampling parameter %d outside the u32 wire range", v)
		}
	}
	b := header(kindSpec)
	b = appendStr(b, s.Key)
	b = appendStr(b, s.Job)
	b = appendStr(b, s.Workload)
	b = appendStr(b, s.Platform)
	b = appendStr(b, s.Proto)
	b = appendU32(b, uint32(s.Sampling.Period))
	b = appendU32(b, uint32(s.Sampling.MeasureLen))
	b = appendU32(b, uint32(s.Sampling.WarmupLen))
	b = appendU32(b, uint32(s.Sampling.PrologueLen))
	b = appendU32(b, uint32(s.Lo))
	b = appendU32(b, uint32(s.Hi))
	return seal(b), nil
}

// Encode serializes the result as a MOSSHRD01 payload.
func (r *ShardResult) Encode() ([]byte, error) {
	for _, str := range []string{r.Key, r.Job} {
		if len(str) > maxStrLen {
			return nil, fmt.Errorf("cluster: string field of %d bytes exceeds the %d-byte wire bound", len(str), maxStrLen)
		}
	}
	if err := validSpan(r.Lo, r.Hi); err != nil {
		return nil, err
	}
	if len(r.Results) != r.Hi-r.Lo {
		return nil, fmt.Errorf("cluster: shard %s carries %d results for a %d-layout span", r.Key, len(r.Results), r.Hi-r.Lo)
	}
	b := header(kindResult)
	b = appendStr(b, r.Key)
	b = appendStr(b, r.Job)
	b = appendU32(b, uint32(r.Lo))
	b = appendU32(b, uint32(r.Hi))
	for i := range r.Results {
		lr := &r.Results[i]
		if len(lr.Layout) > maxStrLen {
			return nil, fmt.Errorf("cluster: layout name of %d bytes exceeds the %d-byte wire bound", len(lr.Layout), maxStrLen)
		}
		b = appendStr(b, lr.Layout)
		for _, w := range counterWords(&lr.Result) {
			b = appendU64(b, *w)
		}
		if len(lr.Result.Phases) > maxWirePhases {
			return nil, fmt.Errorf("cluster: layout %s carries %d phase rows, wire bound is %d",
				lr.Layout, len(lr.Result.Phases), maxWirePhases)
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(len(lr.Result.Phases)))
		for pi := range lr.Result.Phases {
			ph := &lr.Result.Phases[pi]
			if len(ph.Name) > maxStrLen {
				return nil, fmt.Errorf("cluster: phase name of %d bytes exceeds the %d-byte wire bound", len(ph.Name), maxStrLen)
			}
			b = appendStr(b, ph.Name)
			for _, w := range phaseWords(ph) {
				b = appendU64(b, *w)
			}
		}
	}
	return seal(b), nil
}

// reader is a bounds-checked cursor over a payload.
type reader struct {
	b   []byte
	off int
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, fmt.Errorf("cluster: truncated payload (%d bytes, need %d more at offset %d)", len(r.b), n, r.off)
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if int(n) > maxStrLen {
		return "", fmt.Errorf("cluster: string field of %d bytes exceeds the %d-byte wire bound", n, maxStrLen)
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// open validates magic, version, kind, and the checksum trailer, returning
// a cursor over the payload body.
//
//mosvet:codecskip reads the seal trailer (end of buffer) before the body, the mirror image of seal's write-last placement
func open(b []byte, kind byte) (*reader, error) {
	if len(b) < len(magic)+2+8 {
		return nil, fmt.Errorf("cluster: payload of %d bytes is shorter than the MOSSHRD01 envelope", len(b))
	}
	if string(b[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("cluster: bad magic %q (want %q)", b[:len(magic)], magic)
	}
	if v := b[len(magic)]; v != wireVersion {
		return nil, fmt.Errorf("cluster: unsupported MOSSHRD version %q (want %q)", v, wireVersion)
	}
	if k := b[len(magic)+1]; k != kind {
		return nil, fmt.Errorf("cluster: payload kind %q, want %q", k, kind)
	}
	body, trailer := b[:len(b)-8], b[len(b)-8:]
	if got, want := binary.LittleEndian.Uint64(trailer), fnv1a(body); got != want {
		return nil, fmt.Errorf("cluster: checksum mismatch (%016x, want %016x)", got, want)
	}
	return &reader{b: body, off: len(magic) + 2}, nil
}

// done rejects trailing bytes after a fully decoded payload.
func (r *reader) done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("cluster: %d trailing bytes after payload", len(r.b)-r.off)
	}
	return nil
}

// DecodeSpec parses a MOSSHRD01 shard-spec payload.
func DecodeSpec(b []byte) (*ShardSpec, error) {
	r, err := open(b, kindSpec)
	if err != nil {
		return nil, err
	}
	var s ShardSpec
	for _, dst := range []*string{&s.Key, &s.Job, &s.Workload, &s.Platform, &s.Proto} {
		if *dst, err = r.str(); err != nil {
			return nil, err
		}
	}
	var words [6]uint32
	for i := range words {
		if words[i], err = r.u32(); err != nil {
			return nil, err
		}
	}
	s.Sampling = sim.Sampling{
		Period:      int(words[0]),
		MeasureLen:  int(words[1]),
		WarmupLen:   int(words[2]),
		PrologueLen: int(words[3]),
	}
	s.Lo, s.Hi = int(words[4]), int(words[5])
	if err := validSpan(s.Lo, s.Hi); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &s, nil
}

// DecodeResult parses a MOSSHRD01 shard-result payload.
func DecodeResult(b []byte) (*ShardResult, error) {
	r, err := open(b, kindResult)
	if err != nil {
		return nil, err
	}
	var res ShardResult
	if res.Key, err = r.str(); err != nil {
		return nil, err
	}
	if res.Job, err = r.str(); err != nil {
		return nil, err
	}
	lo, err := r.u32()
	if err != nil {
		return nil, err
	}
	hi, err := r.u32()
	if err != nil {
		return nil, err
	}
	res.Lo, res.Hi = int(lo), int(hi)
	if err := validSpan(res.Lo, res.Hi); err != nil {
		return nil, err
	}
	res.Results = make([]LayoutResult, res.Hi-res.Lo)
	for i := range res.Results {
		lr := &res.Results[i]
		if lr.Layout, err = r.str(); err != nil {
			return nil, err
		}
		for _, w := range counterWords(&lr.Result) {
			if *w, err = r.u64(); err != nil {
				return nil, err
			}
		}
		nPhases, err := r.u16()
		if err != nil {
			return nil, err
		}
		if int(nPhases) > maxWirePhases {
			return nil, fmt.Errorf("cluster: layout %s declares %d phase rows, wire bound is %d",
				lr.Layout, nPhases, maxWirePhases)
		}
		if nPhases > 0 {
			lr.Result.Phases = make([]sim.PhaseResult, nPhases)
			for pi := range lr.Result.Phases {
				ph := &lr.Result.Phases[pi]
				if ph.Name, err = r.str(); err != nil {
					return nil, err
				}
				for _, w := range phaseWords(ph) {
					if *w, err = r.u64(); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &res, nil
}
