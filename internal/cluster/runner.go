package cluster

import (
	"context"
	"fmt"
	"sync"

	"mosaic/internal/arch"
	"mosaic/internal/experiment"
	"mosaic/internal/sim"
	"mosaic/internal/workloads"
)

// ExperimentExecutor runs shards through the experiment pipeline — the
// production ShardExecutor. Workers re-derive the layout protocol locally
// instead of receiving layouts over the wire: protocol planning is a pure
// function of the (workload, platform) pair key (planLayouts seeds from
// it), so a shard spec only needs the span [Lo, Hi) and every worker —
// and the single-node baseline — sees byte-identical layouts at each
// index. The same determinism covers trace generation, which means a
// worker with a cold TraceDir regenerates exactly the trace the
// coordinator's pair would have.
type ExperimentExecutor struct {
	// TraceDir, when set, caches generated traces across shards and
	// restarts (safe to share with a co-located coordinator).
	TraceDir string
	// CheckpointDir, when set, caches windowed-replay boundary
	// checkpoints.
	CheckpointDir string
	// Parallelism bounds each shard's replay worker pool (0 = GOMAXPROCS).
	Parallelism int

	mu      sync.Mutex
	runners map[string]*experiment.Runner // per protocol name
}

// ExecuteShard implements ShardExecutor: prepare the workload (cached),
// re-plan the pair's protocol, replay the shard's span, and return its
// per-layout results in span order.
func (e *ExperimentExecutor) ExecuteShard(ctx context.Context, spec *ShardSpec, onLayout func(done int)) ([]LayoutResult, error) {
	w, err := workloads.ByName(spec.Workload)
	if err != nil {
		return nil, err
	}
	plat, err := arch.ByName(spec.Platform)
	if err != nil {
		return nil, err
	}
	r, err := e.runner(spec.Proto)
	if err != nil {
		return nil, err
	}
	wd, err := r.Prepare(w)
	if err != nil {
		return nil, err
	}
	lays := r.ProtocolLayouts(wd, plat)
	if spec.Lo < 0 || spec.Hi > len(lays) || spec.Lo >= spec.Hi {
		return nil, fmt.Errorf("cluster: shard %s spans [%d, %d) but protocol %q has %d layouts — coordinator/worker protocol skew",
			spec.Key, spec.Lo, spec.Hi, spec.Proto, len(lays))
	}
	span := lays[spec.Lo:spec.Hi]
	onProgress := progressToLayouts(len(span), onLayout)
	results, err := r.MeasureLayouts(ctx, wd, plat, span, spec.Sampling, onProgress)
	if err != nil {
		return nil, err
	}
	out := make([]LayoutResult, len(span))
	for i, lay := range span {
		out[i] = LayoutResult{Layout: lay.Name, Result: results[i]}
	}
	return out, nil
}

// progressToLayouts adapts the replay scheduler's batch-job progress to a
// completed-layout estimate for heartbeats. Batches are evenly spanned, so
// the linear scaling is exact at batch boundaries.
func progressToLayouts(layouts int, onLayout func(done int)) func(p sim.Progress) {
	if onLayout == nil {
		return nil
	}
	return func(p sim.Progress) {
		if p.Total > 0 {
			onLayout(layouts * p.Done / p.Total)
		}
	}
}

// runner returns the executor's shared pipeline for a protocol, building
// it on first use. One runner per protocol keeps trace preparation and
// engine pools shared across shards without aliasing protocol plans;
// sampling never touches runner state (MeasureLayouts takes it
// explicitly), so shards with different fidelities share a runner safely.
func (e *ExperimentExecutor) runner(proto string) (*experiment.Runner, error) {
	p, err := protocolByName(proto)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.runners == nil {
		e.runners = make(map[string]*experiment.Runner)
	}
	if r, ok := e.runners[proto]; ok {
		return r, nil
	}
	r := experiment.NewRunner()
	r.Proto = p
	r.TraceDir = e.TraceDir
	r.CheckpointDir = e.CheckpointDir
	if e.Parallelism > 0 {
		r.Parallelism = e.Parallelism
	}
	e.runners[proto] = r
	return r, nil
}

// protocolByName maps the wire protocol name (the /v1/jobs vocabulary) to
// the experiment enum.
func protocolByName(name string) (experiment.Protocol, error) {
	switch name {
	case "", "standard":
		return experiment.Standard, nil
	case "quick":
		return experiment.Quick, nil
	case "extended":
		return experiment.Extended, nil
	}
	return 0, fmt.Errorf("cluster: unknown proto %q (want quick, standard, or extended)", name)
}

// PoolIdle sums idle pooled engines across the executor's pipelines — the
// worker-side occupancy gauge.
func (e *ExperimentExecutor) PoolIdle() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, r := range e.runners {
		n += r.PoolIdle()
	}
	return n
}
