package cluster

import (
	"testing"
	"time"
)

func TestSaturationFallbackBeforeObservations(t *testing.T) {
	var s Saturation
	if got := s.RetryAfter(5, 2, 10*time.Second); got != 10*time.Second {
		t.Fatalf("RetryAfter with empty window = %v, want the 10s fallback", got)
	}
	if _, ok := s.MeanJobSeconds(); ok {
		t.Fatal("MeanJobSeconds reported ok with no observations")
	}
}

func TestSaturationDerivesFromBacklogAndMean(t *testing.T) {
	var s Saturation
	for i := 0; i < 4; i++ {
		s.Observe(8 * time.Second)
	}
	// 6 queued × 8s mean ÷ 2 slots = 24s.
	if got := s.RetryAfter(6, 2, time.Minute); got != 24*time.Second {
		t.Fatalf("RetryAfter = %v, want 24s", got)
	}
	// More capacity drains faster: 6 × 8 ÷ 4 = 12s.
	if got := s.RetryAfter(6, 4, time.Minute); got != 12*time.Second {
		t.Fatalf("RetryAfter at capacity 4 = %v, want 12s", got)
	}
}

func TestSaturationWindowForgetsOldMix(t *testing.T) {
	var s Saturation
	for i := 0; i < saturationWindow; i++ {
		s.Observe(time.Hour) // stale slow mix
	}
	for i := 0; i < saturationWindow; i++ {
		s.Observe(2 * time.Second) // current fast mix
	}
	mean, ok := s.MeanJobSeconds()
	if !ok || mean != 2 {
		t.Fatalf("windowed mean = %v (ok=%v), want 2s exactly after the ring turns over", mean, ok)
	}
	if got := s.Observations(); got != saturationWindow {
		t.Fatalf("Observations = %d, want %d", got, saturationWindow)
	}
}

func TestSaturationClamps(t *testing.T) {
	var s Saturation
	s.Observe(10 * time.Millisecond)
	if got := s.RetryAfter(1, 8, time.Minute); got != time.Second {
		t.Fatalf("tiny estimate = %v, want the 1s floor", got)
	}
	var slow Saturation
	slow.Observe(2 * time.Hour)
	if got := slow.RetryAfter(100, 1, time.Minute); got != maxRetryAfter {
		t.Fatalf("huge estimate = %v, want the %v cap", got, maxRetryAfter)
	}
	// Degenerate inputs are normalized, not crashed on.
	if got := s.RetryAfter(0, 0, time.Minute); got < time.Second {
		t.Fatalf("zero backlog/capacity = %v, want ≥ 1s", got)
	}
	s.Observe(-time.Second) // ignored
	if got := s.Observations(); got != 1 {
		t.Fatalf("negative observation was recorded (n=%d)", got)
	}
}
