package cluster

import (
	"bytes"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// The fleet protocol rides plain HTTP: JSON for the control plane
// (register / heartbeat / fail, where payloads are tiny and debuggability
// matters) and the MOSSHRD01 binary codec for the data plane (lease
// hands out a ShardSpec, complete uploads a ShardResult) where payloads
// carry counters and must survive version skew explicitly.
//
// Every request body is read fully before any coordinator lock is taken
// (the handlers call Coordinator methods, which lock internally), so the
// lockio invariant — no network I/O while holding a mutex — holds across
// the package.

// maxBodyBytes bounds request bodies: a ShardResult for the largest legal
// span (maxSpanLayouts layouts × ~150 bytes each) stays well inside it.
const maxBodyBytes = 16 << 20

const wireContentType = "application/x-mosshrd"

type registerRequest struct {
	Name     string `json:"name"`
	Capacity int    `json:"capacity"`
}

type heartbeatRequest struct {
	WorkerID    string `json:"workerId"`
	Shard       string `json:"shard,omitempty"`
	DoneLayouts int    `json:"doneLayouts,omitempty"`
}

type leaseRequest struct {
	WorkerID string `json:"workerId"`
}

type failRequest struct {
	WorkerID string `json:"workerId"`
	Shard    string `json:"shard"`
	Error    string `json:"error"`
}

// Handler exposes the coordinator under a /cluster/v1/* mux. Mount it at
// the server root: the paths are absolute. When CoordinatorConfig.Token
// is set, every request must carry it as a bearer token — a worker that
// can complete shards feeds counters straight into datasets and trained
// models, so the surface authenticates intent, not just integrity (the
// wire checksum only catches corruption).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/v1/register", func(w http.ResponseWriter, r *http.Request) {
		var req registerRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		if strings.TrimSpace(req.Name) == "" {
			httpError(w, http.StatusBadRequest, "register: name is required")
			return
		}
		writeJSON(w, http.StatusOK, c.Register(req.Name, req.Capacity))
	})
	mux.HandleFunc("/cluster/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, http.StatusOK, c.Heartbeat(req.WorkerID, req.Shard, req.DoneLayouts))
	})
	mux.HandleFunc("/cluster/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req leaseRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		spec, ok := c.Lease(req.WorkerID)
		if !ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		b, err := spec.Encode()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "lease: encode: "+err.Error())
			return
		}
		w.Header().Set("Content-Type", wireContentType)
		w.WriteHeader(http.StatusOK)
		w.Write(b)
	})
	mux.HandleFunc("/cluster/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "complete: POST only")
			return
		}
		workerID := r.URL.Query().Get("worker")
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
		if err != nil {
			httpError(w, http.StatusBadRequest, "complete: read: "+err.Error())
			return
		}
		if len(body) > maxBodyBytes {
			httpError(w, http.StatusRequestEntityTooLarge, "complete: body too large")
			return
		}
		res, err := DecodeResult(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "complete: "+err.Error())
			return
		}
		if err := c.Complete(workerID, res); err != nil {
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/cluster/v1/fail", func(w http.ResponseWriter, r *http.Request) {
		var req failRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		c.Fail(req.WorkerID, req.Shard, req.Error)
		w.WriteHeader(http.StatusNoContent)
	})
	if c.cfg.Token == "" {
		return mux
	}
	return authHandler(c.cfg.Token, mux)
}

// authHandler rejects requests that do not present the fleet's shared
// token as "Authorization: Bearer <token>". The comparison is constant
// time so the token cannot be guessed byte by byte.
func authHandler(token string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(token)) != 1 {
			httpError(w, http.StatusUnauthorized, "cluster: missing or wrong bearer token")
			return
		}
		next.ServeHTTP(w, r)
	})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// Client is the worker's view of a coordinator — one method per protocol
// verb. It is safe for concurrent use.
type Client struct {
	base  string
	token string
	http  *http.Client
}

// NewClient targets a coordinator at base (e.g. "http://host:9090").
// token is the fleet's shared secret, sent as a bearer token on every
// request; empty when the coordinator runs without one.
func NewClient(base, token string) *Client {
	return &Client{
		base:  strings.TrimRight(base, "/"),
		token: token,
		http:  &http.Client{Timeout: 30 * time.Second},
	}
}

// post issues one authenticated POST.
func (cl *Client) post(path, contentType string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, cl.base+path, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if cl.token != "" {
		req.Header.Set("Authorization", "Bearer "+cl.token)
	}
	return cl.http.Do(req)
}

// Register announces the worker and returns its coordinator-assigned
// identity and protocol timings.
func (cl *Client) Register(name string, capacity int) (RegisterReply, error) {
	var reply RegisterReply
	err := cl.postJSON("/cluster/v1/register", registerRequest{Name: name, Capacity: capacity}, &reply)
	return reply, err
}

// Heartbeat renews liveness (and the lease on shardKey, when non-empty).
func (cl *Client) Heartbeat(workerID, shardKey string, doneLayouts int) (HeartbeatReply, error) {
	var reply HeartbeatReply
	err := cl.postJSON("/cluster/v1/heartbeat", heartbeatRequest{
		WorkerID: workerID, Shard: shardKey, DoneLayouts: doneLayouts,
	}, &reply)
	return reply, err
}

// Lease asks for the next shard. ok is false when the queue is empty.
func (cl *Client) Lease(workerID string) (spec *ShardSpec, ok bool, err error) {
	body, err := json.Marshal(leaseRequest{WorkerID: workerID})
	if err != nil {
		return nil, false, err
	}
	resp, err := cl.post("/cluster/v1/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, false, nil
	case http.StatusOK:
		raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		if err != nil {
			return nil, false, err
		}
		spec, err := DecodeSpec(raw)
		if err != nil {
			return nil, false, err
		}
		return spec, true, nil
	default:
		return nil, false, httpStatusError("lease", resp)
	}
}

// Complete uploads a finished shard's results.
func (cl *Client) Complete(workerID string, res *ShardResult) error {
	b, err := res.Encode()
	if err != nil {
		return err
	}
	resp, err := cl.post("/cluster/v1/complete?worker="+workerID, wireContentType, bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return httpStatusError("complete", resp)
	}
	return nil
}

// Fail reports a shard execution error.
func (cl *Client) Fail(workerID, shardKey, msg string) error {
	resp, err := cl.post("/cluster/v1/fail", "application/json",
		strings.NewReader(mustJSON(failRequest{WorkerID: workerID, Shard: shardKey, Error: msg})))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return httpStatusError("fail", resp)
	}
	return nil
}

func (cl *Client) postJSON(path string, req, reply any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := cl.post(path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpStatusError(path, resp)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(reply)
}

func httpStatusError(op string, resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	var payload struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &payload) == nil && payload.Error != "" {
		return fmt.Errorf("cluster: %s: %s (HTTP %d)", op, payload.Error, resp.StatusCode)
	}
	return fmt.Errorf("cluster: %s: HTTP %d", op, resp.StatusCode)
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err) // all callers pass plain structs; cannot fail
	}
	return string(b)
}
