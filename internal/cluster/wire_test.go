package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"mosaic/internal/pmu"
	"mosaic/internal/sim"
)

// sampleSpec builds a fully populated spec for codec tests.
func sampleSpec() *ShardSpec {
	return &ShardSpec{
		Key:      "abc123-000001/00000-00004",
		Job:      "abc123-000001",
		Workload: "seq/stride64",
		Platform: "broadwell",
		Proto:    "quick",
		Sampling: sim.Sampling{Period: 65536, MeasureLen: 3072, WarmupLen: 8192, PrologueLen: 32768},
		Lo:       0,
		Hi:       4,
	}
}

// sampleResult builds a result whose counters exercise every wire field
// with distinct values, so a swapped field order cannot round-trip.
func sampleResult() *ShardResult {
	res := &ShardResult{
		Key: "abc123-000001/00000-00002",
		Job: "abc123-000001",
		Lo:  0,
		Hi:  2,
	}
	for i := 0; i < 2; i++ {
		lr := LayoutResult{Layout: []string{"4KB", "2MB"}[i]}
		words := counterWords(&lr.Result)
		for j, w := range words {
			*w = uint64(1000*i + 17*j + 3)
		}
		// One layout carries phase rows, one does not — both shapes must
		// round-trip (phase-less layouts encode a zero-count section).
		if i == 0 {
			lr.Result.Phases = make([]sim.PhaseResult, 2)
			for pi := range lr.Result.Phases {
				ph := &lr.Result.Phases[pi]
				ph.Name = []string{"build", "probe"}[pi]
				for j, w := range phaseWords(ph) {
					*w = uint64(5000*pi + 13*j + 7)
				}
			}
		}
		res.Results = append(res.Results, lr)
	}
	return res
}

func TestSpecRoundTrip(t *testing.T) {
	want := sampleSpec()
	b, err := want.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestResultRoundTrip(t *testing.T) {
	want := sampleResult()
	b, err := want.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestCounterWordsCoverResult fails when sim.Result or pmu.Counters grows
// a field the wire order does not carry — the codec must be updated in
// lockstep, or distributed counters silently drop data.
func TestCounterWordsCoverResult(t *testing.T) {
	numeric := reflect.TypeOf(pmu.Counters{}).NumField() // all uint64
	// Result adds WalkRefs, MeasuredAccesses, TotalAccesses on top of
	// Counters.
	want := numeric + 3
	var r sim.Result
	if got := len(counterWords(&r)); got != want {
		t.Fatalf("counterWords carries %d fields, result structs define %d", got, want)
	}
	// PhaseResult adds WalkRefs, MeasuredAccesses, TotalAccesses beside
	// Counters (Name travels separately as a string).
	var ph sim.PhaseResult
	if got := len(phaseWords(&ph)); got != want {
		t.Fatalf("phaseWords carries %d fields, phase structs define %d", got, want)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	spec, err := sampleSpec().Encode()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sampleResult().Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		b    []byte
		spec bool
	}{
		{"empty", nil, true},
		{"magic only", []byte("MOSSHRD0"), true},
		{"wrong magic", append([]byte("MOSSHRDX"), spec[8:]...), true},
		{"version skew (v1 payload)", mutate(spec, 8, '1'), true},
		{"version skew (future)", mutate(spec, 8, '3'), true},
		{"wrong kind for spec", res, true},
		{"wrong kind for result", spec, false},
		{"truncated spec", spec[:len(spec)-3], true},
		{"truncated result", res[:len(res)/2], false},
		{"flipped payload bit", mutate(spec, 20, spec[20]^1), true},
		{"flipped checksum bit", mutate(res, len(res)-1, res[len(res)-1]^1), false},
		{"trailing garbage", append(append([]byte{}, spec...), 0xAB), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			if tc.spec {
				_, err = DecodeSpec(tc.b)
			} else {
				_, err = DecodeResult(tc.b)
			}
			if err == nil {
				t.Fatalf("decode accepted %s", tc.name)
			}
		})
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	bad := sampleSpec()
	bad.Lo, bad.Hi = 3, 3
	if _, err := bad.Encode(); err == nil {
		t.Fatal("Encode accepted an empty span")
	}
	neg := sampleSpec()
	neg.Sampling.Period = -1
	if _, err := neg.Encode(); err == nil {
		t.Fatal("Encode accepted a negative sampling parameter")
	}
	short := sampleResult()
	short.Results = short.Results[:1]
	if _, err := short.Encode(); err == nil {
		t.Fatal("Encode accepted a result with fewer entries than its span")
	}
	long := sampleSpec()
	long.Key = string(make([]byte, maxStrLen+1))
	if _, err := long.Encode(); err == nil {
		t.Fatal("Encode accepted an overlong string field")
	}
}

func mutate(b []byte, i int, v byte) []byte {
	out := append([]byte{}, b...)
	out[i] = v
	return out
}

// FuzzShardRoundTrip holds the codec to the MOSTRC02/MOSCKPT01 contract:
// arbitrary bytes either fail to decode or decode into a value whose
// re-encoding is a fixed point; truncated and version-skewed payloads are
// always rejected.
func FuzzShardRoundTrip(f *testing.F) {
	spec, err := sampleSpec().Encode()
	if err != nil {
		f.Fatal(err)
	}
	res, err := sampleResult().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(spec)
	f.Add(res)
	f.Add([]byte{})
	f.Add([]byte("MOSSHRD0")) // magic only
	f.Add(mutate(spec, 8, '1'))
	f.Add(mutate(res, 8, '0'))
	for _, frac := range []float64{0.1, 0.5, 0.9, 0.999} {
		f.Add(append([]byte(nil), spec[:int(float64(len(spec))*frac)]...))
		f.Add(append([]byte(nil), res[:int(float64(len(res))*frac)]...))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := DecodeSpec(data); err == nil {
			b, err := s.Encode()
			if err != nil {
				t.Fatalf("accepted spec failed to re-encode: %v", err)
			}
			if !bytes.Equal(b, data) {
				t.Fatal("spec decode → encode is not a fixed point")
			}
		}
		if r, err := DecodeResult(data); err == nil {
			b, err := r.Encode()
			if err != nil {
				t.Fatalf("accepted result failed to re-encode: %v", err)
			}
			if !bytes.Equal(b, data) {
				t.Fatal("result decode → encode is not a fixed point")
			}
		}
	})
}
