package cluster

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"mosaic/internal/arch"
	"mosaic/internal/experiment"
	"mosaic/internal/sim"
	"mosaic/internal/workloads"
)

// The E2E harness: a real coordinator behind a real HTTP listener, real
// worker processes-in-goroutines leasing over the wire, and the real
// replay pipeline underneath. The golden claim — distributed merge ≡
// single-node CollectAll, bit for bit — is asserted on raw counters
// (uint64 ==) and on fitted model coefficients (Float64bits of the
// serialized model state and of predictions).

const (
	e2eWorkload = "gups/8GB"
	e2ePlatform = "SandyBridge"
)

// singleNode measures the golden baseline with a plain single-process
// sweep and returns the dataset plus the protocol layout count.
func singleNode(t *testing.T, traceDir, workload string) (*experiment.Dataset, int) {
	t.Helper()
	w, err := workloads.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := arch.ByName(e2ePlatform)
	if err != nil {
		t.Fatal(err)
	}
	r := experiment.NewRunner()
	r.Proto = experiment.Quick
	r.TraceDir = traceDir
	wd, err := r.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	layouts := len(r.ProtocolLayouts(wd, plat))
	dss, err := r.CollectAll([]workloads.Workload{w}, []arch.Platform{plat}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return dss[0], layouts
}

// startWorker runs a worker against the coordinator's URL until the
// returned cancel fires.
func startWorker(t *testing.T, url, name, traceDir string, exec ShardExecutor) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{
		Name:     name,
		Client:   NewClient(url, ""),
		Exec:     exec,
		IdlePoll: 20 * time.Millisecond,
		Logf:     t.Logf,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return cancel
}

// assertBitIdentical holds a distributed dataset to the single-node
// golden: every counter word equal as uint64, every sample equal under
// Float64bits, and the fitted mosmodel byte-identical in serialized state
// and in predictions.
func assertBitIdentical(t *testing.T, got, want *experiment.Dataset) {
	t.Helper()
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("distributed dataset has %d samples, single-node %d", len(got.Samples), len(want.Samples))
	}
	for i, s := range got.Samples {
		sw := want.Samples[i]
		if s.Layout != sw.Layout ||
			math.Float64bits(s.H) != math.Float64bits(sw.H) ||
			math.Float64bits(s.M) != math.Float64bits(sw.M) ||
			math.Float64bits(s.C) != math.Float64bits(sw.C) ||
			math.Float64bits(s.R) != math.Float64bits(sw.R) {
			t.Fatalf("sample %d differs: distributed %+v single-node %+v", i, s, sw)
		}
	}
	if got.Sample1G != want.Sample1G {
		t.Fatalf("1GB validation point differs: %+v vs %+v", got.Sample1G, want.Sample1G)
	}
	if len(got.Counters) != len(want.Counters) {
		t.Fatalf("counter maps differ in size: %d vs %d", len(got.Counters), len(want.Counters))
	}
	for name, c := range want.Counters {
		if got.Counters[name] != c { // struct of uint64: exact comparison
			t.Fatalf("counters for %s differ:\n got %+v\nwant %+v", name, got.Counters[name], c)
		}
	}
	if got.TLBSensitive != want.TLBSensitive {
		t.Fatalf("TLBSensitive: %v vs %v", got.TLBSensitive, want.TLBSensitive)
	}
	if len(got.Phases) != len(want.Phases) {
		t.Fatalf("phase maps differ in size: %d vs %d", len(got.Phases), len(want.Phases))
	}
	for name, rows := range want.Phases {
		grows := got.Phases[name]
		if len(grows) != len(rows) {
			t.Fatalf("phase rows for %s: %d vs %d", name, len(grows), len(rows))
		}
		for i := range rows {
			if grows[i] != rows[i] { // struct of string + uint64s: exact comparison
				t.Fatalf("phase %d of %s differs:\n got %+v\nwant %+v", i, name, grows[i], rows[i])
			}
		}
	}

	// Fitted coefficients: training is deterministic, so the serialized
	// model state (shortest-roundtrip float encoding is injective — byte
	// equality ⇔ Float64bits equality) and every prediction must match.
	gm, _, err := got.TrainModels([]string{"mosmodel"})
	if err != nil {
		t.Fatal(err)
	}
	wm, _, err := want.TrainModels([]string{"mosmodel"})
	if err != nil {
		t.Fatal(err)
	}
	gState, err := json.Marshal(gm["mosmodel"].Model)
	if err != nil {
		t.Fatal(err)
	}
	wState, err := json.Marshal(wm["mosmodel"].Model)
	if err != nil {
		t.Fatal(err)
	}
	if string(gState) != string(wState) {
		t.Fatalf("fitted mosmodel state differs:\n got %s\nwant %s", gState, wState)
	}
	for _, s := range want.Samples {
		gp := gm["mosmodel"].Model.Predict(s.H, s.M, s.C)
		wp := wm["mosmodel"].Model.Predict(s.H, s.M, s.C)
		if math.Float64bits(gp) != math.Float64bits(wp) {
			t.Fatalf("prediction for %s differs: %x vs %x", s.Layout, math.Float64bits(gp), math.Float64bits(wp))
		}
	}
}

// runDistributed submits the sweep and assembles the merged results into
// a dataset, cross-checking merge order against a local protocol plan.
func runDistributed(t *testing.T, c *Coordinator, layouts int, workload string) *experiment.Dataset {
	t.Helper()
	sweep, err := c.Submit(SweepSpec{
		Job:      "e2e",
		Workload: workload,
		Platform: e2ePlatform,
		Proto:    "quick",
		Layouts:  layouts,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	merged, err := sweep.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}

	w, _ := workloads.ByName(workload)
	plat, _ := arch.ByName(e2ePlatform)
	r := experiment.NewRunner()
	r.Proto = experiment.Quick
	wd, err := r.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	lays := r.ProtocolLayouts(wd, plat)
	if len(lays) != len(merged) {
		t.Fatalf("merged %d layouts, protocol plans %d", len(merged), len(lays))
	}
	res := make([]sim.Result, len(lays))
	for i, lr := range merged {
		if lr.Layout != lays[i].Name {
			t.Fatalf("merge order broken at %d: %q vs planned %q", i, lr.Layout, lays[i].Name)
		}
		res[i] = lr.Result
	}
	ds, err := experiment.Assemble(workload, e2ePlatform, lays, res)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestDistributedSweepBitIdentical is the tentpole golden: coordinator +
// two workers over HTTP produce a dataset bit-identical to single-node
// CollectAll.
func TestDistributedSweepBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline sweep")
	}
	traceDir := t.TempDir()
	want, layouts := singleNode(t, traceDir, e2eWorkload)

	c := NewCoordinator(CoordinatorConfig{LeaseTTL: 5 * time.Second, ShardLayouts: 3})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		startWorker(t, ts.URL, []string{"alpha", "beta"}[i], traceDir,
			&ExperimentExecutor{TraceDir: traceDir, Parallelism: 1})
	}

	got := runDistributed(t, c, layouts, e2eWorkload)
	assertBitIdentical(t, got, want)
}

// TestDistributedPhasedSweepBitIdentical extends the golden to multi-phase
// traces: a dbindex composite's per-phase attribution must survive the
// shard wire and merge bit-identically — every phase row of every layout
// equal as uint64 between fleet and single-node execution.
func TestDistributedPhasedSweepBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline sweep")
	}
	const phasedWorkload = "dbindex/btree-point-zipf"
	traceDir := t.TempDir()
	want, layouts := singleNode(t, traceDir, phasedWorkload)
	if want.Phases == nil {
		t.Fatal("single-node dbindex dataset carries no phase attribution")
	}

	c := NewCoordinator(CoordinatorConfig{LeaseTTL: 5 * time.Second, ShardLayouts: 3})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		startWorker(t, ts.URL, []string{"alpha", "beta"}[i], traceDir,
			&ExperimentExecutor{TraceDir: traceDir, Parallelism: 1})
	}

	got := runDistributed(t, c, layouts, phasedWorkload)
	assertBitIdentical(t, got, want)
}

// TestClusterTokenAuth holds the fleet trust boundary: a coordinator
// configured with a token rejects unauthenticated workers on every verb,
// and a tokenless coordinator stays open (the documented isolated-network
// mode).
func TestClusterTokenAuth(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Token: "s3cret"})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	if _, err := NewClient(ts.URL, "").Register("intruder", 1); err == nil {
		t.Fatal("register without token succeeded; want 401")
	}
	if _, err := NewClient(ts.URL, "wrong").Register("intruder", 1); err == nil {
		t.Fatal("register with wrong token succeeded; want 401")
	}
	if err := NewClient(ts.URL, "").Complete("w-000001", &ShardResult{Key: "x"}); err == nil {
		t.Fatal("complete without token succeeded; want 401")
	}
	if got := c.LiveWorkers(); got != 0 {
		t.Fatalf("unauthenticated registration landed: LiveWorkers = %d", got)
	}

	cl := NewClient(ts.URL, "s3cret")
	reply, err := cl.Register("worker", 1)
	if err != nil {
		t.Fatalf("register with token: %v", err)
	}
	if _, err := cl.Heartbeat(reply.WorkerID, "", 0); err != nil {
		t.Fatalf("heartbeat with token: %v", err)
	}
	if got := c.LiveWorkers(); got != 1 {
		t.Fatalf("LiveWorkers = %d, want 1", got)
	}

	open := NewCoordinator(CoordinatorConfig{})
	tsOpen := httptest.NewServer(open.Handler())
	defer tsOpen.Close()
	if _, err := NewClient(tsOpen.URL, "").Register("worker", 1); err != nil {
		t.Fatalf("tokenless coordinator rejected a worker: %v", err)
	}
}

// hangingExecutor signals when a shard starts, then blocks until its
// context dies — the worker-death stand-in: the shard never completes and
// never fails cleanly, exactly like a killed process.
type hangingExecutor struct {
	started chan string
}

func (h *hangingExecutor) ExecuteShard(ctx context.Context, spec *ShardSpec, onLayout func(int)) ([]LayoutResult, error) {
	select {
	case h.started <- spec.Key:
	case <-ctx.Done():
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestWorkerDeathMidShardRetry kills a worker mid-shard and proves the
// job still completes — on the surviving worker, after lease expiry —
// with results bit-identical to single-node.
func TestWorkerDeathMidShardRetry(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline sweep")
	}
	traceDir := t.TempDir()
	want, layouts := singleNode(t, traceDir, e2eWorkload)

	c := NewCoordinator(CoordinatorConfig{LeaseTTL: 400 * time.Millisecond, ShardLayouts: 2})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	// The doomed worker leases a shard and hangs.
	hang := &hangingExecutor{started: make(chan string, 1)}
	killDoomed := startWorker(t, ts.URL, "doomed", traceDir, hang)

	sweep, err := c.Submit(SweepSpec{
		Job:      "death",
		Workload: e2eWorkload,
		Platform: e2ePlatform,
		Proto:    "quick",
		Layouts:  layouts,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case key := <-hang.started:
		t.Logf("doomed worker leased %s; killing it", key)
	case <-time.After(10 * time.Second):
		t.Fatal("doomed worker never leased a shard")
	}
	killDoomed() // heartbeats stop; the lease must expire and retry

	// The survivor picks up the whole sweep, including the dead worker's
	// shard once its lease expires.
	startWorker(t, ts.URL, "survivor", traceDir,
		&ExperimentExecutor{TraceDir: traceDir, Parallelism: 1})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	merged, err := sweep.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ShardsRetried(); got < 1 {
		t.Fatalf("ShardsRetried = %d, want ≥ 1 (the killed worker's shard)", got)
	}

	w, _ := workloads.ByName(e2eWorkload)
	plat, _ := arch.ByName(e2ePlatform)
	r := experiment.NewRunner()
	r.Proto = experiment.Quick
	wd, err := r.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	lays := r.ProtocolLayouts(wd, plat)
	res := make([]sim.Result, len(lays))
	for i, lr := range merged {
		if lr.Layout != lays[i].Name {
			t.Fatalf("merge order broken at %d: %q vs planned %q", i, lr.Layout, lays[i].Name)
		}
		res[i] = lr.Result
	}
	got, err := experiment.Assemble(e2eWorkload, e2ePlatform, lays, res)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, got, want)
}
