package cluster

import (
	"math"
	"sync"
	"time"
)

// Saturation models fleet load for admission control. The serving layer
// feeds it one observation per finished job (the job's wall time); when
// the queue overflows, the 429 Retry-After hint is derived from the
// backlog instead of a constant:
//
//	retryAfter ≈ ceil(queued × meanJobSeconds / capacity)
//
// where capacity is the number of jobs the deployment drains
// concurrently — the local worker budget on a single node, or the fleet's
// live shard capacity when workers are registered. The estimate is the
// expected time for the backlog to drain one slot, which is exactly how
// long a client should wait before its retry has a fair chance to enter
// the queue.
//
// Observations live in a fixed ring so the model tracks the current
// workload mix (sweeps and adaptive jobs have very different wall times)
// rather than the all-time mean.
type Saturation struct {
	mu    sync.Mutex
	ring  [saturationWindow]float64 // seconds per job
	n     int                       // filled entries, ≤ len(ring)
	next  int                       // ring cursor
	total float64                   // running sum of filled entries
}

// saturationWindow is the observation ring size. 32 jobs is enough to
// smooth single-job variance while still forgetting a stale workload mix
// within minutes under load.
const saturationWindow = 32

// Observe records one finished job's wall time.
func (s *Saturation) Observe(d time.Duration) {
	sec := d.Seconds()
	if sec < 0 || math.IsNaN(sec) || math.IsInf(sec, 0) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == len(s.ring) {
		s.total -= s.ring[s.next]
	} else {
		s.n++
	}
	s.ring[s.next] = sec
	s.total += sec
	s.next = (s.next + 1) % len(s.ring)
}

// Observations reports how many samples the window currently holds.
func (s *Saturation) Observations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// MeanJobSeconds reports the windowed mean wall time, or 0 with ok=false
// before the first observation.
func (s *Saturation) MeanJobSeconds() (mean float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return 0, false
	}
	return s.total / float64(s.n), true
}

// RetryAfter derives the 429 hint for a client rejected with `queued`
// jobs ahead of it and `capacity` concurrent execution slots. Before any
// observation lands it returns fallback (the configured constant); the
// result is clamped to [1s, maxRetryAfter] so a pathological window never
// tells clients to go away for an hour or hammer sub-second.
func (s *Saturation) RetryAfter(queued, capacity int, fallback time.Duration) time.Duration {
	mean, ok := s.MeanJobSeconds()
	if !ok {
		if fallback < time.Second {
			fallback = time.Second
		}
		return fallback
	}
	if capacity < 1 {
		capacity = 1
	}
	if queued < 1 {
		queued = 1
	}
	sec := float64(queued) * mean / float64(capacity)
	d := time.Duration(math.Ceil(sec)) * time.Second
	if d < time.Second {
		d = time.Second
	}
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}

// maxRetryAfter caps the hint; beyond this a client should treat the
// deployment as down rather than politely waiting.
const maxRetryAfter = 5 * time.Minute
