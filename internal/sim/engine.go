// Package sim is the simulation-engine layer: it decomposes a replay into
// explicit stages — build the address space, acquire an engine, run the
// trace — and unifies the full timing machine (internal/cpu) and the
// partial simulator (internal/partialsim) behind one Engine interface with
// Reset(platform) + Run(trace) semantics.
//
// The layer exists for throughput. The paper's value proposition is that
// partial simulation plus a model is *fast* (§II-B), yet a naive
// measurement pipeline rebuilds the whole simulated world — process,
// Mosalloc pools, TLB/cache/walker arrays — for every one of the ~3,100
// replays in the 3-platform × 19-workload × 54-layout sweep. sim provides
// the three reusable pieces that remove that overhead:
//
//   - Engine / Pool: machines are Reset and reused instead of reallocated,
//     with the guarantee (tested) that a Reset engine replays
//     bit-identically to a fresh one;
//   - SpaceCache: the (workload, layout) address space is built once and
//     shared read-only across every platform replay that uses the same
//     layout configuration — translation state is immutable during replay;
//   - Scheduler: every (workload, platform, layout) job of a sweep flattens
//     into one bounded worker pool with per-stage timing counters and
//     progress/ETA reporting.
package sim

import (
	"mosaic/internal/arch"
	"mosaic/internal/cpu"
	"mosaic/internal/mem"
	"mosaic/internal/partialsim"
	"mosaic/internal/pmu"
	"mosaic/internal/trace"
)

// Result is the unified output of one replay. The full machine populates
// every counter; the partial simulator populates only the virtual-memory
// subset (H, M, C, TLBLookups) plus WalkRefs, leaving R zero — runtime is
// exactly what a partial simulation cannot produce (§I).
type Result struct {
	Counters pmu.Counters
	// WalkRefs is the number of page-table entry loads issued (reported by
	// the partial simulator; the full machine folds them into the walker
	// cache counters).
	WalkRefs uint64
	// MeasuredAccesses and TotalAccesses record the sampled-replay coverage
	// behind the counters: MeasuredAccesses were replayed at full fidelity,
	// and the counters are extrapolated whole-trace estimates whenever
	// MeasuredAccesses < TotalAccesses. Exact replay (sampling disabled)
	// leaves both zero, so existing exact results compare bit-identically.
	MeasuredAccesses uint64
	TotalAccesses    uint64
	// Phases attributes the counters to the trace's regimes, in trace
	// order, when the replayed trace carried phase markers (see phases.go).
	// Nil for single-regime traces and for warmup-reconstructed windowed
	// replay, which cannot place exact state at phase boundaries.
	Phases []PhaseResult
}

// Equal reports bit-exact equality of two results, including phase
// attribution. (The Phases slice makes Result non-comparable with ==; the
// golden bit-identity tests compare through this instead.)
func (r Result) Equal(o Result) bool {
	if r.Counters != o.Counters || r.WalkRefs != o.WalkRefs ||
		r.MeasuredAccesses != o.MeasuredAccesses || r.TotalAccesses != o.TotalAccesses ||
		len(r.Phases) != len(o.Phases) {
		return false
	}
	for i := range r.Phases {
		if r.Phases[i] != o.Phases[i] {
			return false
		}
	}
	return true
}

// Engine is one reusable simulator: the full timing machine or the partial
// simulator, re-targetable at a platform and address space between runs.
type Engine interface {
	// Platform returns the platform the engine currently models.
	Platform() arch.Platform
	// Reset re-targets the engine, restoring just-built state; a Reset
	// engine must replay bit-identically to a freshly constructed one.
	Reset(plat arch.Platform, space *mem.AddressSpace) error
	// Run replays a trace and returns the engine's counters.
	Run(tr *trace.Trace) (Result, error)
	// RunSampled replays a trace under a sampling config, extrapolating the
	// windowed counters to whole-trace estimates. A disabled config is
	// bit-identical to Run.
	RunSampled(tr *trace.Trace, s Sampling) (Result, error)
}

// Full wraps the full timing machine (internal/cpu) as an Engine.
type Full struct {
	m *cpu.Machine
}

// NewFull builds a full-machine engine.
func NewFull(plat arch.Platform, space *mem.AddressSpace) (*Full, error) {
	m, err := cpu.New(plat, space)
	if err != nil {
		return nil, err
	}
	return &Full{m: m}, nil
}

// Machine exposes the wrapped timing machine (for ablation knobs and tests).
func (f *Full) Machine() *cpu.Machine { return f.m }

// Platform implements Engine.
func (f *Full) Platform() arch.Platform { return f.m.Platform() }

// Reset implements Engine.
func (f *Full) Reset(plat arch.Platform, space *mem.AddressSpace) error {
	return f.m.Reset(plat, space)
}

// Run implements Engine. A multi-phase trace routes through the phased
// runner so the result carries per-phase attribution.
func (f *Full) Run(tr *trace.Trace) (Result, error) {
	if tr.Phases() != nil {
		return onePhased(f, tr, Sampling{})
	}
	ctr, err := f.m.Run(tr)
	return Result{Counters: ctr}, err
}

// RunSampled implements Engine.
func (f *Full) RunSampled(tr *trace.Trace, s Sampling) (Result, error) {
	if tr.Phases() != nil {
		return onePhased(f, tr, s)
	}
	if !s.Enabled() {
		return f.Run(tr)
	}
	ctr, pro, measured, err := f.m.RunSampled(tr, s.Plan())
	if err != nil {
		return Result{}, err
	}
	proMeasured := uint64(s.Plan().PrologueMeasured(tr.Len()))
	return s.extrapolate(Result{Counters: ctr}, Result{Counters: pro},
		proMeasured, measured, uint64(tr.Len())), nil
}

// Partial wraps the partial simulator (internal/partialsim) as an Engine.
type Partial struct {
	s *partialsim.Simulator
	// HighFidelity streams program data accesses through the cache model so
	// the walk-cycle count C matches the full machine exactly — the paper's
	// §VII-D "perfectly accurate partial simulator".
	HighFidelity bool
}

// NewPartial builds a partial-simulator engine.
func NewPartial(plat arch.Platform, space *mem.AddressSpace) (*Partial, error) {
	s, err := partialsim.New(plat, space)
	if err != nil {
		return nil, err
	}
	return &Partial{s: s}, nil
}

// Simulator exposes the wrapped partial simulator (for tests).
func (p *Partial) Simulator() *partialsim.Simulator { return p.s }

// Platform implements Engine.
func (p *Partial) Platform() arch.Platform { return p.s.Platform() }

// Reset implements Engine. HighFidelity is cleared, matching a fresh
// simulator; callers set it again before Run as needed.
func (p *Partial) Reset(plat arch.Platform, space *mem.AddressSpace) error {
	p.HighFidelity = false
	return p.s.Reset(plat, space)
}

// Run implements Engine. A multi-phase trace routes through the phased
// runner so the result carries per-phase attribution.
func (p *Partial) Run(tr *trace.Trace) (Result, error) {
	if tr.Phases() != nil {
		return onePhased(p, tr, Sampling{})
	}
	p.s.SimulateProgramCache = p.HighFidelity
	m, err := p.s.Run(tr)
	if err != nil {
		return Result{}, err
	}
	return metricsResult(m), nil
}

// RunSampled implements Engine.
func (p *Partial) RunSampled(tr *trace.Trace, s Sampling) (Result, error) {
	if tr.Phases() != nil {
		return onePhased(p, tr, s)
	}
	if !s.Enabled() {
		return p.Run(tr)
	}
	p.s.SimulateProgramCache = p.HighFidelity
	m, pro, measured, err := p.s.RunSampled(tr, s.Plan())
	if err != nil {
		return Result{}, err
	}
	proMeasured := uint64(s.Plan().PrologueMeasured(tr.Len()))
	return s.extrapolate(metricsResult(m), metricsResult(pro),
		proMeasured, measured, uint64(tr.Len())), nil
}

// metricsResult lifts the partial simulator's metrics into the unified
// result shape.
func metricsResult(m partialsim.Metrics) Result {
	return Result{
		Counters: pmu.Counters{H: m.H, M: m.M, C: m.C, TLBLookups: m.Lookups},
		WalkRefs: m.WalkRefs,
	}
}
