package sim

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/ckpt"
	"mosaic/internal/mem"
)

// windowedKeys builds one checkpoint key per engine for the test store.
func windowedKeys(n int, label string) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = label + "|" + string(rune('a'+i))
	}
	return keys
}

// TestWindowedExactGolden is the tentpole's golden test: exact windowed
// replay at K=8 must be bit-identical to K=1 (plain RunBatch) for both
// engine kinds, solo and fused, sampling on and off — and on a second,
// checkpoint-warm run too.
func TestWindowedExactGolden(t *testing.T) {
	forceFused(t)
	size := uint64(64 << 20)
	spaces := batchTestSpaces(t, size)
	tr := testTrace(21, size, 600000)

	for _, kind := range []string{"full", "partial", "partial-hifi"} {
		for _, s := range []Sampling{
			{},
			{Period: 65536, MeasureLen: 3072, WarmupLen: 8192, PrologueLen: 32768},
		} {
			label := kind + "/exact-plan"
			if s.Enabled() {
				label = kind + "/sampled-plan"
			}
			// Fused reference at K=1.
			want, err := RunBatch(sampledTestEngines(t, kind, spaces), tr, s)
			if err != nil {
				t.Fatal(err)
			}
			if want[0].Counters.M == 0 {
				t.Fatalf("%s: test trace should miss the TLB", label)
			}

			store := &ckpt.Store{Dir: t.TempDir()}
			w := Windowed{K: 8, Store: store, Keys: windowedKeys(len(spaces), label), Pool: &Pool{}}

			// Cold run: no checkpoints yet — one sequential segment that
			// must both reproduce the reference and populate the store.
			cold, err := RunBatchWindowed(sampledTestEngines(t, kind, spaces), tr, s, w)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !cold[i].Equal(want[i]) {
					t.Errorf("%s engine %d: cold windowed %+v, want %+v", label, i, cold[i], want[i])
				}
			}
			files, err := filepath.Glob(filepath.Join(store.Dir, "*.mosckpt"))
			if err != nil {
				t.Fatal(err)
			}
			if len(files) == 0 {
				t.Fatalf("%s: cold run saved no checkpoints", label)
			}

			// Warm run: every boundary restores from the store and the
			// segments replay in parallel.
			warm, err := RunBatchWindowed(sampledTestEngines(t, kind, spaces), tr, s, w)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !warm[i].Equal(want[i]) {
					t.Errorf("%s engine %d: warm windowed %+v, want %+v", label, i, warm[i], want[i])
				}
			}

			// Solo golden: a single-engine batch through the same path.
			soloWant, err := RunBatch(sampledTestEngines(t, kind, spaces[:1]), tr, s)
			if err != nil {
				t.Fatal(err)
			}
			sw := w
			sw.Keys = w.Keys[:1]
			solo, err := RunBatchWindowed(sampledTestEngines(t, kind, spaces[:1]), tr, s, sw)
			if err != nil {
				t.Fatal(err)
			}
			if !solo[0].Equal(soloWant[0]) {
				t.Errorf("%s solo: windowed %+v, want %+v", label, solo[0], soloWant[0])
			}
		}
	}
}

// TestWindowedPartialBoundaryCache: when only a subset of boundaries is
// cached, exact mode must still be bit-identical and must fill in the
// missing checkpoints.
func TestWindowedPartialBoundaryCache(t *testing.T) {
	forceFused(t)
	size := uint64(64 << 20)
	spaces := batchTestSpaces(t, size)
	tr := testTrace(22, size, 400000)

	want, err := RunBatch(sampledTestEngines(t, "full", spaces), tr, Sampling{})
	if err != nil {
		t.Fatal(err)
	}

	store := &ckpt.Store{Dir: t.TempDir()}
	w := Windowed{K: 6, Store: store, Keys: windowedKeys(len(spaces), "partial-cache"), Pool: &Pool{}}
	if _, err := RunBatchWindowed(sampledTestEngines(t, "full", spaces), tr, Sampling{}, w); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(store.Dir, "*.mosckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("need at least 2 boundary checkpoints, got %d", len(files))
	}
	// Knock out every other checkpoint file; the affected boundaries fall
	// back to in-segment replay and are re-saved.
	removed := 0
	for i, f := range files {
		if i%2 == 1 {
			if err := os.Remove(f); err != nil {
				t.Fatal(err)
			}
			removed++
		}
	}
	got, err := RunBatchWindowed(sampledTestEngines(t, "full", spaces), tr, Sampling{}, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("engine %d: partially-cached windowed %+v, want %+v", i, got[i], want[i])
		}
	}
	refilled, err := filepath.Glob(filepath.Join(store.Dir, "*.mosckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(refilled) != len(files) {
		t.Errorf("after regeneration: %d checkpoints, want %d (removed %d)", len(refilled), len(files), removed)
	}
}

// TestWindowedCrossProcessResume pins the acceptance criterion that a
// MOSCKPT01 checkpoint round-trips bit-identically "across a process
// restart": the resumed suffix replay must reach Float64bits-level equality
// with an uninterrupted run, with the checkpoint passing through the full
// encode → file → decode path (exactly what a second process would read).
func TestWindowedCrossProcessResume(t *testing.T) {
	size := uint64(32 << 20)
	space := buildTestSpace(t, size, mem.Page4K)
	tr := testTrace(23, size, 300000)

	want, err := RunBatch(sampledTestEngines(t, "full", []*mem.AddressSpace{space}), tr, Sampling{})
	if err != nil {
		t.Fatal(err)
	}

	store := &ckpt.Store{Dir: t.TempDir()}
	w := Windowed{K: 4, Store: store, Keys: []string{"resume"}, Pool: &Pool{}}
	if _, err := RunBatchWindowed(sampledTestEngines(t, "full", []*mem.AddressSpace{space}), tr, Sampling{}, w); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh engines, fresh pool, same store directory — resume
	// from the on-disk prefix state only.
	got, err := RunBatchWindowed(sampledTestEngines(t, "full", []*mem.AddressSpace{space}), tr, Sampling{}, Windowed{
		K: 4, Store: store, Keys: []string{"resume"}, Pool: &Pool{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Equal(want[0]) {
		t.Errorf("resumed %+v, uninterrupted %+v", got[0], want[0])
	}
	// R is uint64(st.now): equality above already implies Float64bits-level
	// agreement of the restored clock, but make the criterion explicit by
	// checking the raw counters word-for-word.
	if math.Float64bits(float64(got[0].Counters.R)) != math.Float64bits(float64(want[0].Counters.R)) {
		t.Errorf("R bits differ: %x vs %x", got[0].Counters.R, want[0].Counters.R)
	}
}

// TestWindowedWarmModeAccuracy: warmup-reconstructed mode is approximate by
// design. On the synthetic uniform-random trace — functional warmup's worst
// case, exactly as in TestSampledExtrapolationTracksExact — the headline
// counters must track exact replay loosely; the tight noise-envelope
// contract (max(1%, 8/√events)) is asserted on the bundled workloads by the
// top-level TestWindowedWarmReplayAccuracy.
func TestWindowedWarmModeAccuracy(t *testing.T) {
	size := uint64(64 << 20)
	space := buildTestSpace(t, size, mem.Page4K)
	tr := testTrace(24, size, 400000)

	exact, err := RunBatch(sampledTestEngines(t, "full", []*mem.AddressSpace{space}), tr, Sampling{})
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{2, 4} {
		got, err := RunBatchWindowed(sampledTestEngines(t, "full", []*mem.AddressSpace{space}), tr, Sampling{},
			Windowed{K: k, Warm: true, WarmLen: 1 << 16, Pool: &Pool{}})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []struct {
			name       string
			exact, got uint64
		}{
			{"R", exact[0].Counters.R, got[0].Counters.R},
			{"M", exact[0].Counters.M, got[0].Counters.M},
			{"C", exact[0].Counters.C, got[0].Counters.C},
			{"Instructions", exact[0].Counters.Instructions, got[0].Counters.Instructions},
			{"TLBLookups", exact[0].Counters.TLBLookups, got[0].Counters.TLBLookups},
		} {
			if c.exact == 0 {
				t.Fatalf("exact %s is zero", c.name)
			}
			// Loose synthetic-trace bounds, mirroring the sampled pipeline's
			// synthetic test: walk cycles (cache-warmth-bound) worst.
			bound := 0.10
			if c.name == "C" {
				bound = 0.15
			}
			rel := math.Abs(float64(c.got)-float64(c.exact)) / float64(c.exact)
			if rel > bound {
				t.Errorf("K=%d %s: warm-reconstructed %d vs exact %d (%.2f%% off, bound %.2f%%)",
					k, c.name, c.got, c.exact, 100*rel, 100*bound)
			}
		}
	}
}

// TestWindowedMixedKindsAndFallbacks: mixed-kind batches split and merge by
// index; K<2 and tiny traces fall back to RunBatch unchanged.
func TestWindowedMixedKindsAndFallbacks(t *testing.T) {
	forceFused(t)
	size := uint64(32 << 20)
	space := buildTestSpace(t, size, mem.Page4K)
	tr := testTrace(25, size, 300000)

	full, err := NewFull(arch.SandyBridge, space)
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewPartial(arch.SandyBridge, space)
	if err != nil {
		t.Fatal(err)
	}
	wantF, err := full.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	wantP, err := part.Run(tr)
	if err != nil {
		t.Fatal(err)
	}

	mixed := []Engine{
		newFullT(t, space),
		newPartialT(t, space),
	}
	got, err := RunBatchWindowed(mixed, tr, Sampling{}, Windowed{K: 4, Pool: &Pool{}})
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Equal(wantF) || !got[1].Equal(wantP) {
		t.Errorf("mixed windowed %+v/%+v, want %+v/%+v", got[0], got[1], wantF, wantP)
	}

	// K<2 falls back.
	solo, err := RunBatchWindowed([]Engine{newFullT(t, space)}, tr, Sampling{}, Windowed{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !solo[0].Equal(wantF) {
		t.Errorf("K=1 %+v, want %+v", solo[0], wantF)
	}

	// A trace below the chunking floor falls back too.
	tiny := testTrace(26, size, 2000)
	tinyWant, err := RunBatch([]Engine{newFullT(t, space)}, tiny, Sampling{})
	if err != nil {
		t.Fatal(err)
	}
	tinyGot, err := RunBatchWindowed([]Engine{newFullT(t, space)}, tiny, Sampling{}, Windowed{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !tinyGot[0].Equal(tinyWant[0]) {
		t.Errorf("tiny trace windowed %+v, want %+v", tinyGot[0], tinyWant[0])
	}
}

func newFullT(t *testing.T, space *mem.AddressSpace) Engine {
	t.Helper()
	e, err := NewFull(arch.SandyBridge, space)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func newPartialT(t *testing.T, space *mem.AddressSpace) Engine {
	t.Helper()
	e, err := NewPartial(arch.SandyBridge, space)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestWindowedSpaceRefs is the satellite-4 audit: windowed replay's engine
// clones share the job's address space without touching SpaceCache
// refcounts — the job holds the single per-job reference for the whole
// windowed call — so a sweep's cache never leaks or double-frees entries
// however many window workers run. The cache must drain to zero live
// entries after the jobs release their references, and engine clones must
// round-trip through the pool (no leaked engines holding spaces alive).
func TestWindowedSpaceRefs(t *testing.T) {
	cache := NewSpaceCache(testPhysMem)
	configs := []uint64{32 << 20, 64 << 20}
	tr := testTrace(27, 16<<20, 200000)

	pool := &Pool{}
	keys := make([]string, len(configs))
	for i, heap := range configs {
		keys[i] = cache.Register(testMosallocConfig(heap))
	}
	for i, heap := range configs {
		cfg := testMosallocConfig(heap)
		space, err := cache.Get(keys[i], cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := pool.Full(arch.SandyBridge, space)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunBatchWindowed([]Engine{eng}, tr, Sampling{},
			Windowed{K: 4, Warm: true, Pool: pool}); err != nil {
			t.Fatal(err)
		}
		pool.Put(eng)
		cache.Release(keys[i])
	}
	if live := cache.Live(); live != 0 {
		t.Errorf("space cache holds %d live entries after all releases, want 0", live)
	}
	if idle := pool.Idle(); idle < 1 {
		t.Errorf("pool retained %d idle engines; window-worker clones were not returned", idle)
	}
}

// TestWindowedStoreRejectsForeignKey: a checkpoint saved under one key must
// not satisfy a load for another (the store verifies the decoded key).
func TestWindowedStoreRejectsForeignKey(t *testing.T) {
	store := &ckpt.Store{Dir: t.TempDir()}
	size := uint64(16 << 20)
	space := buildTestSpace(t, size, mem.Page4K)
	eng, err := NewFull(arch.SandyBridge, space)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Machine().Snapshot()
	if err := store.Save("key-a", 100, st); err != nil {
		t.Fatal(err)
	}
	// Same path contents, wrong requested key: simulate a collision by
	// copying the file to key-b's path.
	data, err := os.ReadFile(store.Path("key-a", 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.Path("key-b", 100), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load("key-b", 100); err == nil || !strings.Contains(err.Error(), "key") {
		t.Errorf("foreign-key load error = %v, want key mismatch", err)
	}
	// Wrong position likewise.
	if err := os.Rename(store.Path("key-a", 100), store.Path("key-a", 200)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load("key-a", 200); err == nil || !strings.Contains(err.Error(), "position") {
		t.Errorf("stale-position load error = %v, want position mismatch", err)
	}
}
