package sim

import (
	"fmt"
	"slices"

	"mosaic/internal/ckpt"
	"mosaic/internal/cpu"
	"mosaic/internal/partialsim"
	"mosaic/internal/pmu"
	"mosaic/internal/trace"
)

// Phased replay: a multi-phase trace (trace.Phases) carries regime markers,
// and every replay entry point — Engine.Run/RunSampled, RunBatch,
// RunBatchWindowed — attributes counters to each phase and, under sampling,
// extrapolates within phase boundaries instead of across them.
//
// The mechanism is the segment kernels' save positions: RunBatchSegment
// snapshots every machine at each phase's prologue end and phase end, and
// because checkpoint state is cumulative, the field-wise difference of
// consecutive snapshots is exactly the phase's contribution. Replay runs
// under sampled (window-delta) stat accounting even for exact plans so the
// snapshots carry the component sums; with full coverage that accounting is
// bit-identical to exact counters, so an exact phased replay's headline
// result telescopes to the same counters a phase-blind replay produces.
//
// Under sampling, each phase is its own stratum set: the phased schedule
// (SamplePlan.PhasedWindows) restarts the plan inside every phase — no
// window spans a boundary, and each phase opens with its own exactly
// measured prologue — and the estimator scales each phase's windowed
// counters by that phase's own coverage. A phase transition inside a skip
// stretch therefore never leaks one regime's rates into another's estimate.

// PhaseResult is one phase's share of a replay: whole-phase counter
// estimates plus the sampled-replay coverage behind them (full coverage
// under exact replay).
type PhaseResult struct {
	Name     string
	Counters pmu.Counters
	// WalkRefs mirrors Result.WalkRefs for the partial simulator.
	WalkRefs uint64
	// MeasuredAccesses and TotalAccesses are the phase's sampling coverage;
	// the counters are extrapolated whenever MeasuredAccesses < TotalAccesses.
	MeasuredAccesses uint64
	TotalAccesses    uint64
}

// phaseMeta is the positional skeleton of one phase's schedule: the
// snapshot positions and coverage the per-phase estimator needs. Purely
// positional, so every engine of a batch shares one meta set.
type phaseMeta struct {
	ph trace.Phase
	// proHi is the end of the phase's first measurement window (the phase
	// prologue stratum); endHi is the end of the phase's last scheduled
	// window — the cumulative state there equals the state at the phase
	// boundary, because skipped accesses accumulate nothing.
	proHi, endHi int
	// proMeasured and measured count the prologue's and the whole phase's
	// accesses inside measurement windows.
	proMeasured, measured uint64
}

// phasedMeta computes each phase's snapshot positions under the plan's
// phased schedule, plus the ascending deduplicated position list to pass as
// the segment kernels' savePos.
func phasedMeta(plan trace.SamplePlan, phases []trace.Phase, n int) ([]phaseMeta, []int) {
	sched := plan.PhasedWindows(phases, n)
	metas := make([]phaseMeta, 0, len(phases))
	positions := make([]int, 0, 2*len(phases))
	for _, ph := range phases {
		ws := trace.PhaseWindows(sched, ph)
		pm := phaseMeta{ph: ph, endHi: ws[len(ws)-1].Hi}
		for _, w := range ws {
			if !w.Measure {
				continue
			}
			pm.measured += uint64(w.Len())
			if pm.proHi == 0 {
				pm.proHi = w.Hi
				pm.proMeasured = uint64(w.Len())
			}
		}
		metas = append(metas, pm)
		positions = append(positions, pm.proHi, pm.endHi)
	}
	slices.Sort(positions)
	return metas, slices.Compact(positions)
}

// subResult returns a - b field-wise over the extrapolated counter set.
// Snapshot state is cumulative, so consecutive-snapshot differences are
// phase contributions and telescope to the whole-trace totals.
func subResult(a, b Result) Result {
	d := counterPtrs(&a)
	s := counterPtrs(&b)
	for i := range d {
		*d[i] -= *s[i]
	}
	return a
}

// phaseLift converts a phase-boundary snapshot into the unified result
// shape for the given engine kind.
func phaseLift(e Engine) func(*ckpt.MachineState) Result {
	if _, ok := e.(*Partial); ok {
		return func(st *ckpt.MachineState) Result {
			return metricsResult(partialsim.StateMetrics(st))
		}
	}
	return func(st *ckpt.MachineState) Result {
		return Result{Counters: cpu.StateCounters(st)}
	}
}

// assemblePhased turns per-position snapshots into per-engine results with
// phase attribution: for each phase, the cumulative snapshots at its
// prologue end and phase end are differenced against the previous phase's
// end and extrapolated with the phase's own coverage; the headline result
// is the sum of the per-phase estimates. Under exact replay every phase is
// fully covered, extrapolation passes through, and the sum telescopes to
// the exact whole-trace counters bit-identically.
func assemblePhased(s Sampling, metas []phaseMeta, n, engines int,
	snaps map[int][]*ckpt.MachineState, lift func(*ckpt.MachineState) Result) ([]Result, error) {
	out := make([]Result, engines)
	for k := 0; k < engines; k++ {
		var prev, sum Result
		var measuredSum uint64
		phs := make([]PhaseResult, 0, len(metas))
		for _, pm := range metas {
			endSnaps, proSnaps := snaps[pm.endHi], snaps[pm.proHi]
			if endSnaps == nil || endSnaps[k] == nil || proSnaps == nil || proSnaps[k] == nil {
				return nil, fmt.Errorf("sim: phase %q boundary (%d, %d) was not snapshotted",
					pm.ph.Name, pm.proHi, pm.endHi)
			}
			end := lift(endSnaps[k])
			pr := s.extrapolate(subResult(end, prev), subResult(lift(proSnaps[k]), prev),
				pm.proMeasured, pm.measured, uint64(pm.ph.Len()))
			phs = append(phs, PhaseResult{
				Name:             pm.ph.Name,
				Counters:         pr.Counters,
				WalkRefs:         pr.WalkRefs,
				MeasuredAccesses: pr.MeasuredAccesses,
				TotalAccesses:    pr.TotalAccesses,
			})
			addCounters(&sum, pr)
			measuredSum += pm.measured
			prev = end
		}
		sum.Phases = phs
		if s.Enabled() {
			sum.MeasuredAccesses = measuredSum
			sum.TotalAccesses = uint64(n)
		}
		out[k] = sum
	}
	return out, nil
}

// snapsByPos indexes the segment kernels' saved snapshots by position.
func snapsByPos(positions []int, saved [][]*ckpt.MachineState) map[int][]*ckpt.MachineState {
	m := make(map[int][]*ckpt.MachineState, len(positions))
	for i, pos := range positions {
		if i < len(saved) {
			m[pos] = saved[i]
		}
	}
	return m
}

// onePhased is the single-engine phased entry point behind
// Engine.Run/RunSampled.
func onePhased(e Engine, tr *trace.Trace, s Sampling) (Result, error) {
	rs, err := runPhasedBatch([]Engine{e}, tr, s)
	if err != nil {
		return Result{}, err
	}
	return rs[0], nil
}

// runPhasedBatch replays a multi-phase trace through a batch of engines in
// one fused pass with phase attribution. The fused segment kernel IS the
// solo kernel (engines share no mutable state), so solo and fused — and by
// extension single-node and fleet-sharded — phased results are
// bit-identical by construction.
func runPhasedBatch(engines []Engine, tr *trace.Trace, s Sampling) ([]Result, error) {
	fullIdx, partIdx, ok := splitKinds(engines)
	if !ok {
		// External Engine implementations can't be driven through the
		// segment kernels; they replay phase-blind (no Phases attribution).
		return runSolo(engines, tr, s)
	}
	if len(fullIdx) > 0 && len(partIdx) > 0 {
		out := make([]Result, len(engines))
		for _, idx := range [][]int{fullIdx, partIdx} {
			sub := make([]Engine, len(idx))
			for j, i := range idx {
				sub[j] = engines[i]
			}
			rs, err := runPhasedBatch(sub, tr, s)
			if err != nil {
				return nil, err
			}
			for j, i := range idx {
				out[i] = rs[j]
			}
		}
		return out, nil
	}

	phases := tr.Phases()
	n := tr.Len()
	metas, positions := phasedMeta(s.Plan(), phases, n)
	windows := s.Plan().PhasedWindows(phases, n)

	var saved [][]*ckpt.MachineState
	var err error
	if len(partIdx) == 0 {
		ms := make([]*cpu.Machine, len(engines))
		for k, e := range engines {
			ms[k] = e.(*Full).Machine()
		}
		// sampled=true even for exact plans: the snapshots need the
		// window-delta component sums, and with full coverage that
		// accounting is bit-identical to exact counters.
		_, _, saved, _, err = cpu.RunBatchSegment(ms, tr, windows, nil, true, false, positions)
	} else {
		ss := make([]*partialsim.Simulator, len(engines))
		for k, e := range engines {
			p := e.(*Partial)
			p.s.SimulateProgramCache = p.HighFidelity
			ss[k] = p.s
		}
		_, _, saved, _, err = partialsim.RunBatchSegment(ss, tr, windows, nil, true, false, positions)
	}
	if err != nil {
		return nil, err
	}
	return assemblePhased(s, metas, n, len(engines), snapsByPos(positions, saved), phaseLift(engines[0]))
}
