package sim

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Stage labels one phase of the staged replay pipeline, for the timing
// counters and progress reports.
type Stage int

// Pipeline stages.
const (
	// StagePrepare is workload trace generation (once per workload).
	StagePrepare Stage = iota
	// StagePlan is per-(workload, platform) protocol planning: the
	// simulated-PEBS miss profile and layout generation.
	StagePlan
	// StageSpace is address-space construction (once per distinct layout
	// configuration).
	StageSpace
	// StageReplay is trace replay through an engine.
	StageReplay
	numStages
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StagePrepare:
		return "prepare"
	case StagePlan:
		return "plan"
	case StageSpace:
		return "space"
	case StageReplay:
		return "replay"
	}
	return "stage?"
}

// Timing accumulates wall time and completion counts per pipeline stage
// across concurrently running jobs. The zero value is ready to use.
type Timing struct {
	nanos [numStages]atomic.Int64
	count [numStages]atomic.Int64
}

// Observe records one completed unit of work in a stage.
func (t *Timing) Observe(s Stage, d time.Duration) {
	t.nanos[s].Add(int64(d))
	t.count[s].Add(1)
}

// Time wraps fn with an Observe of its duration.
//
//mosvet:timing stage wall-time accounting is presentation, not simulation state
func (t *Timing) Time(s Stage, fn func() error) error {
	start := time.Now()
	err := fn()
	t.Observe(s, time.Since(start))
	return err
}

// StageTime is one stage's aggregate timing.
type StageTime struct {
	Stage Stage
	// Total is the summed wall time across all (possibly concurrent) units.
	Total time.Duration
	// Count is the number of completed units.
	Count int64
}

// Snapshot returns the per-stage aggregates, in stage order.
func (t *Timing) Snapshot() []StageTime {
	out := make([]StageTime, 0, int(numStages))
	for s := Stage(0); s < numStages; s++ {
		out = append(out, StageTime{
			Stage: s,
			Total: time.Duration(t.nanos[s].Load()),
			Count: t.count[s].Load(),
		})
	}
	return out
}

// Progress is one scheduler progress report, delivered after each completed
// job.
type Progress struct {
	// Stage names the phase the scheduler is running.
	Stage string
	// Done and Total count jobs in this phase.
	Done, Total int
	// Label describes the most recently finished job.
	Label string
	// Workers is the effective worker-pool size.
	Workers int
	// Elapsed is the time since the phase started; ETA linearly
	// extrapolates the remaining time from the completion rate.
	Elapsed, ETA time.Duration
}

// Scheduler runs a flat job list on one bounded worker pool. It is the
// sweep-wide replacement for per-dataset semaphores: every job of every
// (workload, platform) pair competes for the same workers, so the pool
// stays saturated until the whole sweep drains.
type Scheduler struct {
	// Workers bounds concurrency (values < 1 mean 1).
	Workers int
	// Stage names the phase in progress reports.
	Stage string
	// OnProgress, when set, receives a report after each completed job.
	// Reports are delivered serially.
	OnProgress func(Progress)
	// Ctx, when non-nil, cancels the run: once it is done, workers stop
	// claiming new jobs — in-flight jobs finish, since a replay holds pooled
	// engine and space state that must be returned consistently — and Run
	// reports the context's error. A nil Ctx never cancels.
	Ctx context.Context
}

// Run executes jobs 0..n-1 via fn, at most Workers at a time, and returns
// the lowest-indexed error. All jobs are attempted regardless of failures,
// matching the drain-then-report behavior sweeps want (a failed layout
// must not abort the replays already in flight). A canceled Ctx stops the
// claim loop instead and surfaces the context's error.
//
//mosvet:timing elapsed/ETA progress reporting; never feeds counters
func (s *Scheduler) Run(n int, label func(int) string, fn func(int) error) error {
	workers := s.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var (
		next int64 = -1
		wg   sync.WaitGroup
		mu   sync.Mutex // serializes progress reports
		done int
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if s.Ctx != nil && s.Ctx.Err() != nil {
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
				if s.OnProgress != nil {
					mu.Lock()
					done++
					p := Progress{
						Stage:   s.Stage,
						Done:    done,
						Total:   n,
						Workers: workers,
						Elapsed: time.Since(start),
					}
					if label != nil {
						p.Label = label(i)
					}
					if done > 0 && done < n {
						p.ETA = time.Duration(float64(p.Elapsed) / float64(done) * float64(n-done))
					}
					s.OnProgress(p)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if s.Ctx != nil && s.Ctx.Err() != nil {
		return s.Ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
