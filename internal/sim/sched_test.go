package sim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestSchedulerCancellation: canceling the context must stop workers from
// claiming new jobs, let in-flight jobs finish, and surface ctx.Err().
func TestSchedulerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started, finished atomic.Int64
	release := make(chan struct{})
	s := Scheduler{Workers: 2, Stage: "test", Ctx: ctx}
	done := make(chan error, 1)
	go func() {
		done <- s.Run(100, nil, func(i int) error {
			started.Add(1)
			<-release
			finished.Add(1)
			return nil
		})
	}()
	// Let both workers pick up a job, then cancel while they block.
	for started.Load() < 2 {
	}
	cancel()
	close(release)
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if got := started.Load(); got > 4 {
		t.Fatalf("%d jobs claimed after cancellation, want the in-flight handful", got)
	}
	if started.Load() != finished.Load() {
		t.Fatalf("%d jobs started but %d finished: in-flight jobs must complete", started.Load(), finished.Load())
	}
}

// TestSchedulerNilCtxUnchanged: without a context the scheduler keeps its
// attempt-everything semantics, returning the lowest-indexed error.
func TestSchedulerNilCtxUnchanged(t *testing.T) {
	var ran atomic.Int64
	s := Scheduler{Workers: 4}
	errBoom := errors.New("boom")
	err := s.Run(50, nil, func(i int) error {
		ran.Add(1)
		if i == 3 || i == 17 {
			return errBoom
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("Run returned %v, want boom", err)
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d of 50 jobs; failures must not stop the drain", ran.Load())
	}
}
