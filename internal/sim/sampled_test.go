package sim

import (
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/mem"
	"mosaic/internal/trace"
)

// sampledTestEngines builds one engine per test space in the requested
// configuration: kind "full", "partial", or "partial-hifi".
func sampledTestEngines(t *testing.T, kind string, spaces []*mem.AddressSpace) []Engine {
	t.Helper()
	engines := make([]Engine, len(spaces))
	for i, space := range spaces {
		switch kind {
		case "full":
			eng, err := NewFull(arch.Broadwell, space)
			if err != nil {
				t.Fatal(err)
			}
			engines[i] = eng
		default:
			eng, err := NewPartial(arch.Broadwell, space)
			if err != nil {
				t.Fatal(err)
			}
			eng.HighFidelity = kind == "partial-hifi"
			engines[i] = eng
		}
	}
	return engines
}

// exactEqual compares the replay payload of two results — counters and walk
// refs — ignoring the sampled-coverage bookkeeping fields.
func exactEqual(a, b Result) bool {
	return a.Counters == b.Counters && a.WalkRefs == b.WalkRefs
}

// TestSampledDisabledIsExact: RunSampled with the zero config must be
// bit-identical to Run — including the zero bookkeeping fields — for both
// engine kinds and both partial-fidelity modes, solo and fused.
func TestSampledDisabledIsExact(t *testing.T) {
	forceFused(t)
	size := uint64(64 << 20)
	spaces := batchTestSpaces(t, size)
	tr := testTrace(11, size, 30000)

	for _, kind := range []string{"full", "partial", "partial-hifi"} {
		want := make([]Result, len(spaces))
		for i, e := range sampledTestEngines(t, kind, spaces) {
			var err error
			if want[i], err = e.Run(tr); err != nil {
				t.Fatal(err)
			}
		}

		for i, e := range sampledTestEngines(t, kind, spaces) {
			got, err := e.RunSampled(tr, Sampling{})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want[i]) {
				t.Errorf("%s engine %d: RunSampled(off) %+v, Run %+v", kind, i, got, want[i])
			}
		}

		got, err := RunBatch(sampledTestEngines(t, kind, spaces), tr, Sampling{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Errorf("%s engine %d: fused(off) %+v, Run %+v", kind, i, got[i], want[i])
			}
		}
	}
}

// TestSampledFullCoverageIsExact: a sampling config whose windows cover the
// whole trace (MeasureLen ≥ Period) must replay bit-identically to exact
// mode — warmups are clipped away and the merged window spans the trace —
// while still recording full coverage in the bookkeeping fields.
func TestSampledFullCoverageIsExact(t *testing.T) {
	forceFused(t)
	size := uint64(64 << 20)
	spaces := batchTestSpaces(t, size)
	tr := testTrace(12, size, 30000)
	cover := Sampling{Period: 1024, MeasureLen: 1024, WarmupLen: 256}

	for _, kind := range []string{"full", "partial", "partial-hifi"} {
		want := make([]Result, len(spaces))
		for i, e := range sampledTestEngines(t, kind, spaces) {
			var err error
			if want[i], err = e.Run(tr); err != nil {
				t.Fatal(err)
			}
		}
		if want[0].Counters.M == 0 {
			t.Fatal("test trace should miss the TLB, or the test proves nothing")
		}

		check := func(label string, got []Result) {
			t.Helper()
			for i := range want {
				if !exactEqual(got[i], want[i]) {
					t.Errorf("%s engine %d (%s): sampled %+v, exact %+v", kind, i, label, got[i], want[i])
				}
				if got[i].MeasuredAccesses != uint64(tr.Len()) || got[i].TotalAccesses != uint64(tr.Len()) {
					t.Errorf("%s engine %d (%s): coverage %d/%d, want %d/%d", kind, i, label,
						got[i].MeasuredAccesses, got[i].TotalAccesses, tr.Len(), tr.Len())
				}
			}
		}

		solo := make([]Result, len(spaces))
		for i, e := range sampledTestEngines(t, kind, spaces) {
			var err error
			if solo[i], err = e.RunSampled(tr, cover); err != nil {
				t.Fatal(err)
			}
		}
		check("solo", solo)

		fused, err := RunBatch(sampledTestEngines(t, kind, spaces), tr, cover)
		if err != nil {
			t.Fatal(err)
		}
		check("fused", fused)
	}
}

// TestSampledBatchMatchesSolo: under a real (partial-coverage) sampling
// config, the fused batch kernels must produce results bit-identical to
// running each engine's RunSampled alone — fusion and sampling compose.
func TestSampledBatchMatchesSolo(t *testing.T) {
	forceFused(t)
	size := uint64(64 << 20)
	spaces := batchTestSpaces(t, size)
	tr := testTrace(13, size, 30000)
	s := Sampling{Period: 2048, MeasureLen: 256, WarmupLen: 256}

	for _, kind := range []string{"full", "partial", "partial-hifi"} {
		want := make([]Result, len(spaces))
		for i, e := range sampledTestEngines(t, kind, spaces) {
			var err error
			if want[i], err = e.RunSampled(tr, s); err != nil {
				t.Fatal(err)
			}
		}
		if want[0].MeasuredAccesses == 0 || want[0].MeasuredAccesses >= want[0].TotalAccesses {
			t.Fatalf("config should sample a strict subset, got %d/%d",
				want[0].MeasuredAccesses, want[0].TotalAccesses)
		}

		got, err := RunBatch(sampledTestEngines(t, kind, spaces), tr, s)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Errorf("%s engine %d: fused %+v, solo %+v", kind, i, got[i], want[i])
			}
		}
	}
}

// TestSampledExtrapolationTracksExact is the estimator sanity check on the
// synthetic trace: extrapolated headline counters land near the exact ones.
// (The tight ≤1% bound on the bundled workloads is asserted by the
// top-level TestSampledReplayAccuracy; the synthetic random trace here has
// higher variance, so the tolerance is loose.)
func TestSampledExtrapolationTracksExact(t *testing.T) {
	size := uint64(64 << 20)
	space := buildTestSpace(t, size, mem.Page4K)
	tr := testTrace(14, size, 200000)
	s := Sampling{Period: 4096, MeasureLen: 1024, WarmupLen: 3072}

	fresh, err := NewFull(arch.Broadwell, space)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := fresh.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewFull(arch.Broadwell, space)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := eng.RunSampled(tr, s)
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range []struct {
		name           string
		exact, sampled uint64
	}{
		{"R", exact.Counters.R, sampled.Counters.R},
		{"M", exact.Counters.M, sampled.Counters.M},
		{"C", exact.Counters.C, sampled.Counters.C},
		{"Instructions", exact.Counters.Instructions, sampled.Counters.Instructions},
		{"TLBLookups", exact.Counters.TLBLookups, sampled.Counters.TLBLookups},
	} {
		if c.exact == 0 {
			t.Fatalf("exact %s is zero", c.name)
		}
		rel := (float64(c.sampled) - float64(c.exact)) / float64(c.exact)
		if rel < 0 {
			rel = -rel
		}
		tol := 0.10
		if c.name == "C" {
			// Walk latency depends on PWC/cache warmth, the state slowest to
			// converge under functional warmup; a uniform-random pointer
			// chase is its worst case.
			tol = 0.15
		}
		if rel > tol {
			t.Errorf("%s: sampled %d vs exact %d (%.1f%% off)", c.name, c.sampled, c.exact, 100*rel)
		}
	}
	if sampled.MeasuredAccesses == 0 || sampled.TotalAccesses != uint64(tr.Len()) {
		t.Errorf("coverage %d/%d", sampled.MeasuredAccesses, sampled.TotalAccesses)
	}
}

// TestPoolCapsIdleEngines: Put must retain at most MaxIdle engines per
// (kind, platform) bucket and drop the excess.
func TestPoolCapsIdleEngines(t *testing.T) {
	space := buildTestSpace(t, 1<<20, mem.Page4K)
	fill := func(p *Pool, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			eng, err := NewFull(arch.SandyBridge, space)
			if err != nil {
				t.Fatal(err)
			}
			p.Put(eng)
		}
	}

	var def Pool
	fill(&def, DefaultMaxIdle+5)
	if got := def.Idle(); got != DefaultMaxIdle {
		t.Errorf("default cap retained %d idle engines, want %d", got, DefaultMaxIdle)
	}

	small := Pool{MaxIdle: 2}
	fill(&small, 5)
	if got := small.Idle(); got != 2 {
		t.Errorf("MaxIdle=2 retained %d idle engines, want 2", got)
	}
	// Other buckets have their own budget.
	part, err := NewPartial(arch.SandyBridge, space)
	if err != nil {
		t.Fatal(err)
	}
	small.Put(part)
	if got := small.Idle(); got != 3 {
		t.Errorf("after partial Put: %d idle engines, want 3", got)
	}

	unbounded := Pool{MaxIdle: -1}
	fill(&unbounded, DefaultMaxIdle+9)
	if got := unbounded.Idle(); got != DefaultMaxIdle+9 {
		t.Errorf("unbounded pool retained %d idle engines, want %d", got, DefaultMaxIdle+9)
	}
}

// TestSampledTraceLenPlumbing pins the window iterator entry point the
// engines use: Columns.Windows must agree with the plan over the columns'
// own length.
func TestSampledTraceLenPlumbing(t *testing.T) {
	tr := testTrace(15, 1<<20, 5000)
	plan := trace.SamplePlan{Period: 1000, MeasureLen: 100, WarmupLen: 50}
	ws := tr.Columns().Windows(plan)
	if len(ws) == 0 || ws[len(ws)-1].Hi > tr.Len() {
		t.Fatalf("windows %v out of range for %d accesses", ws, tr.Len())
	}
	if got, want := plan.Measured(tr.Len()), 5*100; got != want {
		t.Errorf("Measured = %d, want %d", got, want)
	}
}
