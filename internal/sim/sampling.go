package sim

import (
	"fmt"

	"mosaic/internal/trace"
)

// Sampling configures systematic interval sampling (SMARTS-style) as a
// first-class fidelity mode of the replay stack: an exactly-measured
// prologue of PrologueLen accesses, then a measurement window of MeasureLen
// accesses at the start of every Period accesses, each preceded by
// WarmupLen accesses of functional warmup (model state advances, no cycle
// accounting), with everything in between skipped. The zero value means
// exact replay — every access measured, bit-identical to the pre-sampling
// pipeline.
//
// Windowed counters are extrapolated to whole-trace estimates with a
// stratified estimator: the prologue stratum — where compulsory misses
// cluster and per-access costs are far from the steady state — is taken
// as-is, and only the periodic windows' counts are scaled up to cover the
// remainder of the trace. Result records the coverage so downstream
// consumers can tell estimates from exact measurements. The schedule is
// purely positional (trace.SamplePlan), so sampling composes with the fused
// multi-layout kernels: every engine of a batch measures the same windows.
type Sampling struct {
	// Period is the distance between measurement-window starts, in
	// accesses. Zero or negative disables sampling.
	Period int
	// MeasureLen is the measured accesses per window (values < 1 act as 1;
	// values >= Period measure the whole trace, which must be — and is
	// tested to be — bit-identical to exact replay).
	MeasureLen int
	// WarmupLen is the functional-warmup accesses replayed immediately
	// before each measurement window. It bounds the staleness bias: a
	// window access whose TLB entry, PWC line, or page-table cache line was
	// last touched in skipped territory pays a cold-state cost exact replay
	// would not, and the bias decays only as the warmup grows to cover the
	// workload's reuse distances.
	WarmupLen int
	// PrologueLen stretches the first measurement window so the opening
	// accesses — the compulsory-miss transient — are measured exactly and
	// kept out of the extrapolation (the prologue stratum).
	PrologueLen int
}

// DefaultSampling is the sweep default when sampling is requested without
// explicit parameters: an exact 32K-access prologue, then 3K-access windows
// every 64K accesses, each behind 8K accesses of functional warmup. On the
// bundled workloads at sweep-scale trace lengths (millions of accesses)
// this replays ~17% of the trace for a 5-7× replay-stage speedup, with
// every statistically resolvable counter within 1% of exact replay (see
// docs/engine.md, "Sampled replay", for the accuracy contract).
var DefaultSampling = Sampling{Period: 65536, MeasureLen: 3072, WarmupLen: 8192, PrologueLen: 32768}

// Enabled reports whether the config actually samples.
func (s Sampling) Enabled() bool { return s.Period > 0 }

// Key renders the plan as a compact stable string ("p<period>-m<measure>-
// w<warmup>-q<prologue>") for cache keys that must distinguish fidelities:
// checkpoint-stream keys, shard specs, result caches. Distinct configs
// yield distinct keys; the zero (exact) config is "p0-m0-w0-q0".
func (s Sampling) Key() string {
	return fmt.Sprintf("p%d-m%d-w%d-q%d", s.Period, s.MeasureLen, s.WarmupLen, s.PrologueLen)
}

// Plan converts the config to the positional schedule the replay kernels
// iterate.
func (s Sampling) Plan() trace.SamplePlan {
	return trace.SamplePlan{
		Period:      s.Period,
		MeasureLen:  s.MeasureLen,
		WarmupLen:   s.WarmupLen,
		PrologueLen: s.PrologueLen,
	}
}

// scaleCounter extrapolates one windowed counter by the inverse measured
// fraction, rounding to nearest. float64 is exact for every plausible
// counter magnitude (< 2^53) and keeps the scaling deterministic.
func scaleCounter(v uint64, f float64) uint64 {
	if v == 0 {
		return 0
	}
	return uint64(float64(v)*f + 0.5)
}

// counterPtrs lists the extrapolated fields of a result — the full PMU
// counter set plus the partial simulator's WalkRefs — in a fixed order so
// the stratified estimator can walk a result and its prologue stratum in
// lockstep.
func counterPtrs(r *Result) [15]*uint64 {
	c := &r.Counters
	return [15]*uint64{
		&c.R, &c.H, &c.M, &c.C, &c.Instructions,
		&c.L1DLoadsProgram, &c.L1DLoadsWalker,
		&c.L2LoadsProgram, &c.L2LoadsWalker,
		&c.L3LoadsProgram, &c.L3LoadsWalker,
		&c.DRAMLoadsProgram, &c.DRAMLoadsWalker,
		&c.TLBLookups, &r.WalkRefs,
	}
}

// extrapolate turns a windowed result into a whole-trace estimate and
// records the coverage. pro is the prologue stratum — the counters as of
// the end of the first measurement window, which spans proMeasured accesses.
//
// The estimator is stratified: the prologue's counts are exact and kept
// as-is; each remaining counter's tail (final minus prologue) is scaled by
// the tail's inverse coverage (total-proMeasured)/(measured-proMeasured).
// This keeps the front-loaded transient — compulsory misses, cold-cache
// walk latencies — out of the scale-up entirely; layouts whose rare events
// all land inside the prologue (huge pages' handful of compulsory TLB
// misses) are reproduced exactly.
//
// Degenerate cases pass counters through unchanged or fall back to global
// scaling: measured == 0 (empty trace) and full coverage are untouched —
// full coverage must stay bit-identical to exact replay — and a schedule
// with no periodic windows beyond the prologue scales globally.
func (s Sampling) extrapolate(res, pro Result, proMeasured, measured, total uint64) Result {
	res.MeasuredAccesses = measured
	res.TotalAccesses = total
	if measured == 0 || measured >= total {
		return res
	}
	tailMeasured := measured - proMeasured
	tailTotal := total - proMeasured
	dst := counterPtrs(&res)
	if proMeasured == 0 || tailMeasured == 0 {
		f := float64(total) / float64(measured)
		for _, v := range dst {
			*v = scaleCounter(*v, f)
		}
		return res
	}
	f := float64(tailTotal) / float64(tailMeasured)
	src := counterPtrs(&pro)
	for i, v := range dst {
		base := *src[i]
		*v = base + scaleCounter(*v-base, f)
	}
	return res
}
