package sim

import (
	"mosaic/internal/cpu"
	"mosaic/internal/partialsim"
	"mosaic/internal/trace"
)

// FuseMinBytes gates the fused kernels by trace size. Fusing a batch means
// every engine's model state (TLB, caches, translator — roughly a megabyte
// each) is re-streamed at each block switch; that only pays off when the
// alternative — re-streaming the whole trace once per engine — is more
// expensive, i.e. when the trace's columns dwarf the last-level cache.
// Below the threshold each engine replays the (cache-resident) trace alone.
// Tests lower this to force the fused path on small fixtures.
var FuseMinBytes = 64 << 20

// RunBatch replays one trace through several engines — one per layout of a
// sweep's protocol — under a shared sampling config (the zero Sampling is
// exact replay). Large traces (≥ FuseMinBytes) replay in a single fused
// pass over the trace blocks (see cpu.RunBatch); small ones, and batches
// mixing engine kinds, fall back to running each engine alone. Results are
// bit-identical either way: engines share no mutable state, fusion only
// re-orders which engine touches which trace block first, and the window
// schedule is purely positional, so every engine of a fused batch measures
// the same windows a solo run would.
func RunBatch(engines []Engine, tr *trace.Trace, s Sampling) ([]Result, error) {
	if tr.Phases() != nil {
		// Multi-phase traces always run the phased segment kernel — it is
		// fused by construction, and size gating would only change which
		// machine touches a block first, not the result.
		return runPhasedBatch(engines, tr, s)
	}
	if len(engines) == 1 || tr.Columns().Bytes() < FuseMinBytes {
		return runSolo(engines, tr, s)
	}

	fulls := make([]*cpu.Machine, 0, len(engines))
	for _, e := range engines {
		f, ok := e.(*Full)
		if !ok {
			fulls = nil
			break
		}
		fulls = append(fulls, f.Machine())
	}
	if len(fulls) == len(engines) {
		ctrs, pros, measured, err := cpu.RunBatch(fulls, tr, s.Plan())
		if err != nil {
			return nil, err
		}
		proMeasured := uint64(s.Plan().PrologueMeasured(tr.Len()))
		out := make([]Result, len(ctrs))
		for i, c := range ctrs {
			out[i] = Result{Counters: c}
			if s.Enabled() {
				out[i] = s.extrapolate(out[i], Result{Counters: pros[i]},
					proMeasured, measured, uint64(tr.Len()))
			}
		}
		return out, nil
	}

	partials := make([]*partialsim.Simulator, 0, len(engines))
	for _, e := range engines {
		p, ok := e.(*Partial)
		if !ok {
			partials = nil
			break
		}
		p.s.SimulateProgramCache = p.HighFidelity
		partials = append(partials, p.s)
	}
	if len(partials) == len(engines) {
		ms, pros, measured, err := partialsim.RunBatch(partials, tr, s.Plan())
		if err != nil {
			return nil, err
		}
		proMeasured := uint64(s.Plan().PrologueMeasured(tr.Len()))
		out := make([]Result, len(ms))
		for i, m := range ms {
			out[i] = metricsResult(m)
			if s.Enabled() {
				out[i] = s.extrapolate(out[i], metricsResult(pros[i]),
					proMeasured, measured, uint64(tr.Len()))
			}
		}
		return out, nil
	}

	return runSolo(engines, tr, s)
}

// runSolo replays each engine alone — the small-trace and mixed-kind path.
func runSolo(engines []Engine, tr *trace.Trace, s Sampling) ([]Result, error) {
	out := make([]Result, len(engines))
	for i, e := range engines {
		res, err := e.RunSampled(tr, s)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// BatchSpan picks how many layouts one replay job should fuse: enough to
// amortize the trace pass across the batch, but never so many that the
// sweep's job list shrinks below ~2 jobs per worker — a fully fused pair is
// worthless if it leaves workers idle. The span is capped at 16 because the
// fused kernel's win flattens once the batch's combined TLB/cache state no
// longer fits beside the trace block.
func BatchSpan(jobs, workers int) int {
	if workers < 1 {
		workers = 1
	}
	span := jobs / (2 * workers)
	if span < 1 {
		return 1
	}
	if span > 16 {
		return 16
	}
	return span
}
