package sim

import (
	"mosaic/internal/cpu"
	"mosaic/internal/partialsim"
	"mosaic/internal/pmu"
	"mosaic/internal/trace"
)

// FuseMinBytes gates the fused kernels by trace size. Fusing a batch means
// every engine's model state (TLB, caches, translator — roughly a megabyte
// each) is re-streamed at each block switch; that only pays off when the
// alternative — re-streaming the whole trace once per engine — is more
// expensive, i.e. when the trace's columns dwarf the last-level cache.
// Below the threshold each engine replays the (cache-resident) trace alone.
// Tests lower this to force the fused path on small fixtures.
var FuseMinBytes = 64 << 20

// RunBatch replays one trace through several engines — one per layout of a
// sweep's protocol. Large traces (≥ FuseMinBytes) replay in a single fused
// pass over the trace blocks (see cpu.RunBatch); small ones, and batches
// mixing engine kinds, fall back to running each engine alone. Results are
// bit-identical either way: engines share no mutable state, and fusion
// only re-orders which engine touches which trace block first.
func RunBatch(engines []Engine, tr *trace.Trace) ([]Result, error) {
	if len(engines) == 1 || tr.Columns().Bytes() < FuseMinBytes {
		out := make([]Result, len(engines))
		for i, e := range engines {
			res, err := e.Run(tr)
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}

	fulls := make([]*cpu.Machine, 0, len(engines))
	for _, e := range engines {
		f, ok := e.(*Full)
		if !ok {
			fulls = nil
			break
		}
		fulls = append(fulls, f.Machine())
	}
	if len(fulls) == len(engines) {
		ctrs, err := cpu.RunBatch(fulls, tr)
		if err != nil {
			return nil, err
		}
		out := make([]Result, len(ctrs))
		for i, c := range ctrs {
			out[i] = Result{Counters: c}
		}
		return out, nil
	}

	partials := make([]*partialsim.Simulator, 0, len(engines))
	for _, e := range engines {
		p, ok := e.(*Partial)
		if !ok {
			partials = nil
			break
		}
		p.s.SimulateProgramCache = p.HighFidelity
		partials = append(partials, p.s)
	}
	if len(partials) == len(engines) {
		ms, err := partialsim.RunBatch(partials, tr)
		if err != nil {
			return nil, err
		}
		out := make([]Result, len(ms))
		for i, m := range ms {
			out[i] = Result{
				Counters: pmu.Counters{H: m.H, M: m.M, C: m.C, TLBLookups: m.Lookups},
				WalkRefs: m.WalkRefs,
			}
		}
		return out, nil
	}

	out := make([]Result, len(engines))
	for i, e := range engines {
		res, err := e.Run(tr)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// BatchSpan picks how many layouts one replay job should fuse: enough to
// amortize the trace pass across the batch, but never so many that the
// sweep's job list shrinks below ~2 jobs per worker — a fully fused pair is
// worthless if it leaves workers idle. The span is capped at 16 because the
// fused kernel's win flattens once the batch's combined TLB/cache state no
// longer fits beside the trace block.
func BatchSpan(jobs, workers int) int {
	if workers < 1 {
		workers = 1
	}
	span := jobs / (2 * workers)
	if span < 1 {
		return 1
	}
	if span > 16 {
		return 16
	}
	return span
}
