package sim

import (
	"fmt"
	"sync"

	"mosaic/internal/ckpt"
	"mosaic/internal/cpu"
	"mosaic/internal/partialsim"
	"mosaic/internal/pmu"
	"mosaic/internal/trace"
)

// DefaultWarmLen is the functional-warmup run-in before each window of a
// warmup-reconstructed (Windowed.Warm) replay. It matches the order of the
// sampling pipeline's warmup lengths: long enough to cover typical TLB/PWC
// reuse distances, short enough that K workers' warmups stay a small
// fraction of the trace.
const DefaultWarmLen = 1 << 16

// Windowed configures parallel windowed replay: the trace's replay schedule
// is split into K contiguous chunks (trace.WindowPlan) and the chunks are
// replayed concurrently, each worker on its own engines.
//
// Two fidelity modes:
//
//   - Exact (Warm == false, the default). A chunk boundary can only be
//     crossed with the exact machine state at that position, so workers run
//     *segments*: the first segment starts at position 0 on the caller's
//     engines, and every other segment starts at a boundary whose MOSCKPT01
//     checkpoint (all engines of the batch) was found in Store. Checkpoints
//     carry cumulative clock and accumulator state, so the last segment's
//     harvest is the whole-trace answer — bit-identical to unwindowed
//     replay by construction, whatever subset of boundaries was cached.
//     Segments snapshot the boundaries they run through and save them to
//     Store, so a cold run (one sequential segment — plain fused replay
//     plus snapshot cost) makes every later run of the same sweep parallel.
//
//   - Warmup-reconstructed (Warm == true). All K chunks replay concurrently
//     on freshly reset engines, each behind WarmLen accesses of functional
//     warmup into its boundary (the sampling pipeline's warmRange), and the
//     per-chunk counter deltas are summed. No checkpoints, no sequential
//     cold run — but chunk-boundary state is reconstructed, not exact, so
//     results inherit sampling's noise-envelope accuracy contract instead
//     of bit-identity.
//
// Engines cloned for non-first workers come from Pool and share the
// caller's address spaces directly: a clone takes no SpaceCache reference
// of its own — the caller's job holds the space reference for the whole
// RunBatchWindowed call, and every clone is returned to Pool before it
// returns, so per-engine refcounting never goes through the cache (see
// TestWindowedSpaceRefs).
type Windowed struct {
	// K is the target chunk count; values < 2 disable windowing.
	K int
	// Warm selects warmup-reconstructed mode (approximate, checkpoint-free).
	Warm bool
	// WarmLen is the warmup run-in per chunk in Warm mode; values < 1 mean
	// DefaultWarmLen.
	WarmLen int
	// Store, when non-nil, is the checkpoint cache exact mode loads
	// boundary states from and saves them to. Requires Keys.
	Store *ckpt.Store
	// Keys identifies each engine's checkpoint stream — one per engine,
	// encoding everything state depends on (trace, platform, layout
	// configuration, engine kind, fidelity, sampling plan). Positions are
	// deliberately excluded: checkpoints are shared across K values.
	Keys []string
	// Pool supplies per-worker engine clones; nil builds throwaway engines.
	Pool *Pool
	// Workers bounds concurrent window workers; values < 1 mean one per
	// segment. Callers embedding windowed replay inside a scheduler share
	// the scheduler's budget by setting this (see internal/experiment).
	Workers int
}

// Enabled reports whether the config actually windows.
func (w Windowed) Enabled() bool { return w.K > 1 }

// segment is one worker's contiguous share of the replay schedule.
type segment struct {
	first   bool // starts at trace position 0 on the caller's engines
	windows []trace.Window
	seeds   []*ckpt.MachineState // nil for cold (position-0) segments
	savePos []int                // positions to snapshot, ascending
	// persist flags which savePos entries are chunk boundaries to write to
	// the checkpoint store; phase-attribution snapshots stay segment-local
	// (they would be rewritten on every warm run otherwise). nil means all.
	persist []bool
}

// addSavePos inserts a snapshot position, keeping savePos ascending and
// deduplicated; a position serving both a chunk boundary and a phase
// boundary keeps its persist flag.
func (g *segment) addSavePos(pos int, persist bool) {
	i := 0
	for i < len(g.savePos) && g.savePos[i] < pos {
		i++
	}
	if i < len(g.savePos) && g.savePos[i] == pos {
		if persist {
			g.persist[i] = true
		}
		return
	}
	g.savePos = append(g.savePos, 0)
	copy(g.savePos[i+1:], g.savePos[i:])
	g.savePos[i] = pos
	g.persist = append(g.persist, false)
	copy(g.persist[i+1:], g.persist[i:])
	g.persist[i] = persist
}

// segOut is one segment's harvest, in unified Result form.
type segOut struct {
	ctrs     []Result
	pro      []Result
	saved    [][]*ckpt.MachineState
	measured uint64
}

// RunBatchWindowed is RunBatch with parallel windowed replay. A disabled
// config, a trace too small to chunk, or an engine set the segment kernels
// cannot fuse falls back to RunBatch — results are identical either way
// (bit-identical in exact mode).
func RunBatchWindowed(engines []Engine, tr *trace.Trace, s Sampling, w Windowed) ([]Result, error) {
	if !w.Enabled() || len(engines) == 0 {
		return RunBatch(engines, tr, s)
	}
	// Multi-phase traces chunk over the phased schedule so no chunk window
	// ever spans a phase boundary; under an exact plan the phased schedule
	// covers the same accesses and the cut positions are identical to the
	// phase-blind even split.
	var chunks []trace.Chunk
	if phases := tr.Phases(); phases != nil {
		chunks = trace.WindowPlan{Windows: w.K}.ChunksFor(
			s.Plan().PhasedWindows(phases, tr.Len()), !s.Enabled())
	} else {
		chunks = trace.WindowPlan{Windows: w.K}.Chunks(s.Plan(), tr.Len())
	}
	if len(chunks) < 2 {
		return RunBatch(engines, tr, s)
	}

	// The segment kernels fuse one engine kind; split mixed batches into
	// homogeneous sub-batches and merge by original index.
	fullIdx, partIdx, ok := splitKinds(engines)
	if !ok {
		return RunBatch(engines, tr, s)
	}
	if len(fullIdx) > 0 && len(partIdx) > 0 {
		out := make([]Result, len(engines))
		for _, idx := range [][]int{fullIdx, partIdx} {
			sub := make([]Engine, len(idx))
			sw := w
			if len(w.Keys) == len(engines) {
				sw.Keys = make([]string, len(idx))
			} else {
				sw.Keys = nil
			}
			for j, i := range idx {
				sub[j] = engines[i]
				if sw.Keys != nil {
					sw.Keys[j] = w.Keys[i]
				}
			}
			rs, err := RunBatchWindowed(sub, tr, s, sw)
			if err != nil {
				return nil, err
			}
			for j, i := range idx {
				out[i] = rs[j]
			}
		}
		return out, nil
	}

	if w.Warm {
		return runWindowedWarm(engines, tr, s, w, chunks)
	}
	return runWindowedExact(engines, tr, s, w, chunks)
}

// splitKinds classifies a batch; ok is false when an engine is neither
// *Full nor *Partial (an external Engine implementation the segment
// kernels cannot drive).
func splitKinds(engines []Engine) (fullIdx, partIdx []int, ok bool) {
	for i, e := range engines {
		switch e.(type) {
		case *Full:
			fullIdx = append(fullIdx, i)
		case *Partial:
			partIdx = append(partIdx, i)
		default:
			return nil, nil, false
		}
	}
	return fullIdx, partIdx, true
}

// runWindowedExact is exact mode: segments between cached boundaries, the
// last segment's cumulative harvest as the answer, missing boundaries
// snapshotted and saved for the next run.
func runWindowedExact(engines []Engine, tr *trace.Trace, s Sampling, w Windowed, chunks []trace.Chunk) ([]Result, error) {
	useStore := w.Store != nil && len(w.Keys) == len(engines)

	// A boundary is usable only when every engine of the batch has a valid
	// checkpoint there — a partial set would split the batch's fusion.
	// Unreadable files (truncated, stale, colliding) count as misses and
	// are regenerated, mirroring the trace cache.
	seeds := make([][]*ckpt.MachineState, len(chunks))
	if useStore {
		for ci := 1; ci < len(chunks); ci++ {
			ss := make([]*ckpt.MachineState, len(engines))
			ok := true
			for k := range engines {
				st, err := w.Store.Load(w.Keys[k], chunks[ci].Pos)
				if err != nil || st == nil {
					ok = false
					break
				}
				ss[k] = st
			}
			if ok {
				seeds[ci] = ss
			}
		}
	}

	var segs []segment
	cur := segment{first: true, windows: append([]trace.Window(nil), chunks[0].Windows...)}
	for ci := 1; ci < len(chunks); ci++ {
		if seeds[ci] != nil {
			segs = append(segs, cur)
			cur = segment{seeds: seeds[ci]}
		} else if useStore {
			cur.addSavePos(chunks[ci].Pos, true)
		}
		cur.windows = append(cur.windows, chunks[ci].Windows...)
	}
	segs = append(segs, cur)

	// A multi-phase trace needs every engine snapshotted at each phase's
	// prologue end and phase end; route each position into the segment
	// whose window range covers it. A position that collides with a chunk
	// boundary shares the boundary's snapshot.
	phases := tr.Phases()
	var metas []phaseMeta
	if phases != nil {
		var positions []int
		metas, positions = phasedMeta(s.Plan(), phases, tr.Len())
		for _, pos := range positions {
			for si := range segs {
				ws := segs[si].windows
				if len(ws) > 0 && pos > ws[0].Lo && pos <= ws[len(ws)-1].Hi {
					segs[si].addSavePos(pos, false)
					break
				}
			}
		}
	}

	outs, err := runSegments(engines, tr, s, w, segs)
	if err != nil {
		return nil, err
	}

	// Persist the chunk boundaries the segments ran through.
	if useStore {
		for si, seg := range segs {
			for j, pos := range seg.savePos {
				if !seg.persist[j] {
					continue
				}
				snaps := outs[si].saved[j]
				if snaps == nil {
					continue
				}
				for k := range engines {
					if err := w.Store.Save(w.Keys[k], pos, snaps[k]); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	if phases != nil {
		// Assemble per-phase attribution from the snapshots (a seeded
		// segment's seed checkpoint is the cumulative state at its start
		// position, covering phase boundaries that coincide with cached
		// chunk boundaries).
		snaps := make(map[int][]*ckpt.MachineState)
		for si, seg := range segs {
			if seg.seeds != nil && len(seg.windows) > 0 {
				snaps[seg.windows[0].Lo] = seg.seeds
			}
			for j, pos := range seg.savePos {
				if outs[si].saved != nil && outs[si].saved[j] != nil {
					snaps[pos] = outs[si].saved[j]
				}
			}
		}
		return assemblePhased(s, metas, tr.Len(), len(engines), snaps, phaseLift(engines[0]))
	}

	// Checkpoints are cumulative, so the last segment's harvest is the
	// whole-trace totals; earlier segments exist to parallelize and to
	// fill missing checkpoints.
	final := outs[len(outs)-1].ctrs
	if s.Enabled() {
		var measured uint64
		for _, o := range outs {
			measured += o.measured
		}
		pro := outs[0].pro
		proMeasured := uint64(s.Plan().PrologueMeasured(tr.Len()))
		for i := range final {
			final[i] = s.extrapolate(final[i], pro[i], proMeasured, measured, uint64(tr.Len()))
		}
	}
	return final, nil
}

// runWindowedWarm is warmup-reconstructed mode: every chunk replays
// concurrently behind a private functional-warmup run-in, and the
// per-chunk counter deltas are summed.
func runWindowedWarm(engines []Engine, tr *trace.Trace, s Sampling, w Windowed, chunks []trace.Chunk) ([]Result, error) {
	warmLen := w.WarmLen
	if warmLen < 1 {
		warmLen = DefaultWarmLen
	}
	segs := make([]segment, len(chunks))
	for ci, c := range chunks {
		seg := segment{first: ci == 0}
		if ci > 0 {
			lo := c.Pos - warmLen
			if lo < 0 {
				lo = 0
			}
			if lo < c.Pos {
				seg.windows = append(seg.windows, trace.Window{Lo: lo, Hi: c.Pos})
			}
		}
		seg.windows = append(seg.windows, c.Windows...)
		segs[ci] = seg
	}

	outs, err := runSegments(engines, tr, s, w, segs)
	if err != nil {
		return nil, err
	}

	sum := make([]Result, len(engines))
	var measured uint64
	for _, o := range outs {
		measured += o.measured
		for i := range sum {
			addCounters(&sum[i], o.ctrs[i])
		}
	}
	if s.Enabled() {
		pro := outs[0].pro
		// For a phased trace the schedule's first measurement window is
		// phase 0's prologue; warm mode replays the phased schedule (so
		// coverage matches) but extrapolates globally and leaves
		// Result.Phases nil — reconstructed boundary state cannot place
		// exact counters at phase boundaries, and warm mode's contract is
		// the sampling noise envelope, not bit-identity.
		proMeasured := uint64(s.Plan().PrologueMeasured(tr.Len()))
		if phases := tr.Phases(); phases != nil {
			for _, ww := range s.Plan().PhasedWindows(phases, tr.Len()) {
				if ww.Measure {
					proMeasured = uint64(ww.Len())
					break
				}
			}
		}
		for i := range sum {
			sum[i] = s.extrapolate(sum[i], pro[i], proMeasured, measured, uint64(tr.Len()))
		}
	}
	return sum, nil
}

// addCounters accumulates src's counters into dst field-wise.
func addCounters(dst *Result, src Result) {
	d := counterPtrs(dst)
	s := counterPtrs(&src)
	for i := range d {
		*d[i] += *s[i]
	}
}

// runSegments replays the segments concurrently, bounded by w.Workers. The
// first segment runs on the caller's engines; every other worker clones
// its engines from w.Pool (sharing the caller's address spaces — no
// SpaceCache traffic) and returns them before finishing.
func runSegments(engines []Engine, tr *trace.Trace, s Sampling, w Windowed, segs []segment) ([]segOut, error) {
	workers := w.Workers
	if workers < 1 || workers > len(segs) {
		workers = len(segs)
	}
	// The warm path forces window-delta stat accounting even for exact
	// plans: a seeded-from-zero chunk must keep its private warmup run-in
	// out of the component counters. Phased traces force it too — their
	// phase-boundary snapshots need the component sums, and with full
	// coverage the accounting is bit-identical to exact counters.
	sampled := s.Enabled() || w.Warm || tr.Phases() != nil

	outs := make([]segOut, len(segs))
	errs := make([]error, len(segs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for si := range segs {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outs[si], errs[si] = runOneSegment(engines, tr, s, w, segs[si], sampled)
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// runOneSegment drives the kind-specific segment kernel for one worker.
func runOneSegment(engines []Engine, tr *trace.Trace, s Sampling, w Windowed, seg segment, sampled bool) (segOut, error) {
	wantPro := seg.first && s.Enabled()
	switch engines[0].(type) {
	case *Full:
		ms := make([]*cpu.Machine, len(engines))
		var clones []Engine
		for k, e := range engines {
			f := e.(*Full)
			if seg.first {
				ms[k] = f.Machine()
				continue
			}
			cf, err := cloneFull(w.Pool, f)
			if err != nil {
				releaseClones(w.Pool, clones)
				return segOut{}, err
			}
			clones = append(clones, cf)
			ms[k] = cf.Machine()
		}
		ctrs, pro, saved, measured, err := cpu.RunBatchSegment(ms, tr, seg.windows, seg.seeds, sampled, wantPro, seg.savePos)
		releaseClones(w.Pool, clones)
		if err != nil {
			return segOut{}, err
		}
		return segOut{ctrs: liftCounters(ctrs), pro: liftCounters(pro), saved: saved, measured: measured}, nil
	case *Partial:
		ss := make([]*partialsim.Simulator, len(engines))
		var clones []Engine
		for k, e := range engines {
			p := e.(*Partial)
			if seg.first {
				p.s.SimulateProgramCache = p.HighFidelity
				ss[k] = p.s
				continue
			}
			cp, err := clonePartial(w.Pool, p)
			if err != nil {
				releaseClones(w.Pool, clones)
				return segOut{}, err
			}
			clones = append(clones, cp)
			ss[k] = cp.s
		}
		ms, pro, saved, measured, err := partialsim.RunBatchSegment(ss, tr, seg.windows, seg.seeds, sampled, wantPro, seg.savePos)
		releaseClones(w.Pool, clones)
		if err != nil {
			return segOut{}, err
		}
		return segOut{ctrs: liftMetrics(ms), pro: liftMetrics(pro), saved: saved, measured: measured}, nil
	}
	return segOut{}, fmt.Errorf("sim: unsupported engine kind in windowed replay")
}

// cloneFull acquires a worker-private full engine matching the original's
// platform and address space.
func cloneFull(pool *Pool, f *Full) (*Full, error) {
	if pool == nil {
		return NewFull(f.Platform(), f.Machine().Space())
	}
	return pool.Full(f.Platform(), f.Machine().Space())
}

// clonePartial acquires a worker-private partial engine matching the
// original's platform, address space, and fidelity.
func clonePartial(pool *Pool, p *Partial) (*Partial, error) {
	var cp *Partial
	var err error
	if pool == nil {
		cp, err = NewPartial(p.Platform(), p.s.Space())
	} else {
		cp, err = pool.Partial(p.Platform(), p.s.Space())
	}
	if err != nil {
		return nil, err
	}
	cp.HighFidelity = p.HighFidelity
	cp.s.SimulateProgramCache = p.HighFidelity
	return cp, nil
}

// releaseClones returns worker-private engines to the pool.
func releaseClones(pool *Pool, clones []Engine) {
	if pool == nil {
		return
	}
	for _, e := range clones {
		pool.Put(e)
	}
}

// liftCounters wraps raw PMU counters in the unified result shape.
func liftCounters(cs []pmu.Counters) []Result {
	if cs == nil {
		return nil
	}
	out := make([]Result, len(cs))
	for i, c := range cs {
		out[i] = Result{Counters: c}
	}
	return out
}

// liftMetrics wraps partial-simulator metrics in the unified result shape.
func liftMetrics(ms []partialsim.Metrics) []Result {
	if ms == nil {
		return nil
	}
	out := make([]Result, len(ms))
	for i, m := range ms {
		out[i] = metricsResult(m)
	}
	return out
}
