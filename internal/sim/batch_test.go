package sim

import (
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/mem"
)

// batchTestSpaces builds one space per layout of a small "protocol": the
// same window backed by 4KB, 2MB, and 1GB pages — exactly the shape the
// fused replay stage batches.
func batchTestSpaces(t *testing.T, size uint64) []*mem.AddressSpace {
	t.Helper()
	return []*mem.AddressSpace{
		buildTestSpace(t, size, mem.Page4K),
		buildTestSpace(t, size, mem.Page2M),
		buildTestSpace(t, size, mem.Page1G),
		buildTestSpace(t, size, mem.Page4K),
	}
}

// TestFullBatchMatchesUnfused is the fused kernel's golden test: RunBatch
// over N full machines must produce counters bit-identical to replaying the
// trace through each machine alone.
// forceFused drops the trace-size gate so small test fixtures exercise the
// fused kernels rather than the sequential fallback.
func forceFused(t *testing.T) {
	t.Helper()
	old := FuseMinBytes
	FuseMinBytes = 0
	t.Cleanup(func() { FuseMinBytes = old })
}

func TestFullBatchMatchesUnfused(t *testing.T) {
	forceFused(t)
	size := uint64(64 << 20)
	spaces := batchTestSpaces(t, size)
	tr := testTrace(4, size, 30000)

	want := make([]Result, len(spaces))
	for i, space := range spaces {
		eng, err := NewFull(arch.Broadwell, space)
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = eng.Run(tr); err != nil {
			t.Fatal(err)
		}
	}
	if want[0].Counters.M == 0 || want[0].Counters.C == 0 {
		t.Fatal("test trace should miss the TLB and spend walk cycles")
	}
	if want[0].Counters == want[1].Counters {
		t.Fatal("layouts should produce distinct counters, or the test proves nothing")
	}

	engines := make([]Engine, len(spaces))
	for i, space := range spaces {
		eng, err := NewFull(arch.Broadwell, space)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
	}
	got, err := RunBatch(engines, tr, Sampling{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("engine %d: fused %+v, unfused %+v", i, got[i], want[i])
		}
	}
}

// TestPartialBatchMatchesUnfused covers the partial simulator's fused path
// in both fidelity modes, including a batch mixing the two — each simulator
// must honor its own SimulateProgramCache setting.
func TestPartialBatchMatchesUnfused(t *testing.T) {
	forceFused(t)
	size := uint64(64 << 20)
	spaces := batchTestSpaces(t, size)
	tr := testTrace(5, size, 30000)

	for _, fidelities := range [][]bool{
		{false, false, false, false},
		{true, true, true, true},
		{true, false, true, false},
	} {
		want := make([]Result, len(spaces))
		for i, space := range spaces {
			eng, err := NewPartial(arch.Skylake, space)
			if err != nil {
				t.Fatal(err)
			}
			eng.HighFidelity = fidelities[i]
			if want[i], err = eng.Run(tr); err != nil {
				t.Fatal(err)
			}
		}

		engines := make([]Engine, len(spaces))
		for i, space := range spaces {
			eng, err := NewPartial(arch.Skylake, space)
			if err != nil {
				t.Fatal(err)
			}
			eng.HighFidelity = fidelities[i]
			engines[i] = eng
		}
		got, err := RunBatch(engines, tr, Sampling{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Errorf("fidelities %v, engine %d: fused %+v, unfused %+v",
					fidelities, i, got[i], want[i])
			}
		}
	}
}

// TestMixedBatchFallsBack: a batch mixing engine kinds must still return
// every engine's own counters (via the sequential fallback).
func TestMixedBatchFallsBack(t *testing.T) {
	forceFused(t)
	size := uint64(32 << 20)
	space := buildTestSpace(t, size, mem.Page4K)
	tr := testTrace(6, size, 10000)

	full, err := NewFull(arch.SandyBridge, space)
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewPartial(arch.SandyBridge, space)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunBatch([]Engine{full, part}, tr, Sampling{})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Counters.R == 0 {
		t.Error("full engine should report runtime")
	}
	if got[1].Counters.R != 0 || got[1].Counters.M == 0 {
		t.Errorf("partial engine result %+v", got[1])
	}
}

func TestBatchSpan(t *testing.T) {
	for _, tc := range []struct {
		jobs, workers, want int
	}{
		{60, 1, 16},   // one worker: fuse hard, capped at 16
		{60, 8, 3},    // keep ≥2 jobs per worker
		{10, 8, 1},    // fewer jobs than 2×workers: no fusion
		{0, 4, 1},     // no jobs: degenerate but safe
		{1000, 4, 16}, // cap
	} {
		if got := BatchSpan(tc.jobs, tc.workers); got != tc.want {
			t.Errorf("BatchSpan(%d, %d) = %d, want %d", tc.jobs, tc.workers, got, tc.want)
		}
	}
}
