package sim

import (
	"sync"

	"mosaic/internal/arch"
	"mosaic/internal/mem"
)

// Kind distinguishes the two engine families a Pool manages.
type Kind int

// Engine kinds.
const (
	// KindFull is the full timing machine (internal/cpu).
	KindFull Kind = iota
	// KindPartial is the partial simulator (internal/partialsim).
	KindPartial
)

// String names the kind.
func (k Kind) String() string {
	if k == KindPartial {
		return "partial"
	}
	return "full"
}

type poolKey struct {
	kind Kind
	plat string
}

// DefaultMaxIdle bounds the idle engines a Pool retains per (kind,
// platform). 16 matches the BatchSpan cap, so a fused batch's worth of
// engines always round-trips through the pool intact; anything beyond that
// is a leak in the making — each engine pins ~1MB of TLB/cache arrays, and
// a sweep burst that briefly Put back hundreds of engines would otherwise
// hold that memory for the rest of the process.
const DefaultMaxIdle = 16

// Pool recycles engines across replays. Engines are keyed by (kind,
// platform name): a Get for a platform that has an idle engine Resets and
// returns it — reusing its set-associative TLB/cache arrays — instead of
// allocating a new machine. The zero Pool is ready to use.
type Pool struct {
	mu   sync.Mutex
	free map[poolKey][]Engine
	// MaxIdle caps the idle engines retained per (kind, platform); Put drops
	// engines beyond the cap. Zero means DefaultMaxIdle; negative means
	// unbounded. Set before concurrent use.
	MaxIdle int
}

// Get returns an engine of the given kind, Reset to (plat, space). It
// reuses an idle pooled engine when one exists for the platform and builds
// a fresh one otherwise.
func (p *Pool) Get(kind Kind, plat arch.Platform, space *mem.AddressSpace) (Engine, error) {
	key := poolKey{kind: kind, plat: plat.Name}
	p.mu.Lock()
	var e Engine
	if list := p.free[key]; len(list) > 0 {
		e = list[len(list)-1]
		p.free[key] = list[:len(list)-1]
	}
	p.mu.Unlock()
	if e != nil {
		if err := e.Reset(plat, space); err != nil {
			return nil, err
		}
		return e, nil
	}
	switch kind {
	case KindPartial:
		return NewPartial(plat, space)
	default:
		return NewFull(plat, space)
	}
}

// Full is Get(KindFull, ...) with a concrete return type.
func (p *Pool) Full(plat arch.Platform, space *mem.AddressSpace) (*Full, error) {
	e, err := p.Get(KindFull, plat, space)
	if err != nil {
		return nil, err
	}
	return e.(*Full), nil
}

// Partial is Get(KindPartial, ...) with a concrete return type.
func (p *Pool) Partial(plat arch.Platform, space *mem.AddressSpace) (*Partial, error) {
	e, err := p.Get(KindPartial, plat, space)
	if err != nil {
		return nil, err
	}
	return e.(*Partial), nil
}

// Put returns an engine to the pool for reuse. The engine must not be used
// by the caller afterwards. When the engine's (kind, platform) bucket is
// already at MaxIdle idle engines, the engine is dropped for the GC to
// reclaim instead of retained.
func (p *Pool) Put(e Engine) {
	if e == nil {
		return
	}
	kind := KindFull
	if _, ok := e.(*Partial); ok {
		kind = KindPartial
	}
	key := poolKey{kind: kind, plat: e.Platform().Name}
	p.mu.Lock()
	defer p.mu.Unlock()
	max := p.MaxIdle
	if max == 0 {
		max = DefaultMaxIdle
	}
	if max > 0 && len(p.free[key]) >= max {
		return
	}
	if p.free == nil {
		p.free = make(map[poolKey][]Engine)
	}
	p.free[key] = append(p.free[key], e)
}

// Idle reports the number of pooled idle engines (for tests and stats).
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, list := range p.free {
		n += len(list)
	}
	return n
}
