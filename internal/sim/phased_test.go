package sim

import (
	"math/rand"
	"testing"

	"mosaic/internal/ckpt"
	"mosaic/internal/mem"
	"mosaic/internal/trace"
)

// phasedSimTrace builds a three-regime trace over the test region: a
// sequential store-heavy build, a random pointer-chasing probe, and a
// strided scan — the dbindex shape, compact enough for engine tests.
func phasedSimTrace(seed int64, size uint64, n int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder("sim-phased", n)
	b.BeginPhase("build")
	for b.Len() < n/3 {
		b.Compute(4)
		b.Store(testRegion + mem.Addr(b.Len()*64)%mem.Addr(size))
	}
	b.BeginPhase("probe")
	for b.Len() < 2*n/3 {
		b.Compute(2)
		b.LoadDep(testRegion + mem.Addr(rng.Uint64()%size))
	}
	b.BeginPhase("scan")
	stride := 0
	for b.Len() < n {
		b.Compute(1)
		b.Load(testRegion + mem.Addr(stride)%mem.Addr(size))
		stride += 4096
	}
	return b.Trace()
}

// stripPhases clones a phased trace's columns into a phase-less trace with
// identical accesses.
func stripPhases(t *testing.T, tr *trace.Trace) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder(tr.Name, tr.Len())
	for _, a := range tr.Columns().Rows() {
		b.Compute(uint64(a.Gap))
		switch {
		case a.Write && a.Dep:
			b.StoreDep(a.VA)
		case a.Write:
			b.Store(a.VA)
		case a.Dep:
			b.LoadDep(a.VA)
		default:
			b.Load(a.VA)
		}
	}
	return b.Trace()
}

// sumPhases telescopes a result's phase attributions over the full
// extrapolated counter set.
func sumPhases(r Result) (c Result, measured, total uint64) {
	for _, ph := range r.Phases {
		addCounters(&c, Result{Counters: ph.Counters, WalkRefs: ph.WalkRefs})
		measured += ph.MeasuredAccesses
		total += ph.TotalAccesses
	}
	return c, measured, total
}

// TestPhasedExactMatchesPhaseBlind: an exact replay of a phased trace must
// produce headline counters bit-identical to the same accesses replayed
// phase-less — attribution is free — and the phase rows must partition the
// headline exactly.
func TestPhasedExactMatchesPhaseBlind(t *testing.T) {
	size := uint64(64 << 20)
	tr := phasedSimTrace(31, size, 150000)
	plain := stripPhases(t, tr)

	for _, kind := range []string{"full", "partial", "partial-hifi"} {
		space := buildTestSpace(t, size, mem.Page4K)
		want, err := sampledTestEngines(t, kind, []*mem.AddressSpace{space})[0].Run(plain)
		if err != nil {
			t.Fatal(err)
		}
		if want.Counters.M == 0 {
			t.Fatalf("%s: test trace should miss the TLB", kind)
		}
		got, err := sampledTestEngines(t, kind, []*mem.AddressSpace{space})[0].Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		if got.Counters != want.Counters || got.WalkRefs != want.WalkRefs {
			t.Errorf("%s: phased exact %+v, phase-blind %+v", kind, got.Counters, want.Counters)
		}
		if len(got.Phases) != 3 {
			t.Fatalf("%s: phases = %+v, want 3 rows", kind, got.Phases)
		}
		sum, measured, total := sumPhases(got)
		if sum.Counters != got.Counters || sum.WalkRefs != got.WalkRefs {
			t.Errorf("%s: phase rows sum to %+v, headline %+v", kind, sum.Counters, got.Counters)
		}
		if measured != uint64(tr.Len()) || total != uint64(tr.Len()) {
			t.Errorf("%s: exact phases cover %d/%d, want full %d", kind, measured, total, tr.Len())
		}
		// Regimes must be distinguishable in the attribution: the probe
		// phase (random dependent loads) misses the TLB far more than the
		// sequential build phase.
		var rows [3]PhaseResult
		copy(rows[:], got.Phases)
		if rows[1].Counters.M <= rows[0].Counters.M {
			t.Errorf("%s: probe phase M=%d not above build phase M=%d",
				kind, rows[1].Counters.M, rows[0].Counters.M)
		}
	}
}

// TestPhasedFullCoverageSampledIsExact: a sampling plan with full coverage
// must reproduce the exact phased result bit-identically, per phase.
func TestPhasedFullCoverageSampledIsExact(t *testing.T) {
	size := uint64(64 << 20)
	tr := phasedSimTrace(32, size, 120000)
	full := Sampling{Period: 4096, MeasureLen: 4096, PrologueLen: 8192}

	for _, kind := range []string{"full", "partial"} {
		space := buildTestSpace(t, size, mem.Page4K)
		exact, err := sampledTestEngines(t, kind, []*mem.AddressSpace{space})[0].Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sampledTestEngines(t, kind, []*mem.AddressSpace{space})[0].RunSampled(tr, full)
		if err != nil {
			t.Fatal(err)
		}
		if got.Counters != exact.Counters || got.WalkRefs != exact.WalkRefs {
			t.Errorf("%s: full-coverage sampled %+v, exact %+v", kind, got.Counters, exact.Counters)
		}
		if got.MeasuredAccesses != uint64(tr.Len()) || got.TotalAccesses != uint64(tr.Len()) {
			t.Errorf("%s: coverage %d/%d, want full", kind, got.MeasuredAccesses, got.TotalAccesses)
		}
		for i, ph := range got.Phases {
			if ph.Counters != exact.Phases[i].Counters {
				t.Errorf("%s phase %q: full-coverage %+v, exact %+v",
					kind, ph.Name, ph.Counters, exact.Phases[i].Counters)
			}
		}
	}
}

// TestPhasedFusedMatchesSolo: the fused phased batch must be bit-identical
// to each engine replaying alone — including the phase rows — sampling on
// and off. This is the bit-identity the cluster fabric's solo-vs-fleet
// contract inherits on phased traces.
func TestPhasedFusedMatchesSolo(t *testing.T) {
	forceFused(t)
	size := uint64(64 << 20)
	spaces := batchTestSpaces(t, size)
	tr := phasedSimTrace(33, size, 150000)

	for _, kind := range []string{"full", "partial", "partial-hifi"} {
		for _, s := range []Sampling{
			{},
			{Period: 16384, MeasureLen: 1024, WarmupLen: 2048, PrologueLen: 8192},
		} {
			batch, err := RunBatch(sampledTestEngines(t, kind, spaces), tr, s)
			if err != nil {
				t.Fatal(err)
			}
			for i := range spaces {
				solo, err := sampledTestEngines(t, kind, spaces[i:i+1])[0].RunSampled(tr, s)
				if err != nil {
					t.Fatal(err)
				}
				if !batch[i].Equal(solo) {
					t.Errorf("%s sampled=%v engine %d: fused %+v, solo %+v",
						kind, s.Enabled(), i, batch[i], solo)
				}
			}
			if len(batch[0].Phases) != 3 {
				t.Fatalf("%s: batch result carries %d phases, want 3", kind, len(batch[0].Phases))
			}
		}
	}
}

// TestPhasedSampledEstimatesPerPhase: under real (partial-coverage)
// sampling each phase's estimate must stay within a loose envelope of that
// phase's exact counters — the sim-layer smoke check behind the root
// accuracy contract — and regime contrast must survive extrapolation.
func TestPhasedSampledEstimatesPerPhase(t *testing.T) {
	size := uint64(64 << 20)
	tr := phasedSimTrace(34, size, 600000)
	s := Sampling{Period: 16384, MeasureLen: 1536, WarmupLen: 4096, PrologueLen: 8192}

	space := buildTestSpace(t, size, mem.Page4K)
	exact, err := sampledTestEngines(t, "full", []*mem.AddressSpace{space})[0].Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sampledTestEngines(t, "full", []*mem.AddressSpace{space})[0].RunSampled(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	if got.MeasuredAccesses == 0 || got.MeasuredAccesses >= got.TotalAccesses {
		t.Fatalf("sampling did not engage: %d/%d", got.MeasuredAccesses, got.TotalAccesses)
	}
	for i, ph := range got.Phases {
		ex := exact.Phases[i]
		if ph.TotalAccesses == 0 || ph.MeasuredAccesses >= ph.TotalAccesses {
			t.Fatalf("phase %q: sampling did not engage (%d/%d)",
				ph.Name, ph.MeasuredAccesses, ph.TotalAccesses)
		}
		for _, c := range []struct {
			name       string
			got, exact uint64
		}{
			{"M", ph.Counters.M, ex.Counters.M},
			{"TLBLookups", ph.Counters.TLBLookups, ex.Counters.TLBLookups},
			{"Instructions", ph.Counters.Instructions, ex.Counters.Instructions},
		} {
			if c.exact == 0 {
				continue
			}
			rel := float64(c.got) - float64(c.exact)
			if rel < 0 {
				rel = -rel
			}
			if rel/float64(c.exact) > 0.15 {
				t.Errorf("phase %q %s: sampled %d vs exact %d (>15%% off)",
					ph.Name, c.name, c.got, c.exact)
			}
		}
	}
}

// TestPhasedWindowedGolden: windowed phased replay — cold, warm-from-store,
// and solo — must be bit-identical to the unwindowed phased batch, phase
// rows included; warmup-reconstructed mode stays phase-less by contract.
func TestPhasedWindowedGolden(t *testing.T) {
	forceFused(t)
	size := uint64(64 << 20)
	spaces := batchTestSpaces(t, size)
	tr := phasedSimTrace(35, size, 600000)

	for _, kind := range []string{"full", "partial"} {
		for _, s := range []Sampling{
			{},
			{Period: 65536, MeasureLen: 3072, WarmupLen: 8192, PrologueLen: 32768},
		} {
			label := kind + "/exact-plan"
			if s.Enabled() {
				label = kind + "/sampled-plan"
			}
			want, err := RunBatch(sampledTestEngines(t, kind, spaces), tr, s)
			if err != nil {
				t.Fatal(err)
			}
			store := &ckpt.Store{Dir: t.TempDir()}
			w := Windowed{K: 8, Store: store, Keys: windowedKeys(len(spaces), label), Pool: &Pool{}}

			cold, err := RunBatchWindowed(sampledTestEngines(t, kind, spaces), tr, s, w)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !cold[i].Equal(want[i]) {
					t.Errorf("%s engine %d: cold windowed diverged from batch\ngot  %+v\nwant %+v",
						label, i, cold[i], want[i])
				}
			}
			warm, err := RunBatchWindowed(sampledTestEngines(t, kind, spaces), tr, s, w)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !warm[i].Equal(want[i]) {
					t.Errorf("%s engine %d: warm windowed diverged from batch\ngot  %+v\nwant %+v",
						label, i, warm[i], want[i])
				}
			}
		}
	}

	// Warmup-reconstructed mode cannot place exact state at boundaries:
	// headline only, Phases nil.
	space := buildTestSpace(t, size, mem.Page4K)
	got, err := RunBatchWindowed(sampledTestEngines(t, "full", []*mem.AddressSpace{space}), tr, Sampling{},
		Windowed{K: 4, Warm: true, WarmLen: 1 << 16, Pool: &Pool{}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Phases != nil {
		t.Errorf("warm windowed result carries phases %+v, want nil", got[0].Phases)
	}
	if got[0].Counters.M == 0 {
		t.Error("warm windowed result lost its counters")
	}
}
