package sim

import (
	"fmt"
	"sync"
	"time"

	"mosaic/internal/libc"
	"mosaic/internal/mem"
	"mosaic/internal/mosalloc"
)

// BuildSpace is the pipeline's address-space stage: one modelled process
// with Mosalloc attached under the given pool configuration. After Attach
// the pools are fully pre-mapped and replays only read translations, so the
// returned space is immutable for replay purposes and safe to share
// read-only across concurrently running engines.
func BuildSpace(physMem uint64, cfg mosalloc.Config) (*mem.AddressSpace, error) {
	proc, err := libc.NewProcess(physMem)
	if err != nil {
		return nil, err
	}
	if _, err := mosalloc.Attach(proc, cfg); err != nil {
		return nil, err
	}
	return proc.Space(), nil
}

// SpaceKey canonically identifies a Mosalloc configuration. Layouts from
// different platforms (or different protocols) that resolve to the same
// pool mosaics share one key — and therefore one built address space.
func SpaceKey(cfg mosalloc.Config) string {
	return fmt.Sprintf("%s|%s|%d|%d",
		cfg.HeapPool.String(), cfg.AnonPool.String(), cfg.FilePoolBytes, int(cfg.AnonPolicy))
}

type spaceEntry struct {
	refs  int
	once  sync.Once
	space *mem.AddressSpace
	err   error
}

// SpaceCache shares built address spaces between the jobs of one sweep.
// The caller Registers every planned use up front, Gets the space inside
// each job (the first Get builds it, all Gets agree via sync.Once), and
// Releases after the job; when the last planned use releases, the entry is
// dropped so the sweep never holds more spaces than its remaining jobs
// need.
type SpaceCache struct {
	physMem uint64
	// Timing, when set, observes each actual space build under StageSpace
	// (shared-hit Gets are not counted).
	Timing  *Timing
	mu      sync.Mutex
	entries map[string]*spaceEntry
}

// NewSpaceCache builds a cache whose spaces model physMem bytes of
// simulated physical memory.
func NewSpaceCache(physMem uint64) *SpaceCache {
	return &SpaceCache{physMem: physMem, entries: make(map[string]*spaceEntry)}
}

// Register records one planned use of the configuration and returns its
// key. Call once per job before scheduling.
func (c *SpaceCache) Register(cfg mosalloc.Config) string {
	key := SpaceKey(cfg)
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &spaceEntry{}
		c.entries[key] = e
	}
	e.refs++
	c.mu.Unlock()
	return key
}

// Get returns the shared space for a Registered key, building it on first
// use. Concurrent Gets block until the single build completes.
//
//mosvet:timing stage wall-time accounting around the build; spaces are clock-free
func (c *SpaceCache) Get(key string, cfg mosalloc.Config) (*mem.AddressSpace, error) {
	c.mu.Lock()
	e := c.entries[key]
	c.mu.Unlock()
	if e == nil {
		// Unregistered use: build privately rather than fail.
		return BuildSpace(c.physMem, cfg)
	}
	e.once.Do(func() {
		start := time.Now()
		e.space, e.err = BuildSpace(c.physMem, cfg)
		if c.Timing != nil {
			c.Timing.Observe(StageSpace, time.Since(start))
		}
	})
	return e.space, e.err
}

// Release drops one planned use; at zero remaining uses the entry (and its
// space) becomes collectable.
func (c *SpaceCache) Release(key string) {
	c.mu.Lock()
	if e := c.entries[key]; e != nil {
		e.refs--
		if e.refs <= 0 {
			delete(c.entries, key)
		}
	}
	c.mu.Unlock()
}

// Live reports the number of cached entries (for tests).
func (c *SpaceCache) Live() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
