package sim

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"mosaic/internal/arch"
	"mosaic/internal/mem"
	"mosaic/internal/mosalloc"
	"mosaic/internal/trace"
)

const (
	testRegion  = mem.Addr(0x2000_0000_0000)
	testPhysMem = 1 << 36
)

// buildTestSpace maps size bytes at testRegion with the given page size,
// bypassing Mosalloc — engines do not care how a space was built.
func buildTestSpace(t *testing.T, size uint64, ps mem.PageSize) *mem.AddressSpace {
	t.Helper()
	as, err := mem.NewAddressSpace(1 << 38)
	if err != nil {
		t.Fatal(err)
	}
	size = uint64(mem.AlignUp(mem.Addr(size), ps))
	if err := as.Map(mem.NewRegion(testRegion, size), ps); err != nil {
		t.Fatal(err)
	}
	return as
}

// testTrace touches random 4KB pages in the mapped window with dependent
// loads, enough to dirty the TLB, caches, and PWCs.
func testTrace(seed int64, size uint64, accesses int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder("sim-test", accesses)
	for i := 0; i < accesses; i++ {
		b.Compute(10)
		b.LoadDep(testRegion + mem.Addr(rng.Uint64()%size))
	}
	return b.Trace()
}

// TestFullResetReplaysIdentically is the pool's core guarantee: an engine
// that already ran a trace, was Put back, and came out of the pool again
// must produce bit-identical counters to a freshly constructed machine.
func TestFullResetReplaysIdentically(t *testing.T) {
	size := uint64(64 << 20)
	space := buildTestSpace(t, size, mem.Page4K)
	tr := testTrace(1, size, 20000)

	fresh, err := NewFull(arch.SandyBridge, space)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if want.Counters.M == 0 || want.Counters.C == 0 {
		t.Fatal("test trace should miss the TLB and spend walk cycles")
	}

	var pool Pool
	dirty, err := pool.Full(arch.SandyBridge, space)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dirty.Run(tr); err != nil {
		t.Fatal(err)
	}
	pool.Put(dirty)

	reused, err := pool.Full(arch.SandyBridge, space)
	if err != nil {
		t.Fatal(err)
	}
	if reused != dirty {
		t.Fatal("pool should have recycled the idle engine")
	}
	got, err := reused.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("reset engine diverged from fresh engine:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestPartialResetReplaysIdentically mirrors the full-machine guarantee for
// the partial simulator, in both fidelity modes.
func TestPartialResetReplaysIdentically(t *testing.T) {
	size := uint64(64 << 20)
	space := buildTestSpace(t, size, mem.Page4K)
	tr := testTrace(2, size, 20000)

	for _, hf := range []bool{false, true} {
		fresh, err := NewPartial(arch.Broadwell, space)
		if err != nil {
			t.Fatal(err)
		}
		fresh.HighFidelity = hf
		want, err := fresh.Run(tr)
		if err != nil {
			t.Fatal(err)
		}

		var pool Pool
		dirty, err := pool.Partial(arch.Broadwell, space)
		if err != nil {
			t.Fatal(err)
		}
		dirty.HighFidelity = hf
		if _, err := dirty.Run(tr); err != nil {
			t.Fatal(err)
		}
		pool.Put(dirty)

		reused, err := pool.Partial(arch.Broadwell, space)
		if err != nil {
			t.Fatal(err)
		}
		if reused != dirty {
			t.Fatal("pool should have recycled the idle engine")
		}
		if reused.HighFidelity {
			t.Fatal("Reset must clear HighFidelity, matching a fresh simulator")
		}
		reused.HighFidelity = hf
		got, err := reused.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("highFidelity=%v: reset simulator diverged:\ngot  %+v\nwant %+v",
				hf, got, want)
		}
	}
}

// TestResetRetargetsPlatform re-points one engine at a different platform
// and demands the counters of a machine built for that platform from
// scratch.
func TestResetRetargetsPlatform(t *testing.T) {
	size := uint64(64 << 20)
	space := buildTestSpace(t, size, mem.Page4K)
	tr := testTrace(3, size, 20000)

	fresh, err := NewFull(arch.Haswell, space)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(tr)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewFull(arch.SandyBridge, space)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(tr); err != nil {
		t.Fatal(err)
	}
	if err := eng.Reset(arch.Haswell, space); err != nil {
		t.Fatal(err)
	}
	if eng.Platform() != arch.Haswell {
		t.Fatalf("platform after Reset = %s, want Haswell", eng.Platform().Name)
	}
	got, err := eng.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("retargeted engine diverged:\ngot  %+v\nwant %+v", got, want)
	}
}

func testMosallocConfig(heap uint64) mosalloc.Config {
	return mosalloc.Config{
		HeapPool:      mosalloc.Uniform(mem.Page4K, heap),
		AnonPool:      mosalloc.Uniform(mem.Page4K, 8<<20),
		FilePoolBytes: 1 << 20,
	}
}

func TestSpaceCacheSharesAndReleases(t *testing.T) {
	cfg := testMosallocConfig(32 << 20)
	c := NewSpaceCache(testPhysMem)

	k1 := c.Register(cfg)
	k2 := c.Register(cfg)
	if k1 != k2 {
		t.Fatalf("identical configs got distinct keys %q and %q", k1, k2)
	}
	if c.Live() != 1 {
		t.Fatalf("live entries = %d, want 1", c.Live())
	}

	a, err := c.Get(k1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get(k2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("registered Gets should share one built space")
	}

	other := c.Register(testMosallocConfig(64 << 20))
	if other == k1 {
		t.Fatal("different configs must not collide")
	}
	if c.Live() != 2 {
		t.Fatalf("live entries = %d, want 2", c.Live())
	}

	c.Release(k1)
	if c.Live() != 2 {
		t.Fatal("entry released too early: one planned use remains")
	}
	c.Release(k2)
	if c.Live() != 1 {
		t.Fatalf("live entries = %d, want 1 after final release", c.Live())
	}

	// An unregistered key still yields a usable (private) space.
	p, err := c.Get("no-such-key", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p == a {
		t.Fatal("unregistered Get must build privately, not alias the cache")
	}
}

func TestSchedulerRunsAllJobs(t *testing.T) {
	const n = 23
	ran := make([]bool, n)
	var reports []Progress
	s := Scheduler{
		Workers:    4,
		Stage:      "replay",
		OnProgress: func(p Progress) { reports = append(reports, p) },
	}
	err := s.Run(n, func(i int) string { return "job" }, func(i int) error {
		ran[i] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range ran {
		if !ok {
			t.Fatalf("job %d never ran", i)
		}
	}
	if len(reports) != n {
		t.Fatalf("%d progress reports, want %d", len(reports), n)
	}
	last := reports[len(reports)-1]
	if last.Done != n || last.Total != n || last.Workers != 4 || last.Stage != "replay" {
		t.Fatalf("final report %+v", last)
	}
}

// TestSchedulerDrainsOnError: a failed job must not abort the rest of the
// sweep, and the lowest-indexed error wins.
func TestSchedulerDrainsOnError(t *testing.T) {
	const n = 16
	errLow := errors.New("low")
	errHigh := errors.New("high")
	ran := make([]bool, n)
	s := Scheduler{Workers: 3}
	err := s.Run(n, nil, func(i int) error {
		ran[i] = true
		switch i {
		case 5:
			return errLow
		case 11:
			return errHigh
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want lowest-indexed %v", err, errLow)
	}
	for i, ok := range ran {
		if !ok {
			t.Fatalf("job %d skipped after earlier failure", i)
		}
	}
}

func TestTimingSnapshot(t *testing.T) {
	var tm Timing
	tm.Observe(StageReplay, 2*time.Second)
	tm.Observe(StageReplay, time.Second)
	tm.Observe(StageSpace, time.Millisecond)
	if err := tm.Time(StagePrepare, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	snap := tm.Snapshot()
	if len(snap) != int(numStages) {
		t.Fatalf("%d stages in snapshot", len(snap))
	}
	byStage := make(map[Stage]StageTime)
	for _, st := range snap {
		byStage[st.Stage] = st
	}
	if st := byStage[StageReplay]; st.Count != 2 || st.Total != 3*time.Second {
		t.Fatalf("replay stage %+v", st)
	}
	if st := byStage[StageSpace]; st.Count != 1 {
		t.Fatalf("space stage %+v", st)
	}
	if st := byStage[StagePrepare]; st.Count != 1 {
		t.Fatalf("prepare stage %+v", st)
	}
	if StageReplay.String() != "replay" || StagePrepare.String() != "prepare" {
		t.Fatal("stage names")
	}
}
