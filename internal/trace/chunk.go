package trace

// Parallel windowed replay splits one trace's replay schedule into K
// contiguous chunks so independent workers can replay them concurrently.
// The chunking is purely positional — like SamplePlan, it depends only on
// the trace length and the sampling plan — so every engine of a fused
// batch sees identical chunks and windowed replay composes with fusion.

// WindowPlan configures the split: Windows is the target chunk count K.
// Zero or one disables chunking (one chunk covering the whole schedule).
type WindowPlan struct {
	Windows int
}

// Enabled reports whether the plan actually splits (Windows > 1).
func (wp WindowPlan) Enabled() bool { return wp.Windows > 1 }

// Chunk is one contiguous slice of a replay schedule. Pos is the first
// access position of the chunk — the state boundary a checkpoint is keyed
// by, and the point a warmup-reconstructing worker warms into. Windows is
// the chunk's share of the plan's schedule, in ascending order.
type Chunk struct {
	Pos     int
	Windows []Window
}

// minChunkAccesses floors a chunk's replayed work: below this, goroutine
// and state-restore overhead (a checkpoint restore copies the TLB, cache,
// and PWC tag arrays — tens of microseconds against ~1ms of replay) starts
// to dominate whatever parallelism buys, so Chunks returns fewer chunks
// than requested rather than tiny ones.
const minChunkAccesses = 1 << 13

// Chunks splits the plan's schedule over a trace of n accesses into at
// most wp.Windows contiguous chunks of roughly equal replayed work
// (measured + warmup accesses).
//
// Under a disabled (exact) sampling plan the single whole-trace window is
// cut into equal sub-ranges; the sub-windows of consecutive chunks abut,
// so replaying them in order is literally exact replay. Under an enabled
// plan, whole windows are distributed — a window is never split, chunk
// boundaries only fall where the schedule has a gap of skipped accesses
// (so a warmup window is never separated from the measurement window it
// warms), and the prologue window always stays in chunk 0.
func (wp WindowPlan) Chunks(plan SamplePlan, n int) []Chunk {
	return wp.ChunksFor(plan.Windows(n), !plan.Enabled())
}

// ChunksFor splits an explicit window schedule — plan.Windows(n) for a
// single-regime trace, SamplePlan.PhasedWindows for a multi-phase one —
// into at most wp.Windows chunks of roughly equal replayed work. exact
// marks a schedule in which every access is measured and consecutive
// windows abut (a disabled sampling plan): cuts may then fall anywhere,
// including inside a window, because splitting a measurement window into
// abutting sub-windows replays identically. Under a sampled schedule whole
// windows are distributed and cuts only fall where the schedule skips
// accesses, so a warmup window is never separated from the measurement
// window it warms and each phase's prologue window stays whole.
func (wp WindowPlan) ChunksFor(ws []Window, exact bool) []Chunk {
	if len(ws) == 0 {
		return nil
	}
	k := wp.Windows
	work := 0
	for _, w := range ws {
		work += w.Len()
	}
	if maxK := work / minChunkAccesses; k > maxK {
		k = maxK
	}
	if k < 2 {
		return []Chunk{{Pos: ws[0].Lo, Windows: ws}}
	}
	if exact {
		// Split the schedule at even cumulative-work offsets, cutting
		// straddling windows. For a single whole-trace window this yields
		// the classic even split of [0, n).
		out := make([]Chunk, 0, k)
		j, used, cum := 0, 0, 0
		for i := 0; i < k; i++ {
			end := work * (i + 1) / k
			cur := Chunk{Pos: ws[j].Lo + used}
			for cum < end {
				w := ws[j]
				take := min(w.Len()-used, end-cum)
				cur.Windows = append(cur.Windows,
					Window{Lo: w.Lo + used, Hi: w.Lo + used + take, Measure: w.Measure})
				used += take
				cum += take
				if used == w.Len() {
					j, used = j+1, 0
				}
			}
			out = append(out, cur)
		}
		return out
	}
	// Sampled replay: distribute whole windows, cutting only at gaps.
	target := (work + k - 1) / k
	out := make([]Chunk, 0, k)
	cur := Chunk{Pos: ws[0].Lo}
	acc := 0
	for j, w := range ws {
		if j > 0 && acc >= target && w.Lo > ws[j-1].Hi && len(out) < k-1 {
			out = append(out, cur)
			cur = Chunk{Pos: w.Lo}
			acc = 0
		}
		cur.Windows = append(cur.Windows, w)
		acc += w.Len()
	}
	return append(out, cur)
}
