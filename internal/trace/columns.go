package trace

import "mosaic/internal/mem"

// Columns is the structure-of-arrays representation of a trace: virtual
// addresses, instruction gaps, and the write/dep flags packed one bit per
// access. It exists for replay throughput — a sweep streams the same trace
// dozens of times, and the columnar layout cuts the bytes per access from
// 16 (the padded Access struct) to ~12.3 while letting the fused replay
// kernel (cpu.RunBatch) walk the address column sequentially.
//
// A Columns value may be a view into a larger trace (see Slice): va and gap
// are re-sliced directly, while the flag bitsets are shared whole and
// indexed through a bit offset, so views at non-word-aligned positions need
// no copying.
type Columns struct {
	va  []uint64
	gap []uint32
	// write and dep are bitsets over the underlying trace; access i of this
	// view is bit off+i.
	write []uint64
	dep   []uint64
	off   int
}

// Len returns the number of accesses.
func (c *Columns) Len() int { return len(c.va) }

// Bytes returns the in-memory footprint of the columns: the quantity a
// replay pass actually streams, which is what decides whether fusing
// several replays over one trace pass is worthwhile (see sim.RunBatch).
func (c *Columns) Bytes() int {
	return 8*len(c.va) + 4*len(c.gap) + 8*len(c.write) + 8*len(c.dep)
}

// VA returns access i's virtual address.
func (c *Columns) VA(i int) mem.Addr { return mem.Addr(c.va[i]) }

// Gap returns access i's instruction gap.
func (c *Columns) Gap(i int) uint32 { return c.gap[i] }

// Write reports whether access i is a store.
func (c *Columns) Write(i int) bool {
	j := c.off + i
	return c.write[j>>6]>>(uint(j)&63)&1 != 0
}

// Dep reports whether access i depends on the previous access's result.
func (c *Columns) Dep(i int) bool {
	j := c.off + i
	return c.dep[j>>6]>>(uint(j)&63)&1 != 0
}

// At materializes access i as a row record.
func (c *Columns) At(i int) Access {
	return Access{VA: c.VA(i), Gap: c.gap[i], Write: c.Write(i), Dep: c.Dep(i)}
}

// Append adds one access. Append is only valid on a root Columns (not a
// Slice view); views share their parent's bitsets and must stay read-only.
func (c *Columns) Append(a Access) {
	i := c.off + len(c.va)
	c.va = append(c.va, uint64(a.VA))
	c.gap = append(c.gap, a.Gap)
	if i>>6 >= len(c.write) {
		c.write = append(c.write, 0)
		c.dep = append(c.dep, 0)
	}
	if a.Write {
		c.write[i>>6] |= 1 << (uint(i) & 63)
	}
	if a.Dep {
		c.dep[i>>6] |= 1 << (uint(i) & 63)
	}
}

// Grow pre-allocates capacity for n additional accesses.
func (c *Columns) Grow(n int) {
	if n <= 0 {
		return
	}
	if cap(c.va)-len(c.va) < n {
		va := make([]uint64, len(c.va), len(c.va)+n)
		copy(va, c.va)
		c.va = va
		gap := make([]uint32, len(c.gap), len(c.gap)+n)
		copy(gap, c.gap)
		c.gap = gap
	}
	words := (c.off + len(c.va) + n + 63) >> 6
	if cap(c.write) < words {
		w := make([]uint64, len(c.write), words)
		copy(w, c.write)
		c.write = w
		d := make([]uint64, len(c.dep), words)
		copy(d, c.dep)
		c.dep = d
	}
}

// Slice returns a read-only view of accesses [lo, hi). The va/gap columns
// alias the receiver's arrays; the flag bitsets are shared whole via the
// view's bit offset.
func (c *Columns) Slice(lo, hi int) Columns {
	return Columns{
		va:    c.va[lo:hi],
		gap:   c.gap[lo:hi],
		write: c.write,
		dep:   c.dep,
		off:   c.off + lo,
	}
}

// Rows materializes the whole column set as row records (a convenience for
// tests and tools; replay paths iterate the columns directly).
func (c *Columns) Rows() []Access {
	out := make([]Access, c.Len())
	for i := range out {
		out[i] = c.At(i)
	}
	return out
}
