package trace

import (
	"bytes"
	"math/rand"
	"testing"

	"mosaic/internal/mem"
)

// strideTestTrace models the common workload shapes: mostly small positive
// VA strides with occasional far jumps and short gaps — the regime the v02
// delta encoding targets.
func strideTestTrace(seed int64, n int) *Trace {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("stride/test", n)
	va := mem.Addr(0x2000_0000_0000)
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0:
			va = mem.Addr(0x2000_0000_0000 + rng.Uint64()%(1<<33))
		case 1:
			va -= mem.Addr(rng.Uint64() % (1 << 16))
		default:
			va += mem.Addr(rng.Uint64() % (1 << 13))
		}
		b.Compute(uint64(rng.Intn(50)))
		if rng.Intn(3) == 0 {
			b.StoreDep(va)
		} else {
			b.Load(va)
		}
	}
	return b.Trace()
}

func TestColumnsRoundTripRows(t *testing.T) {
	tr := randomTestTrace(11, 1000)
	c := tr.Columns()
	if c.Len() != 1000 {
		t.Fatalf("len = %d", c.Len())
	}
	for i, a := range c.Rows() {
		if a != tr.At(i) {
			t.Fatalf("row %d: %+v vs %+v", i, a, tr.At(i))
		}
	}
}

func TestColumnsSliceUnalignedOffsets(t *testing.T) {
	tr := randomTestTrace(12, 500)
	// Slice at offsets that do not land on 64-bit bitset word boundaries,
	// then slice the slice again.
	s := tr.Sample(13, 200)
	for i := 0; i < s.Len(); i++ {
		if s.At(i) != tr.At(13+i) {
			t.Fatalf("slice access %d: %+v vs parent %+v", i, s.At(i), tr.At(13+i))
		}
	}
	s2 := s.Sample(7, 50)
	for i := 0; i < s2.Len(); i++ {
		if s2.At(i) != tr.At(20+i) {
			t.Fatalf("nested slice access %d diverges", i)
		}
	}
}

func TestV02SmallerThanV01(t *testing.T) {
	for _, tc := range []struct {
		tr *Trace
		// maxRatio is the acceptable v02/v01 size ratio: strided traces
		// (every bundled workload's shape) must compress well; even a
		// pathological uniform-random-over-2^47 trace must still shrink.
		maxRatio float64
	}{{strideTestTrace(1, 50000), 0.40}, {randomTestTrace(2, 50000), 0.75}} {
		tr := tc.tr
		var v1, v2 bytes.Buffer
		if _, err := tr.WriteToV01(&v1); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.WriteTo(&v2); err != nil {
			t.Fatal(err)
		}
		ratio := float64(v2.Len()) / float64(v1.Len())
		t.Logf("%s: v01 %d bytes, v02 %d bytes (%.1f%%)", tr.Name, v1.Len(), v2.Len(), 100*ratio)
		if ratio > tc.maxRatio {
			t.Errorf("%s: v02 is %.1f%% of v01, want ≤ %.0f%%", tr.Name, 100*ratio, 100*tc.maxRatio)
		}
	}
}

func TestV01StillLoads(t *testing.T) {
	orig := randomTestTrace(3, 7000)
	var buf bytes.Buffer
	if _, err := orig.WriteToV01(&buf); err != nil {
		t.Fatal(err)
	}
	var got Trace
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Len() != orig.Len() {
		t.Fatalf("v01 reload: %q len %d", got.Name, got.Len())
	}
	for i := 0; i < orig.Len(); i++ {
		if got.At(i) != orig.At(i) {
			t.Fatalf("access %d: %+v vs %+v", i, got.At(i), orig.At(i))
		}
	}
}

func TestV02RejectsForgedBlocks(t *testing.T) {
	orig := randomTestTrace(4, 100)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	headerLen := 8 + 2 + len(orig.Name) + 8

	// Forged block count larger than the remaining accesses.
	forged := append([]byte{}, raw...)
	forged[headerLen] = 0xff
	forged[headerLen+1] = 0xff
	var tr Trace
	if _, err := tr.ReadFrom(bytes.NewReader(forged)); err == nil {
		t.Error("oversized block count should be rejected")
	}

	// Forged payload length beyond the worst-case bound.
	forged = append([]byte{}, raw...)
	forged[headerLen+4] = 0xff
	forged[headerLen+5] = 0xff
	forged[headerLen+6] = 0xff
	if _, err := tr.ReadFrom(bytes.NewReader(forged)); err == nil {
		t.Error("oversized payload length should be rejected")
	}

	// Truncated mid-block.
	if _, err := tr.ReadFrom(bytes.NewReader(raw[:len(raw)-10])); err == nil {
		t.Error("truncated v02 stream should be rejected")
	}
}

// FuzzTraceRoundTrip covers both wire formats: any input that decodes must
// re-encode (in v01 and v02) to a stream that decodes back to the same
// trace, and no input — truncated, forged, or random — may panic.
func FuzzTraceRoundTrip(f *testing.F) {
	for seed, n := range map[int64]int{5: 40, 6: 0, 7: 300} {
		tr := randomTestTrace(seed, n)
		var v1, v2 bytes.Buffer
		if _, err := tr.WriteToV01(&v1); err != nil {
			f.Fatal(err)
		}
		if _, err := tr.WriteTo(&v2); err != nil {
			f.Fatal(err)
		}
		f.Add(v1.Bytes())
		f.Add(v2.Bytes())
	}
	// Phased seeds: whole streams (mutations hit the phase section's
	// marker, count, names, and bounds) plus deliberate truncations into
	// the section, which must reject, never panic or mis-decode.
	phased := phasedTestTrace(120)
	var vp bytes.Buffer
	if _, err := phased.WriteTo(&vp); err != nil {
		f.Fatal(err)
	}
	f.Add(vp.Bytes())
	f.Add(vp.Bytes()[:vp.Len()-5])
	f.Add(vp.Bytes()[:vp.Len()-20])
	f.Add([]byte("MOSTRC01"))
	f.Add([]byte("MOSTRC02"))
	f.Add([]byte("MOSTRC02\x00\x00\x08\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var tr Trace
		if _, err := tr.ReadFrom(bytes.NewReader(data)); err != nil {
			return // malformed inputs must only error, never panic
		}
		for name, enc := range map[string]func(*Trace, *bytes.Buffer) error{
			"v01": func(tr *Trace, b *bytes.Buffer) error { _, err := tr.WriteToV01(b); return err },
			"v02": func(tr *Trace, b *bytes.Buffer) error { _, err := tr.WriteTo(b); return err },
		} {
			var buf bytes.Buffer
			if err := enc(&tr, &buf); err != nil {
				t.Fatalf("%s: re-encoding a decoded trace: %v", name, err)
			}
			var back Trace
			if _, err := back.ReadFrom(&buf); err != nil {
				t.Fatalf("%s: re-decoding: %v", name, err)
			}
			if back.Name != tr.Name || back.Len() != tr.Len() {
				t.Fatalf("%s: round trip changed shape: %q/%d vs %q/%d",
					name, back.Name, back.Len(), tr.Name, tr.Len())
			}
			for i := 0; i < tr.Len(); i++ {
				if back.At(i) != tr.At(i) {
					t.Fatalf("%s: access %d changed: %+v vs %+v", name, i, back.At(i), tr.At(i))
				}
			}
			// v02 carries phase markers; v01 predates them and must drop
			// them. A phase-less decode stays phase-less (the implicit
			// single phase is nil, never a materialized marker).
			switch name {
			case "v01":
				if back.Phases() != nil {
					t.Fatalf("v01 re-decode grew phases %+v", back.Phases())
				}
			case "v02":
				bp, tp := back.Phases(), tr.Phases()
				if len(bp) != len(tp) {
					t.Fatalf("v02 round trip changed phases: %+v vs %+v", bp, tp)
				}
				for i := range tp {
					if bp[i] != tp[i] {
						t.Fatalf("v02 phase %d changed: %+v vs %+v", i, bp[i], tp[i])
					}
				}
			}
		}
	})
}

// BenchmarkTraceLoad measures on-disk decode throughput for both formats —
// the figure that bounds how fast cached traces come back at session start.
func BenchmarkTraceLoad(b *testing.B) {
	tr := strideTestTrace(9, 1<<20)
	var v1, v2 bytes.Buffer
	if _, err := tr.WriteToV01(&v1); err != nil {
		b.Fatal(err)
	}
	if _, err := tr.WriteTo(&v2); err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		raw  []byte
	}{{"v01", v1.Bytes()}, {"v02", v2.Bytes()}} {
		b.Run(tc.name, func(b *testing.B) {
			b.SetBytes(int64(len(tc.raw)))
			for i := 0; i < b.N; i++ {
				var got Trace
				if _, err := got.ReadFrom(bytes.NewReader(tc.raw)); err != nil {
					b.Fatal(err)
				}
				if got.Len() != tr.Len() {
					b.Fatal("short read")
				}
			}
			b.ReportMetric(float64(len(tc.raw))/float64(tr.Len()), "bytes/access")
		})
	}
}
