package trace

import "fmt"

// Multi-phase traces: a workload with distinct temporal regimes (build an
// index, then probe it; load an LSM, then compact it) records phase markers
// so the replay layers can attribute counters to each regime and the
// sampled estimator can extrapolate within phase boundaries instead of
// across them. A phase transition inside a skip stretch is exactly the
// failure mode stationary workloads never expose: the estimator would scale
// one regime's measured windows over another regime's accesses.
//
// Phases are purely positional — like SamplePlan they depend only on access
// indices — so every engine of a fused batch sees identical phase
// boundaries and phased replay composes with fusion and windowing.

// Phase is one contiguous regime [Lo, Hi) of a trace's accesses.
type Phase struct {
	Name   string
	Lo, Hi int
}

// Len returns the number of accesses in the phase.
func (p Phase) Len() int { return p.Hi - p.Lo }

// maxPhases bounds the phase count a decoded trace may declare — a sanity
// bound on wire input, not a design limit (the bundled composites use 2–3).
const maxPhases = 1 << 12

// validatePhases checks that phases form a contiguous ascending partition
// of [0, n): first Lo is 0, last Hi is n, each phase is non-empty, and
// consecutive phases abut.
func validatePhases(phases []Phase, n int) error {
	if len(phases) == 0 {
		return nil
	}
	if len(phases) > maxPhases {
		return fmt.Errorf("trace: %d phases exceeds limit %d", len(phases), maxPhases)
	}
	if phases[0].Lo != 0 {
		return fmt.Errorf("trace: first phase %q starts at %d, want 0", phases[0].Name, phases[0].Lo)
	}
	for i, p := range phases {
		if p.Hi <= p.Lo {
			return fmt.Errorf("trace: phase %q is empty ([%d, %d))", p.Name, p.Lo, p.Hi)
		}
		if i > 0 && p.Lo != phases[i-1].Hi {
			return fmt.Errorf("trace: phase %q starts at %d, want %d (phases must abut)",
				p.Name, p.Lo, phases[i-1].Hi)
		}
	}
	if last := phases[len(phases)-1]; last.Hi != n {
		return fmt.Errorf("trace: last phase %q ends at %d, want trace length %d", last.Name, last.Hi, n)
	}
	return nil
}

// Phases returns the trace's phase markers, or nil for a single-regime
// trace (the implicit whole-trace phase). The slice is the trace's own —
// callers must not mutate it. Derived traces (Sample, MultiSample) drop
// phase markers: a sampled slice of a multi-phase trace is not a partition
// of the original regimes.
func (t *Trace) Phases() []Phase { return t.phases }

// SetPhases installs phase markers on the trace. The phases must form a
// contiguous ascending partition of [0, Len()); nil clears them.
func (t *Trace) SetPhases(phases []Phase) error {
	if err := validatePhases(phases, t.cols.Len()); err != nil {
		return err
	}
	t.phases = phases
	return nil
}

// BeginPhase marks the start of a new phase at the builder's current
// position. The phase runs until the next BeginPhase or the end of the
// trace. If the first BeginPhase arrives after accesses were already
// recorded, those leading accesses become an implicit phase named "pre".
// A BeginPhase immediately following another (no accesses between) replaces
// the empty one. Without any BeginPhase calls the built trace is phase-less
// (Phases() == nil).
func (b *Builder) BeginPhase(name string) {
	pos := b.cols.Len()
	if len(b.marks) == 0 && pos > 0 {
		b.marks = append(b.marks, phaseMark{name: "pre", pos: 0})
	}
	if k := len(b.marks); k > 0 && b.marks[k-1].pos == pos {
		b.marks[k-1].name = name
		return
	}
	b.marks = append(b.marks, phaseMark{name: name, pos: pos})
}

// phaseMark is a pending phase start inside a Builder.
type phaseMark struct {
	name string
	pos  int
}

// buildPhases converts the builder's marks into a phase partition of a
// trace with n accesses. A trailing mark at position n (BeginPhase followed
// by no accesses) is dropped.
func buildPhases(marks []phaseMark, n int) []Phase {
	if len(marks) == 0 || n == 0 {
		return nil
	}
	phases := make([]Phase, 0, len(marks))
	for i, m := range marks {
		hi := n
		if i+1 < len(marks) {
			hi = marks[i+1].pos
		}
		if m.pos >= hi {
			continue
		}
		phases = append(phases, Phase{Name: m.name, Lo: m.pos, Hi: hi})
	}
	if len(phases) == 0 {
		return nil
	}
	return phases
}

// PhasedWindows returns the plan's replay schedule over a phased trace:
// the schedule is computed independently within each phase's range, so no
// window — measurement or warmup — ever spans a phase boundary, and each
// phase gets its own exactly-measured prologue stratum (the opening of a
// regime is its compulsory-miss transient, just as a trace's opening is).
// With nil phases the result is exactly Windows(n). The windows come back
// ascending and non-overlapping, like Windows.
func (p SamplePlan) PhasedWindows(phases []Phase, n int) []Window {
	if len(phases) == 0 {
		return p.Windows(n)
	}
	var out []Window
	for _, ph := range phases {
		for _, w := range p.Windows(ph.Len()) {
			out = append(out, Window{Lo: w.Lo + ph.Lo, Hi: w.Hi + ph.Lo, Measure: w.Measure})
		}
	}
	return out
}

// PhaseWindows returns the subset of a phased schedule that falls inside
// one phase. Windows from PhasedWindows never straddle boundaries, so the
// subset is a clean slice of the schedule.
func PhaseWindows(ws []Window, ph Phase) []Window {
	lo := 0
	for lo < len(ws) && ws[lo].Hi <= ph.Lo {
		lo++
	}
	hi := lo
	for hi < len(ws) && ws[hi].Lo < ph.Hi {
		hi++
	}
	return ws[lo:hi]
}
