// Package trace defines the memory access traces that connect workloads to
// the machine model. A workload runs once against the allocation stack and
// records the loads/stores it would issue; the same trace then replays on
// any platform under any Mosalloc layout, because Mosalloc's pool placement
// is layout-independent (pools sit at fixed bases and first-fit advances
// identically regardless of the page mosaic behind it).
package trace

import (
	"fmt"
	"sort"

	"mosaic/internal/mem"
)

// Access is one memory reference: the virtual address touched, whether it
// is a store, and the number of instructions executed since the previous
// recorded reference (the "gap" the timing model converts to base cycles).
type Access struct {
	VA    mem.Addr
	Gap   uint32
	Write bool
	// Dep marks an access whose address depends on the previous access's
	// result (pointer chasing). Dependent misses serialize the pipeline;
	// independent ones overlap under memory-level parallelism — the
	// distinction that lets walk cycles exceed runtime on two-walker
	// machines (§VI-D).
	Dep bool
}

// Trace is a complete recorded execution.
type Trace struct {
	Name     string
	Accesses []Access
}

// Instructions returns the total instruction count the trace represents:
// every recorded access is itself one instruction plus its gap.
func (t *Trace) Instructions() uint64 {
	var n uint64
	for _, a := range t.Accesses {
		n += uint64(a.Gap) + 1
	}
	return n
}

// Len returns the number of recorded accesses.
func (t *Trace) Len() int { return len(t.Accesses) }

// Footprint returns the total bytes of distinct 4KB pages the trace
// touches — the workload's resident memory footprint.
func (t *Trace) Footprint() uint64 {
	pages := make(map[uint64]struct{})
	for _, a := range t.Accesses {
		pages[mem.PageNumber(a.VA, mem.Page4K)] = struct{}{}
	}
	return uint64(len(pages)) * uint64(mem.Page4K)
}

// Extent returns the smallest region containing every access.
func (t *Trace) Extent() mem.Region {
	if len(t.Accesses) == 0 {
		return mem.Region{}
	}
	lo, hi := t.Accesses[0].VA, t.Accesses[0].VA
	for _, a := range t.Accesses {
		if a.VA < lo {
			lo = a.VA
		}
		if a.VA > hi {
			hi = a.VA
		}
	}
	return mem.Region{Start: lo, End: hi + 1}
}

// Validate checks the trace for obvious defects.
func (t *Trace) Validate() error {
	if len(t.Accesses) == 0 {
		return fmt.Errorf("trace %q: empty", t.Name)
	}
	return nil
}

// Builder accumulates a trace during workload execution.
type Builder struct {
	name     string
	accesses []Access
	// pending counts instructions executed since the last recorded access.
	pending uint64
}

// NewBuilder starts a trace with the given name and capacity hint.
func NewBuilder(name string, capacityHint int) *Builder {
	return &Builder{name: name, accesses: make([]Access, 0, capacityHint)}
}

// Compute records n instructions of non-memory work.
func (b *Builder) Compute(n uint64) { b.pending += n }

// Load records an independent read of va.
func (b *Builder) Load(va mem.Addr) { b.access(va, false, false) }

// LoadDep records a read of va whose address depends on the previous
// access's result (a pointer-chase step).
func (b *Builder) LoadDep(va mem.Addr) { b.access(va, false, true) }

// Store records an independent write of va.
func (b *Builder) Store(va mem.Addr) { b.access(va, true, false) }

// StoreDep records a dependent write of va.
func (b *Builder) StoreDep(va mem.Addr) { b.access(va, true, true) }

func (b *Builder) access(va mem.Addr, write, dep bool) {
	gap := b.pending
	if gap > 1<<30 {
		gap = 1 << 30
	}
	b.accesses = append(b.accesses, Access{VA: va, Gap: uint32(gap), Write: write, Dep: dep})
	b.pending = 0
}

// Trace finalizes and returns the built trace.
func (b *Builder) Trace() *Trace {
	return &Trace{Name: b.name, Accesses: b.accesses}
}

// Len returns the number of accesses recorded so far.
func (b *Builder) Len() int { return len(b.accesses) }

// PageHistogram counts accesses per aligned chunk of the given size —
// the shape of the simulated-PEBS profile the sliding-window heuristic
// consumes. The result maps chunk base address to access count.
func (t *Trace) PageHistogram(chunk mem.PageSize) map[mem.Addr]uint64 {
	out := make(map[mem.Addr]uint64)
	for _, a := range t.Accesses {
		out[mem.AlignDown(a.VA, chunk)]++
	}
	return out
}

// SortedChunks returns the histogram keys in address order.
func SortedChunks(h map[mem.Addr]uint64) []mem.Addr {
	keys := make([]mem.Addr, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Sample returns the blind-sampling window of the trace (§II-C of the
// paper: fast-forward `skip` accesses, then keep `length`): the common
// practice for taming multi-hour workloads in both full and partial
// simulation studies. The result aliases the receiver's backing array.
func (t *Trace) Sample(skip, length int) *Trace {
	if skip < 0 {
		skip = 0
	}
	if skip > len(t.Accesses) {
		skip = len(t.Accesses)
	}
	end := skip + length
	if length < 0 || end > len(t.Accesses) {
		end = len(t.Accesses)
	}
	return &Trace{
		Name:     fmt.Sprintf("%s[%d:%d]", t.Name, skip, end),
		Accesses: t.Accesses[skip:end],
	}
}

// MultiSample keeps `window` accesses out of every `period` (a periodic
// multi-window sampler, the simple cousin of SimPoint's phase-aware
// sampling that §II-C contrasts with blind sampling). The windows are
// concatenated into one trace.
func (t *Trace) MultiSample(period, window int) *Trace {
	if period <= 0 || window <= 0 || window >= period {
		return t
	}
	out := &Trace{Name: fmt.Sprintf("%s[every %d keep %d]", t.Name, period, window)}
	for start := 0; start < len(t.Accesses); start += period {
		end := start + window
		if end > len(t.Accesses) {
			end = len(t.Accesses)
		}
		out.Accesses = append(out.Accesses, t.Accesses[start:end]...)
	}
	return out
}
