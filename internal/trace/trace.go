// Package trace defines the memory access traces that connect workloads to
// the machine model. A workload runs once against the allocation stack and
// records the loads/stores it would issue; the same trace then replays on
// any platform under any Mosalloc layout, because Mosalloc's pool placement
// is layout-independent (pools sit at fixed bases and first-fit advances
// identically regardless of the page mosaic behind it).
//
// Traces are stored columnar (see Columns): the replay engines iterate the
// address and gap columns directly, and the on-disk format encodes the
// columns block-by-block. Access is the row-shaped record used to build
// traces and to inspect single entries.
package trace

import (
	"fmt"
	"slices"
	"sort"

	"mosaic/internal/mem"
)

// Access is one memory reference: the virtual address touched, whether it
// is a store, and the number of instructions executed since the previous
// recorded reference (the "gap" the timing model converts to base cycles).
type Access struct {
	VA    mem.Addr
	Gap   uint32
	Write bool
	// Dep marks an access whose address depends on the previous access's
	// result (pointer chasing). Dependent misses serialize the pipeline;
	// independent ones overlap under memory-level parallelism — the
	// distinction that lets walk cycles exceed runtime on two-walker
	// machines (§VI-D).
	Dep bool
}

// Trace is a complete recorded execution.
type Trace struct {
	Name string
	cols Columns
	// phases are optional regime markers partitioning [0, Len()); nil means
	// a single implicit whole-trace phase. See phase.go.
	phases []Phase
}

// New builds a trace from row records (a convenience for tests and tools;
// workloads use Builder).
func New(name string, accesses []Access) *Trace {
	t := &Trace{Name: name}
	t.cols.Grow(len(accesses))
	for _, a := range accesses {
		t.cols.Append(a)
	}
	return t
}

// Columns exposes the trace's columnar storage — the view the replay
// kernels iterate.
func (t *Trace) Columns() *Columns { return &t.cols }

// At returns access i.
func (t *Trace) At(i int) Access { return t.cols.At(i) }

// Len returns the number of recorded accesses.
func (t *Trace) Len() int { return t.cols.Len() }

// Instructions returns the total instruction count the trace represents:
// every recorded access is itself one instruction plus its gap.
func (t *Trace) Instructions() uint64 {
	n := uint64(t.cols.Len())
	for _, g := range t.cols.gap {
		n += uint64(g)
	}
	return n
}

// Footprint returns the total bytes of distinct 4KB pages the trace
// touches — the workload's resident memory footprint. It sorts a copy of
// the page-number column and counts run boundaries rather than building a
// per-page map (prepare-stage traces run to tens of millions of accesses,
// and map inserts were the stage's dominant allocation).
func (t *Trace) Footprint() uint64 {
	if t.cols.Len() == 0 {
		return 0
	}
	pages := make([]uint64, t.cols.Len())
	for i, va := range t.cols.va {
		pages[i] = mem.PageNumber(mem.Addr(va), mem.Page4K)
	}
	slices.Sort(pages)
	distinct := uint64(1)
	for i := 1; i < len(pages); i++ {
		if pages[i] != pages[i-1] {
			distinct++
		}
	}
	return distinct * uint64(mem.Page4K)
}

// Extent returns the smallest region containing every access.
func (t *Trace) Extent() mem.Region {
	if t.cols.Len() == 0 {
		return mem.Region{}
	}
	lo, hi := t.cols.va[0], t.cols.va[0]
	for _, va := range t.cols.va {
		if va < lo {
			lo = va
		}
		if va > hi {
			hi = va
		}
	}
	return mem.Region{Start: mem.Addr(lo), End: mem.Addr(hi) + 1}
}

// Validate checks the trace for obvious defects.
func (t *Trace) Validate() error {
	if t.cols.Len() == 0 {
		return fmt.Errorf("trace %q: empty", t.Name)
	}
	return nil
}

// Builder accumulates a trace during workload execution.
type Builder struct {
	name string
	cols Columns
	// pending counts instructions executed since the last recorded access.
	pending uint64
	// marks are pending phase starts recorded by BeginPhase.
	marks []phaseMark
}

// NewBuilder starts a trace with the given name and capacity hint.
func NewBuilder(name string, capacityHint int) *Builder {
	b := &Builder{name: name}
	b.cols.Grow(capacityHint)
	return b
}

// Compute records n instructions of non-memory work.
func (b *Builder) Compute(n uint64) { b.pending += n }

// Load records an independent read of va.
func (b *Builder) Load(va mem.Addr) { b.access(va, false, false) }

// LoadDep records a read of va whose address depends on the previous
// access's result (a pointer-chase step).
func (b *Builder) LoadDep(va mem.Addr) { b.access(va, false, true) }

// Store records an independent write of va.
func (b *Builder) Store(va mem.Addr) { b.access(va, true, false) }

// StoreDep records a dependent write of va.
func (b *Builder) StoreDep(va mem.Addr) { b.access(va, true, true) }

func (b *Builder) access(va mem.Addr, write, dep bool) {
	gap := b.pending
	if gap > 1<<30 {
		gap = 1 << 30
	}
	b.cols.Append(Access{VA: va, Gap: uint32(gap), Write: write, Dep: dep})
	b.pending = 0
}

// Trace finalizes and returns the built trace.
func (b *Builder) Trace() *Trace {
	return &Trace{Name: b.name, cols: b.cols, phases: buildPhases(b.marks, b.cols.Len())}
}

// Len returns the number of accesses recorded so far.
func (b *Builder) Len() int { return b.cols.Len() }

// PageHistogram counts accesses per aligned chunk of the given size —
// the shape of the simulated-PEBS profile the sliding-window heuristic
// consumes. The result maps chunk base address to access count. The counts
// are accumulated by sorting a copy of the aligned-address column and
// scanning runs, so the map sees one insert per distinct chunk instead of
// one lookup per access.
func (t *Trace) PageHistogram(chunk mem.PageSize) map[mem.Addr]uint64 {
	out := make(map[mem.Addr]uint64)
	if t.cols.Len() == 0 {
		return out
	}
	bases := make([]uint64, t.cols.Len())
	mask := ^(uint64(chunk) - 1)
	for i, va := range t.cols.va {
		bases[i] = va & mask
	}
	slices.Sort(bases)
	run := bases[0]
	n := uint64(0)
	for _, b := range bases {
		if b != run {
			out[mem.Addr(run)] = n
			run, n = b, 0
		}
		n++
	}
	out[mem.Addr(run)] = n
	return out
}

// SortedChunks returns the histogram keys in address order.
func SortedChunks(h map[mem.Addr]uint64) []mem.Addr {
	keys := make([]mem.Addr, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Sample returns the blind-sampling window of the trace (§II-C of the
// paper: fast-forward `skip` accesses, then keep `length`): the common
// practice for taming multi-hour workloads in both full and partial
// simulation studies. The result aliases the receiver's backing columns.
func (t *Trace) Sample(skip, length int) *Trace {
	if skip < 0 {
		skip = 0
	}
	if skip > t.cols.Len() {
		skip = t.cols.Len()
	}
	end := skip + length
	if length < 0 || end > t.cols.Len() {
		end = t.cols.Len()
	}
	return &Trace{
		Name: fmt.Sprintf("%s[%d:%d]", t.Name, skip, end),
		cols: t.cols.Slice(skip, end),
	}
}

// MultiSample keeps `window` accesses out of every `period` (a periodic
// multi-window sampler, the simple cousin of SimPoint's phase-aware
// sampling that §II-C contrasts with blind sampling). The windows are
// concatenated into one trace.
func (t *Trace) MultiSample(period, window int) *Trace {
	if period <= 0 || window <= 0 || window >= period {
		return t
	}
	out := &Trace{Name: fmt.Sprintf("%s[every %d keep %d]", t.Name, period, window)}
	for start := 0; start < t.cols.Len(); start += period {
		end := start + window
		if end > t.cols.Len() {
			end = t.cols.Len()
		}
		for i := start; i < end; i++ {
			out.cols.Append(t.cols.At(i))
		}
	}
	return out
}
