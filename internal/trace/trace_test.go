package trace

import (
	"testing"

	"mosaic/internal/mem"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("t", 4)
	b.Compute(10)
	b.Load(0x1000)
	b.Compute(5)
	b.StoreDep(0x2000)
	b.LoadDep(0x3000)
	b.Store(0x4000)
	tr := b.Trace()
	if tr.Name != "t" || tr.Len() != 4 {
		t.Fatalf("trace = %q len %d", tr.Name, tr.Len())
	}
	a := tr.Columns().Rows()
	if a[0].Gap != 10 || a[0].Write || a[0].Dep {
		t.Errorf("access 0 = %+v", a[0])
	}
	if a[1].Gap != 5 || !a[1].Write || !a[1].Dep {
		t.Errorf("access 1 = %+v", a[1])
	}
	if a[2].Gap != 0 || a[2].Write || !a[2].Dep {
		t.Errorf("access 2 = %+v", a[2])
	}
	if a[3].Write != true || a[3].Dep {
		t.Errorf("access 3 = %+v", a[3])
	}
	// Instructions: each access is 1 instruction plus its gap.
	if got := tr.Instructions(); got != 10+5+4 {
		t.Errorf("instructions = %d, want 19", got)
	}
}

func TestFootprintAndExtent(t *testing.T) {
	b := NewBuilder("t", 3)
	b.Load(0x1000)
	b.Load(0x1800) // same 4KB page
	b.Load(0x9000)
	tr := b.Trace()
	if fp := tr.Footprint(); fp != 2*4096 {
		t.Errorf("footprint = %d, want %d", fp, 2*4096)
	}
	ext := tr.Extent()
	if ext.Start != 0x1000 || ext.End != 0x9001 {
		t.Errorf("extent = %v", ext)
	}
}

func TestValidate(t *testing.T) {
	if err := (&Trace{Name: "empty"}).Validate(); err == nil {
		t.Error("empty trace should fail validation")
	}
	b := NewBuilder("x", 1)
	b.Load(1)
	if err := b.Trace().Validate(); err != nil {
		t.Error(err)
	}
}

func TestPageHistogram(t *testing.T) {
	b := NewBuilder("t", 5)
	for i := 0; i < 3; i++ {
		b.Load(0x100000)
	}
	b.Load(0x300000)
	b.Load(0x300008)
	tr := b.Trace()
	h := tr.PageHistogram(mem.Page2M)
	if h[0] != 3 {
		t.Errorf("chunk 0 count = %d, want 3", h[0])
	}
	if h[mem.Addr(mem.Page2M)] != 2 {
		t.Errorf("chunk 1 count = %d, want 2", h[mem.Addr(mem.Page2M)])
	}
	chunks := SortedChunks(h)
	if len(chunks) != 2 || chunks[0] != 0 || chunks[1] != mem.Addr(mem.Page2M) {
		t.Errorf("sorted chunks = %v", chunks)
	}
}

func TestGapClamping(t *testing.T) {
	b := NewBuilder("t", 1)
	b.Compute(1 << 40) // absurdly large gap
	b.Load(0x1000)
	if g := b.Trace().At(0).Gap; g != 1<<30 {
		t.Errorf("gap = %d, want clamp at 2^30", g)
	}
}

func TestEmptyTraceExtent(t *testing.T) {
	tr := &Trace{}
	if !tr.Extent().Empty() {
		t.Error("empty trace should have empty extent")
	}
	if tr.Footprint() != 0 {
		t.Error("empty trace should have zero footprint")
	}
}

func TestSample(t *testing.T) {
	b := NewBuilder("t", 10)
	for i := 0; i < 10; i++ {
		b.Load(mem.Addr(i) << 12)
	}
	tr := b.Trace()
	s := tr.Sample(3, 4)
	if s.Len() != 4 {
		t.Fatalf("sample length %d, want 4", s.Len())
	}
	if s.At(0).VA != 3<<12 || s.At(3).VA != 6<<12 {
		t.Errorf("sample window wrong: %+v", s.Columns().Rows())
	}
	// Degenerate windows clamp.
	if tr.Sample(20, 5).Len() != 0 {
		t.Error("skip past end should be empty")
	}
	if tr.Sample(8, 100).Len() != 2 {
		t.Error("overlong window should clamp to the tail")
	}
	if tr.Sample(-1, -1).Len() != 10 {
		t.Error("negative args should degrade to the whole trace")
	}
}

func TestMultiSample(t *testing.T) {
	b := NewBuilder("t", 100)
	for i := 0; i < 100; i++ {
		b.Load(mem.Addr(i) << 12)
	}
	tr := b.Trace()
	s := tr.MultiSample(10, 3)
	if s.Len() != 30 {
		t.Fatalf("multisample length %d, want 30", s.Len())
	}
	// Each window starts on a period boundary.
	if s.At(3).VA != 10<<12 || s.At(6).VA != 20<<12 {
		t.Errorf("windows misplaced: %v %v", s.At(3).VA, s.At(6).VA)
	}
	// Invalid parameters return the trace unchanged.
	if tr.MultiSample(0, 3) != tr || tr.MultiSample(5, 5) != tr {
		t.Error("invalid parameters should return the receiver")
	}
}
