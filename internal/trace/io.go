package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"mosaic/internal/mem"
)

// Binary trace formats: generating a workload costs graph construction and
// kernel execution, so traces are worth persisting between sessions (the
// same practice as shipping SPEC traces to simulator users). Two wire
// formats exist (see docs/trace-format.md for the full specification):
//
// MOSTRC01 — the flat row format:
//
//	magic   [8]byte  "MOSTRC01"
//	nameLen uint16   workload name length
//	name    []byte
//	count   uint64   number of accesses
//	records count × { va uint64, gap uint32, flags uint8 }
//
// MOSTRC02 — the block-columnar format. Accesses are grouped into blocks
// of up to v02BlockCap; within a block the columns are encoded separately
// (delta+zigzag varint VAs, varint gaps, 2-bit packed flags), which
// shrinks the bundled workload traces by half or more:
//
//	magic   [8]byte  "MOSTRC02"
//	nameLen uint16
//	name    []byte
//	count   uint64   total accesses across all blocks
//	blocks  until count accesses are consumed:
//	  n          uint32  accesses in this block (1..v02BlockCap)
//	  payloadLen uint32  bytes of encoded columns that follow
//	  payload:
//	    uvarint(va[0]), then n-1 × zigzag-uvarint(va[i]-va[i-1])
//	    n × uvarint(gap[i])
//	    ceil(n/4) flag bytes: access j → byte j/4, bits (j%4)*2
//	                          (bit0 = write, bit1 = dependent)
//
// A multi-phase v02 trace appends one optional trailing section after the
// last block (absent entirely for phase-less traces, so pre-phase readers'
// files round-trip unchanged and pre-phase files decode with Phases() nil —
// the single implicit phase):
//
//	marker [4]byte "MPH1"
//	pcount uint16  number of phases (1..maxPhases)
//	phases pcount × { nameLen uint16, name []byte, lo uint64, hi uint64 }
//
// The decoded phases must form a contiguous ascending partition of
// [0, count); anything else — including a truncated section or an unknown
// marker where the section would start — is a hard decode error, never a
// silent fallback to phase-less.
//
// flags: bit0 = write, bit1 = dependent. All fixed-width integers are
// little-endian. Readers accept both formats (dispatch on magic); writers
// emit v02 unless WriteToV01 is called explicitly (v01 cannot carry
// phases).

var (
	traceMagicV01 = [8]byte{'M', 'O', 'S', 'T', 'R', 'C', '0', '1'}
	traceMagicV02 = [8]byte{'M', 'O', 'S', 'T', 'R', 'C', '0', '2'}
	// phaseMarker opens the optional trailing phase section of a v02 file.
	phaseMarker = [4]byte{'M', 'P', 'H', '1'}
)

const (
	flagWrite = 1 << 0
	flagDep   = 1 << 1

	// v01RecordBytes is the fixed size of one MOSTRC01 record.
	v01RecordBytes = 8 + 4 + 1
	// v02BlockCap bounds accesses per MOSTRC02 block; 4096 keeps a block's
	// decoded columns (~50KB) inside the L2 cache of every modelled core.
	v02BlockCap = 4096
	// maxAccesses is a sanity bound on header counts, not a design limit.
	maxAccesses = 1 << 28
	// maxNameLen bounds the workload-name field.
	maxNameLen = 1<<16 - 1
)

// v02MaxPayload bounds a block's payload length: worst-case varints for
// every column plus the flag bytes.
func v02MaxPayload(n int) int {
	return n*(binary.MaxVarintLen64+binary.MaxVarintLen32) + (n+3)/4
}

// zigzag maps a signed delta to an unsigned varint-friendly value.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// WriteTo serializes the trace in the MOSTRC02 block-columnar format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var written int64
	n, err := writeHeader(bw, traceMagicV02, t.Name, uint64(t.cols.Len()))
	written += n
	if err != nil {
		return written, err
	}

	var head [8]byte
	payload := make([]byte, 0, v02MaxPayload(v02BlockCap))
	cols := &t.cols
	for lo := 0; lo < cols.Len(); lo += v02BlockCap {
		hi := min(lo+v02BlockCap, cols.Len())
		payload = payload[:0]
		// VA column: absolute first, then zigzag deltas.
		payload = binary.AppendUvarint(payload, cols.va[lo])
		for i := lo + 1; i < hi; i++ {
			payload = binary.AppendUvarint(payload, zigzag(int64(cols.va[i])-int64(cols.va[i-1])))
		}
		// Gap column.
		for i := lo; i < hi; i++ {
			payload = binary.AppendUvarint(payload, uint64(cols.gap[i]))
		}
		// Flag column: 2 bits per access.
		var fb byte
		for i := lo; i < hi; i++ {
			j := i - lo
			if cols.Write(i) {
				fb |= flagWrite << ((j % 4) * 2)
			}
			if cols.Dep(i) {
				fb |= flagDep << ((j % 4) * 2)
			}
			if j%4 == 3 {
				payload = append(payload, fb)
				fb = 0
			}
		}
		if (hi-lo)%4 != 0 {
			payload = append(payload, fb)
		}
		binary.LittleEndian.PutUint32(head[0:4], uint32(hi-lo))
		binary.LittleEndian.PutUint32(head[4:8], uint32(len(payload)))
		if _, err := bw.Write(head[:]); err != nil {
			return written, err
		}
		written += 8
		if _, err := bw.Write(payload); err != nil {
			return written, err
		}
		written += int64(len(payload))
	}
	if len(t.phases) > 0 {
		n, err := writePhaseSection(bw, t.phases)
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// writePhaseSection emits the trailing MPH1 phase section.
func writePhaseSection(bw *bufio.Writer, phases []Phase) (int64, error) {
	var written int64
	var buf [16]byte
	copy(buf[0:4], phaseMarker[:])
	binary.LittleEndian.PutUint16(buf[4:6], uint16(len(phases)))
	if _, err := bw.Write(buf[:6]); err != nil {
		return written, err
	}
	written += 6
	for _, p := range phases {
		if len(p.Name) > maxNameLen {
			return written, fmt.Errorf("trace: phase name too long (%d bytes)", len(p.Name))
		}
		binary.LittleEndian.PutUint16(buf[0:2], uint16(len(p.Name)))
		if _, err := bw.Write(buf[:2]); err != nil {
			return written, err
		}
		written += 2
		if _, err := bw.WriteString(p.Name); err != nil {
			return written, err
		}
		written += int64(len(p.Name))
		binary.LittleEndian.PutUint64(buf[0:8], uint64(p.Lo))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(p.Hi))
		if _, err := bw.Write(buf[:16]); err != nil {
			return written, err
		}
		written += 16
	}
	return written, nil
}

// WriteToV01 serializes the trace in the legacy MOSTRC01 row format.
func (t *Trace) WriteToV01(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var written int64
	n, err := writeHeader(bw, traceMagicV01, t.Name, uint64(t.cols.Len()))
	written += n
	if err != nil {
		return written, err
	}
	// One buffered manual encoder instead of three reflective binary.Write
	// calls per record: the records are packed into a scratch buffer in
	// 13-byte strides and flushed in chunks.
	const chunk = 4096
	buf := make([]byte, 0, chunk*v01RecordBytes)
	cols := &t.cols
	for i := 0; i < cols.Len(); i++ {
		var flags uint8
		if cols.Write(i) {
			flags |= flagWrite
		}
		if cols.Dep(i) {
			flags |= flagDep
		}
		buf = binary.LittleEndian.AppendUint64(buf, cols.va[i])
		buf = binary.LittleEndian.AppendUint32(buf, cols.gap[i])
		buf = append(buf, flags)
		if len(buf) >= chunk*v01RecordBytes {
			if _, err := bw.Write(buf); err != nil {
				return written, err
			}
			written += int64(len(buf))
			buf = buf[:0]
		}
	}
	if _, err := bw.Write(buf); err != nil {
		return written, err
	}
	written += int64(len(buf))
	return written, bw.Flush()
}

// writeHeader emits the common magic/name/count prefix.
func writeHeader(bw *bufio.Writer, magic [8]byte, name string, count uint64) (int64, error) {
	if len(name) > maxNameLen {
		return 0, fmt.Errorf("trace: name too long (%d bytes)", len(name))
	}
	var head [10]byte
	copy(head[0:8], magic[:])
	binary.LittleEndian.PutUint16(head[8:10], uint16(len(name)))
	if _, err := bw.Write(head[:]); err != nil {
		return 0, err
	}
	if _, err := bw.WriteString(name); err != nil {
		return int64(10), err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], count)
	if _, err := bw.Write(cnt[:]); err != nil {
		return int64(10 + len(name)), err
	}
	return int64(10 + len(name) + 8), nil
}

// countingReader tracks bytes consumed from the underlying reader.
type countingReader struct {
	br   *bufio.Reader
	read int64
}

func (c *countingReader) full(p []byte) error {
	n, err := io.ReadFull(c.br, p)
	c.read += int64(n)
	return err
}

// ReadFrom deserializes a trace written by WriteTo or WriteToV01 (dispatch
// on the magic), replacing the receiver's contents.
func (t *Trace) ReadFrom(r io.Reader) (int64, error) {
	cr := &countingReader{br: bufio.NewReaderSize(r, 1<<20)}
	var magic [8]byte
	if err := cr.full(magic[:]); err != nil {
		return cr.read, err
	}
	var v2 bool
	switch magic {
	case traceMagicV01:
	case traceMagicV02:
		v2 = true
	default:
		return cr.read, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	var head [10]byte
	if err := cr.full(head[:2]); err != nil {
		return cr.read, err
	}
	nameLen := binary.LittleEndian.Uint16(head[:2])
	name := make([]byte, nameLen)
	if err := cr.full(name); err != nil {
		return cr.read, err
	}
	if err := cr.full(head[:8]); err != nil {
		return cr.read, err
	}
	count := binary.LittleEndian.Uint64(head[:8])
	if count > maxAccesses {
		return cr.read, fmt.Errorf("trace: implausible access count %d", count)
	}

	var cols Columns
	// Grow incrementally rather than trusting the header's count: a forged
	// count must not trigger a giant up-front allocation.
	cols.Grow(int(min(count, 1<<16)))
	var err error
	var phases []Phase
	if v2 {
		err = readV02(cr, &cols, count)
		if err == nil {
			phases, err = readPhaseSection(cr, cols.Len())
		}
	} else {
		err = readV01(cr, &cols, count)
	}
	if err != nil {
		return cr.read, err
	}
	t.Name = string(name)
	t.cols = cols
	t.phases = phases
	return cr.read, nil
}

// readPhaseSection decodes the optional trailing MPH1 section of a v02
// stream. A clean EOF right after the last access block means a phase-less
// trace; any bytes present must be a complete, valid phase section.
func readPhaseSection(cr *countingReader, n int) ([]Phase, error) {
	var marker [4]byte
	if err := cr.full(marker[:]); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, fmt.Errorf("trace: truncated phase marker: %w", err)
	}
	if marker != phaseMarker {
		return nil, fmt.Errorf("trace: bad phase-section marker %q", marker[:])
	}
	var buf [16]byte
	if err := cr.full(buf[:2]); err != nil {
		return nil, fmt.Errorf("trace: truncated phase count: %w", err)
	}
	pcount := binary.LittleEndian.Uint16(buf[:2])
	if pcount == 0 || int(pcount) > maxPhases {
		return nil, fmt.Errorf("trace: implausible phase count %d", pcount)
	}
	phases := make([]Phase, 0, pcount)
	for i := 0; i < int(pcount); i++ {
		if err := cr.full(buf[:2]); err != nil {
			return nil, fmt.Errorf("trace: truncated phase %d: %w", i, err)
		}
		nameLen := binary.LittleEndian.Uint16(buf[:2])
		name := make([]byte, nameLen)
		if err := cr.full(name); err != nil {
			return nil, fmt.Errorf("trace: truncated phase %d name: %w", i, err)
		}
		if err := cr.full(buf[:16]); err != nil {
			return nil, fmt.Errorf("trace: truncated phase %d bounds: %w", i, err)
		}
		lo := binary.LittleEndian.Uint64(buf[0:8])
		hi := binary.LittleEndian.Uint64(buf[8:16])
		if lo > maxAccesses || hi > maxAccesses {
			return nil, fmt.Errorf("trace: implausible phase %d bounds [%d, %d)", i, lo, hi)
		}
		phases = append(phases, Phase{Name: string(name), Lo: int(lo), Hi: int(hi)})
	}
	if err := validatePhases(phases, n); err != nil {
		return nil, err
	}
	return phases, nil
}

// readV01 decodes the fixed-width record stream with one buffered manual
// decoder instead of three reflective binary.Read calls per record.
func readV01(cr *countingReader, cols *Columns, count uint64) error {
	const chunk = 4096
	buf := make([]byte, chunk*v01RecordBytes)
	for done := uint64(0); done < count; {
		n := min(uint64(chunk), count-done)
		b := buf[:n*v01RecordBytes]
		if err := cr.full(b); err != nil {
			return fmt.Errorf("trace: truncated at access %d: %w", done, err)
		}
		for i := uint64(0); i < n; i++ {
			rec := b[i*v01RecordBytes:]
			flags := rec[12]
			cols.Append(Access{
				VA:    mem.Addr(binary.LittleEndian.Uint64(rec[0:8])),
				Gap:   binary.LittleEndian.Uint32(rec[8:12]),
				Write: flags&flagWrite != 0,
				Dep:   flags&flagDep != 0,
			})
		}
		done += n
	}
	return nil
}

// v02Scratch holds the column buffers one block decode fills before the
// accesses are appended. A trace runs to thousands of blocks and concurrent
// sweep sessions load several traces at once, so the buffers are pooled
// rather than allocated per block (or held per reader).
type v02Scratch struct {
	vas  []uint64
	gaps []uint32
}

var v02ScratchPool = sync.Pool{
	New: func() any {
		return &v02Scratch{
			vas:  make([]uint64, v02BlockCap),
			gaps: make([]uint32, v02BlockCap),
		}
	},
}

// readV02 decodes the block-columnar stream.
func readV02(cr *countingReader, cols *Columns, count uint64) error {
	var head [8]byte
	payload := make([]byte, 0, v02MaxPayload(v02BlockCap))
	scratch := v02ScratchPool.Get().(*v02Scratch)
	defer v02ScratchPool.Put(scratch)
	for done := uint64(0); done < count; {
		if err := cr.full(head[:]); err != nil {
			return fmt.Errorf("trace: truncated block header at access %d: %w", done, err)
		}
		n := binary.LittleEndian.Uint32(head[0:4])
		payloadLen := binary.LittleEndian.Uint32(head[4:8])
		if n == 0 || n > v02BlockCap || uint64(n) > count-done {
			return fmt.Errorf("trace: forged block size %d (%d of %d accesses consumed)", n, done, count)
		}
		if int(payloadLen) > v02MaxPayload(int(n)) {
			return fmt.Errorf("trace: forged block payload length %d for %d accesses", payloadLen, n)
		}
		if cap(payload) < int(payloadLen) {
			payload = make([]byte, payloadLen)
		}
		payload = payload[:payloadLen]
		if err := cr.full(payload); err != nil {
			return fmt.Errorf("trace: truncated block at access %d: %w", done, err)
		}
		if err := decodeBlock(payload, cols, int(n), scratch); err != nil {
			return fmt.Errorf("trace: block at access %d: %w", done, err)
		}
		done += uint64(n)
	}
	return nil
}

// decodeBlock appends one block's n accesses from its encoded payload,
// staging the columns in the caller's scratch buffers.
func decodeBlock(payload []byte, cols *Columns, n int, scratch *v02Scratch) error {
	pos := 0
	varint := func() (uint64, bool) {
		v, w := binary.Uvarint(payload[pos:])
		if w <= 0 {
			return 0, false
		}
		pos += w
		return v, true
	}
	vas := scratch.vas[:n]
	va, ok := varint()
	if !ok {
		return fmt.Errorf("bad first VA varint")
	}
	vas[0] = va
	for i := 1; i < n; i++ {
		d, ok := varint()
		if !ok {
			return fmt.Errorf("bad VA delta varint (access %d)", i)
		}
		va = uint64(int64(va) + unzigzag(d))
		vas[i] = va
	}
	gaps := scratch.gaps[:n]
	for i := 0; i < n; i++ {
		g, ok := varint()
		if !ok || g > 1<<32-1 {
			return fmt.Errorf("bad gap varint (access %d)", i)
		}
		gaps[i] = uint32(g)
	}
	flagBytes := (n + 3) / 4
	if len(payload)-pos != flagBytes {
		return fmt.Errorf("flag section is %d bytes, want %d", len(payload)-pos, flagBytes)
	}
	flags := payload[pos:]
	for i := 0; i < n; i++ {
		f := flags[i/4] >> ((i % 4) * 2)
		cols.Append(Access{
			VA:    mem.Addr(vas[i]),
			Gap:   gaps[i],
			Write: f&flagWrite != 0,
			Dep:   f&flagDep != 0,
		})
	}
	return nil
}

// Save writes the trace to a file (in the current default format). The
// write is atomic — a temp file in the target directory, synced, then
// renamed over path — so an interrupted run never leaves a truncated
// MOSTRC02 file behind to poison a trace cache: readers see either the old
// complete file or the new complete file, never a prefix.
func (t *Trace) Save(path string) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()
		os.Remove(tmp)
	}
	if _, err := t.WriteTo(f); err != nil {
		cleanup()
		return err
	}
	// Sync before rename: a crash after the rename must not resurrect an
	// empty file from an unflushed page cache.
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Load reads a trace from a file written by Save (either format).
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var t Trace
	if _, err := t.ReadFrom(f); err != nil {
		return nil, fmt.Errorf("trace: loading %s: %w", path, err)
	}
	return &t, nil
}
