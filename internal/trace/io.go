package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"mosaic/internal/mem"
)

// Binary trace format: generating a workload costs graph construction and
// kernel execution, so traces are worth persisting between sessions (the
// same practice as shipping SPEC traces to simulator users).
//
//	magic   [8]byte  "MOSTRC01"
//	nameLen uint16   workload name length
//	name    []byte
//	count   uint64   number of accesses
//	records count × { va uint64, gap uint32, flags uint8 }
//
// flags: bit0 = write, bit1 = dependent. All integers little-endian.

var traceMagic = [8]byte{'M', 'O', 'S', 'T', 'R', 'C', '0', '1'}

const (
	flagWrite = 1 << 0
	flagDep   = 1 << 1
)

// WriteTo serializes the trace.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var written int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	if err := put(traceMagic); err != nil {
		return written, err
	}
	if len(t.Name) > 1<<16-1 {
		return written, fmt.Errorf("trace: name too long (%d bytes)", len(t.Name))
	}
	if err := put(uint16(len(t.Name))); err != nil {
		return written, err
	}
	if err := put([]byte(t.Name)); err != nil {
		return written, err
	}
	if err := put(uint64(len(t.Accesses))); err != nil {
		return written, err
	}
	for _, a := range t.Accesses {
		var flags uint8
		if a.Write {
			flags |= flagWrite
		}
		if a.Dep {
			flags |= flagDep
		}
		if err := put(uint64(a.VA)); err != nil {
			return written, err
		}
		if err := put(a.Gap); err != nil {
			return written, err
		}
		if err := put(flags); err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadFrom deserializes a trace written by WriteTo, replacing the
// receiver's contents.
func (t *Trace) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var read int64
	get := func(v any) error {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return err
		}
		read += int64(binary.Size(v))
		return nil
	}
	var magic [8]byte
	if err := get(&magic); err != nil {
		return read, err
	}
	if magic != traceMagic {
		return read, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	var nameLen uint16
	if err := get(&nameLen); err != nil {
		return read, err
	}
	name := make([]byte, nameLen)
	if err := get(name); err != nil {
		return read, err
	}
	var count uint64
	if err := get(&count); err != nil {
		return read, err
	}
	const maxAccesses = 1 << 28 // a sanity bound, not a design limit
	if count > maxAccesses {
		return read, fmt.Errorf("trace: implausible access count %d", count)
	}
	// Grow incrementally rather than trusting the header's count: a forged
	// count must not trigger a giant up-front allocation.
	accesses := make([]Access, 0, min(count, 1<<16))
	for i := uint64(0); i < count; i++ {
		var va uint64
		var gap uint32
		var flags uint8
		if err := get(&va); err != nil {
			return read, err
		}
		if err := get(&gap); err != nil {
			return read, err
		}
		if err := get(&flags); err != nil {
			return read, err
		}
		accesses = append(accesses, Access{
			VA:    mem.Addr(va),
			Gap:   gap,
			Write: flags&flagWrite != 0,
			Dep:   flags&flagDep != 0,
		})
	}
	t.Name = string(name)
	t.Accesses = accesses
	return read, nil
}

// Save writes the trace to a file.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a trace from a file written by Save.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var t Trace
	if _, err := t.ReadFrom(f); err != nil {
		return nil, fmt.Errorf("trace: loading %s: %w", path, err)
	}
	return &t, nil
}
