package trace

import "testing"

// flatten re-concatenates a chunking's windows for comparison against the
// unchunked schedule.
func flatten(chunks []Chunk) []Window {
	var out []Window
	for _, c := range chunks {
		out = append(out, c.Windows...)
	}
	return out
}

func sameWindows(a, b []Window) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestChunksExactEvenSplit(t *testing.T) {
	const n = 1 << 20
	chunks := WindowPlan{Windows: 8}.Chunks(SamplePlan{}, n)
	if len(chunks) != 8 {
		t.Fatalf("%d chunks, want 8", len(chunks))
	}
	prev := 0
	for i, c := range chunks {
		if len(c.Windows) != 1 || !c.Windows[0].Measure {
			t.Fatalf("chunk %d windows %+v, want one measurement window", i, c.Windows)
		}
		w := c.Windows[0]
		if c.Pos != w.Lo || w.Lo != prev {
			t.Fatalf("chunk %d starts at %d (Pos %d), want %d — exact chunks must abut", i, w.Lo, c.Pos, prev)
		}
		if got, want := w.Len(), n/8; got != want {
			t.Fatalf("chunk %d length %d, want %d", i, got, want)
		}
		prev = w.Hi
	}
	if prev != n {
		t.Fatalf("chunks end at %d, want %d", prev, n)
	}
}

// TestChunksMinWorkClamp: a trace too small for the requested K yields
// fewer, larger chunks — never chunks below the per-chunk work floor.
func TestChunksMinWorkClamp(t *testing.T) {
	cases := []struct {
		n, k, want int
	}{
		{minChunkAccesses - 1, 8, 1},     // below one floor: no chunking
		{2 * minChunkAccesses, 8, 2},     // room for exactly two
		{16 * minChunkAccesses, 4, 4},    // plenty of room: K honored
		{3*minChunkAccesses + 10, 64, 3}, // clamped to work/floor
	}
	for _, tc := range cases {
		chunks := WindowPlan{Windows: tc.k}.Chunks(SamplePlan{}, tc.n)
		if len(chunks) != tc.want {
			t.Errorf("n=%d k=%d: %d chunks, want %d", tc.n, tc.k, len(chunks), tc.want)
		}
		// Exact chunks split the whole-trace window but must still abut and
		// cover [0, n) as measurement windows.
		prev := 0
		for _, w := range flatten(chunks) {
			if w.Lo != prev || !w.Measure {
				t.Errorf("n=%d k=%d: window %+v breaks exact coverage at %d", tc.n, tc.k, w, prev)
			}
			prev = w.Hi
		}
		if prev != tc.n {
			t.Errorf("n=%d k=%d: coverage ends at %d", tc.n, tc.k, prev)
		}
	}
}

// TestChunksSampledCutsOnlyAtGaps: under a sampling plan, chunk boundaries
// fall only where the schedule skips accesses, windows are never split, and
// the concatenation of all chunks is exactly the unchunked schedule.
func TestChunksSampledCutsOnlyAtGaps(t *testing.T) {
	const n = 1 << 20
	plan := SamplePlan{Period: 1 << 14, MeasureLen: 1 << 11, WarmupLen: 1 << 10, PrologueLen: 1 << 13}
	ws := plan.Windows(n)
	chunks := WindowPlan{Windows: 8}.Chunks(plan, n)
	if len(chunks) < 2 {
		t.Fatalf("%d chunks, want several", len(chunks))
	}
	if !sameWindows(flatten(chunks), ws) {
		t.Fatal("chunking does not re-concatenate to the schedule")
	}
	for ci := 1; ci < len(chunks); ci++ {
		prevLast := chunks[ci-1].Windows[len(chunks[ci-1].Windows)-1]
		first := chunks[ci].Windows[0]
		if chunks[ci].Pos != first.Lo {
			t.Fatalf("chunk %d Pos %d != first window Lo %d", ci, chunks[ci].Pos, first.Lo)
		}
		if first.Lo <= prevLast.Hi {
			t.Fatalf("chunk %d starts at %d, abutting previous end %d — cuts must fall in gaps",
				ci, first.Lo, prevLast.Hi)
		}
		// A cut in a gap can never separate a warmup window from the
		// measurement window it precedes: warmups abut their windows.
		if !first.Measure {
			if len(chunks[ci].Windows) < 2 || chunks[ci].Windows[1].Lo != first.Hi {
				t.Fatalf("chunk %d opens with a warmup window not abutting a measurement window", ci)
			}
		}
	}
	// The prologue (first measurement window) stays in chunk 0.
	if w := chunks[0].Windows[0]; !w.Measure || w.Lo != 0 {
		t.Fatalf("chunk 0 opens with %+v, want the prologue measurement window at 0", w)
	}
}

// TestChunksDisabledPlanSingleChunk: K <= 1 always yields the whole
// schedule as one chunk, whatever the trace size.
func TestChunksDisabledPlanSingleChunk(t *testing.T) {
	for _, k := range []int{0, 1} {
		chunks := WindowPlan{Windows: k}.Chunks(SamplePlan{}, 1<<20)
		if len(chunks) != 1 || chunks[0].Pos != 0 {
			t.Fatalf("k=%d: %+v, want one chunk at 0", k, chunks)
		}
		if (WindowPlan{Windows: k}).Enabled() {
			t.Fatalf("k=%d reports enabled", k)
		}
	}
	if got := (WindowPlan{Windows: 4}).Chunks(SamplePlan{}, 0); got != nil {
		t.Fatalf("empty trace chunking = %+v, want nil", got)
	}
}
