package trace

import "testing"

// checkSchedule validates the structural invariants every schedule must
// hold: ordered, non-overlapping, clipped to [0, n), warmup immediately
// before a measurement window, no empty windows.
func checkSchedule(t *testing.T, ws []Window, n int) {
	t.Helper()
	prev := 0
	for i, w := range ws {
		if w.Lo < prev || w.Hi > n || w.Len() <= 0 {
			t.Fatalf("window %d = %+v out of order or empty (prev end %d, n %d)", i, w, prev, n)
		}
		if !w.Measure {
			if i+1 >= len(ws) || !ws[i+1].Measure || ws[i+1].Lo != w.Hi {
				t.Fatalf("warmup window %d = %+v not followed by an abutting measurement window", i, w)
			}
		}
		prev = w.Hi
	}
}

func TestSamplePlanDisabledCoversWholeTrace(t *testing.T) {
	for _, p := range []SamplePlan{{}, {Period: 0, MeasureLen: 5}, {Period: -1}} {
		ws := p.Windows(100)
		if len(ws) != 1 || ws[0] != (Window{Lo: 0, Hi: 100, Measure: true}) {
			t.Fatalf("plan %+v: windows = %+v, want one whole-trace measurement window", p, ws)
		}
	}
	if ws := (SamplePlan{Period: 10}).Windows(0); ws != nil {
		t.Fatalf("empty trace: windows = %+v, want nil", ws)
	}
}

func TestSamplePlanSchedule(t *testing.T) {
	p := SamplePlan{Period: 100, MeasureLen: 10, WarmupLen: 20}
	n := 250
	ws := p.Windows(n)
	checkSchedule(t, ws, n)
	want := []Window{
		{Lo: 0, Hi: 10, Measure: true}, // first warmup clipped to trace start
		{Lo: 80, Hi: 100},
		{Lo: 100, Hi: 110, Measure: true},
		{Lo: 180, Hi: 200},
		{Lo: 200, Hi: 210, Measure: true},
	}
	if len(ws) != len(want) {
		t.Fatalf("windows = %+v, want %+v", ws, want)
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Fatalf("window %d = %+v, want %+v", i, ws[i], want[i])
		}
	}
	if got := p.Measured(n); got != 30 {
		t.Fatalf("Measured = %d, want 30", got)
	}
}

// TestSamplePlanFullCoverageIsExact: once MeasureLen reaches Period, the
// schedule must degenerate to the exact-replay schedule — a single
// measurement window with no warmup — whatever WarmupLen says.
func TestSamplePlanFullCoverageIsExact(t *testing.T) {
	for _, p := range []SamplePlan{
		{Period: 64, MeasureLen: 64, WarmupLen: 16},
		{Period: 64, MeasureLen: 100, WarmupLen: 200},
		{Period: 1, MeasureLen: 1, WarmupLen: 3},
	} {
		ws := p.Windows(1000)
		if len(ws) != 1 || ws[0] != (Window{Lo: 0, Hi: 1000, Measure: true}) {
			t.Fatalf("plan %+v: windows = %+v, want one merged whole-trace window", p, ws)
		}
		if p.Measured(1000) != 1000 {
			t.Fatalf("plan %+v: Measured != n", p)
		}
	}
}

// TestSamplePlanLongWarmup: warmup longer than the skipped stretch must clip
// against the previous measurement window, never overlap it.
func TestSamplePlanLongWarmup(t *testing.T) {
	p := SamplePlan{Period: 10, MeasureLen: 4, WarmupLen: 100}
	n := 35
	ws := p.Windows(n)
	checkSchedule(t, ws, n)
	want := []Window{
		{Lo: 0, Hi: 4, Measure: true},
		{Lo: 4, Hi: 10},
		{Lo: 10, Hi: 14, Measure: true},
		{Lo: 14, Hi: 20},
		{Lo: 20, Hi: 24, Measure: true},
		{Lo: 24, Hi: 30},
		{Lo: 30, Hi: 34, Measure: true},
	}
	for i := range want {
		if i >= len(ws) || ws[i] != want[i] {
			t.Fatalf("windows = %+v, want %+v", ws, want)
		}
	}
}

func TestSamplePlanDefaultsAndClamps(t *testing.T) {
	// MeasureLen <= 0 clamps to 1 access per period; negative warmup to 0.
	p := SamplePlan{Period: 10, MeasureLen: 0, WarmupLen: -5}
	ws := p.Windows(25)
	checkSchedule(t, ws, 25)
	if got := p.Measured(25); got != 3 {
		t.Fatalf("Measured = %d, want 3 (one access per period)", got)
	}
	for _, w := range ws {
		if !w.Measure {
			t.Fatalf("no warmup expected, got %+v", ws)
		}
	}
}

// TestSamplePlanPrologue: PrologueLen stretches the first measurement
// window; later windows keep the periodic schedule, and the prologue
// stratum length is reported by PrologueMeasured.
func TestSamplePlanPrologue(t *testing.T) {
	p := SamplePlan{Period: 100, MeasureLen: 10, WarmupLen: 20, PrologueLen: 40}
	n := 250
	ws := p.Windows(n)
	checkSchedule(t, ws, n)
	want := []Window{
		{Lo: 0, Hi: 40, Measure: true},
		{Lo: 80, Hi: 100},
		{Lo: 100, Hi: 110, Measure: true},
		{Lo: 180, Hi: 200},
		{Lo: 200, Hi: 210, Measure: true},
	}
	if len(ws) != len(want) {
		t.Fatalf("windows = %+v, want %+v", ws, want)
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Fatalf("window %d = %+v, want %+v", i, ws[i], want[i])
		}
	}
	if got := p.Measured(n); got != 60 {
		t.Fatalf("Measured = %d, want 60", got)
	}
	if got := p.PrologueMeasured(n); got != 40 {
		t.Fatalf("PrologueMeasured = %d, want 40", got)
	}

	// A prologue reaching past later periods absorbs their windows and
	// clips their warmups — the schedule stays ordered and non-overlapping.
	long := SamplePlan{Period: 30, MeasureLen: 5, WarmupLen: 10, PrologueLen: 70}
	lws := long.Windows(200)
	checkSchedule(t, lws, 200)
	if lws[0] != (Window{Lo: 0, Hi: 70, Measure: true}) {
		t.Fatalf("long prologue: first window %+v, want [0,70) measured", lws[0])
	}
	if got := long.PrologueMeasured(200); got != 70 {
		t.Fatalf("long prologue: PrologueMeasured = %d, want 70", got)
	}

	// PrologueLen shorter than MeasureLen is a no-op, and a disabled plan's
	// prologue is the whole trace.
	if got := (SamplePlan{Period: 100, MeasureLen: 10, PrologueLen: 5}).Windows(250)[0]; got != (Window{Lo: 0, Hi: 10, Measure: true}) {
		t.Fatalf("short prologue: first window %+v, want [0,10) measured", got)
	}
	if got := (SamplePlan{}).PrologueMeasured(123); got != 123 {
		t.Fatalf("disabled plan: PrologueMeasured = %d, want 123", got)
	}
}

func TestColumnsWindows(t *testing.T) {
	var c Columns
	for i := 0; i < 50; i++ {
		c.Append(Access{VA: 0x1000})
	}
	ws := c.Windows(SamplePlan{Period: 25, MeasureLen: 5})
	checkSchedule(t, ws, 50)
	if len(ws) != 2 || ws[0].Lo != 0 || ws[1].Lo != 25 {
		t.Fatalf("windows = %+v", ws)
	}
}
