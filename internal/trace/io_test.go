package trace

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mosaic/internal/mem"
)

func randomTestTrace(seed int64, n int) *Trace {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("random/test", n)
	for i := 0; i < n; i++ {
		b.Compute(uint64(rng.Intn(100)))
		va := mem.Addr(rng.Uint64() % (1 << 47))
		switch rng.Intn(4) {
		case 0:
			b.Load(va)
		case 1:
			b.LoadDep(va)
		case 2:
			b.Store(va)
		default:
			b.StoreDep(va)
		}
	}
	return b.Trace()
}

func TestRoundTripBuffer(t *testing.T) {
	orig := randomTestTrace(1, 5000)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var got Trace
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name {
		t.Errorf("name = %q", got.Name)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("length %d vs %d", got.Len(), orig.Len())
	}
	for i := 0; i < orig.Len(); i++ {
		if got.At(i) != orig.At(i) {
			t.Fatalf("access %d: %+v vs %+v", i, got.At(i), orig.At(i))
		}
	}
}

func TestRoundTripFile(t *testing.T) {
	orig := randomTestTrace(2, 1000)
	path := filepath.Join(t.TempDir(), "t.mostrace")
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() || got.Instructions() != orig.Instructions() {
		t.Errorf("loaded %d/%d, want %d/%d", got.Len(), got.Instructions(), orig.Len(), orig.Instructions())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	var tr Trace
	if _, err := tr.ReadFrom(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Error("garbage should be rejected")
	}
	// Truncated valid prefix.
	orig := randomTestTrace(3, 100)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := tr.ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream should be rejected")
	}
	// Implausible count.
	head := append([]byte{}, buf.Bytes()[:10+len(orig.Name)]...)
	head = append(head, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff)
	if _, err := tr.ReadFrom(bytes.NewReader(head)); err == nil {
		t.Error("absurd count should be rejected")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing file should fail")
	}
}

func FuzzTraceReadFrom(f *testing.F) {
	orig := randomTestTrace(4, 50)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("MOSTRC01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var tr Trace
		// Must never panic, only return errors.
		_, _ = tr.ReadFrom(bytes.NewReader(data))
	})
}

// TestDecodeBlockNoAllocs pins the pooled-scratch property of the MOSTRC02
// decode path: with the column buffers coming from v02ScratchPool, decoding
// a block must not allocate (beyond the Columns growth amortized away here
// by pre-growing).
func TestDecodeBlockNoAllocs(t *testing.T) {
	tr := randomTestTrace(9, v02BlockCap)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	off := 8 + 2 + len(tr.Name) + 8 // magic + nameLen + name + count
	n := int(binary.LittleEndian.Uint32(raw[off : off+4]))
	payloadLen := int(binary.LittleEndian.Uint32(raw[off+4 : off+8]))
	payload := raw[off+8 : off+8+payloadLen]
	if n != v02BlockCap {
		t.Fatalf("first block holds %d accesses, want %d", n, v02BlockCap)
	}

	const runs = 10
	var cols Columns
	cols.Grow((runs + 2) * v02BlockCap)
	scratch := v02ScratchPool.Get().(*v02Scratch)
	defer v02ScratchPool.Put(scratch)
	allocs := testing.AllocsPerRun(runs, func() {
		if err := decodeBlock(payload, &cols, n, scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("decodeBlock allocates %.1f objects per block, want 0", allocs)
	}
}

// TestSaveAtomicNoLeftovers: Save goes through a temp file + rename, so a
// completed Save leaves exactly the target file — no .tmp droppings — and
// overwrites an existing file in place.
func TestSaveAtomicNoLeftovers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.mostrace")
	for seed := int64(1); seed <= 2; seed++ { // second pass overwrites
		orig := randomTestTrace(seed, 500)
		if err := orig.Save(path); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 || entries[0].Name() != "t.mostrace" {
			names := make([]string, 0, len(entries))
			for _, e := range entries {
				names = append(names, e.Name())
			}
			t.Fatalf("directory holds %v, want exactly t.mostrace", names)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != orig.Len() {
			t.Fatalf("loaded %d accesses, want %d", got.Len(), orig.Len())
		}
	}
}

// TestLoadRejectsTruncated: every proper prefix of a MOSTRC02 file —
// what a crash mid-write would have left before Save became atomic — must
// fail to load rather than parse as a shorter trace.
func TestLoadRejectsTruncated(t *testing.T) {
	orig := randomTestTrace(7, 9000) // spans multiple v02 blocks
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	path := filepath.Join(t.TempDir(), "t.mostrace")
	for _, frac := range []float64{0.1, 0.5, 0.9, 0.999} {
		cut := int(float64(len(full)) * frac)
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Fatalf("truncated file (%d of %d bytes) loaded without error", cut, len(full))
		}
	}
}
