package trace

// Systematic interval sampling (SMARTS-style): instead of replaying every
// access of a trace, a sampled replay measures a short window at the start
// of each fixed-length period, runs a functional warmup over the accesses
// immediately preceding each window, and skips the rest entirely. The
// schedule is purely positional — it depends only on the trace length — so
// every engine of a fused batch (cpu.RunBatch, partialsim.RunBatch) replays
// the exact same windows and the fused kernels compose with sampling.

// Window is one scheduled interval of accesses [Lo, Hi). Measure selects
// full measurement; otherwise the interval is functional warmup — model
// state (TLB, caches, PWCs, translator memo) advances but no counters or
// cycles accumulate. Accesses not covered by any window are skipped.
type Window struct {
	Lo, Hi  int
	Measure bool
}

// Len returns the number of accesses in the window.
func (w Window) Len() int { return w.Hi - w.Lo }

// SamplePlan describes a systematic-sampling schedule: a measurement window
// of MeasureLen accesses at the start of every Period accesses, each
// preceded by WarmupLen accesses of functional warmup. The zero value (and
// any plan with Period <= 0) means exact replay: one measurement window
// covering the whole trace.
//
// A plan whose windows cover every access (MeasureLen >= Period) degenerates
// to exact replay and is required to be bit-identical to it — warmup
// intervals are clipped against already-scheduled windows, so none survive.
//
// PrologueLen stretches the first window: the opening PrologueLen accesses
// replay exactly, in one measurement window, before the periodic schedule
// takes over. Traces front-load their transient — compulsory TLB and cache
// misses cluster in the opening accesses, where the miss cost per access can
// be an order of magnitude above the whole-trace average — so a schedule
// that samples the prologue like any other window lets that burst leak into
// the extrapolation. Measuring the prologue exactly removes the bias at the
// source and gives the estimator a separate stratum (see sim.Sampling): the
// prologue's counters are taken as-is and only the steady-state remainder is
// scaled up.
type SamplePlan struct {
	Period      int
	MeasureLen  int
	WarmupLen   int
	PrologueLen int
}

// Enabled reports whether the plan actually samples (Period > 0).
func (p SamplePlan) Enabled() bool { return p.Period > 0 }

// Windows returns the replay schedule over a trace of n accesses: clipped
// to [0, n), in ascending order, non-overlapping, with abutting measurement
// windows merged. Accesses between windows are meant to be skipped.
func (p SamplePlan) Windows(n int) []Window {
	if n <= 0 {
		return nil
	}
	if !p.Enabled() {
		return []Window{{Lo: 0, Hi: n, Measure: true}}
	}
	measure := p.MeasureLen
	if measure < 1 {
		measure = 1
	}
	warm := p.WarmupLen
	if warm < 0 {
		warm = 0
	}
	var out []Window
	for start := 0; start < n; start += p.Period {
		ml := measure
		if start == 0 && p.PrologueLen > ml {
			ml = p.PrologueLen
		}
		mHi := min(start+ml, n)
		// Warmup for this window, clipped against whatever is already
		// scheduled (an earlier window may reach past start-warm).
		wLo := start - warm
		if k := len(out); k > 0 && wLo < out[k-1].Hi {
			wLo = out[k-1].Hi
		}
		if wLo < 0 {
			wLo = 0
		}
		if wLo < start {
			out = append(out, Window{Lo: wLo, Hi: start})
		}
		// The measurement window, merged into a preceding abutting one.
		if k := len(out); k > 0 && out[k-1].Measure && out[k-1].Hi >= start {
			if mHi > out[k-1].Hi {
				out[k-1].Hi = mHi
			}
		} else {
			out = append(out, Window{Lo: start, Hi: mHi, Measure: true})
		}
	}
	return out
}

// PrologueMeasured returns the length of the first measurement window over
// a trace of n accesses — the exactly-measured prologue stratum of the
// stratified extrapolation. Under a disabled or whole-trace-covering plan
// this is n itself (one merged window).
func (p SamplePlan) PrologueMeasured(n int) int {
	for _, w := range p.Windows(n) {
		if w.Measure {
			return w.Len()
		}
	}
	return 0
}

// Measured returns how many of n accesses fall inside measurement windows.
func (p SamplePlan) Measured(n int) int {
	total := 0
	for _, w := range p.Windows(n) {
		if w.Measure {
			total += w.Len()
		}
	}
	return total
}

// Windows returns the column set's replay schedule under the plan — the
// window iterator the replay kernels walk (a convenience over
// plan.Windows(c.Len())).
func (c *Columns) Windows(p SamplePlan) []Window {
	return p.Windows(c.Len())
}
