package trace

import (
	"bytes"
	"testing"
)

// phasedTestTrace builds a trace with three regimes via BeginPhase.
func phasedTestTrace(n int) *Trace {
	b := NewBuilder("phased/test", n)
	b.BeginPhase("build")
	for b.Len() < n/3 {
		b.Store(0x1000)
	}
	b.BeginPhase("probe")
	for b.Len() < 2*n/3 {
		b.LoadDep(0x2000)
	}
	b.BeginPhase("scan")
	for b.Len() < n {
		b.Load(0x3000)
	}
	return b.Trace()
}

func TestSetPhasesValidation(t *testing.T) {
	tr := strideTestTrace(1, 100)
	cases := []struct {
		name   string
		phases []Phase
		ok     bool
	}{
		{"nil clears", nil, true},
		{"whole trace", []Phase{{Name: "all", Lo: 0, Hi: 100}}, true},
		{"two abutting", []Phase{{Name: "a", Lo: 0, Hi: 40}, {Name: "b", Lo: 40, Hi: 100}}, true},
		{"first not zero", []Phase{{Name: "a", Lo: 1, Hi: 100}}, false},
		{"gap", []Phase{{Name: "a", Lo: 0, Hi: 40}, {Name: "b", Lo: 50, Hi: 100}}, false},
		{"overlap", []Phase{{Name: "a", Lo: 0, Hi: 60}, {Name: "b", Lo: 40, Hi: 100}}, false},
		{"empty phase", []Phase{{Name: "a", Lo: 0, Hi: 0}, {Name: "b", Lo: 0, Hi: 100}}, false},
		{"short", []Phase{{Name: "a", Lo: 0, Hi: 99}}, false},
		{"long", []Phase{{Name: "a", Lo: 0, Hi: 101}}, false},
	}
	for _, tc := range cases {
		if err := tr.SetPhases(tc.phases); (err == nil) != tc.ok {
			t.Errorf("%s: SetPhases err = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestBuilderBeginPhase(t *testing.T) {
	t.Run("no marks means nil phases", func(t *testing.T) {
		if got := strideTestTrace(2, 50).Phases(); got != nil {
			t.Fatalf("phases = %v, want nil", got)
		}
	})
	t.Run("three regimes partition the trace", func(t *testing.T) {
		tr := phasedTestTrace(90)
		ph := tr.Phases()
		if len(ph) != 3 {
			t.Fatalf("phases = %v, want 3", ph)
		}
		want := []Phase{{"build", 0, 30}, {"probe", 30, 60}, {"scan", 60, 90}}
		for i := range want {
			if ph[i] != want[i] {
				t.Errorf("phase %d = %+v, want %+v", i, ph[i], want[i])
			}
		}
	})
	t.Run("late first mark creates pre phase", func(t *testing.T) {
		b := NewBuilder("t", 4)
		b.Load(0x10)
		b.BeginPhase("rest")
		b.Load(0x20)
		ph := b.Trace().Phases()
		if len(ph) != 2 || ph[0] != (Phase{"pre", 0, 1}) || ph[1] != (Phase{"rest", 1, 2}) {
			t.Fatalf("phases = %+v", ph)
		}
	})
	t.Run("empty mark replaced", func(t *testing.T) {
		b := NewBuilder("t", 4)
		b.BeginPhase("a")
		b.BeginPhase("b")
		b.Load(0x10)
		ph := b.Trace().Phases()
		if len(ph) != 1 || ph[0] != (Phase{"b", 0, 1}) {
			t.Fatalf("phases = %+v", ph)
		}
	})
	t.Run("trailing empty mark dropped", func(t *testing.T) {
		b := NewBuilder("t", 4)
		b.BeginPhase("a")
		b.Load(0x10)
		b.BeginPhase("tail")
		ph := b.Trace().Phases()
		if len(ph) != 1 || ph[0] != (Phase{"a", 0, 1}) {
			t.Fatalf("phases = %+v", ph)
		}
	})
	t.Run("marks on empty trace mean nil", func(t *testing.T) {
		b := NewBuilder("t", 4)
		b.BeginPhase("a")
		if got := b.Trace().Phases(); got != nil {
			t.Fatalf("phases = %v, want nil", got)
		}
	})
}

func TestPhasedWindows(t *testing.T) {
	p := SamplePlan{Period: 64, MeasureLen: 8, WarmupLen: 16, PrologueLen: 32}
	t.Run("nil phases match plain schedule", func(t *testing.T) {
		a, b := p.PhasedWindows(nil, 500), p.Windows(500)
		if len(a) != len(b) {
			t.Fatalf("schedules differ: %d vs %d windows", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("window %d: %+v vs %+v", i, a[i], b[i])
			}
		}
	})
	t.Run("no window crosses a boundary", func(t *testing.T) {
		// Boundaries at 150 and 333: both mid-period, 333 mid-measure under
		// a naive global schedule.
		phases := []Phase{{"a", 0, 150}, {"b", 150, 333}, {"c", 333, 500}}
		ws := p.PhasedWindows(phases, 500)
		for _, w := range ws {
			for _, cut := range []int{150, 333} {
				if w.Lo < cut && cut < w.Hi {
					t.Fatalf("window [%d,%d) straddles boundary %d", w.Lo, w.Hi, cut)
				}
			}
		}
		// Each phase restarts the plan: its first window is the phase's own
		// prologue, measured, starting at the phase's Lo.
		for _, ph := range phases {
			sub := PhaseWindows(ws, ph)
			if len(sub) == 0 {
				t.Fatalf("phase %q got no windows", ph.Name)
			}
			if sub[0].Lo != ph.Lo || !sub[0].Measure {
				t.Fatalf("phase %q opens with %+v, want measured prologue at %d",
					ph.Name, sub[0], ph.Lo)
			}
			for _, w := range sub {
				if w.Lo < ph.Lo || w.Hi > ph.Hi {
					t.Fatalf("phase %q window %+v escapes [%d,%d)", ph.Name, w, ph.Lo, ph.Hi)
				}
			}
		}
	})
	t.Run("disabled plan covers each phase exactly", func(t *testing.T) {
		phases := []Phase{{"a", 0, 150}, {"b", 150, 500}}
		ws := SamplePlan{}.PhasedWindows(phases, 500)
		if len(ws) != 2 {
			t.Fatalf("windows = %+v, want one per phase", ws)
		}
		for i, ph := range phases {
			if ws[i].Lo != ph.Lo || ws[i].Hi != ph.Hi || !ws[i].Measure {
				t.Fatalf("window %d = %+v, want measured [%d,%d)", i, ws[i], ph.Lo, ph.Hi)
			}
		}
	})
}

func TestPhaseRoundTripV02(t *testing.T) {
	orig := phasedTestTrace(300)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var got Trace
	if _, err := got.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	op, gp := orig.Phases(), got.Phases()
	if len(gp) != len(op) {
		t.Fatalf("phases = %+v, want %+v", gp, op)
	}
	for i := range op {
		if gp[i] != op[i] {
			t.Fatalf("phase %d = %+v, want %+v", i, gp[i], op[i])
		}
	}
}

func TestPhaseSectionRejectsCorruption(t *testing.T) {
	orig := phasedTestTrace(300)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("truncated mid-section", func(t *testing.T) {
		for cut := 1; cut < 40; cut += 7 {
			var tr Trace
			if _, err := tr.ReadFrom(bytes.NewReader(raw[:len(raw)-cut])); err == nil {
				t.Fatalf("accepted stream truncated %d bytes into the phase section", cut)
			}
		}
	})
	t.Run("corrupt marker", func(t *testing.T) {
		// Find the phase marker from the end: it precedes count and 3 phases.
		i := bytes.LastIndex(raw, phaseMarker[:])
		if i < 0 {
			t.Fatal("no phase marker in encoded stream")
		}
		forged := append([]byte{}, raw...)
		forged[i] = 'X'
		var tr Trace
		if _, err := tr.ReadFrom(bytes.NewReader(forged)); err == nil {
			t.Fatal("accepted corrupt phase marker")
		}
	})
	t.Run("forged phase bounds", func(t *testing.T) {
		i := bytes.LastIndex(raw, phaseMarker[:])
		forged := append([]byte{}, raw...)
		// Clobber the last 8 bytes (final phase's Hi) so the partition no
		// longer ends at the trace length.
		for j := len(forged) - 8; j < len(forged); j++ {
			forged[j] = 0xee
		}
		var tr Trace
		if _, err := tr.ReadFrom(bytes.NewReader(forged)); err == nil {
			t.Fatal("accepted phase partition not ending at trace length")
		}
		// Implausible phase count.
		forged = append([]byte{}, raw[:i+4]...)
		forged = append(forged, 0xff, 0xff)
		if _, err := tr.ReadFrom(bytes.NewReader(forged)); err == nil {
			t.Fatal("accepted implausible phase count")
		}
	})
	t.Run("v01 drops phases", func(t *testing.T) {
		var v1 bytes.Buffer
		if _, err := orig.WriteToV01(&v1); err != nil {
			t.Fatal(err)
		}
		var tr Trace
		if _, err := tr.ReadFrom(bytes.NewReader(v1.Bytes())); err != nil {
			t.Fatal(err)
		}
		if tr.Phases() != nil {
			t.Fatalf("v01 decode has phases %+v", tr.Phases())
		}
	})
	t.Run("phase-less v02 decodes with implicit single phase", func(t *testing.T) {
		plain := strideTestTrace(3, 120)
		var v2 bytes.Buffer
		if _, err := plain.WriteTo(&v2); err != nil {
			t.Fatal(err)
		}
		var tr Trace
		if _, err := tr.ReadFrom(bytes.NewReader(v2.Bytes())); err != nil {
			t.Fatal(err)
		}
		// Nil phases is the implicit whole-trace phase; the replay schedule
		// it induces is the plain single-regime schedule.
		if tr.Phases() != nil {
			t.Fatalf("phase-less v02 decode has phases %+v", tr.Phases())
		}
		p := SamplePlan{Period: 65536, MeasureLen: 3072, WarmupLen: 8192, PrologueLen: 32768}
		ws := p.PhasedWindows(tr.Phases(), tr.Len())
		plain2 := p.Windows(tr.Len())
		if len(ws) != len(plain2) {
			t.Fatalf("implicit phase schedule differs: %d vs %d windows", len(ws), len(plain2))
		}
	})
}

func TestSampleDropsPhases(t *testing.T) {
	tr := phasedTestTrace(300)
	if got := tr.Sample(10, 5).Phases(); got != nil {
		t.Fatalf("Sample kept phases %+v", got)
	}
	if got := tr.MultiSample(50, 10).Phases(); got != nil {
		t.Fatalf("MultiSample kept phases %+v", got)
	}
}
