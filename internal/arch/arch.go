// Package arch defines the modelled processor platforms. The three
// experimental machines follow Tables 3 and 4 of the paper (SandyBridge
// Xeon E5-2420, Haswell Xeon E7-4830 v3, Broadwell Xeon E7-8890 v4), and
// the TLB configurations for IvyBridge and Skylake are included for
// completeness of Table 4.
package arch

import "fmt"

// TLBConfig describes the two-level TLB of one microarchitecture, following
// the paper's Table 4. Entry counts of zero mean the structure does not
// hold translations of that page size (e.g. SandyBridge's L2 TLB caches
// 4KB translations only, so 2MB L1 misses go straight to a page walk).
type TLBConfig struct {
	// L1 entry counts per page size (the L1 TLB is split by page size).
	L1Entries4K int
	L1Entries2M int
	L1Entries1G int
	// L2 ("STLB") entry count for 4KB translations.
	L2Entries4K int
	// L2Shared2M reports whether 2MB translations share the L2 with 4KB
	// ones (Haswell and later); if false and L2Entries2M is zero, 2MB
	// translations are not L2-cached at all.
	L2Shared2M bool
	// L2Entries1G is the number of dedicated 1GB L2 entries (Broadwell+).
	L2Entries1G int
	// Associativities.
	L1Assoc int
	L2Assoc int
	// L2LatencyCycles is the added translation latency of an L1 miss that
	// hits in the L2 TLB: 7 cycles on Intel (the constant the Pham model
	// hard-codes).
	L2LatencyCycles int
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes    int
	LineBytes    int
	Assoc        int
	LatencyCycle int
}

// PWCConfig sizes the page-walk caches: small translation-path caches that
// let the walker skip upper page-table levels.
type PWCConfig struct {
	// PML4E/PDPTE/PDE entry counts (each fully associative in the model).
	PML4Entries int
	PDPTEntries int
	PDEntries   int
}

// OOOConfig parameterizes the latency-hiding ability of the out-of-order
// engine in the timing model. Hiding grows with the instruction gap between
// translation misses and saturates at HideMax; walker queueing and cache
// pollution provide the opposing super-linear term.
type OOOConfig struct {
	// HideMax is the maximum fraction of a page-walk latency the core can
	// overlap with useful work when misses are far apart.
	HideMax float64
	// HideGap is the instruction gap (between consecutive L2 TLB misses)
	// at which half of HideMax is achieved.
	HideGap float64
	// L2TLBHitHide is the fraction of the 7-cycle L2 TLB hit latency that
	// stays hidden.
	L2TLBHitHide float64
	// DataHide is the fraction of ordinary data-access latency hidden.
	DataHide float64
	// IndepWalkHide is the fraction of walk latency hidden for accesses
	// that do not depend on a previous access's result (memory-level
	// parallelism lets independent walks overlap with program progress,
	// bounded by walker throughput).
	IndepWalkHide float64
	// IndepDataHide is the corresponding fraction for independent data
	// accesses.
	IndepDataHide float64
}

// Platform is one complete modelled machine.
type Platform struct {
	Name string
	// Year and frequency are informational (Table 3/4).
	Year    int
	FreqGHz float64
	Sockets int
	Cores   int
	TLB     TLBConfig
	L1D     CacheConfig
	L2      CacheConfig
	L3      CacheConfig
	DRAMLat int
	PWC     PWCConfig
	// PageWalkers is the number of concurrent hardware page-table walkers
	// (1 before Broadwell, 2 from Broadwell on).
	PageWalkers int
	// BaseCPI is the cycles-per-instruction of the modelled core for
	// non-memory work.
	BaseCPI float64
	OOO     OOOConfig
}

// String returns the platform name.
func (p Platform) String() string { return p.Name }

// Scaled returns the platform with its capacity-like structures shrunk to
// match the repository's scaled-down workload footprints (tens of MB
// instead of the paper's 1.7-32GB). The experiments run on scaled
// platforms so that the *pressure ratios* — footprint vs TLB reach, page
// table vs cache capacity, hot region vs PWC coverage — approximate the
// paper's, which is what shapes the runtime-vs-walk-cycles curves the
// models are judged on.
//
// Scaling rules (latencies, associativities, L1 structures, walker counts
// and the microarchitectural differences of Table 4 are preserved):
//
//   - L2 TLB 4KB entries ÷4 (SandyBridge 512→128, Haswell 1024→256,
//     Broadwell 1536→384; the 1:2:3 progression survives);
//   - L3 ÷15 (15/30/60MB → 1/2/4MB, preserving 1:2:4);
//   - L2 cache ÷2 (256KB → 128KB);
//   - page-walk-cache PDE entries ÷6 (24-32 → 4-6).
func (p Platform) Scaled() Platform {
	s := p
	s.TLB.L2Entries4K = max(16, p.TLB.L2Entries4K/4)
	s.L3.SizeBytes = roundToSets(p.L3.SizeBytes/15, p.L3)
	s.L2.SizeBytes = roundToSets(p.L2.SizeBytes/2, p.L2)
	s.PWC.PDEntries = max(2, p.PWC.PDEntries/6)
	s.PWC.PDPTEntries = max(2, p.PWC.PDPTEntries/2)
	return s
}

// WithHyperThreading returns the platform as seen by one logical core with
// hyper-threading enabled: Intel statically splits the L1 and L2 TLB
// entries between the two logical cores (§VI-A — the reason the paper's
// machines run with HT off in BIOS). Caches are shared dynamically and are
// left unchanged; this models the TLB-capacity half of the story.
func (p Platform) WithHyperThreading() Platform {
	s := p
	s.Name = p.Name + "+HT"
	s.TLB.L1Entries4K = max(1, p.TLB.L1Entries4K/2)
	s.TLB.L1Entries2M = max(1, p.TLB.L1Entries2M/2)
	s.TLB.L1Entries1G = max(1, p.TLB.L1Entries1G/2)
	s.TLB.L2Entries4K = max(1, p.TLB.L2Entries4K/2)
	if p.TLB.L2Entries1G > 0 {
		s.TLB.L2Entries1G = max(1, p.TLB.L2Entries1G/2)
	}
	return s
}

// roundToSets rounds a cache size down to a whole number of sets so the
// scaled geometry stays valid.
func roundToSets(size int, c CacheConfig) int {
	unit := c.LineBytes * c.Assoc
	n := size / unit
	if n < 1 {
		n = 1
	}
	return n * unit
}

// Validate sanity-checks a platform definition.
func (p Platform) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("arch: platform has no name")
	}
	if p.PageWalkers < 1 {
		return fmt.Errorf("arch: %s: need at least one page walker", p.Name)
	}
	if p.TLB.L1Entries4K <= 0 || p.TLB.L1Assoc <= 0 || p.TLB.L2Assoc <= 0 {
		return fmt.Errorf("arch: %s: bad TLB config", p.Name)
	}
	for _, c := range []CacheConfig{p.L1D, p.L2, p.L3} {
		if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
			return fmt.Errorf("arch: %s: bad cache config", p.Name)
		}
		if c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
			return fmt.Errorf("arch: %s: cache size %d not divisible into %d-way sets of %dB lines",
				p.Name, c.SizeBytes, c.Assoc, c.LineBytes)
		}
	}
	if p.BaseCPI <= 0 {
		return fmt.Errorf("arch: %s: bad base CPI", p.Name)
	}
	return nil
}

// The three experimental platforms (Table 3) with TLB parameters from
// Table 4. Cache latencies follow Intel's optimization manual ballpark
// (L1 4, L2 12, L3 ~40, DRAM ~200 cycles).
var (
	// SandyBridge models the 1.9GHz Xeon E5-2420: 512-entry 4KB-only L2
	// TLB, one page walker, 15MB L3.
	SandyBridge = Platform{
		Name: "SandyBridge", Year: 2011, FreqGHz: 1.9, Sockets: 2, Cores: 6,
		TLB: TLBConfig{
			L1Entries4K: 64, L1Entries2M: 32, L1Entries1G: 4,
			L2Entries4K: 512, L2Shared2M: false, L2Entries1G: 0,
			L1Assoc: 4, L2Assoc: 4, L2LatencyCycles: 7,
		},
		L1D:         CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, LatencyCycle: 4},
		L2:          CacheConfig{SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8, LatencyCycle: 12},
		L3:          CacheConfig{SizeBytes: 15 << 20, LineBytes: 64, Assoc: 20, LatencyCycle: 40},
		DRAMLat:     220,
		PWC:         PWCConfig{PML4Entries: 2, PDPTEntries: 4, PDEntries: 24},
		PageWalkers: 1,
		BaseCPI:     0.55,
		OOO:         OOOConfig{HideMax: 0.55, HideGap: 220, L2TLBHitHide: 0.55, DataHide: 0.45, IndepWalkHide: 0.80, IndepDataHide: 0.88},
	}

	// IvyBridge matches SandyBridge's TLB organization (Table 4); it is not
	// one of the three measured machines but completes the table.
	IvyBridge = Platform{
		Name: "IvyBridge", Year: 2012, FreqGHz: 2.0, Sockets: 2, Cores: 6,
		TLB: TLBConfig{
			L1Entries4K: 64, L1Entries2M: 32, L1Entries1G: 4,
			L2Entries4K: 512, L2Shared2M: false, L2Entries1G: 0,
			L1Assoc: 4, L2Assoc: 4, L2LatencyCycles: 7,
		},
		L1D:         CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, LatencyCycle: 4},
		L2:          CacheConfig{SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8, LatencyCycle: 12},
		L3:          CacheConfig{SizeBytes: 15 << 20, LineBytes: 64, Assoc: 20, LatencyCycle: 40},
		DRAMLat:     215,
		PWC:         PWCConfig{PML4Entries: 2, PDPTEntries: 4, PDEntries: 24},
		PageWalkers: 1,
		BaseCPI:     0.53,
		OOO:         OOOConfig{HideMax: 0.56, HideGap: 215, L2TLBHitHide: 0.55, DataHide: 0.46, IndepWalkHide: 0.81, IndepDataHide: 0.88},
	}

	// Haswell models the 2.1GHz Xeon E7-4830 v3: 1024-entry shared L2 TLB,
	// still one walker, 30MB L3.
	Haswell = Platform{
		Name: "Haswell", Year: 2013, FreqGHz: 2.1, Sockets: 2, Cores: 12,
		TLB: TLBConfig{
			L1Entries4K: 64, L1Entries2M: 32, L1Entries1G: 4,
			L2Entries4K: 1024, L2Shared2M: true, L2Entries1G: 0,
			L1Assoc: 4, L2Assoc: 8, L2LatencyCycles: 7,
		},
		L1D:         CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, LatencyCycle: 4},
		L2:          CacheConfig{SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8, LatencyCycle: 12},
		L3:          CacheConfig{SizeBytes: 30 << 20, LineBytes: 64, Assoc: 20, LatencyCycle: 44},
		DRAMLat:     210,
		PWC:         PWCConfig{PML4Entries: 2, PDPTEntries: 4, PDEntries: 32},
		PageWalkers: 1,
		BaseCPI:     0.50,
		OOO:         OOOConfig{HideMax: 0.60, HideGap: 200, L2TLBHitHide: 0.60, DataHide: 0.50, IndepWalkHide: 0.83, IndepDataHide: 0.90},
	}

	// Broadwell models the 2.2GHz Xeon E7-8890 v4: 1536-entry shared L2 TLB
	// with 16 dedicated 1GB entries, two page walkers, 60MB L3. The second
	// walker lets the walk-cycle counter C exceed the runtime R for
	// walk-bound workloads (gups), reproducing the negative Basu ideal
	// runtimes of §VI-D.
	Broadwell = Platform{
		Name: "Broadwell", Year: 2014, FreqGHz: 2.2, Sockets: 4, Cores: 24,
		TLB: TLBConfig{
			L1Entries4K: 64, L1Entries2M: 32, L1Entries1G: 4,
			L2Entries4K: 1536, L2Shared2M: true, L2Entries1G: 16,
			L1Assoc: 4, L2Assoc: 12, L2LatencyCycles: 7,
		},
		L1D:         CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, LatencyCycle: 4},
		L2:          CacheConfig{SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8, LatencyCycle: 12},
		L3:          CacheConfig{SizeBytes: 60 << 20, LineBytes: 64, Assoc: 20, LatencyCycle: 48},
		DRAMLat:     190,
		PWC:         PWCConfig{PML4Entries: 2, PDPTEntries: 4, PDEntries: 32},
		PageWalkers: 2,
		BaseCPI:     0.48,
		OOO:         OOOConfig{HideMax: 0.65, HideGap: 190, L2TLBHitHide: 0.76, DataHide: 0.52, IndepWalkHide: 0.86, IndepDataHide: 0.91},
	}

	// Skylake completes Table 4 (1536-entry shared L2, 16×1GB, 2 walkers).
	Skylake = Platform{
		Name: "Skylake", Year: 2015, FreqGHz: 2.3, Sockets: 2, Cores: 14,
		TLB: TLBConfig{
			L1Entries4K: 64, L1Entries2M: 32, L1Entries1G: 4,
			L2Entries4K: 1536, L2Shared2M: true, L2Entries1G: 16,
			L1Assoc: 4, L2Assoc: 12, L2LatencyCycles: 7,
		},
		L1D:         CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, LatencyCycle: 4},
		L2:          CacheConfig{SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8, LatencyCycle: 12},
		L3:          CacheConfig{SizeBytes: 35 << 20, LineBytes: 64, Assoc: 16, LatencyCycle: 44},
		DRAMLat:     185,
		PWC:         PWCConfig{PML4Entries: 2, PDPTEntries: 4, PDEntries: 32},
		PageWalkers: 2,
		BaseCPI:     0.45,
		OOO:         OOOConfig{HideMax: 0.66, HideGap: 185, L2TLBHitHide: 0.76, DataHide: 0.52, IndepWalkHide: 0.87, IndepDataHide: 0.91},
	}
)

// Experimental lists the three machines of Table 3, in the order the
// paper's figures use.
var Experimental = []Platform{Broadwell, Haswell, SandyBridge}

// All lists every defined platform (Table 4).
var All = []Platform{SandyBridge, IvyBridge, Haswell, Broadwell, Skylake}

// ByName returns the platform with the given name.
func ByName(name string) (Platform, error) {
	for _, p := range All {
		if p.Name == name {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("arch: unknown platform %q", name)
}
