package arch

import "testing"

func TestAllPlatformsValid(t *testing.T) {
	for _, p := range All {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestTable4Progression(t *testing.T) {
	// The paper's Table 4: TLBs grow across generations.
	if SandyBridge.TLB.L2Entries4K != 512 {
		t.Errorf("SandyBridge L2 TLB = %d, want 512", SandyBridge.TLB.L2Entries4K)
	}
	if Haswell.TLB.L2Entries4K != 1024 || !Haswell.TLB.L2Shared2M {
		t.Errorf("Haswell L2 TLB = %d shared=%v, want 1024 shared", Haswell.TLB.L2Entries4K, Haswell.TLB.L2Shared2M)
	}
	if Broadwell.TLB.L2Entries4K != 1536 || Broadwell.TLB.L2Entries1G != 16 {
		t.Errorf("Broadwell L2 TLB = %d/%d, want 1536/16", Broadwell.TLB.L2Entries4K, Broadwell.TLB.L2Entries1G)
	}
	// SandyBridge's L2 holds 4KB translations only.
	if SandyBridge.TLB.L2Shared2M || SandyBridge.TLB.L2Entries1G != 0 {
		t.Error("SandyBridge L2 TLB must be 4KB-only")
	}
	// Page walkers: one before Broadwell, two after.
	for _, p := range []Platform{SandyBridge, IvyBridge, Haswell} {
		if p.PageWalkers != 1 {
			t.Errorf("%s walkers = %d, want 1", p.Name, p.PageWalkers)
		}
	}
	for _, p := range []Platform{Broadwell, Skylake} {
		if p.PageWalkers != 2 {
			t.Errorf("%s walkers = %d, want 2", p.Name, p.PageWalkers)
		}
	}
}

func TestTable3L3Sizes(t *testing.T) {
	if SandyBridge.L3.SizeBytes != 15<<20 || Haswell.L3.SizeBytes != 30<<20 || Broadwell.L3.SizeBytes != 60<<20 {
		t.Error("L3 sizes must follow Table 3 (15/30/60 MB)")
	}
}

func TestL1TLBIdenticalAcrossGenerations(t *testing.T) {
	for _, p := range All {
		tl := p.TLB
		if tl.L1Entries4K != 64 || tl.L1Entries2M != 32 || tl.L1Entries1G != 4 {
			t.Errorf("%s L1 TLB = %d/%d/%d, want 64/32/4", p.Name,
				tl.L1Entries4K, tl.L1Entries2M, tl.L1Entries1G)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("Haswell")
	if err != nil || p.Name != "Haswell" {
		t.Errorf("ByName(Haswell) = %v, %v", p.Name, err)
	}
	if _, err := ByName("Pentium"); err == nil {
		t.Error("unknown platform should fail")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	bad := SandyBridge
	bad.Name = ""
	if bad.Validate() == nil {
		t.Error("empty name should fail")
	}
	bad = SandyBridge
	bad.PageWalkers = 0
	if bad.Validate() == nil {
		t.Error("zero walkers should fail")
	}
	bad = SandyBridge
	bad.L1D.SizeBytes = 1000 // not divisible into sets
	if bad.Validate() == nil {
		t.Error("bad cache geometry should fail")
	}
	bad = SandyBridge
	bad.BaseCPI = 0
	if bad.Validate() == nil {
		t.Error("zero CPI should fail")
	}
}

func TestExperimentalPlatforms(t *testing.T) {
	if len(Experimental) != 3 {
		t.Fatalf("Experimental has %d platforms, want 3", len(Experimental))
	}
	names := map[string]bool{}
	for _, p := range Experimental {
		names[p.Name] = true
	}
	for _, want := range []string{"SandyBridge", "Haswell", "Broadwell"} {
		if !names[want] {
			t.Errorf("Experimental missing %s", want)
		}
	}
}

func TestScaledPreservesStructure(t *testing.T) {
	for _, p := range All {
		s := p.Scaled()
		if err := s.Validate(); err != nil {
			t.Errorf("%s scaled: %v", p.Name, err)
		}
		// Latencies, L1 structures, walkers, and microarch flags survive.
		if s.PageWalkers != p.PageWalkers || s.TLB.L2Shared2M != p.TLB.L2Shared2M {
			t.Errorf("%s: scaling changed microarch flags", p.Name)
		}
		if s.TLB.L1Entries4K != p.TLB.L1Entries4K {
			t.Errorf("%s: scaling changed the L1 TLB", p.Name)
		}
		if s.DRAMLat != p.DRAMLat || s.L1D != p.L1D {
			t.Errorf("%s: scaling changed latencies or L1d", p.Name)
		}
	}
	// The 1:2:3 L2 TLB progression survives.
	if Haswell.Scaled().TLB.L2Entries4K != 2*SandyBridge.Scaled().TLB.L2Entries4K {
		t.Error("scaled Haswell L2 TLB should stay 2x SandyBridge")
	}
	if Broadwell.Scaled().TLB.L2Entries4K != 3*SandyBridge.Scaled().TLB.L2Entries4K {
		t.Error("scaled Broadwell L2 TLB should stay 3x SandyBridge")
	}
}

func TestWithHyperThreading(t *testing.T) {
	ht := Broadwell.WithHyperThreading()
	if err := ht.Validate(); err != nil {
		t.Fatal(err)
	}
	if ht.TLB.L1Entries4K != Broadwell.TLB.L1Entries4K/2 {
		t.Errorf("HT L1 TLB = %d", ht.TLB.L1Entries4K)
	}
	if ht.TLB.L2Entries4K != Broadwell.TLB.L2Entries4K/2 {
		t.Errorf("HT L2 TLB = %d", ht.TLB.L2Entries4K)
	}
	if ht.TLB.L2Entries1G != Broadwell.TLB.L2Entries1G/2 {
		t.Errorf("HT 1GB L2 TLB = %d", ht.TLB.L2Entries1G)
	}
	// Caches are shared dynamically, not split.
	if ht.L3 != Broadwell.L3 {
		t.Error("HT must not change the caches")
	}
	if ht.Name == Broadwell.Name {
		t.Error("HT platform needs a distinct name")
	}
}
