package pmu

import (
	"strings"
	"testing"
)

func TestDerivedMetrics(t *testing.T) {
	c := Counters{R: 1000, H: 10, M: 20, C: 500, Instructions: 2000}
	if got := c.IPC(); got != 2.0 {
		t.Errorf("IPC = %v, want 2", got)
	}
	if got := c.MPKI(); got != 10.0 {
		t.Errorf("MPKI = %v, want 10", got)
	}
	if got := c.WalkCycleShare(); got != 0.5 {
		t.Errorf("WalkCycleShare = %v, want 0.5", got)
	}
	if got := c.AvgWalkLatency(); got != 25.0 {
		t.Errorf("AvgWalkLatency = %v, want 25", got)
	}
}

func TestDerivedMetricsZeroSafe(t *testing.T) {
	var c Counters
	if c.IPC() != 0 || c.MPKI() != 0 || c.WalkCycleShare() != 0 || c.AvgWalkLatency() != 0 {
		t.Error("zero counters should yield zero rates, not NaN")
	}
}

func TestSampleFrom(t *testing.T) {
	c := Counters{R: 100, H: 1, M: 2, C: 3}
	s := SampleFrom("4KB", c)
	if s.Layout != "4KB" || s.R != 100 || s.H != 1 || s.M != 2 || s.C != 3 {
		t.Errorf("sample = %+v", s)
	}
}

func TestString(t *testing.T) {
	c := Counters{R: 1, H: 2, M: 3, C: 4, Instructions: 5}
	s := c.String()
	for _, want := range []string{"R=1", "H=2", "M=3", "C=4", "I=5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
