// Package pmu defines the performance-monitoring counters the paper's
// runtime models consume (Table 2) plus the cache-load events behind its
// Table 7. The timing model (internal/cpu) populates a Counters value per
// run; everything downstream — model fitting, error metrics, report
// rendering — reads only this type, mirroring how the paper's pipeline
// reads only the Intel PMU.
package pmu

import "fmt"

// Counters is one run's worth of performance-counter readings.
type Counters struct {
	// R: runtime — unhalted execution cycles (Table 2).
	R uint64
	// H: translations that missed the L1 TLB but hit the L2 TLB.
	H uint64
	// M: translations that missed both TLB levels (page walks).
	M uint64
	// C: walk cycles — cycles spent walking the page table. Each active
	// hardware walker contributes its busy cycles, so with two walkers C
	// can legitimately exceed R (the Broadwell/gups effect of §VI-D).
	C uint64

	// Instructions retired.
	Instructions uint64

	// Cache load events, split program/walker as in Table 7.
	L1DLoadsProgram  uint64
	L1DLoadsWalker   uint64
	L2LoadsProgram   uint64
	L2LoadsWalker    uint64
	L3LoadsProgram   uint64
	L3LoadsWalker    uint64
	DRAMLoadsProgram uint64
	DRAMLoadsWalker  uint64

	// TLB lookup volume, for derived rates.
	TLBLookups uint64
}

// IPC returns instructions per cycle.
func (c Counters) IPC() float64 {
	if c.R == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.R)
}

// MPKI returns L2 TLB misses per kilo-instruction.
func (c Counters) MPKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return 1000 * float64(c.M) / float64(c.Instructions)
}

// WalkCycleShare returns C/R, the fraction of runtime the table walkers
// were busy (can exceed 1 with multiple walkers).
func (c Counters) WalkCycleShare() float64 {
	if c.R == 0 {
		return 0
	}
	return float64(c.C) / float64(c.R)
}

// AvgWalkLatency returns C/M, the mean cycles per walk.
func (c Counters) AvgWalkLatency() float64 {
	if c.M == 0 {
		return 0
	}
	return float64(c.C) / float64(c.M)
}

// String formats the headline counters.
func (c Counters) String() string {
	return fmt.Sprintf("R=%d H=%d M=%d C=%d I=%d", c.R, c.H, c.M, c.C, c.Instructions)
}

// Sample pairs the model inputs (H, M, C) with the measured runtime R —
// one point in the space the runtime models are fitted and validated on.
type Sample struct {
	// Layout is a human-readable identifier of the memory layout that
	// produced this sample (e.g. "4KB", "2MB", "grow-3/8").
	Layout  string
	H, M, C float64
	R       float64
}

// SampleFrom extracts a model sample from raw counters.
func SampleFrom(layout string, c Counters) Sample {
	return Sample{
		Layout: layout,
		H:      float64(c.H),
		M:      float64(c.M),
		C:      float64(c.C),
		R:      float64(c.R),
	}
}
