package models

import (
	"fmt"
	"math"

	"mosaic/internal/pmu"
	"mosaic/internal/stats"
)

// Poly is the single-input polynomial regression of §VII-A/B: R as an
// OLS-fitted polynomial of the walk cycles C, of degree 1 ("poly1",
// the linear regression model), 2, or 3.
type Poly struct {
	degree int
	fit    *stats.PolyFit
}

// NewPoly builds a polynomial model of the given degree (1–3).
func NewPoly(degree int) *Poly { return &Poly{degree: degree} }

// Name implements Model.
func (p *Poly) Name() string { return fmt.Sprintf("poly%d", p.degree) }

// Fit implements Model.
func (p *Poly) Fit(samples []pmu.Sample) error {
	if len(samples) <= p.degree+1 {
		return fmt.Errorf("%w: %d samples for degree %d", ErrTooFewSamples, len(samples), p.degree)
	}
	X := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		X[i] = []float64{s.C}
		y[i] = s.R
	}
	fit, err := stats.FitPoly(X, y, p.degree, []string{"C"})
	if err != nil {
		return err
	}
	p.fit = fit
	return nil
}

// Predict implements Model.
func (p *Poly) Predict(_, _, c float64) float64 { return p.fit.Predict([]float64{c}) }

// Slope returns dR̂/dC at the given C — the local page-walk slowdown
// factor (for the Figure 9 analysis). Implemented by central difference.
func (p *Poly) Slope(c float64) float64 {
	h := math.Max(1, math.Abs(c)*1e-6)
	return (p.Predict(0, 0, c+h) - p.Predict(0, 0, c-h)) / (2 * h)
}

// Mosmodel is the paper's proposed model (§VII-C, Equation 3): a
// third-degree polynomial in all three inputs (H, M, C), fitted with Lasso
// regression. Lasso both regularizes the 20-coefficient cubic against
// overfitting (the one-in-ten rule with 54 samples) and selects the most
// relevant inputs per workload.
type Mosmodel struct {
	// trainMin/trainMax bound the training inputs; Predict clamps to this
	// hull. A polynomial has no support outside the data it was fitted
	// on, and the 1GB-pages validation point can fall far below the
	// training range of M for workloads whose 2MB mosaics still miss
	// (§VII-D); clamping degrades gracefully to the nearest-sample
	// prediction instead of extrapolating a cubic.
	trainMin, trainMax [3]float64
	fit                *stats.LassoFit
	// refit, when non-nil, is the relaxed-Lasso polish: an OLS refit on
	// exactly the terms Lasso selected, removing the L1 shrinkage bias.
	refit *stats.PolyFit
	// MaxNonzero caps the surviving non-bias coefficients (default 5).
	MaxNonzero int
}

// NewMosmodel builds a Mosmodel with the paper's ≤5-coefficient budget.
func NewMosmodel() *Mosmodel { return &Mosmodel{MaxNonzero: 5} }

// Name implements Model.
func (m *Mosmodel) Name() string { return "mosmodel" }

// Fit implements Model: it sweeps a descending grid of Lasso penalties and
// keeps the fit with the lowest training maximal relative error among
// those honouring the coefficient budget. The grid is scaled to the
// response's standard deviation, making the sweep unit-free.
func (m *Mosmodel) Fit(samples []pmu.Sample) error {
	if len(samples) < m.MaxNonzero+1 {
		return fmt.Errorf("%w: %d samples for mosmodel", ErrTooFewSamples, len(samples))
	}
	X := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		X[i] = []float64{s.H, s.M, s.C}
		y[i] = s.R
	}
	for j := 0; j < 3; j++ {
		m.trainMin[j], m.trainMax[j] = X[0][j], X[0][j]
		for i := range X {
			if X[i][j] < m.trainMin[j] {
				m.trainMin[j] = X[i][j]
			}
			if X[i][j] > m.trainMax[j] {
				m.trainMax[j] = X[i][j]
			}
		}
	}
	ySD := stdev(y)
	//mosvet:ignore floateq exact-zero sentinel: stdev returns 0.0 only for a constant column
	if ySD == 0 {
		ySD = 1
	}
	// Quasi-constant inputs carry no signal — their standardized columns
	// amplify noise, and fits leaning on them collapse when the input
	// leaves its (tiny) training range, e.g. predicting the 1GB layout of
	// a workload whose M barely moves across 4KB/2MB mosaics. Terms
	// involving such inputs are excluded.
	varies := [3]bool{}
	for j := 0; j < 3; j++ {
		col := make([]float64, len(X))
		var mean float64
		for i := range X {
			col[i] = X[i][j]
			mean += X[i][j]
		}
		mean /= float64(len(col))
		sd := stdev(col)
		varies[j] = mean == 0 || sd/max(mean, 1) > 0.05 //mosvet:ignore floateq exact-zero sentinel: an all-zero column has mean exactly 0.0
	}
	allowed := func(t stats.Monomial) bool {
		for j, e := range t {
			if e > 0 && !varies[j] {
				return false
			}
		}
		return true
	}
	// Candidate fits accumulate here; the final choice prefers parsimony
	// among near-ties, because low-order, few-term polynomials extrapolate
	// better to the near-zero-overhead region new designs target (§VII-D).
	type candidate struct {
		lasso      *stats.LassoFit
		refit      *stats.PolyFit
		err        float64
		complexity int
	}
	var cands []candidate
	maxErrOf := func(predict func([]float64) float64) float64 {
		preds := make([]float64, len(samples))
		for i := range X {
			preds[i] = predict(X[i])
		}
		return stats.MaxAbsRelErr(y, preds)
	}
	complexityOf := func(terms []stats.Monomial, coefs []float64) int {
		c := 0
		for i, t := range terms {
			d := t.TotalDegree()
			if d == 0 {
				continue
			}
			if coefs == nil || coefs[i] > nonzeroTol || coefs[i] < -nonzeroTol {
				c += d
			}
		}
		return c
	}
	for _, rel := range []float64{0.3, 0.1, 0.03, 0.01, 0.003, 0.001, 0.0003, 0.0001, 0.00003} {
		fit, err := stats.FitPolyLasso(X, y, 3, rel*ySD, []string{"H", "M", "C"})
		if err != nil {
			continue
		}
		if m.MaxNonzero > 0 && fit.NonzeroCoefs(nonzeroTol) > m.MaxNonzero {
			continue
		}
		usesDisallowed := false
		for i, c := range fit.Coefs {
			if fit.Terms[i].TotalDegree() == 0 {
				continue
			}
			if (c > nonzeroTol || c < -nonzeroTol) && !allowed(fit.Terms[i]) {
				usesDisallowed = true
				break
			}
		}
		if !usesDisallowed {
			cands = append(cands, candidate{
				lasso:      fit,
				err:        maxErrOf(fit.Predict),
				complexity: complexityOf(fit.Terms, fit.Coefs),
			})
		}
		// Relaxed-Lasso polish: OLS on the selected terms only.
		var kept []stats.Monomial
		for i, c := range fit.Coefs {
			if fit.Terms[i].TotalDegree() == 0 || !allowed(fit.Terms[i]) {
				continue
			}
			if c > nonzeroTol || c < -nonzeroTol {
				kept = append(kept, fit.Terms[i])
			}
		}
		if len(kept) == 0 {
			continue
		}
		refit, err := stats.FitPolyTerms(X, y, kept, []string{"H", "M", "C"})
		if err != nil {
			continue
		}
		cands = append(cands, candidate{
			lasso:      fit,
			refit:      refit,
			err:        maxErrOf(refit.Predict),
			complexity: complexityOf(kept, nil),
		})
	}
	// Greedy forward selection under the maximal-error objective: starting
	// from the empty support, repeatedly add the cubic term that most
	// reduces the training max error of an OLS refit, up to the budget.
	// Lasso's L2 objective can leave a handful of systematically-off
	// layouts unexplained (they barely move the squared loss); this pass
	// targets the metric the paper actually reports.
	all := stats.Monomials(3, 3)
	var support []stats.Monomial
	for len(support) < m.MaxNonzero {
		bestTermErr := math.Inf(1)
		bestIdx := -1
		var bestFit *stats.PolyFit
		for i, t := range all {
			if t.TotalDegree() == 0 || !allowed(t) || inSupport(support, t) {
				continue
			}
			cand := append(append([]stats.Monomial{}, support...), all[i])
			fit, err := stats.FitPolyTerms(X, y, cand, []string{"H", "M", "C"})
			if err != nil {
				continue
			}
			if e := maxErrOf(fit.Predict); e < bestTermErr {
				bestTermErr, bestIdx, bestFit = e, i, fit
			}
		}
		if bestIdx < 0 {
			break
		}
		support = append(support, all[bestIdx])
		cands = append(cands, candidate{
			refit:      bestFit,
			err:        bestTermErr,
			complexity: complexityOf(support, nil),
		})
	}
	if len(cands) == 0 {
		return fmt.Errorf("models: mosmodel: no fit honoured the coefficient budget")
	}
	// Selection: the simplest candidate whose training error is within 15%
	// of the best (ties broken by error).
	bestErr := math.Inf(1)
	for _, c := range cands {
		if c.err < bestErr {
			bestErr = c.err
		}
	}
	chosen := cands[0]
	found := false
	for _, c := range cands {
		if c.err > bestErr*1.15+1e-12 {
			continue
		}
		if !found || c.complexity < chosen.complexity ||
			(c.complexity == chosen.complexity && c.err < chosen.err) {
			chosen = c
			found = true
		}
	}
	m.fit = chosen.lasso
	m.refit = chosen.refit
	if m.fit == nil && m.refit == nil {
		return fmt.Errorf("models: mosmodel: no fit honoured the coefficient budget")
	}
	return nil
}

func inSupport(support []stats.Monomial, t stats.Monomial) bool {
	for _, s := range support {
		same := len(s) == len(t)
		for i := range s {
			if i < len(t) && s[i] != t[i] {
				same = false
			}
		}
		if same {
			return true
		}
	}
	return false
}

// nonzeroTol is the magnitude below which a standardized-feature
// coefficient counts as zero.
const nonzeroTol = 1e-9

// Predict implements Model. Inputs are clamped to the training hull.
func (m *Mosmodel) Predict(h, mm, c float64) float64 {
	x := []float64{h, mm, c}
	for j := range x {
		if x[j] < m.trainMin[j] {
			x[j] = m.trainMin[j]
		}
		if x[j] > m.trainMax[j] {
			x[j] = m.trainMax[j]
		}
	}
	if m.refit != nil {
		return m.refit.Predict(x)
	}
	return m.fit.Predict(x)
}

// SelectedTerms names the polynomial terms the model selection kept
// (§VII-C's input-selection discussion).
func (m *Mosmodel) SelectedTerms() []string {
	if m.refit != nil {
		var out []string
		for i, c := range m.refit.Coefs {
			if m.refit.Terms[i].TotalDegree() == 0 {
				continue
			}
			if c > nonzeroTol || c < -nonzeroTol {
				out = append(out, m.refit.Terms[i].Name(m.refit.VarNames))
			}
		}
		return out
	}
	if m.fit == nil {
		return nil
	}
	return m.fit.SelectedTerms(nonzeroTol)
}

func stdev(y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ss float64
	for _, v := range y {
		ss += (v - mean) * (v - mean)
	}
	return math.Sqrt(ss / float64(len(y)))
}
