package models

import (
	"encoding/json"
	"fmt"

	"mosaic/internal/stats"
)

// Every registry model round-trips its fitted state through JSON: a model
// trained from a sweep can be persisted by the serving layer's registry
// and must predict bit-identically after reload (encoding/json writes
// float64 in shortest round-trippable form, so no precision is lost).
// Marshal of an unfitted model is an error — there is no meaningful state
// to persist — and Unmarshal validates enough structure that a corrupt
// registry file fails at load time, not as NaNs at serving time.

// errUnfitted builds the marshal-time error for a model without a fit.
func errUnfitted(name string) error {
	return fmt.Errorf("models: %s: cannot serialize an unfitted model", name)
}

// twoParamState is the wire shape of the slope/intercept prior models.
type twoParamState struct {
	Alpha  float64 `json:"alpha,omitempty"`
	Beta   float64 `json:"beta"`
	Fitted bool    `json:"fitted"`
}

// MarshalJSON implements json.Marshaler.
func (b *Basu) MarshalJSON() ([]byte, error) {
	return json.Marshal(twoParamState{Alpha: b.alpha, Beta: b.beta, Fitted: true})
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *Basu) UnmarshalJSON(data []byte) error {
	var s twoParamState
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if !s.Fitted {
		return errUnfitted(b.Name())
	}
	b.alpha, b.beta = s.Alpha, s.Beta
	return nil
}

// MarshalJSON implements json.Marshaler.
func (g *Gandhi) MarshalJSON() ([]byte, error) {
	return json.Marshal(twoParamState{Alpha: g.alpha, Beta: g.beta, Fitted: true})
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *Gandhi) UnmarshalJSON(data []byte) error {
	var s twoParamState
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if !s.Fitted {
		return errUnfitted(g.Name())
	}
	g.alpha, g.beta = s.Alpha, s.Beta
	return nil
}

// MarshalJSON implements json.Marshaler.
func (p *Pham) MarshalJSON() ([]byte, error) {
	return json.Marshal(twoParamState{Beta: p.beta, Fitted: true})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Pham) UnmarshalJSON(data []byte) error {
	var s twoParamState
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if !s.Fitted {
		return errUnfitted(p.Name())
	}
	p.beta = s.Beta
	return nil
}

// MarshalJSON implements json.Marshaler.
func (a *Alam) MarshalJSON() ([]byte, error) {
	return json.Marshal(twoParamState{Beta: a.beta, Fitted: true})
}

// UnmarshalJSON implements json.Unmarshaler.
func (a *Alam) UnmarshalJSON(data []byte) error {
	var s twoParamState
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if !s.Fitted {
		return errUnfitted(a.Name())
	}
	a.beta = s.Beta
	return nil
}

// MarshalJSON implements json.Marshaler.
func (y *Yaniv) MarshalJSON() ([]byte, error) {
	return json.Marshal(twoParamState{Alpha: y.alpha, Beta: y.beta, Fitted: true})
}

// UnmarshalJSON implements json.Unmarshaler.
func (y *Yaniv) UnmarshalJSON(data []byte) error {
	var s twoParamState
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if !s.Fitted {
		return errUnfitted(y.Name())
	}
	y.alpha, y.beta = s.Alpha, s.Beta
	return nil
}

// polyState is the wire shape of a fitted Poly.
type polyState struct {
	Degree int            `json:"degree"`
	Fit    *stats.PolyFit `json:"fit"`
}

// MarshalJSON implements json.Marshaler.
func (p *Poly) MarshalJSON() ([]byte, error) {
	if p.fit == nil {
		return nil, errUnfitted(p.Name())
	}
	return json.Marshal(polyState{Degree: p.degree, Fit: p.fit})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Poly) UnmarshalJSON(data []byte) error {
	var s polyState
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if s.Degree < 1 || s.Degree > 3 {
		return fmt.Errorf("models: poly: degree %d out of range", s.Degree)
	}
	if s.Fit == nil {
		return errUnfitted(fmt.Sprintf("poly%d", s.Degree))
	}
	p.degree, p.fit = s.Degree, s.Fit
	return nil
}

// mosmodelState is the wire shape of a fitted Mosmodel.
type mosmodelState struct {
	TrainMin   [3]float64      `json:"trainMin"`
	TrainMax   [3]float64      `json:"trainMax"`
	MaxNonzero int             `json:"maxNonzero"`
	Lasso      *stats.LassoFit `json:"lasso,omitempty"`
	Refit      *stats.PolyFit  `json:"refit,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (m *Mosmodel) MarshalJSON() ([]byte, error) {
	if m.fit == nil && m.refit == nil {
		return nil, errUnfitted(m.Name())
	}
	return json.Marshal(mosmodelState{
		TrainMin: m.trainMin, TrainMax: m.trainMax,
		MaxNonzero: m.MaxNonzero, Lasso: m.fit, Refit: m.refit,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Mosmodel) UnmarshalJSON(data []byte) error {
	var s mosmodelState
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if s.Lasso == nil && s.Refit == nil {
		return errUnfitted(m.Name())
	}
	for j := 0; j < 3; j++ {
		if s.TrainMin[j] > s.TrainMax[j] {
			return fmt.Errorf("models: mosmodel: inverted training hull on input %d", j)
		}
	}
	m.trainMin, m.trainMax = s.TrainMin, s.TrainMax
	m.MaxNonzero = s.MaxNonzero
	m.fit, m.refit = s.Lasso, s.Refit
	return nil
}

// Restore builds a fitted model from its name and serialized state — the
// load half of the registry's persistence.
func Restore(name string, state json.RawMessage) (Model, error) {
	m, err := ByName(name)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(state, m); err != nil {
		return nil, fmt.Errorf("models: restoring %s: %w", name, err)
	}
	return m, nil
}
