package models

import (
	"errors"
	"testing"

	"mosaic/internal/pmu"
)

func TestCalibrate(t *testing.T) {
	c, err := Calibrate(1000, 800)
	if err != nil {
		t.Fatal(err)
	}
	if c.Factor != 1.25 {
		t.Errorf("factor = %v, want 1.25", c.Factor)
	}
	if got := c.ApplyC(400); got != 500 {
		t.Errorf("ApplyC = %v, want 500", got)
	}
	s := c.Apply(pmu.Sample{H: 10, M: 20, C: 400, R: 9999})
	if s.C != 500 {
		t.Errorf("scaled C = %v", s.C)
	}
	// Event counts and runtime untouched.
	if s.H != 10 || s.M != 20 || s.R != 9999 {
		t.Errorf("non-C fields changed: %+v", s)
	}
}

func TestCalibrateErrors(t *testing.T) {
	for _, in := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		if _, err := Calibrate(in[0], in[1]); !errors.Is(err, ErrBadCalibration) {
			t.Errorf("Calibrate(%v, %v) should fail", in[0], in[1])
		}
	}
}

// End-to-end: a miscalibrated simulator plus the Alam correction predicts
// as well as perfect simulation.
func TestCalibrationFixesAlamPipeline(t *testing.T) {
	samples := synthSamples(54, 9)
	var alam Alam
	if err := alam.Fit(samples); err != nil {
		t.Fatal(err)
	}
	s4k, err := findLayout(samples, "4KB")
	if err != nil {
		t.Fatal(err)
	}
	// The "simulator" reports walk cycles 30% low across the board.
	simScale := 0.7
	cal, err := Calibrate(s4k.C, s4k.C*simScale)
	if err != nil {
		t.Fatal(err)
	}
	target := samples[27]
	simC := target.C * simScale
	raw := alam.Predict(target.H, target.M, simC)
	corrected := alam.Predict(target.H, target.M, cal.ApplyC(simC))
	want := alam.Predict(target.H, target.M, target.C)
	if d := corrected - want; d > 1e-6*want || d < -1e-6*want {
		t.Errorf("corrected prediction %v, want %v", corrected, want)
	}
	if raw == want && target.C > 0 {
		t.Error("uncorrected prediction should differ")
	}
}
