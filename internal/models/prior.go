// Package models implements every runtime model the paper surveys and
// proposes: the five preexisting linear models (Basu, Pham, Gandhi, Alam,
// Yaniv — §III), the single-input polynomial regressions poly1/2/3
// (§VII-A/B), and Mosmodel, the Lasso-regularized multi-input third-degree
// polynomial (§VII-C).
//
// All models share one interface: fit against (H, M, C, R) samples, then
// predict R from (H, M, C). The preexisting models ignore most of the
// samples — they are entirely determined by the two baseline points
// measured with 4KB and 2MB pages, which is exactly why they could never
// be validated before Mosalloc.
package models

import (
	"errors"
	"fmt"
	"math"

	"mosaic/internal/pmu"
)

// Model is one runtime model R̂(H, M, C).
type Model interface {
	Name() string
	// Fit trains the model on measured samples. Preexisting models
	// require samples labelled "4KB" and/or "2MB" (the baselines they
	// were historically built from).
	Fit(samples []pmu.Sample) error
	// Predict estimates the runtime for the given counter values.
	Predict(h, m, c float64) float64
}

// Errors returned by Fit.
var (
	ErrNoBaseline    = errors.New("models: missing 4KB/2MB baseline sample")
	ErrTooFewSamples = errors.New("models: not enough samples")
)

// findLayout returns the sample with the given layout label.
func findLayout(samples []pmu.Sample, name string) (pmu.Sample, error) {
	for _, s := range samples {
		if s.Layout == name {
			return s, nil
		}
	}
	return pmu.Sample{}, fmt.Errorf("%w: %q", ErrNoBaseline, name)
}

// Basu is the first runtime model (Basu et al., ISCA'13): R = α·M + β with
// α = C4K/M4K and β = R4K − C4K. It assumes walks stall the CPU completely
// and that the ideal runtime is the 4KB runtime minus all walk cycles —
// both of which Mosalloc's data refutes (§III, §VI-D).
type Basu struct {
	alpha, beta float64
}

// Name implements Model.
func (b *Basu) Name() string { return "basu" }

// Fit implements Model.
func (b *Basu) Fit(samples []pmu.Sample) error {
	s4k, err := findLayout(samples, "4KB")
	if err != nil {
		return err
	}
	//mosvet:ignore floateq exact-zero sentinel: M is a counter; 0.0 means no misses, guarding the divide below
	if s4k.M == 0 {
		return fmt.Errorf("models: basu: 4KB sample has no TLB misses")
	}
	b.alpha = s4k.C / s4k.M
	b.beta = s4k.R - s4k.C
	return nil
}

// Predict implements Model.
func (b *Basu) Predict(_, m, _ float64) float64 { return b.alpha*m + b.beta }

// Gandhi (Gandhi et al., MICRO'14) keeps Basu's slope but anchors the
// ideal runtime at the 2MB configuration: β = R2M − C2M, hoping to avoid
// the over-subtraction of overlapped walk cycles.
type Gandhi struct {
	alpha, beta float64
}

// Name implements Model.
func (g *Gandhi) Name() string { return "gandhi" }

// Fit implements Model.
func (g *Gandhi) Fit(samples []pmu.Sample) error {
	s4k, err := findLayout(samples, "4KB")
	if err != nil {
		return err
	}
	s2m, err := findLayout(samples, "2MB")
	if err != nil {
		return err
	}
	//mosvet:ignore floateq exact-zero sentinel: M is a counter; 0.0 means no misses, guarding the divide below
	if s4k.M == 0 {
		return fmt.Errorf("models: gandhi: 4KB sample has no TLB misses")
	}
	g.alpha = s4k.C / s4k.M
	g.beta = s2m.R - s2m.C
	return nil
}

// Predict implements Model.
func (g *Gandhi) Predict(_, m, _ float64) float64 { return g.alpha*m + g.beta }

// Pham (Pham et al., MICRO'15) charges every translation cycle directly:
// R = 7·H + C + β, with 7 the Intel L2 TLB latency and
// β = R4K − C4K − 7·H4K. Its stall assumption makes it optimistic for
// every workload the paper measured.
type Pham struct {
	beta float64
}

// L2TLBLatency is the 7-cycle constant the Pham model hard-codes.
const L2TLBLatency = 7.0

// Name implements Model.
func (p *Pham) Name() string { return "pham" }

// Fit implements Model.
func (p *Pham) Fit(samples []pmu.Sample) error {
	s4k, err := findLayout(samples, "4KB")
	if err != nil {
		return err
	}
	p.beta = s4k.R - s4k.C - L2TLBLatency*s4k.H
	return nil
}

// Predict implements Model.
func (p *Pham) Predict(h, _, c float64) float64 { return L2TLBLatency*h + c + p.beta }

// Alam (Alam et al., ISCA'17) is the Yaniv model with slope fixed at 1:
// R = C + β, β = R2M − C2M.
type Alam struct {
	beta float64
}

// Name implements Model.
func (a *Alam) Name() string { return "alam" }

// Fit implements Model.
func (a *Alam) Fit(samples []pmu.Sample) error {
	s2m, err := findLayout(samples, "2MB")
	if err != nil {
		return err
	}
	a.beta = s2m.R - s2m.C
	return nil
}

// Predict implements Model.
func (a *Alam) Predict(_, _, c float64) float64 { return c + a.beta }

// Yaniv (Yaniv & Tsafrir, SIGMETRICS'16) is the most flexible preexisting
// model: the line through the two baseline points in (C, R) space,
// R = α·C + β, where α is the page-walk slowdown factor.
type Yaniv struct {
	alpha, beta float64
}

// Name implements Model.
func (y *Yaniv) Name() string { return "yaniv" }

// Fit implements Model.
func (y *Yaniv) Fit(samples []pmu.Sample) error {
	s4k, err := findLayout(samples, "4KB")
	if err != nil {
		return err
	}
	s2m, err := findLayout(samples, "2MB")
	if err != nil {
		return err
	}
	// Bit-exact coincidence check: the slope denominator s4k.C−s2m.C is
	// zero exactly when the two measured counters carry identical bits
	// (counters are nonnegative, so −0 never arises).
	if math.Float64bits(s4k.C) == math.Float64bits(s2m.C) {
		return fmt.Errorf("models: yaniv: baseline walk cycles coincide")
	}
	y.alpha = (s4k.R - s2m.R) / (s4k.C - s2m.C)
	y.beta = s2m.R - y.alpha*s2m.C
	return nil
}

// Predict implements Model.
func (y *Yaniv) Predict(_, _, c float64) float64 { return y.alpha*c + y.beta }

// Alpha returns the fitted page-walk slowdown factor (Figure 9 discusses
// workloads where it exceeds 1).
func (y *Yaniv) Alpha() float64 { return y.alpha }
