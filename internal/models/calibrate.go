package models

import (
	"errors"

	"mosaic/internal/pmu"
)

// SimCalibration implements the Alam et al. simulator-scaling step (§III):
// a partial simulator's walk-cycle output C_sim systematically deviates
// from the hardware's C, so Alam et al. scaled simulated counts by the
// ratio measured on a configuration both can run:
//
//	C_design = C_design_sim × (C4K / C4K_sim)
//
// The same factor applies to any simulated (H, M, C) vector before it is
// fed to a runtime model fitted on hardware measurements.
type SimCalibration struct {
	// Factor is C4K(hardware) / C4K(simulator).
	Factor float64
}

// ErrBadCalibration reports a non-positive calibration baseline.
var ErrBadCalibration = errors.New("models: calibration baselines must be positive")

// Calibrate derives the scale factor from the hardware and simulator
// measurements of the same (typically all-4KB) configuration.
func Calibrate(hardwareC4K, simulatorC4K float64) (SimCalibration, error) {
	if hardwareC4K <= 0 || simulatorC4K <= 0 {
		return SimCalibration{}, ErrBadCalibration
	}
	return SimCalibration{Factor: hardwareC4K / simulatorC4K}, nil
}

// Apply scales a simulated sample's walk cycles into hardware units. H and
// M are event counts, not latencies, so only C is scaled (as in Alam's
// correction).
func (c SimCalibration) Apply(s pmu.Sample) pmu.Sample {
	s.C *= c.Factor
	return s
}

// ApplyC scales a bare walk-cycle count.
func (c SimCalibration) ApplyC(simC float64) float64 { return simC * c.Factor }
