package models

import (
	"math"
	"math/rand"
	"testing"

	"mosaic/internal/pmu"
)

// baselineSamples returns hand-computable 4KB/2MB anchors plus mid points.
func baselineSamples() []pmu.Sample {
	return []pmu.Sample{
		{Layout: "4KB", H: 100, M: 200, C: 4000, R: 10000},
		{Layout: "2MB", H: 10, M: 20, C: 400, R: 7000},
		{Layout: "mid", H: 50, M: 100, C: 2000, R: 8400},
	}
}

func TestBasuFormula(t *testing.T) {
	var b Basu
	if err := b.Fit(baselineSamples()); err != nil {
		t.Fatal(err)
	}
	// α = C4K/M4K = 20, β = R4K − C4K = 6000.
	if got := b.Predict(0, 0, 0); got != 6000 {
		t.Errorf("β = %v, want 6000", got)
	}
	if got := b.Predict(0, 200, 0); got != 10000 {
		t.Errorf("prediction at M4K = %v, want R4K", got)
	}
	if got := b.Predict(0, 100, 0); got != 8000 {
		t.Errorf("Predict(M=100) = %v, want 8000", got)
	}
}

func TestGandhiFormula(t *testing.T) {
	var g Gandhi
	if err := g.Fit(baselineSamples()); err != nil {
		t.Fatal(err)
	}
	// α = 20, β = R2M − C2M = 6600.
	if got := g.Predict(0, 0, 0); got != 6600 {
		t.Errorf("β = %v, want 6600", got)
	}
	if got := g.Predict(0, 100, 0); got != 8600 {
		t.Errorf("Predict(M=100) = %v, want 8600", got)
	}
}

func TestPhamFormula(t *testing.T) {
	var p Pham
	if err := p.Fit(baselineSamples()); err != nil {
		t.Fatal(err)
	}
	// β = R4K − C4K − 7·H4K = 10000 − 4000 − 700 = 5300.
	if got := p.Predict(0, 0, 0); got != 5300 {
		t.Errorf("β = %v, want 5300", got)
	}
	// At the 4KB point the model reproduces R4K by construction.
	if got := p.Predict(100, 200, 4000); got != 10000 {
		t.Errorf("Predict(4KB point) = %v, want 10000", got)
	}
}

func TestAlamFormula(t *testing.T) {
	var a Alam
	if err := a.Fit(baselineSamples()); err != nil {
		t.Fatal(err)
	}
	// β = R2M − C2M = 6600; slope 1.
	if got := a.Predict(0, 0, 1000); got != 7600 {
		t.Errorf("Predict(C=1000) = %v, want 7600", got)
	}
}

func TestYanivFormula(t *testing.T) {
	var y Yaniv
	if err := y.Fit(baselineSamples()); err != nil {
		t.Fatal(err)
	}
	// Line through (400,7000) and (4000,10000): α = 3000/3600 = 5/6.
	if math.Abs(y.Alpha()-5.0/6.0) > 1e-12 {
		t.Errorf("α = %v, want 5/6", y.Alpha())
	}
	if got := y.Predict(0, 0, 400); math.Abs(got-7000) > 1e-9 {
		t.Errorf("Predict(C2M) = %v, want 7000", got)
	}
	if got := y.Predict(0, 0, 4000); math.Abs(got-10000) > 1e-9 {
		t.Errorf("Predict(C4K) = %v, want 10000", got)
	}
}

func TestPriorModelsMissingBaselines(t *testing.T) {
	noBase := []pmu.Sample{{Layout: "mid", H: 1, M: 1, C: 1, R: 1}}
	for _, m := range []Model{&Basu{}, &Gandhi{}, &Pham{}, &Alam{}, &Yaniv{}} {
		if err := m.Fit(noBase); err == nil {
			t.Errorf("%s: fit without baselines should fail", m.Name())
		}
	}
	// Zero misses in the 4KB sample breaks Basu/Gandhi's α.
	zeroM := []pmu.Sample{
		{Layout: "4KB", H: 1, M: 0, C: 1, R: 10},
		{Layout: "2MB", H: 1, M: 0, C: 1, R: 10},
	}
	if err := (&Basu{}).Fit(zeroM); err == nil {
		t.Error("basu with M4K=0 should fail")
	}
	if err := (&Yaniv{}).Fit(zeroM); err == nil {
		t.Error("yaniv with identical baseline C should fail")
	}
}

// TestYanivCoincidenceIsBitExact pins the coincidence guard's semantics
// after floateq moved it to math.Float64bits: two baseline C counters that
// differ by a single ULP are distinct (the slope is computable, however
// wild), while bit-identical counters fail the fit.
func TestYanivCoincidenceIsBitExact(t *testing.T) {
	base := 2.4e7
	oneULP := math.Float64frombits(math.Float64bits(base) + 1)
	fit := func(c2m float64) error {
		return (&Yaniv{}).Fit([]pmu.Sample{
			{Layout: "4KB", H: 1, M: 1, C: base, R: 9e7},
			{Layout: "2MB", H: 1, M: 1, C: c2m, R: 6e7},
		})
	}
	if err := fit(base); err == nil {
		t.Error("bit-identical baseline C should fail the fit")
	}
	if err := fit(oneULP); err != nil {
		t.Errorf("one-ULP-distinct baseline C should fit, got %v", err)
	}
}

// synthSamples generates samples from a smooth ground truth with the
// layout labels the protocol produces.
func synthSamples(n int, seed int64) []pmu.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]pmu.Sample, 0, n)
	truth := func(h, m, c float64) float64 {
		cr := c / 1e8
		return 5e8 + 0.9*c - 1.2e8*cr*cr + 0.6e8*cr*cr*cr + 3*h + 10*m
	}
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		c := frac * 1e8
		m := c / 300
		h := m * 1.5
		s := pmu.Sample{Layout: "mid", H: h, M: m, C: c, R: truth(h, m, c)}
		if i == n-1 {
			s.Layout = "4KB"
		}
		if i == 0 {
			s.Layout = "2MB"
		}
		_ = rng
		out = append(out, s)
	}
	return out
}

func TestPolyFitsAccurately(t *testing.T) {
	samples := synthSamples(54, 1)
	p3 := NewPoly(3)
	maxErr, geoErr, err := Evaluate(p3, samples)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > 0.01 {
		t.Errorf("poly3 max error = %v on cubic ground truth", maxErr)
	}
	// The geomean clamps exact-fit samples at 1e-9, so only compare when
	// the max error is above that floor.
	if maxErr > 1e-8 && geoErr > maxErr {
		t.Errorf("geomean %v exceeds max %v", geoErr, maxErr)
	}
	// poly1 on the same curved data must be worse than poly3.
	p1 := NewPoly(1)
	maxErr1, _, err := Evaluate(p1, samples)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr1 <= maxErr {
		t.Errorf("poly1 (%v) should be worse than poly3 (%v) on curved data", maxErr1, maxErr)
	}
}

func TestMosmodelBudgetAndAccuracy(t *testing.T) {
	samples := synthSamples(54, 2)
	m := NewMosmodel()
	maxErr, _, err := Evaluate(m, samples)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > 0.03 {
		t.Errorf("mosmodel max error = %v, want < 3%%", maxErr)
	}
	if nz := len(m.SelectedTerms()); nz > 5 {
		t.Errorf("mosmodel kept %d terms (%v), budget is 5", nz, m.SelectedTerms())
	}
}

func TestModelsTooFewSamples(t *testing.T) {
	few := baselineSamples()
	if err := NewPoly(3).Fit(few); err == nil {
		t.Error("poly3 with 3 samples should fail")
	}
	if err := NewMosmodel().Fit(few); err == nil {
		t.Error("mosmodel with 3 samples should fail")
	}
}

func TestRegistryOrder(t *testing.T) {
	want := []string{"pham", "alam", "gandhi", "basu", "yaniv", "poly1", "poly2", "poly3", "mosmodel"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d models", len(reg))
	}
	for i, f := range reg {
		if got := f().Name(); got != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, got, want[i])
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("yaniv")
	if err != nil || m.Name() != "yaniv" {
		t.Errorf("ByName(yaniv) = %v, %v", m, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestCrossValidate(t *testing.T) {
	samples := synthSamples(54, 3)
	cvErr, err := CrossValidate(func() Model { return NewPoly(3) }, samples, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cvErr > 0.05 {
		t.Errorf("poly3 CV error = %v on smooth ground truth", cvErr)
	}
	// CV error should not be dramatically below the fit-all error.
	fitErr, _, err := Evaluate(NewPoly(3), samples)
	if err != nil {
		t.Fatal(err)
	}
	if cvErr < fitErr/10 && fitErr > 1e-9 {
		t.Errorf("CV error %v implausibly below training error %v", cvErr, fitErr)
	}
}

func TestSingleVarR2(t *testing.T) {
	// R depends on C strongly, on H not at all.
	samples := make([]pmu.Sample, 30)
	rng := rand.New(rand.NewSource(4))
	for i := range samples {
		c := float64(i) * 1e6
		samples[i] = pmu.Sample{
			H: rng.Float64() * 1e6, // noise
			M: c / 300,
			C: c,
			R: 1e9 + 0.8*c,
		}
	}
	rc, err := SingleVarR2(samples, "C")
	if err != nil {
		t.Fatal(err)
	}
	rh, err := SingleVarR2(samples, "H")
	if err != nil {
		t.Fatal(err)
	}
	if rc < 0.99 {
		t.Errorf("R²(C) = %v, want ≈1", rc)
	}
	if rh > 0.3 {
		t.Errorf("R²(H) = %v, want ≈0", rh)
	}
	if _, err := SingleVarR2(samples, "Z"); err == nil {
		t.Error("unknown input should fail")
	}
}

func TestPolySlope(t *testing.T) {
	samples := synthSamples(54, 5)
	p := NewPoly(1)
	if err := p.Fit(samples); err != nil {
		t.Fatal(err)
	}
	// A linear fit's slope is constant.
	s1, s2 := p.Slope(1e6), p.Slope(5e7)
	if math.Abs(s1-s2) > 1e-6*math.Abs(s1) {
		t.Errorf("linear slope varies: %v vs %v", s1, s2)
	}
}
