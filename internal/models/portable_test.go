package models

import (
	"encoding/json"
	"math"
	"testing"

	"mosaic/internal/pmu"
)

// portableSamples builds a training set every model accepts: the 4KB/2MB
// baselines the prior models need plus enough spread for the regressions.
func portableSamples() []pmu.Sample {
	samples := []pmu.Sample{
		{Layout: "4KB", H: 9e5, M: 4e5, C: 2.4e7, R: 9.1e7},
		{Layout: "2MB", H: 1e5, M: 2e4, C: 1.1e6, R: 6.6e7},
	}
	for i := 0; i < 16; i++ {
		f := float64(i) / 15
		samples = append(samples, pmu.Sample{
			Layout: "grow",
			H:      1e5 + f*8e5,
			M:      2e4 + f*3.8e5,
			C:      1.1e6 + f*2.29e7 + f*f*1e6,
			R:      6.6e7 + f*2.4e7 + f*f*1.1e6,
		})
	}
	return samples
}

// TestModelJSONRoundTrip is the registry's persistence contract: every
// model in the paper's registry, once fitted, must predict bit-identically
// after a save/load through JSON.
func TestModelJSONRoundTrip(t *testing.T) {
	samples := portableSamples()
	for _, f := range Registry() {
		m := f()
		if err := m.Fit(samples); err != nil {
			t.Fatalf("%s: fit: %v", m.Name(), err)
		}
		raw, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("%s: marshal: %v", m.Name(), err)
		}
		back, err := Restore(m.Name(), raw)
		if err != nil {
			t.Fatalf("%s: restore: %v", m.Name(), err)
		}
		probes := append([]pmu.Sample{}, samples...)
		// Off-hull probes exercise Mosmodel's restored clamping too.
		probes = append(probes,
			pmu.Sample{H: 0, M: 0, C: 0},
			pmu.Sample{H: 5e6, M: 5e6, C: 9e8})
		for _, s := range probes {
			want := m.Predict(s.H, s.M, s.C)
			got := back.Predict(s.H, s.M, s.C)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("%s: prediction at (%g,%g,%g) changed across JSON: %v -> %v",
					m.Name(), s.H, s.M, s.C, want, got)
			}
		}
	}
}

// TestModelJSONRejectsUnfitted: serializing a model that was never fitted
// must fail loudly rather than persist a predictor that panics.
func TestModelJSONRejectsUnfitted(t *testing.T) {
	for _, m := range []Model{NewPoly(2), NewMosmodel()} {
		if _, err := json.Marshal(m); err == nil {
			t.Errorf("%s: marshal of unfitted model succeeded", m.Name())
		}
	}
	for name, raw := range map[string]string{
		"poly2":    `{"degree":2,"fit":null}`,
		"poly9":    `{"degree":9,"fit":null}`,
		"mosmodel": `{"trainMin":[0,0,0],"trainMax":[1,1,1]}`,
		"basu":     `{"alpha":1,"beta":2,"fitted":false}`,
	} {
		base := name
		if name == "poly9" {
			base = "poly2"
		}
		if _, err := Restore(base, json.RawMessage(raw)); err == nil {
			t.Errorf("%s: restore of %s succeeded", base, raw)
		}
	}
}

// TestRestoreUnknownModel: a registry file naming a model this build does
// not know must error, not panic.
func TestRestoreUnknownModel(t *testing.T) {
	if _, err := Restore("nonesuch", json.RawMessage(`{}`)); err == nil {
		t.Fatal("restore of unknown model succeeded")
	}
}
