package models

import (
	"fmt"

	"mosaic/internal/pmu"
	"mosaic/internal/stats"
)

// Factory creates a fresh, unfitted model — needed by cross-validation,
// which refits per fold.
type Factory func() Model

// Registry lists all nine models in the paper's figure order
// (Figure 5/6 legends): preexisting first, then the new regressions.
func Registry() []Factory {
	return []Factory{
		func() Model { return &Pham{} },
		func() Model { return &Alam{} },
		func() Model { return &Gandhi{} },
		func() Model { return &Basu{} },
		func() Model { return &Yaniv{} },
		func() Model { return NewPoly(1) },
		func() Model { return NewPoly(2) },
		func() Model { return NewPoly(3) },
		func() Model { return NewMosmodel() },
	}
}

// PriorNames lists the preexisting models (Figure 2a).
var PriorNames = []string{"pham", "alam", "gandhi", "basu", "yaniv"}

// NewNames lists the newly proposed models (Figure 2b).
var NewNames = []string{"poly1", "poly2", "poly3", "mosmodel"}

// ByName creates a fresh model by name.
func ByName(name string) (Model, error) {
	for _, f := range Registry() {
		if m := f(); m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("models: unknown model %q", name)
}

// Predictions evaluates a fitted model on samples.
func Predictions(m Model, samples []pmu.Sample) (y, yhat []float64) {
	y = make([]float64, len(samples))
	yhat = make([]float64, len(samples))
	for i, s := range samples {
		y[i] = s.R
		yhat[i] = m.Predict(s.H, s.M, s.C)
	}
	return y, yhat
}

// Evaluate fits the model on all samples and measures its errors against
// the same samples — the paper's primary protocol (§VI-C), which is fair
// because the sample count obeys the one-in-ten rule.
func Evaluate(m Model, samples []pmu.Sample) (maxErr, geoErr float64, err error) {
	if err := m.Fit(samples); err != nil {
		return 0, 0, err
	}
	y, yhat := Predictions(m, samples)
	return stats.MaxAbsRelErr(y, yhat), stats.GeoMeanAbsRelErr(y, yhat), nil
}

// CrossValidate runs K-fold cross-validation (§VI-C, Table 6): fit on K−1
// folds, measure on the held-out fold, return the maximal error across all
// folds. The baseline 4KB/2MB samples are kept in every training set, as
// the preexisting-model anchors must always be available.
func CrossValidate(f Factory, samples []pmu.Sample, k int, seed int64) (float64, error) {
	folds := stats.KFoldIndices(len(samples), k, seed)
	worst := 0.0
	for _, test := range folds {
		inTest := make(map[int]bool, len(test))
		for _, i := range test {
			inTest[i] = true
		}
		var train, held []pmu.Sample
		for i, s := range samples {
			// Baselines stay in training: they anchor the prior models.
			if inTest[i] && s.Layout != "4KB" && s.Layout != "2MB" {
				held = append(held, s)
			} else {
				train = append(train, s)
			}
		}
		if len(held) == 0 {
			continue
		}
		m := f()
		if err := m.Fit(train); err != nil {
			return 0, err
		}
		y, yhat := Predictions(m, held)
		if e := stats.MaxAbsRelErr(y, yhat); e > worst {
			worst = e
		}
	}
	return worst, nil
}

// SingleVarR2 fits a first-order, single-variable linear regression of R
// against the chosen input and returns its R² — one cell of Table 8.
// which selects the input: "H", "M", or "C".
func SingleVarR2(samples []pmu.Sample, which string) (float64, error) {
	X := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		var v float64
		switch which {
		case "H":
			v = s.H
		case "M":
			v = s.M
		case "C":
			v = s.C
		default:
			return 0, fmt.Errorf("models: unknown input %q", which)
		}
		X[i] = []float64{v}
		y[i] = s.R
	}
	fit, err := stats.FitPoly(X, y, 1, []string{which})
	if err != nil {
		return 0, err
	}
	yhat := make([]float64, len(samples))
	for i := range X {
		yhat[i] = fit.Predict(X[i])
	}
	return stats.R2(y, yhat), nil
}
