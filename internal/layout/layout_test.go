package layout

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mosaic/internal/arch"
	"mosaic/internal/mem"
	"mosaic/internal/mosalloc"
	"mosaic/internal/trace"
)

func testTarget() Target {
	return Target{
		HeapUsed: 16 << 20,
		AnonUsed: 32 << 20,
		HeapCap:  16 << 20,
		AnonCap:  32 << 20,
	}
}

func TestTargetValidate(t *testing.T) {
	if err := testTarget().Validate(); err != nil {
		t.Fatal(err)
	}
	if (Target{}).Validate() == nil {
		t.Error("empty target should fail")
	}
	bad := testTarget()
	bad.HeapCap = 1
	if bad.Validate() == nil {
		t.Error("capacity below usage should fail")
	}
}

func TestConcatOffset(t *testing.T) {
	tg := testTarget()
	cases := []struct {
		va   mem.Addr
		want uint64
		ok   bool
	}{
		{mosalloc.HeapPoolBase, 0, true},
		{mosalloc.HeapPoolBase + 100, 100, true},
		{mosalloc.HeapPoolBase + mem.Addr(tg.HeapUsed), 0, false},
		{mosalloc.AnonPoolBase, tg.HeapUsed, true},
		{mosalloc.AnonPoolBase + 5, tg.HeapUsed + 5, true},
		{mosalloc.AnonPoolBase + mem.Addr(tg.AnonUsed), 0, false},
		{0x1234, 0, false},
	}
	for _, c := range cases {
		got, ok := tg.ConcatOffset(c.va)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ConcatOffset(%#x) = %d,%v want %d,%v", uint64(c.va), got, ok, c.want, c.ok)
		}
	}
}

func TestBaselines(t *testing.T) {
	tg := testTarget()
	for _, c := range []struct {
		lay  Layout
		size mem.PageSize
	}{
		{tg.Baseline4K(), mem.Page4K},
		{tg.Baseline2M(), mem.Page2M},
		{tg.Baseline1G(), mem.Page1G},
	} {
		if err := c.lay.Cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", c.lay.Name, err)
		}
		for _, iv := range c.lay.Cfg.HeapPool.Intervals {
			if iv.Size != c.size {
				t.Errorf("%s heap interval size = %s", c.lay.Name, iv.Size)
			}
		}
	}
	// 1GB baseline rounds pool capacity up to 1GB.
	if got := tg.Baseline1G().Cfg.HeapPool.Size(); got != 1<<30 {
		t.Errorf("1GB heap pool = %d, want 1GB", got)
	}
}

func TestGrowingWindows(t *testing.T) {
	tg := testTarget()
	lays := tg.GrowingWindows(8)
	if len(lays) != 9 {
		t.Fatalf("%d layouts, want 9", len(lays))
	}
	// First layout: all 4KB (no 2MB bytes).
	if by := lays[0].Cfg.HeapPool.BytesBySize(); by[mem.Page2M] != 0 {
		t.Error("first growing layout should have no hugepages")
	}
	if by := lays[0].Cfg.AnonPool.BytesBySize(); by[mem.Page2M] != 0 {
		t.Error("first growing layout anon pool should have no hugepages")
	}
	// Last layout: fully 2MB.
	if by := lays[8].Cfg.HeapPool.BytesBySize(); by[mem.Page4K] != 0 {
		t.Error("last growing layout heap should be all hugepages")
	}
	// Monotone growth of 2MB coverage.
	prev := uint64(0)
	for i, l := range lays {
		if err := l.Cfg.Validate(); err != nil {
			t.Fatalf("layout %d: %v", i, err)
		}
		cur := l.Cfg.HeapPool.BytesBySize()[mem.Page2M] + l.Cfg.AnonPool.BytesBySize()[mem.Page2M]
		if cur < prev {
			t.Errorf("2MB coverage shrank at layout %d", i)
		}
		prev = cur
	}
}

func TestRandomWindowsValidAndDeterministic(t *testing.T) {
	tg := testTarget()
	a := tg.RandomWindows(9, 42)
	b := tg.RandomWindows(9, 42)
	if len(a) != 9 {
		t.Fatalf("%d layouts", len(a))
	}
	for i := range a {
		if err := a[i].Cfg.Validate(); err != nil {
			t.Fatalf("layout %d: %v", i, err)
		}
		if a[i].Cfg.HeapPool.String() != b[i].Cfg.HeapPool.String() {
			t.Error("same seed must give same layouts")
		}
	}
	c := tg.RandomWindows(9, 43)
	same := true
	for i := range a {
		if a[i].Cfg.HeapPool.String() != c[i].Cfg.HeapPool.String() ||
			a[i].Cfg.AnonPool.String() != c[i].Cfg.AnonPool.String() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different layouts")
	}
}

func TestHotRegion(t *testing.T) {
	p := MissProfile{ChunkSize: 1 << 21, Counts: []uint64{0, 1, 50, 40, 1, 0, 0, 8}}
	s, e := p.HotRegion(0.8)
	// Chunks 2,3 hold 90/100 misses: the smallest ≥80% region.
	if s != 2<<21 || e != 4<<21 {
		t.Errorf("hot region = [%d,%d) chunks [%d,%d), want [2,4)", s, e, s>>21, e>>21)
	}
	// Empty profile.
	if s, e := (MissProfile{ChunkSize: 1 << 21}).HotRegion(0.5); s != 0 || e != 0 {
		t.Error("empty profile should yield empty region")
	}
}

func TestHotRegionProperty(t *testing.T) {
	prop := func(seed int64, xRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		p := MissProfile{ChunkSize: 1 << 21, Counts: make([]uint64, n)}
		for i := range p.Counts {
			p.Counts[i] = uint64(rng.Intn(100))
		}
		x := float64(xRaw%80+10) / 100
		s, e := p.HotRegion(x)
		if p.Total() == 0 {
			return s == 0 && e == 0
		}
		if s%p.ChunkSize != 0 || e%p.ChunkSize != 0 || e < s {
			return false
		}
		// The region must actually contain ≥ x of the misses.
		var sum uint64
		for i := s / p.ChunkSize; i < e/p.ChunkSize; i++ {
			sum += p.Counts[i]
		}
		return float64(sum) >= x*float64(p.Total())-1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSlidingWindows(t *testing.T) {
	tg := testTarget()
	// Hot region near the bottom: windows must slide upward.
	p := MissProfile{ChunkSize: 1 << 21, Counts: make([]uint64, int(tg.Space()>>21))}
	p.Counts[1] = 100
	p.Counts[2] = 100
	lays := tg.SlidingWindows(p, 0.8, 8)
	if len(lays) != 9 {
		t.Fatalf("%d layouts, want 9", len(lays))
	}
	for i, l := range lays {
		if err := l.Cfg.Validate(); err != nil {
			t.Fatalf("layout %d (%s): %v", i, l.Name, err)
		}
	}
	// First window covers the hot region (2MB backing at chunk 1).
	first := lays[0].Cfg.HeapPool
	if ps, _ := first.PageSizeAt(3 << 20); ps != mem.Page2M {
		t.Errorf("first sliding window does not back the hot region: %s", first)
	}
	// Later windows progressively leave it: the last should not cover
	// chunk 1 anymore.
	last := lays[8].Cfg.HeapPool
	if ps, _ := last.PageSizeAt(2 << 20); ps == mem.Page2M {
		t.Errorf("last sliding window still backs the hot region start: %s", last)
	}
}

func TestSlidingWindowsEmptyProfile(t *testing.T) {
	tg := testTarget()
	p := MissProfile{ChunkSize: 1 << 21, Counts: make([]uint64, int(tg.Space()>>21))}
	lays := tg.SlidingWindows(p, 0.5, 8)
	if len(lays) != 9 {
		t.Fatalf("%d layouts", len(lays))
	}
	for _, l := range lays {
		if err := l.Cfg.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStandardProtocol(t *testing.T) {
	tg := testTarget()
	p := MissProfile{ChunkSize: 1 << 21, Counts: make([]uint64, int(tg.Space()>>21))}
	for i := range p.Counts {
		p.Counts[i] = uint64(i % 7)
	}
	lays := tg.Standard(p, 1)
	if len(lays) != 54 {
		t.Fatalf("standard protocol yields %d layouts, want 54", len(lays))
	}
	names := map[string]int{}
	for _, l := range lays {
		names[l.Name]++
		if err := l.Cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		// Pool capacities must be preserved so traces replay on any layout.
		if l.Cfg.HeapPool.Size() != tg.HeapCap || l.Cfg.AnonPool.Size() != tg.AnonCap {
			t.Fatalf("%s: pool capacity changed", l.Name)
		}
	}
	for name, n := range names {
		if n > 1 {
			t.Errorf("duplicate layout name %s", name)
		}
	}
}

func TestProfileMisses(t *testing.T) {
	tg := testTarget()
	b := trace.NewBuilder("p", 4096)
	// Hammer one 2MB chunk of the anon pool with random 4KB pages (more
	// pages than the L1 TLB holds, so misses occur), then touch a single
	// heap page a few times (at most one miss).
	rng := rand.New(rand.NewSource(9))
	hot := mosalloc.AnonPoolBase + mem.Addr(4<<20)
	for i := 0; i < 4000; i++ {
		b.Load(hot + mem.Addr(rng.Uint64()%(2<<20)))
	}
	for i := 0; i < 10; i++ {
		b.Load(mosalloc.HeapPoolBase + 0x100)
	}
	p := ProfileMisses(b.Trace(), arch.SandyBridge.TLB, tg)
	if p.Total() == 0 {
		t.Fatal("no misses recorded")
	}
	hotChunk := (tg.HeapUsed + 4<<20) >> 21
	if p.Counts[hotChunk] < p.Total()*9/10 {
		t.Errorf("hot chunk holds %d of %d misses", p.Counts[hotChunk], p.Total())
	}
	s, e := p.HotRegion(0.8)
	if !(s <= hotChunk<<21 && e > hotChunk<<21) {
		t.Errorf("hot region [%d,%d) misses the hot chunk %d", s>>21, e>>21, hotChunk)
	}
}

func TestExtendedProtocol(t *testing.T) {
	tg := testTarget()
	p := MissProfile{ChunkSize: 1 << 21, Counts: make([]uint64, int(tg.Space()>>21))}
	for i := range p.Counts {
		p.Counts[i] = uint64(i % 5)
	}
	lays := tg.Extended(p, 1)
	if len(lays) != 102 {
		t.Fatalf("extended protocol yields %d layouts, want 102", len(lays))
	}
	names := map[string]bool{}
	for _, l := range lays {
		if names[l.Name] {
			t.Fatalf("duplicate layout %s", l.Name)
		}
		names[l.Name] = true
		if err := l.Cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
	}
	if !names["4KB"] || !names["2MB"] {
		t.Error("extended protocol must include the baselines")
	}
}
