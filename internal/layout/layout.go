// Package layout implements the paper's memory-layout selection (§VI-B):
// given a workload's pool usage, it generates the 54 mosaics — growing
// window, random window, and sliding window over a simulated-PEBS TLB-miss
// profile — that spread experimental samples across the (H, M, C) space.
//
// A "window" is a contiguous region backed with 2MB hugepages; everything
// outside it stays on 4KB pages. Windows are expressed over the *concatenated*
// used space of the heap and anonymous pools and then split back into
// per-pool Mosalloc configurations.
package layout

import (
	"fmt"
	"math/rand"

	"mosaic/internal/mem"
	"mosaic/internal/mosalloc"
)

// Target describes the pool usage of one workload: how much of each pool
// its trace actually touches, and the pool capacities Mosalloc must
// reserve (2MB-aligned, ≥ used).
type Target struct {
	HeapUsed uint64
	AnonUsed uint64
	HeapCap  uint64
	AnonCap  uint64
	// FileCap is the (4KB-only) file pool capacity.
	FileCap uint64
}

// Space returns the concatenated used-space size.
func (t Target) Space() uint64 { return t.HeapUsed + t.AnonUsed }

// ConcatOffset maps a pool virtual address to its offset in the
// concatenated space ([heap used][anon used]).
func (t Target) ConcatOffset(va mem.Addr) (uint64, bool) {
	if va >= mosalloc.HeapPoolBase && uint64(va-mosalloc.HeapPoolBase) < t.HeapUsed {
		return uint64(va - mosalloc.HeapPoolBase), true
	}
	if va >= mosalloc.AnonPoolBase && uint64(va-mosalloc.AnonPoolBase) < t.AnonUsed {
		return t.HeapUsed + uint64(va-mosalloc.AnonPoolBase), true
	}
	return 0, false
}

// Validate sanity-checks the target.
func (t Target) Validate() error {
	if t.Space() == 0 {
		return fmt.Errorf("layout: target has no used space")
	}
	if t.HeapCap < t.HeapUsed || t.AnonCap < t.AnonUsed {
		return fmt.Errorf("layout: capacities below usage")
	}
	return nil
}

// Layout is one named Mosalloc configuration.
type Layout struct {
	Name string
	Cfg  mosalloc.Config
}

// windowed builds the per-pool configuration for a hugepage window
// [start, end) over the concatenated space.
func (t Target) windowed(name string, start, end uint64, inner mem.PageSize) Layout {
	clamp := func(v, lo, hi uint64) uint64 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	hs := clamp(start, 0, t.HeapUsed)
	he := clamp(end, 0, t.HeapUsed)
	as := clamp(start, t.HeapUsed, t.Space()) - t.HeapUsed
	ae := clamp(end, t.HeapUsed, t.Space()) - t.HeapUsed
	cfg := mosalloc.Config{
		HeapPool:      mosalloc.Window(t.HeapCap, hs, he, inner),
		AnonPool:      mosalloc.Window(t.AnonCap, as, ae, inner),
		FilePoolBytes: t.fileCap(),
	}
	return Layout{Name: name, Cfg: cfg}
}

func (t Target) fileCap() uint64 {
	if t.FileCap == 0 {
		return 1 << 20
	}
	return t.FileCap
}

// Baseline4K backs everything with 4KB pages.
func (t Target) Baseline4K() Layout {
	return Layout{Name: "4KB", Cfg: mosalloc.Config{
		HeapPool:      mosalloc.Uniform(mem.Page4K, t.HeapCap),
		AnonPool:      mosalloc.Uniform(mem.Page4K, t.AnonCap),
		FilePoolBytes: t.fileCap(),
	}}
}

// Baseline2M backs everything with 2MB pages.
func (t Target) Baseline2M() Layout {
	return Layout{Name: "2MB", Cfg: mosalloc.Config{
		HeapPool:      mosalloc.Uniform(mem.Page2M, t.HeapCap),
		AnonPool:      mosalloc.Uniform(mem.Page2M, t.AnonCap),
		FilePoolBytes: t.fileCap(),
	}}
}

// Baseline1G backs everything with 1GB pages (pool capacities round up).
func (t Target) Baseline1G() Layout {
	return Layout{Name: "1GB", Cfg: mosalloc.Config{
		HeapPool:      mosalloc.Uniform(mem.Page1G, t.HeapCap),
		AnonPool:      mosalloc.Uniform(mem.Page1G, t.AnonCap),
		FilePoolBytes: t.fileCap(),
	}}
}

// GrowingWindows returns n+1 layouts whose 2MB window starts at 0 and
// covers i·S/n of the space, i = 0…n. The first is all-4KB, the last all-2MB.
func (t Target) GrowingWindows(n int) []Layout {
	s := t.Space()
	out := make([]Layout, 0, n+1)
	for i := 0; i <= n; i++ {
		end := s * uint64(i) / uint64(n)
		name := fmt.Sprintf("grow-%d/%d", i, n)
		// The extremes are the historical baselines every prior model is
		// anchored on; name them so model fitting can find them.
		if i == 0 {
			name = "4KB"
		} else if i == n {
			name = "2MB"
		}
		out = append(out, t.windowed(name, 0, end, mem.Page2M))
	}
	return out
}

// RandomWindows returns n layouts whose window has random start and length.
func (t Target) RandomWindows(n int, seed int64) []Layout {
	rng := rand.New(rand.NewSource(seed))
	s := t.Space()
	out := make([]Layout, 0, n)
	for i := 0; i < n; i++ {
		length := rng.Uint64() % s
		start := rng.Uint64() % (s - length + 1)
		out = append(out, t.windowed(fmt.Sprintf("rand-%d", i), start, start+length, mem.Page2M))
	}
	return out
}

// MissProfile is the simulated-PEBS TLB-miss histogram over the
// concatenated space, at ChunkSize granularity.
type MissProfile struct {
	ChunkSize uint64
	Counts    []uint64
}

// Total returns the total miss count.
func (p MissProfile) Total() uint64 {
	var n uint64
	for _, c := range p.Counts {
		n += c
	}
	return n
}

// HotRegion returns the smallest contiguous byte range accounting for at
// least fraction x of all misses (two-pointer scan over the chunks).
func (p MissProfile) HotRegion(x float64) (start, end uint64) {
	total := p.Total()
	if total == 0 || len(p.Counts) == 0 {
		return 0, 0
	}
	need := uint64(x * float64(total))
	if need == 0 {
		need = 1
	}
	bestLo, bestHi := 0, len(p.Counts)
	var sum uint64
	lo := 0
	for hi := 0; hi < len(p.Counts); hi++ {
		sum += p.Counts[hi]
		for sum-p.Counts[lo] >= need && lo < hi {
			sum -= p.Counts[lo]
			lo++
		}
		if sum >= need && hi-lo < bestHi-bestLo {
			bestLo, bestHi = lo, hi
		}
	}
	return uint64(bestLo) * p.ChunkSize, uint64(bestHi+1) * p.ChunkSize
}

// SlidingWindows implements the paper's most sophisticated heuristic:
// (1) take the workload's TLB-miss profile; (2) find the smallest hot
// region holding fraction x of the misses; (3) use it as the first
// window; (4) slide the window in steps of 1/n of its size — toward low
// or high addresses depending on whether the region sits at the top or
// bottom of the space — so successive layouts back less of the hot region
// with hugepages. Returns n+1 layouts.
func (t Target) SlidingWindows(profile MissProfile, x float64, n int) []Layout {
	s := t.Space()
	hs, he := profile.HotRegion(x)
	if he > s {
		he = s
	}
	if he <= hs {
		hs, he = 0, s
	}
	size := he - hs
	step := size / uint64(n)
	if step == 0 {
		step = uint64(mem.Page2M)
	}
	// Slide away from the space edge the region is closest to.
	slideUp := hs < s-he
	out := make([]Layout, 0, n+1)
	for i := 0; i <= n; i++ {
		delta := step * uint64(i)
		var ws, we uint64
		if slideUp {
			ws, we = hs+delta, he+delta
			if we > s {
				we = s
				if ws > we {
					ws = we
				}
			}
		} else {
			if delta > hs {
				ws = 0
			} else {
				ws = hs - delta
			}
			if delta > he {
				we = 0
			} else {
				we = he - delta
			}
		}
		name := fmt.Sprintf("slide-%d%%-%d/%d", int(x*100), i, n)
		out = append(out, t.windowed(name, ws, we, mem.Page2M))
	}
	return out
}

// Standard generates the paper's 54-layout protocol: 9 growing windows
// (n=8), 9 random windows, and 9×4 sliding windows with hot-region
// fractions 20/40/60/80%.
func (t Target) Standard(profile MissProfile, seed int64) []Layout {
	var out []Layout
	out = append(out, t.GrowingWindows(8)...)
	out = append(out, t.RandomWindows(9, seed)...)
	for _, x := range []float64{0.2, 0.4, 0.6, 0.8} {
		out = append(out, t.SlidingWindows(profile, x, 8)...)
	}
	return out
}

// Extended generates a ~102-layout protocol (17 growing, 17 random, 17×4
// sliding): the larger sample sets the paper needed — up to 100 points —
// for cross-validation to converge below 5% maximal error (§VI-C).
func (t Target) Extended(profile MissProfile, seed int64) []Layout {
	var out []Layout
	out = append(out, t.GrowingWindows(16)...)
	out = append(out, t.RandomWindows(17, seed)...)
	for _, x := range []float64{0.2, 0.4, 0.6, 0.8} {
		out = append(out, t.SlidingWindows(profile, x, 16)...)
	}
	return out
}
