package layout

import (
	"mosaic/internal/arch"
	"mosaic/internal/mem"
	"mosaic/internal/tlb"
	"mosaic/internal/trace"
)

// ProfileMisses is the simulated PEBS step of the sliding-window heuristic:
// it replays the trace through the platform's TLB assuming an all-4KB
// layout and histograms the L2 TLB misses per 2MB chunk of the target's
// concatenated space — the same information content as the paper's
// hardware TLB-miss sampling.
func ProfileMisses(tr *trace.Trace, cfg arch.TLBConfig, t Target) MissProfile {
	const chunk = uint64(mem.Page2M)
	n := (t.Space() + chunk - 1) / chunk
	p := MissProfile{ChunkSize: chunk, Counts: make([]uint64, n)}
	tb := tlb.New(cfg)
	cols := tr.Columns()
	for i := 0; i < cols.Len(); i++ {
		va := cols.VA(i)
		if tb.Lookup(va, mem.Page4K) == tlb.Miss {
			tb.Insert(va, mem.Page4K)
			if off, ok := t.ConcatOffset(va); ok {
				p.Counts[off/chunk]++
			}
		}
	}
	return p
}
