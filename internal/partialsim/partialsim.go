// Package partialsim is the partial simulator of the paper's Figure 1: it
// models only the virtual-memory subsystem — TLBs, page-walk caches, and
// the cache hierarchy as seen by the walker's page-table loads — and
// reports the virtual-memory metrics (H, M, C) without any notion of
// runtime. This is the BadgerTrap-style tool the surveyed studies built
// (§II-B): much faster than a full simulation precisely because it skips
// the timing model, and therefore unable to answer the only question that
// matters (how long does the program run?) without a runtime model.
//
// The intended flow, exactly as in the paper:
//
//	metrics := partialsim.Run(trace, space, hypotheticalDesign)
//	runtime := mosmodel.Predict(metrics.H, metrics.M, metrics.C)
//
// The package shares the TLB/walker/cache components with the full machine
// (internal/cpu), so a partial simulation of platform P reproduces the
// full machine's H and M exactly. The walk-cycle count C depends on how
// warm the caches the walker reads from are: by default only the walker's
// own loads occupy them (the cheapest simulation); with
// SimulateProgramCache the program's data accesses stream through the
// hierarchy too, which reproduces the full machine's C exactly — the
// paper's §II-B trade-off ("simulating the memory hierarchy and page walk
// caches is more complicated than simulating the TLB alone, but is still
// faster and simpler than simulating the entire CPU"), and the property
// §VII-D calls a "perfectly accurate partial simulator".
package partialsim

import (
	"fmt"

	"mosaic/internal/arch"
	"mosaic/internal/cache"
	"mosaic/internal/cpu"
	"mosaic/internal/mem"
	"mosaic/internal/tlb"
	"mosaic/internal/trace"
	"mosaic/internal/walker"
)

// Metrics is the partial simulator's entire output: the virtual-memory
// performance counters of Table 2, *without* R. Runtime is exactly what a
// partial simulation cannot produce (§I).
type Metrics struct {
	// H: translations that missed the L1 TLB but hit the L2 TLB.
	H uint64
	// M: translations that missed both TLB levels.
	M uint64
	// C: cycles spent walking the page table (walk latencies summed; the
	// partial simulator has no wall clock, so unlike the full machine it
	// cannot account for walker concurrency — it reports pure walk work).
	C uint64
	// Lookups is the number of translations simulated.
	Lookups uint64
	// WalkRefs is the number of page-table entry loads issued.
	WalkRefs uint64
}

// Simulator is a reusable partial simulator for one platform over one
// address space.
type Simulator struct {
	plat  arch.Platform
	space *mem.AddressSpace
	// trans memoizes VA→(phys, pagesize) above the page-table radix walk;
	// sound because translation state is immutable during replay.
	trans *mem.Translator
	tlb   *tlb.TLB
	hier  *cache.Hierarchy
	walk  *walker.Walker
	// SimulateProgramCache streams program data accesses through the
	// cache hierarchy so the walker's loads see realistically warm/polluted
	// caches, making C match the full machine exactly (at ~2× cost).
	SimulateProgramCache bool
}

// New builds a partial simulator. Only the virtual-memory-relevant parts
// of the platform are used: TLB geometry, PWC sizes, and the cache
// hierarchy the walker's loads traverse.
func New(plat arch.Platform, space *mem.AddressSpace) (*Simulator, error) {
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(plat)
	if err != nil {
		return nil, err
	}
	trans := mem.NewTranslator(space.PageTable())
	return &Simulator{
		plat:  plat,
		space: space,
		trans: trans,
		tlb:   tlb.New(plat.TLB),
		hier:  hier,
		walk:  walker.New(trans, hier, plat.PWC),
	}, nil
}

// Platform returns the simulator's platform definition.
func (s *Simulator) Platform() arch.Platform { return s.plat }

// Reset re-targets the simulator at a platform and address space, restoring
// just-built state (including SimulateProgramCache = false) so a Reset
// simulator replays bit-identically to a fresh one. When the platform is
// unchanged the TLB, cache, and walker allocations are retained and merely
// cleared, enabling engine pooling across a sweep's replays.
func (s *Simulator) Reset(plat arch.Platform, space *mem.AddressSpace) error {
	if plat != s.plat {
		rebuilt, err := New(plat, space)
		if err != nil {
			return err
		}
		*s = *rebuilt
		return nil
	}
	s.space = space
	s.trans.Reset(space.PageTable())
	s.tlb.Reset()
	s.hier.Reset()
	s.walk.Reset(s.trans)
	s.SimulateProgramCache = false
	return nil
}

// Run replays the trace through the virtual-memory subsystem and returns
// the metrics. It errors if an access touches unmapped memory.
func (s *Simulator) Run(tr *trace.Trace) (Metrics, error) {
	var m Metrics
	cols := tr.Columns()
	if err := s.replayRange(&m, cols, 0, cols.Len()); err != nil {
		return Metrics{}, err
	}
	return m, nil
}

// RunSampled replays the trace under a systematic-sampling plan: accesses
// in measurement windows accumulate metrics, warmup windows advance the
// TLB/PWC/cache state without touching the metrics (warmRange), and
// everything else is skipped. The returned metrics cover only the measured
// windows — extrapolation is the caller's job (see internal/sim) — along
// with the first window's share of them (the prologue stratum) and the
// number of measured accesses. A disabled plan, or one whose windows cover
// the whole trace, is bit-identical to Run.
func (s *Simulator) RunSampled(tr *trace.Trace, plan trace.SamplePlan) (metrics, prologue Metrics, measured uint64, err error) {
	ms, pros, measured, err := RunBatch([]*Simulator{s}, tr, plan)
	if err != nil {
		return Metrics{}, Metrics{}, 0, err
	}
	if pros != nil {
		prologue = pros[0]
	}
	return ms[0], prologue, measured, nil
}

// RunBatch replays one trace through several simulators in a single fused
// pass over the trace blocks, mirroring cpu.RunBatch: each block of
// accesses is streamed through every simulator before the next block, so
// the trace columns stay cache-resident across the whole batch. The plan
// selects the fidelity schedule (a disabled plan replays every access);
// measured counts accesses inside measurement windows, and prologue holds
// each simulator's metrics as of the end of the first measurement window —
// the exactly-measured prologue stratum (nil in exact mode). Metrics are
// bit-identical to running each simulator alone under the same plan —
// simulators share no mutable state and each sees the same windows in
// order, whatever mix of SimulateProgramCache settings the batch carries.
//
//mosvet:hotpath
func RunBatch(ss []*Simulator, tr *trace.Trace, plan trace.SamplePlan) (metrics, prologue []Metrics, measured uint64, err error) {
	cols := tr.Columns()
	out := make([]Metrics, len(ss))
	var pro []Metrics
	sampled := plan.Enabled()
	for _, w := range cols.Windows(plan) {
		if w.Measure {
			measured += uint64(w.Len())
		}
		for lo := w.Lo; lo < w.Hi; lo += cpu.FuseBlock {
			hi := min(lo+cpu.FuseBlock, w.Hi)
			for k, s := range ss {
				var err error
				if w.Measure {
					err = s.replayRange(&out[k], cols, lo, hi)
				} else {
					err = s.warmRange(cols, lo, hi)
				}
				if err != nil {
					return nil, nil, 0, err
				}
			}
		}
		if sampled && w.Measure && pro == nil {
			pro = append([]Metrics(nil), out...)
		}
	}
	return out, pro, measured, nil
}

// FaultError reports an access or page-walk fault during replay. It is
// built with plain field stores on the (run-aborting) fault path and
// formats itself lazily, keeping fmt's variadic boxing out of the replay
// kernels.
type FaultError struct {
	Index int    // access index within the trace
	VA    uint64 // faulting virtual address
	Walk  bool   // true when the page walk faulted, false for the access itself
}

func (e *FaultError) Error() string {
	if e.Walk {
		return fmt.Sprintf("partialsim: walk faults at %#x", e.VA)
	}
	return fmt.Sprintf("partialsim: access %d faults at %#x", e.Index, e.VA)
}

// replayRange advances one replay's metrics through accesses [lo, hi).
//
//mosvet:hotpath
func (s *Simulator) replayRange(m *Metrics, cols *trace.Columns, lo, hi int) error {
	for i := lo; i < hi; i++ {
		va := cols.VA(i)
		phys, ps, ok := s.trans.Translate(va)
		if !ok {
			return &FaultError{Index: i, VA: uint64(va)}
		}
		m.Lookups++
		switch s.tlb.Lookup(va, ps) {
		case tlb.L1Hit:
		case tlb.L2Hit:
			m.H++
		case tlb.Miss:
			m.M++
			res := s.walk.Walk(va)
			if res.Fault {
				return &FaultError{Index: i, VA: uint64(va), Walk: true}
			}
			m.C += uint64(res.Latency)
			m.WalkRefs += uint64(res.Refs)
			s.tlb.Insert(va, ps)
		}
		if s.SimulateProgramCache {
			// Same order as the full machine: the data reference follows
			// the translation, so the walker sees identical cache states.
			s.hier.Access(phys, false)
		}
	}
	return nil
}

// warmRange is the functional-warmup path of a sampled replay: state
// transitions — TLB contents, PWCs, and (under SimulateProgramCache) the
// cache hierarchy — are identical to replayRange's, but none of the metrics
// accumulate, so warmup accesses are invisible in the windowed counts.
//
//mosvet:hotpath
func (s *Simulator) warmRange(cols *trace.Columns, lo, hi int) error {
	for i := lo; i < hi; i++ {
		va := cols.VA(i)
		phys, ps, ok := s.trans.Translate(va)
		if !ok {
			return &FaultError{Index: i, VA: uint64(va)}
		}
		if s.tlb.Lookup(va, ps) == tlb.Miss {
			res := s.walk.Walk(va)
			if res.Fault {
				return &FaultError{Index: i, VA: uint64(va), Walk: true}
			}
			s.tlb.Insert(va, ps)
		}
		if s.SimulateProgramCache {
			s.hier.Access(phys, false)
		}
	}
	return nil
}

// Run is the one-shot convenience: build a simulator and replay the trace.
func Run(plat arch.Platform, space *mem.AddressSpace, tr *trace.Trace) (Metrics, error) {
	s, err := New(plat, space)
	if err != nil {
		return Metrics{}, err
	}
	return s.Run(tr)
}
