package partialsim

import (
	"math/rand"
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/cpu"
	"mosaic/internal/mem"
	"mosaic/internal/trace"
)

func buildSpace(t *testing.T, size uint64, ps mem.PageSize) *mem.AddressSpace {
	t.Helper()
	as, err := mem.NewAddressSpace(1 << 38)
	if err != nil {
		t.Fatal(err)
	}
	size = uint64(mem.AlignUp(mem.Addr(size), ps))
	if err := as.Map(mem.NewRegion(0x2000_0000_0000, size), ps); err != nil {
		t.Fatal(err)
	}
	return as
}

func mixedTrace(seed int64, n int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder("mix", n)
	for i := 0; i < n; i++ {
		b.Compute(uint64(rng.Intn(30)))
		va := mem.Addr(0x2000_0000_0000 + rng.Uint64()%(48<<20))
		if rng.Intn(2) == 0 {
			b.LoadDep(va)
		} else {
			b.Load(va)
		}
	}
	return b.Trace()
}

func TestHMMatchFullMachine(t *testing.T) {
	tr := mixedTrace(1, 20000)
	plat := arch.Broadwell.Scaled()

	as1 := buildSpace(t, 48<<20, mem.Page4K)
	sim, err := New(plat, as1)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}

	as2 := buildSpace(t, 48<<20, mem.Page4K)
	machine, err := cpu.New(plat, as2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := machine.Run(tr)
	if err != nil {
		t.Fatal(err)
	}

	if pm.H != full.H || pm.M != full.M {
		t.Errorf("partial H/M = %d/%d, full machine = %d/%d", pm.H, pm.M, full.H, full.M)
	}
	if pm.Lookups != full.TLBLookups {
		t.Errorf("lookups = %d vs %d", pm.Lookups, full.TLBLookups)
	}
	if pm.M > 0 && pm.C == 0 {
		t.Error("misses without walk cycles")
	}
}

// With program-cache simulation enabled, the walker sees the same cache
// states as in the full machine, so C matches exactly — the "perfectly
// accurate partial simulator" of §VII-D.
func TestCMatchesWithProgramCache(t *testing.T) {
	tr := mixedTrace(2, 20000)
	plat := arch.SandyBridge.Scaled()

	as1 := buildSpace(t, 48<<20, mem.Page4K)
	sim, err := New(plat, as1)
	if err != nil {
		t.Fatal(err)
	}
	sim.SimulateProgramCache = true
	pm, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}

	as2 := buildSpace(t, 48<<20, mem.Page4K)
	machine, err := cpu.New(plat, as2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := machine.Run(tr)
	if err != nil {
		t.Fatal(err)
	}

	if pm.C != full.C {
		t.Errorf("partial C = %d, full machine C = %d", pm.C, full.C)
	}
}

// Without program-cache simulation, walk cycles are underestimated (the
// walker's PTE lines never get evicted by program data) — the fidelity/
// speed trade-off of §II-B.
func TestWalkerOnlyCacheUnderestimatesC(t *testing.T) {
	tr := mixedTrace(3, 20000)
	plat := arch.SandyBridge.Scaled()

	as1 := buildSpace(t, 48<<20, mem.Page4K)
	cheap, err := New(plat, as1)
	if err != nil {
		t.Fatal(err)
	}
	cheapM, err := cheap.Run(tr)
	if err != nil {
		t.Fatal(err)
	}

	as2 := buildSpace(t, 48<<20, mem.Page4K)
	precise, err := New(plat, as2)
	if err != nil {
		t.Fatal(err)
	}
	precise.SimulateProgramCache = true
	preciseM, err := precise.Run(tr)
	if err != nil {
		t.Fatal(err)
	}

	if cheapM.M != preciseM.M {
		t.Fatalf("M must not depend on cache fidelity: %d vs %d", cheapM.M, preciseM.M)
	}
	if cheapM.C >= preciseM.C {
		t.Errorf("walker-only C (%d) should underestimate program-cache C (%d)", cheapM.C, preciseM.C)
	}
}

func TestHugepagesReduceMetrics(t *testing.T) {
	tr := mixedTrace(4, 20000)
	plat := arch.Haswell.Scaled()

	run := func(ps mem.PageSize) Metrics {
		as := buildSpace(t, 48<<20, ps)
		m, err := Run(plat, as, tr)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m4k, m2m := run(mem.Page4K), run(mem.Page2M)
	if m2m.M >= m4k.M/10 {
		t.Errorf("2MB misses %d not far below 4KB misses %d", m2m.M, m4k.M)
	}
	if m2m.C >= m4k.C {
		t.Errorf("2MB walk cycles %d not below 4KB %d", m2m.C, m4k.C)
	}
	if m2m.WalkRefs >= m4k.WalkRefs {
		t.Errorf("2MB walk refs %d not below 4KB %d", m2m.WalkRefs, m4k.WalkRefs)
	}
}

func TestUnmappedFaults(t *testing.T) {
	as := buildSpace(t, 1<<20, mem.Page4K)
	b := trace.NewBuilder("bad", 1)
	b.Load(0xdead0000)
	if _, err := Run(arch.SandyBridge.Scaled(), as, b.Trace()); err == nil {
		t.Error("unmapped access should fault")
	}
}

func TestInvalidPlatformRejected(t *testing.T) {
	as := buildSpace(t, 1<<20, mem.Page4K)
	bad := arch.SandyBridge
	bad.PageWalkers = 0
	if _, err := New(bad, as); err == nil {
		t.Error("invalid platform should be rejected")
	}
}
