package partialsim

import (
	"fmt"

	"mosaic/internal/ckpt"
	"mosaic/internal/cpu"
	"mosaic/internal/mem"
	"mosaic/internal/trace"
)

// Space returns the address space the simulator replays against.
func (s *Simulator) Space() *mem.AddressSpace { return s.space }

// Snapshot captures the simulator's complete model state as a checkpoint.
// The partial simulator has no clock, so HasClock stays false and the
// Metrics accumulator rides in the checkpoint's Metrics field; component
// state (TLB, caches, PWCs) uses the same layers as the full machine.
func (s *Simulator) Snapshot() *ckpt.MachineState {
	var m Metrics
	return s.snapshotState(&m)
}

// Restore overwrites the simulator's model state with a snapshot taken from
// a simulator of identical platform and fidelity. The translator memo — a
// pure performance cache, invisible to counters — is cleared rather than
// restored.
func (s *Simulator) Restore(st *ckpt.MachineState) error {
	var m Metrics
	return s.restoreState(st, &m)
}

// snapshotState captures component state plus the metrics accumulator.
//
//mosvet:ckptexempt HasClock,Now,MissRate,WalkCycles,Instructions,Breakdown,WalkerFree,SumTLB,SumHier the partial simulator models no clock: HasClock stays false and the clock/accumulator section is meaningful only for full machines
func (s *Simulator) snapshotState(m *Metrics) *ckpt.MachineState {
	return &ckpt.MachineState{
		Metrics: [5]uint64{m.H, m.M, m.C, m.Lookups, m.WalkRefs},
		TLB:     s.tlb.Snapshot(),
		Hier:    s.hier.Snapshot(),
		Walk:    s.walk.Snapshot(),
	}
}

// restoreState seeds component state and the metrics accumulator, after
// rejecting clocked (full-machine) checkpoints.
//
//mosvet:ckptexempt Now,MissRate,WalkCycles,Instructions,Breakdown,WalkerFree,SumTLB,SumHier clock and accumulator fields are zero in every partial-simulator snapshot; the HasClock guard rejects checkpoints where they are live
func (s *Simulator) restoreState(st *ckpt.MachineState, m *Metrics) error {
	if st.HasClock {
		return fmt.Errorf("partialsim: restore of a full-machine (clocked) checkpoint into a partial simulator")
	}
	if err := s.tlb.Restore(st.TLB); err != nil {
		return err
	}
	if err := s.hier.Restore(st.Hier); err != nil {
		return err
	}
	if err := s.walk.Restore(st.Walk); err != nil {
		return err
	}
	s.trans.Reset(s.space.PageTable())
	*m = Metrics{
		H:        st.Metrics[0],
		M:        st.Metrics[1],
		C:        st.Metrics[2],
		Lookups:  st.Metrics[3],
		WalkRefs: st.Metrics[4],
	}
	return nil
}

// StateMetrics harvests a mid-replay checkpoint's cumulative metrics
// accumulator — the partial-simulation counterpart of cpu.StateCounters.
// Phased replay attributes the field-wise difference of consecutive
// phase-boundary snapshots to the phase between them; the deltas telescope
// to the whole-trace metrics exactly.
func StateMetrics(st *ckpt.MachineState) Metrics {
	return Metrics{
		H:        st.Metrics[0],
		M:        st.Metrics[1],
		C:        st.Metrics[2],
		Lookups:  st.Metrics[3],
		WalkRefs: st.Metrics[4],
	}
}

// seedSegment restores every simulator (and its metrics accumulator) from
// its checkpoint before a segment replays.
func seedSegment(ss []*Simulator, seeds []*ckpt.MachineState, out []Metrics) error {
	if len(seeds) != len(ss) {
		return fmt.Errorf("partialsim: %d seeds for %d simulators", len(seeds), len(ss))
	}
	for k, s := range ss {
		if err := s.restoreState(seeds[k], &out[k]); err != nil {
			return err
		}
	}
	return nil
}

// RunBatchSegment is RunBatch over one contiguous slice of a replay
// schedule, mirroring cpu.RunBatchSegment: it replays the given windows
// through every simulator, optionally seeding each from a checkpoint and
// snapshotting all simulators at the requested save positions. The metrics
// accumulator is cumulative in the checkpoint, so a seeded segment's
// harvest equals whole-prefix-plus-segment metrics and parallel windowed
// replay takes the last segment's harvest as the final answer.
//
// sampled only gates prologue capture here — the partial simulator's
// metrics accumulate exclusively inside measurement windows, so no stat
// differencing is ever needed. savePos lists trace positions, ascending,
// at which to snapshot every simulator; saved is indexed
// [savePos][simulator].
//
//mosvet:hotpath
func RunBatchSegment(ss []*Simulator, tr *trace.Trace, windows []trace.Window, seeds []*ckpt.MachineState, sampled, wantPro bool, savePos []int) (metrics, prologue []Metrics, saved [][]*ckpt.MachineState, measured uint64, err error) {
	cols := tr.Columns()
	out := make([]Metrics, len(ss))
	var pro []Metrics
	if seeds != nil {
		if err := seedSegment(ss, seeds, out); err != nil {
			return nil, nil, nil, 0, err
		}
	}
	if len(savePos) > 0 {
		saved = make([][]*ckpt.MachineState, len(savePos))
	}
	si := 0
	for _, w := range windows {
		if w.Measure {
			measured += uint64(w.Len())
		}
		lo := w.Lo
		for lo < w.Hi {
			for si < len(savePos) && savePos[si] == lo {
				saved[si] = snapAll(ss, out)
				si++
			}
			hi := min(lo+cpu.FuseBlock, w.Hi)
			if si < len(savePos) && savePos[si] > lo && savePos[si] < hi {
				hi = savePos[si]
			}
			for k, s := range ss {
				var err error
				if w.Measure {
					err = s.replayRange(&out[k], cols, lo, hi)
				} else {
					err = s.warmRange(cols, lo, hi)
				}
				if err != nil {
					return nil, nil, nil, 0, err
				}
			}
			lo = hi
		}
		// Match save positions at this window's Hi too — a position ending
		// a window that is not a later window's Lo (a phase boundary before
		// a skip stretch) never lands on a block start. State cannot change
		// between a window's Hi and an abutting next window's Lo, so this
		// is bit-identical for positions the lo-match would also find.
		for si < len(savePos) && savePos[si] == w.Hi {
			saved[si] = snapAll(ss, out)
			si++
		}
		if sampled && wantPro && w.Measure && pro == nil {
			pro = append([]Metrics(nil), out...)
		}
	}
	for end := segmentEnd(windows); si < len(savePos) && savePos[si] == end; si++ {
		saved[si] = snapAll(ss, out)
	}
	return out, pro, saved, measured, nil
}

func segmentEnd(windows []trace.Window) int {
	if len(windows) == 0 {
		return -1
	}
	return windows[len(windows)-1].Hi
}

// snapAll snapshots every simulator of a batch with its current metrics.
func snapAll(ss []*Simulator, out []Metrics) []*ckpt.MachineState {
	snaps := make([]*ckpt.MachineState, len(ss))
	for k, s := range ss {
		snaps[k] = s.snapshotState(&out[k])
	}
	return snaps
}
