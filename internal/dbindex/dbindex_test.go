package dbindex

import (
	"math/rand"
	"testing"

	"mosaic/internal/mem"
	"mosaic/internal/trace"
)

// checkBounds verifies every access of a built trace lands inside
// [base, base+size).
func checkBounds(t *testing.T, tr *trace.Trace, base mem.Addr, size uint64) {
	t.Helper()
	for i := 0; i < tr.Len(); i++ {
		va := tr.At(i).VA
		if va < base || va >= base+mem.Addr(size) {
			t.Fatalf("access %d at %#x outside arena [%#x, %#x)", i, va, base, base+mem.Addr(size))
		}
	}
}

func TestBTreeGeometry(t *testing.T) {
	bt := &BTree{Keys: 10_000, NodeBytes: 256, Base: 1 << 30}
	size, err := bt.ArenaBytes()
	if err != nil {
		t.Fatal(err)
	}
	// fanout 16: 10000 keys -> 625 leaves -> 40 -> 3 -> 1; depth 4.
	if got := bt.Depth(); got != 4 {
		t.Fatalf("depth = %d, want 4", got)
	}
	want := uint64(625+40+3+1) * 256
	if size != want {
		t.Fatalf("arena = %d, want %d", size, want)
	}
	if _, err := (&BTree{Keys: 10, NodeBytes: 16}).ArenaBytes(); err == nil {
		t.Fatal("fanout 1 accepted")
	}
}

func TestBTreeEmitsInsideArena(t *testing.T) {
	bt := &BTree{Keys: 5_000, NodeBytes: 512, ChaseDepth: 3, Base: 1 << 30}
	size, err := bt.ArenaBytes()
	if err != nil {
		t.Fatal(err)
	}
	b := trace.NewBuilder("btree", 1<<16)
	for k := 0; k < bt.Keys; k++ {
		bt.BulkInsert(b, k)
	}
	rng := rand.New(rand.NewSource(7))
	gen := Zipfian.Generator(rng, bt.Keys)
	for i := 0; i < 500; i++ {
		bt.PointLookup(b, gen())
		bt.RangeScan(b, gen(), 64)
	}
	checkBounds(t, b.Trace(), bt.Base, size)
}

func TestBTreeLookupIsPointerChase(t *testing.T) {
	bt := &BTree{Keys: 5_000, NodeBytes: 512, ChaseDepth: 2, Base: 1 << 30}
	if _, err := bt.ArenaBytes(); err != nil {
		t.Fatal(err)
	}
	b := trace.NewBuilder("btree", 1<<12)
	bt.PointLookup(b, 1234)
	tr := b.Trace()
	deps := 0
	for i := 0; i < tr.Len(); i++ {
		if tr.At(i).Dep {
			deps++
		}
	}
	// Per level: one header hop + ChaseDepth overflow hops; plus the final
	// leaf record load.
	want := bt.Depth()*(1+bt.ChaseDepth) + 1
	if deps != want {
		t.Fatalf("dependent loads = %d, want %d", deps, want)
	}
}

func TestLSMEmitsInsideArena(t *testing.T) {
	l := &LSM{Runs: 8, RunEntries: 4096, EntryBytes: 64, Base: 1 << 31}
	size, err := l.ArenaBytes()
	if err != nil {
		t.Fatal(err)
	}
	b := trace.NewBuilder("lsm", 1<<17)
	for i := 0; i < l.Runs*l.RunEntries; i++ {
		l.Append(b, i)
	}
	l.Reset()
	for i := 0; i < 20_000; i++ {
		l.CompactStep(b, i)
	}
	checkBounds(t, b.Trace(), l.Base, size)
}

func TestLSMCompactTouchesAllRuns(t *testing.T) {
	l := &LSM{Runs: 8, RunEntries: 1024, EntryBytes: 64, Base: 0x1000}
	if _, err := l.ArenaBytes(); err != nil {
		t.Fatal(err)
	}
	l.Reset()
	b := trace.NewBuilder("lsm", 1<<12)
	for i := 0; i < 256; i++ {
		l.CompactStep(b, i)
	}
	for r, c := range l.cursors {
		if c == 0 {
			t.Fatalf("run %d never advanced in 256 merge steps", r)
		}
	}
}

func TestHashJoinEmitsInsideArena(t *testing.T) {
	h := &HashJoin{Buckets: 1 << 12, ChainLen: 4, Base: 1 << 32}
	size, err := h.ArenaBytes()
	if err != nil {
		t.Fatal(err)
	}
	b := trace.NewBuilder("hashjoin", 1<<16)
	rng := rand.New(rand.NewSource(11))
	gen := Uniform.Generator(rng, 1<<16)
	for i := 0; i < 2_000; i++ {
		h.BuildInsert(b, gen())
	}
	for i := 0; i < 2_000; i++ {
		h.Probe(b, gen())
	}
	checkBounds(t, b.Trace(), h.Base, size)
}

func TestDistributions(t *testing.T) {
	const n = 1 << 12
	t.Run("sorted ascends and wraps", func(t *testing.T) {
		gen := Sorted.Generator(rand.New(rand.NewSource(1)), n)
		for i := 0; i < 2*n; i++ {
			if got := gen(); got != i%n {
				t.Fatalf("draw %d = %d, want %d", i, got, i%n)
			}
		}
	})
	t.Run("zipf skews hot keys", func(t *testing.T) {
		gen := Zipfian.Generator(rand.New(rand.NewSource(2)), n)
		counts := make([]int, n)
		for i := 0; i < 100_000; i++ {
			counts[gen()]++
		}
		if counts[0] < 10*(100_000/n) {
			t.Fatalf("hottest key drew %d of 100000 — no Zipf skew", counts[0])
		}
	})
	t.Run("generators are deterministic", func(t *testing.T) {
		for _, d := range []Dist{Uniform, Zipfian, Sorted} {
			a := d.Generator(rand.New(rand.NewSource(3)), n)
			b := d.Generator(rand.New(rand.NewSource(3)), n)
			for i := 0; i < 1000; i++ {
				if x, y := a(), b(); x != y {
					t.Fatalf("%v draw %d: %d != %d under equal seeds", d, i, x, y)
				}
			}
		}
	})
}
