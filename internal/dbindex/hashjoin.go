package dbindex

import (
	"fmt"

	"mosaic/internal/mem"
	"mosaic/internal/trace"
)

const (
	// bucketBytes is one hash-table bucket header: head pointer + count.
	bucketBytes = 16
	// chainNodeBytes is one chain node: key, payload pointer, next pointer.
	chainNodeBytes = 32
)

// HashJoin models the build and probe sides of an in-memory hash join:
// a bucket-header array followed by a chain-node pool. Build traffic is
// random stores (bucket header update plus node insert); probe traffic is
// a random dependent bucket load followed by ChainLen dependent chain
// hops — the purest pointer-chase an analytical engine issues, and the
// pattern whose walk latency the paper's two-walker analysis targets.
type HashJoin struct {
	Buckets  int      // bucket-header count
	ChainLen int      // dependent chain hops per probe
	Base     mem.Addr // arena base address
}

// Validate checks the geometry.
func (h *HashJoin) Validate() error {
	if h.Buckets < 1 || h.ChainLen < 1 {
		return fmt.Errorf("dbindex: hashjoin needs positive buckets and chain length, have %d buckets x %d chain",
			h.Buckets, h.ChainLen)
	}
	return nil
}

// ArenaBytes returns the arena size: the bucket array plus a node pool
// holding ChainLen nodes per bucket.
func (h *HashJoin) ArenaBytes() (uint64, error) {
	if err := h.Validate(); err != nil {
		return 0, err
	}
	return uint64(h.Buckets)*bucketBytes + uint64(h.Buckets)*uint64(h.ChainLen)*chainNodeBytes, nil
}

// poolBase is the chain-node pool's base (after the bucket array).
func (h *HashJoin) poolBase() mem.Addr {
	return h.Base + mem.Addr(h.Buckets)*bucketBytes
}

// bucket maps a key to its bucket index.
func (h *HashJoin) bucket(k int) int {
	return int(mix64(uint64(k)) % uint64(h.Buckets))
}

// chainNode returns the address of hop c of key k's chain. Nodes of one
// bucket's chain are scattered through the pool by hash — chains in a real
// join are allocation-ordered, not contiguous — so every hop is a fresh
// dependent cache line and, usually, a fresh page.
func (h *HashJoin) chainNode(bkt, c int) mem.Addr {
	slot := mix64(uint64(bkt)*2654435761+uint64(c)) % uint64(h.Buckets*h.ChainLen)
	return h.poolBase() + mem.Addr(slot)*chainNodeBytes
}

// BuildInsert emits the build-side traffic for key k: update the bucket
// header, then store the inserted node at the head of the chain.
//
//mosvet:hotpath
func (h *HashJoin) BuildInsert(b *trace.Builder, k int) {
	bkt := h.bucket(k)
	base := h.Base + mem.Addr(bkt)*bucketBytes
	b.Compute(4)
	b.Load(base) // read head pointer
	b.Store(h.chainNode(bkt, k%h.ChainLen))
	b.Compute(1)
	b.Store(base) // publish the new head
}

// Probe emits one probe for key k: a dependent bucket-header load, then a
// dependent walk of the bucket's chain with a key compare at each node.
//
//mosvet:hotpath
func (h *HashJoin) Probe(b *trace.Builder, k int) {
	bkt := h.bucket(k)
	b.Compute(3)
	b.LoadDep(h.Base + mem.Addr(bkt)*bucketBytes)
	for c := 0; c < h.ChainLen; c++ {
		b.Compute(2)
		b.LoadDep(h.chainNode(bkt, c))
	}
}
