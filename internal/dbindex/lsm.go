package dbindex

import (
	"fmt"

	"mosaic/internal/mem"
	"mosaic/internal/trace"
)

// LSM models the level-0 shape of an LSM tree: Runs sorted runs of
// RunEntries entries each, plus an output region the same size as all
// inputs combined. Load traffic (Append) is the memtable flush — pure
// sequential stores — and compaction (CompactStep) is a K-way merge: one
// sequential read stream per input run plus one sequential write stream,
// the access pattern that makes compaction cache-friendly per stream but
// TLB-wide across streams.
type LSM struct {
	Runs       int      // input run count (merge fan-in)
	RunEntries int      // entries per run
	EntryBytes int      // entry stride
	Base       mem.Addr // arena base address

	// cursors tracks each input run's merge position; out is the output
	// write position. Reset re-arms a compaction pass. wcursors tracks each
	// run's load-phase fill position.
	cursors  []int
	wcursors []int
	out      int
}

// Validate checks the geometry.
func (l *LSM) Validate() error {
	if l.Runs < 2 {
		return fmt.Errorf("dbindex: lsm needs >= 2 runs, have %d", l.Runs)
	}
	if l.RunEntries < 1 || l.EntryBytes < 8 {
		return fmt.Errorf("dbindex: lsm needs positive run entries and >= 8B entries, have %d x %dB",
			l.RunEntries, l.EntryBytes)
	}
	return nil
}

// ArenaBytes returns the arena size: Runs input runs plus an equal-sized
// output region.
func (l *LSM) ArenaBytes() (uint64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	return 2 * uint64(l.Runs) * uint64(l.RunEntries) * uint64(l.EntryBytes), nil
}

// runBytes is one input run's extent.
func (l *LSM) runBytes() mem.Addr {
	return mem.Addr(l.RunEntries) * mem.Addr(l.EntryBytes)
}

// outBase is the output region's base (after all input runs).
func (l *LSM) outBase() mem.Addr {
	return l.Base + mem.Addr(l.Runs)*l.runBytes()
}

// Reset re-arms the merge cursors for a fresh compaction pass.
func (l *LSM) Reset() {
	l.cursors = make([]int, l.Runs)
	l.out = 0
}

// Append emits the load-phase traffic for entry i: a sequential store into
// a deterministically-hashed run at that run's own fill cursor — the
// pattern of several memtables draining concurrently. Each run fills
// sequentially, but run selection is aperiodic, so page-boundary crossings
// never phase-lock with a systematic sampling period (a strict
// run-after-run fill puts every crossing on a fixed cycle and aliases the
// estimator). Cursors wrap, so a budget beyond the arena keeps re-filling.
//
//mosvet:hotpath
func (l *LSM) Append(b *trace.Builder, i int) {
	if l.wcursors == nil {
		l.wcursors = make([]int, l.Runs)
	}
	run := int(mix64(uint64(i)^0x9e3779b97f4a7c15) % uint64(l.Runs))
	off := l.wcursors[run]
	l.wcursors[run] = (off + 1) % l.RunEntries
	b.Compute(3)
	b.Store(l.Base + mem.Addr(run)*l.runBytes() + mem.Addr(off)*mem.Addr(l.EntryBytes))
}

// CompactStep emits one merge step: load the winning run's next entry
// (sequential within that run), compare against the heap head, and store
// it to the output cursor. The winner is a deterministic hash of the step
// index — a stand-in for the min-heap outcome that keeps every run's
// cursor advancing at a statistically even rate. Call Reset before the
// first step of a pass; cursors wrap so a step budget larger than the
// arena just re-merges.
//
//mosvet:hotpath
func (l *LSM) CompactStep(b *trace.Builder, i int) {
	if l.cursors == nil {
		l.Reset()
	}
	run := int(mix64(uint64(i)) % uint64(l.Runs))
	cur := l.cursors[run]
	l.cursors[run] = (cur + 1) % l.RunEntries
	b.Compute(2)
	b.Load(l.Base + mem.Addr(run)*l.runBytes() + mem.Addr(cur)*mem.Addr(l.EntryBytes))
	b.Compute(4) // heap sift: compare against the next-smallest head
	b.Store(l.outBase() + mem.Addr(l.out)*mem.Addr(l.EntryBytes))
	l.out = (l.out + 1) % (l.Runs * l.RunEntries)
}
