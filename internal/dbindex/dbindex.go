// Package dbindex provides synthetic database-index kernels — B+-tree
// lookups, LSM compaction scans, hash-join probes — as trace-emitting
// building blocks for multi-phase workloads.
//
// Database engines are the canonical phase-changing workloads in virtual
// memory research: an index build is sequential and store-heavy, the probe
// mix that follows is random and pointer-chasing, and an LSM's load/compact
// cycle alternates between the two. A sampled replay whose windows were
// scheduled without regard to those regime boundaries extrapolates one
// regime's rates over another's accesses — exactly the failure mode the
// per-phase sampling contract (trace.Phases, sim.PhaseResult) exists to
// catch. The kernels here are the fixtures that exercise it.
//
// Each kernel is a small struct describing index geometry (node/page size,
// key count, pointer-chase depth) plus per-operation emit methods that
// append a handful of accesses to a trace.Builder. The workload layer owns
// the access budget and the RNG; kernels own the address arithmetic. All
// kernels are deterministic: identical geometry, keys, and RNG seeds emit
// identical traces.
package dbindex

import (
	"math/rand"
)

// Dist selects the key distribution driving lookups and probes.
type Dist int

const (
	// Uniform draws keys uniformly at random — an unskewed OLTP point mix.
	Uniform Dist = iota
	// Zipfian draws keys under Zipf skew (s = 1.01): a hot-key OLTP mix
	// where a small working set absorbs most probes.
	Zipfian
	// Sorted yields keys in ascending order, wrapping — an OLAP bulk pass.
	Sorted
)

// String names the distribution for workload labels.
func (d Dist) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipf"
	case Sorted:
		return "sorted"
	}
	return "unknown"
}

// Generator returns a closure yielding successive key indices in [0, n)
// under the distribution. The closure owns no state beyond rng and an
// optional cursor, so two generators built from identically seeded RNGs
// yield identical key streams.
func (d Dist) Generator(rng *rand.Rand, n int) func() int {
	switch d {
	case Zipfian:
		// s=1.01, v=1 (the YCSB-style skew, nudged above rand.NewZipf's
		// s>1 floor) keeps a pronounced hot set while leaving the tail
		// mass broad: a heavier tail (say s=1.2) concentrates every
		// counter's variance in a few hundred cold lookups per phase and
		// no fixed-coverage sampler can meet the noise envelope on them
		// percent of keys without degenerating to a single page.
		z := rand.NewZipf(rng, 1.01, 1, uint64(n-1))
		return func() int { return int(z.Uint64()) }
	case Sorted:
		next := 0
		return func() int {
			k := next
			next++
			if next >= n {
				next = 0
			}
			return k
		}
	default:
		return func() int { return rng.Intn(n) }
	}
}

// mix64 is SplitMix64's finalizer: a cheap, well-distributed hash for
// bucket selection and chain-node placement. Deterministic by construction.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ceilDiv rounds an integer quotient up.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// log2Ceil returns ceil(log2(n)) for n >= 1 — the probe count of a binary
// search over n slots.
func log2Ceil(n int) int {
	k, p := 0, 1
	for p < n {
		p <<= 1
		k++
	}
	return k
}
