package dbindex

import (
	"fmt"

	"mosaic/internal/mem"
	"mosaic/internal/trace"
)

// entryBytes is one index entry: an 8-byte key beside an 8-byte pointer
// (or, in a leaf, an 8-byte inline record word).
const entryBytes = 16

// BTree models a B+-tree bulk-loaded over Keys sorted keys, laid out level
// by level in one arena: the root first, leaves last, nodes of a level
// contiguous. Descents are real pointer chases — each level's node address
// depends on the entry loaded at the previous level — and intra-node
// binary search issues the independent loads a cache-line-packed node
// would. ChaseDepth adds dependent overflow-chain hops at every visited
// node, the knob that stretches memory-level parallelism the way wide
// values or versioned records do in a real engine.
type BTree struct {
	Keys       int      // indexed key count
	NodeBytes  int      // node/page size in bytes; fanout = NodeBytes/16
	ChaseDepth int      // extra dependent hops per visited node
	Base       mem.Addr // arena base address

	// levels is the computed geometry, root (index 0) to leaves.
	levels []btreeLevel
}

type btreeLevel struct {
	nodes int
	// span is the number of keys one node of this level covers.
	span int
	// off is the byte offset of the level's node array within the arena.
	off uint64
}

// Layout computes the tree's level geometry. It is called implicitly by
// ArenaBytes and must succeed before any emit method runs.
func (t *BTree) Layout() error {
	if t.Keys < 1 {
		return fmt.Errorf("dbindex: btree needs at least 1 key, have %d", t.Keys)
	}
	fanout := t.NodeBytes / entryBytes
	if fanout < 2 {
		return fmt.Errorf("dbindex: node size %dB gives fanout %d, need >= 2", t.NodeBytes, fanout)
	}
	// Build bottom-up: leaves, then one internal level per fanout step.
	var rev []btreeLevel
	nodes, span := ceilDiv(t.Keys, fanout), fanout
	rev = append(rev, btreeLevel{nodes: nodes, span: span})
	for nodes > 1 {
		nodes, span = ceilDiv(nodes, fanout), span*fanout
		rev = append(rev, btreeLevel{nodes: nodes, span: span})
	}
	t.levels = make([]btreeLevel, len(rev))
	var off uint64
	for i := range rev {
		lv := rev[len(rev)-1-i]
		lv.off = off
		off += uint64(lv.nodes) * uint64(t.NodeBytes)
		t.levels[i] = lv
	}
	return nil
}

// ArenaBytes returns the arena size the tree needs; the caller maps that
// much and sets Base before emitting.
func (t *BTree) ArenaBytes() (uint64, error) {
	if t.levels == nil {
		if err := t.Layout(); err != nil {
			return 0, err
		}
	}
	last := t.levels[len(t.levels)-1]
	return last.off + uint64(last.nodes)*uint64(t.NodeBytes), nil
}

// Depth returns the number of levels (root to leaf inclusive).
func (t *BTree) Depth() int { return len(t.levels) }

// node returns the base address of node i of level lv.
func (t *BTree) node(lv btreeLevel, i int) mem.Addr {
	return t.Base + mem.Addr(lv.off) + mem.Addr(i)*mem.Addr(t.NodeBytes)
}

// BulkInsert emits the build-side traffic for key k of a sorted bulk load:
// a sequential store into the leaf slot, plus a parent-entry store at every
// level whose node boundary k opens — the occasional upper-level writes of
// a bottom-up bulk build.
//
//mosvet:hotpath
func (t *BTree) BulkInsert(b *trace.Builder, k int) {
	fanout := t.NodeBytes / entryBytes
	leaf := t.levels[len(t.levels)-1]
	b.Compute(4)
	b.Store(t.node(leaf, k/fanout) + mem.Addr(k%fanout)*entryBytes)
	// Walk up: each level writes one separator entry when k starts a new
	// child node of that level.
	for li := len(t.levels) - 2; li >= 0; li-- {
		lv := t.levels[li]
		child := lv.span / fanout
		if k%child != 0 {
			break
		}
		slot := (k / child) % fanout
		b.Compute(2)
		b.Store(t.node(lv, k/lv.span) + mem.Addr(slot)*entryBytes)
	}
}

// PointLookup emits one root-to-leaf descent for key k: at each level a
// dependent node-header load (the child pointer chase), a binary search of
// the node's slots, ChaseDepth dependent overflow hops, then the leaf
// record load.
//
//mosvet:hotpath
func (t *BTree) PointLookup(b *trace.Builder, k int) {
	fanout := t.NodeBytes / entryBytes
	probes := log2Ceil(fanout)
	for li, lv := range t.levels {
		node := t.node(lv, k/lv.span)
		b.Compute(3)
		b.LoadDep(node)
		// Binary search: probe the node's slot array at halving strides.
		lo, hi := 0, fanout
		for p := 0; p < probes && lo < hi; p++ {
			midSlot := (lo + hi) / 2
			b.Compute(2)
			b.Load(node + mem.Addr(midSlot)*entryBytes)
			if (k>>uint(p))&1 == 0 {
				hi = midSlot
			} else {
				lo = midSlot + 1
			}
		}
		// Overflow/indirection chain: dependent hops bouncing through the
		// node at key-dependent offsets.
		h := mix64(uint64(k)*31 + uint64(li))
		for c := 0; c < t.ChaseDepth; c++ {
			off := mem.Addr(h%uint64(t.NodeBytes/8)) * 8
			b.Compute(1)
			b.LoadDep(node + off)
			h = mix64(h)
		}
	}
	leaf := t.levels[len(t.levels)-1]
	b.Compute(2)
	b.LoadDep(t.node(leaf, k/fanout) + mem.Addr(k%fanout)*entryBytes)
}

// RangeScan emits a descent to key k followed by a sequential scan of span
// entries across sibling leaves: entry loads stride the leaf, and each
// leaf-boundary crossing is a dependent sibling-pointer hop.
//
//mosvet:hotpath
func (t *BTree) RangeScan(b *trace.Builder, k, span int) {
	t.PointLookup(b, k)
	fanout := t.NodeBytes / entryBytes
	leaf := t.levels[len(t.levels)-1]
	for j := 1; j <= span; j++ {
		e := k + j
		if e >= t.Keys {
			e -= t.Keys
		}
		addr := t.node(leaf, e/fanout) + mem.Addr(e%fanout)*entryBytes
		b.Compute(1)
		if e%fanout == 0 {
			b.LoadDep(addr) // sibling-pointer hop into the next leaf
		} else {
			b.Load(addr)
		}
	}
}
