package graph

import (
	"mosaic/internal/mem"
)

// Recorder receives the memory accesses a kernel performs against its
// simulated data structures. trace.Builder satisfies it.
type Recorder interface {
	Compute(n uint64)
	Load(va mem.Addr)
	LoadDep(va mem.Addr)
	Store(va mem.Addr)
	StoreDep(va mem.Addr)
}

// Layout holds the simulated base addresses of a graph's arrays, as
// allocated by the workload through the allocation stack. CSR indices are
// 4 bytes; per-vertex kernel data is 8 bytes.
type Layout struct {
	Offsets mem.Addr // N+1 × 4B
	Edges   mem.Addr // M × 4B
	Weights mem.Addr // M × 1B (padded to 4B stride for realism)
	// NodeA and NodeB are per-vertex kernel arrays (parent/dist/rank/…),
	// 8 bytes per vertex each.
	NodeA mem.Addr
	NodeB mem.Addr
}

// Sizes for address arithmetic.
const (
	idxBytes = 4
	// nodeBytes is the per-vertex record size of the kernel arrays
	// (parent/rank/dist plus kernel bookkeeping — GAPBS keeps several
	// fields per vertex).
	nodeBytes = 32
)

func (l Layout) offsetVA(u uint32) mem.Addr { return l.Offsets + mem.Addr(u)*idxBytes }
func (l Layout) edgeVA(i uint32) mem.Addr   { return l.Edges + mem.Addr(i)*idxBytes }
func (l Layout) weightVA(i uint32) mem.Addr { return l.Weights + mem.Addr(i)*idxBytes }
func (l Layout) nodeAVA(u uint32) mem.Addr  { return l.NodeA + mem.Addr(u)*nodeBytes }
func (l Layout) nodeBVA(u uint32) mem.Addr  { return l.NodeB + mem.Addr(u)*nodeBytes }

// Budget controls trace sampling: Skip accesses are fast-forwarded (the
// blind-sampling practice of the simulation papers the paper's §II-C
// surveys — skip billions of instructions, then record a window), then up
// to Max accesses are recorded.
type Budget struct {
	Skip int
	Max  int
	// Serial marks a traversal whose frontier is too small to expose
	// memory-level parallelism (road networks: a BFS wave of a few dozen
	// vertices). Probe accesses are then recorded as dependent — the
	// latency-bound behaviour GAPBS road inputs are known for — whereas
	// power-law graphs with huge frontiers overlap their probes freely.
	Serial bool
}

// budget tracks a Budget during kernel execution.
type budget struct {
	rec    Recorder
	skip   int
	left   int
	serial bool
}

func newBudget(rec Recorder, b Budget) *budget {
	return &budget{rec: rec, skip: b.Skip, left: b.Max, serial: b.Serial}
}

func (b *budget) ok() bool { return b.left > 0 }

func (b *budget) compute(n uint64) {
	if b.skip > 0 {
		return
	}
	b.rec.Compute(n)
}

func (b *budget) access(va mem.Addr, f func(mem.Addr)) {
	if b.skip > 0 {
		b.skip--
		return
	}
	f(va)
	b.left--
}

func (b *budget) load(va mem.Addr)     { b.access(va, b.rec.Load) }
func (b *budget) loadDep(va mem.Addr)  { b.access(va, b.rec.LoadDep) }
func (b *budget) store(va mem.Addr)    { b.access(va, b.rec.Store) }
func (b *budget) storeDep(va mem.Addr) { b.access(va, b.rec.StoreDep) }

// probe and probeStore are random per-edge accesses: independent when the
// frontier is wide, dependent under Serial.
func (b *budget) probe(va mem.Addr) {
	if b.serial {
		b.loadDep(va)
	} else {
		b.load(va)
	}
}

func (b *budget) probeStore(va mem.Addr) {
	if b.serial {
		b.storeDep(va)
	} else {
		b.store(va)
	}
}

// BFS runs a top-down breadth-first search from src, sampling per bud. NodeA serves as the parent array. It returns the
// number of vertices visited.
//
// Access character: sequential offset/edge streaming (independent) plus a
// random dependent probe of parent[v] per edge — the classic TLB-hostile
// graph pattern.
func BFS(g *Graph, src uint32, lay Layout, rec Recorder, bud Budget) int {
	b := newBudget(rec, bud)
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = int32(src)
	frontier := []uint32{src}
	visited := 1
	for len(frontier) > 0 && b.ok() {
		var next []uint32
		for _, u := range frontier {
			if !b.ok() {
				break
			}
			b.compute(4)
			b.load(lay.offsetVA(u))
			lo, hi := g.Offsets[u], g.Offsets[u+1]
			for i := lo; i < hi && b.ok(); i++ {
				v := g.Edges[i]
				b.compute(2)
				b.load(lay.edgeVA(i))
				// The parent probe's address comes from the streamed edge
				// value; with a wide frontier, probes of different edges
				// overlap freely (high memory-level parallelism), while
				// Serial traversals expose their latency.
				b.probe(lay.nodeAVA(v))
				if parent[v] < 0 {
					parent[v] = int32(u)
					visited++
					b.probeStore(lay.nodeAVA(v))
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return visited
}

// PageRank runs push-style PageRank iterations, sampling per bud. NodeA holds ranks, NodeB holds incoming sums.
// It returns the number of completed iterations (possibly fractional work
// on the last one).
//
// Access character: streaming reads plus independent random scatters into
// the sums array — high memory-level parallelism.
func PageRank(g *Graph, lay Layout, rec Recorder, iters int, bud Budget) int {
	b := newBudget(rec, bud)
	done := 0
	for it := 0; it < iters && b.ok(); it++ {
		for u := uint32(0); int(u) < g.N && b.ok(); u++ {
			b.compute(3)
			b.load(lay.offsetVA(u))
			b.load(lay.nodeAVA(u)) // rank[u], sequential
			lo, hi := g.Offsets[u], g.Offsets[u+1]
			for i := lo; i < hi && b.ok(); i++ {
				v := g.Edges[i]
				b.compute(1)
				b.load(lay.edgeVA(i))
				// Scatter: independent random store to sums[v].
				b.store(lay.nodeBVA(v))
			}
		}
		// Rank update pass: sequential, cheap.
		for u := uint32(0); int(u) < g.N && b.ok(); u += 8 {
			b.compute(16)
			b.load(lay.nodeBVA(u))
			b.store(lay.nodeAVA(u))
		}
		done++
	}
	return done
}

// SSSP runs Bellman-Ford rounds over an active frontier from src (a
// simplified delta-stepping), sampling per bud.
// NodeA holds distances. It returns the number of settled vertices.
//
// Access character: like BFS but with weight loads and repeated relaxation
// of the same vertices — dependent random accesses dominate.
func SSSP(g *Graph, src uint32, lay Layout, rec Recorder, bud Budget) int {
	if g.Weights == nil {
		return 0
	}
	b := newBudget(rec, bud)
	const inf = int64(1) << 62
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	frontier := []uint32{src}
	settled := 1
	for len(frontier) > 0 && b.ok() {
		var next []uint32
		for _, u := range frontier {
			if !b.ok() {
				break
			}
			b.compute(4)
			b.load(lay.offsetVA(u))
			b.loadDep(lay.nodeAVA(u)) // dist[u]
			du := dist[u]
			lo, hi := g.Offsets[u], g.Offsets[u+1]
			for i := lo; i < hi && b.ok(); i++ {
				v := g.Edges[i]
				b.compute(2)
				b.load(lay.edgeVA(i))
				b.load(lay.weightVA(i))
				// Relaxations of different edges are independent (delta-
				// stepping processes whole buckets concurrently).
				b.load(lay.nodeAVA(v)) // dist[v], random
				nd := du + int64(g.Weights[i])
				if nd < dist[v] {
					if dist[v] == inf {
						settled++
					}
					dist[v] = nd
					b.store(lay.nodeAVA(v))
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return settled
}

// BC runs one source's Brandes betweenness-centrality contribution: a
// forward BFS counting shortest paths (sigma in NodeB) followed by a
// backward dependency accumulation (delta in NodeA). Sampling follows bud. It returns the number of vertices reached.
func BC(g *Graph, src uint32, lay Layout, rec Recorder, bud Budget) int {
	b := newBudget(rec, bud)
	depth := make([]int32, g.N)
	for i := range depth {
		depth[i] = -1
	}
	sigma := make([]float64, g.N)
	depth[src] = 0
	sigma[src] = 1
	order := []uint32{src}
	frontier := []uint32{src}
	// Forward phase.
	for len(frontier) > 0 && b.ok() {
		var next []uint32
		for _, u := range frontier {
			if !b.ok() {
				break
			}
			b.compute(4)
			b.load(lay.offsetVA(u))
			lo, hi := g.Offsets[u], g.Offsets[u+1]
			for i := lo; i < hi && b.ok(); i++ {
				v := g.Edges[i]
				b.compute(2)
				b.load(lay.edgeVA(i))
				b.load(lay.nodeBVA(v)) // sigma[v]; edge-parallel
				if depth[v] < 0 {
					depth[v] = depth[u] + 1
					next = append(next, v)
					order = append(order, v)
				}
				if depth[v] == depth[u]+1 {
					sigma[v] += sigma[u]
					b.store(lay.nodeBVA(v))
				}
			}
		}
		frontier = next
	}
	// Backward phase: walk the discovery order in reverse, accumulating
	// deltas — a second pass of random dependent accesses.
	for i := len(order) - 1; i >= 0 && b.ok(); i-- {
		u := order[i]
		b.compute(4)
		b.load(lay.offsetVA(u))
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for j := lo; j < hi && b.ok(); j++ {
			v := g.Edges[j]
			b.load(lay.edgeVA(j))
			if depth[v] == depth[u]+1 {
				b.loadDep(lay.nodeAVA(v)) // delta[v]
				b.storeDep(lay.nodeAVA(u))
			}
		}
	}
	return len(order)
}
