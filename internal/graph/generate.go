// Package graph provides the graph substrate behind the graph500 and GAPBS
// workloads: synthetic generators approximating the paper's inputs (the
// Kronecker graphs of the Graph500 specification and the twitter / road /
// web graphs of the GAP benchmark suite) plus the traversal kernels
// (BFS, PageRank, SSSP, BC) implemented to emit memory-access traces
// against their simulated data-structure addresses.
package graph

import (
	"math/rand"
	"sort"
)

// Graph is a directed graph in CSR (compressed sparse row) form, the layout
// both Graph500 reference code and GAPBS use. Offsets has N+1 entries;
// the neighbours of u are Edges[Offsets[u]:Offsets[u+1]].
type Graph struct {
	N       int
	Offsets []uint32
	Edges   []uint32
	// Weights parallel Edges (SSSP); nil for unweighted graphs.
	Weights []uint8
}

// M returns the edge count.
func (g *Graph) M() int { return len(g.Edges) }

// Degree returns node u's out-degree.
func (g *Graph) Degree(u uint32) int {
	return int(g.Offsets[u+1] - g.Offsets[u])
}

// Neighbors returns node u's adjacency slice.
func (g *Graph) Neighbors(u uint32) []uint32 {
	return g.Edges[g.Offsets[u]:g.Offsets[u+1]]
}

// fromEdgeList builds a CSR graph from an edge list, sorting adjacencies.
func fromEdgeList(n int, src, dst []uint32, weighted bool, rng *rand.Rand) *Graph {
	deg := make([]uint32, n+1)
	for _, u := range src {
		deg[u+1]++
	}
	for i := 1; i <= n; i++ {
		deg[i] += deg[i-1]
	}
	g := &Graph{N: n, Offsets: deg, Edges: make([]uint32, len(src))}
	cursor := make([]uint32, n)
	for i, u := range src {
		g.Edges[g.Offsets[u]+cursor[u]] = dst[i]
		cursor[u]++
	}
	for u := 0; u < n; u++ {
		adj := g.Edges[g.Offsets[u]:g.Offsets[u+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	if weighted {
		g.Weights = make([]uint8, len(g.Edges))
		for i := range g.Weights {
			g.Weights[i] = uint8(rng.Intn(254) + 1)
		}
	}
	return g
}

// GenerateKronecker produces a Graph500-style Kronecker (RMAT) graph with
// 2^scale vertices and edgeFactor edges per vertex, using the official
// initiator probabilities A=0.57, B=0.19, C=0.19.
func GenerateKronecker(scale, edgeFactor int, seed int64) *Graph {
	return generateRMAT(1<<scale, edgeFactor, 0.57, 0.19, 0.19, seed, false)
}

// GenerateTwitter produces a power-law graph shaped like GAPBS's twitter
// input: heavy-tailed degrees with a small set of very high-degree hubs.
func GenerateTwitter(n, edgeFactor int, seed int64) *Graph {
	return generateRMAT(n, edgeFactor, 0.50, 0.25, 0.15, seed, true)
}

// GenerateWeb produces a hub-dominated graph like GAPBS's web crawl: more
// skew than twitter and long chains between hubs.
func GenerateWeb(n, edgeFactor int, seed int64) *Graph {
	return generateRMAT(n, edgeFactor, 0.62, 0.19, 0.13, seed, true)
}

func generateRMAT(n, edgeFactor int, a, b, c float64, seed int64, weighted bool) *Graph {
	rng := rand.New(rand.NewSource(seed))
	m := n * edgeFactor
	src := make([]uint32, m)
	dst := make([]uint32, m)
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for i := 0; i < m; i++ {
		var u, v int
		for level := 0; level < bits; level++ {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left quadrant
			case r < a+b:
				v |= 1 << level
			case r < a+b+c:
				u |= 1 << level
			default:
				u |= 1 << level
				v |= 1 << level
			}
		}
		src[i] = uint32(u % n)
		dst[i] = uint32(v % n)
	}
	return fromEdgeList(n, src, dst, weighted, rng)
}

// GenerateRoad produces a road-network-like graph: a rows×cols grid with
// 4-neighbour connectivity plus a sprinkle of shortcut edges. Node IDs are
// scrambled within blocks of blockRows rows, reflecting the imperfect
// vertex ordering of real road networks: a BFS wave's working set becomes
// a block-sized window rather than a perfectly sequential band. That
// window is what makes gapbs/bfs-road TLB-sensitive only on machines whose
// TLB reach is smaller than the window (§VI-D: sensitive on SandyBridge
// and Haswell, not on Broadwell).
// RoadBlockRows is the ID-scrambling block height of GenerateRoad.
const RoadBlockRows = 1200

func GenerateRoad(rows, cols int, seed int64) *Graph {
	const blockRows = RoadBlockRows
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	// Per-block ID scrambling.
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	blockLen := blockRows * cols
	for base := 0; base < n; base += blockLen {
		end := min(base+blockLen, n)
		for i := end - 1; i > base; i-- {
			j := base + rng.Intn(i-base+1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	var src, dst []uint32
	add := func(u, v int) {
		src = append(src, perm[u])
		dst = append(dst, perm[v])
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			u := r*cols + c
			if c+1 < cols {
				add(u, u+1)
				add(u+1, u)
			}
			if r+1 < rows {
				add(u, u+cols)
				add(u+cols, u)
			}
		}
	}
	// No long-range shortcuts: road BFS must stay a local wave (real road
	// networks are near-planar; even a few random edges would make the
	// traversal small-world and destroy the locality that distinguishes
	// this workload).
	return fromEdgeList(n, src, dst, true, rng)
}

// LargestComponentSource returns a vertex with non-zero degree that reaches
// a large part of the graph — a reasonable BFS/SSSP source. It picks the
// highest-degree vertex, matching GAPBS's practice of avoiding isolated
// sources.
func (g *Graph) LargestComponentSource() uint32 {
	best, bestDeg := uint32(0), -1
	for u := 0; u < g.N; u++ {
		if d := g.Degree(uint32(u)); d > bestDeg {
			best, bestDeg = uint32(u), d
		}
	}
	return best
}
